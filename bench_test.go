// Benchmark harness: one testing.B entry per table/figure in the paper's
// evaluation (§6), plus ablation micro-benchmarks for the substrate design
// choices. Figure benchmarks use a tiny search profile so
// `go test -bench=.` stays tractable; `cmd/stoke-bench -profile full`
// regenerates the figures with real budgets.
package repro_test

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"testing"

	"repro/internal/cost"
	"repro/internal/emu"
	"repro/internal/experiments"
	"repro/internal/kernels"
	"repro/internal/mcmc"
	"repro/internal/perf"
	"repro/internal/pipeline"
	"repro/internal/testgen"
	"repro/internal/verify"
	"repro/internal/x64"
	"repro/stoke"
)

// benchProfile keeps figure regeneration fast under `go test -bench`: tiny
// search budgets and a capped validator budget (hard proofs answer Unknown
// rather than running for minutes).
var benchProfile = experiments.Profile{
	Seed: 1, SynthChains: 1, OptChains: 1,
	SynthProposals: 5000, OptProposals: 10000, Ell: 14,
	VerifyBudget: 5000,
}

// --- Figure benchmarks ---------------------------------------------------

func BenchmarkFig01Montgomery(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := experiments.Fig01Montgomery(context.Background(), io.Discard, benchProfile); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig02Validations(b *testing.B) {
	// Validator throughput on a representative query (Figure 2, left; the
	// paper reports well below 100 validations per second).
	bench, err := kernels.ByName("p01")
	if err != nil {
		b.Fatal(err)
	}
	live := verify.LiveOut{GPRs: bench.Spec.LiveOut.GPRs}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		verify.Equivalent(context.Background(), bench.Target, bench.GccO3, live, verify.DefaultConfig)
	}
}

func BenchmarkFig02TestcaseEvals(b *testing.B) {
	// Emulator testcase throughput (Figure 2, right; paper: ~500k/s).
	bench, err := kernels.ByName("p01")
	if err != nil {
		b.Fatal(err)
	}
	tests, err := testgen.Generate(bench.Target, bench.Spec, 32, rand.New(rand.NewSource(1)))
	if err != nil {
		b.Fatal(err)
	}
	m := emu.New()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tc := &tests[i%len(tests)]
		m.LoadSnapshot(tc.In)
		m.Run(bench.Target)
	}
}

func BenchmarkFig03PredictedVsActual(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := experiments.Fig03PredictedVsActual(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig05EarlyTermination(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := experiments.Fig05EarlyTermination(context.Background(), io.Discard, benchProfile); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig07CostFunctions(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := experiments.Fig07CostFunctions(context.Background(), io.Discard, benchProfile, "p01"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig08PercentOfFinal(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := experiments.Fig08PercentOfFinal(context.Background(), io.Discard, benchProfile, "p01"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig10And12Suite(b *testing.B) {
	// Figures 10 and 12 derive from one suite run (as in the paper).
	for i := 0; i < b.N; i++ {
		runs, err := experiments.RunSuite(context.Background(), benchProfile, io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		experiments.Fig10Speedups(io.Discard, runs)
		experiments.Fig12Runtimes(io.Discard, runs)
	}
}

func BenchmarkFig11Params(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig11Params(io.Discard)
	}
}

func BenchmarkFig13CycleThroughValues(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := experiments.Fig13CycleThroughValues(context.Background(), io.Discard, benchProfile); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig14Saxpy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := experiments.Fig14Saxpy(context.Background(), io.Discard, benchProfile); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig15LinkedList(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := experiments.Fig15LinkedList(context.Background(), io.Discard, benchProfile); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablation and substrate micro-benchmarks -----------------------------

// BenchmarkAblationEarlyTermination measures cost evaluation with and
// without the Equation 14 bound.
func BenchmarkAblationEarlyTermination(b *testing.B) {
	bench, _ := kernels.ByName("p23")
	tests, err := testgen.Generate(bench.Target, bench.Spec, 32, rand.New(rand.NewSource(2)))
	if err != nil {
		b.Fatal(err)
	}
	f := cost.New(tests, bench.Spec.LiveOut, cost.Improved, 0)
	wrong := x64.MustParse("movl 0, eax").PadTo(14)

	b.Run("bounded", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			f.Eval(wrong, 25) // tight bound: most testcases skipped
		}
	})
	b.Run("unbounded", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			f.Eval(wrong, cost.MaxBudget)
		}
	})
}

// BenchmarkAblationEqualityMetric compares the strict and improved metrics'
// evaluation cost (the improved metric scans all 16 registers).
func BenchmarkAblationEqualityMetric(b *testing.B) {
	bench, _ := kernels.ByName("p14")
	tests, err := testgen.Generate(bench.Target, bench.Spec, 32, rand.New(rand.NewSource(3)))
	if err != nil {
		b.Fatal(err)
	}
	prog := bench.GccO3.PadTo(14)
	for _, mode := range []struct {
		name string
		m    cost.Mode
	}{{"strict", cost.Strict}, {"improved", cost.Improved}} {
		f := cost.New(tests, bench.Spec.LiveOut, mode.m, 0)
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				f.Eval(prog, cost.MaxBudget)
			}
		})
	}
}

// evalModes are the three evaluation pipelines the throughput benchmarks
// A/B: the seed interpreter, the decode-once compiled path, and the
// compiled path with batched lockstep testcase sweeps.
var evalModes = []struct {
	name        string
	interpreted bool
	batched     bool
}{
	{"interpreted", true, false},
	{"compiled", false, false},
	{"batched", false, true},
}

// BenchmarkEvalThroughput measures end-to-end proposals per second through
// the evaluation pipelines — the seed interpreter (copy the candidate,
// re-decode every instruction on every testcase), the decode-once
// compiled path (patch the mutated slots, adaptive testcase order, pinned
// per-testcase machines), and the batched compiled path (each slot runs
// across all live testcases in lockstep) — on an optimization-phase chain
// (β=1, perf term on, started from the target: the regime the paper's §6
// wall-clock is spent in) at the harness ℓ=14 and the paper's ℓ=50
// profile. cmd/stoke-bench -eval-baseline records the same measurement,
// plus secondary kernels, as a machine-readable BENCH_eval.json.
func BenchmarkEvalThroughput(b *testing.B) {
	bench, err := kernels.ByName("p01")
	if err != nil {
		b.Fatal(err)
	}
	tests, err := testgen.Generate(bench.Target, bench.Spec, 32, rand.New(rand.NewSource(8)))
	if err != nil {
		b.Fatal(err)
	}
	for _, ell := range []int{14, 50} {
		for _, mode := range evalModes {
			b.Run(fmt.Sprintf("ell=%d/%s", ell, mode.name), func(b *testing.B) {
				params := mcmc.PaperParams
				params.Ell = ell
				params.Beta = 1.0 // optimization phase (stoke.DefaultOptBeta)
				s := &mcmc.Sampler{
					Params:      params,
					Pools:       mcmc.PoolsFor(bench.Target, false),
					Cost:        cost.New(tests, bench.Spec.LiveOut, cost.Improved, 1),
					Rng:         rand.New(rand.NewSource(9)),
					Interpreted: mode.interpreted,
					Batched:     mode.batched,
				}
				b.ResetTimer()
				res := s.Run(context.Background(), bench.Target, int64(b.N))
				b.StopTimer()
				if res.Best == nil {
					b.Fatal("chain returned no program")
				}
				b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "proposals/s")
			})
		}
	}
}

// BenchmarkEvalThroughputBatched sweeps the testcase count |τ| ∈ {1, 4,
// 16, 64} on the p01 kernel at ℓ=50, batched against scalar compiled: the
// batch-width scaling of the lockstep evaluator. At |τ|=1 the two paths
// are identical (a one-testcase batch never leaves the scalar chunk);
// the amortisation of per-slot dispatch grows with the width.
func BenchmarkEvalThroughputBatched(b *testing.B) {
	bench, err := kernels.ByName("p01")
	if err != nil {
		b.Fatal(err)
	}
	for _, ntests := range []int{1, 4, 16, 64} {
		tests, err := testgen.Generate(bench.Target, bench.Spec, ntests, rand.New(rand.NewSource(8)))
		if err != nil {
			b.Fatal(err)
		}
		for _, mode := range evalModes[1:] { // compiled and batched
			b.Run(fmt.Sprintf("tau=%d/%s", ntests, mode.name), func(b *testing.B) {
				params := mcmc.PaperParams
				params.Ell = 50
				params.Beta = 1.0
				s := &mcmc.Sampler{
					Params:  params,
					Pools:   mcmc.PoolsFor(bench.Target, false),
					Cost:    cost.New(tests, bench.Spec.LiveOut, cost.Improved, 1),
					Rng:     rand.New(rand.NewSource(9)),
					Batched: mode.batched,
				}
				b.ResetTimer()
				res := s.Run(context.Background(), bench.Target, int64(b.N))
				b.StopTimer()
				if res.Best == nil {
					b.Fatal("chain returned no program")
				}
				b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "proposals/s")
			})
		}
	}
}

// BenchmarkEvalThroughputSSE is the vector-kernel companion of
// BenchmarkEvalThroughput: the saxpy kernel with SSE opcodes in the
// proposal distribution, so the chain's candidates run the packed
// micro-ops (movd/shufps/movups/pmulld/paddd) the DIV/IDIV + SSE lowering
// added to the compiled pipeline. Tracked as the saxpy row of
// BENCH_eval.json.
func BenchmarkEvalThroughputSSE(b *testing.B) {
	bench, err := kernels.ByName("saxpy")
	if err != nil {
		b.Fatal(err)
	}
	tests, err := testgen.Generate(bench.Target, bench.Spec, 32, rand.New(rand.NewSource(8)))
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range evalModes {
		b.Run("ell=50/"+mode.name, func(b *testing.B) {
			params := mcmc.PaperParams
			params.Ell = 50
			params.Beta = 1.0
			s := &mcmc.Sampler{
				Params:      params,
				Pools:       mcmc.PoolsFor(bench.Target, true),
				Cost:        cost.New(tests, bench.Spec.LiveOut, cost.Improved, 1),
				Rng:         rand.New(rand.NewSource(9)),
				Interpreted: mode.interpreted,
				Batched:     mode.batched,
			}
			b.ResetTimer()
			res := s.Run(context.Background(), bench.Target, int64(b.N))
			b.StopTimer()
			if res.Best == nil {
				b.Fatal("chain returned no program")
			}
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "proposals/s")
		})
	}
}

// BenchmarkPatchLiveness measures the worst case of the patch-incremental
// flag-liveness recomputation: a mutation at the last slot of an ℓ=50
// candidate whose liveness flip survives a kill-free prefix (48 MOVs), so
// every Patch re-walks the entire backward slice down to the flag writer
// at slot 0 and re-selects its dispatch variant. This is the O(ℓ) bound
// the Patch contract pays at most; typical ALU-dense candidates stop the
// walk at the first unconditional flag writer.
func BenchmarkPatchLiveness(b *testing.B) {
	src := "addq rsi, rax\n"
	for i := 0; i < 48; i++ {
		src += "movq rdi, rcx\n"
	}
	src += "adcq 0, rax" // reads CF: keeps slot 0's flags live
	p := x64.MustParse(src)
	c := emu.Compile(p)
	if c.FlagFreeSlots() != 0 {
		b.Fatalf("adc tail must keep the head add live, got %d free slots", c.FlagFreeSlots())
	}
	last := len(p.Insts) - 1
	withCarry := p.Insts[last]
	noCarry := x64.MustParse("movq rdi, rdx").Insts[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Alternate a carry consumer in and out of the tail: each Patch
		// flips the liveness of the whole 50-slot backward slice.
		if i%2 == 0 {
			p.Insts[last] = noCarry
		} else {
			p.Insts[last] = withCarry
		}
		c.Patch(last)
	}
}

// BenchmarkProposalThroughput measures raw MCMC proposals per second on the
// Montgomery kernel (the paper's Figure 5 peak is ~50k/s on 2012 hardware).
func BenchmarkProposalThroughput(b *testing.B) {
	bench, _ := kernels.ByName("mont")
	tests, err := testgen.Generate(bench.Target, bench.Spec, 32, rand.New(rand.NewSource(4)))
	if err != nil {
		b.Fatal(err)
	}
	params := mcmc.PaperParams
	params.Ell = 24
	s := &mcmc.Sampler{
		Params: params,
		Pools:  mcmc.PoolsFor(bench.Target, false),
		Cost:   cost.New(tests, bench.Spec.LiveOut, cost.Improved, 0),
		Rng:    rand.New(rand.NewSource(5)),
	}
	start := s.RandomProgram()
	b.ResetTimer()
	s.Run(context.Background(), start, int64(b.N))
}

// BenchmarkEmulator measures raw instruction throughput on the gcc -O3
// Montgomery kernel.
func BenchmarkEmulator(b *testing.B) {
	bench, _ := kernels.ByName("mont")
	prog := bench.GccO3
	in := bench.Spec.BuildInput(rand.New(rand.NewSource(6)))
	m := emu.New()
	b.ResetTimer()
	steps := 0
	for i := 0; i < b.N; i++ {
		m.LoadSnapshot(in)
		out := m.Run(prog)
		steps += out.Steps
	}
	b.ReportMetric(float64(steps)/b.Elapsed().Seconds(), "insts/s")
}

// BenchmarkPipelineModel measures the cycle estimator (used during
// re-ranking).
func BenchmarkPipelineModel(b *testing.B) {
	bench, _ := kernels.ByName("mont")
	for i := 0; i < b.N; i++ {
		pipeline.Cycles(bench.Target)
	}
}

// BenchmarkStaticLatency measures the Equation 13 sum.
func BenchmarkStaticLatency(b *testing.B) {
	bench, _ := kernels.ByName("mont")
	for i := 0; i < b.N; i++ {
		perf.H(bench.Target)
	}
}

// BenchmarkEndToEndP01 runs the whole pipeline on the smallest kernel.
func BenchmarkEndToEndP01(b *testing.B) {
	bench, _ := kernels.ByName("p01")
	engine := stoke.NewEngine(stoke.EngineConfig{})
	defer engine.Close()
	opts := []stoke.Option{
		stoke.WithSeed(1),
		stoke.WithChains(1, 1),
		stoke.WithBudgets(2000, 5000),
		stoke.WithEll(12),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := engine.Optimize(context.Background(), bench.Kernel, opts...); err != nil {
			b.Fatal(err)
		}
	}
}
