// Montgomery multiplication — the paper's headline result (Figure 1).
//
// The target is the OpenSSL big-number kernel c1:c0 := np * mh:ml + c1 + c0
// as an -O0 compiler emits it (55 instructions of stack traffic and 32-bit
// partial products). gcc -O3 compresses it to 27 instructions but keeps the
// four-multiply decomposition; the paper's STOKE discovers an 11-instruction
// kernel built around the hardware widening multiply.
//
// The -timeout flag caps wall-clock time: on expiry the run returns the
// best rewrite found so far, marked partial.
//
//	go run ./examples/montgomery [-proposals N] [-timeout 30s]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"time"

	"repro/internal/kernels"
	"repro/internal/pipeline"
	"repro/stoke"
)

func main() {
	proposals := flag.Int64("proposals", 300000, "optimization proposals per chain")
	timeout := flag.Duration("timeout", 10*time.Minute, "wall-clock cap; expiry returns a partial result")
	independent := flag.Bool("independent", false, "disable the cross-chain coordinator (no replica exchange or shared pruning)")
	progress := flag.Bool("progress", false, "stream coordination events (swaps, prunes, refinements)")
	flag.Parse()

	bench, err := kernels.ByName("mont")
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("llvm -O0 target: %2d instructions, %5.1f cycles (pipeline model)\n",
		bench.Target.InstCount(), pipeline.Cycles(bench.Target))
	fmt.Printf("gcc -O3:         %2d instructions, %5.1f cycles\n",
		bench.GccO3.InstCount(), pipeline.Cycles(bench.GccO3))
	fmt.Printf("paper's STOKE:   %2d instructions, %5.1f cycles (%.2fx over gcc -O3)\n\n",
		bench.PaperRewrite.InstCount(), pipeline.Cycles(bench.PaperRewrite),
		pipeline.Cycles(bench.GccO3)/pipeline.Cycles(bench.PaperRewrite))

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	opts := []stoke.Option{
		stoke.WithSeed(7),
		// Synthesis rarely lands a 55-instruction kernel at laptop scale;
		// run a short phase and rely on optimization (§4.7: "even when
		// synthesis fails, optimization is still possible").
		stoke.WithChains(2, 4),
		stoke.WithBudgets(50000, *proposals),
		stoke.WithEll(30),
		stoke.WithTempering(!*independent),
		stoke.WithSharedProfile(!*independent),
	}
	if *progress {
		opts = append(opts, stoke.WithObserver(func(ev stoke.Event) {
			switch ev.Kind {
			case stoke.EventSwap, stoke.EventPrune, stoke.EventRefinement:
				fmt.Println(ev)
			}
		}))
	}
	report, err := stoke.Optimize(ctx, bench.Kernel, opts...)
	if err != nil {
		log.Fatal(err)
	}

	partial := ""
	if report.Partial {
		partial = " (timed out: best-so-far)"
	}
	fmt.Printf("our search:      %2d instructions, %5.1f cycles, %.2fx over the -O0 target%s\n",
		report.Rewrite.InstCount(), pipeline.Cycles(report.Rewrite), report.Speedup(), partial)
	fmt.Printf("validator:       %v (%d refinement testcases)\n", report.Verdict, report.Refinements)
	fmt.Printf("coordination:    %d replica exchanges, %d pruned chains\n\n", report.Swaps, report.Prunes)
	fmt.Printf("--- discovered rewrite ---\n%s\n", report.Rewrite)
	fmt.Printf("--- paper's rewrite (Figure 1, right) ---\n%s", bench.PaperRewrite)
}
