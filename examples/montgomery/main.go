// Montgomery multiplication — the paper's headline result (Figure 1).
//
// The target is the OpenSSL big-number kernel c1:c0 := np * mh:ml + c1 + c0
// as an -O0 compiler emits it (55 instructions of stack traffic and 32-bit
// partial products). gcc -O3 compresses it to 27 instructions but keeps the
// four-multiply decomposition; the paper's STOKE discovers an 11-instruction
// kernel built around the hardware widening multiply.
//
//	go run ./examples/montgomery [-proposals N]
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/pipeline"
)

func main() {
	proposals := flag.Int64("proposals", 300000, "optimization proposals per chain")
	flag.Parse()

	bench, err := core.Benchmark("mont")
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("llvm -O0 target: %2d instructions, %5.1f cycles (pipeline model)\n",
		bench.Target.InstCount(), pipeline.Cycles(bench.Target))
	fmt.Printf("gcc -O3:         %2d instructions, %5.1f cycles\n",
		bench.GccO3.InstCount(), pipeline.Cycles(bench.GccO3))
	fmt.Printf("paper's STOKE:   %2d instructions, %5.1f cycles (%.2fx over gcc -O3)\n\n",
		bench.PaperRewrite.InstCount(), pipeline.Cycles(bench.PaperRewrite),
		pipeline.Cycles(bench.GccO3)/pipeline.Cycles(bench.PaperRewrite))

	report, err := core.Optimize(bench.Kernel, core.Options{
		Seed:         7,
		OptChains:    4,
		OptProposals: *proposals,
		Ell:          30,
		// Synthesis rarely lands a 55-instruction kernel at laptop scale;
		// run a short phase and rely on optimization (§4.7: "even when
		// synthesis fails, optimization is still possible").
		SynthChains:    2,
		SynthProposals: 50000,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("our search:      %2d instructions, %5.1f cycles, %.2fx over the -O0 target\n",
		report.Rewrite.InstCount(), pipeline.Cycles(report.Rewrite), report.Speedup())
	fmt.Printf("validator:       %v (%d refinement testcases)\n\n", report.Verdict, report.Refinements)
	fmt.Printf("--- discovered rewrite ---\n%s\n", report.Rewrite)
	fmt.Printf("--- paper's rewrite (Figure 1, right) ---\n%s", bench.PaperRewrite)
}
