// SAXPY vectorization discovery (Figure 14).
//
// The target is the four-times unrolled scalar loop body the paper uses:
// x[i..i+3] = a*x[i..i+3] + y[i..i+3]. The production compilers stay
// scalar; the paper's STOKE discovers the SSE implementation (broadcast,
// packed multiply, packed add). This example runs the search with SSE
// proposals enabled and compares whatever it finds against the paper's
// vector rewrite.
//
//	go run ./examples/saxpy [-proposals N]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"repro/internal/kernels"
	"repro/internal/pipeline"
	"repro/stoke"
)

func main() {
	proposals := flag.Int64("proposals", 200000, "optimization proposals per chain")
	flag.Parse()

	bench, err := kernels.ByName("saxpy")
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("llvm -O0 target: %2d instructions, %5.1f cycles\n",
		bench.Target.InstCount(), pipeline.Cycles(bench.Target))
	fmt.Printf("gcc -O3 scalar:  %2d instructions, %5.1f cycles\n",
		bench.GccO3.InstCount(), pipeline.Cycles(bench.GccO3))
	fmt.Printf("paper's SSE:     %2d instructions, %5.1f cycles\n\n",
		bench.PaperRewrite.InstCount(), pipeline.Cycles(bench.PaperRewrite))

	report, err := stoke.Optimize(context.Background(), bench.Kernel,
		stoke.WithSeed(9),
		stoke.WithChains(1, 4),
		stoke.WithBudgets(20000, *proposals),
		stoke.WithEll(24),
		stoke.WithSSE(true)) // vector opcodes in the proposal distribution
	if err != nil {
		log.Fatal(err)
	}

	usesSSE := false
	for _, in := range report.Rewrite.Insts {
		for i := uint8(0); i < in.N; i++ {
			if in.Opd[i].IsXmm() {
				usesSSE = true
			}
		}
	}
	fmt.Printf("our search:      %2d instructions, %5.1f cycles, %.2fx over target, SSE used: %v\n",
		report.Rewrite.InstCount(), pipeline.Cycles(report.Rewrite),
		report.Speedup(), usesSSE)
	fmt.Printf("validator:       %v\n\n", report.Verdict)
	fmt.Printf("--- discovered rewrite ---\n%s\n", report.Rewrite)
	fmt.Printf("--- paper's SSE rewrite (Figure 14) ---\n%s", bench.PaperRewrite)
}
