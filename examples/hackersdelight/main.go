// Hacker's Delight sweep — the p01..p25 benchmark of §6.1.
//
// Optimizes a selection of the 25 bit-twiddling kernels and prints a
// Figure 10 style table: the speedup of gcc -O3, icc -O3 and the stochastic
// search over the llvm -O0 style target, under the pipeline cycle model.
//
// The whole selection is submitted as one Engine.OptimizeAll batch, so the
// chains of every kernel interleave on one shared worker pool instead of
// running kernel-by-kernel.
//
//	go run ./examples/hackersdelight            # a fast subset
//	go run ./examples/hackersdelight -all       # all 25 kernels
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"strings"

	"repro/internal/kernels"
	"repro/internal/pipeline"
	"repro/stoke"
)

func main() {
	all := flag.Bool("all", false, "run all 25 kernels (slower)")
	flag.Parse()

	subset := map[string]bool{
		"p01": true, "p03": true, "p09": true, "p13": true,
		"p16": true, "p18": true, "p21": true,
	}

	var benches []kernels.Bench
	var ks []stoke.Kernel
	for _, bench := range kernels.All() {
		if !strings.HasPrefix(bench.Name, "p") {
			continue
		}
		if !*all && !subset[bench.Name] {
			continue
		}
		benches = append(benches, bench)
		ks = append(ks, bench.Kernel)
	}

	engine := stoke.NewEngine(stoke.EngineConfig{})
	defer engine.Close()

	reports, err := engine.OptimizeAll(context.Background(), ks,
		stoke.WithSeed(3),
		stoke.WithChains(1, 2),
		stoke.WithBudgets(30000, 80000),
		stoke.WithEll(16))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-6s %8s %8s %8s %10s %7s %7s\n",
		"kernel", "gcc-O3", "icc-O3", "STOKE", "validator", "swaps", "prunes")
	for i, bench := range benches {
		report := reports[i]
		base := pipeline.Cycles(bench.Target)
		star := " "
		if bench.Star {
			star = "*"
		}
		fmt.Printf("%s%-5s %8.2f %8.2f %8.2f %10v %7d %7d\n",
			star, bench.Name,
			base/pipeline.Cycles(bench.GccO3),
			base/pipeline.Cycles(bench.IccO3),
			report.Speedup(),
			report.Verdict,
			report.Swaps, report.Prunes)
	}
	fmt.Println("\n(* = the paper's STOKE found an algorithmically distinct rewrite;")
	fmt.Println(" swaps/prunes = cross-chain coordinator activity: replica exchanges on the")
	fmt.Println(" β ladder and stagnant chains reseeded from each kernel's global best)")
}
