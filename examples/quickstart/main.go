// Quickstart: superoptimize a tiny stack-heavy function.
//
// This is the smallest end-to-end use of the library: parse an llvm -O0
// style listing, annotate its inputs and outputs, run the stochastic
// search, and print the verified rewrite.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
)

func main() {
	// rax := rdi + rsi, the way an -O0 compiler writes it: arguments
	// spilled to the stack and reloaded around the add.
	target := core.MustParse(`
  movq rdi, -8(rsp)
  movq rsi, -16(rsp)
  movq -8(rsp), rax
  addq -16(rsp), rax
`)

	kernel := core.NewKernel("quickstart-add", target,
		core.WithInputs(core.RDI, core.RSI),
		core.WithOutput64(core.RAX))

	report, err := core.Optimize(kernel, core.Options{
		Seed:           42,
		SynthChains:    2,
		OptChains:      2,
		SynthProposals: 50000,
		OptProposals:   50000,
		Ell:            12,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("target (%d instructions):\n%s\n", target.InstCount(), target)
	fmt.Printf("rewrite (%d instructions, %.2fx faster, validator: %v):\n%s\n",
		report.Rewrite.InstCount(), report.Speedup(), report.Verdict, report.Rewrite)

	// The validator can also be used standalone: prove the rewrite equals
	// the target on rax for every machine state.
	res := core.Equivalent(target, report.Rewrite, core.RAX)
	fmt.Printf("independent equivalence check: %v\n", res.Verdict)
}
