// Quickstart: superoptimize a tiny stack-heavy function.
//
// This is the smallest end-to-end use of the public stoke package: parse
// an llvm -O0 style listing, annotate its inputs and outputs, run the
// stochastic search under a cancellable context while streaming progress
// events, and print the verified rewrite.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/stoke"
)

func main() {
	// rax := rdi + rsi, the way an -O0 compiler writes it: arguments
	// spilled to the stack and reloaded around the add.
	target := stoke.MustParse(`
  movq rdi, -8(rsp)
  movq rsi, -16(rsp)
  movq -8(rsp), rax
  addq -16(rsp), rax
`)

	kernel := stoke.NewKernel("quickstart-add", target,
		stoke.WithInputs(stoke.RDI, stoke.RSI),
		stoke.WithOutput64(stoke.RAX))

	// Every run takes a context: cancel it (or let a deadline fire) and
	// Optimize returns the best rewrite found so far with Report.Partial
	// set, instead of blocking to the end of the budget.
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	// The observer streams typed events — phase transitions, per-chain
	// best costs, refinement testcases, validator verdicts — which is how
	// a server or dashboard watches a run live.
	report, err := stoke.Optimize(ctx, kernel,
		stoke.WithSeed(42),
		stoke.WithChains(2, 2),
		stoke.WithBudgets(50000, 50000),
		stoke.WithEll(12),
		stoke.WithObserver(func(ev stoke.Event) {
			if ev.Kind != stoke.EventChainImproved { // improvements are chatty
				fmt.Println("  event:", ev)
			}
		}))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("target (%d instructions):\n%s\n", target.InstCount(), target)
	fmt.Printf("rewrite (%d instructions, %.2fx faster, validator: %v, partial: %v):\n%s\n",
		report.Rewrite.InstCount(), report.Speedup(), report.Verdict,
		report.Partial, report.Rewrite)

	// The validator can also be used standalone: prove the rewrite equals
	// the target on rax for every machine state. A fresh context, not the
	// run's — if the search timed out above, the proof should still run.
	res := stoke.Equivalent(context.Background(), target, report.Rewrite, stoke.RAX)
	fmt.Printf("independent equivalence check: %v\n", res.Verdict)
}
