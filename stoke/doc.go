// Package stoke is the public API of the STOKE reproduction: a stochastic
// superoptimizer for loop-free x86-64 code (Schkufza, Sharma, Aiken:
// "Stochastic Superoptimization", ASPLOS 2013).
//
// The entry point is an Engine, a reusable, concurrency-safe scheduler that
// runs MCMC search chains — possibly from several kernels at once — on one
// shared worker pool:
//
//	engine := stoke.NewEngine(stoke.EngineConfig{})
//	defer engine.Close()
//
//	target := stoke.MustParse(`
//	  movq rdi, -8(rsp)
//	  movq rsi, -16(rsp)
//	  movq -8(rsp), rax
//	  addq -16(rsp), rax
//	`)
//	kernel := stoke.NewKernel("add", target,
//	    stoke.WithInputs(stoke.RDI, stoke.RSI),
//	    stoke.WithOutput64(stoke.RAX))
//
//	report, err := engine.Optimize(ctx, kernel,
//	    stoke.WithSeed(1),
//	    stoke.WithObserver(func(ev stoke.Event) { fmt.Println(ev) }))
//	fmt.Println(report.Rewrite)   // e.g. leaq (rdi,rsi), rax
//
// Every run takes a context.Context: cancellation or a deadline stops the
// search chains and the validator promptly, and Optimize returns the
// best-so-far Report with its Partial flag set rather than an error.
// Engine.OptimizeAll schedules the chains of many kernels onto the same
// pool, interleaving their work so the pool stays saturated.
//
// Search knobs are functional options (WithBudgets, WithChains, WithBetas,
// WithRestartAfter, ...), so explicit zero values — disabling restarts,
// say — are expressible. WithObserver streams typed progress events (phase
// transitions, per-chain best costs, refinement testcases, validator
// verdicts) to a callback, which is how a server or dashboard watches a
// run live.
//
// A kernel's chains do not run blind to each other: a coordinator
// (internal/search) checks them in at a fixed proposal cadence and, at
// each barrier, exchanges programs between adjacent rungs of a β ladder
// (parallel tempering — on by default, WithTempering(false) restores the
// paper's independent chains, WithLadder customises the rungs), shares
// every chain's best correct program through a global pool that re-ranking
// draws from and that stagnant chains reseed from, warm-starts testcase
// orders from a cross-chain rejection profile (WithSharedProfile), and
// runs the validator mid-search so a counterexample found against one
// chain's candidate refines every live chain's testcases. Coordination
// surfaces as EventSwap and EventPrune events and the Report's Swaps and
// Prunes counters, and every decision happens on a seeded schedule:
// fixed-seed runs are bit-for-bit reproducible whatever the pool width.
//
// Candidate scoring runs on a decode-once compiled pipeline that covers
// the whole proposal ISA — including the fixed-point SSE subset behind
// WithSSE and the divide family — with no interpretive fallback on the
// tracked kernels. Candidates compile against the kernel's live-out set,
// so a backward liveness pass suppresses both the flag computation and
// the register stores of writes nothing downstream — no condition
// consumer, no reader before a kill, no live-out exit — can observe,
// while preserving every read, fault and undefined-value count the cost
// function sees. By default the tail of each full evaluation runs
// batched: every compiled slot executes across all live testcase lanes in
// lockstep before advancing (dispatch and operand decode paid once per
// slot per chunk), diverging conditional jumps peel the minority side to
// the scalar tail while the majority stays batched, and the head of the
// adaptive testcase order keeps its one-testcase early-exit granularity —
// so accept/reject decisions, costs and rejection profiles are
// bit-identical to the per-testcase walk. WithBatchedEval(false) pins the
// per-testcase loop; the seed interpreter survives behind
// WithInterpretedEval as the semantic reference, held equal to the
// compiled path by randomized and fuzz-grade differential tests
// (internal/emu's FuzzCompiledVsInterpreted, FuzzPatchVsFreshCompile and
// FuzzBatchedVsScalar).
//
// # Verification pipeline
//
// Candidates reaching the validator are not sent straight to the SAT
// solver; each one runs the ordering replay → gate → SAT:
//
//   - Counterexample replay. Every genuine counterexample any run
//     discovers is canonicalised (internal/canon register bijections) into
//     a global bank — the attached rewrite store when there is one, an
//     engine-private in-memory bank otherwise — and every later candidate,
//     on any kernel, α-renamed or not, is first replayed against the
//     banked states through the compiled evaluator. A divergence is a
//     NotEqual verdict at evaluator cost, with no solver query
//     (Report.Proofs.ReplayKills, EventReplayKill).
//   - Pre-verification gate. Candidates scoring low on observed-output
//     agreement breadth, opcode-set similarity to the target, and
//     cost-margin plausibility against the proven incumbent have their
//     mid-search proof postponed — at most a bounded number of times — to
//     a later validation round (Report.Proofs.GateDeferrals,
//     EventGateDefer). WithVerifyGate(false) disables the gate,
//     WithCexBank(false) the bank.
//   - SAT. Whatever survives is proven by verify.Equivalent, with each
//     query's wall-clock and encoded clause count recorded in
//     Report.Proofs (TimeP/ClausesP percentiles).
//
// Both shortcuts are soundness-preserving by construction. A replay kill
// rests on re-running the *target* concretely on the banked state, so the
// refuting testcase is the same evidence a SAT counterexample yields; a
// stale or foreign bank entry either fails to materialise or produces a
// testcase the candidate passes, degrading to the plain SAT call, never a
// wrong kill. The gate only defers — the end-of-round validation loop
// never consults it — so every rewrite served or reported as proven is
// still backed by a SAT Equal. Budget-exhausted Unknown verdicts are never
// memoized (a later round may afford the proof); a symbolic NotEqual whose
// counterexample fails to reproduce on the emulator is surfaced as
// EventModelMismatch and counted, never silently downgraded.
//
// # Serving mode and the rewrite store
//
// Proven rewrites can be cached across runs, processes and machines:
// WithRewriteStore attaches a content-addressed store (internal/store) in
// which kernels are keyed by their canonical fingerprint (internal/canon —
// register/label renaming, constant abstraction, live-out normalisation,
// commutative scale-1 addressing-form normalisation), so α-equivalent
// submissions collide. A run whose fingerprint hits the
// store returns the proven rewrite immediately — after replaying the
// stored counterexample set plus freshly generated testcases through the
// compiled evaluator as revalidation — without launching a search
// (Report.CacheHit, Engine.SearchesLaunched); a same-class near-miss
// (equal skeleton, different constants) warm-starts the search from the
// cached rewrite, its counterexamples and its rejection profile.
// WithCacheOnly turns Optimize into the synchronous probe a serving
// front-end issues before queueing an async job (ErrCacheMiss on a cold
// fingerprint).
//
// cmd/stoke-serve wires this into a long-running service (internal/server):
// an HTTP/JSON job API with SSE event streaming, per-tenant concurrency
// budgets, in-flight dedup, and graceful drain. Running it and submitting
// a job:
//
//	$ stoke-serve -addr :8080 -store rewrites.jsonl &
//	$ curl -s localhost:8080/v1/jobs -d '{
//	    "kernel": {
//	      "name": "add",
//	      "target": "movq rdi, rax\naddq rsi, rax",
//	      "inputs": ["rdi", "rsi"],
//	      "outputs": ["rax"]
//	    }
//	  }'
//	{"id":"job-1","status":"queued", ...}
//	$ curl -s localhost:8080/v1/jobs/job-1          # poll until "done"
//	$ curl -N  localhost:8080/v1/jobs/job-1/events  # live engine events (SSE)
//	$ curl -s  localhost:8080/statsz                # cache + job counters
//
// Resubmitting the same kernel — or any register-renamed variant — then
// answers synchronously from the store with "cache_hit": true, in
// microseconds instead of a search.
//
// For one-shot use without managing an Engine, the package-level Optimize
// creates a transient pool sized to the machine.
package stoke
