package stoke

import (
	"context"
	"math/rand"

	"repro/internal/emu"
	"repro/internal/testgen"
	"repro/internal/verify"
	"repro/internal/x64"
)

// Program is a loop-free x86-64 instruction sequence.
type Program = x64.Program

// Kernel describes one optimization target: the -O0 style input binary, the
// annotated driver that generates inputs for it, and its live outputs.
type Kernel struct {
	Name   string
	Target *x64.Program
	Spec   testgen.Spec

	// LiveMem names the live memory ranges for the validator (the
	// testcase layer discovers live memory dynamically; the symbolic layer
	// needs the annotation).
	LiveMem []verify.MemRange

	// Pointers lists registers that carry addresses; counterexample
	// register values never override them (a counterexample pointing rdi
	// into unmapped space is not a runnable testcase).
	Pointers x64.RegSet

	// SSE enables vector opcodes in the proposal distribution.
	SSE bool
}

// Register aliases for kernel annotations.
const (
	RAX = x64.RAX
	RCX = x64.RCX
	RDX = x64.RDX
	RBX = x64.RBX
	RSP = x64.RSP
	RBP = x64.RBP
	RSI = x64.RSI
	RDI = x64.RDI
	R8  = x64.R8
	R9  = x64.R9
	R10 = x64.R10
	R11 = x64.R11
	R12 = x64.R12
	R13 = x64.R13
	R14 = x64.R14
	R15 = x64.R15
)

// Parse reads assembly in the paper's AT&T-flavoured listing syntax.
func Parse(src string) (*Program, error) { return x64.Parse(src) }

// MustParse is Parse, panicking on malformed input.
func MustParse(src string) *Program { return x64.MustParse(src) }

// KernelOption customises NewKernel.
type KernelOption func(*kernelCfg)

type kernelCfg struct {
	inputs    []x64.Reg
	inputs32  []x64.Reg
	outputs   []testgen.LiveReg
	stackSize int
	sse       bool
}

// WithInputs declares 64-bit input registers, sampled uniformly at random.
func WithInputs(regs ...x64.Reg) KernelOption {
	return func(c *kernelCfg) { c.inputs = append(c.inputs, regs...) }
}

// WithInputs32 declares 32-bit input registers (the upper halves are zero).
func WithInputs32(regs ...x64.Reg) KernelOption {
	return func(c *kernelCfg) { c.inputs32 = append(c.inputs32, regs...) }
}

// WithOutput64 declares 64-bit live output registers.
func WithOutput64(regs ...x64.Reg) KernelOption {
	return func(c *kernelCfg) {
		for _, r := range regs {
			c.outputs = append(c.outputs, testgen.LiveReg{Reg: r, Width: 8})
		}
	}
}

// WithOutput32 declares 32-bit live output registers.
func WithOutput32(regs ...x64.Reg) KernelOption {
	return func(c *kernelCfg) {
		for _, r := range regs {
			c.outputs = append(c.outputs, testgen.LiveReg{Reg: r, Width: 4})
		}
	}
}

// WithStack provides a stack segment of the given size (default 512 bytes;
// always present so rsp-relative scratch works).
func WithStack(bytes int) KernelOption {
	return func(c *kernelCfg) { c.stackSize = bytes }
}

// WithVectorOps enables vector opcodes in the proposal distribution for
// this kernel. (The per-run WithSSE option overrides it either way.)
func WithVectorOps() KernelOption {
	return func(c *kernelCfg) { c.sse = true }
}

// NewKernel builds a register-to-register kernel description from a target
// program and annotations. Memory-rich kernels (arrays, pointers) should
// construct Kernel directly with a custom testgen.Spec — see
// internal/kernels for full examples.
func NewKernel(name string, target *Program, opts ...KernelOption) Kernel {
	cfg := kernelCfg{stackSize: 512}
	for _, o := range opts {
		o(&cfg)
	}
	spec := testgen.Spec{
		BuildInput: func(rng *rand.Rand) *emu.Snapshot {
			a := testgen.NewArena(0x100000)
			a.AllocStack(cfg.stackSize)
			for _, r := range cfg.inputs {
				a.SetReg(r, rng.Uint64())
			}
			for _, r := range cfg.inputs32 {
				a.SetReg(r, uint64(rng.Uint32()))
			}
			return a.Snapshot()
		},
		LiveOut: testgen.LiveSet{GPRs: cfg.outputs},
	}
	return Kernel{
		Name:     name,
		Target:   target,
		Spec:     spec,
		Pointers: x64.RegSet(0).With(x64.RSP),
		SSE:      cfg.sse,
	}
}

// Equivalent asks the sound validator whether two programs agree on the
// given live output registers for every machine state (§5.2). The context
// cancels a long-running proof; a cancelled query answers Unknown.
func Equivalent(ctx context.Context, target, rewrite *Program, liveOut64 ...x64.Reg) verify.Result {
	var live verify.LiveOut
	for _, r := range liveOut64 {
		live.GPRs = append(live.GPRs, testgen.LiveReg{Reg: r, Width: 8})
	}
	return verify.Equivalent(ctx, target, rewrite, live, verify.DefaultConfig)
}
