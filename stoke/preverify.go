// The verification-cost reduction layer in front of verify.Equivalent:
// banked-counterexample replay (a candidate refuted by a concrete replayed
// divergence never reaches the solver), the feature-based pre-verification
// gate (low-scoring candidates have their mid-search proof deferred — and
// only deferred — to a later validation round), and per-query proof-cost
// accounting. The ordering is replay → gate → SAT, and every shortcut is
// soundness-preserving by construction:
//
//   - Replay can only *refute*. A bank testcase is materialised by running
//     the target concretely (testgen.FromInput), so a candidate failing it
//     diverges from the target on a real input — the same evidence a
//     SAT-extracted counterexample yields. A stale, foreign or poisoned
//     bank entry either fails to materialise or produces a testcase the
//     candidate passes; both degrade to the SAT call, never a wrong kill.
//   - The gate only *defers*. Deferral is bounded per candidate and the
//     end-of-round validation loop never consults the gate, so no verdict
//     is ever reported on the gate's word: anything served or reported as
//     proven is still backed by a SAT Equal.

package stoke

import (
	"math/rand"
	"time"

	"repro/internal/canon"
	"repro/internal/cost"
	"repro/internal/emu"
	"repro/internal/perf"
	"repro/internal/store"
	"repro/internal/testgen"
	"repro/internal/verify"
	"repro/internal/x64"
)

// maxGateDefers bounds how many scheduled validation rounds the gate may
// postpone one candidate's proof: after this many deferrals the proof runs
// regardless of score.
const maxGateDefers = 2

// gatePassScore is the score at or above which a candidate's proof runs
// immediately.
const gatePassScore = 0.6

// checkOutcome is one candidate's trip through the verification pipeline.
type checkOutcome struct {
	verdict verify.Verdict

	// tc is the refining testcase of a NotEqual outcome (refined true):
	// a concrete input on which the candidate diverges from the target.
	tc      testgen.Testcase
	refined bool

	// cached marks a verdict answered from the memo without any work this
	// call (no event was emitted, nothing changed).
	cached bool

	// replayKill marks a NotEqual established by bank replay, without a
	// SAT call.
	replayKill bool
}

// verifier runs candidates through replay → SAT and owns the verdict memo
// shared by the mid-search validator and the end-of-round validation loop.
// It is driven from one goroutine at a time (coordinator barriers and the
// end-of-round loop are sequential), so its state needs no locking.
type verifier struct {
	e   *Engine
	st  *settings
	k   Kernel
	m   *emu.Machine
	rng *rand.Rand
	rep *Report

	// prove runs one SAT equivalence query on the engine's pool and
	// reports its wall-clock.
	prove func(cand *x64.Program) (verify.Result, time.Duration)

	// curTests exposes the run's live (refined) testcase slice.
	curTests func() []testgen.Testcase

	// incumbentH exposes the Eq.13 cost of the best proven rewrite.
	incumbentH func() float64

	// bank is the counterexample bank (the attached rewrite store, or the
	// engine's private in-memory store); nil when WithCexBank(false).
	// form carries states between this kernel's register space and the
	// bank's canonical space.
	bank *store.Store
	form *canon.Form

	// bankRng materialises bank replays on its own stream, so the number
	// of banked counterexamples (which varies with what other runs have
	// discovered) never shifts the run's main rng stream.
	bankRng *rand.Rand

	// bankIdx tracks how much of the bank is already materialised into
	// bankTests (kernel-space replay testcases).
	bankIdx   int
	bankTests []testgen.Testcase

	// validated caches concluded verdicts per candidate listing. Equal,
	// Unsupported and NotEqual conclude; budget-exhausted Unknowns are
	// deliberately NOT memoized — a later round (larger τ, different
	// schedule) may afford the proof, and caching them would permanently
	// block it. Model-mismatch Unknowns are memoized: the disagreement is
	// deterministic, re-proving cannot change it.
	validated map[string]verify.Verdict

	// defers counts gate deferrals per candidate listing.
	defers map[string]int

	targetOps map[x64.Opcode]bool
	round     int
}

// canonCex carries a kernel-space machine state into canonical register
// space under form's bijections: the canonical register GPRToCanon(r)
// holds original r's value, so α-renamed siblings read their own registers
// back out via the same mapping.
func canonCex(form *canon.Form, in *emu.Snapshot) store.Cex {
	var cx store.Cex
	for r := x64.Reg(0); r < x64.NumGPR; r++ {
		cx.Regs[form.GPRToCanon(r)] = in.Regs[r]
	}
	for r := x64.Reg(0); r < x64.NumXMM; r++ {
		cx.Xmm[form.XMMToCanon(r)] = in.Xmm[r]
	}
	cx.Flags = uint8(in.Flags)
	return cx
}

// kernelCex is the inverse: a canonical-space counterexample mapped into
// this kernel's register space.
func kernelCex(form *canon.Form, cx store.Cex) store.Cex {
	var out store.Cex
	for r := x64.Reg(0); r < x64.NumGPR; r++ {
		out.Regs[r] = cx.Regs[form.GPRToCanon(r)]
	}
	for r := x64.Reg(0); r < x64.NumXMM; r++ {
		out.Xmm[r] = cx.Xmm[form.XMMToCanon(r)]
	}
	out.Flags = cx.Flags
	return out
}

// check runs one candidate through the pipeline: memo → bank replay → SAT,
// with verdict-specific memoization and proof-cost accounting. NotEqual
// outcomes always carry a refining testcase; a symbolic NotEqual whose
// counterexample does not reproduce concretely comes back Unknown with a
// model-mismatch recorded (never a silent downgrade).
func (v *verifier) check(cand *x64.Program) checkOutcome {
	key := cand.String()
	if vd, seen := v.validated[key]; seen {
		return checkOutcome{verdict: vd, cached: true}
	}

	// --- Bank replay: a concrete divergence on a banked input is a
	// NotEqual with SAT-grade evidence, at compiled-evaluator cost. ---
	if tc, ok := v.replayKill(cand); ok {
		v.validated[key] = verify.NotEqual
		v.rep.Proofs.ReplayKills++
		v.e.emit(v.st, Event{Kind: EventReplayKill, Kernel: v.k.Name, Round: v.round})
		return checkOutcome{verdict: verify.NotEqual, tc: tc, refined: true, replayKill: true}
	}

	// --- SAT proof. ---
	res, dur := v.prove(cand)
	v.rep.Proofs.SATCalls++
	v.rep.Proofs.Times = append(v.rep.Proofs.Times, dur)
	if res.Clauses > 0 {
		v.rep.Proofs.Clauses = append(v.rep.Proofs.Clauses, res.Clauses)
	}

	switch res.Verdict {
	case verify.Equal, verify.Unsupported:
		v.validated[key] = res.Verdict
		return checkOutcome{verdict: res.Verdict}
	case verify.Unknown:
		// Truncated (cancelled) or budget-exhausted: inconclusive either
		// way, and deliberately not memoized — a later validation round
		// must be free to retry the proof.
		return checkOutcome{verdict: verify.Unknown}
	}

	// NotEqual: re-derive the divergence concretely.
	tc, genuine := cexTestcase(v.k, v.m, v.rng, res.Cex, v.k.Target, cand)
	if !genuine {
		// The symbolic model refuted the candidate but its counterexample
		// does not distinguish the programs on the emulator — a
		// symbolic-model/emulator disagreement (typically an
		// uninterpreted-function artefact), surfaced as its own event and
		// counter rather than silently downgraded. Operationally the
		// query is inconclusive; memoized because the disagreement is
		// deterministic.
		v.validated[key] = verify.Unknown
		v.rep.Proofs.ModelMismatches++
		v.e.emit(v.st, Event{Kind: EventModelMismatch, Kernel: v.k.Name, Round: v.round})
		return checkOutcome{verdict: verify.Unknown}
	}
	v.validated[key] = verify.NotEqual
	v.bankCex(tc)
	return checkOutcome{verdict: verify.NotEqual, tc: tc, refined: true}
}

// bankCex canonicalises a genuine counterexample input and merges it into
// the global bank, where every later run — on this kernel or any α-renamed
// sibling — replays it before proving.
func (v *verifier) bankCex(tc testgen.Testcase) {
	if v.bank == nil || v.form == nil {
		return
	}
	// Persistence failure degrades to a forgetful bank, never fails a run.
	_ = v.bank.AddCexs([]store.Cex{canonCex(v.form, tc.In)})
}

// refreshBank materialises any bank entries that arrived since the last
// call: canonical-space states are mapped into this kernel's registers and
// run through the target (replayCex) to rebuild expected outputs. States
// the target cannot run (foreign or poisoned entries) are dropped here —
// which is the poisoned-cex degradation path: they simply never join the
// replay set.
func (v *verifier) refreshBank() {
	if v.bank == nil || v.form == nil {
		return
	}
	cexs := v.bank.BankCexs()
	for ; v.bankIdx < len(cexs); v.bankIdx++ {
		kcx := kernelCex(v.form, cexs[v.bankIdx])
		if tc, ok := replayCex(v.k, v.m, v.bankRng, kcx); ok {
			v.bankTests = append(v.bankTests, tc)
		}
	}
}

// replayKill replays the banked counterexamples against cand through the
// compiled evaluator (strict mode — exact agreement or divergence). On
// divergence it returns the specific refuting testcase, which the caller
// folds into τ exactly like a SAT-extracted counterexample.
func (v *verifier) replayKill(cand *x64.Program) (testgen.Testcase, bool) {
	v.refreshBank()
	if len(v.bankTests) == 0 {
		return testgen.Testcase{}, false
	}
	f := cost.New(v.bankTests[:len(v.bankTests):len(v.bankTests)],
		v.k.Spec.LiveOut, cost.Strict, 0)
	if f.Eval(cand, cost.MaxBudget).Cost == 0 {
		return testgen.Testcase{}, false // agrees on the whole bank
	}
	for i := range v.bankTests {
		f1 := cost.New(v.bankTests[i:i+1:i+1], v.k.Spec.LiveOut, cost.Strict, 0)
		if f1.Eval(cand, cost.MaxBudget).Cost != 0 {
			return v.bankTests[i], true
		}
	}
	return testgen.Testcase{}, false
}

// shouldDefer is the pre-verification gate, wired as the coordinator's
// Defer hook: true postpones the pool head's mid-search proof to a later
// scheduled round. Already-concluded candidates and candidates at their
// deferral bound always proceed, and the end-of-round validation loop
// never consults the gate — deferral trades *when* a proof runs, never
// whether.
func (v *verifier) shouldDefer(cand *x64.Program) bool {
	key := cand.String()
	if _, seen := v.validated[key]; seen {
		return false // memo answers for free; nothing to defer
	}
	if v.defers[key] >= maxGateDefers {
		return false
	}
	if v.gateScore(cand) >= gatePassScore {
		return false
	}
	v.defers[key]++
	v.rep.Proofs.GateDeferrals++
	v.e.emit(v.st, Event{Kind: EventGateDefer, Kernel: v.k.Name, Round: v.round})
	return true
}

// gateScore estimates how likely cand is to survive verification, in
// [0, 1]: observed-output agreement breadth over the current τ (weight
// 0.45), opcode-set similarity to the target (0.30), and Eq.13 cost-margin
// plausibility against the incumbent (0.25) — a candidate claiming to be
// drastically cheaper than anything proven so far usually owes the claim
// to a τ gap, the PrediPrune observation that implausible wins predict
// failed verification.
func (v *verifier) gateScore(cand *x64.Program) float64 {
	breadth := 1.0
	if tests := v.curTests(); len(tests) > 0 {
		f := cost.New(tests[:len(tests):len(tests)], v.k.Spec.LiveOut, cost.Strict, 0)
		breadth = float64(f.Agreement(cand)) / float64(len(tests))
	}

	sim := 1 - opcodeDistance(v.targetOps, opcodeSet(cand))

	plaus := 1.0
	if inc := v.incumbentH(); inc > 0 {
		mr := (inc - perf.H(cand)) / inc // fraction of the incumbent shaved off
		if mr > 0.5 {
			// Up to half off is an ordinary superoptimization win; beyond
			// that, plausibility decays linearly to zero at "free".
			plaus = 1 - (mr-0.5)/0.5
			if plaus < 0 {
				plaus = 0
			}
		}
	}

	return 0.45*breadth + 0.30*sim + 0.25*plaus
}

// opcodeSet collects the opcodes of p, ignoring padding and labels.
func opcodeSet(p *x64.Program) map[x64.Opcode]bool {
	ops := make(map[x64.Opcode]bool)
	for _, in := range p.Insts {
		if in.Op == x64.UNUSED || in.Op == x64.LABEL {
			continue
		}
		ops[in.Op] = true
	}
	return ops
}

// opcodeDistance is the Jaccard distance between two opcode sets (0 =
// identical, 1 = disjoint; two empty sets count as identical).
func opcodeDistance(a, b map[x64.Opcode]bool) float64 {
	union := len(a)
	inter := 0
	for op := range b {
		if a[op] {
			inter++
		} else {
			union++
		}
	}
	if union == 0 {
		return 0
	}
	return 1 - float64(inter)/float64(union)
}
