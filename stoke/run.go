// The system driver of Figure 9: it wires together testcase generation,
// coordinated synthesis and optimization chain groups (replica exchange,
// shared best-cost pruning, warm-started testcase profiles), the 20%
// re-ranking window, and the validator-in-the-loop testcase refinement —
// both mid-search, where counterexamples broadcast to every live chain,
// and between rounds — and returns the best verified rewrite for a
// kernel.

package stoke

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"repro/internal/canon"
	"repro/internal/cost"
	"repro/internal/emu"
	"repro/internal/mcmc"
	"repro/internal/perf"
	"repro/internal/pipeline"
	"repro/internal/search"
	"repro/internal/testgen"
	"repro/internal/verify"
	"repro/internal/x64"
)

// midValidateEvery is how many coordinator rounds pass between mid-search
// validation attempts on the global best candidate. Validation runs at a
// barrier (chains paused, deterministic schedule point), so the cadence
// trades SAT time against how early counterexamples reach live chains.
const midValidateEvery = 8

// optimize executes the full STOKE pipeline on one kernel.
func (e *Engine) optimize(ctx context.Context, k Kernel, st settings) (*Report, error) {
	rng := rand.New(rand.NewSource(st.seed))
	sse := k.SSE
	if st.sse != nil {
		sse = *st.sse
	}

	tests, err := testgen.Generate(k.Target, k.Spec, st.tests, rng)
	if err != nil {
		return nil, fmt.Errorf("stoke: %s: %w", k.Name, err)
	}
	generated := len(tests)

	rep := &Report{Kernel: k.Name, Target: k.Target, Tests: len(tests)}
	pools := mcmc.PoolsFor(k.Target, sse)

	// --- Rewrite-store probe (before any search): an exact fingerprint
	// hit revalidates against the fresh testcases and serves immediately;
	// a fingerprint-class near-miss yields warm-start material. ---
	var form *canon.Form
	var warm *cacheWarm
	if st.store != nil || st.cexBank {
		// The canonical form also carries counterexamples between this
		// kernel's register space and the bank's canonical space, so it is
		// computed even without a store when the cex bank is on.
		form = canon.Canonicalize(k.Target, liveOutFor(k))
	}
	if st.store != nil {
		probeStart := time.Now()
		rep.Fingerprint = form.FP.Hex()
		var hit *x64.Program
		hit, warm = e.cacheProbe(k, &st, form, tests, rng)
		if hit != nil {
			return e.serveHit(k, &st, rep, hit, time.Since(probeStart)), nil
		}
	}
	if st.cacheOnly {
		return nil, fmt.Errorf("stoke: %s: %w", k.Name, ErrCacheMiss)
	}
	e.searches.Add(1)

	// A near-miss seeds τ with the cached entry's replayed counterexample
	// set before any chain starts, so the search begins with the
	// discriminating inputs a previous search had to discover.
	if warm != nil {
		tests = append(tests[:len(tests):len(tests)], warm.tests...)
		e.emit(&st, Event{Kind: EventWarmStart, Kernel: k.Name,
			Cost: warm.costH, Tests: len(tests)})
	}

	// The kernel-wide rejection profile: every chain's early terminations
	// feed it, and every later chain (optimization chains after synthesis,
	// refinement rounds after round 0) warm-starts its testcase order from
	// it instead of re-learning which testcases discriminate. A near-miss
	// restores the counters a previous search learned for this fingerprint
	// class.
	var prof *cost.SharedProfile
	if st.sharedProfile {
		if warm != nil && len(warm.profile) > 0 {
			prof = cost.NewSharedProfileFromCounts(warm.profile, len(tests))
		} else {
			prof = cost.NewSharedProfile(len(tests))
		}
	}
	newCost := func(perfWeight float64) *cost.Fn {
		// The three-index slice keeps each chain's AddTest append from
		// sharing growth room with its siblings or with the run's own
		// refinement appends. Under register liveness the compiled pipeline
		// suppresses candidate writes to registers outside the kernel's
		// live-out set.
		ts := tests[:len(tests):len(tests)]
		var f *cost.Fn
		if st.regLiveness && !st.interpreted {
			f = cost.NewLive(ts, k.Spec.LiveOut, cost.Improved, perfWeight)
		} else {
			f = cost.New(ts, k.Spec.LiveOut, cost.Improved, perfWeight)
		}
		f.Shared = prof
		return f
	}

	// finish stamps the cycle-model fields on the way out; every return
	// path below funnels through it.
	finish := func(best *x64.Program, verdict verify.Verdict, partial bool) *Report {
		if best == nil {
			best = k.Target.Clone()
		}
		rep.Verdict = verdict
		rep.Rewrite = best.Packed()
		rep.Partial = partial
		rep.Tests = len(tests)
		rep.TargetCycles = pipeline.Cycles(k.Target)
		rep.RewriteCycles = pipeline.Cycles(rep.Rewrite)
		return rep
	}

	// --- Synthesis phase (§4.4): correctness only, random starts, the
	// chain group coordinated over a β ladder. ---
	e.emit(&st, Event{Kind: EventPhaseStart, Kernel: k.Name, Phase: "synthesis"})
	start := time.Now()
	synthRuns := make([]*mcmc.Run, st.synthChains)
	synthLadder := st.betaLadder(st.synthBeta, st.synthChains)
	for i := range synthRuns {
		i := i
		params := mcmc.PaperParams
		params.Ell = st.ell
		params.Beta = synthLadder[i]
		s := &mcmc.Sampler{
			Params:      params,
			Pools:       pools,
			Cost:        newCost(0),
			Rng:         rand.New(rand.NewSource(st.seed + 1000 + int64(i))),
			Interpreted: st.interpreted,
			Batched:     st.batched,
		}
		s.OnImprove = func(iter int64, c float64, p *x64.Program) {
			e.emit(&st, Event{Kind: EventChainImproved, Kernel: k.Name,
				Phase: "synthesis", Chain: i, Proposal: iter, Cost: c})
		}
		synthRuns[i] = s.Begin(s.RandomProgram(), st.synthProposals)
	}
	synthCoord := search.New(search.Config{
		Seed:     st.seed + 71,
		Exchange: st.tempering,
		Tests:    len(tests),
		Profile:  prof,
		OnSwap: func(i, j int, ci, cj float64) {
			e.emit(&st, Event{Kind: EventSwap, Kernel: k.Name,
				Phase: "synthesis", Chain: i, Partner: j, Cost: ci})
		},
	}, synthRuns)
	// Aggregate chain-execution time, not wall-clock: on a shared pool a
	// kernel's wall-clock includes every other kernel's queueing.
	synthCoord.Drive(ctx, func(bodies []func()) {
		rep.SynthTime += e.runBatch(ctx, bodies)
	})
	rep.Swaps += synthCoord.Swaps()
	synthResults := synthCoord.Results()
	e.emit(&st, Event{Kind: EventPhaseEnd, Kernel: k.Name, Phase: "synthesis",
		Elapsed: time.Since(start), RegFree: regFreeFraction(synthResults)})

	// Candidate starting points for optimization: the target, any
	// near-miss warm start from the rewrite store (possibly incorrect for
	// the new constants — chains funnel every candidate through eval and
	// the validator, so it can only help, never mislead), plus every
	// synthesized zero-cost rewrite.
	starts := []*x64.Program{k.Target}
	if warm != nil {
		starts = append(starts, warm.start)
	}
	for _, r := range synthResults {
		rep.Stats.Proposals += r.Stats.Proposals
		rep.Stats.Accepts += r.Stats.Accepts
		rep.Stats.TestsEvaluated += r.Stats.TestsEvaluated
		rep.Stats.RegFreeSlots += r.Stats.RegFreeSlots
		rep.Stats.RegWritingSlots += r.Stats.RegWritingSlots
		if r.ZeroCost && r.BestCorrect != nil {
			rep.SynthesisSucceeded = true
			starts = append(starts, r.BestCorrect)
		}
	}

	if ctx.Err() != nil {
		// Cancelled before optimization explored anything: hand back the
		// fastest of the target and any synthesized zero-cost rewrites,
		// matching the mid-optimization cancel path below. The target
		// always survives (correct by construction), so best is non-nil.
		best := fastestSurvivor(starts, tests, k, 1e30)
		if best == nil || best == k.Target {
			return finish(nil, verify.Equal, true), nil
		}
		return finish(best, verify.Unknown, true), nil
	}

	// --- Optimization phase (§4.4) with validator-driven testcase
	// refinement (§4.1): run the chains, validate the fastest surviving
	// candidate, and on a genuine counterexample fold it into τ and run
	// the optimization again over the refined search space. ---
	live := verify.LiveOut{
		GPRs:  k.Spec.LiveOut.GPRs,
		Xmms:  k.Spec.LiveOut.Xmms,
		Flags: k.Spec.LiveOut.Flags,
		Mem:   k.LiveMem,
	}
	m := emu.New()
	chainSeed := st.seed + 2000
	var best *x64.Program
	verdict := verify.Equal

	// verifyCancelled marks a proof attempt cut short by ctx: the only way
	// a run that reaches the final return below was truncated. (Chains cut
	// short mid-optimization take the early-return path instead.)
	verifyCancelled := false

	// allCandidates accumulates every round's testcase-correct programs so
	// a cancellation during a refinement round can still fall back on
	// earlier rounds' work (fastestSurvivor re-filters against the refined
	// testcases, so stale candidates are safe to carry).
	var allCandidates []*x64.Program

	// incumbentH is the modelled cost (Equation 13 latency sum — what an
	// eq-zero pool entry's search cost reduces to in the optimization
	// phase, whose chains run at perfWeight 1; the gate below is only
	// wired for that phase) of the best candidate proven Equal so far;
	// the target, correct by construction, seeds it. The coordinator's
	// cost-aware validation gate only spends SAT time on pool heads that
	// strictly beat it: a tie is gated deliberately — equal-cost
	// candidates cannot displace the incumbent in the final re-ranking,
	// and proving them mid-search is exactly the SAT waste the gate
	// exists to avoid. Their verdicts (and any counterexample broadcast
	// they would have triggered) wait for the end-of-round validation
	// loop, which is gated only by the verdict cache.
	incumbentH := perf.H(k.Target)

	// vrf is the verification pipeline in front of the solver: a verdict
	// memo shared by the mid-search validator and the end-of-round
	// validation loop (a candidate proven Equal at a barrier never pays
	// for a second proof; budget-exhausted Unknowns are NOT memoized, so
	// later rounds can retry), banked-counterexample replay before any SAT
	// call, the pre-verification gate, and per-query proof-cost samples.
	bank := e.bank
	if st.store != nil {
		bank = st.store // a persistent store doubles as the bank
	}
	if !st.cexBank {
		bank = nil
	}
	vrf := &verifier{
		e: e, st: &st, k: k, m: m, rng: rng, rep: rep,
		form:       form,
		bank:       bank,
		bankRng:    rand.New(rand.NewSource(st.seed + 424243)),
		validated:  map[string]verify.Verdict{},
		defers:     map[string]int{},
		targetOps:  opcodeSet(k.Target),
		curTests:   func() []testgen.Testcase { return tests },
		incumbentH: func() float64 { return incumbentH },
		prove: func(cand *x64.Program) (verify.Result, time.Duration) {
			var res verify.Result
			var vdur time.Duration
			e.runTask(ctx, func() {
				vStart := time.Now()
				res = verify.Equivalent(ctx, k.Target, cand, live, st.verify)
				vdur = time.Since(vStart)
			})
			rep.VerifyTime += vdur
			return res, vdur
		},
	}

	for round := 0; ; round++ {
		e.emit(&st, Event{Kind: EventPhaseStart, Kernel: k.Name,
			Phase: "optimization", Round: round})
		start = time.Now()
		budget := st.optProposals
		if round > 0 {
			budget /= 2 // refinement rounds re-optimize with a lighter budget
		}

		// midValidate is the coordinator's validator-in-the-loop hook: at
		// a barrier cadence it proves or refutes the ensemble's best
		// correct candidate, and a genuine counterexample comes back as a
		// testcase the coordinator broadcasts to every live chain — not
		// just the chain that found the candidate.
		vrf.round = round
		midValidate := func(cand *x64.Program) []testgen.Testcase {
			if ctx.Err() != nil {
				return nil
			}
			out := vrf.check(cand)
			if out.cached {
				return nil
			}
			if out.verdict == verify.Unknown && ctx.Err() != nil {
				return nil // truncated proof, not a verdict
			}
			if !out.replayKill {
				e.emit(&st, Event{Kind: EventVerdict, Kernel: k.Name,
					Round: round, Verdict: out.verdict})
			}
			if out.verdict == verify.Equal {
				if h := perf.H(cand); h < incumbentH {
					incumbentH = h
				}
			}
			if !out.refined {
				return nil
			}
			tests = append(tests[:len(tests):len(tests)], out.tc)
			rep.Refinements++
			e.emit(&st, Event{Kind: EventRefinement, Kernel: k.Name,
				Round: round, Tests: len(tests)})
			return []testgen.Testcase{out.tc}
		}

		nChains := st.optChains * len(starts)
		optRuns := make([]*mcmc.Run, nChains)
		optLadder := st.betaLadder(st.optBeta, nChains)
		for i := range optRuns {
			i := i
			params := mcmc.PaperParams
			params.Ell = st.ell
			params.Beta = optLadder[i]
			s := &mcmc.Sampler{
				Params:       params,
				Pools:        pools,
				Cost:         newCost(1),
				Rng:          rand.New(rand.NewSource(chainSeed + int64(i))),
				RestartAfter: st.restartAfter,
				Interpreted:  st.interpreted,
				Batched:      st.batched,
			}
			s.OnImprove = func(iter int64, c float64, p *x64.Program) {
				e.emit(&st, Event{Kind: EventChainImproved, Kernel: k.Name,
					Phase: "optimization", Round: round, Chain: i,
					Proposal: iter, Cost: c})
			}
			optRuns[i] = s.Begin(starts[i%len(starts)], budget)
		}
		cfg := search.Config{
			Seed:       chainSeed + 503,
			Exchange:   st.tempering,
			PruneAfter: st.restartAfter,
			Tests:      len(tests),
			Profile:    prof,
			OnSwap: func(i, j int, ci, cj float64) {
				e.emit(&st, Event{Kind: EventSwap, Kernel: k.Name,
					Phase: "optimization", Round: round, Chain: i, Partner: j, Cost: ci})
			},
			OnPrune: func(i int, adopted float64) {
				e.emit(&st, Event{Kind: EventPrune, Kernel: k.Name,
					Phase: "optimization", Round: round, Chain: i, Cost: adopted})
			},
		}
		if st.maxRefinements > 0 {
			cfg.ValidateEvery = midValidateEvery
			cfg.Validate = midValidate
			cfg.IncumbentCost = func() float64 { return incumbentH }
			if st.verifyGate {
				cfg.Defer = vrf.shouldDefer
			}
		}
		optCoord := search.New(cfg, optRuns)
		optCoord.Drive(ctx, func(bodies []func()) {
			rep.OptTime += e.runBatch(ctx, bodies)
		})
		rep.Swaps += optCoord.Swaps()
		rep.Prunes += optCoord.Prunes()
		rep.SkippedValidations += optCoord.SkippedValidations()
		optResults := optCoord.Results()
		poolCands := optCoord.Pool()
		chainSeed += int64(nChains) + 7
		e.emit(&st, Event{Kind: EventPhaseEnd, Kernel: k.Name,
			Phase: "optimization", Round: round, Elapsed: time.Since(start),
			RegFree: regFreeFraction(optResults)})

		// Candidates: the coordinator's global pool (chains' bests
		// harvested at every barrier, so a line later abandoned by a swap
		// or prune still competes) plus each chain's final best.
		candidates := make([]*x64.Program, 0, len(poolCands))
		bestCost := 1e30
		for _, pc := range poolCands {
			candidates = append(candidates, pc.Prog)
			if pc.Cost < bestCost {
				bestCost = pc.Cost
			}
		}
		for _, r := range optResults {
			rep.Stats.Proposals += r.Stats.Proposals
			rep.Stats.Accepts += r.Stats.Accepts
			rep.Stats.TestsEvaluated += r.Stats.TestsEvaluated
			rep.Stats.RegFreeSlots += r.Stats.RegFreeSlots
			rep.Stats.RegWritingSlots += r.Stats.RegWritingSlots
			if r.BestCorrect != nil {
				candidates = append(candidates, r.BestCorrect)
				if r.BestCorrectCost < bestCost {
					bestCost = r.BestCorrectCost
				}
			}
		}
		allCandidates = append(allCandidates, candidates...)

		if ctx.Err() != nil {
			// Cancelled mid-optimization: hand back the fastest
			// testcase-correct program without spending time on a proof.
			// Earlier rounds' candidates and starts join the pool — chains
			// that never got scheduled must not cost us the target, a
			// synthesized zero-cost rewrite, or a prior round's find — and
			// the cost window is disabled (correctness only).
			best = fastestSurvivor(append(allCandidates, starts...), tests, k, 1e30)
			if best == nil || best == k.Target {
				return finish(nil, verify.Equal, true), nil
			}
			return finish(best, verify.Unknown, true), nil
		}

		// Re-ranking (Figure 9, step 6) and validation: pick the fastest
		// candidate within 20% of the minimum cost that passes every
		// (possibly refined) testcase; genuine counterexamples shrink the
		// candidate pool without re-searching, and trigger a re-search
		// while refinement rounds remain.
		e.emit(&st, Event{Kind: EventPhaseStart, Kernel: k.Name,
			Phase: "validation", Round: round})
		vPhase := time.Now()
		reSearch := false
		for {
			best = fastestSurvivor(candidates, tests, k, bestCost)
			if best == nil {
				// Nothing survives the refined testcases; the target is
				// correct by construction.
				best = k.Target.Clone()
				verdict = verify.Equal
				break
			}

			// The verification pipeline: memo (a candidate the mid-search
			// validator already concluded on skips the proof), bank
			// replay, then SAT. The end-of-round loop never consults the
			// gate — every final verdict is replay- or SAT-backed. Proof
			// time lands in VerifyTime via the prove closure: like
			// SynthTime/OptTime it excludes time queued behind other runs
			// on the shared pool.
			out := vrf.check(best)
			if out.verdict == verify.Unknown && !out.cached && ctx.Err() != nil {
				verifyCancelled = true
			}
			verdict = out.verdict
			e.emit(&st, Event{Kind: EventVerdict, Kernel: k.Name,
				Round: round, Verdict: out.verdict})
			if out.verdict != verify.NotEqual {
				if out.verdict == verify.Equal {
					if h := perf.H(best); h < incumbentH {
						incumbentH = h
					}
				}
				break
			}
			if !out.refined {
				// A cached NotEqual has its counterexample folded into τ
				// already, so it cannot survive fastestSurvivor and reach
				// here; defensively treat it as inconclusive rather than
				// refining with a zero testcase.
				verdict = verify.Unknown
				break
			}
			tests = append(tests[:len(tests):len(tests)], out.tc)
			// Keep the shared profile's counters covering the refined τ,
			// so the next round's chains can learn (and warm-start on)
			// the new testcase's discriminating power.
			prof.Grow(len(tests))
			rep.Refinements++
			e.emit(&st, Event{Kind: EventRefinement, Kernel: k.Name,
				Round: round, Tests: len(tests)})
			if round < st.maxRefinements {
				reSearch = true
				break
			}
			// Out of search budget: keep filtering the existing pool
			// against the refined testcases.
		}
		e.emit(&st, Event{Kind: EventPhaseEnd, Kernel: k.Name,
			Phase: "validation", Round: round, Elapsed: time.Since(vPhase)})
		if !reSearch {
			break
		}
	}

	out := finish(best, verdict, verifyCancelled)
	// Write the proven outcome back to the rewrite store — including
	// no-improvement results (rewrite == target), which dedupe repeated
	// fruitless searches for the same kernel into one.
	if st.store != nil && form != nil && !out.Partial && out.Verdict == verify.Equal {
		cachePut(k, &st, form, out, tests, generated, prof)
	}
	return out, nil
}

// regFreeFraction is the fraction of register-writing slots whose writes
// the register-liveness pass suppressed across a phase's chains, by the
// dynamic per-proposal counts. Zero when the pass is off or nothing wrote
// a register.
func regFreeFraction(results []mcmc.Result) float64 {
	var free, writing int64
	for _, r := range results {
		free += r.Stats.RegFreeSlots
		writing += r.Stats.RegWritingSlots
	}
	if writing == 0 {
		return 0
	}
	return float64(free) / float64(writing)
}

// fastestSurvivor re-ranks candidates (Figure 9, step 6): the fastest
// program under the pipeline model among those within 20% of the minimum
// cost that pass every (possibly refined) testcase. Nil when none survive.
func fastestSurvivor(candidates []*x64.Program, tests []testgen.Testcase, k Kernel, bestCost float64) *x64.Program {
	evalCost := cost.New(tests, k.Spec.LiveOut, cost.Improved, 1)
	var best *x64.Program
	bestCycles := 1e30
	for _, c := range candidates {
		res := evalCost.Eval(c, cost.MaxBudget)
		if res.EqCost != 0 || res.Cost > bestCost*1.2 {
			continue
		}
		if cy := pipeline.Cycles(c); cy < bestCycles {
			bestCycles = cy
			best = c
		}
	}
	return best
}

// cexTestcase converts a counterexample into a testcase, reporting whether
// it concretely distinguishes target and rewrite.
func cexTestcase(k Kernel, m *emu.Machine, rng *rand.Rand, cex *verify.Counterexample,
	target, rewrite *x64.Program) (testgen.Testcase, bool) {

	// Start from a shape-correct random input and overwrite every
	// non-pointer register — including undefined ones, whose junk values
	// the counterexample may rely on — with the model's values. The stack
	// pointer is always a pointer: a counterexample rsp points nowhere
	// runnable.
	in := k.Spec.BuildInput(rng)
	testgen.FillUndefined(in, rng)
	for r := x64.Reg(0); r < x64.NumGPR; r++ {
		if r == x64.RSP || k.Pointers.Has(r) {
			continue
		}
		in.Regs[r] = cex.Regs[r]
	}
	for r := 0; r < x64.NumXMM; r++ {
		in.Xmm[r] = cex.Xmm[r]
	}
	in.Flags = cex.Flags

	tc, err := testgen.FromInput(m, target, k.Spec, in)
	if err != nil {
		return testgen.Testcase{}, false
	}

	// Does the refined testcase actually separate the programs?
	f := cost.New([]testgen.Testcase{tc}, k.Spec.LiveOut, cost.Strict, 0)
	if f.Eval(rewrite, cost.MaxBudget).Cost == 0 {
		return tc, false
	}
	return tc, true
}
