// The system driver of Figure 9: it wires together testcase generation,
// parallel synthesis and optimization chains, the 20% re-ranking window,
// and the validator-in-the-loop testcase refinement, and returns the best
// verified rewrite for a kernel.

package stoke

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"repro/internal/cost"
	"repro/internal/emu"
	"repro/internal/mcmc"
	"repro/internal/pipeline"
	"repro/internal/testgen"
	"repro/internal/verify"
	"repro/internal/x64"
)

// optimize executes the full STOKE pipeline on one kernel.
func (e *Engine) optimize(ctx context.Context, k Kernel, st settings) (*Report, error) {
	rng := rand.New(rand.NewSource(st.seed))
	sse := k.SSE
	if st.sse != nil {
		sse = *st.sse
	}

	tests, err := testgen.Generate(k.Target, k.Spec, st.tests, rng)
	if err != nil {
		return nil, fmt.Errorf("stoke: %s: %w", k.Name, err)
	}

	rep := &Report{Kernel: k.Name, Target: k.Target, Tests: len(tests)}
	pools := mcmc.PoolsFor(k.Target, sse)

	// finish stamps the cycle-model fields on the way out; every return
	// path below funnels through it.
	finish := func(best *x64.Program, verdict verify.Verdict, partial bool) *Report {
		if best == nil {
			best = k.Target.Clone()
		}
		rep.Verdict = verdict
		rep.Rewrite = best.Packed()
		rep.Partial = partial
		rep.Tests = len(tests)
		rep.TargetCycles = pipeline.Cycles(k.Target)
		rep.RewriteCycles = pipeline.Cycles(rep.Rewrite)
		return rep
	}

	// --- Synthesis phase (§4.4): correctness only, random starts. ---
	e.emit(&st, Event{Kind: EventPhaseStart, Kernel: k.Name, Phase: "synthesis"})
	start := time.Now()
	synthResults, synthBusy := e.runChains(ctx, st.synthChains, func(i int) mcmc.Result {
		params := mcmc.PaperParams
		params.Ell = st.ell
		params.Beta = st.synthBeta
		s := &mcmc.Sampler{
			Params:      params,
			Pools:       pools,
			Cost:        cost.New(tests, k.Spec.LiveOut, cost.Improved, 0),
			Rng:         rand.New(rand.NewSource(st.seed + 1000 + int64(i))),
			Interpreted: st.interpreted,
		}
		s.OnImprove = func(iter int64, c float64, p *x64.Program) {
			e.emit(&st, Event{Kind: EventChainImproved, Kernel: k.Name,
				Phase: "synthesis", Chain: i, Proposal: iter, Cost: c})
		}
		return s.Run(ctx, s.RandomProgram(), st.synthProposals)
	})
	// Aggregate chain-execution time, not wall-clock: on a shared pool a
	// kernel's wall-clock includes every other kernel's queueing.
	rep.SynthTime = synthBusy
	e.emit(&st, Event{Kind: EventPhaseEnd, Kernel: k.Name, Phase: "synthesis",
		Elapsed: time.Since(start)})

	// Candidate starting points for optimization: the target plus every
	// synthesized zero-cost rewrite.
	starts := []*x64.Program{k.Target}
	for _, r := range synthResults {
		rep.Stats.Proposals += r.Stats.Proposals
		rep.Stats.Accepts += r.Stats.Accepts
		rep.Stats.TestsEvaluated += r.Stats.TestsEvaluated
		if r.ZeroCost && r.BestCorrect != nil {
			rep.SynthesisSucceeded = true
			starts = append(starts, r.BestCorrect)
		}
	}

	if ctx.Err() != nil {
		// Cancelled before optimization explored anything: hand back the
		// fastest of the target and any synthesized zero-cost rewrites,
		// matching the mid-optimization cancel path below. The target
		// always survives (correct by construction), so best is non-nil.
		best := fastestSurvivor(starts, tests, k, 1e30)
		if best == nil || best == k.Target {
			return finish(nil, verify.Equal, true), nil
		}
		return finish(best, verify.Unknown, true), nil
	}

	// --- Optimization phase (§4.4) with validator-driven testcase
	// refinement (§4.1): run the chains, validate the fastest surviving
	// candidate, and on a genuine counterexample fold it into τ and run
	// the optimization again over the refined search space. ---
	live := verify.LiveOut{
		GPRs:  k.Spec.LiveOut.GPRs,
		Xmms:  k.Spec.LiveOut.Xmms,
		Flags: k.Spec.LiveOut.Flags,
		Mem:   k.LiveMem,
	}
	m := emu.New()
	chainSeed := st.seed + 2000
	var best *x64.Program
	verdict := verify.Equal

	// verifyCancelled marks a proof attempt cut short by ctx: the only way
	// a run that reaches the final return below was truncated. (Chains cut
	// short mid-optimization take the early-return path instead.)
	verifyCancelled := false

	// allCandidates accumulates every round's testcase-correct programs so
	// a cancellation during a refinement round can still fall back on
	// earlier rounds' work (fastestSurvivor re-filters against the refined
	// testcases, so stale candidates are safe to carry).
	var allCandidates []*x64.Program

	for round := 0; ; round++ {
		e.emit(&st, Event{Kind: EventPhaseStart, Kernel: k.Name,
			Phase: "optimization", Round: round})
		start = time.Now()
		budget := st.optProposals
		if round > 0 {
			budget /= 2 // refinement rounds re-optimize with a lighter budget
		}
		optResults, optBusy := e.runChains(ctx, st.optChains*len(starts), func(i int) mcmc.Result {
			params := mcmc.PaperParams
			params.Ell = st.ell
			params.Beta = st.optBeta
			s := &mcmc.Sampler{
				Params:       params,
				Pools:        pools,
				Cost:         cost.New(tests, k.Spec.LiveOut, cost.Improved, 1),
				Rng:          rand.New(rand.NewSource(chainSeed + int64(i))),
				RestartAfter: st.restartAfter,
				Interpreted:  st.interpreted,
			}
			s.OnImprove = func(iter int64, c float64, p *x64.Program) {
				e.emit(&st, Event{Kind: EventChainImproved, Kernel: k.Name,
					Phase: "optimization", Round: round, Chain: i,
					Proposal: iter, Cost: c})
			}
			return s.Run(ctx, starts[i%len(starts)], budget)
		})
		chainSeed += int64(st.optChains*len(starts)) + 7
		rep.OptTime += optBusy
		e.emit(&st, Event{Kind: EventPhaseEnd, Kernel: k.Name,
			Phase: "optimization", Round: round, Elapsed: time.Since(start)})

		var candidates []*x64.Program
		bestCost := 1e30
		for _, r := range optResults {
			rep.Stats.Proposals += r.Stats.Proposals
			rep.Stats.Accepts += r.Stats.Accepts
			rep.Stats.TestsEvaluated += r.Stats.TestsEvaluated
			if r.BestCorrect != nil {
				candidates = append(candidates, r.BestCorrect)
				if r.BestCorrectCost < bestCost {
					bestCost = r.BestCorrectCost
				}
			}
		}
		allCandidates = append(allCandidates, candidates...)

		if ctx.Err() != nil {
			// Cancelled mid-optimization: hand back the fastest
			// testcase-correct program without spending time on a proof.
			// Earlier rounds' candidates and starts join the pool — chains
			// that never got scheduled must not cost us the target, a
			// synthesized zero-cost rewrite, or a prior round's find — and
			// the cost window is disabled (correctness only).
			best = fastestSurvivor(append(allCandidates, starts...), tests, k, 1e30)
			if best == nil || best == k.Target {
				return finish(nil, verify.Equal, true), nil
			}
			return finish(best, verify.Unknown, true), nil
		}

		// Re-ranking (Figure 9, step 6) and validation: pick the fastest
		// candidate within 20% of the minimum cost that passes every
		// (possibly refined) testcase; genuine counterexamples shrink the
		// candidate pool without re-searching, and trigger a re-search
		// while refinement rounds remain.
		e.emit(&st, Event{Kind: EventPhaseStart, Kernel: k.Name,
			Phase: "validation", Round: round})
		vPhase := time.Now()
		reSearch := false
		for {
			best = fastestSurvivor(candidates, tests, k, bestCost)
			if best == nil {
				// Nothing survives the refined testcases; the target is
				// correct by construction.
				best = k.Target.Clone()
				verdict = verify.Equal
				break
			}

			// Timed inside the task: like SynthTime/OptTime, VerifyTime
			// excludes time queued behind other runs on the shared pool.
			var res verify.Result
			var vdur time.Duration
			e.runTask(ctx, func() {
				vStart := time.Now()
				res = verify.Equivalent(ctx, k.Target, best, live, st.verify)
				vdur = time.Since(vStart)
			})
			rep.VerifyTime += vdur
			if res.Verdict == verify.Unknown && ctx.Err() != nil {
				verifyCancelled = true
			}
			verdict = res.Verdict
			e.emit(&st, Event{Kind: EventVerdict, Kernel: k.Name,
				Round: round, Verdict: res.Verdict})
			if res.Verdict != verify.NotEqual {
				break
			}
			tc, genuine := cexTestcase(k, m, rng, res.Cex, k.Target, best)
			if !genuine {
				// Uninterpreted-function artefact: the counterexample does
				// not concretely distinguish the programs. The proof
				// attempt is inconclusive rather than refuting.
				verdict = verify.Unknown
				break
			}
			tests = append(tests, tc)
			rep.Refinements++
			e.emit(&st, Event{Kind: EventRefinement, Kernel: k.Name,
				Round: round, Tests: len(tests)})
			if round < st.maxRefinements {
				reSearch = true
				break
			}
			// Out of search budget: keep filtering the existing pool
			// against the refined testcases.
		}
		e.emit(&st, Event{Kind: EventPhaseEnd, Kernel: k.Name,
			Phase: "validation", Round: round, Elapsed: time.Since(vPhase)})
		if !reSearch {
			break
		}
	}

	return finish(best, verdict, verifyCancelled), nil
}

// fastestSurvivor re-ranks candidates (Figure 9, step 6): the fastest
// program under the pipeline model among those within 20% of the minimum
// cost that pass every (possibly refined) testcase. Nil when none survive.
func fastestSurvivor(candidates []*x64.Program, tests []testgen.Testcase, k Kernel, bestCost float64) *x64.Program {
	evalCost := cost.New(tests, k.Spec.LiveOut, cost.Improved, 1)
	var best *x64.Program
	bestCycles := 1e30
	for _, c := range candidates {
		res := evalCost.Eval(c, cost.MaxBudget)
		if res.EqCost != 0 || res.Cost > bestCost*1.2 {
			continue
		}
		if cy := pipeline.Cycles(c); cy < bestCycles {
			bestCycles = cy
			best = c
		}
	}
	return best
}

// cexTestcase converts a counterexample into a testcase, reporting whether
// it concretely distinguishes target and rewrite.
func cexTestcase(k Kernel, m *emu.Machine, rng *rand.Rand, cex *verify.Counterexample,
	target, rewrite *x64.Program) (testgen.Testcase, bool) {

	// Start from a shape-correct random input and overwrite every
	// non-pointer register — including undefined ones, whose junk values
	// the counterexample may rely on — with the model's values. The stack
	// pointer is always a pointer: a counterexample rsp points nowhere
	// runnable.
	in := k.Spec.BuildInput(rng)
	testgen.FillUndefined(in, rng)
	for r := x64.Reg(0); r < x64.NumGPR; r++ {
		if r == x64.RSP || k.Pointers.Has(r) {
			continue
		}
		in.Regs[r] = cex.Regs[r]
	}
	for r := 0; r < x64.NumXMM; r++ {
		in.Xmm[r] = cex.Xmm[r]
	}
	in.Flags = cex.Flags

	tc, err := testgen.FromInput(m, target, k.Spec, in)
	if err != nil {
		return testgen.Testcase{}, false
	}

	// Does the refined testcase actually separate the programs?
	f := cost.New([]testgen.Testcase{tc}, k.Spec.LiveOut, cost.Strict, 0)
	if f.Eval(rewrite, cost.MaxBudget).Cost == 0 {
		return tc, false
	}
	return tc, true
}
