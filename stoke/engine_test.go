package stoke

import (
	"context"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/cost"
	"repro/internal/emu"
	"repro/internal/testgen"
	"repro/internal/verify"
	"repro/internal/x64"
)

// addKernel is a minimal two-input kernel: rax := rdi + rsi, with an -O0
// flavoured target.
func addKernel() Kernel {
	return Kernel{
		Name: "add",
		Target: x64.MustParse(`
  movq rdi, -8(rsp)
  movq rsi, -16(rsp)
  movq -8(rsp), rax
  addq -16(rsp), rax
`),
		Spec: testgen.Spec{
			BuildInput: func(rng *rand.Rand) *emu.Snapshot {
				a := testgen.NewArena(0x10000)
				a.AllocStack(256)
				a.SetReg(x64.RDI, rng.Uint64())
				a.SetReg(x64.RSI, rng.Uint64())
				return a.Snapshot()
			},
			LiveOut: testgen.LiveSet{GPRs: []testgen.LiveReg{{Reg: x64.RAX, Width: 8}}},
		},
		Pointers: x64.RegSet(0).With(x64.RSP),
	}
}

func TestOptimizeEndToEnd(t *testing.T) {
	rep, err := Optimize(context.Background(), addKernel(),
		WithSeed(11),
		WithChains(2, 2),
		WithBudgets(60000, 60000),
		WithEll(12))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Rewrite == nil {
		t.Fatal("no rewrite")
	}
	if rep.Partial {
		t.Error("uncancelled run must not be partial")
	}
	if rep.Verdict == verify.NotEqual {
		t.Fatalf("final rewrite failed validation:\n%s", rep.Rewrite)
	}
	// The rewrite must be at least as fast as the stack-heavy target and
	// (given the tiny kernel) strictly shorter.
	if rep.Rewrite.InstCount() >= rep.Target.InstCount() {
		t.Errorf("rewrite has %d insts, target %d — no optimization found",
			rep.Rewrite.InstCount(), rep.Target.InstCount())
	}
	if rep.Speedup() < 1 {
		t.Errorf("speedup %.2f < 1", rep.Speedup())
	}
	t.Logf("add: %d -> %d insts, %.2fx, verdict %v, synthesis=%v",
		rep.Target.InstCount(), rep.Rewrite.InstCount(), rep.Speedup(),
		rep.Verdict, rep.SynthesisSucceeded)
	t.Logf("rewrite:\n%s", rep.Rewrite)
}

func TestOptimizeIsDeterministic(t *testing.T) {
	// Chains derive their generators from the seed and chain index, and
	// results are collected by index — so the outcome is independent of
	// worker-pool scheduling. Use pools of different sizes to prove it.
	opts := []Option{
		WithSeed(13),
		WithChains(1, 1),
		WithBudgets(5000, 5000),
		WithEll(10),
	}
	e1 := NewEngine(EngineConfig{Workers: 1})
	defer e1.Close()
	e4 := NewEngine(EngineConfig{Workers: 4})
	defer e4.Close()

	a, err := e1.Optimize(context.Background(), addKernel(), opts...)
	if err != nil {
		t.Fatal(err)
	}
	b, err := e4.Optimize(context.Background(), addKernel(), opts...)
	if err != nil {
		t.Fatal(err)
	}
	if a.Rewrite.String() != b.Rewrite.String() {
		t.Fatalf("same seed, different rewrites:\n%s\nvs\n%s", a.Rewrite, b.Rewrite)
	}
}

// TestCexRefinement checks the §4.1 counterexample path: the validator's
// counterexample against a subtly wrong rewrite must convert into a
// testcase that concretely separates the programs.
func TestCexRefinement(t *testing.T) {
	k := addKernel()
	rng := rand.New(rand.NewSource(17))

	// A near-miss: rax = rdi + rsi works except when the low 16 bits of
	// rsi cause a borrow pattern (addw only adds the low word).
	wrong := x64.MustParse(`
  movq rdi, rax
  addw si, ax
`).PadTo(12)
	live := verify.LiveOut{GPRs: k.Spec.LiveOut.GPRs}
	res := verify.Equivalent(context.Background(), k.Target, wrong, live, verify.DefaultConfig)
	if res.Verdict != verify.NotEqual || res.Cex == nil {
		t.Fatalf("validator must refute the word-add: %v", res.Verdict)
	}
	m := emu.New()
	tc, genuine := cexTestcase(k, m, rng, res.Cex, k.Target, wrong)
	if !genuine {
		t.Fatal("counterexample testcase does not separate the programs")
	}
	f := cost.New([]testgen.Testcase{tc}, k.Spec.LiveOut, cost.Strict, 0)
	if f.Eval(wrong, cost.MaxBudget).Cost == 0 {
		t.Fatal("refined testcase scored the wrong rewrite at zero")
	}
	if f.Eval(k.Target, cost.MaxBudget).Cost != 0 {
		t.Fatal("refined testcase must accept the target itself")
	}
}

// TestRefinementDropsBuggyRewrite runs the whole pipeline on a kernel whose
// cheapest near-rewrites are buggy under rare inputs, checking the final
// rewrite never fails validation.
func TestRefinementDropsBuggyRewrite(t *testing.T) {
	rep, err := Optimize(context.Background(), addKernel(),
		WithSeed(23),
		WithChains(1, 2),
		WithBudgets(10000, 40000),
		WithEll(10))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verdict == verify.NotEqual {
		t.Fatalf("pipeline returned an unvalidated rewrite:\n%s", rep.Rewrite)
	}
	t.Logf("verdict %v after %d refinements", rep.Verdict, rep.Refinements)
}

// TestConcurrentOptimize checks that one Engine safely serves simultaneous
// Optimize calls: all runs complete, independently, on the shared pool.
func TestConcurrentOptimize(t *testing.T) {
	e := NewEngine(EngineConfig{Workers: 4})
	defer e.Close()

	const runs = 4
	reports := make([]*Report, runs)
	errs := make([]error, runs)
	var wg sync.WaitGroup
	for i := 0; i < runs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			reports[i], errs[i] = e.Optimize(context.Background(), addKernel(),
				WithSeed(int64(100+i)),
				WithChains(2, 2),
				WithBudgets(8000, 8000),
				WithEll(10))
		}(i)
	}
	wg.Wait()
	for i := 0; i < runs; i++ {
		if errs[i] != nil {
			t.Fatalf("run %d: %v", i, errs[i])
		}
		if reports[i] == nil || reports[i].Rewrite == nil {
			t.Fatalf("run %d: missing report", i)
		}
		if reports[i].Verdict == verify.NotEqual {
			t.Errorf("run %d: unvalidated rewrite", i)
		}
	}
}

// TestOptimizeAllInterleaves runs two kernels through one OptimizeAll call
// and asserts their chains actually interleave on the shared pool: events
// from the second kernel arrive between the first kernel's first and last
// events.
func TestOptimizeAllInterleaves(t *testing.T) {
	e := NewEngine(EngineConfig{Workers: 2})
	defer e.Close()

	var mu sync.Mutex
	var order []string // kernel name per observed event

	k1 := addKernel()
	k1.Name = "add-a"
	k2 := addKernel()
	k2.Name = "add-b"

	reports, err := e.OptimizeAll(context.Background(), []Kernel{k1, k2},
		WithSeed(5),
		WithChains(4, 4),
		WithBudgets(30000, 30000),
		WithEll(10),
		WithObserver(func(ev Event) {
			mu.Lock()
			order = append(order, ev.Kernel)
			mu.Unlock()
		}))
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 2 {
		t.Fatalf("want 2 reports, got %d", len(reports))
	}
	for i, rep := range reports {
		if rep == nil || rep.Rewrite == nil {
			t.Fatalf("kernel %d: missing report", i)
		}
	}
	if reports[0].Kernel != "add-a" || reports[1].Kernel != "add-b" {
		t.Fatalf("reports out of order: %s, %s", reports[0].Kernel, reports[1].Kernel)
	}

	// Interleaving: some add-b event must land strictly between the first
	// and last add-a events (and vice versa, by symmetry of the check).
	first, last := -1, -1
	for i, name := range order {
		if name == "add-a" {
			if first < 0 {
				first = i
			}
			last = i
		}
	}
	interleaved := false
	for i := first + 1; i < last; i++ {
		if order[i] == "add-b" {
			interleaved = true
			break
		}
	}
	if !interleaved {
		t.Errorf("kernels did not interleave on the shared pool (%d events)", len(order))
	}
}
