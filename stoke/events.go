package stoke

import (
	"fmt"
	"time"

	"repro/internal/verify"
)

// EventKind discriminates progress events.
type EventKind int

// Event kinds.
const (
	// EventPhaseStart and EventPhaseEnd bracket the "synthesis",
	// "optimization" and "validation" phases of a run; optimization and
	// validation repeat once per refinement round.
	EventPhaseStart EventKind = iota
	EventPhaseEnd
	// EventChainImproved reports a chain's best cost dropping.
	EventChainImproved
	// EventRefinement reports a counterexample testcase folded into τ —
	// at the end-of-round validation, or mid-search, where the coordinator
	// broadcasts it to every live chain of the kernel.
	EventRefinement
	// EventVerdict reports one validator query's outcome.
	EventVerdict
	// EventSwap reports an accepted replica exchange: the programs of
	// chains Chain and Partner (adjacent rungs of the β ladder) traded
	// places.
	EventSwap
	// EventPrune reports a stagnant chain abandoning its own hopeless
	// best and reseeding from the kernel's global best-so-far program.
	EventPrune
	// EventCacheHit reports a run served entirely from the rewrite store:
	// the cached rewrite revalidated against fresh testcases and the
	// stored counterexample set, so no search was launched.
	EventCacheHit
	// EventWarmStart reports a fingerprint-class near-miss: a cached
	// rewrite for the same canonical skeleton (different constants)
	// seeded the optimization chains, τ and the rejection profile.
	EventWarmStart
	// EventReplayKill reports a candidate refuted by replaying a banked
	// counterexample through the compiled evaluator — a NotEqual
	// established without a SAT call.
	EventReplayKill
	// EventGateDefer reports the pre-verification gate postponing a
	// low-scoring candidate's proof to a later validation round (never
	// skipping it: deferral is bounded per candidate).
	EventGateDefer
	// EventModelMismatch reports a symbolic-model/emulator disagreement: a
	// SAT NotEqual whose extracted counterexample fails to reproduce any
	// divergence on the emulator. It is a latent soundness signal, not a
	// non-verdict; tracked kernels must never produce one.
	EventModelMismatch
)

func (k EventKind) String() string {
	switch k {
	case EventPhaseStart:
		return "phase-start"
	case EventPhaseEnd:
		return "phase-end"
	case EventChainImproved:
		return "chain-improved"
	case EventRefinement:
		return "refinement"
	case EventVerdict:
		return "verdict"
	case EventSwap:
		return "swap"
	case EventPrune:
		return "prune"
	case EventCacheHit:
		return "cache-hit"
	case EventWarmStart:
		return "warm-start"
	case EventReplayKill:
		return "replay-kill"
	case EventGateDefer:
		return "gate-defer"
	case EventModelMismatch:
		return "model-mismatch"
	}
	return fmt.Sprintf("EventKind(%d)", int(k))
}

// Event is one typed progress report from a running optimization. Fields
// beyond Kind and Kernel are populated per kind, as documented.
type Event struct {
	Kind   EventKind
	Kernel string

	// Phase is "synthesis", "optimization" or "validation" (phase and
	// chain events).
	Phase string

	// Round is the refinement round, starting at 0 (optimization and
	// validation events).
	Round int

	// Chain identifies the reporting chain within its phase
	// (EventChainImproved, EventSwap, EventPrune).
	Chain int

	// Partner is the other replica of an accepted exchange (EventSwap).
	Partner int

	// Proposal is the chain-local proposal index at which the improvement
	// occurred (EventChainImproved).
	Proposal int64

	// Cost is the chain's new best cost (EventChainImproved), the colder
	// replica's pre-swap cost (EventSwap), or the adopted global best
	// cost (EventPrune).
	Cost float64

	// Tests is the testcase count after refinement (EventRefinement).
	Tests int

	// Verdict is the validator's answer (EventVerdict).
	Verdict verify.Verdict

	// Elapsed is the phase duration (EventPhaseEnd).
	Elapsed time.Duration

	// RegFree is the fraction of register-writing slots whose writes the
	// register-liveness pass suppressed across the phase's chains, by the
	// dynamic per-proposal counts (EventPhaseEnd of the synthesis and
	// optimization phases; zero when the pass is off).
	RegFree float64
}

// String renders the event as a single log-friendly line.
func (e Event) String() string {
	switch e.Kind {
	case EventPhaseStart:
		return fmt.Sprintf("[%s] %s round %d: start", e.Kernel, e.Phase, e.Round)
	case EventPhaseEnd:
		if e.RegFree > 0 {
			return fmt.Sprintf("[%s] %s round %d: done in %v (reg-free %.0f%%)",
				e.Kernel, e.Phase, e.Round, e.Elapsed, 100*e.RegFree)
		}
		return fmt.Sprintf("[%s] %s round %d: done in %v", e.Kernel, e.Phase, e.Round, e.Elapsed)
	case EventChainImproved:
		return fmt.Sprintf("[%s] %s chain %d: cost %.1f at proposal %d",
			e.Kernel, e.Phase, e.Chain, e.Cost, e.Proposal)
	case EventRefinement:
		return fmt.Sprintf("[%s] refinement: counterexample folded in, %d testcases", e.Kernel, e.Tests)
	case EventVerdict:
		return fmt.Sprintf("[%s] validator: %v", e.Kernel, e.Verdict)
	case EventSwap:
		return fmt.Sprintf("[%s] %s: replicas %d and %d exchanged programs (cost %.1f)",
			e.Kernel, e.Phase, e.Chain, e.Partner, e.Cost)
	case EventPrune:
		return fmt.Sprintf("[%s] %s chain %d: pruned to the global best (cost %.1f)",
			e.Kernel, e.Phase, e.Chain, e.Cost)
	case EventCacheHit:
		return fmt.Sprintf("[%s] cache hit: proven rewrite served from the store", e.Kernel)
	case EventWarmStart:
		return fmt.Sprintf("[%s] near-miss warm start from the store (cost %.1f)", e.Kernel, e.Cost)
	case EventReplayKill:
		return fmt.Sprintf("[%s] replay kill: banked counterexample refuted the candidate without a proof", e.Kernel)
	case EventGateDefer:
		return fmt.Sprintf("[%s] gate: proof deferred to a later validation round", e.Kernel)
	case EventModelMismatch:
		return fmt.Sprintf("[%s] MODEL MISMATCH: symbolic NotEqual but the counterexample does not reproduce on the emulator", e.Kernel)
	}
	return fmt.Sprintf("[%s] %v", e.Kernel, e.Kind)
}
