package stoke

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/canon"
	"repro/internal/cost"
	"repro/internal/emu"
	"repro/internal/perf"
	"repro/internal/store"
	"repro/internal/testgen"
	"repro/internal/verify"
	"repro/internal/x64"
)

// leanAddKernel is rax := rdi + rsi without the stack traffic — a target
// whose α-renamed sibling (r8/r9 → rbx) shares a canonical form, used to
// exercise canonical-space counterexample replay.
func leanAddKernel() Kernel {
	return Kernel{
		Name: "lean-add",
		Target: x64.MustParse(`
  movq rdi, rax
  addq rsi, rax
`),
		Spec: testgen.Spec{
			BuildInput: func(rng *rand.Rand) *emu.Snapshot {
				a := testgen.NewArena(0x10000)
				a.AllocStack(256)
				a.SetReg(x64.RDI, rng.Uint64())
				a.SetReg(x64.RSI, rng.Uint64())
				return a.Snapshot()
			},
			LiveOut: testgen.LiveSet{GPRs: []testgen.LiveReg{{Reg: x64.RAX, Width: 8}}},
		},
		Pointers: x64.RegSet(0).With(x64.RSP),
	}
}

// leanAddRenamed is leanAddKernel under rdi→r8, rsi→r9, rax→rbx.
func leanAddRenamed() Kernel {
	return Kernel{
		Name: "lean-add-renamed",
		Target: x64.MustParse(`
  movq r8, rbx
  addq r9, rbx
`),
		Spec: testgen.Spec{
			BuildInput: func(rng *rand.Rand) *emu.Snapshot {
				a := testgen.NewArena(0x10000)
				a.AllocStack(256)
				a.SetReg(x64.R8, rng.Uint64())
				a.SetReg(x64.R9, rng.Uint64())
				return a.Snapshot()
			},
			LiveOut: testgen.LiveSet{GPRs: []testgen.LiveReg{{Reg: x64.RBX, Width: 8}}},
		},
		Pointers: x64.RegSet(0).With(x64.RSP),
	}
}

// newTestVerifier assembles a verifier over k the way optimize does, with a
// stubbed prover.
func newTestVerifier(t *testing.T, k Kernel, bank *store.Store,
	prove func(*x64.Program) (verify.Result, time.Duration), obs func(Event)) (*verifier, *Report) {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	tests, err := testgen.Generate(k.Target, k.Spec, 8, rng)
	if err != nil {
		t.Fatal(err)
	}
	var opts []Option
	if obs != nil {
		opts = append(opts, WithObserver(obs))
	}
	st := resolve(opts)
	e := NewEngine(EngineConfig{Workers: 1})
	t.Cleanup(e.Close)
	rep := &Report{Kernel: k.Name}
	v := &verifier{
		e: e, st: &st, k: k, m: emu.New(), rng: rng, rep: rep,
		form:       canon.Canonicalize(k.Target, liveOutFor(k)),
		bank:       bank,
		bankRng:    rand.New(rand.NewSource(99)),
		validated:  map[string]verify.Verdict{},
		defers:     map[string]int{},
		targetOps:  opcodeSet(k.Target),
		curTests:   func() []testgen.Testcase { return tests },
		incumbentH: func() float64 { return perf.H(k.Target) },
		prove:      prove,
	}
	return v, rep
}

// TestUnknownVerdictNotMemoized is the stale-verdict regression test: a
// candidate whose first proof exhausts the budget (Unknown) must be
// re-verified at the next scheduled validation, not permanently blocked by
// the verdict memo. Only conclusive verdicts memoize.
func TestUnknownVerdictNotMemoized(t *testing.T) {
	calls := 0
	prove := func(*x64.Program) (verify.Result, time.Duration) {
		calls++
		if calls == 1 {
			return verify.Result{Verdict: verify.Unknown, Reason: "conflict budget exhausted"}, 0
		}
		return verify.Result{Verdict: verify.Equal}, 0
	}
	v, _ := newTestVerifier(t, leanAddKernel(), nil, prove, nil)
	cand := x64.MustParse("leaq (rdi,rsi), rax")

	if out := v.check(cand); out.verdict != verify.Unknown || out.cached {
		t.Fatalf("first check: verdict %v cached %v, want fresh Unknown", out.verdict, out.cached)
	}
	// Next scheduled round: the Unknown must not have been memoized.
	if out := v.check(cand); out.verdict != verify.Equal || out.cached {
		t.Fatalf("second check: verdict %v cached %v, want fresh Equal (Unknown was memoized)",
			out.verdict, out.cached)
	}
	if calls != 2 {
		t.Fatalf("prover ran %d times, want 2 (budget-exhausted Unknown must allow a retry)", calls)
	}
	// The Equal, by contrast, concludes: a third check answers from memo.
	if out := v.check(cand); !out.cached || out.verdict != verify.Equal {
		t.Fatalf("third check: verdict %v cached %v, want memoized Equal", out.verdict, out.cached)
	}
	if calls != 2 {
		t.Fatalf("prover ran %d times after a concluded verdict, want still 2", calls)
	}
}

// TestModelMismatchSurfaced: a symbolic NotEqual whose counterexample does
// not reproduce on the emulator is a model/emulator disagreement — it must
// come back Unknown (inconclusive, memoized), bump the mismatch counter
// and emit EventModelMismatch, never silently refute or pass.
func TestModelMismatchSurfaced(t *testing.T) {
	// A candidate genuinely equal to the target, "refuted" by a stub
	// prover with an arbitrary counterexample: the concrete re-derivation
	// cannot distinguish the programs, which is exactly the mismatch shape.
	cand := x64.MustParse("leaq (rdi,rsi), rax")
	calls := 0
	prove := func(*x64.Program) (verify.Result, time.Duration) {
		calls++
		cex := &verify.Counterexample{Mem: map[uint64]byte{}}
		cex.Regs[x64.RDI] = 3
		cex.Regs[x64.RSI] = 5
		return verify.Result{Verdict: verify.NotEqual, Cex: cex}, 0
	}
	var events []Event
	v, rep := newTestVerifier(t, leanAddKernel(), nil, prove, func(ev Event) {
		events = append(events, ev)
	})

	out := v.check(cand)
	if out.verdict != verify.Unknown || out.refined {
		t.Fatalf("mismatch outcome: verdict %v refined %v, want Unknown/unrefined", out.verdict, out.refined)
	}
	if rep.Proofs.ModelMismatches != 1 {
		t.Fatalf("ModelMismatches = %d, want 1", rep.Proofs.ModelMismatches)
	}
	found := false
	for _, ev := range events {
		if ev.Kind == EventModelMismatch {
			found = true
		}
	}
	if !found {
		t.Fatal("no EventModelMismatch emitted")
	}
	// Deterministic disagreement: memoized, the prover does not rerun.
	if out := v.check(cand); !out.cached || out.verdict != verify.Unknown {
		t.Fatalf("second check: verdict %v cached %v, want memoized Unknown", out.verdict, out.cached)
	}
	if calls != 1 {
		t.Fatalf("prover ran %d times, want 1 (mismatch memoizes)", calls)
	}
}

// TestBankReplayAcrossRenamedKernels: a counterexample banked while
// verifying one kernel refutes a candidate of its α-renamed sibling —
// through the canonical register space — without any SAT call.
func TestBankReplayAcrossRenamedKernels(t *testing.T) {
	bank, _ := store.Open("", 0)
	kA, kB := leanAddKernel(), leanAddRenamed()

	// Bank, from kernel A's space, the input that separates 64-bit from
	// 32-bit addition: rdi with a high bit set.
	rng := rand.New(rand.NewSource(3))
	in := kA.Spec.BuildInput(rng)
	testgen.FillUndefined(in, rng)
	in.Regs[x64.RDI] = 1 << 40
	in.Regs[x64.RSI] = 1
	formA := canon.Canonicalize(kA.Target, liveOutFor(kA))
	if err := bank.AddCexs([]store.Cex{canonCex(formA, in)}); err != nil {
		t.Fatal(err)
	}

	// Kernel B's verifier must kill the 32-bit impostor by replay alone.
	prove := func(*x64.Program) (verify.Result, time.Duration) {
		t.Fatal("SAT prover called: the banked counterexample should have killed the candidate")
		return verify.Result{}, 0
	}
	v, rep := newTestVerifier(t, kB, bank, prove, nil)
	impostor := x64.MustParse(`
  movl r8d, ebx
  addl r9d, ebx
`)
	out := v.check(impostor)
	if out.verdict != verify.NotEqual || !out.replayKill || !out.refined {
		t.Fatalf("outcome verdict %v replayKill %v refined %v, want replay-killed NotEqual",
			out.verdict, out.replayKill, out.refined)
	}
	if rep.Proofs.ReplayKills != 1 || rep.Proofs.SATCalls != 0 {
		t.Fatalf("ReplayKills %d SATCalls %d, want 1 and 0", rep.Proofs.ReplayKills, rep.Proofs.SATCalls)
	}
	// The refining testcase must concretely separate B's target from the
	// impostor (the soundness invariant behind replay kills).
	f := cost.New([]testgen.Testcase{out.tc}, kB.Spec.LiveOut, cost.Strict, 0)
	if f.Eval(impostor, cost.MaxBudget).Cost == 0 {
		t.Fatal("replay-kill testcase does not separate the programs")
	}
	if f.Eval(kB.Target, cost.MaxBudget).Cost != 0 {
		t.Fatal("replay-kill testcase rejects the target itself")
	}
}

// TestPoisonedBankEntryDegradesToSAT: bank entries that cannot refute the
// candidate — junk states, foreign kernels' inputs — must fall through to
// the plain SAT call, never produce a wrong kill.
func TestPoisonedBankEntryDegradesToSAT(t *testing.T) {
	bank, _ := store.Open("", 0)
	// Poison: an all-zero state (runs fine on the target, kills nothing)
	// and a junk state with garbage in every register slot.
	junk := store.Cex{}
	for r := range junk.Regs {
		junk.Regs[r] = 0xdeadbeefcafe + uint64(r)
	}
	if err := bank.AddCexs([]store.Cex{{}, junk}); err != nil {
		t.Fatal(err)
	}

	calls := 0
	prove := func(*x64.Program) (verify.Result, time.Duration) {
		calls++
		return verify.Result{Verdict: verify.Equal}, 0
	}
	v, rep := newTestVerifier(t, leanAddKernel(), bank, prove, nil)
	correct := x64.MustParse("leaq (rdi,rsi), rax")
	out := v.check(correct)
	if out.verdict != verify.Equal || out.replayKill {
		t.Fatalf("outcome verdict %v replayKill %v, want SAT Equal", out.verdict, out.replayKill)
	}
	if rep.Proofs.ReplayKills != 0 {
		t.Fatalf("poisoned bank produced %d replay kills on a correct candidate", rep.Proofs.ReplayKills)
	}
	if calls != 1 || rep.Proofs.SATCalls != 1 {
		t.Fatalf("prover calls %d SATCalls %d, want 1 and 1 (degrade to plain SAT)", calls, rep.Proofs.SATCalls)
	}
}

// TestGateDefersBoundedThenProves: the pre-verification gate postpones a
// low-scoring candidate at most maxGateDefers times, after which the proof
// runs regardless — deferral can never become a permanent skip.
func TestGateDefersBoundedThenProves(t *testing.T) {
	calls := 0
	prove := func(*x64.Program) (verify.Result, time.Duration) {
		calls++
		return verify.Result{Verdict: verify.Equal}, 0
	}
	v, rep := newTestVerifier(t, leanAddKernel(), nil, prove, nil)
	// Disjoint opcode set, wrong outputs (zero agreement breadth), and an
	// Eq.13 cost far under the incumbent: scores well below the bar.
	alien := x64.MustParse("xorq rax, rax")

	for i := 0; i < maxGateDefers; i++ {
		if !v.shouldDefer(alien) {
			t.Fatalf("deferral %d: gate let a minimal-score candidate through early", i+1)
		}
	}
	if v.shouldDefer(alien) {
		t.Fatal("gate deferred beyond its bound")
	}
	if rep.Proofs.GateDeferrals != maxGateDefers {
		t.Fatalf("GateDeferrals = %d, want %d", rep.Proofs.GateDeferrals, maxGateDefers)
	}
	// And once a verdict is memoized the gate steps aside entirely.
	if out := v.check(alien); out.verdict != verify.Equal {
		t.Fatalf("post-deferral proof verdict %v, want Equal", out.verdict)
	}
	if v.shouldDefer(alien) {
		t.Fatal("gate deferred a candidate with a concluded verdict")
	}
	// A τ-correct candidate structurally close to the target passes the
	// gate immediately.
	good := x64.MustParse("movq rdi, rax\naddq rsi, rax")
	if v.shouldDefer(good) {
		t.Fatal("gate deferred a high-scoring candidate")
	}
}
