package stoke

import (
	"math"
	"sort"
	"time"

	"repro/internal/mcmc"
	"repro/internal/verify"
	"repro/internal/x64"
)

// Report is the outcome of one kernel run.
type Report struct {
	Kernel  string
	Target  *x64.Program
	Rewrite *x64.Program // best correct rewrite (possibly the target itself)

	// Partial marks a run cut short by context cancellation: Rewrite is
	// the best candidate seen so far (the target when nothing better was
	// found) and Verdict reflects however far validation got.
	Partial bool

	// SynthesisSucceeded reports whether any synthesis chain reached a
	// zero-cost rewrite from a random start (Figure 12's starred kernels
	// are the failures).
	SynthesisSucceeded bool

	// Verdict is the validator's word on the final rewrite.
	Verdict verify.Verdict

	// Cycle estimates for target and rewrite under the pipeline model
	// (the static Equation 13 estimate is available via internal/perf.H).
	TargetCycles, RewriteCycles float64

	// SynthTime and OptTime are the aggregate time workers spent running
	// this kernel's chains (summed across chains, excluding time queued
	// behind other kernels on a shared pool); VerifyTime is validator
	// wall-clock.
	SynthTime, OptTime, VerifyTime time.Duration

	// Refinements counts counterexample testcases folded back into τ
	// across the whole run — mid-search broadcasts that refined every
	// live chain as well as end-of-round validation folds — so it always
	// equals the final Tests minus the generated testcase count.
	Refinements int

	// Swaps counts accepted replica exchanges across all phases and
	// rounds; Prunes counts stagnant chains reseeded from the kernel's
	// global best. Both are zero when tempering is disabled.
	Swaps, Prunes int

	// SkippedValidations counts scheduled mid-search validation rounds
	// the cost-aware gate skipped because the candidate pool's head could
	// not beat the proven incumbent's modelled cost — SAT time the run
	// did not spend.
	SkippedValidations int

	// CacheHit marks a run served from the rewrite store without
	// launching a search: the fingerprint matched a proven entry whose
	// rewrite revalidated against fresh testcases and the stored
	// counterexample set. Fingerprint is the kernel's canonical
	// fingerprint whenever a store was configured, hit or miss.
	CacheHit    bool
	Fingerprint string

	// Proofs profiles the run's verification pipeline: how many candidates
	// were killed by banked-counterexample replay or deferred by the
	// pre-verification gate before any SAT call, how many queries actually
	// reached the solver, and the per-query wall-clock and clause-count
	// samples behind the proof-time histograms in BENCH_search.json.
	Proofs ProofProfile

	Stats mcmc.Stats
	Tests int
}

// ProofProfile aggregates verification-pipeline observability for one run.
type ProofProfile struct {
	// SATCalls counts queries that reached verify.Equivalent's solver
	// (including the structural fast path — every call to the prover).
	SATCalls int

	// ReplayKills counts candidates refuted by replaying a banked
	// counterexample through the compiled evaluator: NotEqual verdicts
	// established without a SAT call.
	ReplayKills int

	// GateDeferrals counts scheduled validation rounds the feature gate
	// postponed (each deferral is bounded per candidate — a deferred proof
	// always runs eventually).
	GateDeferrals int

	// ModelMismatches counts symbolic NotEqual verdicts whose extracted
	// counterexample failed to reproduce divergence on the emulator — a
	// latent symbolic-model/emulator disagreement. Must stay zero on the
	// tracked kernels.
	ModelMismatches int

	// Times and Clauses are per-SAT-query samples: wall-clock spent in
	// verify.Equivalent and the encoded problem's clause count.
	Times   []time.Duration
	Clauses []int
}

// TimeP returns the q-quantile (0 ≤ q ≤ 1, nearest-rank) of the per-query
// proof times, or zero with no samples.
func (p *ProofProfile) TimeP(q float64) time.Duration {
	i, ok := rankIndex(len(p.Times), q)
	if !ok {
		return 0
	}
	sorted := append([]time.Duration(nil), p.Times...)
	sort.Slice(sorted, func(a, b int) bool { return sorted[a] < sorted[b] })
	return sorted[i]
}

// ClausesP returns the q-quantile (nearest-rank) of the per-query clause
// counts, or zero with no samples.
func (p *ProofProfile) ClausesP(q float64) int {
	i, ok := rankIndex(len(p.Clauses), q)
	if !ok {
		return 0
	}
	sorted := append([]int(nil), p.Clauses...)
	sort.Ints(sorted)
	return sorted[i]
}

// rankIndex maps a quantile onto a nearest-rank index into n sorted
// samples.
func rankIndex(n int, q float64) (int, bool) {
	if n == 0 {
		return 0, false
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	i := int(math.Ceil(q*float64(n))) - 1
	if i < 0 {
		i = 0
	}
	if i >= n {
		i = n - 1
	}
	return i, true
}

// RegFreeFraction is the dynamic fraction of register-writing slots whose
// writes the register-liveness pass suppressed across the run's chains
// (Stats.RegFreeSlots over Stats.RegWritingSlots), or zero when the pass
// was off or the chains never wrote a register.
func (r *Report) RegFreeFraction() float64 {
	if r.Stats.RegWritingSlots == 0 {
		return 0
	}
	return float64(r.Stats.RegFreeSlots) / float64(r.Stats.RegWritingSlots)
}

// Speedup is the modelled speedup of the rewrite over the target.
func (r *Report) Speedup() float64 {
	if r.RewriteCycles == 0 {
		return 1
	}
	return r.TargetCycles / r.RewriteCycles
}
