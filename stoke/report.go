package stoke

import (
	"time"

	"repro/internal/mcmc"
	"repro/internal/verify"
	"repro/internal/x64"
)

// Report is the outcome of one kernel run.
type Report struct {
	Kernel  string
	Target  *x64.Program
	Rewrite *x64.Program // best correct rewrite (possibly the target itself)

	// Partial marks a run cut short by context cancellation: Rewrite is
	// the best candidate seen so far (the target when nothing better was
	// found) and Verdict reflects however far validation got.
	Partial bool

	// SynthesisSucceeded reports whether any synthesis chain reached a
	// zero-cost rewrite from a random start (Figure 12's starred kernels
	// are the failures).
	SynthesisSucceeded bool

	// Verdict is the validator's word on the final rewrite.
	Verdict verify.Verdict

	// Cycle estimates for target and rewrite under the pipeline model
	// (the static Equation 13 estimate is available via internal/perf.H).
	TargetCycles, RewriteCycles float64

	// SynthTime and OptTime are the aggregate time workers spent running
	// this kernel's chains (summed across chains, excluding time queued
	// behind other kernels on a shared pool); VerifyTime is validator
	// wall-clock.
	SynthTime, OptTime, VerifyTime time.Duration

	// Refinements counts counterexample testcases folded back into τ
	// across the whole run — mid-search broadcasts that refined every
	// live chain as well as end-of-round validation folds — so it always
	// equals the final Tests minus the generated testcase count.
	Refinements int

	// Swaps counts accepted replica exchanges across all phases and
	// rounds; Prunes counts stagnant chains reseeded from the kernel's
	// global best. Both are zero when tempering is disabled.
	Swaps, Prunes int

	// SkippedValidations counts scheduled mid-search validation rounds
	// the cost-aware gate skipped because the candidate pool's head could
	// not beat the proven incumbent's modelled cost — SAT time the run
	// did not spend.
	SkippedValidations int

	// CacheHit marks a run served from the rewrite store without
	// launching a search: the fingerprint matched a proven entry whose
	// rewrite revalidated against fresh testcases and the stored
	// counterexample set. Fingerprint is the kernel's canonical
	// fingerprint whenever a store was configured, hit or miss.
	CacheHit    bool
	Fingerprint string

	Stats mcmc.Stats
	Tests int
}

// Speedup is the modelled speedup of the rewrite over the target.
func (r *Report) Speedup() float64 {
	if r.RewriteCycles == 0 {
		return 1
	}
	return r.TargetCycles / r.RewriteCycles
}
