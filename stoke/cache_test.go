package stoke

import (
	"context"
	"errors"
	"math/rand"
	"path/filepath"
	"testing"

	"repro/internal/emu"
	"repro/internal/store"
	"repro/internal/testgen"
	"repro/internal/verify"
	"repro/internal/x64"
)

// renamedAddKernel is addKernel under the α-renaming rdi→r8, rsi→r9,
// rax→rbx: the same kernel to the canonicaliser, a different program
// textually.
func renamedAddKernel() Kernel {
	return Kernel{
		Name: "add-renamed",
		Target: x64.MustParse(`
  movq r8, -8(rsp)
  movq r9, -16(rsp)
  movq -8(rsp), rbx
  addq -16(rsp), rbx
`),
		Spec: testgen.Spec{
			BuildInput: func(rng *rand.Rand) *emu.Snapshot {
				a := testgen.NewArena(0x10000)
				a.AllocStack(256)
				a.SetReg(x64.R8, rng.Uint64())
				a.SetReg(x64.R9, rng.Uint64())
				return a.Snapshot()
			},
			LiveOut: testgen.LiveSet{GPRs: []testgen.LiveReg{{Reg: x64.RBX, Width: 8}}},
		},
		Pointers: x64.RegSet(0).With(x64.RSP),
	}
}

// TestCacheHitEndToEnd is the tentpole's acceptance test: the same kernel
// submitted twice hits the store on the second request (served without
// launching a search), and an α-renamed variant hits too.
func TestCacheHitEndToEnd(t *testing.T) {
	s, err := store.Open(filepath.Join(t.TempDir(), "rewrites.jsonl"), 64)
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(EngineConfig{Workers: 4})
	defer e.Close()
	opts := []Option{
		WithRewriteStore(s),
		WithSeed(11),
		WithChains(2, 2),
		WithBudgets(60000, 60000),
		WithEll(12),
	}

	// First submission: cold store, a real search runs and writes back.
	rep1, err := e.Optimize(context.Background(), addKernel(), opts...)
	if err != nil {
		t.Fatal(err)
	}
	if rep1.CacheHit {
		t.Fatal("first submission cannot be a cache hit")
	}
	if rep1.Fingerprint == "" {
		t.Fatal("store-backed run must report its fingerprint")
	}
	if got := e.SearchesLaunched(); got != 1 {
		t.Fatalf("searches launched %d, want 1", got)
	}
	if s.Len() == 0 {
		t.Fatal("verified run was not written back to the store")
	}

	// Second submission of the identical kernel: served from the store.
	rep2, err := e.Optimize(context.Background(), addKernel(), opts...)
	if err != nil {
		t.Fatal(err)
	}
	if !rep2.CacheHit {
		t.Fatal("identical resubmission must hit the store")
	}
	if got := e.SearchesLaunched(); got != 1 {
		t.Fatalf("cache hit launched a search: count %d, want 1", got)
	}
	if rep2.Verdict != verify.Equal {
		t.Fatalf("served verdict %v, want equal", rep2.Verdict)
	}
	if rep2.Fingerprint != rep1.Fingerprint {
		t.Fatalf("fingerprints differ across identical submissions")
	}
	if rep2.Rewrite.String() != rep1.Rewrite.String() {
		t.Fatalf("served rewrite differs from the proven one:\n%s\nvs\n%s",
			rep2.Rewrite, rep1.Rewrite)
	}

	// α-renamed variant: same fingerprint class, exact-key hit, rewrite
	// mapped back into ITS register space and proven there.
	k3 := renamedAddKernel()
	rep3, err := e.Optimize(context.Background(), k3, opts...)
	if err != nil {
		t.Fatal(err)
	}
	if !rep3.CacheHit {
		t.Fatal("α-renamed variant must hit the store")
	}
	if got := e.SearchesLaunched(); got != 1 {
		t.Fatalf("renamed hit launched a search: count %d, want 1", got)
	}
	if rep3.Fingerprint != rep1.Fingerprint {
		t.Fatal("α-equivalent kernels must share a fingerprint")
	}
	// The served rewrite must be correct in the renamed space: prove it.
	res := verify.Equivalent(context.Background(), k3.Target, rep3.Rewrite,
		liveOutFor(k3), verify.DefaultConfig)
	if res.Verdict != verify.Equal {
		t.Fatalf("served renamed rewrite failed validation (%v):\n%s",
			res.Verdict, rep3.Rewrite)
	}
}

// TestCacheOnly: the synchronous probe path answers hits and fails misses
// with ErrCacheMiss without ever searching.
func TestCacheOnly(t *testing.T) {
	s, _ := store.Open("", 16)
	e := NewEngine(EngineConfig{Workers: 2})
	defer e.Close()

	_, err := e.Optimize(context.Background(), addKernel(),
		WithRewriteStore(s), WithCacheOnly())
	if !errors.Is(err, ErrCacheMiss) {
		t.Fatalf("cold cache-only probe: err %v, want ErrCacheMiss", err)
	}
	if got := e.SearchesLaunched(); got != 0 {
		t.Fatalf("cache-only probe launched %d searches", got)
	}

	// Fill the store with a real run, then probe again.
	if _, err := e.Optimize(context.Background(), addKernel(),
		WithRewriteStore(s), WithSeed(11), WithChains(2, 2),
		WithBudgets(60000, 60000), WithEll(12)); err != nil {
		t.Fatal(err)
	}
	rep, err := e.Optimize(context.Background(), addKernel(),
		WithRewriteStore(s), WithCacheOnly())
	if err != nil {
		t.Fatalf("warm cache-only probe failed: %v", err)
	}
	if !rep.CacheHit || rep.Verdict != verify.Equal {
		t.Fatalf("warm probe: hit=%v verdict=%v", rep.CacheHit, rep.Verdict)
	}
}

// constKernel computes rax := rdi + c for a literal c — the near-miss
// test pair: different constants, same canonical skeleton.
func constKernel(name string, c int64) Kernel {
	p := &x64.Program{Insts: []x64.Inst{
		x64.MakeInst(x64.MOV, x64.R64(x64.RDI), x64.R64(x64.RAX)),
		x64.MakeInst(x64.ADD, x64.Imm(c, 8), x64.R64(x64.RAX)),
		x64.MakeInst(x64.ADD, x64.Imm(c, 8), x64.R64(x64.RAX)),
	}}
	return NewKernel(name, p, WithInputs(RDI), WithOutput64(RAX))
}

// TestNearMissWarmStart: a fingerprint-class entry with different
// constants warm-starts the search (observed via the EventWarmStart
// event) and the run still verifies.
func TestNearMissWarmStart(t *testing.T) {
	s, _ := store.Open("", 16)
	e := NewEngine(EngineConfig{Workers: 4})
	defer e.Close()
	base := []Option{
		WithRewriteStore(s),
		WithSeed(31),
		WithChains(2, 2),
		WithBudgets(40000, 40000),
		WithEll(8),
	}

	if _, err := e.Optimize(context.Background(), constKernel("c42", 42), base...); err != nil {
		t.Fatal(err)
	}
	launched := e.SearchesLaunched()

	var sawWarm bool
	rep, err := e.Optimize(context.Background(), constKernel("c99", 99),
		append(base, WithObserver(func(ev Event) {
			if ev.Kind == EventWarmStart {
				sawWarm = true
			}
		}))...)
	if err != nil {
		t.Fatal(err)
	}
	if rep.CacheHit {
		t.Fatal("different constants must not be an exact hit")
	}
	if !sawWarm {
		t.Fatal("fingerprint-class near-miss did not warm-start the search")
	}
	if got := e.SearchesLaunched(); got != launched+1 {
		t.Fatalf("near-miss must still search: %d launches, want %d", got, launched+1)
	}
	if rep.Verdict == verify.NotEqual {
		t.Fatalf("warm-started run returned an unvalidated rewrite:\n%s", rep.Rewrite)
	}
}

// TestCacheRevalidationRejectsCorruptEntry: a poisoned store entry (wrong
// rewrite under the right key) must fail replay revalidation and degrade
// to a miss — the served path can never skip correctness.
func TestCacheRevalidationRejectsCorruptEntry(t *testing.T) {
	s, _ := store.Open("", 16)
	e := NewEngine(EngineConfig{Workers: 2})
	defer e.Close()
	opts := []Option{
		WithRewriteStore(s), WithSeed(11), WithChains(2, 2),
		WithBudgets(60000, 60000), WithEll(12),
	}
	rep, err := e.Optimize(context.Background(), addKernel(), opts...)
	if err != nil {
		t.Fatal(err)
	}

	// Poison: replace the cached rewrite with one computing the wrong
	// function, keeping everything else.
	entry, ok := s.Get(rep.Fingerprint, nil)
	if !ok {
		// The entry may carry constants; find it via the class index.
		near := s.Near(rep.Fingerprint)
		if len(near) == 0 {
			t.Fatal("no stored entry to poison")
		}
		entry = near[0]
	}
	poisoned := *entry
	poisoned.Rewrite = "subq rcx, rax" // wrong function, parseable
	if err := s.Put(&poisoned); err != nil {
		t.Fatal(err)
	}

	before := e.SearchesLaunched()
	rep2, err := e.Optimize(context.Background(), addKernel(), opts...)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.CacheHit {
		t.Fatal("poisoned entry served as a hit")
	}
	if e.SearchesLaunched() != before+1 {
		t.Fatal("revalidation failure must fall back to a search")
	}
	if rep2.Verdict == verify.NotEqual {
		t.Fatal("fallback search returned an unvalidated rewrite")
	}
}
