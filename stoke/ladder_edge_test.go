package stoke

// Edge cases of the β-ladder and coordinator configuration surface that the
// PR 3 suite left uncovered: single-chain pools (no swap partner), explicit
// ladders shorter than the chain count, and shared-profile reuse across
// sequential Optimize calls on one engine.

import (
	"context"
	"math"
	"testing"

	"repro/internal/search"
)

// TestBetaLadderShorterThanChains pins the resolution rules when the
// explicit WithLadder multipliers do not cover the chain count: multipliers
// cycle (mults[i%len]), the default geometric ladder always covers n, and
// a single-entry ladder is a uniform scale.
func TestBetaLadderShorterThanChains(t *testing.T) {
	st := defaultSettings()
	st.tempering = true
	st.ladder = []float64{1.0, 0.5}
	got := st.betaLadder(2.0, 5)
	want := []float64{2.0, 1.0, 2.0, 1.0, 2.0}
	if len(got) != len(want) {
		t.Fatalf("ladder length %d, want %d", len(got), len(want))
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("betaLadder(2.0, 5) = %v, want cycling %v", got, want)
		}
	}

	st.ladder = []float64{0.25}
	for i, b := range st.betaLadder(4.0, 3) {
		if b != 1.0 {
			t.Fatalf("single-multiplier ladder rung %d = %v, want uniform 1.0", i, b)
		}
	}

	// The default geometric ladder must cover any chain count, including
	// one replica (no hot tail to build).
	st.ladder = nil
	for _, n := range []int{1, 2, 3, 7} {
		l := st.betaLadder(1.0, n)
		if len(l) != n {
			t.Fatalf("default ladder for %d chains has %d rungs", n, len(l))
		}
		if len(search.Ladder(1.0, n, search.DefaultLadderSpan)) != n {
			t.Fatalf("search.Ladder under-covers %d chains", n)
		}
	}
}

// TestSingleChainPoolCompletes runs the full pipeline with one chain per
// phase and tempering left on: the coordinator has at most a target-plus-
// synthesized pair to ladder, often a single replica with no swap partner,
// and must neither stall nor lose determinism.
func TestSingleChainPoolCompletes(t *testing.T) {
	run := func() *Report {
		rep, err := Optimize(context.Background(), addKernel(),
			WithSeed(5),
			WithChains(1, 1),
			WithBudgets(8000, 10000),
			WithEll(10),
			WithTempering(true))
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := run(), run()
	if a.Rewrite.String() != b.Rewrite.String() || a.Swaps != b.Swaps || a.Stats != b.Stats {
		t.Fatalf("single-chain run not deterministic:\n%s (%d swaps)\nvs\n%s (%d swaps)",
			a.Rewrite, a.Swaps, b.Rewrite, b.Swaps)
	}
}

// TestShortLadderOptimizeDeterministic drives a real run whose explicit
// two-rung ladder is shorter than its five chains, twice, and demands
// identical outcomes — the modulo assignment must not disturb the seeded
// swap schedule.
func TestShortLadderOptimizeDeterministic(t *testing.T) {
	run := func() *Report {
		rep, err := Optimize(context.Background(), addKernel(),
			WithSeed(11),
			WithChains(5, 5),
			WithBudgets(10000, 10000),
			WithEll(10),
			WithLadder(1.0, 0.5))
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := run(), run()
	if a.Rewrite.String() != b.Rewrite.String() || a.Swaps != b.Swaps {
		t.Fatalf("short-ladder run not deterministic: %d vs %d swaps", a.Swaps, b.Swaps)
	}
}

// TestSharedProfileSequentialOptimize reuses one engine for consecutive
// Optimize calls with the shared rejection profile enabled: each run must
// build its own profile (no cross-run leakage), so a repeat with the same
// seed is bit-identical to the first, and toggling the profile off still
// agrees on the accept/reject trajectory's final answer.
func TestSharedProfileSequentialOptimize(t *testing.T) {
	e := NewEngine(EngineConfig{Workers: 2})
	defer e.Close()
	opts := []Option{
		WithSeed(7),
		WithChains(2, 2),
		WithBudgets(10000, 12000),
		WithEll(10),
		WithSharedProfile(true),
	}
	first, err := e.Optimize(context.Background(), addKernel(), opts...)
	if err != nil {
		t.Fatal(err)
	}
	second, err := e.Optimize(context.Background(), addKernel(), opts...)
	if err != nil {
		t.Fatal(err)
	}
	if first.Rewrite.String() != second.Rewrite.String() || first.Stats != second.Stats {
		t.Fatalf("sequential Optimize with a shared profile diverged:\n%s\nvs\n%s",
			first.Rewrite, second.Rewrite)
	}

	// The profile only reorders testcase evaluation, so disabling it may
	// change how early rejections fire but never the result of a converged
	// run on this trivial kernel.
	off, err := e.Optimize(context.Background(), addKernel(),
		WithSeed(7),
		WithChains(2, 2),
		WithBudgets(10000, 12000),
		WithEll(10),
		WithSharedProfile(false))
	if err != nil {
		t.Fatal(err)
	}
	if off.Rewrite == nil {
		t.Fatal("profile-off run returned no rewrite")
	}
}
