// The rewrite-store integration: fingerprint probing before a search,
// exact-hit revalidation and serving, near-miss warm starts, and the
// write-back of proven rewrites. Everything here is correctness-guarded:
// a cached rewrite is served only after it revalidates against the
// submitter's own freshly generated testcases plus the stored
// counterexample set through the compiled evaluator, and a rewrite that
// cannot be carried across register spaces (it pins registers the target
// never did) degrades to a miss, never to a wrong answer.

package stoke

import (
	"errors"
	"math/rand"
	"sort"
	"time"

	"repro/internal/canon"
	"repro/internal/cost"
	"repro/internal/emu"
	"repro/internal/perf"
	"repro/internal/pipeline"
	"repro/internal/store"
	"repro/internal/testgen"
	"repro/internal/verify"
	"repro/internal/x64"
)

// ErrCacheMiss is returned by a WithCacheOnly run whose kernel has no
// servable entry in the rewrite store.
var ErrCacheMiss = errors.New("stoke: rewrite store miss")

// liveOutFor assembles the validator live-out view of a kernel — the same
// structure optimize builds for verification, reused for fingerprinting.
func liveOutFor(k Kernel) verify.LiveOut {
	return verify.LiveOut{
		GPRs:  k.Spec.LiveOut.GPRs,
		Xmms:  k.Spec.LiveOut.Xmms,
		Flags: k.Spec.LiveOut.Flags,
		Mem:   k.LiveMem,
	}
}

// cacheWarm is the near-miss warm-start material carried into a search.
type cacheWarm struct {
	start   *x64.Program       // cached rewrite, constants re-literalised, mapped back
	profile []int64            // learned testcase-rejection counters
	tests   []testgen.Testcase // replayed counterexample testcases for τ
	costH   float64
}

// replayCex rebuilds a runnable testcase from a stored counterexample
// register state: a shape-correct random input with every non-pointer
// register (and the XMM and flag state) overridden, exactly like live
// refinement converts validator counterexamples. A state FromInput cannot
// run (the target faults on it) is dropped.
func replayCex(k Kernel, m *emu.Machine, rng *rand.Rand, cx store.Cex) (testgen.Testcase, bool) {
	in := k.Spec.BuildInput(rng)
	testgen.FillUndefined(in, rng)
	for r := x64.Reg(0); r < x64.NumGPR; r++ {
		if r == x64.RSP || k.Pointers.Has(r) {
			continue
		}
		in.Regs[r] = cx.Regs[r]
	}
	for r := 0; r < x64.NumXMM; r++ {
		in.Xmm[r] = cx.Xmm[r]
	}
	in.Flags = x64.FlagSet(cx.Flags)
	tc, err := testgen.FromInput(m, k.Target, k.Spec, in)
	return tc, err == nil
}

// cacheProbe consults the store for kernel k. On an exact, revalidated hit
// it returns the rewrite mapped back into the submitter's register space;
// otherwise it returns any near-miss warm-start material (nil, nil on a
// cold class). tests are this run's freshly generated testcases — the
// revalidation gauntlet every served rewrite must clear.
func (e *Engine) cacheProbe(k Kernel, st *settings, form *canon.Form,
	tests []testgen.Testcase, rng *rand.Rand) (*x64.Program, *cacheWarm) {

	m := emu.New()

	// entryCexs picks an entry's counterexample set for replay: the
	// canonical-space Bank (mapped into the submitter's register space
	// through *this* submission's form, so α-renamed siblings replay
	// correctly) when its schema version matches, else the legacy Cexs
	// recorded in the original submitter's register space.
	entryCexs := func(entry *store.Entry) []store.Cex {
		if entry.BankV != store.BankVersion || len(entry.Bank) == 0 {
			return entry.Cexs
		}
		out := make([]store.Cex, len(entry.Bank))
		for i, cx := range entry.Bank {
			out[i] = kernelCex(form, cx)
		}
		return out
	}

	// revalidate checks a mapped-back candidate against the generated
	// testcases plus the entry's replayed counterexample set, in strict
	// mode through the compiled evaluator.
	revalidate := func(cand *x64.Program, cexs []store.Cex) bool {
		if cand.Validate() != nil {
			return false
		}
		all := tests[:len(tests):len(tests)]
		for _, cx := range cexs {
			if tc, ok := replayCex(k, m, rng, cx); ok {
				all = append(all, tc)
			}
		}
		f := cost.New(all, k.Spec.LiveOut, cost.Strict, 0)
		return f.Eval(cand, cost.MaxBudget).Cost == 0
	}

	if entry, ok := st.store.Get(form.FP.Hex(), form.Consts); ok {
		if p, err := x64.Parse(entry.Rewrite); err == nil {
			if mapped, ok := form.FromCanon(p); ok && revalidate(mapped, entryCexs(entry)) {
				return mapped, nil
			}
		}
	}

	// Near miss: the cheapest entry of the fingerprint class, its
	// constants re-literalised to the submission's, mapped back. It only
	// seeds chains — every candidate still clears eval and the validator —
	// so a bad substitution costs warm-start value, not correctness.
	near := st.store.Near(form.FP.Hex())
	sort.Slice(near, func(i, j int) bool { return near[i].CostH < near[j].CostH })
	for _, entry := range near {
		p, err := x64.Parse(entry.Rewrite)
		if err != nil {
			continue
		}
		mapped, ok := form.FromCanon(canon.SubstituteConsts(p, entry.Consts, form.Consts))
		if !ok || mapped.Validate() != nil {
			continue
		}
		warm := &cacheWarm{start: mapped, profile: entry.Profile, costH: entry.CostH}
		for _, cx := range entryCexs(entry) {
			if tc, ok := replayCex(k, m, rng, cx); ok {
				warm.tests = append(warm.tests, tc)
			}
		}
		return nil, warm
	}
	return nil, nil
}

// cachePut writes a verified run's outcome back to the store: the rewrite
// carried into canonical space, the refinement counterexamples beyond the
// generated testcases, the learned rejection profile, and search metadata.
// A rewrite that cannot be carried (it pins registers the target never
// did) or does not survive the assembly round-trip is skipped — the run's
// result is unaffected.
func cachePut(k Kernel, st *settings, form *canon.Form, rep *Report,
	tests []testgen.Testcase, generated int, prof *cost.SharedProfile) {

	canonRewrite, ok := form.ToCanon(rep.Rewrite)
	if !ok {
		return
	}
	// The stored format is assembly text; guard the round-trip now so a
	// printer/parser asymmetry can never produce an unservable record.
	if rt, err := x64.Parse(canonRewrite.String()); err != nil || rt.String() != canonRewrite.String() {
		return
	}
	entry := &store.Entry{
		FP:      form.FP.Hex(),
		Consts:  form.Consts,
		Target:  form.Prog.String(),
		Rewrite: canonRewrite.String(),
		CostH:   perf.H(canonRewrite),
		Profile: prof.Counts(),
		Meta: store.Meta{
			Kernel:      k.Name,
			Seed:        st.seed,
			Proposals:   rep.Stats.Proposals,
			Refinements: rep.Refinements,
			SearchMS:    (rep.SynthTime + rep.OptTime + rep.VerifyTime).Milliseconds(),
			Verdict:     rep.Verdict.String(),
		},
	}
	for _, tc := range tests[generated:] {
		cx := store.Cex{Flags: uint8(tc.In.Flags)}
		cx.Regs = tc.In.Regs
		cx.Xmm = tc.In.Xmm
		entry.Cexs = append(entry.Cexs, cx)
	}
	// The Bank field carries the same counterexamples in canonical space
	// (versioned separately), so any α-renamed sibling submission — whose
	// registers this kernel's Cexs say nothing about — replays them
	// correctly, and the store folds them into the global bank on load.
	if len(entry.Cexs) > 0 {
		entry.BankV = store.BankVersion
		for _, tc := range tests[generated:] {
			entry.Bank = append(entry.Bank, canonCex(form, tc.In))
		}
	}
	_ = st.store.Put(entry) // persistence failure degrades to cache-cold, never fails the run
}

// serveHit stamps a report for a run answered from the store.
func (e *Engine) serveHit(k Kernel, st *settings, rep *Report, rewrite *x64.Program, elapsed time.Duration) *Report {
	rep.CacheHit = true
	rep.Verdict = verify.Equal
	rep.Rewrite = rewrite.Packed()
	rep.TargetCycles = pipeline.Cycles(k.Target)
	rep.RewriteCycles = pipeline.Cycles(rep.Rewrite)
	rep.VerifyTime = elapsed
	e.emit(st, Event{Kind: EventCacheHit, Kernel: k.Name})
	return rep
}
