package stoke

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/store"
)

// EngineConfig sizes an Engine.
type EngineConfig struct {
	// Workers is the number of pool goroutines executing search chains.
	// Zero takes GOMAXPROCS.
	Workers int
}

// Engine schedules MCMC search chains onto a fixed worker pool. One Engine
// serves any number of Optimize and OptimizeAll calls, concurrently: chains
// from all active runs interleave on the same workers, so a multi-kernel
// workload saturates the pool instead of oversubscribing the machine with
// per-run pools.
//
// The zero Engine is not usable; construct with NewEngine and release with
// Close once every run has returned.
type Engine struct {
	workers int
	tasks   chan func()

	wg        sync.WaitGroup
	closeOnce sync.Once

	// searches counts searches actually launched (cache hits and
	// cache-only probes never increment it) — the observable that lets
	// tests and the serving layer assert a request was answered from the
	// store rather than by a fresh search.
	searches atomic.Int64

	// bank is the engine's private in-memory counterexample bank, the
	// cross-kernel replay source for runs without an attached rewrite
	// store (runs with one bank into the store instead, which persists).
	bank *store.Store
}

// SearchesLaunched reports how many runs on this engine proceeded into an
// MCMC search (as opposed to being served from the rewrite store).
func (e *Engine) SearchesLaunched() int64 { return e.searches.Load() }

// NewEngine starts a worker pool and returns the Engine owning it.
func NewEngine(cfg EngineConfig) *Engine {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	bank, _ := store.Open("", 0) // memory-only: cannot fail
	e := &Engine{workers: cfg.Workers, tasks: make(chan func()), bank: bank}
	for i := 0; i < cfg.Workers; i++ {
		e.wg.Add(1)
		go func() {
			defer e.wg.Done()
			for f := range e.tasks {
				f()
			}
		}()
	}
	return e
}

// Workers reports the pool size.
func (e *Engine) Workers() int { return e.workers }

// Close shuts the worker pool down and waits for the workers to exit. It
// must not race with in-flight Optimize calls; cancel their contexts and
// wait for them to return first.
func (e *Engine) Close() {
	e.closeOnce.Do(func() { close(e.tasks) })
	e.wg.Wait()
}

// Optimize runs the full STOKE pipeline (Figure 9) on one kernel: testcase
// generation, parallel synthesis and optimization chains scheduled on the
// engine's pool, 20%-window re-ranking, and validation with
// counterexample-driven testcase refinement.
//
// Cancelling ctx stops the run promptly and returns the best-so-far Report
// with Partial set — not an error. Errors are reserved for malformed
// kernels (testcase generation failure).
func (e *Engine) Optimize(ctx context.Context, k Kernel, opts ...Option) (*Report, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	return e.optimize(ctx, k, resolve(opts))
}

// KernelSeedStride is the per-kernel seed offset OptimizeAll applies
// (kernel i runs at seed + i*KernelSeedStride), exported so harnesses that
// fan kernels out themselves stay seed-compatible with OptimizeAll.
const KernelSeedStride = 1_000_003

// OptimizeAll optimizes every kernel under the same options, scheduling all
// their chains onto the shared pool at once; the pool interleaves work from
// every kernel, so fast kernels never leave workers idle while slow ones
// finish. Reports are returned in kernel order. Each kernel's seed is
// offset by its index so equal kernels still explore independently.
func (e *Engine) OptimizeAll(ctx context.Context, kernels []Kernel, opts ...Option) ([]*Report, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	st := resolve(opts)
	reports := make([]*Report, len(kernels))
	errs := make([]error, len(kernels))
	var wg sync.WaitGroup
	for i := range kernels {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sti := st
			sti.seed += int64(i) * KernelSeedStride
			reports[i], errs[i] = e.optimize(ctx, kernels[i], sti)
		}(i)
	}
	wg.Wait()
	return reports, errors.Join(errs...)
}

// Optimize is the one-shot convenience: it runs one kernel on a transient
// Engine sized to the machine. Long-lived callers should share an Engine.
func Optimize(ctx context.Context, k Kernel, opts ...Option) (*Report, error) {
	e := NewEngine(EngineConfig{})
	defer e.Close()
	return e.Optimize(ctx, k, opts...)
}

// runBatch schedules the bodies onto the pool and waits for all of them —
// one chain segment per body, between two of the search coordinator's
// barriers. Bodies must honour ctx themselves (the samplers poll it);
// runBatch only refrains from scheduling not-yet-queued bodies once ctx
// is cancelled.
//
// The returned duration is the aggregate time workers spent executing the
// batch — queueing behind other runs on the shared pool is excluded, so a
// kernel's reported phase times stay meaningful however many kernels the
// pool is juggling.
func (e *Engine) runBatch(ctx context.Context, bodies []func()) time.Duration {
	var busy atomic.Int64
	var wg sync.WaitGroup
	for _, body := range bodies {
		if ctx.Err() != nil {
			break // remaining bodies would be cancelled on arrival anyway
		}
		body := body
		wg.Add(1)
		f := func() {
			defer wg.Done()
			start := time.Now()
			body()
			busy.Add(int64(time.Since(start)))
		}
		// Selecting on ctx keeps a cancelled run from blocking behind
		// other runs' long-lived segments still occupying the workers.
		select {
		case e.tasks <- f:
		case <-ctx.Done():
			wg.Done()
		}
	}
	wg.Wait()
	return time.Duration(busy.Load())
}

// runTask executes f as one pool task and waits for it, so expensive
// non-chain work (SAT verification) also honours the Workers cap instead of
// oversubscribing the machine when many kernels validate at once. Once ctx
// is cancelled f runs inline: pool order no longer matters and f is
// expected to short-circuit.
func (e *Engine) runTask(ctx context.Context, f func()) {
	done := make(chan struct{})
	g := func() {
		defer close(done)
		f()
	}
	select {
	case e.tasks <- g:
		<-done
	case <-ctx.Done():
		g()
	}
}

// emit delivers one event to the run's observer, serialized per run.
func (e *Engine) emit(st *settings, ev Event) {
	if st.observer == nil {
		return
	}
	st.emitMu.Lock()
	defer st.emitMu.Unlock()
	st.observer(ev)
}
