package stoke

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/search"
	"repro/internal/store"
	"repro/internal/verify"
)

// Default values applied before options; exported so external harnesses
// and presets derive half-specified configurations from the same source of
// truth.
const (
	DefaultSynthChains    = 4
	DefaultOptChains      = 4
	DefaultSynthProposals = 400000
	DefaultOptProposals   = 200000
	DefaultTests          = 32
	DefaultEll            = 24
	DefaultSynthBeta      = 0.1
	DefaultOptBeta        = 1.0
	DefaultRestartAfter   = 20000
	DefaultMaxRefinements = 4
)

// settings is the resolved configuration of one run. It is private: callers
// configure runs exclusively through functional options, which — unlike the
// old zero-value-defaulted struct — can explicitly set a knob to zero
// (disable restarts, run a zero-temperature optimization phase, ...).
type settings struct {
	seed           int64
	synthChains    int
	optChains      int
	synthProposals int64
	optProposals   int64
	tests          int
	ell            int
	synthBeta      float64
	optBeta        float64
	restartAfter   int64
	maxRefinements int
	verify         verify.Config
	observer       func(Event)
	sse            *bool
	interpreted    bool
	batched        bool
	regLiveness    bool
	tempering      bool
	ladder         []float64
	sharedProfile  bool
	store          *store.Store
	cacheOnly      bool
	cexBank        bool
	verifyGate     bool

	// emitMu serializes this run's observer callbacks. It is per-resolve
	// (shared by OptimizeAll's per-kernel copies, distinct across runs),
	// so a slow observer on one run never stalls another run's chains.
	emitMu *sync.Mutex
}

// defaultSettings are laptop-scale budgets that finish a kernel in seconds.
// The paper ran 40 machines for 30 minutes per phase.
func defaultSettings() settings {
	return settings{
		seed:           1,
		synthChains:    DefaultSynthChains,
		optChains:      DefaultOptChains,
		synthProposals: DefaultSynthProposals,
		optProposals:   DefaultOptProposals,
		tests:          DefaultTests,
		ell:            DefaultEll,
		synthBeta:      DefaultSynthBeta,
		optBeta:        DefaultOptBeta,
		restartAfter:   DefaultRestartAfter,
		maxRefinements: DefaultMaxRefinements,
		verify:         verify.DefaultConfig,
		tempering:      true,
		sharedProfile:  true,
		batched:        true,
		regLiveness:    true,
		cexBank:        true,
		verifyGate:     true,
	}
}

func resolve(opts []Option) settings {
	st := defaultSettings()
	for _, o := range opts {
		o(&st)
	}
	// A non-positive ℓ is meaningless (and would trip the mcmc layer's
	// zero-value Params fallback, silently discarding the configured
	// betas); normalize it here so every sampler sees a usable length.
	if st.ell <= 0 {
		st.ell = DefaultEll
	}
	// Likewise zero testcases: an empty τ scores every program as correct,
	// so the search would hand back arbitrary garbage.
	if st.tests <= 0 {
		st.tests = DefaultTests
	}
	// Chain counts: zero is a documented explicit choice (skip the phase);
	// negatives are meaningless and clamp to zero rather than panicking in
	// the scheduler.
	if st.synthChains < 0 {
		st.synthChains = 0
	}
	if st.optChains < 0 {
		st.optChains = 0
	}
	st.emitMu = &sync.Mutex{}
	return st
}

// Option configures one Optimize or OptimizeAll run.
type Option func(*settings)

// WithSeed sets the random seed. Runs with equal seeds and settings are
// deterministic regardless of worker-pool scheduling: every chain derives
// its own generator from the seed and its chain index.
func WithSeed(seed int64) Option {
	return func(st *settings) { st.seed = seed }
}

// WithBudgets sets the per-chain proposal budgets of the synthesis and
// optimization phases.
func WithBudgets(synthProposals, optProposals int64) Option {
	return func(st *settings) {
		st.synthProposals = synthProposals
		st.optProposals = optProposals
	}
}

// WithChains sets how many synthesis and optimization chains run. Zero
// synthesis chains skip the synthesis phase entirely and optimize from the
// target alone; negative values clamp to zero.
func WithChains(synth, opt int) Option {
	return func(st *settings) {
		st.synthChains = synth
		st.optChains = opt
	}
}

// WithTests sets the number of generated testcases per target (§5.1: 32).
// Values below 1 are meaningless and take the default.
func WithTests(n int) Option {
	return func(st *settings) { st.tests = n }
}

// WithEll sets the fixed sequence length ℓ of candidate rewrites. Values
// below 1 are meaningless and take the default.
func WithEll(n int) Option {
	return func(st *settings) { st.ell = n }
}

// WithBetas sets the inverse temperatures of the two phases: synthesis runs
// hot over the Hamming cost scale (Figure 11: 0.1), optimization cold at
// the perf-term scale. Zero is a legal, explicit choice (accept every
// proposal).
func WithBetas(synth, opt float64) Option {
	return func(st *settings) {
		st.synthBeta = synth
		st.optBeta = opt
	}
}

// WithRestartAfter resets a wandering optimization chain to its best
// correct program after n proposals without improvement (an extension over
// the paper). Zero disables restarts.
func WithRestartAfter(n int64) Option {
	return func(st *settings) { st.restartAfter = n }
}

// WithMaxRefinements bounds validator-driven testcase refinement rounds.
func WithMaxRefinements(n int) Option {
	return func(st *settings) { st.maxRefinements = n }
}

// WithVerify sets the validator configuration (SAT conflict budget, formula
// size cap, exact multiplication encoding).
func WithVerify(cfg verify.Config) Option {
	return func(st *settings) { st.verify = cfg }
}

// WithTempering enables or disables replica exchange (parallel
// tempering): a phase's chains occupy a mostly-cold β ladder — the
// leading replicas at the phase temperature, a hot tail (one replica per
// four) down to half of it — and adjacent replicas exchange their current
// programs under the Metropolis swap criterion at a fixed proposal
// cadence, so the hot explorers feed whatever basins they find into the
// cold exploiting rungs. Enabled by default; disabling it reverts to
// fully independent chains at the phase temperature (the paper's §5.3
// discipline). The swap schedule is seeded: fixed-seed runs are
// bit-for-bit reproducible either way.
func WithTempering(enabled bool) Option {
	return func(st *settings) { st.tempering = enabled }
}

// WithLadder replaces the default geometric β ladder with explicit
// multipliers: replica i of a phase runs at the phase β times
// mults[i%len(mults)]. Implies WithTempering(true).
func WithLadder(mults ...float64) Option {
	return func(st *settings) {
		st.ladder = append([]float64(nil), mults...)
		st.tempering = true
	}
}

// WithSharedProfile enables or disables the kernel-wide testcase
// rejection profile: every chain's early terminations feed one atomic
// counter set, and new chains (including every refinement round's) warm
// start their adaptive testcase order from what sibling chains already
// learned instead of rediscovering the discriminating testcases. Enabled
// by default; it never changes accept/reject decisions, only how early
// bad proposals are rejected.
func WithSharedProfile(enabled bool) Option {
	return func(st *settings) { st.sharedProfile = enabled }
}

// WithRewriteStore attaches a content-addressed rewrite cache to the run.
// Before searching, Optimize canonicalises the kernel (internal/canon) and
// probes the store: an exact fingerprint+constants hit returns the proven
// rewrite immediately — after replaying the stored counterexample set and
// this run's freshly generated testcases through the compiled evaluator as
// revalidation — without launching a search; a fingerprint-class near-miss
// (same canonical skeleton, different constants) warm-starts the
// optimization chains, τ and the rejection profile from the cached entry.
// Every successfully verified run is written back. The same store may
// serve any number of engines and runs concurrently.
func WithRewriteStore(s *store.Store) Option {
	return func(st *settings) { st.store = s }
}

// WithCacheOnly makes Optimize answer exclusively from the rewrite store:
// an exact hit returns as usual, anything else fails with ErrCacheMiss
// instead of searching. This is the synchronous fast path a serving
// front-end probes before enqueueing an async search job. Requires
// WithRewriteStore.
func WithCacheOnly() Option {
	return func(st *settings) { st.cacheOnly = true }
}

// WithCexBank toggles the global cross-kernel counterexample bank
// (default on): every genuine counterexample discovered by any run is
// canonicalised into the bank (on the attached rewrite store when one is
// configured, otherwise on the engine's private in-memory bank), and every
// candidate reaching validation first replays the banked counterexamples
// through the compiled evaluator — a replayed divergence is a NotEqual
// without a SAT call. Replay is sound by construction: the refuting
// testcase is re-derived by running the *target* concretely, so a stale or
// poisoned bank entry can never refute a correct candidate — it just falls
// through to the SAT proof.
func WithCexBank(enabled bool) Option {
	return func(st *settings) { st.cexBank = enabled }
}

// WithVerifyGate toggles the feature-based pre-verification gate (default
// on): before a scheduled mid-search proof, the candidate is scored on
// observed-output agreement breadth, Eq.13 cost margin over the incumbent,
// and opcode-set distance from the target; low scorers have their proof
// deferred to a later validation round. Deferral is bounded per candidate
// and end-of-round validation never consults the gate, so every reported
// verdict is still SAT-backed — the gate shifts proof attempts toward
// candidates likely to survive them, it never skips a proof.
func WithVerifyGate(enabled bool) Option {
	return func(st *settings) { st.verifyGate = enabled }
}

// betaLadder resolves a phase's per-replica inverse temperatures: the
// explicit WithLadder multipliers when given, the default geometric
// ladder under tempering, or a flat ladder (independent chains at the
// phase temperature) otherwise.
func (st *settings) betaLadder(base float64, n int) []float64 {
	if st.tempering && len(st.ladder) > 0 {
		out := make([]float64, n)
		for i := range out {
			out[i] = base * st.ladder[i%len(st.ladder)]
		}
		return out
	}
	if st.tempering {
		return search.Ladder(base, n, search.DefaultLadderSpan)
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = base
	}
	return out
}

// WithInterpretedEval makes every search chain evaluate candidates through
// the reference interpreter (re-decoding each instruction on every run)
// instead of the default decode-once compiled pipeline. The two paths agree
// on every accept/reject decision; this switch exists for differential
// debugging and A/B benchmarking of the evaluation substrate.
func WithInterpretedEval() Option {
	return func(st *settings) { st.interpreted = true }
}

// WithBatchedEval toggles batched lockstep evaluation on the compiled
// pipeline (default on): the tail of each candidate evaluation runs all
// remaining testcases through one emu.Batch sweep — dispatch and operand
// decode paid once per instruction slot instead of once per (slot,
// testcase) — with diverging testcases peeling off to the scalar path at
// conditional jumps. Decision-identical to the scalar compiled pipeline;
// pass false to A/B against it. Ignored under WithInterpretedEval.
func WithBatchedEval(enabled bool) Option {
	return func(st *settings) { st.batched = enabled }
}

// WithRegLiveness toggles register-liveness write suppression on the
// compiled pipeline (default on): every chain's cost function threads the
// kernel's live-out register sets into the compiled form, so candidate
// writes to GPRs and XMM registers the kernel cannot observe are
// suppressed (reads, flags, faults and undefined-read accounting are
// unchanged). Accept/reject decisions on correct rewrites are identical;
// the Improved metric's heuristic misplacement credit may differ on
// incorrect intermediates because its rival scan reads non-live registers.
// Pass false to A/B the search trajectory against the unsuppressed
// pipeline. Ignored under WithInterpretedEval.
func WithRegLiveness(enabled bool) Option {
	return func(st *settings) { st.regLiveness = enabled }
}

// WithSSE forces vector opcodes on or off in the proposal distribution,
// overriding the kernel's own SSE annotation.
func WithSSE(enabled bool) Option {
	return func(st *settings) { st.sse = &enabled }
}

// WithObserver streams typed progress events to fn: phase transitions,
// per-chain best-cost improvements, refinement testcases, and validator
// verdicts. Calls are serialized (fn needs no locking) but arrive from
// worker goroutines, so fn should return quickly; a slow observer
// backpressures the search.
func WithObserver(fn func(Event)) Option {
	return func(st *settings) { st.observer = fn }
}

// WithProfile applies a budget preset; later options still override
// individual knobs. Zero-valued profile fields are left at their defaults
// (a Profile is a preset, not a carrier for explicit zeros — use the
// individual options for those).
func WithProfile(p Profile) Option {
	return func(st *settings) {
		if p.SynthChains > 0 {
			st.synthChains = p.SynthChains
		}
		if p.OptChains > 0 {
			st.optChains = p.OptChains
		}
		if p.SynthProposals > 0 {
			st.synthProposals = p.SynthProposals
		}
		if p.OptProposals > 0 {
			st.optProposals = p.OptProposals
		}
		if p.Ell > 0 {
			st.ell = p.Ell
		}
		if p.VerifyBudget > 0 {
			st.verify.Budget = p.VerifyBudget
		}
		if p.VerifyMaxTerms > 0 {
			st.verify.MaxTerms = p.VerifyMaxTerms
		}
	}
}

// Profile is a named budget preset.
type Profile struct {
	Name                         string
	SynthChains, OptChains       int
	SynthProposals, OptProposals int64
	Ell                          int

	// VerifyBudget and VerifyMaxTerms, when positive, cap the validator's
	// SAT conflicts and formula size (hard proofs answer Unknown instead
	// of running for minutes).
	VerifyBudget   int64
	VerifyMaxTerms int
}

// Quick is the default profile: seconds per kernel on a laptop.
var Quick = Profile{
	Name:        "quick",
	SynthChains: DefaultSynthChains, OptChains: DefaultOptChains,
	SynthProposals: DefaultSynthProposals, OptProposals: DefaultOptProposals,
	Ell: DefaultEll,
}

// Full spends roughly a minute per kernel.
var Full = Profile{
	Name:        "full",
	SynthChains: 4, OptChains: 4,
	SynthProposals: 500000, OptProposals: 600000,
	Ell: 30,
}

// Profiles lists the named presets.
func Profiles() []Profile { return []Profile{Quick, Full} }

// ProfileByName resolves a preset by name; unknown names error, listing the
// valid ones.
func ProfileByName(name string) (Profile, error) {
	var names []string
	for _, p := range Profiles() {
		if p.Name == name {
			return p, nil
		}
		names = append(names, p.Name)
	}
	return Profile{}, fmt.Errorf("stoke: unknown profile %q (valid: %s)",
		name, strings.Join(names, ", "))
}
