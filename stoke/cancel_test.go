package stoke

import (
	"context"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/verify"
)

// TestCancellationReturnsPartial cancels a run mid-optimization and checks
// the contract: Optimize returns promptly with a valid best-so-far Report
// (Partial set, non-nil Rewrite, no error), and once the engine is closed
// no goroutines are left behind.
func TestCancellationReturnsPartial(t *testing.T) {
	before := runtime.NumGoroutine()

	e := NewEngine(EngineConfig{Workers: 2})
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(150 * time.Millisecond)
		cancel()
	}()

	start := time.Now()
	// Budgets far beyond what 150ms can finish: without cancellation this
	// run would take minutes.
	rep, err := e.Optimize(ctx, addKernel(),
		WithSeed(29),
		WithChains(4, 4),
		WithBudgets(200_000_000, 200_000_000),
		WithEll(12))
	elapsed := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed > 30*time.Second {
		t.Fatalf("cancelled run took %v — cancellation not honoured", elapsed)
	}
	if !rep.Partial {
		t.Error("cancelled run must set Partial")
	}
	if rep.Rewrite == nil {
		t.Fatal("cancelled run must still return a best-so-far rewrite")
	}
	if rep.Rewrite.InstCount() == 0 {
		t.Error("best-so-far rewrite is empty")
	}
	t.Logf("partial after %v: %d insts, verdict %v, %d proposals",
		elapsed, rep.Rewrite.InstCount(), rep.Verdict, rep.Stats.Proposals)

	// Drained pool, no leaked goroutines: the worker count must return to
	// its pre-engine baseline once Close returns.
	e.Close()
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before {
		buf := make([]byte, 1<<16)
		t.Fatalf("goroutine leak: %d before, %d after Close\n%s",
			before, n, buf[:runtime.Stack(buf, true)])
	}
}

// TestCancelledBeforeStart returns the target itself: correct by
// construction, flagged partial.
func TestCancelledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rep, err := Optimize(ctx, addKernel(), WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Partial {
		t.Error("pre-cancelled run must be partial")
	}
	if rep.Rewrite == nil {
		t.Fatal("pre-cancelled run must return the target as rewrite")
	}
	if rep.Verdict != verify.Equal {
		t.Errorf("target-as-rewrite is correct by construction, got %v", rep.Verdict)
	}
}

// TestOptionZeroValues checks the redesign's motivating property: the old
// Options struct treated zeros as "use default"; functional options apply
// them literally.
func TestOptionZeroValues(t *testing.T) {
	st := resolve([]Option{WithRestartAfter(0), WithBetas(0.1, 0)})
	if st.restartAfter != 0 {
		t.Errorf("WithRestartAfter(0) resolved to %d", st.restartAfter)
	}
	if st.optBeta != 0 {
		t.Errorf("WithBetas(_, 0) resolved to %v", st.optBeta)
	}
	if st.synthBeta != 0.1 {
		t.Errorf("WithBetas(0.1, _) resolved to %v", st.synthBeta)
	}
	// Untouched knobs keep the documented defaults.
	if st.tests != 32 || st.ell != 24 || st.maxRefinements != 4 {
		t.Errorf("defaults disturbed: tests=%d ell=%d refinements=%d",
			st.tests, st.ell, st.maxRefinements)
	}
}

func TestProfileByName(t *testing.T) {
	p, err := ProfileByName("full")
	if err != nil || p.Name != "full" {
		t.Fatalf("full profile: %v, %v", p, err)
	}
	_, err = ProfileByName("fulll")
	if err == nil {
		t.Fatal("unknown profile must error")
	}
	for _, want := range []string{"fulll", "quick", "full"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q must mention %q", err, want)
		}
	}
}
