package stoke

import (
	"context"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"repro/internal/emu"
	"repro/internal/testgen"
	"repro/internal/verify"
	"repro/internal/x64"
)

// TestTemperingDeterministic is the coordinator's reproducibility
// contract: a fixed-seed run with tempering, pruning, shared profile and
// mid-search validation enabled must be bit-for-bit identical however the
// worker pool schedules the chain segments. Every coordination decision
// happens at a barrier from seeded state, so pool width must not leak
// into the outcome.
func TestTemperingDeterministic(t *testing.T) {
	opts := []Option{
		WithSeed(17),
		WithChains(3, 3),
		WithBudgets(30000, 30000),
		WithEll(10),
		WithTempering(true),
	}
	run := func(workers int) *Report {
		e := NewEngine(EngineConfig{Workers: workers})
		defer e.Close()
		rep, err := e.Optimize(context.Background(), addKernel(), opts...)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := run(1), run(4)

	if a.Rewrite.String() != b.Rewrite.String() {
		t.Fatalf("same seed, different rewrites:\n%s\nvs\n%s", a.Rewrite, b.Rewrite)
	}
	if a.Swaps != b.Swaps || a.Prunes != b.Prunes {
		t.Fatalf("coordination diverged: swaps %d vs %d, prunes %d vs %d",
			a.Swaps, b.Swaps, a.Prunes, b.Prunes)
	}
	if a.Refinements != b.Refinements || a.Tests != b.Tests {
		t.Fatalf("refinement diverged: %d/%d vs %d/%d testcases",
			a.Refinements, a.Tests, b.Refinements, b.Tests)
	}
	if a.Stats != b.Stats {
		t.Fatalf("stats diverged: %+v vs %+v", a.Stats, b.Stats)
	}
	if a.Verdict != b.Verdict {
		t.Fatalf("verdicts diverged: %v vs %v", a.Verdict, b.Verdict)
	}
	t.Logf("deterministic across pool widths: %d swaps, %d prunes, %d refinements",
		a.Swaps, a.Prunes, a.Refinements)
}

// TestTemperingSwapsHappen checks the ensemble actually communicates at
// realistic budgets, and that every accepted swap surfaces as an
// EventSwap matching Report.Swaps.
func TestTemperingSwapsHappen(t *testing.T) {
	var swapEvents, pruneEvents int
	rep, err := Optimize(context.Background(), addKernel(),
		WithSeed(2),
		WithChains(4, 4),
		WithBudgets(60000, 60000),
		WithEll(10),
		WithObserver(func(ev Event) {
			switch ev.Kind {
			case EventSwap:
				swapEvents++
				if ev.Partner != ev.Chain+1 {
					t.Errorf("swap partner %d for chain %d: adjacent replicas only",
						ev.Partner, ev.Chain)
				}
			case EventPrune:
				pruneEvents++
			}
		}))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Swaps == 0 {
		t.Fatal("tempering enabled but no replica exchange was ever accepted")
	}
	if swapEvents != rep.Swaps {
		t.Fatalf("Report.Swaps = %d but %d EventSwap events", rep.Swaps, swapEvents)
	}
	if pruneEvents != rep.Prunes {
		t.Fatalf("Report.Prunes = %d but %d EventPrune events", rep.Prunes, pruneEvents)
	}
}

// TestTemperingDisabledNoSwaps: WithTempering(false) reverts to fully
// independent chains.
func TestTemperingDisabledNoSwaps(t *testing.T) {
	rep, err := Optimize(context.Background(), addKernel(),
		WithSeed(2),
		WithChains(4, 4),
		WithBudgets(20000, 20000),
		WithEll(10),
		WithTempering(false))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Swaps != 0 || rep.Prunes != 0 {
		t.Fatalf("independent chains recorded %d swaps, %d prunes", rep.Swaps, rep.Prunes)
	}
}

// TestCoordinatorCancelNoLeak cancels a temperature-laddered run mid
// flight — landing between, during and after swap barriers across the
// three cancel delays — and checks the coordinator neither deadlocks nor
// leaks goroutines: Optimize returns promptly with a best-so-far report
// and the engine drains to its pre-run goroutine baseline.
func TestCoordinatorCancelNoLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	for _, delay := range []time.Duration{
		20 * time.Millisecond, 75 * time.Millisecond, 150 * time.Millisecond,
	} {
		e := NewEngine(EngineConfig{Workers: 2})
		ctx, cancel := context.WithCancel(context.Background())
		go func() {
			time.Sleep(delay)
			cancel()
		}()
		start := time.Now()
		rep, err := e.Optimize(ctx, addKernel(),
			WithSeed(31),
			WithChains(4, 4),
			WithBudgets(200_000_000, 200_000_000),
			WithEll(12),
			WithTempering(true))
		if err != nil {
			t.Fatal(err)
		}
		if elapsed := time.Since(start); elapsed > 30*time.Second {
			t.Fatalf("cancelled run took %v — coordinator did not drain", elapsed)
		}
		if !rep.Partial {
			t.Error("cancelled run must set Partial")
		}
		if rep.Rewrite == nil {
			t.Fatal("cancelled run must return a best-so-far rewrite")
		}
		e.Close()
	}
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before {
		buf := make([]byte, 1<<16)
		t.Fatalf("goroutine leak: %d before, %d after\n%s",
			before, n, buf[:runtime.Stack(buf, true)])
	}
}

// low32Kernel is a refinement honeypot: the target zeroes rdi's high 32
// bits, but every generated input is small, so the strictly cheaper —
// and wrong — `movq rdi, rax` is testcase-equivalent until the validator
// refutes it with a wide counterexample. Every seed exercises the full
// counterexample loop: refute, fold, broadcast, re-search.
func low32Kernel() Kernel {
	return Kernel{
		Name: "low32",
		Target: x64.MustParse(`
  movq rdi, rax
  shlq 32, rax
  shrq 32, rax
`),
		Spec: testgen.Spec{
			BuildInput: func(rng *rand.Rand) *emu.Snapshot {
				a := testgen.NewArena(0x10000)
				a.AllocStack(256)
				a.SetReg(x64.RDI, rng.Uint64()&0xffff)
				return a.Snapshot()
			},
			LiveOut: testgen.LiveSet{GPRs: []testgen.LiveReg{{Reg: x64.RAX, Width: 8}}},
		},
		Pointers: x64.RegSet(0).With(x64.RSP),
	}
}

// TestRefinementsCountAllFolds pins the Report.Refinements contract: it
// counts every counterexample testcase folded into τ — mid-search
// broadcasts that refined all live chains as well as end-of-round
// validation folds — so it must exactly equal the growth of the testcase
// set over the run, whichever chain's candidate produced each
// counterexample.
func TestRefinementsCountAllFolds(t *testing.T) {
	const initialTests = 4
	refined := 0
	for seed := int64(1); seed <= 3; seed++ {
		rep, err := Optimize(context.Background(), low32Kernel(),
			WithSeed(seed),
			WithChains(2, 3),
			WithBudgets(20000, 30000),
			WithEll(10),
			WithTests(initialTests))
		if err != nil {
			t.Fatal(err)
		}
		if rep.Refinements != rep.Tests-initialTests {
			t.Fatalf("seed %d: Refinements = %d but testcases grew %d -> %d",
				seed, rep.Refinements, initialTests, rep.Tests)
		}
		refined += rep.Refinements
		// The refuted cheap rewrite must not be the final answer.
		if rep.Verdict == verify.NotEqual {
			t.Fatalf("seed %d: unvalidated rewrite survived:\n%s", seed, rep.Rewrite)
		}
	}
	if refined == 0 {
		t.Fatal("the honeypot kernel produced no refinement on any seed")
	}
}
