// Package repro is a from-scratch Go reproduction of "Stochastic
// Superoptimization" (Schkufza, Sharma, Aiken; ASPLOS 2013): MCMC search
// over loop-free x86-64 programs, with every substrate the paper relies on
// implemented in this module — ISA, sandboxed emulator, testcase
// generation, cost functions, SAT-based bit-vector validator, the
// mini-compiler producing the -O0 targets and -O3 comparators, and a
// benchmark harness regenerating every figure of the paper's evaluation.
//
// Start with the public stoke package (import "repro/stoke"): it exposes a
// reusable Engine that schedules the MCMC chains of one or many kernels
// onto a shared worker pool, takes a context.Context for cancellation with
// best-so-far partial results, and streams typed progress events to an
// observer. examples/quickstart is the smallest end-to-end program;
// cmd/stoke is the CLI and cmd/stoke-bench the figure harness.
//
// # Evaluation pipeline
//
// Candidate scoring — the hot path that bounds the paper's §6 search rate —
// is a two-phase, decode-once pipeline. internal/emu.Compile lowers a
// program once into per-slot micro-ops (pre-resolved handlers with widths,
// masks, immediates, fused flag updates and pre-linked jump/fall-through
// targets baked in); Machine.RunCompiled dispatches over that form, hopping
// directly between live slots so UNUSED padding costs nothing. Because an
// MCMC move touches at most two instruction slots, the sampler patches
// exactly those slots of the compiled form (restoring and re-patching on
// rejection) instead of recompiling ℓ slots per proposal.
// internal/cost.Fn.EvalCompiled scores the compiled form on one machine
// pinned per testcase — unchanged snapshots reload almost for free — and
// visits testcases in an adaptive order: each testcase counts how often it
// pushed the running cost over the §4.5 early-termination bound, and the
// most-discriminating tests migrate to the front so bad proposals die after
// one run. Reordering cannot change accept/reject decisions (per-testcase
// costs are non-negative, so the prefix sums cross any bound iff the total
// does). The lowering is total over the search workloads: the divide family
// (with its #DE early-exit) and the fixed-point SSE subset compile to
// specialised micro-ops too, so no instruction of the tracked scalar,
// vector (saxpy) or Montgomery kernels reaches the generic interpreting
// fallback (a dispatch-counter test pins this), and the sandbox's
// definedness/validity planes are word-wide bitsets so the memory-bound
// kernels pay one mask check per access instead of a byte loop. A backward
// flag-liveness pass over the compiled form (internal/emu/liveness.go)
// suppresses the flag computation and stores of every slot whose written
// flags no later condition consumer, carry chain or exit can observe — the
// majority of flag writes on ALU-dense candidates — selecting
// flag-suppressed or reduced szp-only dispatch variants per slot. The
// same walk runs a register-liveness pass over packed 16-bit GPR+XMM
// sets: emu.CompileLive narrows the exit observation to the kernel's
// live-out masks (exactly what the §4.2 cost function reads), and every
// slot none of whose written registers — partial-width merge semantics,
// zero idioms and the divide family's implicit RAX/RDX included — is
// live-out lowers to a write-suppressed dispatch variant that keeps the
// full handler's reads, faults and undef accounting but skips the value
// and definedness stores. Patch keeps the MCMC contract by recomputing
// liveness only over the affected backward slice (worst case O(ℓ),
// ~8ns/slot for both passes; the sampler's reject path restores patched
// slots from snapshots without re-lowering at all).
// Compiled.FlagFreeSlots and RegFreeSlots report the suppression
// coverage, recorded per kernel row in BENCH_eval.json (flag_free
// statically over the padded start program, reg_free dynamically over
// the candidates the compiled chain visits).
//
// On top of the per-testcase compiled loop sits batched lockstep
// evaluation (emu.Batch, cost.Fn.EvalCompiledBatched; the default —
// stoke.WithBatchedEval opts out). Instead of re-dispatching the whole
// program once per testcase, each compiled slot executes across every
// live testcase lane before the batch advances, so dispatch, operand
// decode and the flag-variant selection are paid once per slot per chunk
// rather than once per slot per testcase. Control flow stays in lockstep
// until a conditional jump observes lanes on both sides; the minority
// side then peels to the scalar tail from its branch target and the
// majority continues batched (a divide fault never splits a batch — #DE
// continues in line, exactly as in the scalar walk). The §4.5
// early-termination contract survives as a chunk schedule: the head of
// the adaptive testcase order still runs one-testcase chunks (bad
// proposals die after one run, and chunks at or below the scalar
// crossover width run the scalar loop verbatim), while the tail of a
// full-width evaluation runs as single lockstep sweeps; lanes are scored
// in the same adaptive order with the same budget checks, so batched
// evaluation is decision-identical to EvalCompiled — same results, same
// floating-point rounding, same rejection-profile updates. The
// original interpreter (Machine.Run, Fn.Eval) remains the semantic
// reference behind stoke.WithInterpretedEval, pinned to the compiled path
// by randomized differential tests and by fuzz-grade differential targets
// (FuzzCompiledVsInterpreted, FuzzPatchVsFreshCompile and the
// batch-splitting FuzzBatchedVsScalar in internal/emu,
// seeded from internal/testgen's corpus generator) that hold
// compiled == interpreted, patched == fresh-compile and batched == scalar
// over random programs, machine states and patch sequences;
// BenchmarkEvalThroughput(SSE), the BenchmarkEvalThroughputBatched
// batch-width sweep (|τ| ∈ {1,4,16,64}) and the BENCH_eval.json baseline
// emitted by cmd/stoke-bench
// -eval-baseline track the speedup (≥3x proposals/sec at the paper's ℓ=50
// profile on this module's hardware baseline, ~2x on the vector and
// Montgomery rows; the batched rows record the lockstep amortisation on
// top of that, largest in the full-width evaluation regime).
//
// # Search coordination
//
// The paper runs its per-kernel MCMC chains independently (§5.3); this
// module coordinates them. internal/search drives each phase's chains in
// cadenced segments with a barrier between rounds, and at every barrier
// performs (a) replica exchange over a mostly-cold β ladder (the hot tail
// explores, cold rungs exploit, adjacent replicas swap programs under the
// Metropolis swap criterion on a seeded schedule), (b) global
// best-so-far sharing — every chain's best correct program feeds a
// bounded pool that the final 20%-window re-ranking draws from, and
// stagnant chains whose own best is outside that window reseed from the
// pool head — and (c) validator-in-the-loop refinement: the ensemble's
// best candidate is proven or refuted mid-search, and a genuine
// counterexample broadcasts to every live chain's testcase set, not just
// the finder's. internal/cost.SharedProfile completes the picture: the
// early-termination counts of every chain aggregate into one atomic
// profile that warm-starts each new chain's adaptive testcase order.
// Because every coordination decision happens at a barrier from seeded
// state, fixed-seed runs stay bit-for-bit reproducible regardless of
// worker-pool scheduling. cmd/stoke-bench -search-baseline emits
// BENCH_search.json, A/Bing tempering against independent chains on
// synthesis hit-rate and time-to-zero-cost over paper-suite kernels.
package repro
