// Package repro is a from-scratch Go reproduction of "Stochastic
// Superoptimization" (Schkufza, Sharma, Aiken; ASPLOS 2013): MCMC search
// over loop-free x86-64 programs, with every substrate the paper relies on
// implemented in this module — ISA, sandboxed emulator, testcase
// generation, cost functions, SAT-based bit-vector validator, the
// mini-compiler producing the -O0 targets and -O3 comparators, and a
// benchmark harness regenerating every figure of the paper's evaluation.
//
// Start with internal/core for the public API, cmd/stoke for the CLI,
// cmd/stoke-bench for the figure harness, and DESIGN.md / EXPERIMENTS.md
// for the reproduction inventory and results.
package repro
