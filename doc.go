// Package repro is a from-scratch Go reproduction of "Stochastic
// Superoptimization" (Schkufza, Sharma, Aiken; ASPLOS 2013): MCMC search
// over loop-free x86-64 programs, with every substrate the paper relies on
// implemented in this module — ISA, sandboxed emulator, testcase
// generation, cost functions, SAT-based bit-vector validator, the
// mini-compiler producing the -O0 targets and -O3 comparators, and a
// benchmark harness regenerating every figure of the paper's evaluation.
//
// Start with the public stoke package (import "repro/stoke"): it exposes a
// reusable Engine that schedules the MCMC chains of one or many kernels
// onto a shared worker pool, takes a context.Context for cancellation with
// best-so-far partial results, and streams typed progress events to an
// observer. examples/quickstart is the smallest end-to-end program;
// cmd/stoke is the CLI and cmd/stoke-bench the figure harness.
package repro
