// Package canon canonicalises x64 programs into content-addressable
// fingerprints, so α-equivalent submissions — the same kernel up to a
// register renaming, a relabelling, different literal constants, or UNUSED
// padding — collide on one cache key. It is the addressing layer of the
// rewrite store behind the serving mode: millions of users mostly submit
// the same kernels, and a fingerprint hit turns a 150k-proposal search
// into a map lookup.
//
// Canonicalisation performs, in order:
//
//   - UNUSED-slot removal (padding invariance: candidates carry a fixed
//     physical length ℓ, which is a search artefact, not semantics).
//   - Register renaming to a canonical order. Live-out registers are
//     assigned canonical names first, in declaration order (live-out
//     normalisation: "the sum in rax" and "the sum in rdi" are the same
//     kernel), then the remaining registers in order of first appearance.
//     Registers with architectural roles are pinned to themselves: RSP
//     (the stack discipline), every implicit operand of an instruction in
//     the program (MUL/DIV's RAX:RDX, ...), and RCX when a shift takes a
//     CL count — renaming those would change semantics, not just names.
//     The result is a full 16-register bijection, so any scratch register
//     of a cached rewrite maps back injectively.
//   - Label renumbering in order of first mention.
//   - Commutative addressing normalisation: at scale 1 the base and index
//     registers of a memory operand are interchangeable (base + index·1 is
//     symmetric), so "(rax,rbx,1)" and "(rbx,rax,1)" — and the index-only
//     form "(,rbx,1)" against the plain "(rbx)" — are folded into one
//     orientation after renaming. RSP never moves out of the base slot: it
//     is not encodable as an index register.
//   - Constant abstraction: immediates and memory displacements are
//     value-numbered into a constant vector and the fingerprint sees only
//     their indices, so kernels differing in literals share a fingerprint
//     class (an exact cache hit additionally requires the vectors to
//     match; a class hit with different constants is the near-miss that
//     warm-starts a search).
//
// The fingerprint is a SHA-256 over the canonical instruction skeleton
// plus the canonicalised live-out declaration.
package canon

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"

	"repro/internal/verify"
	"repro/internal/x64"
)

// Fingerprint identifies one α-equivalence class of (program, live-out)
// pairs, constants abstracted.
type Fingerprint [sha256.Size]byte

// Hex renders the fingerprint for keys and logs.
func (fp Fingerprint) Hex() string { return hex.EncodeToString(fp[:]) }

// Form is the canonical form of one (program, live-out) pair: the concrete
// canonical program (constants intact), the abstracted constant vector,
// the fingerprint, and the register bijections needed to carry programs
// into and out of canonical space.
type Form struct {
	// Prog is the canonical program: packed, registers and labels renamed,
	// constants concrete.
	Prog *x64.Program

	// Consts is the value-numbered constant vector: every distinct
	// immediate or displacement value, in order of first appearance.
	Consts []int64

	// FP is the fingerprint of the constant-abstracted skeleton plus the
	// canonical live-out declaration.
	FP Fingerprint

	// Live is the live-out declaration carried into canonical space.
	Live verify.LiveOut

	toCanon   [x64.NumGPR]x64.Reg
	fromCanon [x64.NumGPR]x64.Reg
	xmmTo     [x64.NumXMM]x64.Reg
	xmmFrom   [x64.NumXMM]x64.Reg
}

// canonGPROrder is the fixed allocation order of canonical register names.
// RSP is absent: it is always pinned.
var canonGPROrder = []x64.Reg{
	x64.RAX, x64.RCX, x64.RDX, x64.RBX, x64.RBP, x64.RSI, x64.RDI,
	x64.R8, x64.R9, x64.R10, x64.R11, x64.R12, x64.R13, x64.R14, x64.R15,
}

// PinnedGPRs returns the registers of p that a semantics-preserving
// renaming must fix: RSP, the implicit operands of every instruction, and
// RCX when any shift-family instruction takes its count from CL.
func PinnedGPRs(p *x64.Program) x64.RegSet {
	pinned := x64.RegSet(0).With(x64.RSP)
	for _, in := range p.Insts {
		if in.Op == x64.UNUSED || in.Op == x64.LABEL {
			continue
		}
		info := x64.Info(in.Op)
		pinned |= info.ImplReads | info.ImplWrites
		if (info.CondFlags || in.Op == x64.SHLD || in.Op == x64.SHRD) &&
			in.N > 0 && in.Opd[0].Kind == x64.KindReg && in.Opd[0].Width == 1 {
			pinned = pinned.With(x64.RCX) // CL shift count
		}
	}
	return pinned
}

// RenameOK reports whether applying perm to q preserves semantics: every
// pinned register of q must map to itself. (The bijections built by
// Canonicalize fix the pins of the *target*; a rewrite may introduce
// implicit-operand instructions the target lacked, and such a rewrite
// cannot be carried across register spaces.)
func RenameOK(q *x64.Program, perm *[x64.NumGPR]x64.Reg) bool {
	pinned := PinnedGPRs(q)
	for r := x64.Reg(0); r < x64.NumGPR; r++ {
		if pinned.Has(r) && perm[r] != r {
			return false
		}
	}
	return true
}

// Canonicalize computes the canonical form of (p, live). It never fails:
// every valid program has a canonical form.
func Canonicalize(p *x64.Program, live verify.LiveOut) *Form {
	f := &Form{}
	packed := p.Packed()

	// --- GPR bijection: pins first, then live-outs and first appearances
	// draw from the canonical order, then the never-mentioned rest. ---
	pinned := PinnedGPRs(packed)
	var assigned [x64.NumGPR]bool // canonical names already taken
	var mapped [x64.NumGPR]bool   // original names already mapped
	for r := x64.Reg(0); r < x64.NumGPR; r++ {
		if pinned.Has(r) {
			f.toCanon[r] = r
			assigned[r] = true
			mapped[r] = true
		}
	}
	pool := make([]x64.Reg, 0, len(canonGPROrder))
	for _, r := range canonGPROrder {
		if !assigned[r] {
			pool = append(pool, r)
		}
	}
	next := 0
	take := func(orig x64.Reg) {
		if orig >= x64.NumGPR || mapped[orig] {
			return
		}
		f.toCanon[orig] = pool[next]
		next++
		mapped[orig] = true
	}
	for _, lr := range live.GPRs {
		take(lr.Reg)
	}
	for _, mr := range live.Mem {
		take(mr.Base)
	}
	forEachGPR(packed, take)
	for r := x64.Reg(0); r < x64.NumGPR; r++ {
		take(r) // complete the bijection over never-mentioned registers
	}
	for r := x64.Reg(0); r < x64.NumGPR; r++ {
		f.fromCanon[f.toCanon[r]] = r
	}

	// --- XMM bijection: live-outs first, then first appearance. ---
	var xmmMapped [x64.NumXMM]bool
	xnext := x64.Reg(0)
	xtake := func(orig x64.Reg) {
		if orig >= x64.NumXMM || xmmMapped[orig] {
			return
		}
		f.xmmTo[orig] = xnext
		xnext++
		xmmMapped[orig] = true
	}
	for _, xr := range live.Xmms {
		xtake(xr)
	}
	forEachXMM(packed, xtake)
	for r := x64.Reg(0); r < x64.NumXMM; r++ {
		xtake(r)
	}
	for r := x64.Reg(0); r < x64.NumXMM; r++ {
		f.xmmFrom[f.xmmTo[r]] = r
	}

	// --- Canonical program: rename registers and labels, then pick one
	// orientation for every scale-1 addressing form. ---
	f.Prog = renameProgram(packed, &f.toCanon, &f.xmmTo)
	normalizeMemOperands(f.Prog)

	// --- Canonical live-out declaration. ---
	f.Live = verify.LiveOut{Flags: live.Flags}
	for _, lr := range live.GPRs {
		lr.Reg = f.toCanon[lr.Reg]
		f.Live.GPRs = append(f.Live.GPRs, lr)
	}
	for _, xr := range live.Xmms {
		f.Live.Xmms = append(f.Live.Xmms, f.xmmTo[xr])
	}
	for _, mr := range live.Mem {
		mr.Base = f.toCanon[mr.Base]
		f.Live.Mem = append(f.Live.Mem, mr)
	}

	// --- Constant abstraction + fingerprint. ---
	f.Consts, f.FP = fingerprint(f.Prog, f.Live)
	return f
}

// ToCanon carries q (a program in the original register space, typically a
// rewrite found for the original target) into canonical space under the
// form's bijections, renumbering q's labels by its own first-mention
// order. The second result reports whether the renaming is
// semantics-preserving for q (see RenameOK); callers must not use the
// program when it is false.
func (f *Form) ToCanon(q *x64.Program) (*x64.Program, bool) {
	if !RenameOK(q, &f.toCanon) {
		return nil, false
	}
	r := renameProgram(q.Packed(), &f.toCanon, &f.xmmTo)
	normalizeMemOperands(r)
	return r, true
}

// FromCanon carries a canonical-space program back into the original
// register space (the inverse of ToCanon).
func (f *Form) FromCanon(q *x64.Program) (*x64.Program, bool) {
	if !RenameOK(q, &f.fromCanon) {
		return nil, false
	}
	return renameProgram(q.Packed(), &f.fromCanon, &f.xmmFrom), true
}

// GPRToCanon maps a general-purpose register of the original space to its
// canonical name under the form's bijection. Carrying a machine state into
// canonical space (e.g. banking a counterexample) assigns, for each
// original register r, the original value of r to the canonical register
// GPRToCanon(r).
func (f *Form) GPRToCanon(r x64.Reg) x64.Reg { return f.toCanon[r] }

// GPRFromCanon is the inverse of GPRToCanon.
func (f *Form) GPRFromCanon(r x64.Reg) x64.Reg { return f.fromCanon[r] }

// XMMToCanon maps an XMM register index to its canonical name.
func (f *Form) XMMToCanon(r x64.Reg) x64.Reg { return f.xmmTo[r] }

// XMMFromCanon is the inverse of XMMToCanon.
func (f *Form) XMMFromCanon(r x64.Reg) x64.Reg { return f.xmmFrom[r] }

// SubstituteConsts returns a copy of p with every immediate and
// displacement equal to old[i] replaced by new[i] — the near-miss
// warm-start: a cached rewrite for one constant vector is re-literalised
// with the submitter's. Displacements that do not fit int32 after
// substitution are left unchanged. Later old entries shadow earlier equal
// ones never occur: the vector is value-numbered, entries are distinct.
func SubstituteConsts(p *x64.Program, oldv, newv []int64) *x64.Program {
	sub := make(map[int64]int64, len(oldv))
	for i, v := range oldv {
		if i < len(newv) {
			sub[v] = newv[i]
		}
	}
	q := p.Clone()
	for i := range q.Insts {
		in := &q.Insts[i]
		for oi := uint8(0); oi < in.N; oi++ {
			o := &in.Opd[oi]
			switch o.Kind {
			case x64.KindImm:
				if nv, ok := sub[o.Imm]; ok {
					o.Imm = nv
				}
			case x64.KindMem:
				if nv, ok := sub[int64(o.Disp)]; ok && nv == int64(int32(nv)) {
					o.Disp = int32(nv)
				}
			}
		}
	}
	return q
}

// normalizeMemOperands rewrites every scale-1 memory operand of q in place
// into a single canonical addressing orientation: an index-only operand
// "(,r,1)" becomes the plain base form "(r)", and when both registers are
// present the lower-numbered one takes the base slot (base + index·1 is
// symmetric, so either orientation computes the same address). RSP is left
// wherever it stands: x64 cannot encode it as an index register, so moving
// it would manufacture an unencodable operand. Runs after register
// renaming — the orientation the mutator happened to emit must not leak
// into the fingerprint, and the renaming bijection is already fixed by the
// time the swap happens, so first-appearance order is unaffected.
func normalizeMemOperands(q *x64.Program) {
	for i := range q.Insts {
		in := &q.Insts[i]
		for oi := uint8(0); oi < in.N; oi++ {
			o := &in.Opd[oi]
			if o.Kind != x64.KindMem || o.Scale != 1 || o.Index == x64.NoReg {
				continue
			}
			switch {
			case o.Base == x64.NoReg:
				o.Base, o.Index = o.Index, x64.NoReg
			case o.Base != x64.RSP && o.Index != x64.RSP && o.Index < o.Base:
				o.Base, o.Index = o.Index, o.Base
			}
		}
	}
}

// forEachGPR visits every general-purpose register mention of p in slot,
// then operand, order (register operands, then memory base and index).
func forEachGPR(p *x64.Program, visit func(x64.Reg)) {
	for _, in := range p.Insts {
		for oi := uint8(0); oi < in.N; oi++ {
			o := in.Opd[oi]
			switch o.Kind {
			case x64.KindReg:
				visit(o.Reg)
			case x64.KindMem:
				if o.Base != x64.NoReg {
					visit(o.Base)
				}
				if o.Index != x64.NoReg {
					visit(o.Index)
				}
			}
		}
		// Implicit operands are pinned, so visiting them is a no-op; skip.
	}
}

// forEachXMM visits every XMM register mention of p in slot order.
func forEachXMM(p *x64.Program, visit func(x64.Reg)) {
	for _, in := range p.Insts {
		for oi := uint8(0); oi < in.N; oi++ {
			if in.Opd[oi].Kind == x64.KindXmm {
				visit(in.Opd[oi].Reg)
			}
		}
	}
}

// renameProgram applies the register bijections to a packed program and
// renumbers its labels in order of first mention.
func renameProgram(p *x64.Program, gpr *[x64.NumGPR]x64.Reg, xmm *[x64.NumXMM]x64.Reg) *x64.Program {
	labels := map[int32]int32{}
	relabel := func(l int32) int32 {
		if nl, ok := labels[l]; ok {
			return nl
		}
		nl := int32(len(labels))
		labels[l] = nl
		return nl
	}
	q := p.Clone()
	for i := range q.Insts {
		in := &q.Insts[i]
		for oi := uint8(0); oi < in.N; oi++ {
			o := &in.Opd[oi]
			switch o.Kind {
			case x64.KindReg:
				o.Reg = gpr[o.Reg]
			case x64.KindXmm:
				o.Reg = xmm[o.Reg]
			case x64.KindMem:
				if o.Base != x64.NoReg {
					o.Base = gpr[o.Base]
				}
				if o.Index != x64.NoReg {
					o.Index = gpr[o.Index]
				}
			case x64.KindLabel:
				o.Label = relabel(o.Label)
			}
		}
	}
	return q
}

// fingerprint hashes the constant-abstracted skeleton of a canonical
// program and live-out declaration, returning the value-numbered constant
// vector alongside.
func fingerprint(p *x64.Program, live verify.LiveOut) ([]int64, Fingerprint) {
	h := sha256.New()
	var buf [8]byte
	w8 := func(v uint8) { h.Write([]byte{v}) }
	w32 := func(v int32) {
		binary.LittleEndian.PutUint32(buf[:4], uint32(v))
		h.Write(buf[:4])
	}
	w64 := func(v int64) {
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		h.Write(buf[:])
	}

	var consts []int64
	index := map[int64]int64{}
	abstract := func(v int64) int64 {
		if i, ok := index[v]; ok {
			return i
		}
		i := int64(len(consts))
		index[v] = i
		consts = append(consts, v)
		return i
	}

	w8(1) // skeleton format version
	for _, in := range p.Insts {
		w8(uint8(in.Op))
		w8(uint8(in.CC))
		w8(in.N)
		for oi := uint8(0); oi < in.N; oi++ {
			o := in.Opd[oi]
			w8(uint8(o.Kind))
			w8(o.Width)
			switch o.Kind {
			case x64.KindReg, x64.KindXmm:
				w8(uint8(o.Reg))
			case x64.KindImm:
				w64(abstract(o.Imm))
			case x64.KindMem:
				w8(uint8(o.Base))
				w8(uint8(o.Index))
				w8(o.Scale)
				w64(abstract(int64(o.Disp)))
			case x64.KindLabel:
				w32(o.Label)
			}
		}
	}
	w8(0xFF) // live-out section
	for _, lr := range live.GPRs {
		w8(uint8(lr.Reg))
		w8(lr.Width)
	}
	w8(0xFE)
	for _, xr := range live.Xmms {
		w8(uint8(xr))
	}
	w8(0xFD)
	w8(uint8(live.Flags))
	for _, mr := range live.Mem {
		w8(uint8(mr.Base))
		w32(mr.Disp)
		w32(mr.Len)
	}

	var fp Fingerprint
	h.Sum(fp[:0])
	return consts, fp
}
