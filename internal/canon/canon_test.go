package canon

import (
	"math/rand"
	"testing"

	"repro/internal/testgen"
	"repro/internal/verify"
	"repro/internal/x64"
)

func live64(regs ...x64.Reg) verify.LiveOut {
	var lo verify.LiveOut
	for _, r := range regs {
		lo.GPRs = append(lo.GPRs, testgen.LiveReg{Reg: r, Width: 8})
	}
	return lo
}

// TestAlphaEquivalentCollide drives the core property through register
// renamings, live-out renamings, and label renumberings: α-equivalent
// submissions share a fingerprint, behaviourally distinct ones do not.
func TestAlphaEquivalentCollide(t *testing.T) {
	cases := []struct {
		name  string
		a, b  string
		liveA verify.LiveOut
		liveB verify.LiveOut
		same  bool
	}{
		{
			name:  "register renaming",
			a:     "movq rdi, rax\naddq rsi, rax",
			b:     "movq r8, rbx\naddq r9, rbx",
			liveA: live64(x64.RAX),
			liveB: live64(x64.RBX),
			same:  true,
		},
		{
			name:  "live-out normalisation",
			a:     "movq rdi, rax\naddq rsi, rax",
			b:     "movq rdi, rsi\naddq rdx, rsi",
			liveA: live64(x64.RAX),
			liveB: live64(x64.RSI),
			same:  true,
		},
		{
			name:  "distinct opcode",
			a:     "movq rdi, rax\naddq rsi, rax",
			b:     "movq rdi, rax\nsubq rsi, rax",
			liveA: live64(x64.RAX),
			liveB: live64(x64.RAX),
			same:  false,
		},
		{
			name:  "distinct live-out width",
			a:     "movq rdi, rax",
			b:     "movq rdi, rax",
			liveA: live64(x64.RAX),
			liveB: verify.LiveOut{GPRs: []testgen.LiveReg{{Reg: x64.RAX, Width: 4}}},
			same:  false,
		},
		{
			name: "operand-role collision stays distinct",
			// a computes rdi+rsi, b computes rsi+rdi into the other source —
			// α-equivalent as written (addition commutes structurally after
			// renaming), so these must collide...
			a:     "movq rdi, rax\naddq rsi, rax",
			b:     "movq rsi, rax\naddq rdi, rax",
			liveA: live64(x64.RAX),
			liveB: live64(x64.RAX),
			same:  true,
		},
		{
			name: "shared source is structural",
			// ...but a kernel reusing one source register twice is NOT
			// α-equivalent to one using two distinct sources.
			a:     "movq rdi, rax\naddq rdi, rax",
			b:     "movq rdi, rax\naddq rsi, rax",
			liveA: live64(x64.RAX),
			liveB: live64(x64.RAX),
			same:  false,
		},
		{
			name:  "pinned implicit registers block renaming",
			a:     "movq rdi, rax\nmulq rsi",
			b:     "movq rdi, rbx\nmulq rsi",
			liveA: live64(x64.RAX),
			liveB: live64(x64.RBX),
			same:  false, // mulq writes rax:rdx; rbx is a different kernel
		},
		{
			name:  "label renumbering",
			a:     "cmpq rsi, rdi\njle .L5\nmovq rsi, rax\n.L5:",
			b:     "cmpq rsi, rdi\njle .L0\nmovq rsi, rax\n.L0:",
			liveA: live64(x64.RAX),
			liveB: live64(x64.RAX),
			same:  true,
		},
		{
			name:  "memory base renaming",
			a:     "movq (rdi), rax\naddq 8(rdi), rax",
			b:     "movq (rcx), rax\naddq 8(rcx), rax",
			liveA: live64(x64.RAX),
			liveB: live64(x64.RAX),
			same:  true,
		},
		{
			name: "commutative addressing orientation",
			// The leading moves force both registers into a fixed renaming
			// order, so the two orientations of the scale-1 operand reach
			// the fingerprint with genuinely swapped base/index — only the
			// normalisation pass can merge them.
			a:     "movq rdi, rcx\nmovq rsi, rdx\nmovq (rdi,rsi,1), rax",
			b:     "movq rdi, rcx\nmovq rsi, rdx\nmovq (rsi,rdi,1), rax",
			liveA: live64(x64.RAX),
			liveB: live64(x64.RAX),
			same:  true,
		},
		{
			name: "scaled addressing is not commutative",
			// base + 2·index is asymmetric: swapping the registers is a
			// different address, and must stay a different fingerprint.
			a:     "movq rdi, rcx\nmovq rsi, rdx\nmovq (rdi,rsi,2), rax",
			b:     "movq rdi, rcx\nmovq rsi, rdx\nmovq (rsi,rdi,2), rax",
			liveA: live64(x64.RAX),
			liveB: live64(x64.RAX),
			same:  false,
		},
		{
			name:  "index-only folds into the base form",
			a:     "movq (,rdi,1), rax",
			b:     "movq (rdi), rax",
			liveA: live64(x64.RAX),
			liveB: live64(x64.RAX),
			same:  true,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fa := Canonicalize(x64.MustParse(tc.a), tc.liveA)
			fb := Canonicalize(x64.MustParse(tc.b), tc.liveB)
			if (fa.FP == fb.FP) != tc.same {
				t.Errorf("fingerprints equal=%v, want %v\ncanon a:\n%s\ncanon b:\n%s",
					fa.FP == fb.FP, tc.same, fa.Prog, fb.Prog)
			}
			if tc.same && fa.Prog.String() != fb.Prog.String() {
				t.Errorf("same fingerprint but different canonical programs:\n%s\nvs\n%s",
					fa.Prog, fb.Prog)
			}
		})
	}
}

// TestMemOperandNormalisation pins the details of the scale-1 addressing
// normalisation the α-equivalence table can't see directly: RSP never
// leaves the base slot, and ToCanon applies the same orientation so cached
// canonical rewrites compare equal regardless of how a mutation oriented
// the operand.
func TestMemOperandNormalisation(t *testing.T) {
	// RSP pins: index RAX sorts below base RSP, but swapping would put RSP
	// in the (unencodable) index slot, so the operand must stay put.
	f := Canonicalize(x64.MustParse("movq (rsp,rdi,1), rax"), live64(x64.RAX))
	o := f.Prog.Insts[0].Opd[0]
	if o.Base != x64.RSP || o.Index == x64.NoReg {
		t.Errorf("RSP-based operand reoriented: base=%v index=%v", o.Base, o.Index)
	}

	// ToCanon must normalise carried rewrites the same way Canonicalize
	// normalises the target, or equal rewrites would miss the cache.
	target := x64.MustParse("movq rdi, rcx\nmovq rsi, rdx\nmovq (rdi,rsi,1), rax")
	form := Canonicalize(target, live64(x64.RAX))
	q := x64.MustParse("movq rdi, rcx\nmovq rsi, rdx\nmovq (rsi,rdi,1), rax")
	qc, ok := form.ToCanon(q)
	if !ok {
		t.Fatal("ToCanon rejected a rename-safe rewrite")
	}
	if qc.String() != form.Prog.String() {
		t.Errorf("ToCanon left a swapped orientation:\n%s\nvs canonical\n%s", qc, form.Prog)
	}
}

// TestConstantAbstraction checks that kernels differing only in literal
// constants share a fingerprint class with distinct constant vectors, and
// that SubstituteConsts round-trips one into the other.
func TestConstantAbstraction(t *testing.T) {
	a := x64.MustParse("movq rdi, rax\naddq 42, rax\nxorq 42, rax\nmovq 7(rsp), rcx")
	b := x64.MustParse("movq rdi, rax\naddq 99, rax\nxorq 99, rax\nmovq 13(rsp), rcx")
	lo := live64(x64.RAX)
	fa := Canonicalize(a, lo)
	fb := Canonicalize(b, lo)
	if fa.FP != fb.FP {
		t.Fatalf("constant abstraction failed: distinct fingerprints")
	}
	// Value numbering: 42 appears twice but once in the vector.
	if len(fa.Consts) != 2 || fa.Consts[0] != 42 || fa.Consts[1] != 7 {
		t.Fatalf("want consts [42 7], got %v", fa.Consts)
	}
	if len(fb.Consts) != 2 || fb.Consts[0] != 99 || fb.Consts[1] != 13 {
		t.Fatalf("want consts [99 13], got %v", fb.Consts)
	}
	// Round-trip: re-literalising a's canonical program with b's constants
	// yields b's canonical program.
	sub := SubstituteConsts(fa.Prog, fa.Consts, fb.Consts)
	if sub.String() != fb.Prog.String() {
		t.Fatalf("substitution round-trip:\n%s\nwant\n%s", sub, fb.Prog)
	}
	// Distinct constant *structure* (shared vs unshared) must not collide.
	c := x64.MustParse("movq rdi, rax\naddq 42, rax\nxorq 41, rax\nmovq 7(rsp), rcx")
	if fc := Canonicalize(c, lo); fc.FP == fa.FP {
		t.Fatalf("42/42 and 42/41 kernels must not share a fingerprint")
	}
}

// TestPaddingInvariance: UNUSED slots are a search artefact; any padding of
// the same program canonicalises identically.
func TestPaddingInvariance(t *testing.T) {
	p := x64.MustParse("movq rdi, rax\naddq rsi, rax")
	lo := live64(x64.RAX)
	base := Canonicalize(p, lo)
	for _, n := range []int{3, 8, 50} {
		padded := Canonicalize(p.PadTo(n), lo)
		if padded.FP != base.FP {
			t.Fatalf("PadTo(%d) changed the fingerprint", n)
		}
		if padded.Prog.String() != base.Prog.String() {
			t.Fatalf("PadTo(%d) changed the canonical program", n)
		}
	}
}

// TestPinnedRegisters checks the semantics-preserving pins: implicit
// operands and CL shift counts stay put under canonicalisation.
func TestPinnedRegisters(t *testing.T) {
	p := x64.MustParse("movq rdi, rax\nmulq rsi")
	pins := PinnedGPRs(p)
	for _, r := range []x64.Reg{x64.RAX, x64.RDX, x64.RSP} {
		if !pins.Has(r) {
			t.Errorf("mulq program must pin %v", x64.GPRName(r, 8))
		}
	}
	f := Canonicalize(p, live64(x64.RAX))
	// rax and rdx must map to themselves in the canonical program.
	if got := f.Prog.Insts[0].Opd[1].Reg; got != x64.RAX {
		t.Errorf("pinned rax renamed to %v", x64.GPRName(got, 8))
	}

	s := x64.MustParse("movq rdi, rax\nshlq cl, rax")
	if !PinnedGPRs(s).Has(x64.RCX) {
		t.Error("CL shift count must pin rcx")
	}
	fs := Canonicalize(s, live64(x64.RAX))
	if got := fs.Prog.Insts[1].Opd[0].Reg; got != x64.RCX {
		t.Errorf("cl count renamed to %v", x64.GPRName(got, 1))
	}
	if err := fs.Prog.Validate(); err != nil {
		t.Errorf("canonical shift program invalid: %v", err)
	}
}

// TestToFromCanonRoundTrip carries a rewrite into canonical space and back,
// and checks RenameOK refuses a rewrite whose pins the form does not fix.
func TestToFromCanonRoundTrip(t *testing.T) {
	target := x64.MustParse("movq rsi, rbx\naddq rdi, rbx")
	f := Canonicalize(target, live64(x64.RBX))
	rewrite := x64.MustParse("leaq (rsi,rdi,1), rbx")
	can, ok := f.ToCanon(rewrite)
	if !ok {
		t.Fatal("plain rewrite must survive ToCanon")
	}
	back, ok := f.FromCanon(can)
	if !ok {
		t.Fatal("FromCanon must invert ToCanon")
	}
	if back.String() != rewrite.Packed().String() {
		t.Fatalf("round trip:\n%s\nwant\n%s", back, rewrite)
	}

	// A rewrite introducing an implicit-operand instruction the target never
	// pinned cannot be carried across register spaces when the bijection
	// moves those registers.
	mul := x64.MustParse("movq rsi, rax\nmulq rdi\nmovq rax, rbx")
	if !RenameOK(mul, &f.toCanon) {
		if _, ok := f.ToCanon(mul); ok {
			t.Fatal("ToCanon accepted a pin-violating rewrite")
		}
	}
}

// TestCanonicalProgramValid: canonical programs of valid inputs stay valid
// (renaming never produces an RSP index or a non-CL shift count).
func TestCanonicalProgramValid(t *testing.T) {
	srcs := []string{
		"movq rdi, rax\naddq rsi, rax",
		"movq (rdi,rsi,4), rax",
		"shlq cl, rdi\nmovq rdi, rax",
		"cmpq rsi, rdi\njle .L0\nmovq rsi, rdi\n.L0:\nmovq rdi, rax",
	}
	for _, src := range srcs {
		f := Canonicalize(x64.MustParse(src), live64(x64.RAX))
		if err := f.Prog.Validate(); err != nil {
			t.Errorf("canonical form of %q invalid: %v\n%s", src, err, f.Prog)
		}
	}
}

// randomProgram builds a small random straight-line program (plus an
// optional forward jump) over a register subset, with immediates, memory
// operands and implicit-operand instructions all represented.
func randomProgram(rng *rand.Rand) *x64.Program {
	regs := []x64.Reg{x64.RAX, x64.RCX, x64.RDX, x64.RBX, x64.RSI, x64.RDI, x64.R8, x64.R13}
	reg := func() x64.Operand { return x64.R64(regs[rng.Intn(len(regs))]) }
	n := 1 + rng.Intn(6)
	p := &x64.Program{}
	for i := 0; i < n; i++ {
		switch rng.Intn(7) {
		case 0:
			p.Insts = append(p.Insts, x64.MakeInst(x64.ADD, reg(), reg()))
		case 1:
			p.Insts = append(p.Insts, x64.MakeInst(x64.MOV, reg(), reg()))
		case 2:
			p.Insts = append(p.Insts, x64.MakeInst(x64.XOR,
				x64.Imm(int64(rng.Intn(3)*17), 8), reg()))
		case 3:
			p.Insts = append(p.Insts, x64.MakeInst(x64.MOV,
				x64.Mem(x64.RSP, -8*int32(1+rng.Intn(3)), 8), reg()))
		case 4:
			p.Insts = append(p.Insts, x64.MakeInst(x64.MUL, reg()))
		case 5:
			p.Insts = append(p.Insts, x64.MakeInst(x64.SHL,
				x64.R8L(x64.RCX), reg()))
		case 6:
			p.Insts = append(p.Insts, x64.MakeInst(x64.SUB, reg(), reg()))
		}
	}
	if rng.Intn(3) == 0 { // forward jump over the tail
		lbl := int32(rng.Intn(4)) // arbitrary id; canon renumbers
		jmp := x64.MakeCCInst(x64.Jcc, x64.CondLE, x64.LabelRef(lbl))
		p.Insts = append(p.Insts[:0:0], append([]x64.Inst{jmp}, p.Insts...)...)
		p.Insts = append(p.Insts, x64.MakeInst(x64.LABEL, x64.LabelRef(lbl)))
	}
	return p
}

// randomRename builds a random bijection fixing p's pinned registers, and
// the corresponding live-out mapping.
func randomRename(rng *rand.Rand, p *x64.Program) [x64.NumGPR]x64.Reg {
	var perm [x64.NumGPR]x64.Reg
	pinned := PinnedGPRs(p)
	var free []x64.Reg
	for r := x64.Reg(0); r < x64.NumGPR; r++ {
		if pinned.Has(r) {
			perm[r] = r
		} else {
			free = append(free, r)
		}
	}
	shuffled := append([]x64.Reg(nil), free...)
	rng.Shuffle(len(shuffled), func(i, j int) {
		shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
	})
	for i, r := range free {
		perm[r] = shuffled[i]
	}
	return perm
}

var xmmIdent = func() (id [x64.NumXMM]x64.Reg) {
	for r := x64.Reg(0); r < x64.NumXMM; r++ {
		id[r] = r
	}
	return
}()

// FuzzCanonFingerprint asserts canon(p) == canon(rename(p)) for random
// programs and random semantics-preserving renamings.
func FuzzCanonFingerprint(f *testing.F) {
	for seed := int64(0); seed < 8; seed++ {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		rng := rand.New(rand.NewSource(seed))
		p := randomProgram(rng)
		if p.Validate() != nil {
			t.Skip() // randomProgram can emit backward labels; not canon's concern
		}
		perm := randomRename(rng, p)
		lo := live64(x64.RAX)
		renamedLive := verify.LiveOut{}
		for _, lr := range lo.GPRs {
			lr.Reg = perm[lr.Reg]
			renamedLive.GPRs = append(renamedLive.GPRs, lr)
		}
		q := renameProgram(p.Packed(), &perm, &xmmIdent)

		fp := Canonicalize(p, lo)
		fq := Canonicalize(q, renamedLive)
		if fp.FP != fq.FP {
			t.Fatalf("canon not renaming-invariant (seed %d):\n%s\nlive %v\nvs renamed\n%s\nlive %v\ncanon:\n%s\nvs\n%s",
				seed, p, lo.GPRs, q, renamedLive.GPRs, fp.Prog, fq.Prog)
		}
		if fp.Prog.String() != fq.Prog.String() {
			t.Fatalf("canonical programs differ under renaming (seed %d)", seed)
		}
		if err := fp.Prog.Validate(); err != nil {
			t.Fatalf("invalid canonical program (seed %d): %v", seed, err)
		}
	})
}
