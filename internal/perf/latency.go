// Package perf implements the paper's static performance model: perf(R;T) =
// H(T) - H(R), where H sums a fixed average latency per instruction
// (Equation 13). The table approximates published instruction latencies for
// the Nehalem/Opteron generation the paper measured on; only relative
// magnitudes matter for search quality.
package perf

import "repro/internal/x64"

// Latency returns the unitless average latency charged for one instruction.
// Pseudo-ops are free; memory operands add a fixed access surcharge.
func Latency(in x64.Inst) float64 { return LatencyOf(&in) }

// LatencyOf is Latency without the by-value instruction copy, for hot
// per-slot callers (the compiled pipeline re-prices a slot on every patch).
func LatencyOf(in *x64.Inst) float64 {
	base := opLatency(in.Op)
	if base == 0 {
		return 0
	}
	mem := 0.0
	for i := uint8(0); i < in.N; i++ {
		if in.Opd[i].Kind == x64.KindMem {
			mem += memSurcharge
		}
	}
	return base + mem
}

// memSurcharge is the extra cost charged per memory operand (an L1 hit).
const memSurcharge = 2.0

func opLatency(op x64.Opcode) float64 {
	switch op {
	case x64.UNUSED, x64.LABEL, x64.RET:
		return 0

	case x64.MOV, x64.MOVABS, x64.MOVZX, x64.MOVSX, x64.LEA,
		x64.MOVAPS, x64.MOVD, x64.MOVQX:
		return 1
	case x64.XCHG:
		return 2
	case x64.PUSH, x64.POP:
		return 3 // implicit stack access

	case x64.ADD, x64.ADC, x64.SUB, x64.SBB, x64.CMP, x64.TEST,
		x64.NEG, x64.INC, x64.DEC, x64.AND, x64.OR, x64.XOR, x64.NOT:
		return 1
	case x64.IMUL, x64.IMUL3:
		return 3
	case x64.IMUL1, x64.MUL:
		return 4 // widening multiply writes two registers
	case x64.DIV, x64.IDIV:
		return 25

	case x64.SHL, x64.SHR, x64.SAR, x64.ROL, x64.ROR:
		return 1
	case x64.SHLD, x64.SHRD:
		return 3

	case x64.POPCNT:
		return 3
	case x64.BSF, x64.BSR:
		return 3
	case x64.BSWAP:
		return 1
	case x64.BT:
		return 1

	case x64.SETcc:
		return 1
	case x64.CMOVcc:
		return 2
	case x64.JMP:
		return 1
	case x64.Jcc:
		return 2 // branches risk misprediction; discourage slightly

	case x64.MOVUPS:
		return 2
	case x64.SHUFPS, x64.PSHUFD:
		return 1
	case x64.PADDW, x64.PADDD, x64.PADDQ, x64.PSUBW, x64.PSUBD,
		x64.PAND, x64.POR, x64.PXOR:
		return 1
	case x64.PMULLW, x64.PMULLD:
		return 3
	case x64.PSLLD, x64.PSRLD, x64.PSLLQ, x64.PSRLQ:
		return 1
	}
	return 1
}

// H is the paper's static cost of a whole program: the sum of its
// instruction latencies (Equation 13).
func H(p *x64.Program) float64 {
	total := 0.0
	for _, in := range p.Insts {
		total += Latency(in)
	}
	return total
}
