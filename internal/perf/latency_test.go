package perf

import (
	"testing"

	"repro/internal/x64"
)

func TestPseudoOpsAreFree(t *testing.T) {
	for _, in := range []x64.Inst{
		x64.Unused(),
		x64.MakeInst(x64.LABEL, x64.LabelRef(0)),
		x64.MakeInst(x64.RET),
	} {
		if got := Latency(in); got != 0 {
			t.Errorf("Latency(%v) = %v, want 0", in, got)
		}
	}
}

func TestEveryRealOpcodeHasPositiveLatency(t *testing.T) {
	for op := x64.Opcode(x64.MOV); op < x64.NumOpcodes; op++ {
		if got := opLatency(op); got <= 0 {
			t.Errorf("opLatency(%v) = %v, want > 0", op, got)
		}
	}
}

func TestMemorySurcharge(t *testing.T) {
	regForm := x64.MakeInst(x64.ADD, x64.R64(x64.RAX), x64.R64(x64.RBX))
	memForm := x64.MakeInst(x64.ADD, x64.Mem(x64.RDI, 0, 8), x64.R64(x64.RBX))
	if Latency(memForm) <= Latency(regForm) {
		t.Errorf("memory form (%v) must cost more than register form (%v)",
			Latency(memForm), Latency(regForm))
	}
}

func TestRelativeMagnitudes(t *testing.T) {
	// The orderings the search depends on: mov < imul < div; the widening
	// multiply above the truncating one; popcnt above plain ALU.
	mov := opLatency(x64.MOV)
	imul := opLatency(x64.IMUL)
	mul := opLatency(x64.MUL)
	div := opLatency(x64.DIV)
	add := opLatency(x64.ADD)
	if !(mov <= add && add < imul && imul <= mul && mul < div) {
		t.Errorf("latency ordering broken: mov=%v add=%v imul=%v mul=%v div=%v",
			mov, add, imul, mul, div)
	}
}

func TestHSumsProgram(t *testing.T) {
	p := x64.MustParse(`
  movq rdi, rax
  addq rsi, rax
`)
	want := Latency(p.Insts[0]) + Latency(p.Insts[1])
	if got := H(p); got != want {
		t.Errorf("H = %v, want %v", got, want)
	}
	// UNUSED padding never changes H (essential: deleting instructions
	// must strictly reduce the perf term).
	if got := H(p.PadTo(50)); got != want {
		t.Errorf("H over padded program = %v, want %v", got, want)
	}
}

func TestHMonotoneUnderDeletion(t *testing.T) {
	p := x64.MustParse(`
  movq rdi, rax
  imulq rsi, rax
  addq rdx, rax
`)
	full := H(p)
	q := p.Clone()
	q.Insts[1] = x64.Unused()
	if H(q) >= full {
		t.Errorf("deleting an instruction must lower H: %v -> %v", full, H(q))
	}
}
