package verify

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/bv"
	"repro/internal/emu"
	"repro/internal/testgen"
	"repro/internal/x64"
)

func liveRAX() LiveOut {
	return LiveOut{GPRs: []testgen.LiveReg{{Reg: x64.RAX, Width: 8}}}
}

func TestEqualIdenticalPrograms(t *testing.T) {
	p := x64.MustParse("movq rdi, rax\naddq rsi, rax")
	res := Equivalent(context.Background(), p, p, liveRAX(), DefaultConfig)
	if res.Verdict != Equal {
		t.Fatalf("identical programs: %v (%s)", res.Verdict, res.Reason)
	}
}

func TestEqualSemanticRewrites(t *testing.T) {
	cases := []struct{ name, a, b string }{
		{"add-lea", "movq rdi, rax\naddq rsi, rax", "leaq (rdi,rsi), rax"},
		{"xor-zero", "movq 0, rax", "xorq rax, rax"},
		{"p01-and", // x & (x-1) two ways
			"movq rdi, rax\nsubq 1, rax\nandq rdi, rax",
			"leaq -1(rdi), rax\nandq rdi, rax"},
		{"shl-add", "movq rdi, rax\naddq rax, rax", "movq rdi, rax\nshlq 1, rax"},
		{"sub-self", "movq rdi, rax\nsubq rdi, rax", "movl 0, eax"},
		{"neg-chain", "movq rdi, rax\nnegq rax", "movq 0, rax\nsubq rdi, rax"},
		{"commuted-mul", "movq rdi, rax\nmulq rsi", "movq rsi, rax\nmulq rdi"},
		{"cmov-vs-branch",
			"cmpq rsi, rdi\nmovq rsi, rax\ncmovaq rdi, rax",
			"movq rsi, rax\ncmpq rsi, rdi\njbe .L1\nmovq rdi, rax\n.L1"},
		{"movzx-and", "movzbq dil, rax", "movq rdi, rax\nandq 0xff, rax"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			a, b := x64.MustParse(c.a), x64.MustParse(c.b)
			res := Equivalent(context.Background(), a, b, liveRAX(), DefaultConfig)
			if res.Verdict != Equal {
				t.Fatalf("verdict %v (%s), want equal", res.Verdict, res.Reason)
			}
		})
	}
}

func TestNotEqualWithCounterexample(t *testing.T) {
	a := x64.MustParse("movq rdi, rax\naddq rsi, rax")
	b := x64.MustParse("movq rdi, rax\nsubq rsi, rax")
	res := Equivalent(context.Background(), a, b, liveRAX(), DefaultConfig)
	if res.Verdict != NotEqual {
		t.Fatalf("verdict %v, want not-equal", res.Verdict)
	}
	if res.Cex == nil {
		t.Fatal("no counterexample")
	}
	// The counterexample must actually distinguish the programs in the
	// emulator (this is the testcase-refinement path of §4.1).
	if !cexDistinguishes(t, a, b, res.Cex, liveRAX()) {
		t.Fatalf("counterexample does not distinguish: %+v", res.Cex)
	}
}

// cexDistinguishes runs both programs on the counterexample state and
// compares live outputs concretely.
func cexDistinguishes(t *testing.T, a, b *x64.Program, cex *Counterexample, live LiveOut) bool {
	t.Helper()
	s := &emu.Snapshot{Regs: cex.Regs, Xmm: cex.Xmm, Flags: cex.Flags,
		RegDef: 0xffff, XmmDef: 0xffff, FlagsDef: x64.AllFlags}
	m := emu.New()
	outA := make([]uint64, len(live.GPRs))
	outB := make([]uint64, len(live.GPRs))
	m.LoadSnapshot(s)
	m.Run(a)
	for i, lr := range live.GPRs {
		outA[i] = m.RegValue(lr.Reg, lr.Width)
	}
	m.LoadSnapshot(s)
	m.Run(b)
	for i, lr := range live.GPRs {
		outB[i] = m.RegValue(lr.Reg, lr.Width)
	}
	for i := range outA {
		if outA[i] != outB[i] {
			return true
		}
	}
	return false
}

func TestDeadCodeIgnored(t *testing.T) {
	a := x64.MustParse("movq rdi, rax\nmovq 123, rcx\nmovq rcx, rdx")
	b := x64.MustParse("movq rdi, rax")
	res := Equivalent(context.Background(), a, b, liveRAX(), DefaultConfig)
	if res.Verdict != Equal {
		t.Fatalf("dead code must not affect live-out equality: %v", res.Verdict)
	}
	// But with rcx live, they differ.
	live := LiveOut{GPRs: []testgen.LiveReg{{Reg: x64.RCX, Width: 8}}}
	res = Equivalent(context.Background(), a, b, live, DefaultConfig)
	if res.Verdict != NotEqual {
		t.Fatalf("rcx difference missed: %v", res.Verdict)
	}
}

func TestMemoryEquivalence(t *testing.T) {
	// Store then load roundtrip vs direct register move.
	a := x64.MustParse(`
  movq rdi, -8(rsp)
  movq -8(rsp), rax
`)
	b := x64.MustParse("movq rdi, rax")
	res := Equivalent(context.Background(), a, b, liveRAX(), DefaultConfig)
	if res.Verdict != Equal {
		t.Fatalf("stack roundtrip: %v (%s)", res.Verdict, res.Reason)
	}
}

func TestMemoryAliasingRespected(t *testing.T) {
	// Reading two different addresses must not be assumed equal: rax =
	// [rdi] vs rax = [rsi] differ unless rdi == rsi.
	a := x64.MustParse("movq (rdi), rax")
	b := x64.MustParse("movq (rsi), rax")
	res := Equivalent(context.Background(), a, b, liveRAX(), DefaultConfig)
	if res.Verdict != NotEqual {
		t.Fatalf("aliasing: %v, want not-equal", res.Verdict)
	}
}

func TestLiveMemoryCompared(t *testing.T) {
	a := x64.MustParse("movl 7, (rdi)")
	b := x64.MustParse("movl 8, (rdi)")
	live := LiveOut{Mem: []MemRange{{Base: x64.RDI, Disp: 0, Len: 4}}}
	res := Equivalent(context.Background(), a, b, live, DefaultConfig)
	if res.Verdict != NotEqual {
		t.Fatalf("live memory difference missed: %v", res.Verdict)
	}
	c := x64.MustParse("movl 3, (rdi)\nmovl 7, (rdi)")
	res = Equivalent(context.Background(), a, c, live, DefaultConfig)
	if res.Verdict != Equal {
		t.Fatalf("overwritten store: %v (%s)", res.Verdict, res.Reason)
	}
}

func TestStackScratchNotLive(t *testing.T) {
	// -O0 style stack traffic vs none: equal when only rax is live.
	a := x64.MustParse(`
  movq rdi, -8(rsp)
  movq rsi, -16(rsp)
  movq -8(rsp), rax
  addq -16(rsp), rax
`)
	b := x64.MustParse("leaq (rdi,rsi), rax")
	res := Equivalent(context.Background(), a, b, liveRAX(), DefaultConfig)
	if res.Verdict != Equal {
		t.Fatalf("stack scratch: %v (%s)", res.Verdict, res.Reason)
	}
}

func TestUnsupportedDiv(t *testing.T) {
	a := x64.MustParse("divq rsi")
	res := Equivalent(context.Background(), a, a, liveRAX(), DefaultConfig)
	if res.Verdict != Unsupported {
		t.Fatalf("div: %v, want unsupported", res.Verdict)
	}
}

func TestFlagsLiveOut(t *testing.T) {
	a := x64.MustParse("cmpq rsi, rdi")
	b := x64.MustParse("cmpq rdi, rsi")
	live := LiveOut{Flags: x64.ZF}
	if res := Equivalent(context.Background(), a, b, live, DefaultConfig); res.Verdict != Equal {
		t.Fatalf("ZF symmetric compare: %v", res.Verdict)
	}
	live = LiveOut{Flags: x64.CF}
	if res := Equivalent(context.Background(), a, b, live, DefaultConfig); res.Verdict != NotEqual {
		t.Fatalf("CF asymmetric compare: %v", res.Verdict)
	}
}

// TestSymbolicMatchesEmulator is the fidelity keystone: random straight-line
// programs run in the emulator must produce exactly the values the symbolic
// translation predicts under concrete evaluation.
func TestSymbolicMatchesEmulator(t *testing.T) {
	rng := rand.New(rand.NewSource(321))
	ops := []string{
		"addq rsi, rax", "subq rdi, rbx", "adcq rdx, rcx", "sbbq 7, rax",
		"imulq rsi, rax", "imull esi, eax", "mull esi",
		"andq rsi, rax", "orl edi, edx", "xorb dil, al", "notq rcx",
		"negl ebx", "incq rax", "decw cx",
		"shlq 5, rax", "shrq cl, rbx", "sarl 3, edx", "rolq 9, rax",
		"rorw 3, dx", "shldq 7, rsi, rax", "shrdq 11, rsi, rax",
		"popcntq rsi, rax", "bsfq rsi, rax", "bsrl esi, eax",
		"bswapq rax", "btq rsi, rax",
		"cmpq rsi, rdi", "testl eax, ebx",
		"sete al", "setb bl", "setg cl", "setoq", // setoq invalid; filtered below
		"cmoveq rsi, rax", "cmovll esi, eax", "cmovaq rdi, rbx",
		"movzbl sil, eax", "movsbq dil, rax", "movswl cx, edx", "movslq esi, rax",
		"movq rsi, rax", "movl 123456, ebx", "movabsq 0x123456789abcdef, rcx",
		"leaq 8(rdi,rsi,4), rax", "xchgq rax, rbx",
	}
	var pool []x64.Inst
	for _, src := range ops {
		p, err := x64.Parse(src)
		if err != nil {
			continue
		}
		pool = append(pool, p.Insts[0])
	}
	if len(pool) < 40 {
		t.Fatalf("instruction pool too small: %d", len(pool))
	}

	for iter := 0; iter < 200; iter++ {
		n := 1 + rng.Intn(8)
		prog := &x64.Program{}
		for i := 0; i < n; i++ {
			prog.Insts = append(prog.Insts, pool[rng.Intn(len(pool))])
		}

		// Concrete inputs.
		var snap emu.Snapshot
		snap.RegDef = 0xffff
		snap.XmmDef = 0xffff
		snap.FlagsDef = x64.AllFlags
		vars := map[string]uint64{}
		for r := x64.Reg(0); r < x64.NumGPR; r++ {
			v := rng.Uint64()
			snap.Regs[r] = v
			vars[x64.GPRName(r, 8)] = v
		}
		if rng.Intn(2) == 0 {
			snap.Flags = x64.FlagSet(rng.Intn(32))
		}
		for f := x64.Flag(0); f < x64.NumFlags; f++ {
			if snap.Flags.Has(f) {
				vars[f.String()] = 1
			} else {
				vars[f.String()] = 0
			}
		}

		// Emulator run.
		m := emu.New()
		m.LoadSnapshot(&snap)
		m.Run(prog)

		// Symbolic run + concrete evaluation. Exact multiplies keep the
		// comparison exact (no UF hashing).
		b := bv.NewBuilder()
		st := newSymState(b, Config{Exact64Mul: true})
		st.Exec(prog)
		if st.unsupported != "" {
			continue
		}
		usesWideMul := false
		for _, in := range prog.Insts {
			if (in.Op == x64.IMUL1 || in.Op == x64.MUL || in.Op == x64.IMUL ||
				in.Op == x64.IMUL3) && in.Opd[0].Width == 8 {
				usesWideMul = true
			}
		}
		if usesWideMul {
			continue // 64-bit high halves stay uninterpreted; skip
		}
		env := &bv.Env{Vars: vars}
		for r := x64.Reg(0); r < x64.NumGPR; r++ {
			got := bv.Eval(st.regs[r], env)
			if got != m.Regs[r] {
				t.Fatalf("iter %d: reg %s: symbolic %#x, emulator %#x\nprogram:\n%s",
					iter, x64.GPRName(r, 8), got, m.Regs[r], prog)
			}
		}
		for f := x64.Flag(0); f < x64.NumFlags; f++ {
			got := bv.Eval(st.flags[f], env)
			want := uint64(0)
			if m.Flags.Has(f) {
				want = 1
			}
			// Flags the program leaves undefined-in-input and untouched
			// still agree because both sides read the same input vars.
			if got != want {
				t.Fatalf("iter %d: flag %v: symbolic %d, emulator %d\nprogram:\n%s",
					iter, f, got, want, prog)
			}
		}
	}
}

func TestMontgomeryRewritesAgreeOnTestInputs(t *testing.T) {
	// Full SAT equivalence of the two Figure 1 kernels requires exact
	// 128-bit multipliers (documented limitation); here the validator must
	// at least not produce a *spurious* proof of difference that survives
	// concrete re-checking.
	gcc := x64.MustParse(`
.set c0 0xffffffff
.set c1 0x100000000
  movq rsi, r9
  mov ecx, ecx
  shrq 32, rsi
  andl c0, r9d
  movq rcx, rax
  mov edx, edx
  imulq r9, rax
  imulq rdx, r9
  imulq rsi, rdx
  imulq rsi, rcx
  addq rdx, rax
  jae .L2
  movabsq c1, rdx
  addq rdx, rcx
.L2
  movq rax, rsi
  movq rax, rdx
  shrq 32, rsi
  salq 32, rdx
  addq rsi, rcx
  addq r9, rdx
  adcq 0, rcx
  addq r8, rdx
  adcq 0, rcx
  addq rdi, rdx
  adcq 0, rcx
  movq rcx, r8
  movq rdx, rdi
`)
	stoke := x64.MustParse(`
  shlq 32, rcx
  mov edx, edx
  xorq rdx, rcx
  movq rcx, rax
  mulq rsi
  addq r8, rdi
  adcq 0, rdx
  addq rdi, rax
  adcq 0, rdx
  movq rdx, r8
  movq rax, rdi
`)
	live := LiveOut{GPRs: []testgen.LiveReg{{Reg: x64.R8, Width: 8}, {Reg: x64.RDI, Width: 8}}}
	cfg := DefaultConfig
	cfg.Budget = 20000
	res := Equivalent(context.Background(), gcc, stoke, live, cfg)
	switch res.Verdict {
	case Equal:
		t.Log("proved equal (unexpected but welcome)")
	case Unknown:
		t.Logf("budget exhausted after %d conflicts (expected: different multiplier structures)", res.Conflicts)
	case NotEqual:
		// Must be a UF artefact, not a real difference.
		if cexDistinguishes(t, gcc, stoke,
			res.Cex, live) {
			t.Fatal("validator found a real difference between the Figure 1 kernels")
		}
		t.Log("spurious UF counterexample, correctly detected by concrete re-check")
	}
}

func TestVerifierCatchesSubtleBug(t *testing.T) {
	// adc vs add in a carry chain: differs only when the first addition
	// carries — random testing often misses it; the validator must not.
	a := x64.MustParse(`
  addq rsi, rax
  adcq 0, rdx
`)
	b := x64.MustParse(`
  addq rsi, rax
  addq 0, rdx
`)
	live := LiveOut{GPRs: []testgen.LiveReg{{Reg: x64.RAX, Width: 8}, {Reg: x64.RDX, Width: 8}}}
	res := Equivalent(context.Background(), a, b, live, DefaultConfig)
	if res.Verdict != NotEqual {
		t.Fatalf("carry-chain bug missed: %v", res.Verdict)
	}
	if res.Cex == nil || !cexDistinguishes(t, a, b, res.Cex, live) {
		t.Fatal("counterexample must concretely distinguish the carry behaviour")
	}
}

func TestForwardBranchGuards(t *testing.T) {
	// A branchy absolute value against the branch-free version.
	branchy := x64.MustParse(`
  movq rdi, rax
  testq rax, rax
  jns .L1
  negq rax
.L1
`)
	branchFree := x64.MustParse(`
  movq rdi, rax
  movq rdi, rcx
  sarq 63, rcx
  xorq rcx, rax
  subq rcx, rax
`)
	res := Equivalent(context.Background(), branchy, branchFree, liveRAX(), DefaultConfig)
	if res.Verdict != Equal {
		var detail string
		if res.Cex != nil {
			detail = fmt.Sprintf(" cex rdi=%#x", res.Cex.Regs[x64.RDI])
		}
		t.Fatalf("abs equivalence: %v (%s)%s", res.Verdict, res.Reason, detail)
	}
}
