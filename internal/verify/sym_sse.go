package verify

import (
	"fmt"

	"repro/internal/bv"
	"repro/internal/x64"
)

// xmmRead returns both 64-bit halves of an XMM register or 128-bit memory
// operand.
func (s *symState) xmmRead(o x64.Operand) (lo, hi *bv.Term) {
	if o.Kind == x64.KindXmm {
		return s.xmm[o.Reg][0], s.xmm[o.Reg][1]
	}
	addr := s.effAddr(o)
	return s.memRead(addr, 8), s.memRead(s.b.Add(addr, s.b.Const(64, 8)), 8)
}

// lane32 extracts 32-bit lane i (0..3) from a half pair.
func lane32(b *bv.Builder, lo, hi *bv.Term, i int) *bv.Term {
	if i < 2 {
		return b.Extract(lo, uint8(32*i), 32)
	}
	return b.Extract(hi, uint8(32*(i-2)), 32)
}

// lanes32Join packs four 32-bit lanes into half pair.
func lanes32Join(b *bv.Builder, l [4]*bv.Term) (lo, hi *bv.Term) {
	return b.Concat(l[1], l[0]), b.Concat(l[3], l[2])
}

// lane16 extracts 16-bit lane i (0..7).
func lane16(b *bv.Builder, lo, hi *bv.Term, i int) *bv.Term {
	if i < 4 {
		return b.Extract(lo, uint8(16*i), 16)
	}
	return b.Extract(hi, uint8(16*(i-4)), 16)
}

func lanes16Join(b *bv.Builder, l [8]*bv.Term) (lo, hi *bv.Term) {
	lo = b.Concat(b.Concat(l[3], l[2]), b.Concat(l[1], l[0]))
	hi = b.Concat(b.Concat(l[7], l[6]), b.Concat(l[5], l[4]))
	return lo, hi
}

// execSSE translates the fixed-point SSE subset.
func (s *symState) execSSE(in *x64.Inst) {
	b := s.b
	switch in.Op {
	case x64.MOVD, x64.MOVQX:
		w := uint8(4)
		if in.Op == x64.MOVQX {
			w = 8
		}
		src, dst := in.Opd[0], in.Opd[1]
		switch {
		case dst.Kind == x64.KindXmm && src.Kind != x64.KindXmm:
			var v *bv.Term
			if src.Kind == x64.KindReg {
				v = s.regRead(src.Reg, w)
			} else {
				v = s.memRead(s.effAddr(src), w)
			}
			s.xmmWrite(dst.Reg, b.Zext(v, 64), b.Const(64, 0))
		case dst.Kind != x64.KindXmm && src.Kind == x64.KindXmm:
			v := b.Extract(s.xmm[src.Reg][0], 0, w8(w))
			if dst.Kind == x64.KindReg {
				s.regWrite(dst.Reg, 8, b.Zext(v, 64))
			} else {
				s.memWriteBytes(s.effAddr(dst), w, v)
			}
		default:
			s.xmmWrite(dst.Reg, b.Extract(s.xmm[src.Reg][0], 0, 64), b.Const(64, 0))
		}

	case x64.MOVUPS, x64.MOVAPS:
		src, dst := in.Opd[0], in.Opd[1]
		lo, hi := s.xmmRead(src)
		if dst.Kind == x64.KindXmm {
			s.xmmWrite(dst.Reg, lo, hi)
		} else {
			addr := s.effAddr(dst)
			s.memWriteBytes(addr, 8, lo)
			s.memWriteBytes(b.Add(addr, b.Const(64, 8)), 8, hi)
		}

	case x64.SHUFPS:
		imm := uint8(in.Opd[0].Imm)
		sLo, sHi := s.xmmRead(in.Opd[1])
		dLo, dHi := s.xmmRead(in.Opd[2])
		var out [4]*bv.Term
		out[0] = lane32(b, dLo, dHi, int(imm>>0&3))
		out[1] = lane32(b, dLo, dHi, int(imm>>2&3))
		out[2] = lane32(b, sLo, sHi, int(imm>>4&3))
		out[3] = lane32(b, sLo, sHi, int(imm>>6&3))
		lo, hi := lanes32Join(b, out)
		s.xmmWrite(in.Opd[2].Reg, lo, hi)

	case x64.PSHUFD:
		imm := uint8(in.Opd[0].Imm)
		sLo, sHi := s.xmmRead(in.Opd[1])
		var out [4]*bv.Term
		for i := 0; i < 4; i++ {
			out[i] = lane32(b, sLo, sHi, int(imm>>(2*i)&3))
		}
		lo, hi := lanes32Join(b, out)
		s.xmmWrite(in.Opd[2].Reg, lo, hi)

	case x64.PADDW, x64.PSUBW, x64.PMULLW:
		aLo, aHi := s.xmmRead(in.Opd[0])
		bLo, bHi := s.xmmRead(in.Opd[1])
		var out [8]*bv.Term
		for i := 0; i < 8; i++ {
			x := lane16(b, bLo, bHi, i)
			y := lane16(b, aLo, aHi, i)
			switch in.Op {
			case x64.PADDW:
				out[i] = b.Add(x, y)
			case x64.PSUBW:
				out[i] = b.Sub(x, y)
			case x64.PMULLW:
				out[i] = b.Mul(x, y)
			}
		}
		lo, hi := lanes16Join(b, out)
		s.xmmWrite(in.Opd[1].Reg, lo, hi)

	case x64.PADDD, x64.PSUBD, x64.PMULLD:
		aLo, aHi := s.xmmRead(in.Opd[0])
		bLo, bHi := s.xmmRead(in.Opd[1])
		var out [4]*bv.Term
		for i := 0; i < 4; i++ {
			x := lane32(b, bLo, bHi, i)
			y := lane32(b, aLo, aHi, i)
			switch in.Op {
			case x64.PADDD:
				out[i] = b.Add(x, y)
			case x64.PSUBD:
				out[i] = b.Sub(x, y)
			case x64.PMULLD:
				out[i] = b.Mul(x, y)
			}
		}
		lo, hi := lanes32Join(b, out)
		s.xmmWrite(in.Opd[1].Reg, lo, hi)

	case x64.PADDQ:
		aLo, aHi := s.xmmRead(in.Opd[0])
		bLo, bHi := s.xmmRead(in.Opd[1])
		s.xmmWrite(in.Opd[1].Reg, b.Add(bLo, aLo), b.Add(bHi, aHi))

	case x64.PAND, x64.POR, x64.PXOR:
		aLo, aHi := s.xmmRead(in.Opd[0])
		bLo, bHi := s.xmmRead(in.Opd[1])
		var lo, hi *bv.Term
		switch in.Op {
		case x64.PAND:
			lo, hi = b.And(bLo, aLo), b.And(bHi, aHi)
		case x64.POR:
			lo, hi = b.Or(bLo, aLo), b.Or(bHi, aHi)
		case x64.PXOR:
			lo, hi = b.Xor(bLo, aLo), b.Xor(bHi, aHi)
		}
		s.xmmWrite(in.Opd[1].Reg, lo, hi)

	case x64.PSLLD, x64.PSRLD:
		c := uint64(in.Opd[0].Imm)
		lo, hi := s.xmmRead(in.Opd[1])
		var out [4]*bv.Term
		for i := 0; i < 4; i++ {
			l := lane32(b, lo, hi, i)
			if c >= 32 {
				out[i] = b.Const(32, 0)
			} else if in.Op == x64.PSLLD {
				out[i] = b.Shl(l, b.Const(32, c))
			} else {
				out[i] = b.Lshr(l, b.Const(32, c))
			}
		}
		nlo, nhi := lanes32Join(b, out)
		s.xmmWrite(in.Opd[1].Reg, nlo, nhi)

	case x64.PSLLQ, x64.PSRLQ:
		c := uint64(in.Opd[0].Imm)
		lo, hi := s.xmmRead(in.Opd[1])
		shiftQ := func(v *bv.Term) *bv.Term {
			if c >= 64 {
				return b.Const(64, 0)
			}
			if in.Op == x64.PSLLQ {
				return b.Shl(v, b.Const(64, c))
			}
			return b.Lshr(v, b.Const(64, c))
		}
		s.xmmWrite(in.Opd[1].Reg, shiftQ(lo), shiftQ(hi))

	default:
		s.unsupported = fmt.Sprintf("opcode %v", in.Op)
	}
}
