// Package verify implements the sound validator of §5.2: loop-free x86
// sequences are translated to bit-vector formulae, and a SAT query asks
// whether any initial machine state leads the target and rewrite to produce
// different side effects on the live outputs. An UNSAT answer proves
// equivalence; a SAT answer yields a counterexample that becomes a new
// testcase (§4.1); a budget exhaustion yields Unknown.
//
// Following the paper, wide multiplications are treated as uninterpreted
// functions made consistent by Ackermann expansion, stack addresses reduce
// to rsp-relative terms, and initial memory is a byte-level uninterpreted
// function of the address — which yields exactly the paper's aliasing
// constraint addr1 = addr2 ⇒ val1 = val2.
package verify

import (
	"fmt"

	"repro/internal/bv"
	"repro/internal/x64"
)

// symState is the symbolic machine state during translation.
type symState struct {
	b     *bv.Builder
	regs  [x64.NumGPR]*bv.Term    // 64-bit
	xmm   [x64.NumXMM][2]*bv.Term // lo, hi halves
	flags [x64.NumFlags]*bv.Term  // 1-bit each

	writes []memWrite // program-order byte writes

	// guard is the 1-bit execution condition of the current location.
	guard *bv.Term
	// pending accumulates inbound edge guards per label.
	pending map[int32]*bv.Term

	// cfg controls multiplication handling.
	cfg Config

	// unsupported is set when an instruction has no symbolic model.
	unsupported string
}

type memWrite struct {
	addr  *bv.Term // 64-bit byte address
	val   *bv.Term // 8-bit
	guard *bv.Term // 1-bit
}

// Config controls the validator.
type Config struct {
	// Exact64Mul encodes the low half of 64-bit products exactly
	// (expensive); the high half always stays uninterpreted. When false,
	// both halves of 64-bit products are uninterpreted, as in §5.2.
	Exact64Mul bool

	// Budget bounds SAT conflicts per query; exhausted budgets yield
	// Unknown. Zero means no bound.
	Budget int64

	// MaxTerms bounds the size of the bit-vector formula before
	// bit-blasting; memory-heavy kernels whose write-log resolution blows
	// past it yield Unknown instead of minutes of encoding time. Zero
	// takes the default.
	MaxTerms int
}

// DefaultConfig mirrors the paper's choices with budgets suited to
// interactive use.
var DefaultConfig = Config{Exact64Mul: false, Budget: 400000, MaxTerms: 400000}

// newSymState builds the shared initial state over input variables.
func newSymState(b *bv.Builder, cfg Config) *symState {
	s := &symState{b: b, cfg: cfg, guard: b.True(), pending: map[int32]*bv.Term{}}
	for r := 0; r < x64.NumGPR; r++ {
		s.regs[r] = b.Var(64, x64.GPRName(x64.Reg(r), 8))
	}
	for r := 0; r < x64.NumXMM; r++ {
		s.xmm[r][0] = b.Var(64, fmt.Sprintf("xmm%d_lo", r))
		s.xmm[r][1] = b.Var(64, fmt.Sprintf("xmm%d_hi", r))
	}
	for f := x64.Flag(0); f < x64.NumFlags; f++ {
		s.flags[f] = b.Var(1, f.String())
	}
	return s
}

func w8(w uint8) uint8 { return w * 8 } // operand width in bits

// regRead returns a register view at width w bytes.
func (s *symState) regRead(r x64.Reg, w uint8) *bv.Term {
	return s.b.Extract(s.regs[r], 0, w8(w))
}

// regWrite commits a guarded write of a w-byte view with x86 merge
// semantics (32-bit writes zero-extend, narrower writes merge).
func (s *symState) regWrite(r x64.Reg, w uint8, v *bv.Term) {
	b := s.b
	var full *bv.Term
	switch w {
	case 8:
		full = v
	case 4:
		full = b.Zext(v, 64)
	default:
		hi := b.Extract(s.regs[r], w8(w), 64-w8(w))
		full = b.Concat(hi, v)
	}
	s.regs[r] = b.Ite(s.guard, full, s.regs[r])
}

// xmmWrite commits a guarded write of both halves.
func (s *symState) xmmWrite(r x64.Reg, lo, hi *bv.Term) {
	s.xmm[r][0] = s.b.Ite(s.guard, lo, s.xmm[r][0])
	s.xmm[r][1] = s.b.Ite(s.guard, hi, s.xmm[r][1])
}

// setFlag commits a guarded flag write.
func (s *symState) setFlag(f x64.Flag, v *bv.Term) {
	s.flags[f] = s.b.Ite(s.guard, v, s.flags[f])
}

// setFlagUnder commits a flag write under an extra condition (used by
// shifts, whose flags survive a zero count).
func (s *symState) setFlagUnder(cond *bv.Term, f x64.Flag, v *bv.Term) {
	s.flags[f] = s.b.Ite(s.b.And(s.guard, cond), v, s.flags[f])
}

// effAddr computes the 64-bit effective address of a memory operand.
func (s *symState) effAddr(o x64.Operand) *bv.Term {
	b := s.b
	var a *bv.Term
	if o.Base != x64.NoReg {
		a = s.regs[o.Base]
	}
	if o.Index != x64.NoReg {
		idx := s.regs[o.Index]
		if o.Scale > 1 {
			sc := uint64(0)
			switch o.Scale {
			case 2:
				sc = 1
			case 4:
				sc = 2
			case 8:
				sc = 3
			}
			idx = b.Shl(idx, b.Const(64, sc))
		}
		if a == nil {
			a = idx
		} else {
			a = b.Add(a, idx)
		}
	}
	disp := b.Const(64, uint64(int64(o.Disp)))
	if a == nil {
		return disp
	}
	if o.Disp != 0 {
		a = b.Add(a, disp)
	}
	return a
}

// memReadByte resolves one byte of memory: the most recent prior guarded
// write to that address, else the initial memory function mem0(addr).
func (s *symState) memReadByte(addr *bv.Term) *bv.Term {
	b := s.b
	val := b.App("mem0", 8, addr)
	for _, w := range s.writes {
		hit := b.And(w.guard, b.Eq(addr, w.addr))
		val = b.Ite(hit, w.val, val)
	}
	return val
}

// memRead loads w little-endian bytes as one term.
func (s *symState) memRead(addr *bv.Term, w uint8) *bv.Term {
	b := s.b
	out := s.memReadByte(addr)
	for i := uint8(1); i < w; i++ {
		byt := s.memReadByte(b.Add(addr, b.Const(64, uint64(i))))
		out = b.Concat(byt, out)
	}
	return out
}

// memWriteBytes appends guarded byte writes for a w-byte store.
func (s *symState) memWriteBytes(addr *bv.Term, w uint8, v *bv.Term) {
	b := s.b
	for i := uint8(0); i < w; i++ {
		s.writes = append(s.writes, memWrite{
			addr:  b.Add(addr, b.Const(64, uint64(i))),
			val:   b.Extract(v, w8(i), 8),
			guard: s.guard,
		})
	}
}

// readOp evaluates a GPR/imm/mem operand at its width in bits.
func (s *symState) readOp(o x64.Operand) *bv.Term {
	switch o.Kind {
	case x64.KindReg:
		return s.regRead(o.Reg, o.Width)
	case x64.KindImm:
		return s.b.Const(w8(o.Width), uint64(o.Imm))
	case x64.KindMem:
		return s.memRead(s.effAddr(o), o.Width)
	}
	panic("verify: readOp on " + o.Kind.String())
}

// writeOp commits a guarded write to a GPR or memory operand.
func (s *symState) writeOp(o x64.Operand, v *bv.Term) {
	switch o.Kind {
	case x64.KindReg:
		s.regWrite(o.Reg, o.Width, v)
	case x64.KindMem:
		s.memWriteBytes(s.effAddr(o), o.Width, v)
	default:
		panic("verify: writeOp on " + o.Kind.String())
	}
}

// parity returns the even-parity flag of the low byte of v.
func (s *symState) parity(v *bv.Term) *bv.Term {
	b := s.b
	p := b.Extract(v, 0, 1)
	for i := uint8(1); i < 8; i++ {
		p = b.Xor(p, b.Extract(v, i, 1))
	}
	return b.Not(p)
}

// msb extracts the sign bit of a w8-bit value.
func (s *symState) msb(v *bv.Term) *bv.Term {
	return s.b.Extract(v, v.Width-1, 1)
}

// szp builds the SF/ZF/PF triple for a result.
func (s *symState) szpFlags(r *bv.Term) (sf, zf, pf *bv.Term) {
	b := s.b
	return s.msb(r), b.Eq(r, b.Const(r.Width, 0)), s.parity(r)
}

// condTerm evaluates a condition code over the current symbolic flags.
func (s *symState) condTerm(cc x64.Cond) *bv.Term {
	b := s.b
	cf, pf, zf, sf, of := s.flags[x64.FlagCF], s.flags[x64.FlagPF],
		s.flags[x64.FlagZF], s.flags[x64.FlagSF], s.flags[x64.FlagOF]
	switch cc {
	case x64.CondE:
		return zf
	case x64.CondNE:
		return b.Not(zf)
	case x64.CondA:
		return b.And(b.Not(cf), b.Not(zf))
	case x64.CondAE:
		return b.Not(cf)
	case x64.CondB:
		return cf
	case x64.CondBE:
		return b.Or(cf, zf)
	case x64.CondG:
		return b.And(b.Not(zf), b.Eq(sf, of))
	case x64.CondGE:
		return b.Eq(sf, of)
	case x64.CondL:
		return b.Ne(sf, of)
	case x64.CondLE:
		return b.Or(zf, b.Ne(sf, of))
	case x64.CondS:
		return sf
	case x64.CondNS:
		return b.Not(sf)
	case x64.CondO:
		return of
	case x64.CondNO:
		return b.Not(of)
	case x64.CondP:
		return pf
	case x64.CondNP:
		return b.Not(pf)
	}
	return b.False()
}

// Exec translates one whole program into the symbolic state, mirroring the
// emulator's deterministic machine model instruction for instruction.
func (s *symState) Exec(p *x64.Program) {
	for _, in := range p.Insts {
		if s.unsupported != "" {
			return
		}
		switch in.Op {
		case x64.UNUSED:
			continue
		case x64.LABEL:
			id := in.Opd[0].Label
			if pend, ok := s.pending[id]; ok {
				s.guard = s.b.Or(s.guard, pend)
				delete(s.pending, id)
			}
			continue
		case x64.RET:
			s.guard = s.b.False()
			continue
		case x64.JMP:
			id := in.Opd[0].Label
			s.mergePending(id, s.guard)
			s.guard = s.b.False()
			continue
		case x64.Jcc:
			cond := s.condTerm(in.CC)
			id := in.Opd[0].Label
			s.mergePending(id, s.b.And(s.guard, cond))
			s.guard = s.b.And(s.guard, s.b.Not(cond))
			continue
		}
		s.exec(&in)
	}
}

func (s *symState) mergePending(id int32, g *bv.Term) {
	if prev, ok := s.pending[id]; ok {
		s.pending[id] = s.b.Or(prev, g)
	} else {
		s.pending[id] = g
	}
}

// exec translates one data instruction.
func (s *symState) exec(in *x64.Inst) {
	b := s.b
	switch in.Op {
	case x64.MOV, x64.MOVABS, x64.MOVZX:
		v := s.readOp(in.Opd[0])
		if in.Op == x64.MOVZX {
			v = b.Zext(v, w8(in.Opd[1].Width))
		}
		s.writeOp(in.Opd[1], v)

	case x64.MOVSX:
		v := b.Sext(s.readOp(in.Opd[0]), w8(in.Opd[1].Width))
		s.writeOp(in.Opd[1], v)

	case x64.LEA:
		a := s.effAddr(in.Opd[0])
		s.writeOp(in.Opd[1], b.Extract(a, 0, w8(in.Opd[1].Width)))

	case x64.XCHG:
		a := s.readOp(in.Opd[0])
		c := s.readOp(in.Opd[1])
		s.writeOp(in.Opd[0], c)
		s.writeOp(in.Opd[1], a)

	case x64.PUSH:
		v := s.readOp(in.Opd[0])
		if in.Opd[0].Kind == x64.KindImm {
			v = b.Const(64, uint64(in.Opd[0].Imm))
		}
		nsp := b.Sub(s.regs[x64.RSP], b.Const(64, 8))
		s.memWriteBytes(nsp, 8, b.Zext(v, 64))
		s.regWrite(x64.RSP, 8, nsp)

	case x64.POP:
		v := s.memRead(s.regs[x64.RSP], 8)
		s.regWrite(x64.RSP, 8, b.Add(s.regs[x64.RSP], b.Const(64, 8)))
		s.writeOp(in.Opd[0], v)

	case x64.CMOVcc:
		cond := s.condTerm(in.CC)
		src := s.readOp(in.Opd[0])
		dst := s.readOp(in.Opd[1])
		s.writeOp(in.Opd[1], b.Ite(cond, src, dst))

	case x64.ADD, x64.ADC:
		a := s.readOp(in.Opd[1])
		c := s.readOp(in.Opd[0])
		var carry *bv.Term
		if in.Op == x64.ADC {
			carry = s.flags[x64.FlagCF]
		} else {
			carry = b.False()
		}
		s.addCommon(in.Opd[1], a, c, carry)

	case x64.SUB, x64.SBB, x64.CMP:
		a := s.readOp(in.Opd[1])
		c := s.readOp(in.Opd[0])
		if in.Op == x64.CMP && in.Opd[1].Kind == x64.KindImm {
			// cmp imm, imm is ill-formed; operand order fixed by sigs.
			panic("verify: cmp with immediate destination")
		}
		var borrow *bv.Term
		if in.Op == x64.SBB {
			borrow = s.flags[x64.FlagCF]
		} else {
			borrow = b.False()
		}
		t := b.Sub(a, c)
		r := b.Sub(t, b.Zext(borrow, a.Width))
		cf := b.Or(b.Ult(a, c), b.Ult(t, b.Zext(borrow, a.Width)))
		of := s.msb(b.And(b.Xor(a, c), b.Xor(a, r)))
		sf, zf, pf := s.szpFlags(r)
		s.setFlag(x64.FlagCF, cf)
		s.setFlag(x64.FlagOF, of)
		s.setFlag(x64.FlagSF, sf)
		s.setFlag(x64.FlagZF, zf)
		s.setFlag(x64.FlagPF, pf)
		if in.Op != x64.CMP {
			s.writeOp(in.Opd[1], r)
		}

	case x64.TEST:
		a := s.readOp(in.Opd[1])
		c := s.readOp(in.Opd[0])
		s.logicFlags(b.And(a, c))

	case x64.NEG:
		a := s.readOp(in.Opd[0])
		r := b.Neg(a)
		s.setFlag(x64.FlagCF, b.Ne(a, b.Const(a.Width, 0)))
		s.setFlag(x64.FlagOF, b.Eq(a, b.Const(a.Width, 1<<(a.Width-1))))
		sf, zf, pf := s.szpFlags(r)
		s.setFlag(x64.FlagSF, sf)
		s.setFlag(x64.FlagZF, zf)
		s.setFlag(x64.FlagPF, pf)
		s.writeOp(in.Opd[0], r)

	case x64.INC, x64.DEC:
		a := s.readOp(in.Opd[0])
		one := b.Const(a.Width, 1)
		var r, of *bv.Term
		if in.Op == x64.INC {
			r = b.Add(a, one)
			of = b.Eq(r, b.Const(a.Width, 1<<(a.Width-1)))
		} else {
			r = b.Sub(a, one)
			of = b.Eq(a, b.Const(a.Width, 1<<(a.Width-1)))
		}
		sf, zf, pf := s.szpFlags(r)
		s.setFlag(x64.FlagOF, of)
		s.setFlag(x64.FlagSF, sf)
		s.setFlag(x64.FlagZF, zf)
		s.setFlag(x64.FlagPF, pf)
		s.writeOp(in.Opd[0], r)

	case x64.AND, x64.OR, x64.XOR:
		a := s.readOp(in.Opd[1])
		c := s.readOp(in.Opd[0])
		var r *bv.Term
		switch in.Op {
		case x64.AND:
			r = b.And(a, c)
		case x64.OR:
			r = b.Or(a, c)
		case x64.XOR:
			r = b.Xor(a, c)
		}
		s.logicFlags(r)
		s.writeOp(in.Opd[1], r)

	case x64.NOT:
		s.writeOp(in.Opd[0], b.Not(s.readOp(in.Opd[0])))

	case x64.IMUL, x64.IMUL3:
		s.execIMul(in)

	case x64.IMUL1, x64.MUL:
		s.execWideningMul(in)

	case x64.DIV, x64.IDIV:
		// Divide faults make div semantics input-dependent in ways the
		// paper also punts on; div is not proposable and absent from the
		// benchmark kernels.
		s.unsupported = "div/idiv"

	case x64.SHL, x64.SHR, x64.SAR, x64.ROL, x64.ROR:
		s.execShift(in)

	case x64.SHLD, x64.SHRD:
		s.execDoubleShift(in)

	case x64.POPCNT:
		a := s.readOp(in.Opd[0])
		w := w8(in.Opd[1].Width)
		sum := b.Const(w, 0)
		for i := uint8(0); i < a.Width; i++ {
			sum = b.Add(sum, b.Zext(b.Extract(a, i, 1), w))
		}
		s.setFlag(x64.FlagCF, b.False())
		s.setFlag(x64.FlagOF, b.False())
		s.setFlag(x64.FlagSF, b.False())
		s.setFlag(x64.FlagPF, b.False())
		s.setFlag(x64.FlagZF, b.Eq(a, b.Const(a.Width, 0)))
		s.writeOp(in.Opd[1], sum)

	case x64.BSF, x64.BSR:
		a := s.readOp(in.Opd[0])
		w := w8(in.Opd[1].Width)
		// Deterministic model: zero input gives zero result.
		r := b.Const(w, 0)
		if in.Op == x64.BSF {
			for i := int(a.Width) - 1; i >= 0; i-- {
				r = b.Ite(b.Eq(b.Extract(a, uint8(i), 1), b.Const(1, 1)),
					b.Const(w, uint64(i)), r)
			}
		} else {
			for i := 0; i < int(a.Width); i++ {
				r = b.Ite(b.Eq(b.Extract(a, uint8(i), 1), b.Const(1, 1)),
					b.Const(w, uint64(i)), r)
			}
		}
		s.setFlag(x64.FlagZF, b.Eq(a, b.Const(a.Width, 0)))
		s.setFlag(x64.FlagCF, b.False())
		s.setFlag(x64.FlagOF, b.False())
		s.setFlag(x64.FlagSF, b.False())
		s.setFlag(x64.FlagPF, b.False())
		s.writeOp(in.Opd[1], r)

	case x64.BSWAP:
		a := s.readOp(in.Opd[0])
		n := a.Width / 8
		// Byte 0 becomes the most significant byte.
		out := b.Extract(a, 0, 8)
		for i := uint8(1); i < n; i++ {
			out = b.Concat(out, b.Extract(a, i*8, 8))
		}
		s.writeOp(in.Opd[0], out)

	case x64.BT:
		a := s.readOp(in.Opd[1])
		idx := s.readOp(in.Opd[0])
		if in.Opd[0].Kind == x64.KindImm {
			idx = b.Const(a.Width, uint64(in.Opd[0].Imm))
		} else if idx.Width != a.Width {
			idx = b.Zext(idx, a.Width)
		}
		idx = b.And(idx, b.Const(a.Width, uint64(a.Width-1)))
		bit := b.Extract(b.Lshr(a, idx), 0, 1)
		s.setFlag(x64.FlagCF, bit)

	case x64.SETcc:
		cond := s.condTerm(in.CC)
		s.writeOp(in.Opd[0], b.Zext(cond, 8))

	default:
		s.execSSE(in)
	}
}

// logicFlags commits the and/or/xor/test flag pattern.
func (s *symState) logicFlags(r *bv.Term) {
	b := s.b
	sf, zf, pf := s.szpFlags(r)
	s.setFlag(x64.FlagCF, b.False())
	s.setFlag(x64.FlagOF, b.False())
	s.setFlag(x64.FlagSF, sf)
	s.setFlag(x64.FlagZF, zf)
	s.setFlag(x64.FlagPF, pf)
}

// addCommon commits r = a + c + carry with full flag semantics.
func (s *symState) addCommon(dst x64.Operand, a, c, carry *bv.Term) {
	b := s.b
	cw := b.Zext(carry, a.Width)
	t := b.Add(a, c)
	r := b.Add(t, cw)
	cf := b.Or(b.Ult(t, a), b.Ult(r, t))
	of := s.msb(b.And(b.Xor(a, r), b.Xor(c, r)))
	sf, zf, pf := s.szpFlags(r)
	s.setFlag(x64.FlagCF, cf)
	s.setFlag(x64.FlagOF, of)
	s.setFlag(x64.FlagSF, sf)
	s.setFlag(x64.FlagZF, zf)
	s.setFlag(x64.FlagPF, pf)
	s.writeOp(dst, r)
}

// product computes the full signed or unsigned product of two w-bit values
// as (hi, lo) terms, using exact arithmetic up to 32 bits and uninterpreted
// functions at 64 bits (§5.2).
func (s *symState) product(a, c *bv.Term, signed bool) (hi, lo *bv.Term) {
	b := s.b
	w := a.Width
	if w <= 32 {
		var fa, fc *bv.Term
		if signed {
			fa, fc = b.Sext(a, 2*w), b.Sext(c, 2*w)
		} else {
			fa, fc = b.Zext(a, 2*w), b.Zext(c, 2*w)
		}
		full := b.Mul(fa, fc)
		return b.Extract(full, w, w), b.Extract(full, 0, w)
	}
	// 64-bit: normalise argument order (multiplication is commutative) so
	// mulq rsi,rax and imulq rax,rsi share one application.
	x, y := a, c
	if x.ID > y.ID {
		x, y = y, x
	}
	if s.cfg.Exact64Mul {
		lo = b.Mul(x, y)
	} else {
		lo = b.App("mullo64", 64, x, y)
	}
	name := "mulhi_u64"
	if signed {
		name = "mulhi_s64"
	}
	hi = b.App(name, 64, x, y)
	return hi, lo
}

// execIMul handles the truncating signed multiplies (2- and 3-operand).
func (s *symState) execIMul(in *x64.Inst) {
	b := s.b
	var a, c *bv.Term
	var dst x64.Operand
	if in.Op == x64.IMUL {
		a, c = s.readOp(in.Opd[1]), s.readOp(in.Opd[0])
		dst = in.Opd[1]
	} else {
		a = s.readOp(in.Opd[1])
		c = b.Const(a.Width, uint64(in.Opd[0].Imm))
		dst = in.Opd[2]
	}
	hi, lo := s.product(a, c, true)
	// Overflow: the high half must be the sign extension of the low half.
	signFill := b.Ite(s.msb(lo), b.Const(a.Width, ^uint64(0)), b.Const(a.Width, 0))
	over := b.Ne(hi, signFill)
	sf, zf, pf := s.szpFlags(lo)
	s.setFlag(x64.FlagCF, over)
	s.setFlag(x64.FlagOF, over)
	s.setFlag(x64.FlagSF, sf)
	s.setFlag(x64.FlagZF, zf)
	s.setFlag(x64.FlagPF, pf)
	s.writeOp(dst, lo)
}

// execWideningMul handles mul/imul one-operand forms writing RDX:RAX.
func (s *symState) execWideningMul(in *x64.Inst) {
	b := s.b
	w := in.Opd[0].Width
	src := s.readOp(in.Opd[0])
	a := s.regRead(x64.RAX, w)
	signed := in.Op == x64.IMUL1
	hi, lo := s.product(a, src, signed)
	var over *bv.Term
	if signed {
		signFill := b.Ite(s.msb(lo), b.Const(lo.Width, ^uint64(0)), b.Const(lo.Width, 0))
		over = b.Ne(hi, signFill)
	} else {
		over = b.Ne(hi, b.Const(hi.Width, 0))
	}
	s.regWrite(x64.RAX, w, lo)
	s.regWrite(x64.RDX, w, hi)
	sf, zf, pf := s.szpFlags(lo)
	s.setFlag(x64.FlagCF, over)
	s.setFlag(x64.FlagOF, over)
	s.setFlag(x64.FlagSF, sf)
	s.setFlag(x64.FlagZF, zf)
	s.setFlag(x64.FlagPF, pf)
}

// execShift handles shl/shr/sar/rol/ror with immediate or CL counts,
// leaving flags untouched when the masked count is zero.
func (s *symState) execShift(in *x64.Inst) {
	b := s.b
	w := w8(in.Opd[1].Width)
	a := s.readOp(in.Opd[1])

	var count *bv.Term
	if in.Opd[0].Kind == x64.KindImm {
		count = b.Const(w, uint64(in.Opd[0].Imm))
	} else {
		count = b.Zext(s.regRead(x64.RCX, 1), w)
	}
	countMask := uint64(31)
	if w == 64 {
		countMask = 63
	}
	count = b.And(count, b.Const(w, countMask))
	nonzero := b.Ne(count, b.Const(w, 0))
	one := b.Const(w, 1)

	var r, cf, of *bv.Term
	switch in.Op {
	case x64.SHL:
		r = b.Shl(a, count)
		// CF = bit (w - count) of a = lsb of a >> (w - count).
		cf = b.Extract(b.Lshr(a, b.Sub(b.Const(w, uint64(w)), count)), 0, 1)
		of = b.Xor(s.msb(r), cf)
	case x64.SHR:
		r = b.Lshr(a, count)
		cf = b.Extract(b.Lshr(a, b.Sub(count, one)), 0, 1)
		of = s.msb(a)
	case x64.SAR:
		r = b.Ashr(a, count)
		cf = b.Extract(b.Ashr(a, b.Sub(count, one)), 0, 1)
		of = b.False()
	case x64.ROL, x64.ROR:
		// Rotation distance is count mod width (widths are powers of two).
		wc := b.Const(w, uint64(w))
		c := b.And(count, b.Const(w, uint64(w-1)))
		var hiPart, loPart *bv.Term
		if in.Op == x64.ROL {
			hiPart = b.Shl(a, c)
			loPart = b.Lshr(a, b.Sub(wc, c))
		} else {
			hiPart = b.Lshr(a, c)
			loPart = b.Shl(a, b.Sub(wc, c))
		}
		rot := b.Or(hiPart, loPart)
		// A zero count must keep a unchanged (w - 0 = w shifts to zero in
		// our shift semantics, which matches).
		r = b.Ite(b.Eq(c, b.Const(w, 0)), a, rot)
		if in.Op == x64.ROL {
			cf = b.Extract(r, 0, 1)
			of = b.Xor(s.msb(r), cf)
		} else {
			cf = s.msb(r)
			of = b.Xor(s.msb(r), b.Extract(r, r.Width-2, 1))
		}
		s.setFlagUnder(nonzero, x64.FlagCF, cf)
		s.setFlagUnder(nonzero, x64.FlagOF, of)
		s.writeOp(in.Opd[1], b.Ite(nonzero, r, a))
		return
	}
	sf, zf, pf := s.szpFlags(r)
	s.setFlagUnder(nonzero, x64.FlagCF, cf)
	s.setFlagUnder(nonzero, x64.FlagOF, of)
	s.setFlagUnder(nonzero, x64.FlagSF, sf)
	s.setFlagUnder(nonzero, x64.FlagZF, zf)
	s.setFlagUnder(nonzero, x64.FlagPF, pf)
	s.writeOp(in.Opd[1], b.Ite(nonzero, r, a))
}

// execDoubleShift handles shld/shrd with immediate counts.
func (s *symState) execDoubleShift(in *x64.Inst) {
	b := s.b
	w := w8(in.Opd[2].Width)
	countMask := uint64(31)
	if w == 64 {
		countMask = 63
	}
	cnt := uint64(in.Opd[0].Imm) & countMask
	src := s.readOp(in.Opd[1])
	dst := s.readOp(in.Opd[2])
	if cnt == 0 {
		return
	}
	cTerm := b.Const(w, cnt)
	wTerm := b.Const(w, uint64(w))
	var r, cf *bv.Term
	if in.Op == x64.SHLD {
		r = b.Or(b.Shl(dst, cTerm), b.Lshr(src, b.Sub(wTerm, cTerm)))
		cf = b.Extract(b.Lshr(dst, b.Sub(wTerm, cTerm)), 0, 1)
	} else {
		r = b.Or(b.Lshr(dst, cTerm), b.Shl(src, b.Sub(wTerm, cTerm)))
		cf = b.Extract(b.Lshr(dst, b.Const(w, cnt-1)), 0, 1)
	}
	of := b.Xor(s.msb(r), s.msb(dst))
	sf, zf, pf := s.szpFlags(r)
	s.setFlag(x64.FlagCF, cf)
	s.setFlag(x64.FlagOF, of)
	s.setFlag(x64.FlagSF, sf)
	s.setFlag(x64.FlagZF, zf)
	s.setFlag(x64.FlagPF, pf)
	s.writeOp(in.Opd[2], r)
}
