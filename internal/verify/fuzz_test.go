package verify_test

// FuzzCexReplayVsVerify pins the soundness contract behind the
// counterexample-bank replay shortcut: a concrete divergence between two
// programs on a runnable machine state (exactly the evidence a replay kill
// rests on) must never coexist with a symbolic Equal verdict. The fuzzer
// decodes arbitrary byte strings into a program plus a patch script
// (testgen.DecodeFuzzCase), treats the decoded program as the target and
// its patched form as the candidate, derives both programs' live outputs
// concretely through testgen.FromInput, and — whenever the outputs differ —
// demands verify.Equivalent refuse Equal. Unknown and Unsupported are fine
// (budget, formula-size or coverage limits); Equal would mean a banked
// counterexample could refute a program the solver proves, i.e. the bank
// and the prover disagree about ground truth.

import (
	"context"
	"testing"

	"repro/internal/emu"
	"repro/internal/testgen"
	"repro/internal/verify"
	"repro/internal/x64"
)

func FuzzCexReplayVsVerify(f *testing.F) {
	for _, s := range testgen.SeedCorpus() {
		f.Add(s.Data)
	}
	live := testgen.LiveSet{GPRs: []testgen.LiveReg{
		{Reg: x64.RAX, Width: 8}, {Reg: x64.RCX, Width: 8},
		{Reg: x64.RDX, Width: 8}, {Reg: x64.RBX, Width: 8},
		{Reg: x64.RSI, Width: 8}, {Reg: x64.RDI, Width: 8},
	}}
	spec := testgen.Spec{LiveOut: live}
	f.Fuzz(func(t *testing.T, data []byte) {
		fc := testgen.DecodeFuzzCase(data)
		if len(fc.Edits) == 0 {
			return
		}
		target := fc.Prog
		cand := target.Clone()
		for _, e := range fc.Edits {
			if e.Swap {
				cand.Insts[e.Slot], cand.Insts[e.Other] = cand.Insts[e.Other], cand.Insts[e.Slot]
			} else {
				cand.Insts[e.Slot] = e.With
			}
		}

		// Derive both programs' live outputs on the same concrete state.
		// Either program faulting disqualifies the state as replay
		// evidence (replayCex drops such states for the same reason).
		m := emu.New()
		tcT, err := testgen.FromInput(m, target, spec, fc.Snap)
		if err != nil {
			return
		}
		tcC, err := testgen.FromInput(m, cand, spec, fc.Snap)
		if err != nil {
			return
		}
		diverged := false
		for i := range tcT.WantGPR {
			if tcT.WantGPR[i] != tcC.WantGPR[i] {
				diverged = true
				break
			}
		}
		if !diverged {
			return
		}

		vl := verify.LiveOut{GPRs: live.GPRs}
		res := verify.Equivalent(context.Background(), target, cand, vl,
			verify.Config{Budget: 50000})
		if res.Verdict == verify.Equal {
			t.Fatalf("concrete divergence but symbolic Equal (%s)\ntarget:\n%s\ncandidate:\n%s",
				res.Reason, target, cand)
		}
	})
}
