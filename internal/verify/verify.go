package verify

import (
	"context"
	"fmt"

	"repro/internal/bv"
	"repro/internal/sat"
	"repro/internal/testgen"
	"repro/internal/x64"
)

// Verdict is the outcome of an equivalence query.
type Verdict int

// Verdicts.
const (
	// Equal: proven equivalent on all inputs (UNSAT difference query).
	Equal Verdict = iota
	// NotEqual: a concrete counterexample distinguishes the programs
	// (modulo uninterpreted-function choices; the driver re-checks it
	// concretely before refining the testcase set).
	NotEqual
	// Unknown: the SAT budget was exhausted.
	Unknown
	// Unsupported: an instruction (div family) has no symbolic model.
	Unsupported
)

func (v Verdict) String() string {
	switch v {
	case Equal:
		return "equal"
	case NotEqual:
		return "not-equal"
	case Unknown:
		return "unknown"
	case Unsupported:
		return "unsupported"
	}
	return fmt.Sprintf("Verdict(%d)", int(v))
}

// MemRange names a live memory region as a (base register, displacement,
// length) triple — the §5.1 annotation style, e.g. 16 bytes at (rsi).
type MemRange struct {
	Base x64.Reg
	Disp int32
	Len  int32
}

// LiveOut declares the live outputs compared by the validator.
type LiveOut struct {
	GPRs  []testgen.LiveReg
	Xmms  []x64.Reg
	Flags x64.FlagSet
	Mem   []MemRange
}

// Counterexample is a distinguishing initial machine state extracted from a
// SAT model.
type Counterexample struct {
	Regs  [x64.NumGPR]uint64
	Xmm   [x64.NumXMM][2]uint64
	Flags x64.FlagSet
	// Mem maps byte addresses (as resolved by the model) to their initial
	// contents.
	Mem map[uint64]byte
}

// Result reports one equivalence query.
type Result struct {
	Verdict   Verdict
	Cex       *Counterexample
	Reason    string
	Conflicts int64
	Clauses   int
}

// Equivalent asks whether target and rewrite produce identical side effects
// on the live outputs for every initial machine state (Equation 7 / §5.2).
// The context cancels a running proof: the SAT search polls it and a
// cancelled query answers Unknown with reason "cancelled".
func Equivalent(ctx context.Context, target, rewrite *x64.Program, live LiveOut, cfg Config) Result {
	if ctx == nil {
		ctx = context.Background()
	}
	if ctx.Err() != nil {
		return Result{Verdict: Unknown, Reason: "cancelled"}
	}
	b := bv.NewBuilder()
	sT := newSymState(b, cfg)
	sT.Exec(target)
	sR := newSymState(b, cfg)
	sR.Exec(rewrite)
	if sT.unsupported != "" || sR.unsupported != "" {
		reason := sT.unsupported
		if reason == "" {
			reason = sR.unsupported
		}
		return Result{Verdict: Unsupported, Reason: reason}
	}

	// Build the difference disjunction over live outputs.
	diff := b.False()
	for _, lr := range live.GPRs {
		vT := b.Extract(sT.regs[lr.Reg], 0, w8(lr.Width))
		vR := b.Extract(sR.regs[lr.Reg], 0, w8(lr.Width))
		diff = b.Or(diff, b.Ne(vT, vR))
	}
	for _, xr := range live.Xmms {
		diff = b.Or(diff, b.Ne(sT.xmm[xr][0], sR.xmm[xr][0]))
		diff = b.Or(diff, b.Ne(sT.xmm[xr][1], sR.xmm[xr][1]))
	}
	for f := x64.Flag(0); f < x64.NumFlags; f++ {
		if live.Flags.Has(f) {
			diff = b.Or(diff, b.Ne(sT.flags[f], sR.flags[f]))
		}
	}
	// Live memory is addressed relative to the *input* value of the base
	// register (the §5.1 annotation), not its possibly-clobbered final
	// value — hence the fresh Var lookup, which hash-conses to the same
	// input term both programs started from.
	for _, mr := range live.Mem {
		for i := int32(0); i < mr.Len; i++ {
			addr := b.Add(b.Var(64, x64.GPRName(mr.Base, 8)),
				b.Const(64, uint64(int64(mr.Disp+i))))
			vT := finalByte(sT, addr)
			vR := finalByte(sR, addr)
			diff = b.Or(diff, b.Ne(vT, vR))
		}
	}

	// Fast path: structurally identical outputs fold the difference away.
	if v, ok := diff.IsConst(); ok {
		if v == 0 {
			return Result{Verdict: Equal, Reason: "structural"}
		}
		// Constant-true difference still needs a model for the CEX; fall
		// through to SAT with a trivial query.
	}

	// Formula-size guard: encoding time is the dominant cost on
	// memory-heavy kernels; past the cap the query answers Unknown.
	maxTerms := cfg.MaxTerms
	if maxTerms == 0 {
		maxTerms = DefaultConfig.MaxTerms
	}
	if b.NumTerms() > maxTerms {
		return Result{Verdict: Unknown,
			Reason: fmt.Sprintf("formula too large (%d terms)", b.NumTerms())}
	}

	s := sat.New()
	s.Budget = cfg.Budget
	s.Stop = func() bool { return ctx.Err() != nil }
	bl := bv.NewBlaster(s)
	bl.AssertTrue(diff)
	bl.AssertFunConsistency(b)
	clauses := s.NumClauses() // encoded problem size, before learned clauses

	st, model := s.SolveModel()
	res := Result{Conflicts: s.Conflicts(), Clauses: clauses}
	switch st {
	case sat.Unsat:
		res.Verdict = Equal
	case sat.Unknown:
		res.Verdict = Unknown
		if ctx.Err() != nil {
			res.Reason = "cancelled"
		} else {
			res.Reason = "conflict budget exhausted"
		}
	case sat.Sat:
		res.Verdict = NotEqual
		res.Cex = extractCex(b, bl, model)
	}
	return res
}

// finalByte reads the final value of one byte address from a finished
// symbolic state (all writes applied).
func finalByte(s *symState, addr *bv.Term) *bv.Term {
	return s.memReadByte(addr)
}

// extractCex reads the distinguishing initial state out of a SAT model.
func extractCex(b *bv.Builder, bl *bv.Blaster, model []bool) *Counterexample {
	cex := &Counterexample{Mem: map[uint64]byte{}}
	for r := x64.Reg(0); r < x64.NumGPR; r++ {
		if v, ok := bl.TryValueOf(b.Var(64, x64.GPRName(r, 8)), model); ok {
			cex.Regs[r] = v
		}
	}
	for r := 0; r < x64.NumXMM; r++ {
		if v, ok := bl.TryValueOf(b.Var(64, fmt.Sprintf("xmm%d_lo", r)), model); ok {
			cex.Xmm[r][0] = v
		}
		if v, ok := bl.TryValueOf(b.Var(64, fmt.Sprintf("xmm%d_hi", r)), model); ok {
			cex.Xmm[r][1] = v
		}
	}
	for f := x64.Flag(0); f < x64.NumFlags; f++ {
		if v, ok := bl.TryValueOf(b.Var(1, f.String()), model); ok && v == 1 {
			cex.Flags |= 1 << f
		}
	}
	// Initial memory: each mem0 application pins one byte at a concrete
	// model address.
	for _, app := range b.Apps["mem0"] {
		addr, ok1 := bl.TryValueOf(app.Args[0], model)
		val, ok2 := bl.TryValueOf(app, model)
		if ok1 && ok2 {
			cex.Mem[addr] = byte(val)
		}
	}
	return cex
}
