package stoke

import (
	"math/rand"
	"testing"

	"repro/internal/cost"
	"repro/internal/emu"
	"repro/internal/testgen"
	"repro/internal/verify"
	"repro/internal/x64"
)

// addKernel is a minimal two-input kernel: rax := rdi + rsi, with an -O0
// flavoured target.
func addKernel() Kernel {
	return Kernel{
		Name: "add",
		Target: x64.MustParse(`
  movq rdi, -8(rsp)
  movq rsi, -16(rsp)
  movq -8(rsp), rax
  addq -16(rsp), rax
`),
		Spec: testgen.Spec{
			BuildInput: func(rng *rand.Rand) *emu.Snapshot {
				a := testgen.NewArena(0x10000)
				a.AllocStack(256)
				a.SetReg(x64.RDI, rng.Uint64())
				a.SetReg(x64.RSI, rng.Uint64())
				return a.Snapshot()
			},
			LiveOut: testgen.LiveSet{GPRs: []testgen.LiveReg{{Reg: x64.RAX, Width: 8}}},
		},
		Pointers: x64.RegSet(0).With(x64.RSP),
	}
}

func TestRunEndToEnd(t *testing.T) {
	opts := DefaultOptions
	opts.Seed = 11
	opts.SynthChains = 2
	opts.OptChains = 2
	opts.SynthProposals = 60000
	opts.OptProposals = 60000
	opts.Ell = 12

	rep, err := Run(addKernel(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Rewrite == nil {
		t.Fatal("no rewrite")
	}
	if rep.Verdict == verify.NotEqual {
		t.Fatalf("final rewrite failed validation:\n%s", rep.Rewrite)
	}
	// The rewrite must be at least as fast as the stack-heavy target and
	// (given the tiny kernel) strictly shorter.
	if rep.Rewrite.InstCount() >= rep.Target.InstCount() {
		t.Errorf("rewrite has %d insts, target %d — no optimization found",
			rep.Rewrite.InstCount(), rep.Target.InstCount())
	}
	if rep.Speedup() < 1 {
		t.Errorf("speedup %.2f < 1", rep.Speedup())
	}
	t.Logf("add: %d -> %d insts, %.2fx, verdict %v, synthesis=%v",
		rep.Target.InstCount(), rep.Rewrite.InstCount(), rep.Speedup(),
		rep.Verdict, rep.SynthesisSucceeded)
	t.Logf("rewrite:\n%s", rep.Rewrite)
}

func TestRunIsDeterministic(t *testing.T) {
	opts := DefaultOptions
	opts.Seed = 13
	opts.SynthChains = 1
	opts.OptChains = 1
	opts.SynthProposals = 5000
	opts.OptProposals = 5000
	opts.Ell = 10

	a, err := Run(addKernel(), opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(addKernel(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if a.Rewrite.String() != b.Rewrite.String() {
		t.Fatalf("same seed, different rewrites:\n%s\nvs\n%s", a.Rewrite, b.Rewrite)
	}
}

// TestCexRefinement checks the §4.1 counterexample path: the validator's
// counterexample against a subtly wrong rewrite must convert into a
// testcase that concretely separates the programs.
func TestCexRefinement(t *testing.T) {
	k := addKernel()
	rng := rand.New(rand.NewSource(17))

	// A near-miss: rax = rdi + rsi works except when the low 16 bits of
	// rsi cause a borrow pattern (addw only adds the low word).
	wrong := x64.MustParse(`
  movq rdi, rax
  addw si, ax
`).PadTo(12)
	live := verify.LiveOut{GPRs: k.Spec.LiveOut.GPRs}
	res := verify.Equivalent(k.Target, wrong, live, verify.DefaultConfig)
	if res.Verdict != verify.NotEqual || res.Cex == nil {
		t.Fatalf("validator must refute the word-add: %v", res.Verdict)
	}
	m := emu.New()
	tc, genuine := cexTestcase(k, m, rng, res.Cex, k.Target, wrong)
	if !genuine {
		t.Fatal("counterexample testcase does not separate the programs")
	}
	f := cost.New([]testgen.Testcase{tc}, k.Spec.LiveOut, cost.Strict, 0)
	if f.Eval(wrong, cost.MaxBudget).Cost == 0 {
		t.Fatal("refined testcase scored the wrong rewrite at zero")
	}
	if f.Eval(k.Target, cost.MaxBudget).Cost != 0 {
		t.Fatal("refined testcase must accept the target itself")
	}
}

// TestRefinementDropsBuggyRewrite runs the whole pipeline on a kernel whose
// cheapest near-rewrites are buggy under rare inputs, checking the final
// rewrite never fails validation.
func TestRefinementDropsBuggyRewrite(t *testing.T) {
	opts := DefaultOptions
	opts.Seed = 23
	opts.SynthChains = 1
	opts.OptChains = 2
	opts.SynthProposals = 10000
	opts.OptProposals = 40000
	opts.Ell = 10

	rep, err := Run(addKernel(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verdict == verify.NotEqual {
		t.Fatalf("pipeline returned an unvalidated rewrite:\n%s", rep.Rewrite)
	}
	t.Logf("verdict %v after %d refinements", rep.Verdict, rep.Refinements)
}
