// Package stoke is the system driver of Figure 9: it wires together
// testcase generation, parallel synthesis and optimization chains, the 20%
// re-ranking window, and the validator-in-the-loop testcase refinement, and
// returns the best verified rewrite for a kernel.
package stoke

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"time"

	"repro/internal/cost"
	"repro/internal/emu"
	"repro/internal/mcmc"
	"repro/internal/pipeline"
	"repro/internal/testgen"
	"repro/internal/verify"
	"repro/internal/x64"
)

// Kernel describes one optimization target: the -O0 style input binary, the
// annotated driver that generates inputs for it, and its live outputs.
type Kernel struct {
	Name   string
	Target *x64.Program
	Spec   testgen.Spec

	// LiveMem names the live memory ranges for the validator (the
	// testcase layer discovers live memory dynamically; the symbolic layer
	// needs the annotation).
	LiveMem []verify.MemRange

	// Pointers lists registers that carry addresses; counterexample
	// register values never override them (a counterexample pointing rdi
	// into unmapped space is not a runnable testcase).
	Pointers x64.RegSet

	// SSE enables vector opcodes in the proposal distribution.
	SSE bool
}

// Options control the search. Zero values take defaults (DefaultOptions).
type Options struct {
	Seed int64

	// Chains and proposal budgets per phase. The paper ran 40 machines
	// for 30 minutes per phase; these defaults are laptop-scale.
	SynthChains    int
	OptChains      int
	SynthProposals int64
	OptProposals   int64

	Tests int // testcases per target (§5.1: 32)
	Ell   int // sequence length ℓ

	// SynthBeta is the synthesis temperature (Figure 11: 0.1 over the
	// Hamming cost scale). OptBeta runs colder: with the standard
	// difference-form Metropolis rule, β=1 keeps the chain near the
	// correct region at the perf-term cost scale (see DESIGN.md).
	SynthBeta float64
	OptBeta   float64

	// RestartAfter resets a wandering optimization chain to its best
	// correct program (extension; 0 disables).
	RestartAfter int64

	// MaxRefinements bounds validator-driven testcase refinement rounds.
	MaxRefinements int

	Verify verify.Config
}

// DefaultOptions are laptop-scale settings that finish a kernel in seconds.
var DefaultOptions = Options{
	SynthChains:    4,
	OptChains:      4,
	SynthProposals: 400000,
	OptProposals:   200000,
	Tests:          32,
	Ell:            24,
	SynthBeta:      0.1,
	OptBeta:        1.0,
	RestartAfter:   20000,
	MaxRefinements: 4,
	Verify:         verify.DefaultConfig,
}

func (o Options) withDefaults() Options {
	d := DefaultOptions
	if o.SynthChains == 0 {
		o.SynthChains = d.SynthChains
	}
	if o.OptChains == 0 {
		o.OptChains = d.OptChains
	}
	if o.SynthProposals == 0 {
		o.SynthProposals = d.SynthProposals
	}
	if o.OptProposals == 0 {
		o.OptProposals = d.OptProposals
	}
	if o.Tests == 0 {
		o.Tests = d.Tests
	}
	if o.Ell == 0 {
		o.Ell = d.Ell
	}
	if o.SynthBeta == 0 {
		o.SynthBeta = d.SynthBeta
	}
	if o.OptBeta == 0 {
		o.OptBeta = d.OptBeta
	}
	if o.RestartAfter == 0 {
		o.RestartAfter = d.RestartAfter
	}
	if o.MaxRefinements == 0 {
		o.MaxRefinements = d.MaxRefinements
	}
	if o.Verify.Budget == 0 {
		o.Verify = d.Verify
	}
	return o
}

// Report is the outcome of one kernel run.
type Report struct {
	Kernel  string
	Target  *x64.Program
	Rewrite *x64.Program // best correct rewrite (possibly the target itself)

	// SynthesisSucceeded reports whether any synthesis chain reached a
	// zero-cost rewrite from a random start (Figure 12's starred kernels
	// are the failures).
	SynthesisSucceeded bool

	// Verdict is the validator's word on the final rewrite.
	Verdict verify.Verdict

	// Cycle estimates under the pipeline model and the static model.
	TargetCycles, RewriteCycles float64

	SynthTime, OptTime, VerifyTime time.Duration

	// Refinements counts counterexample testcases folded back in.
	Refinements int

	Stats mcmc.Stats
	Tests int
}

// Speedup is the modelled speedup of the rewrite over the target.
func (r *Report) Speedup() float64 {
	if r.RewriteCycles == 0 {
		return 1
	}
	return r.TargetCycles / r.RewriteCycles
}

// Run executes the full STOKE pipeline on one kernel.
func Run(k Kernel, opts Options) (*Report, error) {
	opts = opts.withDefaults()
	rng := rand.New(rand.NewSource(opts.Seed))

	tests, err := testgen.Generate(k.Target, k.Spec, opts.Tests, rng)
	if err != nil {
		return nil, fmt.Errorf("stoke: %s: %w", k.Name, err)
	}

	rep := &Report{Kernel: k.Name, Target: k.Target, Tests: len(tests)}
	pools := mcmc.PoolsFor(k.Target, k.SSE)

	// --- Synthesis phase (§4.4): correctness only, random starts. ---
	start := time.Now()
	synthResults := runChains(opts.SynthChains, func(i int) mcmc.Result {
		params := mcmc.PaperParams
		params.Ell = opts.Ell
		params.Beta = opts.SynthBeta
		s := &mcmc.Sampler{
			Params: params,
			Pools:  pools,
			Cost:   cost.New(tests, k.Spec.LiveOut, cost.Improved, 0),
			Rng:    rand.New(rand.NewSource(opts.Seed + 1000 + int64(i))),
		}
		return s.Run(s.RandomProgram(), opts.SynthProposals)
	})
	rep.SynthTime = time.Since(start)

	// Candidate starting points for optimization: the target plus every
	// synthesized zero-cost rewrite.
	starts := []*x64.Program{k.Target}
	for _, r := range synthResults {
		rep.Stats.Proposals += r.Stats.Proposals
		rep.Stats.Accepts += r.Stats.Accepts
		rep.Stats.TestsEvaluated += r.Stats.TestsEvaluated
		if r.ZeroCost && r.BestCorrect != nil {
			rep.SynthesisSucceeded = true
			starts = append(starts, r.BestCorrect)
		}
	}

	// --- Optimization phase (§4.4) with validator-driven testcase
	// refinement (§4.1): run the chains, validate the fastest surviving
	// candidate, and on a genuine counterexample fold it into τ and run
	// the optimization again over the refined search space. ---
	live := verify.LiveOut{
		GPRs:  k.Spec.LiveOut.GPRs,
		Xmms:  k.Spec.LiveOut.Xmms,
		Flags: k.Spec.LiveOut.Flags,
		Mem:   k.LiveMem,
	}
	m := emu.New()
	chainSeed := opts.Seed + 2000
	var best *x64.Program
	verdict := verify.Equal

	for round := 0; ; round++ {
		start = time.Now()
		budget := opts.OptProposals
		if round > 0 {
			budget /= 2 // refinement rounds re-optimize with a lighter budget
		}
		optResults := runChains(opts.OptChains*len(starts), func(i int) mcmc.Result {
			params := mcmc.PaperParams
			params.Ell = opts.Ell
			params.Beta = opts.OptBeta
			s := &mcmc.Sampler{
				Params:       params,
				Pools:        pools,
				Cost:         cost.New(tests, k.Spec.LiveOut, cost.Improved, 1),
				Rng:          rand.New(rand.NewSource(chainSeed + int64(i))),
				RestartAfter: opts.RestartAfter,
			}
			return s.Run(starts[i%len(starts)], budget)
		})
		chainSeed += int64(opts.OptChains*len(starts)) + 7
		rep.OptTime += time.Since(start)

		var candidates []*x64.Program
		bestCost := 1e30
		for _, r := range optResults {
			rep.Stats.Proposals += r.Stats.Proposals
			rep.Stats.Accepts += r.Stats.Accepts
			rep.Stats.TestsEvaluated += r.Stats.TestsEvaluated
			if r.BestCorrect != nil {
				candidates = append(candidates, r.BestCorrect)
				if r.BestCorrectCost < bestCost {
					bestCost = r.BestCorrectCost
				}
			}
		}

		// Re-ranking (Figure 9, step 6) and validation: pick the fastest
		// candidate within 20% of the minimum cost that passes every
		// (possibly refined) testcase; genuine counterexamples shrink the
		// candidate pool without re-searching, and trigger a re-search
		// while refinement rounds remain.
		reSearch := false
		for {
			evalCost := cost.New(tests, k.Spec.LiveOut, cost.Improved, 1)
			best = nil
			bestCycles := 1e30
			for _, c := range candidates {
				res := evalCost.Eval(c, cost.MaxBudget)
				if res.EqCost != 0 || res.Cost > bestCost*1.2 {
					continue
				}
				if cy := pipeline.Cycles(c); cy < bestCycles {
					bestCycles = cy
					best = c
				}
			}
			if best == nil {
				// Nothing survives the refined testcases; the target is
				// correct by construction.
				best = k.Target.Clone()
				verdict = verify.Equal
				break
			}

			vStart := time.Now()
			res := verify.Equivalent(k.Target, best, live, opts.Verify)
			rep.VerifyTime += time.Since(vStart)
			verdict = res.Verdict
			if res.Verdict != verify.NotEqual {
				break
			}
			tc, genuine := cexTestcase(k, m, rng, res.Cex, k.Target, best)
			if !genuine {
				// Uninterpreted-function artefact: the counterexample does
				// not concretely distinguish the programs. The proof
				// attempt is inconclusive rather than refuting.
				verdict = verify.Unknown
				break
			}
			tests = append(tests, tc)
			rep.Refinements++
			if round < opts.MaxRefinements {
				reSearch = true
				break
			}
			// Out of search budget: keep filtering the existing pool
			// against the refined testcases.
		}
		if !reSearch {
			break
		}
	}

	rep.Verdict = verdict
	rep.Rewrite = best.Packed()
	rep.Tests = len(tests)
	rep.TargetCycles = pipeline.Cycles(k.Target)
	rep.RewriteCycles = pipeline.Cycles(rep.Rewrite)
	return rep, nil
}

// cexTestcase converts a counterexample into a testcase, reporting whether
// it concretely distinguishes target and rewrite.
func cexTestcase(k Kernel, m *emu.Machine, rng *rand.Rand, cex *verify.Counterexample,
	target, rewrite *x64.Program) (testgen.Testcase, bool) {

	// Start from a shape-correct random input and overwrite every
	// non-pointer register — including undefined ones, whose junk values
	// the counterexample may rely on — with the model's values. The stack
	// pointer is always a pointer: a counterexample rsp points nowhere
	// runnable.
	in := k.Spec.BuildInput(rng)
	testgen.FillUndefined(in, rng)
	for r := x64.Reg(0); r < x64.NumGPR; r++ {
		if r == x64.RSP || k.Pointers.Has(r) {
			continue
		}
		in.Regs[r] = cex.Regs[r]
	}
	for r := 0; r < x64.NumXMM; r++ {
		in.Xmm[r] = cex.Xmm[r]
	}
	in.Flags = cex.Flags

	tc, err := testgen.FromInput(m, target, k.Spec, in)
	if err != nil {
		return testgen.Testcase{}, false
	}

	// Does the refined testcase actually separate the programs?
	f := cost.New([]testgen.Testcase{tc}, k.Spec.LiveOut, cost.Strict, 0)
	if f.Eval(rewrite, cost.MaxBudget).Cost == 0 {
		return tc, false
	}
	return tc, true
}

// runChains runs n chain bodies on all available cores and collects results.
func runChains(n int, body func(i int) mcmc.Result) []mcmc.Result {
	results := make([]mcmc.Result, n)
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				results[i] = body(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	return results
}
