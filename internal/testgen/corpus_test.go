package testgen

// Self-verification of the fuzz seed corpus: every named seed must decode
// to the edge case it advertises, so corpus drift (an encoder/decoder
// mismatch, a reshuffled menu) fails here instead of silently weakening
// the fuzz targets' starting points.

import (
	"testing"

	"repro/internal/x64"
)

func seedByName(t *testing.T, name string) *FuzzCase {
	t.Helper()
	for _, s := range SeedCorpus() {
		if s.Name == name {
			return DecodeFuzzCase(s.Data)
		}
	}
	t.Fatalf("no seed named %q", name)
	return nil
}

func TestSeedCorpusDecodesDeterministically(t *testing.T) {
	for _, s := range SeedCorpus() {
		a, b := DecodeFuzzCase(s.Data), DecodeFuzzCase(s.Data)
		if a.Prog.String() != b.Prog.String() || len(a.Edits) != len(b.Edits) {
			t.Errorf("%s: decode is not deterministic", s.Name)
		}
	}
}

func TestSeedCorpusCoversDivideFaults(t *testing.T) {
	fc := seedByName(t, "div64-by-zero")
	if fc.Prog.Insts[0].Op != x64.DIV {
		t.Fatalf("div64-by-zero decodes to %v, want div", fc.Prog.Insts[0])
	}
	if v := fc.Snap.Regs[x64.RSI]; v != 0 {
		t.Fatalf("div64-by-zero divisor = %#x, want 0", v)
	}

	fc = seedByName(t, "div64-quotient-overflow")
	if hi, d := fc.Snap.Regs[x64.RDX], fc.Snap.Regs[x64.RSI]; hi < d {
		t.Fatalf("overflow seed has RDX=%#x < divisor %#x; no #DE", hi, d)
	}

	fc = seedByName(t, "idiv64-intmin-neg1")
	if fc.Prog.Insts[0].Op != x64.IDIV {
		t.Fatalf("idiv64-intmin-neg1 decodes to %v", fc.Prog.Insts[0])
	}
	if fc.Snap.Regs[x64.RAX] != 1<<63 || fc.Snap.Regs[x64.RSI] != ^uint64(0) {
		t.Fatalf("idiv64-intmin-neg1 state: RAX=%#x RSI=%#x",
			fc.Snap.Regs[x64.RAX], fc.Snap.Regs[x64.RSI])
	}

	fc = seedByName(t, "idiv32-intmin-neg1")
	if uint32(fc.Snap.Regs[x64.RAX]) != 0x80000000 || uint32(fc.Snap.Regs[x64.RSI]) != 0xffffffff {
		t.Fatalf("idiv32-intmin-neg1 state: RAX=%#x RSI=%#x",
			fc.Snap.Regs[x64.RAX], fc.Snap.Regs[x64.RSI])
	}
}

func TestSeedCorpusCoversSSE(t *testing.T) {
	fc := seedByName(t, "sse-saxpy-shape")
	want := []x64.Opcode{x64.MOVD, x64.SHUFPS, x64.MOVUPS, x64.PMULLD,
		x64.MOVUPS, x64.PADDD, x64.MOVUPS}
	for i, op := range want {
		if fc.Prog.Insts[i].Op != op {
			t.Fatalf("sse-saxpy-shape slot %d = %v, want %v\n%s",
				i, fc.Prog.Insts[i], op, fc.Prog)
		}
	}
	if last := fc.Prog.Insts[6]; last.Opd[1].Kind != x64.KindMem {
		t.Fatalf("sse-saxpy-shape must end in a vector store, got %v", last)
	}

	fc = seedByName(t, "sse-fixed-point-edges")
	first := fc.Prog.Insts[0]
	if first.Op != x64.PXOR || first.Opd[0].Reg != first.Opd[1].Reg {
		t.Fatalf("sse-fixed-point-edges slot 0 = %v, want the pxor zero idiom", first)
	}
	if c := fc.Prog.Insts[1]; c.Op != x64.PSLLD || c.Opd[0].Imm != 32 {
		t.Fatalf("sse-fixed-point-edges slot 1 = %v, want pslld by 32 (lane width)", c)
	}
	if c := fc.Prog.Insts[2]; c.Op != x64.PSRLQ || c.Opd[0].Imm != 64 {
		t.Fatalf("sse-fixed-point-edges slot 2 = %v, want psrlq by 64", c)
	}
	if mem := fc.Prog.Insts[3]; mem.Op != x64.PMULLW || mem.Opd[0].Kind != x64.KindMem {
		t.Fatalf("sse-fixed-point-edges slot 3 = %v, want memory-source pmullw", mem)
	}
}

func TestSeedCorpusCoversPaddingAndRelink(t *testing.T) {
	fc := seedByName(t, "unused-padding-patches")
	unused := 0
	for _, in := range fc.Prog.Insts {
		if in.Op == x64.UNUSED {
			unused++
		}
	}
	if unused < 8 {
		t.Fatalf("padding seed has %d UNUSED slots, want ≥ 8", unused)
	}
	if len(fc.Edits) != 5 || !fc.Edits[2].Swap {
		t.Fatalf("padding seed edits = %+v, want 5 with a swap at index 2", fc.Edits)
	}

	fc = seedByName(t, "patch-control-relink")
	hasJcc, hasLabel := false, false
	for _, in := range fc.Prog.Insts {
		hasJcc = hasJcc || in.Op == x64.Jcc
		hasLabel = hasLabel || in.Op == x64.LABEL
	}
	if !hasJcc || !hasLabel {
		t.Fatalf("relink seed lacks control structure:\n%s", fc.Prog)
	}
	if e := fc.Edits[0]; e.Swap || e.Slot != 1 || e.With.Op != x64.UNUSED {
		t.Fatalf("relink seed edit 0 = %+v, want the jump deleted", e)
	}
	if e := fc.Edits[2]; e.With.Op != x64.Jcc {
		t.Fatalf("relink seed edit 2 = %+v, want the jump re-created", e)
	}
}

// TestSeedCorpusCoversLivenessEdges: the dead-flag-elimination seeds must
// decode to the dataflow shapes they are named for — carry chains, the
// partial-kill inc, disagreeing branch successors, and liveness flowing
// across UNUSED padding under relink edits.
func TestSeedCorpusCoversLivenessEdges(t *testing.T) {
	fc := seedByName(t, "flags-adc-carry-chain")
	if fc.Prog.Insts[0].Op != x64.ADD || fc.Prog.Insts[1].Op != x64.ADC || fc.Prog.Insts[2].Op != x64.ADC {
		t.Fatalf("carry-chain seed decodes to:\n%s", fc.Prog)
	}
	if e := fc.Edits[0]; e.With.Op != x64.XOR || e.With.Opd[0].Reg != e.With.Opd[1].Reg {
		t.Fatalf("carry-chain edit 0 = %+v, want the xor-zero kill", e.With)
	}

	fc = seedByName(t, "flags-inc-preserves-cf")
	if fc.Prog.Insts[0].Op != x64.CMP || fc.Prog.Insts[1].Op != x64.INC || fc.Prog.Insts[2].Op != x64.ADC {
		t.Fatalf("inc-preserves-cf seed decodes to:\n%s", fc.Prog)
	}
	if fc.Edits[0].With.Op != x64.NOT {
		t.Fatalf("inc-preserves-cf edit 0 = %v, want a flagless not", fc.Edits[0].With)
	}

	fc = seedByName(t, "flags-jcc-successors-disagree")
	if fc.Prog.Insts[1].Op != x64.Jcc || fc.Prog.Insts[2].Op != x64.XOR ||
		fc.Prog.Insts[3].Op != x64.LABEL || fc.Prog.Insts[4].Op != x64.SETcc {
		t.Fatalf("jcc-disagree seed decodes to:\n%s", fc.Prog)
	}
	if e := fc.Edits[0]; e.Slot != 1 || e.With.Op != x64.UNUSED {
		t.Fatalf("jcc-disagree edit 0 = %+v, want the jump deleted", e)
	}

	fc = seedByName(t, "flags-live-across-padding")
	unused := 0
	for _, in := range fc.Prog.Insts {
		if in.Op == x64.UNUSED {
			unused++
		}
	}
	if fc.Prog.Insts[0].Op != x64.CMP || fc.Prog.Insts[5].Op != x64.SETcc || unused != 4 {
		t.Fatalf("padding seed decodes to:\n%s", fc.Prog)
	}
	if len(fc.Edits) != 4 || fc.Edits[2].With.Op != x64.Jcc {
		t.Fatalf("padding seed edits = %+v, want 4 with a relinking jcc", fc.Edits)
	}
}

// TestSeedCorpusCoversRegLiveness: the register-liveness seeds must decode
// to the deadness edges they are named for — narrow-write merge chains,
// zero-extending 32-bit kills, the backward-label jcc whose taken edge is
// an exit, the divide family's implicit defs, and dead XMM destinations.
func TestSeedCorpusCoversRegLiveness(t *testing.T) {
	fc := seedByName(t, "regs-partial-write-merge-chain")
	for i, w := range []uint8{1, 2, 1} {
		in := fc.Prog.Insts[i]
		if in.Op != x64.MOV || in.Opd[1].Width != w {
			t.Fatalf("merge-chain slot %d = %v, want a %d-byte mov", i, in, w)
		}
	}
	if kill := fc.Prog.Insts[3]; kill.Op != x64.MOV || kill.Opd[1].Width != 8 ||
		kill.Opd[1].Reg != x64.RAX {
		t.Fatalf("merge-chain slot 3 = %v, want the wide kill of %%rax", kill)
	}
	if e := fc.Edits[1].With; e.Opd[1].Width != 4 || e.Opd[1].Reg != x64.RAX {
		t.Fatalf("merge-chain edit 1 = %v, want the 32-bit re-kill", e)
	}

	fc = seedByName(t, "regs-zero-extend-kill")
	if in := fc.Prog.Insts[1]; in.Op != x64.MOV || in.Opd[1].Width != 4 {
		t.Fatalf("zero-extend seed slot 1 = %v, want a 32-bit mov", in)
	}
	if in := fc.Prog.Insts[3]; in.Op != x64.XOR || in.Opd[0].Reg != in.Opd[1].Reg {
		t.Fatalf("zero-extend seed slot 3 = %v, want the xor zero idiom", in)
	}
	if len(fc.Edits) != 2 || !fc.Edits[0].Swap {
		t.Fatalf("zero-extend seed edits = %+v, want two swaps", fc.Edits)
	}

	fc = seedByName(t, "regs-dead-write-jcc-resurrect")
	if fc.Prog.Insts[0].Op != x64.LABEL || fc.Prog.Insts[1].Op != x64.MOV {
		t.Fatalf("jcc-resurrect seed decodes to:\n%s", fc.Prog)
	}
	if e := fc.Edits[0]; e.Slot != 2 || e.With.Op != x64.Jcc ||
		e.With.Opd[0].Label != fc.Prog.Insts[0].Opd[0].Label {
		t.Fatalf("jcc-resurrect edit 0 = %+v, want a jcc to the backward label", e)
	}
	if e := fc.Edits[1]; e.With.Op != x64.UNUSED {
		t.Fatalf("jcc-resurrect edit 1 = %+v, want the jump deleted again", e)
	}

	fc = seedByName(t, "regs-div-implicit-defs")
	if fc.Prog.Insts[0].Op != x64.DIV || fc.Prog.Insts[1].Op != x64.XOR ||
		fc.Prog.Insts[2].Op != x64.XOR {
		t.Fatalf("div-implicit seed decodes to:\n%s", fc.Prog)
	}
	if e := fc.Edits[2].With; e.Op != x64.DIV || e.Opd[0].Reg != x64.RBP {
		t.Fatalf("div-implicit edit 2 = %v, want divq %%rbp", e)
	}
	if v := fc.Snap.Regs[x64.RBP]; v != 0 {
		t.Fatalf("div-implicit RBP = %#x, want the zero divisor the edit switches to", v)
	}

	fc = seedByName(t, "regs-dead-xmm-lanes")
	if in := fc.Prog.Insts[1]; in.Op != x64.PXOR || in.Opd[0].Reg != in.Opd[1].Reg {
		t.Fatalf("xmm seed slot 1 = %v, want the pxor zero idiom", in)
	}
	if in := fc.Prog.Insts[3]; in.Op != x64.MOVUPS || in.Opd[0].Kind != x64.KindMem {
		t.Fatalf("xmm seed slot 3 = %v, want a vector load kill", in)
	}
	if in := fc.Prog.Insts[4]; in.Op != x64.MOVD {
		t.Fatalf("xmm seed slot 4 = %v, want a cross-file movd", in)
	}
}

// TestSeedCorpusCoversBatchDivergence: the batched-evaluator seeds must
// decode to the lockstep edges they are named for — a branch on the input
// flags, a lane-subset divide fault followed by a branch, and a shape that
// re-splits the peeled side.
func TestSeedCorpusCoversBatchDivergence(t *testing.T) {
	fc := seedByName(t, "batch-jcc-on-input-flags")
	if fc.Prog.Insts[0].Op != x64.Jcc {
		t.Fatalf("batch-jcc-on-input-flags must branch first:\n%s", fc.Prog)
	}
	if fc.Snap.FlagsDef == x64.AllFlags {
		t.Fatalf("batch-jcc-on-input-flags wants partially-defined input flags, got %v",
			fc.Snap.FlagsDef)
	}

	fc = seedByName(t, "batch-divergent-de")
	if fc.Prog.Insts[0].Op != x64.DIV || fc.Prog.Insts[1].Op != x64.Jcc {
		t.Fatalf("batch-divergent-de decodes to:\n%s", fc.Prog)
	}
	if v := fc.Snap.Regs[x64.RBP]; v != 0 {
		t.Fatalf("batch-divergent-de divisor = %#x, want 0 so the base lane faults", v)
	}

	fc = seedByName(t, "batch-peel-resplit")
	jccs := 0
	for _, in := range fc.Prog.Insts {
		if in.Op == x64.Jcc {
			jccs++
		}
	}
	if jccs != 2 {
		t.Fatalf("batch-peel-resplit has %d conditional jumps, want 2:\n%s", jccs, fc.Prog)
	}
	if len(fc.Edits) != 2 || fc.Edits[0].With.Op != x64.UNUSED || fc.Edits[1].With.Op != x64.Jcc {
		t.Fatalf("batch-peel-resplit edits = %+v, want delete-then-recreate of the jump", fc.Edits)
	}
}

// TestDecodeFuzzCaseTotal: arbitrary and empty inputs must decode without
// panicking into runnable scenarios.
func TestDecodeFuzzCaseTotal(t *testing.T) {
	inputs := [][]byte{
		nil,
		{},
		{0xff},
		{0x0b, 0xde, 0xad, 0xbe, 0xef},
		make([]byte, 4096),
	}
	for i := 0; i < 256; i++ {
		inputs = append(inputs, []byte{byte(i), byte(i * 7), byte(i * 13)})
	}
	for _, in := range inputs {
		fc := DecodeFuzzCase(in)
		if fc.Prog == nil || fc.Snap == nil || len(fc.Prog.Insts) == 0 {
			t.Fatalf("decode of %x produced an empty case", in)
		}
		if len(fc.Edits) > 128 {
			t.Fatalf("edit script unbounded: %d", len(fc.Edits))
		}
	}
}
