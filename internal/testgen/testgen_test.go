package testgen

import (
	"math/rand"
	"testing"

	"repro/internal/emu"
	"repro/internal/x64"
)

func specWithArray() Spec {
	return Spec{
		BuildInput: func(rng *rand.Rand) *emu.Snapshot {
			a := NewArena(0x10000)
			a.AllocStack(256)
			base := a.Alloc(16, func(i int) byte { return byte(i) })
			a.SetReg(x64.RDI, base)
			a.SetReg(x64.RSI, rng.Uint64())
			return a.Snapshot()
		},
		LiveOut: LiveSet{
			GPRs:     []LiveReg{{Reg: x64.RAX, Width: 8}},
			LiveSegs: []int{1},
		},
	}
}

func TestSandboxNarrowedToDerefs(t *testing.T) {
	// Target reads only bytes [0,8) of the 16-byte array: the testcase
	// sandbox must allow exactly those bytes.
	target := x64.MustParse("movq (rdi), rax")
	tests, err := Generate(target, specWithArray(), 4, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range tests {
		arr := tc.In.Mem[1]
		for i := 0; i < 8; i++ {
			if !arr.Valid[i] {
				t.Fatalf("byte %d should be in the sandbox", i)
			}
		}
		for i := 8; i < 16; i++ {
			if arr.Valid[i] {
				t.Fatalf("byte %d was never dereferenced but is valid", i)
			}
		}
	}
	// And a rewrite touching the rest faults.
	m := emu.New()
	m.LoadSnapshot(tests[0].In)
	out := m.Run(x64.MustParse("movq 8(rdi), rax"))
	if out.SigSegv != 1 {
		t.Fatalf("out-of-sandbox access: %+v", out)
	}
}

func TestLiveMemOnlyFromLiveSegs(t *testing.T) {
	// Target writes the array (live) and the stack (scratch): only the
	// array bytes appear in WantMem.
	target := x64.MustParse(`
  movq rsi, (rdi)
  movq rsi, -8(rsp)
  movq (rdi), rax
`)
	tests, err := Generate(target, specWithArray(), 2, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range tests {
		if len(tc.WantMem) != 8 {
			t.Fatalf("WantMem has %d bytes, want 8 (array only)", len(tc.WantMem))
		}
		base := tc.In.Mem[1].Base
		for _, mc := range tc.WantMem {
			if mc.Addr < base || mc.Addr >= base+16 {
				t.Fatalf("live byte %#x outside the live segment", mc.Addr)
			}
		}
	}
}

func TestOutputsRecorded(t *testing.T) {
	target := x64.MustParse("movq rsi, rax\nnotq rax")
	tests, err := Generate(target, specWithArray(), 8, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range tests {
		want := ^tc.In.Regs[x64.RSI]
		if tc.WantGPR[0] != want {
			t.Fatalf("WantGPR = %#x, want %#x", tc.WantGPR[0], want)
		}
	}
}

func TestFaultingTargetRejected(t *testing.T) {
	// rsi is a random 64-bit value, not a pointer: dereferencing it faults
	// and Generate must report the bad driver annotation.
	target := x64.MustParse("movq (rsi), rax")
	if _, err := Generate(target, specWithArray(), 2, rand.New(rand.NewSource(4))); err == nil {
		t.Fatal("expected error for a faulting target")
	}
}

func TestArenaLayout(t *testing.T) {
	a := NewArena(0x1000)
	sp := a.AllocStack(256)
	b1 := a.Alloc(100, nil)
	b2 := a.Alloc(10, func(i int) byte { return 0xAA })
	s := a.Snapshot()
	if len(s.Mem) != 3 {
		t.Fatalf("3 segments expected, got %d", len(s.Mem))
	}
	// Segments must not overlap.
	type rng struct{ lo, hi uint64 }
	var rs []rng
	for _, im := range s.Mem {
		rs = append(rs, rng{im.Base, im.Base + uint64(len(im.Data))})
	}
	for i := 0; i < len(rs); i++ {
		for j := i + 1; j < len(rs); j++ {
			if rs[i].lo < rs[j].hi && rs[j].lo < rs[i].hi {
				t.Fatalf("segments %d and %d overlap: %+v %+v", i, j, rs[i], rs[j])
			}
		}
	}
	// Stack pointer sits mid-segment and is 16-aligned.
	if sp%16 != 0 || b1%16 != 0 || b2%16 != 0 {
		t.Fatalf("allocations not 16-aligned: %#x %#x %#x", sp, b1, b2)
	}
	if s.Regs[x64.RSP] != sp {
		t.Fatalf("rsp = %#x, want %#x", s.Regs[x64.RSP], sp)
	}
	// Fill function applied.
	if s.Mem[2].Data[0] != 0xAA {
		t.Fatal("fill not applied")
	}
	// Stack bytes valid but undefined; array bytes defined.
	if s.Mem[0].Def[0] || !s.Mem[0].Valid[0] {
		t.Fatal("stack must be valid but undefined")
	}
	if !s.Mem[1].Def[0] {
		t.Fatal("allocation must be defined")
	}
}

func TestFromInputUsedForCounterexamples(t *testing.T) {
	// FromInput on a specific register state reproduces that state's
	// outputs — the §4.1 counterexample-to-testcase path.
	target := x64.MustParse("leaq 5(rsi), rax")
	spec := specWithArray()
	in := spec.BuildInput(rand.New(rand.NewSource(5)))
	in.Regs[x64.RSI] = 0xfffffffffffffffb // exercises wraparound
	tc, err := FromInput(nil, target, spec, in)
	if err != nil {
		t.Fatal(err)
	}
	if tc.WantGPR[0] != 0 {
		t.Fatalf("WantGPR = %#x, want 0 (wraparound)", tc.WantGPR[0])
	}
}
