// Package testgen generates testcases the way §5.1 of the paper describes:
// a user-supplied annotation (here a Spec) says which registers carry inputs
// and what memory the kernel may touch; inputs are sampled uniformly at
// random (with annotated ranges for values used as addresses); the target is
// run under instrumentation; and the addresses it dereferences define the
// sandbox inside which candidate rewrites execute. The live outputs the
// target produces on each input become the expected side effects that the
// cost function's Hamming-distance terms compare against.
package testgen

import (
	"fmt"
	"math/rand"

	"repro/internal/emu"
	"repro/internal/x64"
)

// LiveReg names one live register and the width (in bytes) at which its
// value is compared.
type LiveReg struct {
	Reg   x64.Reg
	Width uint8
}

// LiveSet declares the live outputs of a kernel with respect to the target:
// the registers (and widths), XMM registers, and flags whose final values
// constitute the function's side effects, plus which memory segments carry
// live data. Within a live segment, every byte the target writes is a live
// output; segments not listed (notably the stack, which -O0 code churns
// through but which is dead on function exit) are scratch space.
type LiveSet struct {
	GPRs  []LiveReg
	Xmms  []x64.Reg
	Flags x64.FlagSet

	// LiveSegs indexes the snapshot's memory segments whose written bytes
	// are live outputs.
	LiveSegs []int
}

func (ls LiveSet) segLive(idx int) bool {
	for _, s := range ls.LiveSegs {
		if s == idx {
			return true
		}
	}
	return false
}

// Spec is the annotated driver of Figure 9: it builds random initial
// machine states for the target and declares the live-out set.
type Spec struct {
	// BuildInput samples one random input state. All memory the kernel may
	// legally touch must be present as segments (with Valid bytes); the
	// instrumented target run narrows Valid to what is actually
	// dereferenced.
	BuildInput func(rng *rand.Rand) *emu.Snapshot

	// LiveOut declares the live outputs with respect to the target.
	LiveOut LiveSet
}

// MemCheck is one expected live memory byte.
type MemCheck struct {
	Addr uint64
	Want byte
}

// Testcase pairs an input state with the target's side effects on it.
type Testcase struct {
	In *emu.Snapshot

	// Expected live register outputs, parallel to Spec.LiveOut.GPRs.
	WantGPR []uint64
	// Expected live XMM outputs, parallel to Spec.LiveOut.Xmms.
	WantXmm [][2]uint64
	// Expected flag valuation on the flags in Spec.LiveOut.Flags.
	WantFlags x64.FlagSet
	// Expected memory bytes (every byte the target wrote).
	WantMem []MemCheck
}

// Generate produces n testcases for the target program (§5.1: STOKE
// generates 32 testcases per target by default).
func Generate(target *x64.Program, spec Spec, n int, rng *rand.Rand) ([]Testcase, error) {
	tcs := make([]Testcase, 0, n)
	m := emu.New()
	for len(tcs) < n {
		in := spec.BuildInput(rng)
		FillUndefined(in, rng)
		tc, err := FromInput(m, target, spec, in)
		if err != nil {
			return nil, err
		}
		tcs = append(tcs, tc)
	}
	return tcs, nil
}

// FillUndefined pours random junk into every register, XMM register and
// flag the spec left undefined, without marking them defined. Machine
// states are sampled uniformly at random (§5.1): undefined state still
// *has* a value on a real machine, and pinning it to zero would let
// rewrites smuggle an "always zero" guess past the testcases — exactly
// the failure mode §6.3 describes for the almost-constant kernels.
func FillUndefined(s *emu.Snapshot, rng *rand.Rand) {
	for r := x64.Reg(0); r < x64.NumGPR; r++ {
		if s.RegDef&(1<<r) == 0 {
			s.Regs[r] = rng.Uint64()
		}
	}
	for r := 0; r < x64.NumXMM; r++ {
		if s.XmmDef&(1<<r) == 0 {
			s.Xmm[r] = [2]uint64{rng.Uint64(), rng.Uint64()}
		}
	}
	junkFlags := x64.FlagSet(rng.Intn(32))
	s.Flags = s.Flags&s.FlagsDef | junkFlags&^s.FlagsDef
}

// FromInput runs the target on one input under instrumentation and builds
// the corresponding testcase. It is also the path by which validator
// counterexamples are folded back into the testcase set (§4.1: "failed
// computations of eq(·) will produce a counterexample testcase that may be
// used to refine τ").
func FromInput(m *emu.Machine, target *x64.Program, spec Spec, in *emu.Snapshot) (Testcase, error) {
	if m == nil {
		m = emu.New()
	}
	trace := emu.NewTrace()
	m.LoadSnapshot(in)
	m.SetTrace(trace)
	out := m.Run(target)
	m.SetTrace(nil)
	if out.SigSegv+out.SigFpe > 0 || out.Exhaust {
		return Testcase{}, fmt.Errorf("testgen: target faulted on generated input: %+v", out)
	}

	tc := Testcase{In: in.Clone()}

	// The sandbox for rewrites is exactly the set of addresses the target
	// dereferenced (§5.1).
	derefed := func(addr uint64) bool {
		if _, ok := trace.Reads[addr]; ok {
			return true
		}
		_, ok := trace.Writes[addr]
		return ok
	}
	for si := range tc.In.Mem {
		im := &tc.In.Mem[si]
		for i := range im.Valid {
			im.Valid[i] = derefed(im.Base + uint64(i))
		}
	}

	// Record live outputs from the target's final state.
	for _, lr := range spec.LiveOut.GPRs {
		tc.WantGPR = append(tc.WantGPR, m.RegValue(lr.Reg, lr.Width))
	}
	for _, xr := range spec.LiveOut.Xmms {
		tc.WantXmm = append(tc.WantXmm, m.Xmm[xr])
	}
	tc.WantFlags = m.Flags & spec.LiveOut.Flags

	// Every byte the target wrote inside a live segment is a live memory
	// output. Iterate segments in order for determinism.
	for si := range tc.In.Mem {
		if !spec.LiveOut.segLive(si) {
			continue
		}
		im := &tc.In.Mem[si]
		for i := range im.Data {
			addr := im.Base + uint64(i)
			if _, ok := trace.Writes[addr]; !ok {
				continue
			}
			b, _, ok := m.MemByte(addr)
			if !ok {
				return Testcase{}, fmt.Errorf("testgen: written byte %#x vanished", addr)
			}
			tc.WantMem = append(tc.WantMem, MemCheck{Addr: addr, Want: b})
		}
	}
	return tc, nil
}

// Arena is a helper for building input snapshots: a bump allocator over a
// synthetic address space that lays out segments and points registers at
// them, mirroring the pointer-range annotations of §5.1.
type Arena struct {
	s    *emu.Snapshot
	next uint64
}

// NewArena starts an input snapshot at the given base address. Input flags
// are undefined — nothing guarantees flag state at function entry, so
// rewrites reading flags before writing them incur the undef penalty (and
// the symbolic validator, which treats input flags as free variables,
// agrees).
func NewArena(base uint64) *Arena {
	return &Arena{s: &emu.Snapshot{}, next: base}
}

// SetReg sets an input register to a defined value.
func (a *Arena) SetReg(r x64.Reg, v uint64) {
	a.s.Regs[r] = v
	a.s.RegDef |= 1 << r
}

// SetXmm sets an input XMM register to a defined value.
func (a *Arena) SetXmm(r x64.Reg, v [2]uint64) {
	a.s.Xmm[r] = v
	a.s.XmmDef |= 1 << r
}

// Alloc reserves size bytes (16-byte aligned), fills them with data, and
// returns the base address. All bytes are defined and sandbox-valid until
// the instrumented target run narrows validity.
func (a *Arena) Alloc(size int, fill func(i int) byte) uint64 {
	base := (a.next + 15) &^ 15
	a.next = base + uint64(size) + 32 // red zone between segments
	im := emu.MemImage{
		Base:  base,
		Data:  make([]byte, size),
		Def:   make([]bool, size),
		Valid: make([]bool, size),
	}
	for i := 0; i < size; i++ {
		if fill != nil {
			im.Data[i] = fill(i)
		}
		im.Def[i] = true
		im.Valid[i] = true
	}
	a.s.Mem = append(a.s.Mem, im)
	return base
}

// AllocStack reserves a stack segment of the given size and points RSP at
// its midpoint, modelling the paper's rsp-relative stack discipline. Bytes
// are valid but undefined (reads before writes are flagged as undef).
func (a *Arena) AllocStack(size int) uint64 {
	base := (a.next + 15) &^ 15
	a.next = base + uint64(size) + 32
	im := emu.MemImage{
		Base:  base,
		Data:  make([]byte, size),
		Def:   make([]bool, size),
		Valid: make([]bool, size),
	}
	for i := 0; i < size; i++ {
		im.Valid[i] = true
	}
	a.s.Mem = append(a.s.Mem, im)
	sp := base + uint64(size/2)
	a.SetReg(x64.RSP, sp)
	return sp
}

// Snapshot returns the built snapshot.
func (a *Arena) Snapshot() *emu.Snapshot { return a.s }
