package testgen

// Fuzz-case decoding for the emulator's differential fuzz targets
// (FuzzCompiledVsInterpreted, FuzzPatchVsFreshCompile in internal/emu).
//
// Any byte string decodes — deterministically and totally — into a
// differential scenario: a program drawn from a menu weighted toward the
// instructions whose compiled lowering is newest and trickiest (the divide
// family and the fixed-point SSE subset), an initial machine state built
// from a special-value table (zeros, sign boundaries, INT_MIN, all-ones),
// and a patch script of slot replacements and swaps. The fuzzer mutates raw
// bytes; this decoder turns every mutation into a valid scenario, so there
// are no rejected inputs to waste the search on.
//
// Layout (a cursor that reads zero once the input is exhausted, so short
// inputs are legal):
//
//	[0]         program length: 1 + b%12 slots
//	per slot    5 bytes: menu selector + 4 argument bytes (fixed width, so
//	            the encoder in SeedCorpus cannot drift from the decoder)
//	snapshot    fixed-size block: 16 GPRs (2 bytes each: value-table index,
//	            tweak), RegDef, 16 XMMs (4 bytes: 2 per lane), XmmDef,
//	            flags, flags-def, memory seed + def/valid stripe masks,
//	            and RDI/RSI segment offsets
//	edits       6 bytes each while input remains: slot selector + a menu
//	            instruction (or a swap when the selector's high bit is set)
//
// To extend the corpus when adding an opcode to the compiled pipeline: add
// a menu entry for it (a new Fz* constant and a decodeFuzzInst case), and a
// named seed in SeedCorpus exercising its edge cases; the checked-in
// corpus files under internal/emu/testdata/fuzz are regenerated with
// `go test ./internal/emu -run TestFuzzSeedCorpusFiles -update-fuzz-corpus`.

import (
	"repro/internal/emu"
	"repro/internal/x64"
)

// FuzzSegBase and FuzzSegSize locate the one memory segment of every fuzz
// snapshot; decoded pointer values and RDI/RSI offsets land inside it.
const (
	FuzzSegBase = 0x10000
	FuzzSegSize = 128
)

// maxFuzzEdits bounds the patch script so adversarial input lengths cannot
// make one fuzz execution arbitrarily slow.
const maxFuzzEdits = 128

// FuzzEdit is one step of a patch script: replace Slot with With, or (when
// Swap is set) exchange Slot and Other — the two mutation shapes the MCMC
// sampler patches compiled programs with.
type FuzzEdit struct {
	Slot  int
	With  x64.Inst
	Swap  bool
	Other int
}

// FuzzCase is a decoded differential scenario.
type FuzzCase struct {
	Prog  *x64.Program
	Snap  *emu.Snapshot
	Edits []FuzzEdit
}

// Menu selectors, one per instruction family. Exported so seeds (and tests
// over them) name slots symbolically instead of by magic number.
const (
	FzUnused byte = iota
	FzDiv
	FzIdiv
	FzMulWide
	FzMovGX
	FzMovups
	FzShuffle
	FzPacked
	FzPackedShift
	FzALU
	FzShift
	FzMovScalar
	FzCmpTest
	FzJcc
	FzLabel
	FzJmp
	FzRet
	FzIncDec      // inc/dec/neg/not: the partial- and no-flag-write unary family
	FzRegLiveness // width-varied writes over a small register set: deadness edges
	fzMenuLen
)

// fuzzVals is the special-value table machine state is sampled from: the
// zero/one neighbourhood, per-width sign boundaries (the denormal-free
// fixed-point edges of the SSE lanes), INT_MIN, and all-ones — the values
// the divide faults and packed wraparounds hinge on.
var fuzzVals = [16]uint64{
	0, 1, 2, 3,
	0x7f, 0x80, 0xff, 0x7fff,
	0x8000, 0x7fffffff, 0x80000000, 0xffffffff,
	1<<63 - 1, 1 << 63, ^uint64(0), ^uint64(0) - 1,
}

// Value-table indices for seed construction, named after their role.
const (
	fvZero     byte = 0
	fvOne      byte = 1
	fvTwo      byte = 2
	fvThree    byte = 3
	fvInt32Max byte = 9
	fvInt32Min byte = 10
	fvU32Max   byte = 11
	fvInt64Min byte = 13
	fvAllOnes  byte = 14
)

// fuzzVal maps two bytes to a 64-bit value: a table entry, optionally
// xor-perturbed by the tweak byte at a table-index-selected lane, or (high
// bit) a pointer into the fuzz segment.
func fuzzVal(idx, tweak byte) uint64 {
	if idx&0x80 != 0 {
		return FuzzSegBase + uint64(tweak)%FuzzSegSize
	}
	v := fuzzVals[idx%16]
	if tweak != 0 {
		v ^= uint64(tweak) << (8 * ((idx >> 4) & 7))
	}
	return v
}

type fuzzCursor struct {
	data []byte
	i    int
}

func (c *fuzzCursor) byte() byte {
	if c.i >= len(c.data) {
		return 0
	}
	b := c.data[c.i]
	c.i++
	return b
}

func (c *fuzzCursor) remaining() int { return len(c.data) - c.i }

// Decoding helpers shared by the menu cases.
func fzR(b byte) x64.Reg    { return x64.Reg(b % x64.NumGPR) }
func fzX(b byte) x64.Reg    { return x64.Reg(b % x64.NumXMM) }
func fzW(b byte) uint8      { return []uint8{8, 4}[b&1] }
func fzWAll(b byte) uint8   { return []uint8{1, 2, 4, 8}[b%4] }
func fzDisp(b byte) int32   { return int32(int8(b)) }
func fzBase(b byte) x64.Reg { return []x64.Reg{x64.RDI, x64.RSI}[b&1] }
func fzCC(b byte) x64.Cond  { return x64.Cond(1 + int(b)%(int(x64.NumConds)-1)) }

// decodeFuzzInst turns a menu selector and its four argument bytes into an
// instruction. Every path yields something both execution engines define;
// UNUSED is the explicit padding token (and the fallthrough for the
// selector's modulo spill).
func decodeFuzzInst(menu byte, a [4]byte) x64.Inst {
	switch menu % fzMenuLen {
	case FzDiv, FzIdiv:
		op := x64.DIV
		if menu%fzMenuLen == FzIdiv {
			op = x64.IDIV
		}
		w := fzW(a[0])
		if a[1]&0x80 != 0 {
			return x64.MakeInst(op, x64.Mem(fzBase(a[2]), fzDisp(a[3]), w))
		}
		return x64.MakeInst(op, x64.R(fzR(a[1]), w))
	case FzMulWide:
		op := x64.MUL
		if a[0]&1 != 0 {
			op = x64.IMUL1
		}
		return x64.MakeInst(op, x64.R(fzR(a[2]), fzW(a[1])))
	case FzMovGX:
		w := fzW(a[1])
		op := x64.MOVQX
		if w == 4 {
			op = x64.MOVD
		}
		switch a[0] % 4 {
		case 0:
			return x64.MakeInst(op, x64.R(fzR(a[2]), w), x64.X(fzX(a[3])))
		case 1:
			return x64.MakeInst(op, x64.X(fzX(a[3])), x64.R(fzR(a[2]), w))
		case 2:
			return x64.MakeInst(op, x64.Mem(fzBase(a[2]), fzDisp(a[3]), w), x64.X(fzX(a[2]>>1)))
		default:
			return x64.MakeInst(op, x64.X(fzX(a[2]>>1)), x64.Mem(fzBase(a[2]), fzDisp(a[3]), w))
		}
	case FzMovups:
		switch a[0] % 3 {
		case 0:
			op := x64.MOVAPS
			if a[0]&4 != 0 {
				op = x64.MOVUPS
			}
			return x64.MakeInst(op, x64.X(fzX(a[2])), x64.X(fzX(a[3])))
		case 1:
			return x64.MakeInst(x64.MOVUPS, x64.Mem(fzBase(a[2]), fzDisp(a[3]), 16), x64.X(fzX(a[2]>>1)))
		default:
			return x64.MakeInst(x64.MOVUPS, x64.X(fzX(a[2]>>1)), x64.Mem(fzBase(a[2]), fzDisp(a[3]), 16))
		}
	case FzShuffle:
		op := x64.SHUFPS
		if a[0]&1 != 0 {
			op = x64.PSHUFD
		}
		return x64.MakeInst(op, x64.Imm(int64(a[1]), 8), x64.X(fzX(a[2])), x64.X(fzX(a[3])))
	case FzPacked:
		ops := [10]x64.Opcode{
			x64.PADDW, x64.PSUBW, x64.PMULLW,
			x64.PADDD, x64.PSUBD, x64.PMULLD, x64.PADDQ,
			x64.PAND, x64.POR, x64.PXOR,
		}
		op := ops[a[0]%10]
		if a[1]&0x80 != 0 {
			return x64.MakeInst(op, x64.Mem(fzBase(a[3]), fzDisp(a[3]>>1), 16), x64.X(fzX(a[2])))
		}
		return x64.MakeInst(op, x64.X(fzX(a[1])), x64.X(fzX(a[2])))
	case FzPackedShift:
		ops := [4]x64.Opcode{x64.PSLLD, x64.PSRLD, x64.PSLLQ, x64.PSRLQ}
		return x64.MakeInst(ops[a[0]%4], x64.Imm(int64(a[1]), 8), x64.X(fzX(a[2])))
	case FzALU:
		ops := [7]x64.Opcode{x64.ADD, x64.SUB, x64.AND, x64.OR, x64.XOR, x64.ADC, x64.SBB}
		op := ops[a[0]%7]
		w := fzWAll(a[1])
		dst := x64.R(fzR(a[2]), w)
		if a[3]&0x80 != 0 {
			return x64.MakeInst(op, x64.Imm(int64(fuzzVal(a[3]&0x7f, 0)), w), dst)
		}
		return x64.MakeInst(op, x64.R(fzR(a[3]), w), dst)
	case FzShift:
		ops := [5]x64.Opcode{x64.SHL, x64.SHR, x64.SAR, x64.ROL, x64.ROR}
		op := ops[a[0]%5]
		w := fzWAll(a[1])
		dst := x64.R(fzR(a[2]), w)
		if a[3]&0x80 != 0 {
			return x64.MakeInst(op, x64.R(x64.RCX, 1), dst)
		}
		return x64.MakeInst(op, x64.Imm(int64(a[3]), w), dst)
	case FzMovScalar:
		w := fzWAll(a[1])
		switch a[0] % 4 {
		case 0:
			return x64.MakeInst(x64.MOV, x64.R(fzR(a[2]), w), x64.R(fzR(a[3]), w))
		case 1:
			return x64.MakeInst(x64.MOV, x64.Imm(int64(fuzzVal(a[3], 0)), w), x64.R(fzR(a[2]), w))
		case 2:
			return x64.MakeInst(x64.MOV, x64.Mem(fzBase(a[2]), fzDisp(a[3]), w), x64.R(fzR(a[2]>>1), w))
		default:
			return x64.MakeInst(x64.MOV, x64.R(fzR(a[2]>>1), w), x64.Mem(fzBase(a[2]), fzDisp(a[3]), w))
		}
	case FzCmpTest:
		w := fzW(a[1])
		switch a[0] % 4 {
		case 0:
			return x64.MakeInst(x64.CMP, x64.R(fzR(a[2]), w), x64.R(fzR(a[3]), w))
		case 1:
			return x64.MakeInst(x64.TEST, x64.R(fzR(a[2]), w), x64.R(fzR(a[3]), w))
		case 2:
			in := x64.MakeInst(x64.SETcc, x64.R(fzR(a[2]), 1))
			in.CC = fzCC(a[3])
			return in
		default:
			in := x64.MakeInst(x64.CMOVcc, x64.R(fzR(a[2]), w), x64.R(fzR(a[3]), w))
			in.CC = fzCC(a[1])
			return in
		}
	case FzJcc:
		in := x64.MakeInst(x64.Jcc, x64.LabelRef(int32(a[1]%4)))
		in.CC = fzCC(a[0])
		return in
	case FzLabel:
		return x64.MakeInst(x64.LABEL, x64.LabelRef(int32(a[0]%4)))
	case FzJmp:
		return x64.MakeInst(x64.JMP, x64.LabelRef(int32(a[0]%4)))
	case FzRet:
		return x64.MakeInst(x64.RET)
	case FzIncDec:
		// The unary family with partial flag writes (inc/dec preserve CF)
		// and none at all (not) — the kill-set edges of the compiled
		// pipeline's flag-liveness pass.
		ops := [4]x64.Opcode{x64.INC, x64.DEC, x64.NEG, x64.NOT}
		return x64.MakeInst(ops[a[0]%4], x64.R(fzR(a[2]), fzWAll(a[1])))
	case FzRegLiveness:
		// Register-deadness edges for the liveness pass: width-varied
		// writes over a deliberately small destination set, so random
		// programs overwrite each other's results and real kills occur —
		// narrow writes that merge into untouched bytes, 32-bit writes
		// whose zero-extension kills the full register, the dependency-
		// breaking zero idioms, the divide family's implicit RAX:RDX
		// defs, and cross-file GPR↔XMM moves.
		dst := []x64.Reg{x64.RAX, x64.RCX, x64.RDX, x64.RBX}[a[1]%4]
		switch a[0] % 8 {
		case 0: // 1-byte write: merges, killable only by a later wide write
			return x64.MakeInst(x64.MOV, x64.Imm(int64(a[3]), 1), x64.R(dst, 1))
		case 1: // 2-byte write: the same merge semantics one width up
			return x64.MakeInst(x64.MOV, x64.Imm(int64(fuzzVal(a[3], 0)), 2), x64.R(dst, 2))
		case 2: // 32-bit move: zero-extension makes it a full kill
			return x64.MakeInst(x64.MOV, x64.R(fzR(a[3]), 4), x64.R(dst, 4))
		case 3: // full-width kill
			return x64.MakeInst(x64.MOV, x64.R(fzR(a[3]), 8), x64.R(dst, 8))
		case 4: // zero idiom: kills its destination without reading it
			return x64.MakeInst(x64.XOR, x64.R(dst, fzW(a[3])), x64.R(dst, fzW(a[3])))
		case 5: // the divide family's implicit RAX:RDX uses and defs
			op := x64.DIV
			if a[3]&1 != 0 {
				op = x64.IDIV
			}
			return x64.MakeInst(op, x64.R(fzR(a[2]), fzW(a[3]>>1)))
		case 6: // xmm zero idiom: a full 128-bit kill
			return x64.MakeInst(x64.PXOR, x64.X(fzX(a[3])), x64.X(fzX(a[3])))
		default: // cross-file copies: deadness crossing the GPR/XMM boundary
			if a[3]&1 != 0 {
				return x64.MakeInst(x64.MOVD, x64.X(fzX(a[2])), x64.R(dst, 4))
			}
			return x64.MakeInst(x64.MOVD, x64.R(dst, 4), x64.X(fzX(a[2])))
		}
	}
	return x64.Unused()
}

// DecodeFuzzCase decodes any byte string into a differential scenario (see
// the file comment for the layout).
func DecodeFuzzCase(data []byte) *FuzzCase {
	c := &fuzzCursor{data: data}

	n := 1 + int(c.byte())%12
	prog := x64.NewProgram(n)
	for i := 0; i < n; i++ {
		menu := c.byte()
		var a [4]byte
		for j := range a {
			a[j] = c.byte()
		}
		prog.Insts[i] = decodeFuzzInst(menu, a)
	}

	s := &emu.Snapshot{}
	for r := 0; r < x64.NumGPR; r++ {
		s.Regs[r] = fuzzVal(c.byte(), c.byte())
	}
	s.RegDef = uint16(c.byte()) | uint16(c.byte())<<8
	for r := 0; r < x64.NumXMM; r++ {
		s.Xmm[r] = [2]uint64{fuzzVal(c.byte(), c.byte()), fuzzVal(c.byte(), c.byte())}
	}
	s.XmmDef = uint16(c.byte()) | uint16(c.byte())<<8
	s.Flags = x64.FlagSet(c.byte() % 32)
	s.FlagsDef = x64.FlagSet(c.byte() % 32)

	seed, defMask, validMask := c.byte(), c.byte(), c.byte()
	im := emu.MemImage{
		Base:  FuzzSegBase,
		Data:  make([]byte, FuzzSegSize),
		Def:   make([]bool, FuzzSegSize),
		Valid: make([]bool, FuzzSegSize),
	}
	for i := 0; i < FuzzSegSize; i++ {
		im.Data[i] = seed ^ byte(i*13)
		im.Def[i] = defMask>>(i%8)&1 == 1
		im.Valid[i] = validMask>>(i%8)&1 == 1
	}
	s.Mem = []emu.MemImage{im}

	rdi, rsi := c.byte(), c.byte()
	if rdi&0x80 == 0 {
		s.Regs[x64.RDI] = FuzzSegBase + uint64(rdi)%FuzzSegSize
		s.RegDef |= 1 << x64.RDI
	}
	if rsi&0x80 == 0 {
		s.Regs[x64.RSI] = FuzzSegBase + uint64(rsi)%FuzzSegSize
		s.RegDef |= 1 << x64.RSI
	}
	s.Regs[x64.RSP] = FuzzSegBase + FuzzSegSize/2
	s.RegDef |= 1 << x64.RSP

	fc := &FuzzCase{Prog: prog, Snap: s}
	for c.remaining() >= 6 && len(fc.Edits) < maxFuzzEdits {
		sel := c.byte()
		menu := c.byte()
		var a [4]byte
		for j := range a {
			a[j] = c.byte()
		}
		if sel&0x80 != 0 {
			fc.Edits = append(fc.Edits, FuzzEdit{
				Slot: int(sel) % n, Swap: true, Other: int(menu) % n,
			})
			continue
		}
		fc.Edits = append(fc.Edits, FuzzEdit{
			Slot: int(sel) % n, With: decodeFuzzInst(menu, a),
		})
	}
	return fc
}
