package testgen

// Seed corpus for the emulator's differential fuzz targets: hand-picked
// scenarios covering the edges the DIV/IDIV and SSE lowering hinges on —
// divide faults (#DE on zero divisors, 128/64 quotient overflow,
// INT_MIN/-1), the denormal-free fixed-point lane boundaries of the SSE
// subset, UNUSED-slot padding, and patch scripts that cross the control
// relink path. The encoder here mirrors DecodeFuzzCase's layout byte for
// byte (fixed-width slots make drift impossible); corpus_test.go decodes
// every seed and asserts it still exercises the edge it is named for.

// Seed is one named corpus entry.
type Seed struct {
	Name string
	Data []byte
}

// fzSlot encodes one program slot (or the instruction half of an edit):
// a menu selector plus exactly four argument bytes.
func fzSlot(menu byte, args ...byte) []byte {
	out := []byte{menu, 0, 0, 0, 0}
	copy(out[1:], args)
	return out
}

// fzEdit encodes a replacement edit of slot i.
func fzEdit(i byte, inst []byte) []byte {
	return append([]byte{i &^ 0x80}, inst...)
}

// fzSwap encodes a swap edit of slots i and j.
func fzSwap(i, j byte) []byte {
	return []byte{0x80 | i, j, 0, 0, 0, 0}
}

// fzSnap is the encoder-side snapshot spec, mirroring DecodeFuzzCase's
// fixed-size block field for field.
type fzSnap struct {
	gprIdx    [16]byte // value-table index per GPR
	xmmIdx    [16][2]byte
	regDef    uint16
	xmmDef    uint16
	flags     byte
	flagsDef  byte
	memSeed   byte
	defMask   byte
	validMask byte
	rdi, rsi  byte // segment offsets; 0x80 keeps the table value
}

// defaultFzSnap: everything defined, values staggered over the table,
// fully valid and defined memory, both pointer registers in the segment.
func defaultFzSnap() fzSnap {
	s := fzSnap{
		regDef: 0xffff, xmmDef: 0xffff,
		flagsDef: 0x1f,
		defMask:  0xff, validMask: 0xff,
		rdi: 0, rsi: 64,
	}
	for i := range s.gprIdx {
		s.gprIdx[i] = byte(i)
	}
	for i := range s.xmmIdx {
		s.xmmIdx[i] = [2]byte{byte(i), byte(15 - i)}
	}
	return s
}

func (s fzSnap) bytes() []byte {
	var out []byte
	for _, idx := range s.gprIdx {
		out = append(out, idx, 0)
	}
	out = append(out, byte(s.regDef), byte(s.regDef>>8))
	for _, lanes := range s.xmmIdx {
		out = append(out, lanes[0], 0, lanes[1], 0)
	}
	out = append(out, byte(s.xmmDef), byte(s.xmmDef>>8))
	out = append(out, s.flags, s.flagsDef)
	out = append(out, s.memSeed, s.defMask, s.validMask)
	out = append(out, s.rdi, s.rsi)
	return out
}

// seed assembles one corpus entry: program length byte, slots, snapshot,
// edit script.
func seed(name string, snap fzSnap, slots [][]byte, edits ...[]byte) Seed {
	data := []byte{byte(len(slots) - 1)}
	for _, s := range slots {
		data = append(data, s...)
	}
	data = append(data, snap.bytes()...)
	for _, e := range edits {
		data = append(data, e...)
	}
	return Seed{Name: name, Data: data}
}

// rsiReg is the FzDiv/FzIdiv argument selecting RSI as the divisor source.
const rsiReg = 6

// SeedCorpus returns the named seed entries both fuzz targets start from.
func SeedCorpus() []Seed {
	divSnap := func(rax, rdx, rsi byte) fzSnap {
		s := defaultFzSnap()
		s.gprIdx[0] = rax // RAX
		s.gprIdx[2] = rdx // RDX
		s.gprIdx[6] = rsi // RSI
		s.rsi = 0x80      // keep the table divisor, don't repoint RSI
		return s
	}

	var seeds []Seed
	seeds = append(seeds,
		seed("div64-by-zero", divSnap(fvThree, fvZero, fvZero),
			[][]byte{fzSlot(FzDiv, 0, rsiReg)}),
		seed("div64-quotient-overflow", divSnap(fvThree, fvThree, fvTwo),
			[][]byte{fzSlot(FzDiv, 0, rsiReg)}),
		seed("idiv64-intmin-neg1", divSnap(fvInt64Min, fvAllOnes, fvAllOnes),
			[][]byte{fzSlot(FzIdiv, 0, rsiReg)}),
		seed("idiv32-intmin-neg1", divSnap(fvInt32Min, fvU32Max, fvAllOnes),
			[][]byte{fzSlot(FzIdiv, 1, rsiReg)}),
		seed("div32-then-store", defaultFzSnap(),
			[][]byte{
				fzSlot(FzALU, 4, 1, 0, 2), // xor RAX-family noise
				fzSlot(FzDiv, 1, 0x80, 0, 8),
				fzSlot(FzMovScalar, 3, 2, 0, 16),
			}),
	)

	vec := defaultFzSnap()
	vec.xmmIdx[0] = [2]byte{fvInt32Max, fvInt32Min}
	vec.xmmIdx[1] = [2]byte{fvU32Max, fvOne}
	seeds = append(seeds,
		// The saxpy shape: broadcast, packed multiply, packed add, store.
		seed("sse-saxpy-shape", vec,
			[][]byte{
				fzSlot(FzMovGX, 0, 1, 7, 0),   // movd edi, xmm0
				fzSlot(FzShuffle, 0, 0, 0, 0), // shufps 0, xmm0, xmm0
				fzSlot(FzMovups, 1, 0, 2, 0),  // movups (rdi), xmm1
				fzSlot(FzPacked, 5, 1, 0),     // pmulld xmm1, xmm0
				fzSlot(FzMovups, 1, 0, 3, 0),  // movups (rsi), xmm1
				fzSlot(FzPacked, 3, 1, 0),     // paddd xmm1, xmm0
				fzSlot(FzMovups, 2, 0, 0, 0),  // movups xmm0, (rdi)
			}),
		// Lane-boundary arithmetic, the pxor zero idiom, and shift counts
		// at the lane width.
		seed("sse-fixed-point-edges", vec,
			[][]byte{
				fzSlot(FzPacked, 9, 2, 2),        // pxor xmm2, xmm2 (zero idiom)
				fzSlot(FzPackedShift, 0, 32, 1),  // pslld 32, xmm1
				fzSlot(FzPackedShift, 3, 64, 1),  // psrlq 64, xmm1
				fzSlot(FzPacked, 2, 0x80, 3, 0),  // pmullw (rdi), xmm3
				fzSlot(FzPacked, 0, 0, 0),        // paddw xmm0, xmm0
				fzSlot(FzShuffle, 1, 0x1b, 1, 2), // pshufd 0x1b, xmm1, xmm2
			}),
	)

	pad := defaultFzSnap()
	seeds = append(seeds,
		// Mostly-UNUSED padding with edits that grow, shrink and swap the
		// live slots — the skip-chain repair path of Patch.
		seed("unused-padding-patches", pad,
			[][]byte{
				fzSlot(FzUnused),
				fzSlot(FzUnused),
				fzSlot(FzALU, 0, 2, 0, 6),
				fzSlot(FzUnused),
				fzSlot(FzUnused),
				fzSlot(FzUnused),
				fzSlot(FzUnused),
				fzSlot(FzMovScalar, 0, 3, 7, 0),
				fzSlot(FzUnused),
				fzSlot(FzUnused),
				fzSlot(FzUnused),
				fzSlot(FzUnused),
			},
			fzEdit(4, fzSlot(FzPacked, 3, 0, 1)),
			fzEdit(2, fzSlot(FzUnused)),
			fzSwap(2, 7),
			fzEdit(9, fzSlot(FzDiv, 0, rsiReg)),
			fzSwap(9, 0),
		),
		// Liveness edges of the dead-flag elimination pass. Carry chain:
		// every CF must stay live into its adc consumer, and the edit that
		// turns the tail adc into a xor-zero kill flips the head add dead.
		seed("flags-adc-carry-chain", pad,
			[][]byte{
				fzSlot(FzALU, 0, 3, 0, 6), // addq rsi, rax (CF → adc)
				fzSlot(FzALU, 5, 3, 2, 1), // adcq rcx, rdx
				fzSlot(FzALU, 5, 3, 0, 1), // adcq rcx, rax
			},
			fzEdit(2, fzSlot(FzALU, 4, 3, 2, 2)), // xorq rdx, rdx: kill
			fzEdit(2, fzSlot(FzALU, 5, 3, 0, 1)), // adc back: re-liven
		),
		// inc writes PF|ZF|SF|OF but preserves CF: the cmp's carry must
		// stay live across it into the adc, while the inc's own writes are
		// dead; edits interpose a full kill and a no-flag not.
		seed("flags-inc-preserves-cf", pad,
			[][]byte{
				fzSlot(FzCmpTest, 0, 0, 7, 6), // cmpq rsi, rdi
				fzSlot(FzIncDec, 0, 3, 0),     // incq rax (CF untouched)
				fzSlot(FzALU, 5, 3, 1, 1),     // adcq rcx, rcx (reads CF)
			},
			fzEdit(1, fzSlot(FzIncDec, 3, 3, 0)), // notq rax: no flags at all
			fzEdit(1, fzSlot(FzALU, 4, 3, 5, 5)), // xorq rbp, rbp: kills CF
		),
		// A conditional jump whose successors disagree: the taken path
		// reaches a setcc with the cmp's flags live, the fall-through
		// kills them first — live-out of the cmp is the union.
		seed("flags-jcc-successors-disagree", pad,
			[][]byte{
				fzSlot(FzCmpTest, 0, 0, 7, 6), // cmpq rsi, rdi
				fzSlot(FzJcc, 0, 1),           // jcc .L1
				fzSlot(FzALU, 4, 3, 2, 2),     // xorq rdx, rdx: kill path
				fzSlot(FzLabel, 1),
				fzSlot(FzCmpTest, 2, 0, 1, 3), // setcc cl: live path
			},
			fzEdit(1, fzSlot(FzUnused)),    // delete the jump: relink, one path
			fzEdit(1, fzSlot(FzJcc, 0, 1)), // and re-create it
		),
		// Flags live across an UNUSED-padding run, with edits that drop a
		// kill into the padding, take it back out, and force a relink
		// while the producer's liveness depends on slots beyond the gap.
		seed("flags-live-across-padding", pad,
			[][]byte{
				fzSlot(FzCmpTest, 0, 0, 7, 6), // cmpq rsi, rdi
				fzSlot(FzUnused),
				fzSlot(FzUnused),
				fzSlot(FzUnused),
				fzSlot(FzUnused),
				fzSlot(FzCmpTest, 2, 0, 1, 3), // setcc cl
			},
			fzEdit(2, fzSlot(FzALU, 4, 3, 2, 2)), // kill inside the padding
			fzEdit(2, fzSlot(FzUnused)),          // and remove it again
			fzEdit(3, fzSlot(FzJcc, 0, 2)),       // relink across the gap
			fzEdit(3, fzSlot(FzUnused)),
		),
		// Control structure under patching: a conditional crossing a label,
		// edits that delete and re-create the jump (full relink path).
		seed("patch-control-relink", pad,
			[][]byte{
				fzSlot(FzCmpTest, 0, 0, 7, 6), // cmp
				fzSlot(FzJcc, 2, 1),           // jcc .L1
				fzSlot(FzALU, 0, 3, 0, 1),
				fzSlot(FzLabel, 1),
				fzSlot(FzALU, 1, 3, 0, 2),
				fzSlot(FzRet),
			},
			fzEdit(1, fzSlot(FzUnused)),
			fzSwap(3, 2),
			fzEdit(1, fzSlot(FzJcc, 5, 1)),
			fzEdit(5, fzSlot(FzALU, 2, 2, 4, 4)),
		),
	)

	// Register-liveness seeds: the deadness edges of the register pass,
	// each paired with a patch script that resurrects the dead write and
	// kills it again, so the patched/fresh/batched selection comparison
	// crosses both transitions.
	rbpZero := defaultFzSnap()
	rbpZero.gprIdx[5] = fvZero // RBP: the zero divisor an edit switches to
	seeds = append(seeds,
		// 8/16-bit partial writes merge into untouched bytes, which makes
		// each narrow write a reader of its destination: the movb stays
		// live through the movw's merge read, and only the last narrow
		// write before the wide kill dies; edits swap the kill for another
		// narrow write (resurrect) and a 32-bit zero-extending one (kill).
		seed("regs-partial-write-merge-chain", defaultFzSnap(),
			[][]byte{
				fzSlot(FzRegLiveness, 0, 0, 0, 0x11), // movb $0x11, %al (live: merged below)
				fzSlot(FzRegLiveness, 1, 0, 0, 2),    // movw $2, %ax (dead)
				fzSlot(FzRegLiveness, 0, 1, 0, 0x22), // movb $0x22, %cl (live: read below)
				fzSlot(FzRegLiveness, 3, 0, 0, 1),    // movq %rcx, %rax: wide kill
			},
			fzEdit(3, fzSlot(FzRegLiveness, 0, 0, 0, 0x33)), // narrow again: resurrect
			fzEdit(3, fzSlot(FzRegLiveness, 2, 0, 0, 1)),    // movl %ecx, %eax: kill anew
		),
		// 32-bit writes zero-extend, so both the plain movl and the xorl
		// zero idiom are full kills of their 64-bit register; the swap
		// reverses which of the two movs is the dead one.
		seed("regs-zero-extend-kill", defaultFzSnap(),
			[][]byte{
				fzSlot(FzRegLiveness, 3, 0, 0, 6), // movq %rsi, %rax (dead)
				fzSlot(FzRegLiveness, 2, 0, 0, 1), // movl %ecx, %eax: zero-extend kill
				fzSlot(FzRegLiveness, 3, 2, 0, 6), // movq %rsi, %rdx (dead)
				fzSlot(FzRegLiveness, 4, 2, 0, 1), // xorl %edx, %edx: zero-idiom kill
			},
			fzSwap(0, 1),
			fzSwap(0, 1),
		),
		// A dead write resurrected by a Jcc whose label sits backward: the
		// forward-scan link resolves the taken edge to the program end, an
		// exit where every register is live — the relink edit flips the
		// mov from dead to live and the second edit flips it back.
		seed("regs-dead-write-jcc-resurrect", defaultFzSnap(),
			[][]byte{
				fzSlot(FzLabel, 1),
				fzSlot(FzRegLiveness, 3, 0, 0, 1), // movq %rcx, %rax (dead)
				fzSlot(FzUnused),
				fzSlot(FzRegLiveness, 2, 0, 0, 1), // movl %ecx, %eax: kill
			},
			fzEdit(2, fzSlot(FzJcc, 0, 1)), // jcc .L1 (backward → exit edge): resurrect
			fzEdit(2, fzSlot(FzUnused)),    // and back to dead
		),
		// DIV's implicit RAX:RDX defs die when both are overwritten before
		// any read — the div still reads RAX/RDX/divisor when suppressed.
		// Edits resurrect the RAX def via a reader, kill it again, and
		// switch to a zero divisor so the #DE accounting runs suppressed.
		seed("regs-div-implicit-defs", rbpZero,
			[][]byte{
				fzSlot(FzDiv, 0, rsiReg),          // divq %rsi
				fzSlot(FzRegLiveness, 4, 0, 0, 1), // xorl %eax, %eax
				fzSlot(FzRegLiveness, 4, 2, 0, 1), // xorl %edx, %edx
			},
			fzEdit(1, fzSlot(FzALU, 0, 3, 1, 0)),         // addq %rax, %rcx: resurrect
			fzEdit(1, fzSlot(FzRegLiveness, 4, 0, 0, 1)), // xorl back: dead again
			fzEdit(0, fzSlot(FzRegLiveness, 5, 0, 5, 0)), // divq %rbp: #DE while dead
		),
		// Dead XMM writes: packed arithmetic killed by the pxor zero
		// idiom, a shuffle killed by a vector load, and a cross-file movd;
		// the edit makes the consumer read the dead destination.
		seed("regs-dead-xmm-lanes", defaultFzSnap(),
			[][]byte{
				fzSlot(FzPacked, 0, 0, 1),         // paddw xmm0, xmm1 (dead)
				fzSlot(FzRegLiveness, 6, 0, 0, 1), // pxor xmm1, xmm1: kill
				fzSlot(FzShuffle, 1, 0x1b, 0, 2),  // pshufd 0x1b, xmm0, xmm2 (dead)
				fzSlot(FzMovups, 1, 0, 4, 0),      // movups (rdi), xmm2: load kill
				fzSlot(FzRegLiveness, 7, 0, 3, 1), // movd %xmm3, %eax
			},
			fzEdit(1, fzSlot(FzPacked, 3, 1, 2)),         // paddd xmm1, xmm2: resurrect
			fzEdit(1, fzSlot(FzRegLiveness, 6, 0, 0, 1)), // pxor back: dead again
		),
	)

	// Batched-evaluator divergence seeds. The batched fuzz target perturbs
	// registers, flags, and definedness per lane, so these shapes make the
	// lockstep loop split at a conditional jump, fault on a strict subset
	// of lanes, and re-split on the peeled majority.
	jflags := defaultFzSnap()
	jflags.flagsDef = 0x0a // jcc straight on a partially-defined flag word
	de := defaultFzSnap()
	de.gprIdx[0] = fvThree // RAX dividend
	de.gprIdx[2] = fvZero  // RDX high half: quotient fits
	de.gprIdx[5] = fvZero  // RBP divisor: zero except on the lane that perturbs it
	seeds = append(seeds,
		// The first slot branches on the input flags, which vary (in value
		// and definedness) across lanes: an immediate two-way split plus
		// per-lane undef accounting at the jcc itself.
		seed("batch-jcc-on-input-flags", jflags,
			[][]byte{
				fzSlot(FzJcc, 0, 1),       // jcc .L1 on the input flags
				fzSlot(FzALU, 0, 3, 0, 6), // addq rsi, rax (fall-through side)
				fzSlot(FzLabel, 1),
				fzSlot(FzALU, 1, 3, 0, 7), // subq rdi, rax (join)
			}),
		// #DE on most lanes but not all: the divisor register is zero in
		// the base snapshot and nonzero on the lane that perturbs RBP. The
		// fault continues in line — the batch must NOT split — and the jcc
		// after it reads flags that are defined (zeroed) on faulting lanes
		// and undefined on the surviving one.
		seed("batch-divergent-de", de,
			[][]byte{
				fzSlot(FzDiv, 0, 5),       // divq rbp
				fzSlot(FzJcc, 4, 2),       // jcc .L2 on the post-div flags
				fzSlot(FzIncDec, 0, 3, 0), // incq rax
				fzSlot(FzLabel, 2),
				fzSlot(FzMovScalar, 3, 2, 0, 16), // movl eax, 16(rdi)
			}),
		// Two splits in sequence: the peel survivors rejoin at .L1 and must
		// split again at the second jcc; edits delete and re-create the
		// first jump so the same program runs both pure-lockstep and
		// peeled.
		seed("batch-peel-resplit", defaultFzSnap(),
			[][]byte{
				fzSlot(FzCmpTest, 0, 0, 7, 6), // cmpq rsi, rdi
				fzSlot(FzJcc, 0, 1),           // jcc .L1: first split
				fzSlot(FzALU, 0, 3, 0, 6),     // addq rsi, rax
				fzSlot(FzLabel, 1),
				fzSlot(FzCmpTest, 0, 0, 0, 6), // cmpq rsi, rax
				fzSlot(FzJcc, 3, 2),           // jcc .L2: re-split after the join
				fzSlot(FzIncDec, 2, 3, 0),     // negq rax
				fzSlot(FzLabel, 2),
				fzSlot(FzCmpTest, 2, 0, 1, 3), // setcc cl
			},
			fzEdit(1, fzSlot(FzUnused)),    // delete the first split: lockstep to .L1
			fzEdit(1, fzSlot(FzJcc, 0, 1)), // and re-create it
		),
	)
	return seeds
}
