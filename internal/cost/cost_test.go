package cost

import (
	"math/rand"
	"testing"

	"repro/internal/emu"
	"repro/internal/testgen"
	"repro/internal/x64"
)

// figure6Testcase reconstructs the worked example of Figure 6: a machine
// whose live output is the low byte of RAX (al), with target value 0b1111.
func figure6Testcase() ([]testgen.Testcase, testgen.LiveSet) {
	in := &emu.Snapshot{FlagsDef: x64.AllFlags}
	in.RegDef = 0xffff
	tc := testgen.Testcase{In: in, WantGPR: []uint64{0x0f}}
	live := testgen.LiveSet{GPRs: []testgen.LiveReg{{Reg: x64.RAX, Width: 1}}}
	return []testgen.Testcase{tc}, live
}

// figure6Rewrite produces the rewrite of Figure 6: the correct value lands
// in dl while al is entirely wrong; bl and cl hold near misses.
var figure6Rewrite = x64.MustParse(`
  movb 0, al
  movb 8, bl
  movb 12, cl
  movb 15, dl
`)

func TestFigure6StrictVsImproved(t *testing.T) {
	tests, live := figure6Testcase()

	strict := New(tests, live, Strict, 0)
	if got := strict.Eval(figure6Rewrite, MaxBudget).Cost; got != 4 {
		t.Errorf("strict cost = %v, want 4 (all bits of al wrong)", got)
	}

	improved := New(tests, live, Improved, 0)
	improved.W.Misplace = 1 // the figure's arithmetic uses wm = 1
	if got := improved.Eval(figure6Rewrite, MaxBudget).Cost; got != 1 {
		t.Errorf("improved cost = %v, want min(4, 3+1, 2+1, 0+1) = 1", got)
	}

	paper := New(tests, live, Improved, 0) // wm = 3 per Figure 11
	if got := paper.Eval(figure6Rewrite, MaxBudget).Cost; got != 3 {
		t.Errorf("improved cost with wm=3 = %v, want 3", got)
	}
}

func TestZeroCostForTarget(t *testing.T) {
	target := x64.MustParse(`
  movq rdi, rax
  addq rsi, rax
`)
	spec := testgen.Spec{
		BuildInput: func(rng *rand.Rand) *emu.Snapshot {
			a := testgen.NewArena(0x10000)
			a.SetReg(x64.RDI, rng.Uint64())
			a.SetReg(x64.RSI, rng.Uint64())
			return a.Snapshot()
		},
		LiveOut: testgen.LiveSet{GPRs: []testgen.LiveReg{{Reg: x64.RAX, Width: 8}}},
	}
	tests, err := testgen.Generate(target, spec, 32, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	f := New(tests, spec.LiveOut, Improved, 0)
	if got := f.Eval(target, MaxBudget); got.Cost != 0 || got.EqCost != 0 {
		t.Fatalf("target against itself costs %v, want 0", got.Cost)
	}

	// A semantically equal but syntactically different rewrite also
	// reaches zero.
	rewrite := x64.MustParse(`
  leaq (rdi,rsi), rax
`)
	if got := f.Eval(rewrite, MaxBudget); got.Cost != 0 {
		t.Fatalf("lea rewrite costs %v, want 0", got.Cost)
	}

	// A wrong rewrite costs more.
	wrong := x64.MustParse(`
  movq rdi, rax
  subq rsi, rax
`)
	if got := f.Eval(wrong, MaxBudget); got.Cost == 0 {
		t.Fatal("wrong rewrite costs 0")
	}
}

func TestErrTermCountsUndefinedReads(t *testing.T) {
	tests, live := figure6Testcase()
	// Mark every register undefined in the input.
	tests[0].In.RegDef = 0
	f := New(tests, live, Strict, 0)
	// This rewrite reads undefined rbx once per testcase.
	p := x64.MustParse("movq rbx, rax")
	got := f.Eval(p, MaxBudget)
	// Cost includes wur * 1 undef plus the Hamming distance of al.
	if got.Cost < f.W.UndefRead {
		t.Fatalf("cost %v must include undef penalty %v", got.Cost, f.W.UndefRead)
	}
}

func TestEarlyTermination(t *testing.T) {
	target := x64.MustParse("movq rdi, rax")
	spec := testgen.Spec{
		BuildInput: func(rng *rand.Rand) *emu.Snapshot {
			a := testgen.NewArena(0x10000)
			a.SetReg(x64.RDI, rng.Uint64())
			return a.Snapshot()
		},
		LiveOut: testgen.LiveSet{GPRs: []testgen.LiveReg{{Reg: x64.RAX, Width: 8}}},
	}
	tests, err := testgen.Generate(target, spec, 32, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	f := New(tests, spec.LiveOut, Strict, 0)
	// A rewrite that leaves rax at an arbitrary value scores ~32 bits per
	// testcase; with a budget of 50 only a couple of testcases run.
	bad := x64.MustParse("movq 0, rax")
	res := f.Eval(bad, 50)
	if !res.Early {
		t.Fatal("expected early termination")
	}
	if res.TestsRun >= len(tests) {
		t.Fatalf("TestsRun = %d, want < %d", res.TestsRun, len(tests))
	}
	// Without a budget all testcases run.
	res = f.Eval(bad, MaxBudget)
	if res.Early || res.TestsRun != len(tests) {
		t.Fatalf("full eval: %+v", res)
	}
}

// TestInterpretedEvalFeedsSharedProfile: the interpreted path's early
// terminations must warm the shared testcase profile (and this Fn's own
// counters) exactly like the compiled path's, so interpreted runs
// (stoke.WithInterpretedEval) are not invisible to sibling chains.
func TestInterpretedEvalFeedsSharedProfile(t *testing.T) {
	target := x64.MustParse("movq rdi, rax")
	spec := testgen.Spec{
		BuildInput: func(rng *rand.Rand) *emu.Snapshot {
			a := testgen.NewArena(0x10000)
			a.SetReg(x64.RDI, rng.Uint64())
			return a.Snapshot()
		},
		LiveOut: testgen.LiveSet{GPRs: []testgen.LiveReg{{Reg: x64.RAX, Width: 8}}},
	}
	tests, err := testgen.Generate(target, spec, 8, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	prof := NewSharedProfile(len(tests))
	f := New(tests, spec.LiveOut, Strict, 0)
	f.Shared = prof
	bad := x64.MustParse("movq 0, rax")
	for i := 0; i < 5; i++ {
		if res := f.Eval(bad, 50); !res.Early {
			t.Fatal("expected early termination")
		}
	}
	order := prof.Order(len(tests))
	var total int64
	for i := range prof.counts {
		total += prof.counts[i].Load()
	}
	if total != 5 {
		t.Fatalf("shared profile recorded %d early terminations from the interpreted path, want 5", total)
	}
	// The terminating testcase (index 0: strict order, first over budget)
	// must now lead a warm-started order.
	if prof.counts[order[0]].Load() == 0 {
		t.Fatalf("warm-started order %v does not front-load the discriminating testcase", order)
	}

	// A sibling compiled-path Fn warm-starts from what the interpreted
	// chain learned.
	sib := New(tests, spec.LiveOut, Strict, 0)
	sib.Shared = prof
	sib.EvalCompiled(sib.Compile(bad.Clone().PadTo(4)), MaxBudget)
	if sib.order[0] != order[0] {
		t.Fatalf("sibling order %v ignores the interpreted chain's profile %v", sib.order, order)
	}
}

func TestPerfTermOrdersPrograms(t *testing.T) {
	tests, live := figure6Testcase()
	f := New(tests, live, Improved, 1)
	short := x64.MustParse("movb 15, al")
	long := x64.MustParse(`
  movb 0, al
  movb 15, bl
  movb bl, al
`)
	cs := f.Eval(short, MaxBudget).Cost
	cl := f.Eval(long, MaxBudget).Cost
	if cs >= cl {
		t.Fatalf("short program must cost less: %v vs %v", cs, cl)
	}
	// Both are correct, so with PerfWeight 0 they tie at zero.
	g := New(tests, live, Improved, 0)
	if g.Eval(short, MaxBudget).Cost != 0 || g.Eval(long, MaxBudget).Cost != 0 {
		t.Fatal("eq-only cost of correct rewrites must be 0")
	}
}

func TestMemCostStrictAndImproved(t *testing.T) {
	// Target writes 0xff to [rdi]; rewrite writes it to [rdi+1] instead.
	target := x64.MustParse("movb 0xff, (rdi)\nmovb 0, 1(rdi)")
	spec := testgen.Spec{
		BuildInput: func(rng *rand.Rand) *emu.Snapshot {
			a := testgen.NewArena(0x20000)
			base := a.Alloc(2, func(int) byte { return 0 })
			a.SetReg(x64.RDI, base)
			return a.Snapshot()
		},
		LiveOut: testgen.LiveSet{LiveSegs: []int{0}},
	}
	tests, err := testgen.Generate(target, spec, 4, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	swapped := x64.MustParse("movb 0, (rdi)\nmovb 0xff, 1(rdi)")

	strict := New(tests, spec.LiveOut, Strict, 0)
	improved := New(tests, spec.LiveOut, Improved, 0)
	cs := strict.Eval(swapped, MaxBudget).Cost
	ci := improved.Eval(swapped, MaxBudget).Cost
	if cs <= ci {
		t.Fatalf("improved (%v) must beat strict (%v) for misplaced bytes", ci, cs)
	}
	if ci != float64(len(tests))*2*improved.W.Misplace {
		t.Fatalf("improved cost = %v, want 2*wm per testcase", ci)
	}
}

func TestLiveFlagsCost(t *testing.T) {
	target := x64.MustParse("cmpq rsi, rdi")
	spec := testgen.Spec{
		BuildInput: func(rng *rand.Rand) *emu.Snapshot {
			a := testgen.NewArena(0x10000)
			a.SetReg(x64.RDI, uint64(rng.Intn(4)))
			a.SetReg(x64.RSI, uint64(rng.Intn(4)))
			return a.Snapshot()
		},
		LiveOut: testgen.LiveSet{Flags: x64.ZF},
	}
	tests, err := testgen.Generate(target, spec, 16, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	f := New(tests, spec.LiveOut, Strict, 0)
	if got := f.Eval(target, MaxBudget).Cost; got != 0 {
		t.Fatalf("target flag cost = %v", got)
	}
	// An inverted comparison disagrees on ZF whenever rdi != rsi.
	inverted := x64.MustParse("cmpq rdi, rdi")
	if got := f.Eval(inverted, MaxBudget).Cost; got == 0 {
		t.Fatal("always-equal comparison must cost > 0")
	}
}

// compiledSpec builds a two-input register kernel spec for the compiled
// pipeline tests.
func compiledSpec() testgen.Spec {
	return testgen.Spec{
		BuildInput: func(rng *rand.Rand) *emu.Snapshot {
			a := testgen.NewArena(0x10000)
			a.SetReg(x64.RDI, rng.Uint64())
			a.SetReg(x64.RSI, rng.Uint64())
			return a.Snapshot()
		},
		LiveOut: testgen.LiveSet{GPRs: []testgen.LiveReg{{Reg: x64.RAX, Width: 8}}},
	}
}

// TestEvalCompiledMatchesEval pins the compiled scoring path against the
// interpreted one: same cost, same eq term, bit for bit (both run the
// testcases in identity order when nothing is rejected).
func TestEvalCompiledMatchesEval(t *testing.T) {
	target := x64.MustParse("movq rdi, rax\nimulq rsi, rax")
	spec := compiledSpec()
	tests, err := testgen.Generate(target, spec, 32, rand.New(rand.NewSource(71)))
	if err != nil {
		t.Fatal(err)
	}
	candidates := []*x64.Program{
		target,
		x64.MustParse("movq rsi, rax\nimulq rdi, rax"),
		x64.MustParse("movq rdi, rax"),
		x64.MustParse("xorq rax, rax"),
		x64.MustParse("movq rbx, rax"),   // undef read
		x64.MustParse("movq (rdi), rax"), // sandbox fault on register inputs
	}
	for _, p := range candidates {
		p = p.PadTo(14)
		fi := New(tests, spec.LiveOut, Improved, 1)
		fc := New(tests, spec.LiveOut, Improved, 1)
		want := fi.Eval(p, MaxBudget)
		got := fc.EvalCompiled(fc.Compile(p), MaxBudget)
		if want != got {
			t.Errorf("compiled eval = %+v, interpreted = %+v for\n%s", got, want, p)
		}
	}
}

// TestEvalCompiledBatchedMatchesEvalCompiled pins the batched path's
// decision identity: across testcase counts spanning the chunk boundaries,
// budgets that reject early, mid-chunk and never, and candidates with
// branches, faults and undefined reads, EvalCompiledBatched must produce
// the same Result as EvalCompiled — bit for bit, including TestsRun — and
// drive the adaptive-order counters identically.
func TestEvalCompiledBatchedMatchesEvalCompiled(t *testing.T) {
	target := x64.MustParse("movq rdi, rax\nimulq rsi, rax")
	spec := compiledSpec()
	candidates := []*x64.Program{
		target,
		x64.MustParse("movq rsi, rax\nimulq rdi, rax"),
		x64.MustParse("movq rdi, rax"),
		x64.MustParse("xorq rax, rax"),
		x64.MustParse("movq rbx, rax"),   // undef read
		x64.MustParse("movq (rdi), rax"), // sandbox fault on register inputs
		// Lane-divergent control flow: the jcc outcome varies per testcase.
		x64.MustParse("cmpq rsi, rdi\njae .L0\nmovq rsi, rax\nretq\n.L0:\nmovq rdi, rax"),
		// Divide faults on a data-dependent subset of testcases.
		x64.MustParse("movq rdi, rax\nxorq rdx, rdx\ndivq rsi\naddq rsi, rax"),
	}
	for _, ntests := range []int{1, 3, 5, 16, 33, 64} {
		tests, err := testgen.Generate(target, spec, ntests, rand.New(rand.NewSource(int64(73+ntests))))
		if err != nil {
			t.Fatal(err)
		}
		for _, budget := range []float64{MaxBudget, 500, 90, 1} {
			fs := New(tests, spec.LiveOut, Improved, 1)
			fb := New(tests, spec.LiveOut, Improved, 1)
			for ci, p := range candidates {
				p = p.Clone().PadTo(14)
				cs, cb := fs.Compile(p), fb.Compile(p)
				// Several rounds per candidate, so the rejection counters
				// (and eventually the order re-sorts) evolve under both
				// paths in lockstep.
				for round := 0; round < 3; round++ {
					want := fs.EvalCompiled(cs, budget)
					got := fb.EvalCompiledBatched(cb, budget)
					if want != got {
						t.Fatalf("|τ|=%d budget=%g candidate %d round %d: batched %+v, scalar %+v\n%s",
							ntests, budget, ci, round, got, want, p)
					}
				}
			}
			for i := range fs.rejects {
				if fs.rejects[i] != fb.rejects[i] {
					t.Fatalf("|τ|=%d budget=%g: rejection counters diverged at %d: scalar %v batched %v",
						ntests, budget, i, fs.rejects, fb.rejects)
				}
			}
			for i := range fs.order {
				if fs.order[i] != fb.order[i] {
					t.Fatalf("|τ|=%d budget=%g: adaptive orders diverged: scalar %v batched %v",
						ntests, budget, fs.order, fb.order)
				}
			}
		}
	}
}

// TestAdaptiveOrderFrontloadsDiscriminatingTests: a testcase that keeps
// triggering early termination must migrate to the front of the evaluation
// order, shrinking TestsRun for subsequent rejections.
func TestAdaptiveOrderFrontloadsDiscriminatingTests(t *testing.T) {
	live := testgen.LiveSet{GPRs: []testgen.LiveReg{{Reg: x64.RAX, Width: 8}}}
	// 32 testcases: rdi = 5 everywhere except the last, so the wrong
	// rewrite "movq 5, rax" is distinguished only by testcase 31.
	var tests []testgen.Testcase
	for i := 0; i < 32; i++ {
		in := &emu.Snapshot{FlagsDef: x64.AllFlags, RegDef: 0xffff}
		v := uint64(5)
		if i == 31 {
			v = ^uint64(0)
		}
		in.Regs[x64.RDI] = v
		tests = append(tests, testgen.Testcase{In: in, WantGPR: []uint64{v}})
	}
	f := New(tests, live, Strict, 0)
	wrong := x64.MustParse("movq 5, rax").PadTo(8)
	c := f.Compile(wrong)

	// Before any adaptation the discriminating testcase is last: a tight
	// budget makes every evaluation walk all 32 testcases.
	first := f.EvalCompiled(c, 1)
	if !first.Early || first.TestsRun != 32 {
		t.Fatalf("expected full-order rejection over 32 tests, got %+v", first)
	}
	for i := 0; i < 2*reorderEvery; i++ {
		f.EvalCompiled(c, 1)
	}
	after := f.EvalCompiled(c, 1)
	if !after.Early || after.TestsRun != 1 {
		t.Fatalf("adaptive order did not frontload the discriminating testcase: %+v", after)
	}
	// The order must remain a permutation of the testcase indices.
	seen := map[int]bool{}
	for _, ti := range f.order {
		if ti < 0 || ti >= len(tests) || seen[ti] {
			t.Fatalf("order is not a permutation: %v", f.order)
		}
		seen[ti] = true
	}
	// And a correct rewrite still scores zero over the permuted order.
	right := x64.MustParse("movq rdi, rax").PadTo(8)
	if res := f.EvalCompiled(f.Compile(right), MaxBudget); res.Cost != 0 || res.TestsRun != 32 {
		t.Fatalf("reordered evaluation broke a correct rewrite: %+v", res)
	}
}

// sharedFixture builds the 32-testcase set of the adaptive-order test:
// only testcase 31 distinguishes the wrong rewrite "movq 5, rax".
func sharedFixture() ([]testgen.Testcase, testgen.LiveSet) {
	live := testgen.LiveSet{GPRs: []testgen.LiveReg{{Reg: x64.RAX, Width: 8}}}
	var tests []testgen.Testcase
	for i := 0; i < 32; i++ {
		in := &emu.Snapshot{FlagsDef: x64.AllFlags, RegDef: 0xffff}
		v := uint64(5)
		if i == 31 {
			v = ^uint64(0)
		}
		in.Regs[x64.RDI] = v
		tests = append(tests, testgen.Testcase{In: in, WantGPR: []uint64{v}})
	}
	return tests, live
}

// TestSharedProfileWarmStartsSiblings: a chain that learned which testcase
// discriminates feeds the shared profile, and a freshly created sibling Fn
// starts with that testcase first instead of re-learning the order.
func TestSharedProfileWarmStartsSiblings(t *testing.T) {
	tests, live := sharedFixture()
	prof := NewSharedProfile(len(tests))
	wrong := x64.MustParse("movq 5, rax").PadTo(8)

	teacher := New(tests, live, Strict, 0)
	teacher.Shared = prof
	c := teacher.Compile(wrong)
	for i := 0; i < 2*reorderEvery; i++ {
		teacher.EvalCompiled(c, 1)
	}

	// A cold sibling without the profile walks all 32 testcases...
	cold := New(tests, live, Strict, 0)
	if res := cold.EvalCompiled(cold.Compile(wrong), 1); res.TestsRun != 32 {
		t.Fatalf("cold chain expected full scan, got %+v", res)
	}
	// ...while a profile-warmed sibling rejects after one.
	warm := New(tests, live, Strict, 0)
	warm.Shared = prof
	if res := warm.EvalCompiled(warm.Compile(wrong), 1); res.TestsRun != 1 {
		t.Fatalf("warm-started chain expected 1-test rejection, got %+v", res)
	}
	// The warm order is still a permutation and still scores a correct
	// rewrite at zero.
	right := x64.MustParse("movq rdi, rax").PadTo(8)
	if res := warm.EvalCompiled(warm.Compile(right), MaxBudget); res.Cost != 0 {
		t.Fatalf("warm order broke a correct rewrite: %+v", res)
	}
}

// TestSharedProfileOrderAndGrow pins Order determinism (stable ties in
// index order) and Grow preserving counts.
func TestSharedProfileOrderAndGrow(t *testing.T) {
	p := NewSharedProfile(4)
	p.Note(2)
	p.Note(2)
	p.Note(1)
	if got := p.Order(4); got[0] != 2 || got[1] != 1 || got[2] != 0 || got[3] != 3 {
		t.Fatalf("order = %v, want [2 1 0 3]", got)
	}
	p.Grow(6)
	p.Note(5)
	if got := p.Order(6); got[0] != 2 || got[1] != 1 || got[2] != 5 {
		t.Fatalf("order after grow = %v, want counts preserved and index 5 noted", got)
	}
	// Order over more testcases than the profile has counted treats the
	// excess as zero.
	if got := p.Order(8); len(got) != 8 {
		t.Fatalf("order length = %d, want 8", len(got))
	}
	// Notes beyond the profile's size are dropped, not panics.
	p.Note(100)
}

// TestAddTestEvaluatesFirst: a counterexample folded in mid-search keeps
// the learned order and evaluates first.
func TestAddTestEvaluatesFirst(t *testing.T) {
	tests, live := sharedFixture()
	f := New(tests[:31:31], live, Strict, 0) // drop the discriminating testcase
	wrong := x64.MustParse("movq 5, rax").PadTo(8)
	c := f.Compile(wrong)
	if res := f.EvalCompiled(c, MaxBudget); res.Cost != 0 {
		t.Fatalf("under-constrained τ must accept the wrong rewrite, got %+v", res)
	}
	f.AddTest(tests[31]) // the counterexample arrives
	res := f.EvalCompiled(c, 1)
	if !res.Early || res.TestsRun != 1 {
		t.Fatalf("folded counterexample must evaluate first: %+v", res)
	}
	if len(f.Tests) != 32 || len(f.order) != 32 || len(f.ms) != 32 {
		t.Fatalf("compiled state not extended: %d tests, %d order, %d machines",
			len(f.Tests), len(f.order), len(f.ms))
	}
	right := x64.MustParse("movq rdi, rax").PadTo(8)
	if res := f.EvalCompiled(f.Compile(right), MaxBudget); res.Cost != 0 || res.TestsRun != 32 {
		t.Fatalf("extended order broke a correct rewrite: %+v", res)
	}
}

// TestSharedProfileSerialisationRoundTrip: a profile rebuilt from its
// Counts snapshot must reproduce the same warm-start testcase order in
// another process — the property the rewrite store relies on when it
// persists learned rejection profiles.
func TestSharedProfileSerialisationRoundTrip(t *testing.T) {
	prof := NewSharedProfile(10)
	// An uneven, tie-containing pattern: ties must keep natural order on
	// both sides of the round trip (Order is a stable sort).
	hits := []int{3, 3, 3, 7, 7, 1, 9, 9, 9, 9, 5, 5}
	for _, i := range hits {
		prof.Note(i)
	}
	counts := prof.Counts()
	if len(counts) != 10 {
		t.Fatalf("Counts length %d, want 10", len(counts))
	}

	restored := NewSharedProfileFromCounts(counts, 10)
	want := prof.Order(10)
	got := restored.Order(10)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("restored order %v != original %v", got, want)
		}
	}

	// Restoring into a larger testcase set: the extra testcases count as
	// zero and keep natural order behind the learned ones.
	grown := NewSharedProfileFromCounts(counts, 14)
	order := grown.Order(14)
	if order[0] != 9 || order[1] != 3 || order[2] != 5 {
		t.Fatalf("grown order lost learned prefix: %v", order)
	}
	// A restored profile stays live: further Notes keep accumulating.
	for i := 0; i < 8; i++ {
		grown.Note(12)
	}
	if got := grown.Order(14)[0]; got != 12 {
		t.Fatalf("restored profile ignored new notes: first=%d", got)
	}
}
