// Package cost implements the paper's cost functions (§3.1, §4.1–4.6) over
// the two-phase evaluation pipeline.
//
// The total cost of a candidate rewrite is
//
//	c(R;T) = eq'(R;T,τ) + perfWeight · H(R)
//
// where eq' is the testcase approximation of transformation correctness
// (Equation 8): per testcase, the Hamming distance between the rewrite's
// live outputs and the target's (Equations 9, 10, 15), plus weighted error
// counters for sandbox faults, divide faults and undefined reads (Equation
// 11). H is the static latency sum of Equation 13. Two sign conventions in
// the paper are normalised here: perf(R;T) is charged as +H(R) (dropping
// the constant H(T), which cannot affect the argmin, and orienting the term
// so faster code costs less), and the Metropolis acceptance uses the
// standard difference form exp(-β(c(R*)-c(R))), which is the form the
// paper's early-termination bound (Equation 14) is derived from.
//
// An Fn scores candidates through either of two paths:
//
//   - Eval interprets the program from scratch on one shared machine, the
//     seed implementation kept as the semantic reference.
//   - EvalCompiled scores a decode-once *emu.Compiled form (see emu's
//     Compile) on one machine pinned per testcase, so clean machines skip
//     snapshot restores, and visits testcases in an adaptively reordered
//     sequence: each testcase counts how often it was the one that pushed
//     the running cost over the early-termination bound (Equation 14), and
//     the most-discriminating testcases migrate to the front so bad
//     proposals are rejected after as few runs as possible. Reordering
//     never changes the accept/reject decision — per-testcase costs are
//     non-negative, so the running sum crosses the bound for some prefix
//     iff the total exceeds it — only how early evaluation stops.
//   - EvalCompiledBatched is EvalCompiled with the per-testcase runs
//     regrouped into emu.Batch lockstep sweeps: the adaptive order is cut
//     into geometrically growing chunks ({1, 3, 12, rest}), the leading
//     chunks run the scalar path verbatim so a discriminating testcase
//     still rejects a bad proposal after one or a few runs, and each later
//     chunk executes as one batch — dispatch, operand decode, and nf
//     selection paid once per slot instead of once per (slot, testcase).
//     Lanes are then scored in the adaptive order with the budget checked
//     after each, so the Result, the accept/reject decision, and the
//     rejection-profile stream are bit-identical to EvalCompiled; the only
//     difference is that a mid-chunk rejection has already run (but never
//     scores) the chunk's remaining lanes.
package cost

import (
	"math/bits"
	"sort"
	"sync/atomic"

	"repro/internal/emu"
	"repro/internal/perf"
	"repro/internal/testgen"
	"repro/internal/x64"
)

// SharedProfile aggregates per-testcase early-termination counts across
// every chain of one kernel, so a freshly created Fn can warm-start its
// adaptive testcase order from what sibling chains already learned instead
// of rediscovering the discriminating testcases from scratch.
//
// Counts are recorded with atomic increments, so concurrently running
// chains may Note freely. Order and Grow are not synchronised against
// Note: the search coordinator calls them only at barriers (chain creation
// and testcase broadcast), when no chain of the kernel is mid-segment —
// which also makes the warm-started orders deterministic for a fixed seed,
// because every count read happens at a schedule point rather than at a
// thread-timing-dependent one.
type SharedProfile struct {
	counts []atomic.Int64
}

// NewSharedProfile sizes a profile for n testcases.
func NewSharedProfile(n int) *SharedProfile {
	return &SharedProfile{counts: make([]atomic.Int64, n)}
}

// Note records that testcase i pushed an evaluation over its
// early-termination bound.
func (p *SharedProfile) Note(i int) {
	if p != nil && i < len(p.counts) {
		p.counts[i].Add(1)
	}
}

// Grow extends the profile to n testcases (counterexample broadcast adds
// testcases mid-search). Must not race with Note; see the type comment.
func (p *SharedProfile) Grow(n int) {
	if p == nil || n <= len(p.counts) {
		return
	}
	counts := make([]atomic.Int64, n)
	for i := range p.counts {
		counts[i].Store(p.counts[i].Load())
	}
	p.counts = counts
}

// Order returns testcase indices 0..n-1 sorted by descending count
// (stable, so untried testcases keep their natural order). Indices beyond
// the profile's size count as zero.
func (p *SharedProfile) Order(n int) []int {
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	at := func(i int) int64 {
		if i < len(p.counts) {
			return p.counts[i].Load()
		}
		return 0
	}
	sort.SliceStable(order, func(a, b int) bool {
		return at(order[a]) > at(order[b])
	})
	return order
}

// Counts snapshots the per-testcase counters — the stable serialisation of
// a profile, so a learned rejection profile can persist across processes
// (the rewrite store saves it with each entry and warm-starts later
// searches from it). Like Order and Grow it must only be called at a
// barrier, when no chain is mid-segment.
func (p *SharedProfile) Counts() []int64 {
	if p == nil {
		return nil
	}
	out := make([]int64, len(p.counts))
	for i := range p.counts {
		out[i] = p.counts[i].Load()
	}
	return out
}

// NewSharedProfileFromCounts rebuilds a profile from a Counts snapshot,
// sized to at least n testcases. A rebuilt profile reproduces the same
// Order as the one it was snapshotted from: Order is a pure (stable) sort
// of the counters, so equal counters mean equal warm-start testcase order.
func NewSharedProfileFromCounts(counts []int64, n int) *SharedProfile {
	if n < len(counts) {
		n = len(counts)
	}
	p := &SharedProfile{counts: make([]atomic.Int64, n)}
	for i, c := range counts {
		p.counts[i].Store(c)
	}
	return p
}

// Mode selects between the strict register/memory equality of Equations
// 9-10 and the improved "right value, wrong place" metric of Equation 15
// (§4.6, the ablation of Figure 7).
type Mode int

// Equality metric modes.
const (
	Strict Mode = iota
	Improved
)

// Weights are the error-term and misplacement weights (Figure 11).
type Weights struct {
	SegFault   float64 // wsf
	FloatFault float64 // wfp
	UndefRead  float64 // wur
	Misplace   float64 // wm
}

// PaperWeights are the constants from Figure 11.
var PaperWeights = Weights{SegFault: 1, FloatFault: 1, UndefRead: 2, Misplace: 3}

// Fn evaluates candidate rewrites against a testcase set. An Fn owns its
// emulators (one shared by the interpreted path, one pinned per testcase by
// the compiled path) and is not safe for concurrent use; each search thread
// builds its own (sharing the read-only testcases).
type Fn struct {
	Tests []testgen.Testcase
	Live  testgen.LiveSet
	Mode  Mode
	W     Weights

	// PerfWeight scales the performance term: 0 during synthesis (§4.4),
	// 1 during optimization.
	PerfWeight float64

	// Shared, when set, is the kernel-wide rejection profile: this Fn's
	// early terminations feed it, and the initial testcase order is drawn
	// from it instead of the natural order, warm-starting new chains with
	// the discriminating testcases sibling chains already found. Set it
	// before the first evaluation.
	Shared *SharedProfile

	m *emu.Machine

	// Compiled-path state: one machine pinned per testcase (so unchanged
	// snapshots reload for free), the adaptive evaluation order, and the
	// per-testcase early-termination counts that drive it.
	ms      []*emu.Machine
	order   []int
	rejects []int64
	evals   int

	// Batched-path scratch: the lockstep evaluator and the lane slice it
	// runs over, reused across evaluations.
	batch   emu.Batch
	batchMs []*emu.Machine

	// memGot/memOk are scratch for memCost: the candidate's live memory
	// bytes, resolved once per testcase so the Improved metric's rival
	// scan is O(n) byte lookups instead of O(n²).
	memGot []byte
	memOk  []bool

	// liveExit, when set (NewLive), makes Compile thread the kernel's
	// live-out register sets into the compiled form's register-liveness
	// pass, so dead register writes are suppressed. liveGPR/liveXMM are
	// the exit-gen bitmasks derived from Live.
	liveExit bool
	liveGPR  uint16
	liveXMM  uint16
}

// reorderEvery is how many compiled evaluations pass between re-sorts of
// the testcase order. Counts are halved at each re-sort so the ordering
// tracks the current region of the search space rather than its history.
const reorderEvery = 256

// New builds a cost function over the given testcases.
func New(tests []testgen.Testcase, live testgen.LiveSet, mode Mode, perfWeight float64) *Fn {
	return &Fn{
		Tests:      tests,
		Live:       live,
		Mode:       mode,
		W:          PaperWeights,
		PerfWeight: perfWeight,
		m:          emu.New(),
	}
}

// NewLive builds a cost function whose Compile threads the kernel's
// live-out register sets into the compiled form's register-liveness pass
// (emu.CompileLive): candidate writes to registers the live set cannot
// observe are suppressed, leaving whatever value the register held. The
// equality terms are unchanged — they only read live state — but the
// Improved metric's rival scan reads every GPR, so non-live register
// values (and with them the heuristic misplacement credit) may differ
// from New's. Accept/reject decisions on correct rewrites are identical.
//
// Whole registers are conservative: a GPR live at any width keeps all 64
// bits live, so partial-width live-outs never expose a suppressed upper
// half.
func NewLive(tests []testgen.Testcase, live testgen.LiveSet, mode Mode, perfWeight float64) *Fn {
	f := New(tests, live, mode, perfWeight)
	f.liveExit = true
	for _, lr := range live.GPRs {
		f.liveGPR |= 1 << lr.Reg
	}
	for _, xr := range live.Xmms {
		f.liveXMM |= 1 << xr
	}
	return f
}

// Result reports one evaluation.
type Result struct {
	Cost float64
	// EqCost is the testcase-equality portion of Cost (zero means the
	// rewrite agreed with the target on every testcase).
	EqCost float64
	// TestsRun counts testcases evaluated before early termination — the
	// quantity plotted in Figure 5.
	TestsRun int
	// Early reports that evaluation stopped because Cost exceeded the
	// caller's bound (Equation 14), guaranteeing rejection.
	Early bool
}

// MaxBudget disables early termination.
const MaxBudget = 1e18

// Eval computes the cost of p, stopping early once the running total
// exceeds budget (the caller's maximum acceptable cost per Equation 14).
func (f *Fn) Eval(p *x64.Program, budget float64) Result {
	var res Result
	if f.PerfWeight != 0 {
		res.Cost = f.PerfWeight * perf.H(p)
		if res.Cost > budget {
			res.Early = true
			return res
		}
	}
	for i := range f.Tests {
		tc := &f.Tests[i]
		res.EqCost += f.evalOne(p, tc)
		res.TestsRun++
		if res.Cost+res.EqCost > budget {
			// Record the early termination on the interpreted path too:
			// without this, stoke.WithInterpretedEval runs never feed the
			// kernel-wide rejection profile (or this Fn's own counters),
			// so sibling and later chains would warm-start from nothing.
			f.noteReject(i)
			res.Cost += res.EqCost
			res.Early = true
			return res
		}
	}
	res.Cost += res.EqCost
	return res
}

// noteReject records that testcase ti pushed an evaluation over its bound,
// in this Fn's own adaptive-order counters (when built) and the shared
// kernel-wide profile. Both evaluation paths funnel through it.
func (f *Fn) noteReject(ti int) {
	if ti < len(f.rejects) {
		f.rejects[ti]++
	}
	f.Shared.Note(ti)
}

// Compile lowers p into the decode-once form EvalCompiled scores. The
// returned form references p: mutate p, then emu.Compiled.Patch the touched
// slots (or Recompile) before re-evaluating. Under NewLive the compiled
// form suppresses register writes the kernel's live-out set cannot observe.
func (f *Fn) Compile(p *x64.Program) *emu.Compiled {
	if f.liveExit {
		return emu.CompileLive(p, f.liveGPR, f.liveXMM)
	}
	return emu.Compile(p)
}

// EvalCompiled computes the cost of a compiled candidate, stopping early
// once the running total exceeds budget. It agrees with Eval on the
// resulting cost and accept/reject decision; testcases are visited in the
// adaptive order described in the package comment, so TestsRun (and the
// order-dependent floating-point rounding of partial sums) may differ.
func (f *Fn) EvalCompiled(c *emu.Compiled, budget float64) Result {
	var res Result
	if f.PerfWeight != 0 {
		// StaticLatency is the patch-maintained perf.H of the compiled
		// program (latencies are integral, so the incremental sum is
		// exact).
		res.Cost = f.PerfWeight * c.StaticLatency()
		if res.Cost > budget {
			res.Early = true
			return res
		}
	}
	f.ensureCompiledState()
	for _, ti := range f.order {
		tc := &f.Tests[ti]
		m := f.ms[ti]
		m.LoadSnapshotCached(tc.In)
		out := m.RunCompiled(c)
		res.EqCost += f.score(m, tc, out)
		res.TestsRun++
		if res.Cost+res.EqCost > budget {
			f.noteReject(ti)
			res.Cost += res.EqCost
			res.Early = true
			f.noteEval()
			return res
		}
	}
	res.Cost += res.EqCost
	f.noteEval()
	return res
}

// batchChunk returns the size of the evaluation chunk starting at position
// pos of the adaptive order, clamped to the n-pos testcases left. The
// schedule is geometric — {1, 3, 12, rest} — so the head of the order keeps
// today's one-testcase early-exit granularity while the bulk of a full
// evaluation runs as a single lockstep sweep.
func batchChunk(pos, n int) int {
	var size int
	switch pos {
	case 0:
		size = 1
	case 1:
		size = 3
	case 4:
		size = 12
	default:
		size = n - pos
	}
	if size > n-pos {
		size = n - pos
	}
	return size
}

// batchScalarMax is the largest chunk the batched path still runs through
// the scalar loop: below this width the lockstep loop's per-slot lane
// bookkeeping costs more than the dispatch it amortises.
const batchScalarMax = 4

// EvalCompiledBatched computes the cost of a compiled candidate through the
// batched lockstep evaluator. It is decision-identical to EvalCompiled —
// same Result (including TestsRun and floating-point rounding, because
// lanes are scored in the same adaptive order), same rejection-profile
// updates — but runs the tail of a full evaluation as emu.Batch sweeps, so
// per-slot dispatch is paid once per chunk instead of once per testcase.
func (f *Fn) EvalCompiledBatched(c *emu.Compiled, budget float64) Result {
	var res Result
	if f.PerfWeight != 0 {
		res.Cost = f.PerfWeight * c.StaticLatency()
		if res.Cost > budget {
			res.Early = true
			return res
		}
	}
	f.ensureCompiledState()
	n := len(f.order)
	for pos := 0; pos < n; {
		size := batchChunk(pos, n)
		if size > batchScalarMax {
			// Load and run the whole chunk in lockstep; lanes past a
			// mid-chunk rejection have then run but are never scored.
			lanes := f.batchMs[:0]
			for _, ti := range f.order[pos : pos+size] {
				m := f.ms[ti]
				m.LoadSnapshotCached(f.Tests[ti].In)
				lanes = append(lanes, m)
			}
			f.batchMs = lanes
			outs := f.batch.Run(c, lanes)
			for k, ti := range f.order[pos : pos+size] {
				res.EqCost += f.score(f.ms[ti], &f.Tests[ti], outs[k])
				res.TestsRun++
				if res.Cost+res.EqCost > budget {
					f.noteReject(ti)
					res.Cost += res.EqCost
					res.Early = true
					f.noteEval()
					return res
				}
			}
		} else {
			for _, ti := range f.order[pos : pos+size] {
				tc := &f.Tests[ti]
				m := f.ms[ti]
				m.LoadSnapshotCached(tc.In)
				out := m.RunCompiled(c)
				res.EqCost += f.score(m, tc, out)
				res.TestsRun++
				if res.Cost+res.EqCost > budget {
					f.noteReject(ti)
					res.Cost += res.EqCost
					res.Early = true
					f.noteEval()
					return res
				}
			}
		}
		pos += size
	}
	res.Cost += res.EqCost
	f.noteEval()
	return res
}

// ensureCompiledState sizes the per-testcase machines and the adaptive
// order to the current testcase set.
func (f *Fn) ensureCompiledState() {
	if len(f.ms) == len(f.Tests) {
		return
	}
	f.ms = make([]*emu.Machine, len(f.Tests))
	for i := range f.ms {
		f.ms[i] = emu.New()
	}
	if f.Shared != nil {
		f.order = f.Shared.Order(len(f.Tests))
	} else {
		f.order = make([]int, len(f.Tests))
		for i := range f.order {
			f.order[i] = i
		}
	}
	f.rejects = make([]int64, len(f.Tests))
	f.evals = 0
}

// AddTest folds one refinement testcase into the set mid-search. The
// compiled-path state is extended in place rather than rebuilt: the
// learned order of the existing testcases is preserved, and the new
// testcase evaluates first — a counterexample is by construction the most
// discriminating testcase known.
func (f *Fn) AddTest(tc testgen.Testcase) {
	f.Tests = append(f.Tests, tc)
	if f.ms == nil {
		return // compiled state not built yet; sized on first evaluation
	}
	f.ms = append(f.ms, emu.New())
	f.order = append([]int{len(f.Tests) - 1}, f.order...)
	f.rejects = append(f.rejects, 0)
}

// Agreement counts the testcases of f on which p's live outputs agree
// exactly with the expected outputs (per-testcase cost zero under f's
// mode). It is the observed-output breadth feature of the pre-verification
// gate: a candidate agreeing on every testcase is τ-correct and worth a
// proof now; narrow agreement predicts a NotEqual and argues for deferral.
// Runs on the interpreted path and touches neither the adaptive order nor
// the shared rejection profile.
func (f *Fn) Agreement(p *x64.Program) int {
	n := 0
	for i := range f.Tests {
		if f.evalOne(p, &f.Tests[i]) == 0 {
			n++
		}
	}
	return n
}

// noteEval counts one compiled evaluation and periodically re-sorts the
// testcase order by descending early-termination count (stable, so ties
// keep their current relative order), decaying the counts afterwards.
func (f *Fn) noteEval() {
	f.evals++
	if f.evals%reorderEvery != 0 {
		return
	}
	sort.SliceStable(f.order, func(i, j int) bool {
		return f.rejects[f.order[i]] > f.rejects[f.order[j]]
	})
	for i := range f.rejects {
		f.rejects[i] /= 2
	}
}

// evalOne runs p on one testcase and scores its live outputs.
func (f *Fn) evalOne(p *x64.Program, tc *testgen.Testcase) float64 {
	f.m.LoadSnapshot(tc.In)
	out := f.m.Run(p)
	return f.score(f.m, tc, out)
}

// score converts one execution's outcome and final machine state into the
// testcase's cost term; it is shared by the interpreted and compiled paths.
func (f *Fn) score(m *emu.Machine, tc *testgen.Testcase, out emu.Outcome) float64 {
	var c float64
	if out.SigSegv|out.SigFpe|out.Undef != 0 {
		c = f.W.SegFault*float64(out.SigSegv) +
			f.W.FloatFault*float64(out.SigFpe) +
			f.W.UndefRead*float64(out.Undef)
	}
	if out.Exhaust {
		// A sequence that exhausts the step budget cannot be scored
		// meaningfully; charge it like a fault.
		c += f.W.SegFault
	}

	// Live register outputs (Equations 9 / 15).
	for li, lr := range f.Live.GPRs {
		want := tc.WantGPR[li]
		c += f.regCost(m, want, lr)
	}
	for li, xr := range f.Live.Xmms {
		c += f.xmmCost(m, tc.WantXmm[li], xr)
	}

	// Live flags: one bit each.
	if f.Live.Flags != 0 {
		got := m.Flags & f.Live.Flags
		c += float64(bits.OnesCount8(uint8(got ^ tc.WantFlags)))
	}

	// Live memory outputs (Equation 10 and its improved analogue).
	c += f.memCost(m, tc)
	return c
}

// regCost scores one live GPR output.
func (f *Fn) regCost(m *emu.Machine, want uint64, lr testgen.LiveReg) float64 {
	mask := widthMask(lr.Width)
	correct := float64(bits.OnesCount64((want ^ m.Regs[lr.Reg]) & mask))
	if f.Mode == Strict {
		return correct
	}
	// Improved metric (Equation 15): the best-matching register of the
	// same bit width, with a misplacement penalty when it is not the right
	// one. A rival register costs at least the misplacement penalty, so a
	// right-place match at least that good cannot be beaten — the common
	// case near convergence, where the scan would be pure overhead.
	if correct <= f.W.Misplace {
		return correct
	}
	best := correct
	for r := x64.Reg(0); r < x64.NumGPR; r++ {
		if r == lr.Reg {
			continue
		}
		d := float64(bits.OnesCount64((want^m.Regs[r])&mask)) + f.W.Misplace
		if d < best {
			best = d
		}
	}
	return best
}

// xmmCost scores one live XMM output.
func (f *Fn) xmmCost(m *emu.Machine, want [2]uint64, xr x64.Reg) float64 {
	ham := func(v [2]uint64) float64 {
		return float64(bits.OnesCount64(want[0]^v[0]) + bits.OnesCount64(want[1]^v[1]))
	}
	correct := ham(m.Xmm[xr])
	if f.Mode == Strict {
		return correct
	}
	if correct <= f.W.Misplace {
		return correct
	}
	best := correct
	for r := x64.Reg(0); r < x64.NumXMM; r++ {
		if r == xr {
			continue
		}
		d := ham(m.Xmm[r]) + f.W.Misplace
		if d < best {
			best = d
		}
	}
	return best
}

// memCost scores the live memory outputs of one testcase. Every live byte
// is resolved through the machine once, so the Improved metric's rival scan
// works over the cached bytes instead of re-walking the segment tables.
func (f *Fn) memCost(m *emu.Machine, tc *testgen.Testcase) float64 {
	n := len(tc.WantMem)
	if n == 0 {
		return 0
	}
	if cap(f.memGot) < n {
		f.memGot = make([]byte, n)
		f.memOk = make([]bool, n)
	}
	got, okv := f.memGot[:n], f.memOk[:n]
	for i, mc := range tc.WantMem {
		got[i], _, okv[i] = m.MemByte(mc.Addr)
	}
	total := 0.0
	for i, mc := range tc.WantMem {
		var correct float64
		if okv[i] {
			correct = float64(bits.OnesCount8(got[i] ^ mc.Want))
		} else {
			correct = 8
		}
		if f.Mode == Strict || correct <= f.W.Misplace {
			total += correct
			continue
		}
		// Improved analogue of Equation 15 for memory: accept the right
		// byte at another live memory location, at a misplacement penalty.
		best := correct
		for j := range tc.WantMem {
			if j == i || !okv[j] {
				continue
			}
			d := float64(bits.OnesCount8(got[j]^mc.Want)) + f.W.Misplace
			if d < best {
				best = d
			}
		}
		total += best
	}
	return total
}

func widthMask(w uint8) uint64 {
	switch w {
	case 1:
		return 0xff
	case 2:
		return 0xffff
	case 4:
		return 0xffffffff
	}
	return ^uint64(0)
}
