package cost

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/testgen"
	"repro/internal/x64"
)

// BenchmarkEvalFullWidth isolates the full-τ evaluation regime the batched
// path targets: no early termination, every testcase runs on every call.
func BenchmarkEvalFullWidth(b *testing.B) {
	target := x64.MustParse("movq rdi, rax\nimulq rsi, rax")
	spec := compiledSpec()
	// A dense candidate: 50 live ALU slots, the execution-bound regime of a
	// wandering optimization chain.
	src := "movq rdi, rax\n"
	for i := 0; i < 48; i++ {
		switch i % 4 {
		case 0:
			src += "addq rsi, rax\n"
		case 1:
			src += "xorq rdi, rcx\n"
		case 2:
			src += "movq rax, rdx\n"
		case 3:
			src += "subq 3, rcx\n"
		}
	}
	src += "addq rcx, rax"
	cand := x64.MustParse(src)
	for _, ntests := range []int{16, 32, 64} {
		tests, err := testgen.Generate(target, spec, ntests, rand.New(rand.NewSource(71)))
		if err != nil {
			b.Fatal(err)
		}
		f := New(tests, spec.LiveOut, Improved, 1)
		c := f.Compile(cand)
		b.Run(fmt.Sprintf("scalar/tau=%d", ntests), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				f.EvalCompiled(c, MaxBudget)
			}
		})
		b.Run(fmt.Sprintf("batched/tau=%d", ntests), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				f.EvalCompiledBatched(c, MaxBudget)
			}
		})
	}
}
