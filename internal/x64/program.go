package x64

import (
	"fmt"
	"strings"
)

// Program is a loop-free sequence of instructions. Candidate rewrites keep a
// fixed physical length ℓ (the dimensionality constant from §4.3) and
// represent shorter programs with UNUSED tokens; parsed targets are packed.
type Program struct {
	Insts []Inst
}

// NewProgram returns a program of n UNUSED slots.
func NewProgram(n int) *Program {
	p := &Program{Insts: make([]Inst, n)}
	for i := range p.Insts {
		p.Insts[i] = Unused()
	}
	return p
}

// Clone returns a deep copy of p.
func (p *Program) Clone() *Program {
	q := &Program{Insts: make([]Inst, len(p.Insts))}
	copy(q.Insts, p.Insts)
	return q
}

// Len returns the number of physical instruction slots.
func (p *Program) Len() int { return len(p.Insts) }

// InstCount returns the number of live (non-UNUSED, non-LABEL) instructions,
// the length measure used when the paper reports "16 lines shorter".
func (p *Program) InstCount() int {
	n := 0
	for _, in := range p.Insts {
		if in.Op != UNUSED && in.Op != LABEL && in.Op != RET {
			n++
		}
	}
	return n
}

// MaxLabel returns the largest label id mentioned by p, or -1 if none.
func (p *Program) MaxLabel() int32 {
	max := int32(-1)
	for _, in := range p.Insts {
		for i := uint8(0); i < in.N; i++ {
			if in.Opd[i].Kind == KindLabel && in.Opd[i].Label > max {
				max = in.Opd[i].Label
			}
		}
	}
	return max
}

// LabelIndex returns a map from label id to the slot index of its LABEL
// pseudo-instruction.
func (p *Program) LabelIndex() map[int32]int {
	m := make(map[int32]int)
	for i, in := range p.Insts {
		if in.Op == LABEL {
			m[in.Opd[0].Label] = i
		}
	}
	return m
}

// Validate checks every instruction and the control-flow discipline: every
// referenced label must be defined exactly once, and, because candidate
// programs are loop-free (§1), every jump must target a label at a strictly
// later slot.
func (p *Program) Validate() error {
	labels := make(map[int32]int)
	for i, in := range p.Insts {
		if in.Op == LABEL {
			if prev, dup := labels[in.Opd[0].Label]; dup {
				return fmt.Errorf("x64: label .L%d defined at both %d and %d",
					in.Opd[0].Label, prev, i)
			}
			labels[in.Opd[0].Label] = i
		}
	}
	for i, in := range p.Insts {
		if err := in.Validate(); err != nil {
			return fmt.Errorf("inst %d: %w", i, err)
		}
		if in.Op == JMP || in.Op == Jcc {
			target, ok := labels[in.Opd[0].Label]
			if !ok {
				return fmt.Errorf("x64: inst %d jumps to undefined label .L%d",
					i, in.Opd[0].Label)
			}
			if target <= i {
				return fmt.Errorf("x64: inst %d jumps backwards to .L%d (loops are out of scope)",
					i, in.Opd[0].Label)
			}
		}
	}
	return nil
}

// Registers read before being written, over a straight-line approximation
// (all paths). Useful for sanity-checking declared live-in sets.
func (p *Program) UpwardExposedGPRs() RegSet {
	var written, exposed RegSet
	for _, in := range p.Insts {
		e := EffectsOf(in)
		exposed |= e.GPRRead &^ written
		written |= e.GPRWrite
	}
	return exposed
}

// WrittenGPRs returns every general purpose register any instruction writes.
func (p *Program) WrittenGPRs() RegSet {
	var w RegSet
	for _, in := range p.Insts {
		w |= EffectsOf(in).GPRWrite
	}
	return w
}

// String renders the program as assembly text, omitting UNUSED slots.
func (p *Program) String() string {
	var b strings.Builder
	for _, in := range p.Insts {
		if in.Op == UNUSED {
			continue
		}
		if in.Op == LABEL {
			fmt.Fprintf(&b, "%s\n", in.String())
			continue
		}
		fmt.Fprintf(&b, "  %s\n", in.String())
	}
	return b.String()
}

// Packed returns a copy of p with UNUSED slots removed.
func (p *Program) Packed() *Program {
	q := &Program{}
	for _, in := range p.Insts {
		if in.Op != UNUSED {
			q.Insts = append(q.Insts, in)
		}
	}
	return q
}

// PadTo returns a copy of p padded with UNUSED slots to exactly n slots.
// If p already has n or more slots it is cloned unchanged.
func (p *Program) PadTo(n int) *Program {
	q := p.Clone()
	for len(q.Insts) < n {
		q.Insts = append(q.Insts, Unused())
	}
	return q
}
