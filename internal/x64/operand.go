package x64

import (
	"fmt"
	"strings"
)

// OperandKind discriminates the payload of an Operand.
type OperandKind uint8

// Operand kinds.
const (
	KindNone  OperandKind = iota
	KindReg               // general purpose register view (Width 1,2,4,8)
	KindXmm               // 128-bit XMM register
	KindImm               // immediate constant
	KindMem               // memory reference disp(base,index,scale)
	KindLabel             // branch target label
)

func (k OperandKind) String() string {
	switch k {
	case KindNone:
		return "none"
	case KindReg:
		return "reg"
	case KindXmm:
		return "xmm"
	case KindImm:
		return "imm"
	case KindMem:
		return "mem"
	case KindLabel:
		return "label"
	}
	return fmt.Sprintf("OperandKind(%d)", uint8(k))
}

// Operand is a single instruction operand. It is a plain value type (no
// pointers, no interfaces) so that instructions can be copied and mutated on
// the MCMC hot path without allocation.
//
// Field usage by kind:
//
//	KindReg:   Reg, Width (1,2,4,8)
//	KindXmm:   Reg, Width=16
//	KindImm:   Imm, Width (operand-size context, usually of its consumer)
//	KindMem:   Base, Index, Scale, Disp, Width (access size)
//	KindLabel: Label
type Operand struct {
	Kind  OperandKind
	Width uint8 // access/view width in bytes: 1, 2, 4, 8 or 16
	Reg   Reg   // register id for KindReg / KindXmm
	Base  Reg   // memory base register, NoReg if absent
	Index Reg   // memory index register, NoReg if absent
	Scale uint8 // memory index scale: 1, 2, 4 or 8
	Disp  int32 // memory displacement
	Imm   int64 // immediate payload
	Label int32 // label id for KindLabel
}

// R returns a GPR operand of the given width in bytes.
func R(r Reg, width uint8) Operand { return Operand{Kind: KindReg, Reg: r, Width: width} }

// R64 returns a 64-bit register operand.
func R64(r Reg) Operand { return R(r, 8) }

// R32 returns a 32-bit register operand.
func R32(r Reg) Operand { return R(r, 4) }

// R16 returns a 16-bit register operand.
func R16(r Reg) Operand { return R(r, 2) }

// R8L returns an 8-bit (low byte) register operand.
func R8L(r Reg) Operand { return R(r, 1) }

// X returns an XMM register operand.
func X(r Reg) Operand { return Operand{Kind: KindXmm, Reg: r, Width: 16} }

// Imm returns an immediate operand with the given operand-size context.
func Imm(v int64, width uint8) Operand { return Operand{Kind: KindImm, Imm: v, Width: width} }

// Mem returns a memory operand disp(base) with the given access width.
func Mem(base Reg, disp int32, width uint8) Operand {
	return Operand{Kind: KindMem, Base: base, Index: NoReg, Scale: 1, Disp: disp, Width: width}
}

// MemSIB returns a memory operand disp(base,index,scale).
func MemSIB(base, index Reg, scale uint8, disp int32, width uint8) Operand {
	return Operand{Kind: KindMem, Base: base, Index: index, Scale: scale, Disp: disp, Width: width}
}

// LabelRef returns a label-reference operand for branches.
func LabelRef(id int32) Operand { return Operand{Kind: KindLabel, Label: id} }

// IsReg reports whether o is a GPR operand.
func (o Operand) IsReg() bool { return o.Kind == KindReg }

// IsMem reports whether o is a memory operand.
func (o Operand) IsMem() bool { return o.Kind == KindMem }

// IsImm reports whether o is an immediate operand.
func (o Operand) IsImm() bool { return o.Kind == KindImm }

// IsXmm reports whether o is an XMM register operand.
func (o Operand) IsXmm() bool { return o.Kind == KindXmm }

// String renders the operand in the paper's AT&T-flavoured syntax.
func (o Operand) String() string {
	switch o.Kind {
	case KindNone:
		return "<none>"
	case KindReg:
		return GPRName(o.Reg, o.Width)
	case KindXmm:
		return XMMName(o.Reg)
	case KindImm:
		if o.Imm < 0 || o.Imm < 4096 {
			return fmt.Sprintf("%d", o.Imm)
		}
		return fmt.Sprintf("0x%x", uint64(o.Imm))
	case KindMem:
		var b strings.Builder
		if o.Disp != 0 {
			fmt.Fprintf(&b, "%d", o.Disp)
		}
		b.WriteByte('(')
		if o.Base != NoReg {
			b.WriteString(GPRName(o.Base, 8))
		}
		if o.Index != NoReg {
			b.WriteByte(',')
			b.WriteString(GPRName(o.Index, 8))
			fmt.Fprintf(&b, ",%d", o.Scale)
		}
		b.WriteByte(')')
		return b.String()
	case KindLabel:
		return fmt.Sprintf(".L%d", o.Label)
	}
	return "<bad operand>"
}

// Cond is a condition code for Jcc, SETcc and CMOVcc instructions.
type Cond uint8

// Condition codes. The predicate of each in terms of status flags follows
// the Intel SDM.
const (
	CondNone Cond = iota
	CondE         // equal: ZF
	CondNE        // not equal: !ZF
	CondA         // unsigned above: !CF && !ZF
	CondAE        // unsigned above or equal: !CF
	CondB         // unsigned below: CF
	CondBE        // unsigned below or equal: CF || ZF
	CondG         // signed greater: !ZF && SF==OF
	CondGE        // signed greater or equal: SF==OF
	CondL         // signed less: SF!=OF
	CondLE        // signed less or equal: ZF || SF!=OF
	CondS         // sign: SF
	CondNS        // not sign: !SF
	CondO         // overflow: OF
	CondNO        // not overflow: !OF
	CondP         // parity: PF
	CondNP        // not parity: !PF
	NumConds
)

var condNames = [NumConds]string{
	CondNone: "", CondE: "e", CondNE: "ne", CondA: "a", CondAE: "ae",
	CondB: "b", CondBE: "be", CondG: "g", CondGE: "ge", CondL: "l",
	CondLE: "le", CondS: "s", CondNS: "ns", CondO: "o", CondNO: "no",
	CondP: "p", CondNP: "np",
}

func (c Cond) String() string {
	if c < NumConds {
		return condNames[c]
	}
	return fmt.Sprintf("cc%d", uint8(c))
}

// condAliases maps accepted spellings (including synonyms) to codes.
var condAliases = map[string]Cond{
	"e": CondE, "z": CondE,
	"ne": CondNE, "nz": CondNE,
	"a": CondA, "nbe": CondA,
	"ae": CondAE, "nb": CondAE, "nc": CondAE,
	"b": CondB, "c": CondB, "nae": CondB,
	"be": CondBE, "na": CondBE,
	"g": CondG, "nle": CondG,
	"ge": CondGE, "nl": CondGE,
	"l": CondL, "nge": CondL,
	"le": CondLE, "ng": CondLE,
	"s": CondS, "ns": CondNS,
	"o": CondO, "no": CondNO,
	"p": CondP, "pe": CondP, "np": CondNP, "po": CondNP,
}

// LookupCond resolves a condition-code suffix spelling such as "ae" or "nz".
func LookupCond(s string) (Cond, bool) {
	c, ok := condAliases[s]
	return c, ok
}

// FlagsReadByCond returns the set of status flags a condition inspects.
func FlagsReadByCond(c Cond) FlagSet {
	switch c {
	case CondE, CondNE:
		return ZF
	case CondA, CondBE:
		return CF | ZF
	case CondAE, CondB:
		return CF
	case CondG, CondLE:
		return ZF | SF | OF
	case CondGE, CondL:
		return SF | OF
	case CondS, CondNS:
		return SF
	case CondO, CondNO:
		return OF
	case CondP, CondNP:
		return PF
	}
	return 0
}

// EvalCond evaluates condition c against a concrete flag valuation.
func EvalCond(c Cond, flags FlagSet) bool {
	cf := flags&CF != 0
	pf := flags&PF != 0
	zf := flags&ZF != 0
	sf := flags&SF != 0
	of := flags&OF != 0
	switch c {
	case CondE:
		return zf
	case CondNE:
		return !zf
	case CondA:
		return !cf && !zf
	case CondAE:
		return !cf
	case CondB:
		return cf
	case CondBE:
		return cf || zf
	case CondG:
		return !zf && sf == of
	case CondGE:
		return sf == of
	case CondL:
		return sf != of
	case CondLE:
		return zf || sf != of
	case CondS:
		return sf
	case CondNS:
		return !sf
	case CondO:
		return of
	case CondNO:
		return !of
	case CondP:
		return pf
	case CondNP:
		return !pf
	}
	return false
}
