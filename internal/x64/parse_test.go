package x64

import (
	"strings"
	"testing"
)

func TestParseMontgomeryRewrite(t *testing.T) {
	// The STOKE rewrite from Figure 1 (right column).
	src := `
.L0
  shlq 32, rcx
  mov edx, edx
  xorq rdx, rcx
  movq rcx, rax
  mulq rsi
  addq r8, rdi
  adcq 0, rdx
  addq rdi, rax
  adcq 0, rdx
  movq rdx, r8
  movq rax, rdi
`
	p, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if got := p.InstCount(); got != 11 {
		t.Fatalf("InstCount = %d, want 11 (paper: 11-instruction kernel)", got)
	}
	// Round trip.
	q, err := Parse(p.String())
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, p.String())
	}
	if p.String() != q.String() {
		t.Fatalf("round trip mismatch:\n%s\nvs\n%s", p.String(), q.String())
	}
}

func TestParseGccO3Montgomery(t *testing.T) {
	// Figure 1 (left column), gcc -O3, with the .set constants.
	src := `
.set c0 0xffffffff
.set c1 0x100000000
.L0
  movq rsi, r9
  mov ecx, ecx
  shrq 32, rsi
  andl c0, r9d
  movq rcx, rax
  mov edx, edx
  imulq r9, rax
  imulq rdx, r9
  imulq rsi, rdx
  imulq rsi, rcx
  addq rdx, rax
  jae .L2
  movabsq c1, rdx
  addq rdx, rcx
.L2
  movq rax, rsi
  movq rax, rdx
  shrq 32, rsi
  salq 32, rdx
  addq rsi, rcx
  addq r9, rdx
  adcq 0, rcx
  addq r8, rdx
  adcq 0, rcx
  addq rdi, rdx
  adcq 0, rcx
  movq rcx, r8
  movq rdx, rdi
`
	p, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if got := p.InstCount(); got != 27 {
		t.Fatalf("InstCount = %d, want 27", got)
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestParseConditionFamilies(t *testing.T) {
	cases := []struct {
		src  string
		op   Opcode
		cc   Cond
		want string
	}{
		{"sete dl", SETcc, CondE, "sete dl"},
		{"setb al", SETcc, CondB, "setb al"},
		{"cmovel esi, ecx", CMOVcc, CondE, "cmovel esi, ecx"},
		{"cmovle rax, rbx", CMOVcc, CondLE, "cmovleq rax, rbx"},
		{"cmovneq r8, r9", CMOVcc, CondNE, "cmovneq r8, r9"},
		{"jae .L2\n.L2", Jcc, CondAE, ""},
		{"jnz .L1\n.L1", Jcc, CondNE, ""},
	}
	for _, c := range cases {
		p, err := Parse(c.src)
		if err != nil {
			t.Errorf("Parse(%q): %v", c.src, err)
			continue
		}
		in := p.Insts[0]
		if in.Op != c.op || in.CC != c.cc {
			t.Errorf("Parse(%q) = op %v cc %v, want %v/%v", c.src, in.Op, in.CC, c.op, c.cc)
		}
		if c.want != "" && in.String() != c.want {
			t.Errorf("String(%q) = %q, want %q", c.src, in.String(), c.want)
		}
	}
}

func TestParseSSE(t *testing.T) {
	src := `
  movd edi, xmm0
  shufps 0, xmm0, xmm0
  movups (rsi,rcx,4), xmm1
  pmullw xmm1, xmm0
  movups (rdx,rcx,4), xmm1
  paddw xmm1, xmm0
  movups xmm0, (rsi,rcx,4)
`
	p, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if p.InstCount() != 7 {
		t.Fatalf("InstCount = %d, want 7", p.InstCount())
	}
	if p.Insts[0].Op != MOVD {
		t.Errorf("inst 0 op = %v, want MOVD", p.Insts[0].Op)
	}
	if p.Insts[2].Op != MOVUPS || !p.Insts[2].Opd[0].IsMem() {
		t.Errorf("inst 2 = %v, want movups load", p.Insts[2])
	}
	if p.Insts[6].Op != MOVUPS || !p.Insts[6].Opd[1].IsMem() {
		t.Errorf("inst 6 = %v, want movups store", p.Insts[6])
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"bogus rax, rbx",               // unknown mnemonic
		"movq eax, ebx",                // suffix disagrees with width
		"shlq cl, rax, rbx",            // arity
		"shlb bl, al",                  // shift count must be cl
		"jmp .Lmissing",                // undefined label
		".L0\njmp .L0",                 // backward jump
		"movl (rax,rsp,4), ecx",        // rsp cannot index
		"addq 1(,,) , rax",             // malformed memory
		"movq 0x1ffffffffff(rax), rbx", // displacement range
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestParseBackwardJumpRejected(t *testing.T) {
	if _, err := Parse(".L0\naddq rax, rbx\njmp .L0"); err == nil ||
		!strings.Contains(err.Error(), "backwards") {
		t.Fatalf("want backwards-jump error, got %v", err)
	}
}

func TestEffectsOf(t *testing.T) {
	cases := []struct {
		src       string
		wantRead  RegSet
		wantWrite RegSet
		flagsW    FlagSet
		memR      bool
		memW      bool
	}{
		{"addq rax, rbx", RegSet(0).With(RAX).With(RBX), RegSet(0).With(RBX), AllFlags, false, false},
		{"movq rax, rbx", RegSet(0).With(RAX), RegSet(0).With(RBX), 0, false, false},
		{"mulq rsi", RegSet(0).With(RAX).With(RSI), RegSet(0).With(RAX).With(RDX), AllFlags, false, false},
		{"movq (rdi), rax", RegSet(0).With(RDI), RegSet(0).With(RAX), 0, true, false},
		{"movq rax, (rdi)", RegSet(0).With(RAX).With(RDI), 0, 0, false, true},
		{"leaq 4(rsi,rcx,4), r8", RegSet(0).With(RSI).With(RCX), RegSet(0).With(R8), 0, false, false},
		{"movb al, bl", RegSet(0).With(RAX).With(RBX), RegSet(0).With(RBX), 0, false, false},
		{"incl eax", RegSet(0).With(RAX), RegSet(0).With(RAX), PF | ZF | SF | OF, false, false},
	}
	for _, c := range cases {
		p, err := Parse(c.src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", c.src, err)
		}
		e := EffectsOf(p.Insts[0])
		if e.GPRRead != c.wantRead {
			t.Errorf("%q reads %v, want %v", c.src, e.GPRRead, c.wantRead)
		}
		if e.GPRWrite != c.wantWrite {
			t.Errorf("%q writes %v, want %v", c.src, e.GPRWrite, c.wantWrite)
		}
		if e.FlagsWrit != c.flagsW {
			t.Errorf("%q writes flags %v, want %v", c.src, e.FlagsWrit, c.flagsW)
		}
		if e.MemRead != c.memR || e.MemWrite != c.memW {
			t.Errorf("%q mem r/w = %v/%v, want %v/%v", c.src, e.MemRead, e.MemWrite, c.memR, c.memW)
		}
	}
}

func TestNumSignatures(t *testing.T) {
	n := NumSignatures()
	// The paper describes a vocabulary of a few hundred opcode variants; our
	// subset should land in the same order of magnitude.
	if n < 250 {
		t.Fatalf("NumSignatures = %d, want >= 250", n)
	}
	t.Logf("instruction vocabulary: %d opcode/signature pairs", n)
}

// TestPrintParseRoundTripRandom checks that every random proposable
// instruction survives a print/parse round trip unchanged — the printer and
// parser are exact inverses over the search vocabulary.
func TestPrintParseRoundTripRandom(t *testing.T) {
	rng := newTestRand(99)
	made := 0
	for i := 0; i < 20000 && made < 5000; i++ {
		in, ok := randomInstForTest(rng)
		if !ok {
			continue
		}
		made++
		text := in.String()
		p, err := Parse(text)
		if err != nil {
			t.Fatalf("Parse(%q): %v", text, err)
		}
		got := p.Insts[0]
		if got.String() != text {
			t.Fatalf("round trip: %q -> %q", text, got.String())
		}
	}
	if made < 1000 {
		t.Fatalf("only generated %d instructions", made)
	}
}
