package x64

import (
	"fmt"
	"strings"
)

// Inst is a single instruction: an opcode, an optional condition code and up
// to three operands in AT&T order (sources before destination). Inst is a
// plain value type so the MCMC sampler can copy and mutate candidates
// without allocating.
type Inst struct {
	Op  Opcode
	CC  Cond
	N   uint8 // operand count
	Opd [3]Operand
}

// MakeInst builds an instruction from an opcode and operands.
func MakeInst(op Opcode, operands ...Operand) Inst {
	var in Inst
	in.Op = op
	in.N = uint8(len(operands))
	copy(in.Opd[:], operands)
	return in
}

// MakeCCInst builds a condition-code-carrying instruction (jcc, setcc,
// cmovcc).
func MakeCCInst(op Opcode, cc Cond, operands ...Operand) Inst {
	in := MakeInst(op, operands...)
	in.CC = cc
	return in
}

// Unused returns the distinguished UNUSED token (§4.3), which stands for an
// empty instruction slot in a fixed-length candidate sequence.
func Unused() Inst { return Inst{Op: UNUSED} }

// IsUnused reports whether the instruction is the UNUSED token.
func (in Inst) IsUnused() bool { return in.Op == UNUSED }

// Operands returns the populated operand slice (aliasing the instruction's
// backing array; callers must not hold it across mutation).
func (in *Inst) Operands() []Operand { return in.Opd[:in.N] }

// Validate checks the instruction against the opcode table: its operands
// must match one of the opcode's signatures, condition codes must appear
// exactly on cc-carrying opcodes, and fixed-register constraints (shift
// counts in CL) must hold.
func (in Inst) Validate() error {
	info := Info(in.Op)
	if in.Op == BAD || in.Op >= NumOpcodes {
		return fmt.Errorf("x64: invalid opcode %d", in.Op)
	}
	if info.HasCC {
		if in.CC == CondNone || in.CC >= NumConds {
			return fmt.Errorf("x64: %s requires a condition code", info.Name)
		}
	} else if in.CC != CondNone {
		return fmt.Errorf("x64: %s does not take a condition code", info.Name)
	}
	s, ok := MatchSig(in.Op, in.Opd[:in.N])
	if !ok {
		return fmt.Errorf("x64: no signature of %s matches %s", info.Name, in.String())
	}
	// Immediate operands must carry the signature's context width (the
	// symbolic validator builds constants at that width).
	ctxWidth := uint8(8)
	for i := uint8(0); i < s.N; i++ {
		if w := TokWidth(s.Slot[i]); w != 0 && w != 16 {
			ctxWidth = w
		}
	}
	for i := uint8(0); i < in.N; i++ {
		if in.Opd[i].Kind == KindImm && in.Opd[i].Width != ctxWidth {
			return fmt.Errorf("x64: immediate width %d does not match context %d in %s",
				in.Opd[i].Width, ctxWidth, in.String())
		}
	}
	// Shift-by-register forms require the count in CL.
	if isShiftFamily(in.Op) && in.N == 2 && in.Opd[0].Kind == KindReg && in.Opd[0].Width == 1 {
		if in.Opd[0].Reg != RCX {
			return fmt.Errorf("x64: register shift count must be cl, got %s", in.Opd[0])
		}
	}
	// Memory operands must have sane scale and 64-bit base/index.
	for i := uint8(0); i < in.N; i++ {
		o := in.Opd[i]
		if o.Kind != KindMem {
			continue
		}
		switch o.Scale {
		case 1, 2, 4, 8:
		default:
			return fmt.Errorf("x64: bad scale %d in %s", o.Scale, in.String())
		}
		if o.Base == NoReg && o.Index == NoReg {
			return fmt.Errorf("x64: absolute memory operand %s not supported", o)
		}
		if o.Base != NoReg && o.Base >= NumGPR {
			return fmt.Errorf("x64: bad base register in %s", in.String())
		}
		if o.Index != NoReg && (o.Index >= NumGPR || o.Index == RSP) {
			return fmt.Errorf("x64: bad index register in %s", in.String())
		}
	}
	_ = s
	return nil
}

func isShiftFamily(op Opcode) bool {
	switch op {
	case SHL, SHR, SAR, ROL, ROR:
		return true
	}
	return false
}

// Effects describes the dataflow footprint of one instruction: the register,
// flag and memory locations it reads and writes. Partial-width register
// writes (8- and 16-bit destinations merge into the old value, and 32-bit
// writes zero the upper half but still target the full register) count the
// destination as read where hardware semantics require the old value.
type Effects struct {
	GPRRead   RegSet
	GPRWrite  RegSet
	XMMRead   uint16
	XMMWrite  uint16
	FlagsRead FlagSet
	FlagsWrit FlagSet
	MemRead   bool
	MemWrite  bool
}

// addOperandReads folds the registers an operand mentions for addressing or
// as a source into e.
func (e *Effects) addOperandReads(o Operand) {
	switch o.Kind {
	case KindReg:
		e.GPRRead = e.GPRRead.With(o.Reg)
	case KindXmm:
		e.XMMRead |= 1 << o.Reg
	case KindMem:
		if o.Base != NoReg {
			e.GPRRead = e.GPRRead.With(o.Base)
		}
		if o.Index != NoReg {
			e.GPRRead = e.GPRRead.With(o.Index)
		}
	}
}

// EffectsOf computes the dataflow footprint of in.
func EffectsOf(in Inst) Effects {
	var e Effects
	info := Info(in.Op)
	if in.Op == UNUSED || in.Op == LABEL || in.Op == RET {
		return e
	}
	e.GPRRead = info.ImplReads
	e.GPRWrite = info.ImplWrites
	e.FlagsRead = info.FlagsRead
	e.FlagsWrit = info.FlagsWrite
	if info.HasCC {
		e.FlagsRead |= FlagsReadByCond(in.CC)
	}
	if info.ImplMem {
		e.MemRead = in.Op == POP
		e.MemWrite = in.Op == PUSH
	}
	for i := int8(0); i < int8(in.N); i++ {
		o := in.Opd[i]
		isDst := i == info.DstSlot
		if info.BothRW {
			isDst = true
		}
		if !isDst || info.DstRead || info.BothRW {
			e.addOperandReads(o)
			if o.Kind == KindMem && (!isDst || info.DstRead) {
				e.MemRead = true
			}
		}
		if isDst {
			switch o.Kind {
			case KindReg:
				e.GPRWrite = e.GPRWrite.With(o.Reg)
				// Narrow writes merge with the old register value.
				if o.Width < 4 {
					e.GPRRead = e.GPRRead.With(o.Reg)
				}
			case KindXmm:
				e.XMMWrite |= 1 << o.Reg
			case KindMem:
				// Address registers are reads even for a pure store.
				if o.Base != NoReg {
					e.GPRRead = e.GPRRead.With(o.Base)
				}
				if o.Index != NoReg {
					e.GPRRead = e.GPRRead.With(o.Index)
				}
				e.MemWrite = true
			}
		}
	}
	// LEA only computes an address: it reads no memory.
	if in.Op == LEA {
		e.MemRead = false
	}
	return e
}

// widthSuffix returns the AT&T mnemonic suffix for a width in bytes.
func widthSuffix(w uint8) string {
	switch w {
	case 1:
		return "b"
	case 2:
		return "w"
	case 4:
		return "l"
	case 8:
		return "q"
	}
	return ""
}

// String renders the instruction in the paper's AT&T-flavoured syntax, e.g.
// "movq rsi, r9", "adcq 0, rdx", "jae .L2", ".L0:".
func (in Inst) String() string {
	info := Info(in.Op)
	switch in.Op {
	case UNUSED:
		return "# unused"
	case LABEL:
		return fmt.Sprintf(".L%d:", in.Opd[0].Label)
	case RET:
		return "retq"
	case BAD:
		return "# bad"
	}
	var b strings.Builder
	b.WriteString(info.Name)
	if info.HasCC {
		b.WriteString(in.CC.String())
	}
	b.WriteString(mnemonicSuffix(in))
	for i := uint8(0); i < in.N; i++ {
		if i == 0 {
			b.WriteByte(' ')
		} else {
			b.WriteString(", ")
		}
		b.WriteString(in.Opd[i].String())
	}
	return b.String()
}

// mnemonicSuffix picks the width suffix to print for an instruction. SSE
// opcodes, label-only opcodes and opcodes whose register operands already
// determine the width print no suffix except where the paper's style always
// carries one (plain integer ALU ops).
func mnemonicSuffix(in Inst) string {
	info := Info(in.Op)
	switch in.Op {
	case MOVZX, MOVSX:
		// AT&T encodes both widths: movzbl, movswq, ...
		return widthSuffix(in.Opd[0].Width) + widthSuffix(in.Opd[1].Width)
	case JMP, Jcc, SETcc, MOVABS, BSWAP,
		MOVD, MOVQX, MOVUPS, MOVAPS, SHUFPS, PSHUFD,
		PADDW, PADDD, PADDQ, PSUBW, PSUBD, PMULLW, PMULLD,
		PAND, POR, PXOR, PSLLD, PSRLD, PSLLQ, PSRLQ:
		return ""
	}
	// Use the width of the destination (or sole/last operand).
	slot := info.DstSlot
	if slot < 0 {
		slot = int8(in.N) - 1
	}
	if slot < 0 || slot >= int8(in.N) {
		return ""
	}
	o := in.Opd[slot]
	if o.Kind == KindXmm {
		return ""
	}
	return widthSuffix(o.Width)
}
