// Package x64 defines the 64-bit x86 subset ISA used throughout the
// repository: registers, operands, opcodes, instructions, programs, and an
// AT&T-flavoured parser and printer matching the listings in the STOKE paper
// (operands in source, destination order; no % or $ sigils required).
//
// The subset is large enough to express every code sequence printed in the
// paper (Figures 1, 13, 14 and 15) and every rewrite the search proposes:
// all sixteen general purpose registers with 8/16/32/64-bit views, sixteen
// 128-bit XMM registers, the five arithmetic status flags, and roughly 340
// opcode/width signatures drawn from the integer and fixed-point SSE
// instruction groups.
package x64

import "fmt"

// Reg identifies a general purpose register (0-15, hardware encoding order)
// or an XMM register (0-15 in a separate namespace selected by the operand
// kind). The zero value is RAX; use NoReg for "absent".
type Reg uint8

// General purpose registers in hardware encoding order.
const (
	RAX Reg = iota
	RCX
	RDX
	RBX
	RSP
	RBP
	RSI
	RDI
	R8
	R9
	R10
	R11
	R12
	R13
	R14
	R15

	// NumGPR is the number of general purpose registers.
	NumGPR = 16

	// NoReg marks an absent base or index register in a memory operand.
	NoReg Reg = 0xFF
)

// XMM registers use the same 0-15 identifiers; operand kind distinguishes
// them from GPRs.
const (
	XMM0 Reg = iota
	XMM1
	XMM2
	XMM3
	XMM4
	XMM5
	XMM6
	XMM7
	XMM8
	XMM9
	XMM10
	XMM11
	XMM12
	XMM13
	XMM14
	XMM15

	// NumXMM is the number of XMM registers.
	NumXMM = 16
)

var gprNames = [4][16]string{
	// width 1 (low byte; high-byte forms ah..bh are intentionally omitted)
	{"al", "cl", "dl", "bl", "spl", "bpl", "sil", "dil",
		"r8b", "r9b", "r10b", "r11b", "r12b", "r13b", "r14b", "r15b"},
	// width 2
	{"ax", "cx", "dx", "bx", "sp", "bp", "si", "di",
		"r8w", "r9w", "r10w", "r11w", "r12w", "r13w", "r14w", "r15w"},
	// width 4
	{"eax", "ecx", "edx", "ebx", "esp", "ebp", "esi", "edi",
		"r8d", "r9d", "r10d", "r11d", "r12d", "r13d", "r14d", "r15d"},
	// width 8
	{"rax", "rcx", "rdx", "rbx", "rsp", "rbp", "rsi", "rdi",
		"r8", "r9", "r10", "r11", "r12", "r13", "r14", "r15"},
}

func widthIndex(width uint8) int {
	switch width {
	case 1:
		return 0
	case 2:
		return 1
	case 4:
		return 2
	case 8:
		return 3
	}
	return -1
}

// GPRName returns the assembly name of r viewed at the given width in bytes
// (1, 2, 4 or 8), e.g. GPRName(RAX, 4) == "eax".
func GPRName(r Reg, width uint8) string {
	i := widthIndex(width)
	if i < 0 || r >= NumGPR {
		return fmt.Sprintf("gpr%d/%d?", r, width)
	}
	return gprNames[i][r]
}

// XMMName returns the assembly name of XMM register r.
func XMMName(r Reg) string {
	if r >= NumXMM {
		return fmt.Sprintf("xmm%d?", r)
	}
	return fmt.Sprintf("xmm%d", r)
}

// regByName maps every register spelling to (reg, width, isXmm).
var regByName = func() map[string]struct {
	reg   Reg
	width uint8
	xmm   bool
} {
	m := make(map[string]struct {
		reg   Reg
		width uint8
		xmm   bool
	})
	widths := [4]uint8{1, 2, 4, 8}
	for wi, names := range gprNames {
		for r, name := range names {
			m[name] = struct {
				reg   Reg
				width uint8
				xmm   bool
			}{Reg(r), widths[wi], false}
		}
	}
	for r := 0; r < NumXMM; r++ {
		m[fmt.Sprintf("xmm%d", r)] = struct {
			reg   Reg
			width uint8
			xmm   bool
		}{Reg(r), 16, true}
	}
	return m
}()

// LookupReg resolves a register spelling such as "eax", "r9d" or "xmm3".
// It reports the register id, its view width in bytes, whether it is an XMM
// register, and whether the name was recognised.
func LookupReg(name string) (r Reg, width uint8, xmm bool, ok bool) {
	e, ok := regByName[name]
	return e.reg, e.width, e.xmm, ok
}

// Flag identifies one of the five arithmetic status flags tracked by the
// emulator and validator.
type Flag uint8

// Status flags, as bit positions within a FlagSet.
const (
	FlagCF Flag = iota // carry
	FlagPF             // parity (of low byte)
	FlagZF             // zero
	FlagSF             // sign
	FlagOF             // overflow
	NumFlags
)

// FlagSet is a bitset of Flags.
type FlagSet uint8

// Flag set constants.
const (
	CF FlagSet = 1 << FlagCF
	PF FlagSet = 1 << FlagPF
	ZF FlagSet = 1 << FlagZF
	SF FlagSet = 1 << FlagSF
	OF FlagSet = 1 << FlagOF

	// AllFlags is the set of every tracked status flag.
	AllFlags = CF | PF | ZF | SF | OF
)

// Has reports whether f contains flag fl.
func (f FlagSet) Has(fl Flag) bool { return f&(1<<fl) != 0 }

// With returns f with flag fl added.
func (f FlagSet) With(fl Flag) FlagSet { return f | 1<<fl }

func (f Flag) String() string {
	switch f {
	case FlagCF:
		return "CF"
	case FlagPF:
		return "PF"
	case FlagZF:
		return "ZF"
	case FlagSF:
		return "SF"
	case FlagOF:
		return "OF"
	}
	return fmt.Sprintf("Flag(%d)", uint8(f))
}

func (f FlagSet) String() string {
	s := ""
	for fl := Flag(0); fl < NumFlags; fl++ {
		if f.Has(fl) {
			if s != "" {
				s += "|"
			}
			s += fl.String()
		}
	}
	if s == "" {
		return "∅"
	}
	return s
}

// RegSet is a bitset over the sixteen general purpose registers.
type RegSet uint16

// Has reports whether the set contains r.
func (s RegSet) Has(r Reg) bool { return r < NumGPR && s&(1<<r) != 0 }

// With returns s with r added.
func (s RegSet) With(r Reg) RegSet {
	if r >= NumGPR {
		return s
	}
	return s | 1<<r
}

// Union returns the union of s and t.
func (s RegSet) Union(t RegSet) RegSet { return s | t }

// Count returns the number of registers in the set.
func (s RegSet) Count() int {
	n := 0
	for s != 0 {
		s &= s - 1
		n++
	}
	return n
}

func (s RegSet) String() string {
	out := ""
	for r := Reg(0); r < NumGPR; r++ {
		if s.Has(r) {
			if out != "" {
				out += ","
			}
			out += GPRName(r, 8)
		}
	}
	if out == "" {
		return "{}"
	}
	return "{" + out + "}"
}
