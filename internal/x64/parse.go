package x64

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse reads assembly text in the paper's AT&T-flavoured listing style and
// returns the program. Accepted syntax, matching Figures 1/13/14/15:
//
//	# comment                      (also "//" comments)
//	.set name value                constant definition
//	.L0    or    .L0:              label definition
//	movq rsi, r9                   source, destination order
//	shlq 32, rcx                   immediates without $ (also accepted with)
//	movl (rsi,rcx,4), eax          disp(base,index,scale) memory operands
//	jae .L2                        forward branches
//
// Register names may carry an optional %. Mnemonic width suffixes (b/w/l/q)
// are optional whenever register operands determine the width.
func Parse(src string) (*Program, error) {
	p := &parser{
		consts: map[string]int64{},
		labels: map[string]int32{},
	}
	prog := &Program{}
	for lineno, raw := range strings.Split(src, "\n") {
		line := stripComment(raw)
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		insts, err := p.parseLine(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %q: %w", lineno+1, strings.TrimSpace(raw), err)
		}
		prog.Insts = append(prog.Insts, insts...)
	}
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	return prog, nil
}

// MustParse is Parse, panicking on error. Intended for statically-known
// kernel listings.
func MustParse(src string) *Program {
	p, err := Parse(src)
	if err != nil {
		panic("x64.MustParse: " + err.Error())
	}
	return p
}

func stripComment(line string) string {
	if i := strings.IndexByte(line, '#'); i >= 0 {
		line = line[:i]
	}
	if i := strings.Index(line, "//"); i >= 0 {
		line = line[:i]
	}
	return line
}

type parser struct {
	consts map[string]int64
	labels map[string]int32
}

func (p *parser) labelID(name string) int32 {
	if id, ok := p.labels[name]; ok {
		return id
	}
	id := int32(len(p.labels))
	p.labels[name] = id
	return id
}

func (p *parser) parseLine(line string) ([]Inst, error) {
	// Directives.
	if strings.HasPrefix(line, ".set ") {
		fields := strings.Fields(line)
		if len(fields) != 3 {
			return nil, fmt.Errorf("malformed .set")
		}
		v, err := parseInt(fields[2])
		if err != nil {
			return nil, fmt.Errorf(".set value: %w", err)
		}
		p.consts[fields[1]] = v
		return nil, nil
	}
	// Label definitions: ".L0" or ".L0:".
	if strings.HasPrefix(line, ".") && !strings.ContainsAny(line, " \t") {
		name := strings.TrimSuffix(line, ":")
		return []Inst{MakeInst(LABEL, LabelRef(p.labelID(name)))}, nil
	}

	// Instruction: mnemonic then comma-separated operands.
	mnemonic := line
	rest := ""
	if i := strings.IndexAny(line, " \t"); i >= 0 {
		mnemonic, rest = line[:i], strings.TrimSpace(line[i+1:])
	}
	var rawOpds []string
	if rest != "" {
		rawOpds = splitOperands(rest)
	}

	cands, ccParsed, err := p.resolveMnemonic(strings.ToLower(mnemonic))
	if err != nil {
		return nil, err
	}

	operands := make([]Operand, 0, 3)
	for _, ro := range rawOpds {
		o, err := p.parseOperand(ro)
		if err != nil {
			return nil, fmt.Errorf("operand %q: %w", ro, err)
		}
		operands = append(operands, o)
	}

	var lastErr error
	for _, c := range cands {
		in, err := finalize(c.op, c.cc, ccParsed, c.widths, operands)
		if err != nil {
			lastErr = err
			continue
		}
		return []Inst{in}, nil
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("unknown mnemonic %q", mnemonic)
	}
	return nil, lastErr
}

// candidate is one possible reading of a mnemonic.
type candidate struct {
	op     Opcode
	cc     Cond
	widths [2]uint8 // src/dst widths implied by suffixes (0 = unknown)
}

// baseMnemonics maps a base name (no suffix, no cc) to opcode candidates.
var baseMnemonics = map[string][]Opcode{
	"mov": {MOV, MOVQX}, "movabs": {MOVABS},
	"lea": {LEA}, "xchg": {XCHG}, "push": {PUSH}, "pop": {POP},
	"add": {ADD}, "adc": {ADC}, "sub": {SUB}, "sbb": {SBB},
	"cmp": {CMP}, "test": {TEST}, "neg": {NEG}, "inc": {INC}, "dec": {DEC},
	"imul": {IMUL, IMUL3, IMUL1}, "mul": {MUL}, "div": {DIV}, "idiv": {IDIV},
	"and": {AND}, "or": {OR}, "xor": {XOR}, "not": {NOT},
	"shl": {SHL}, "sal": {SHL}, "shr": {SHR}, "sar": {SAR},
	"rol": {ROL}, "ror": {ROR}, "shld": {SHLD}, "shrd": {SHRD},
	"popcnt": {POPCNT}, "bsf": {BSF}, "bsr": {BSR}, "bswap": {BSWAP}, "bt": {BT},
	"jmp": {JMP}, "ret": {RET},
	"movd": {MOVD}, "movups": {MOVUPS}, "movdqu": {MOVUPS}, "movaps": {MOVAPS},
	"movdqa": {MOVAPS},
	"shufps": {SHUFPS}, "pshufd": {PSHUFD},
	"paddw": {PADDW}, "paddd": {PADDD}, "paddq": {PADDQ},
	"psubw": {PSUBW}, "psubd": {PSUBD},
	"pmullw": {PMULLW}, "pmulld": {PMULLD},
	"pand": {PAND}, "por": {POR}, "pxor": {PXOR},
	"pslld": {PSLLD}, "psrld": {PSRLD}, "psllq": {PSLLQ}, "psrlq": {PSRLQ},
	"nop": {UNUSED},
}

func suffixWidth(c byte) uint8 {
	switch c {
	case 'b':
		return 1
	case 'w':
		return 2
	case 'l':
		return 4
	case 'q':
		return 8
	}
	return 0
}

// resolveMnemonic decodes a full mnemonic (possibly with width suffix and/or
// condition code) into opcode candidates.
func (p *parser) resolveMnemonic(m string) ([]candidate, bool, error) {
	var cands []candidate

	add := func(ops []Opcode, cc Cond, w0, w1 uint8) {
		for _, op := range ops {
			cands = append(cands, candidate{op: op, cc: cc, widths: [2]uint8{w0, w1}})
		}
	}

	// Exact base name (movups, shufps, jmp, ...).
	if ops, ok := baseMnemonics[m]; ok {
		add(ops, CondNone, 0, 0)
	}
	// Base name with one width suffix (movq, addl, ...).
	if n := len(m); n > 1 {
		if w := suffixWidth(m[n-1]); w != 0 {
			if ops, ok := baseMnemonics[m[:n-1]]; ok {
				add(ops, CondNone, 0, w)
			}
		}
	}
	// movz/movs with two width suffixes (movzbl, movslq, ...).
	if len(m) == 6 && (strings.HasPrefix(m, "movz") || strings.HasPrefix(m, "movs")) {
		w0, w1 := suffixWidth(m[4]), suffixWidth(m[5])
		if w0 != 0 && w1 != 0 && w0 < w1 {
			op := MOVZX
			if m[3] == 's' {
				op = MOVSX
			}
			add([]Opcode{op}, CondNone, w0, w1)
		}
	}

	// Condition-code families: cmovXX[w], setXX, jXX.
	ccParsed := false
	for _, fam := range []struct {
		prefix string
		op     Opcode
	}{{"cmov", CMOVcc}, {"set", SETcc}, {"j", Jcc}} {
		if !strings.HasPrefix(m, fam.prefix) || len(m) <= len(fam.prefix) {
			continue
		}
		rest := m[len(fam.prefix):]
		// Longest condition spelling first, optionally followed by one
		// width suffix (cmovel = cmove + l).
		for k := min(3, len(rest)); k >= 1; k-- {
			cc, ok := LookupCond(rest[:k])
			if !ok {
				continue
			}
			rem := rest[k:]
			switch {
			case rem == "":
				add([]Opcode{fam.op}, cc, 0, 0)
				ccParsed = true
			case len(rem) == 1 && suffixWidth(rem[0]) != 0 && fam.op == CMOVcc:
				add([]Opcode{fam.op}, cc, 0, suffixWidth(rem[0]))
				ccParsed = true
			}
			if ccParsed {
				break
			}
		}
	}

	if len(cands) == 0 {
		return nil, false, fmt.Errorf("unknown mnemonic %q", m)
	}
	return cands, ccParsed, nil
}

// finalize fixes unknown operand widths from suffix hints and neighbouring
// operands, then validates the instruction against the opcode table.
func finalize(op Opcode, cc Cond, _ bool, widths [2]uint8, operands []Operand) (Inst, error) {
	opds := make([]Operand, len(operands))
	copy(opds, operands)

	// AT&T one-operand shift forms ("sall (rdi)") shift by an implicit 1.
	if isShiftFamily(op) && len(opds) == 1 {
		opds = append([]Operand{Imm(1, 0)}, opds...)
	}

	suffix := widths[1]
	// movz/movs carry explicit src and dst widths.
	if (op == MOVZX || op == MOVSX) && widths[0] != 0 {
		if len(opds) == 2 {
			if opds[0].Kind == KindMem {
				opds[0].Width = widths[0]
			}
		}
		suffix = widths[1]
	}

	// Resolve unknown widths (imm and mem operands default to a GPR
	// operand's width, else to the suffix width). XMM operands give an
	// 8-byte context: SSE immediates are lane selectors and shift counts,
	// not 128-bit values.
	known := suffix
	sawXmm := false
	for _, o := range opds {
		if o.Kind == KindReg {
			known = o.Width
		}
		if o.Kind == KindXmm {
			sawXmm = true
		}
	}
	// SETcc writes a byte; shift counts are byte-sized immediates but take
	// the destination's width for signature purposes.
	if op == SETcc {
		known = 1
	}
	for i := range opds {
		if opds[i].Kind == KindLabel || opds[i].Kind == KindNone {
			continue
		}
		if opds[i].Width == 0 {
			w := suffix
			if w == 0 {
				w = known
			}
			if w == 0 && sawXmm {
				if opds[i].Kind == KindMem {
					// Memory beside an XMM register is a 128-bit access,
					// except for the explicit 32/64-bit lane moves.
					switch op {
					case MOVD:
						w = 4
					case MOVQX:
						w = 8
					default:
						w = 16
					}
				} else {
					// SSE immediates are lane selectors / shift counts.
					w = 8
				}
			}
			if w == 0 {
				// Bare push/jmp of an immediate has a natural default.
				if op == PUSH {
					w = 8
				} else {
					return Inst{}, fmt.Errorf("cannot infer operand width")
				}
			}
			opds[i].Width = w
		}
	}
	// A width suffix on the mnemonic must agree with the destination
	// register width for plain GPR forms (catches "movq eax, ebx").
	if suffix != 0 && op != MOVZX && op != MOVSX && op != MOVQX {
		info := Info(op)
		slot := info.DstSlot
		if slot >= 0 && int(slot) < len(opds) && opds[slot].Kind == KindReg &&
			opds[slot].Width != suffix {
			return Inst{}, fmt.Errorf("suffix width %d disagrees with %s",
				suffix*8, opds[slot])
		}
	}

	in := MakeCCInst(op, cc, opds...)
	if !Info(op).HasCC {
		in.CC = CondNone
	}
	if err := in.Validate(); err != nil {
		return Inst{}, err
	}
	return in, nil
}

// splitOperands splits "a, b, c" at top-level commas (commas inside
// parentheses belong to memory operands).
func splitOperands(s string) []string {
	var out []string
	depth := 0
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '(':
			depth++
		case ')':
			depth--
		case ',':
			if depth == 0 {
				out = append(out, strings.TrimSpace(s[start:i]))
				start = i + 1
			}
		}
	}
	out = append(out, strings.TrimSpace(s[start:]))
	return out
}

func (p *parser) parseOperand(s string) (Operand, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return Operand{}, fmt.Errorf("empty operand")
	}
	// Label reference.
	if strings.HasPrefix(s, ".") {
		return LabelRef(p.labelID(strings.TrimSuffix(s, ":"))), nil
	}
	// Register (with optional %).
	name := strings.TrimPrefix(s, "%")
	if r, w, xmm, ok := LookupReg(name); ok {
		if xmm {
			return X(r), nil
		}
		return R(r, w), nil
	}
	// Memory operand: [disp](base[,index[,scale]]).
	if i := strings.IndexByte(s, '('); i >= 0 && strings.HasSuffix(s, ")") {
		return p.parseMem(s, i)
	}
	// Immediate (optional $), possibly a .set constant.
	imm := strings.TrimPrefix(s, "$")
	if v, ok := p.consts[imm]; ok {
		return Imm(v, 0), nil
	}
	v, err := parseInt(imm)
	if err != nil {
		return Operand{}, err
	}
	return Imm(v, 0), nil
}

func (p *parser) parseMem(s string, open int) (Operand, error) {
	disp := int64(0)
	if open > 0 {
		d := s[:open]
		if v, ok := p.consts[d]; ok {
			disp = v
		} else {
			v, err := parseInt(d)
			if err != nil {
				return Operand{}, fmt.Errorf("displacement %q: %w", d, err)
			}
			disp = v
		}
	}
	inner := s[open+1 : len(s)-1]
	parts := strings.Split(inner, ",")
	o := Operand{Kind: KindMem, Base: NoReg, Index: NoReg, Scale: 1, Disp: int32(disp)}
	if disp != int64(int32(disp)) {
		return Operand{}, fmt.Errorf("displacement %d out of 32-bit range", disp)
	}
	reg := func(t string) (Reg, error) {
		t = strings.TrimPrefix(strings.TrimSpace(t), "%")
		r, w, xmm, ok := LookupReg(t)
		if !ok || xmm || w != 8 {
			return NoReg, fmt.Errorf("bad address register %q", t)
		}
		return r, nil
	}
	var err error
	if len(parts) >= 1 && strings.TrimSpace(parts[0]) != "" {
		if o.Base, err = reg(parts[0]); err != nil {
			return Operand{}, err
		}
	}
	if len(parts) >= 2 && strings.TrimSpace(parts[1]) != "" {
		if o.Index, err = reg(parts[1]); err != nil {
			return Operand{}, err
		}
	}
	if len(parts) >= 3 {
		sc, err := parseInt(strings.TrimSpace(parts[2]))
		if err != nil {
			return Operand{}, fmt.Errorf("scale: %w", err)
		}
		o.Scale = uint8(sc)
	}
	if len(parts) > 3 {
		return Operand{}, fmt.Errorf("malformed memory operand %q", s)
	}
	return o, nil
}

func parseInt(s string) (int64, error) {
	s = strings.TrimSpace(s)
	neg := false
	if strings.HasPrefix(s, "-") {
		neg = true
		s = s[1:]
	}
	var v uint64
	var err error
	if strings.HasPrefix(s, "0x") || strings.HasPrefix(s, "0X") {
		v, err = strconv.ParseUint(s[2:], 16, 64)
	} else {
		v, err = strconv.ParseUint(s, 10, 64)
	}
	if err != nil {
		return 0, fmt.Errorf("bad integer %q", s)
	}
	if neg {
		return -int64(v), nil
	}
	return int64(v), nil
}
