package x64

import "fmt"

// Opcode identifies an instruction mnemonic. Operand widths live in the
// operands themselves, so a single Opcode covers all width variants of a
// mnemonic (the paper's "nearly 400 64-bit X86 opcodes, some of which have
// as many as 10 variations" corresponds here to Opcode × signature pairs).
type Opcode uint16

// Opcodes. Pseudo-ops (LABEL, UNUSED, RET) carry no machine semantics:
// LABEL marks a branch target, UNUSED is the paper's distinguished token for
// programs shorter than the fixed sequence length ℓ, and RET terminates
// execution of a sequence.
const (
	BAD Opcode = iota

	// Pseudo-ops.
	UNUSED
	LABEL
	RET

	// Data movement.
	MOV
	MOVABS
	MOVZX
	MOVSX
	LEA
	XCHG
	PUSH
	POP
	CMOVcc

	// Integer arithmetic.
	ADD
	ADC
	SUB
	SBB
	CMP
	TEST
	NEG
	INC
	DEC
	IMUL  // two-operand form: imul src, dst
	IMUL3 // three-operand form: imul imm, src, dst
	IMUL1 // one-operand widening form: RDX:RAX = RAX * src
	MUL   // unsigned widening: RDX:RAX = RAX * src
	DIV   // unsigned divide of RDX:RAX
	IDIV  // signed divide of RDX:RAX

	// Logic.
	AND
	OR
	XOR
	NOT

	// Shifts and rotates.
	SHL
	SHR
	SAR
	ROL
	ROR
	SHLD
	SHRD

	// Bit manipulation.
	POPCNT
	BSF
	BSR
	BSWAP
	BT

	// Flag materialisation and control flow.
	SETcc
	JMP
	Jcc

	// SSE integer subset (fixed-point SSE group from §4.3).
	MOVD   // 32-bit move between GPR and XMM
	MOVQX  // 64-bit move between GPR and XMM
	MOVUPS // unaligned 128-bit load/store
	MOVAPS // xmm-to-xmm move
	SHUFPS // 32-bit lane shuffle, two-source form
	PSHUFD // 32-bit lane shuffle, one-source form
	PADDW
	PADDD
	PADDQ
	PSUBW
	PSUBD
	PMULLW
	PMULLD
	PAND
	POR
	PXOR
	PSLLD
	PSRLD
	PSLLQ
	PSRLQ

	NumOpcodes
)

// SigTok is a slot pattern within an instruction signature.
type SigTok uint8

// Signature slot tokens.
const (
	TokNone SigTok = iota
	TokR8
	TokR16
	TokR32
	TokR64
	TokX  // xmm register
	TokM8 // memory by access width
	TokM16
	TokM32
	TokM64
	TokM128
	TokI   // immediate (width from context)
	TokLbl // label reference
)

func (t SigTok) String() string {
	switch t {
	case TokNone:
		return "-"
	case TokR8:
		return "r8"
	case TokR16:
		return "r16"
	case TokR32:
		return "r32"
	case TokR64:
		return "r64"
	case TokX:
		return "xmm"
	case TokM8:
		return "m8"
	case TokM16:
		return "m16"
	case TokM32:
		return "m32"
	case TokM64:
		return "m64"
	case TokM128:
		return "m128"
	case TokI:
		return "imm"
	case TokLbl:
		return "label"
	}
	return fmt.Sprintf("tok%d", uint8(t))
}

// regTok maps a GPR width in bytes to its signature token.
func regTok(width uint8) SigTok {
	switch width {
	case 1:
		return TokR8
	case 2:
		return TokR16
	case 4:
		return TokR32
	case 8:
		return TokR64
	}
	return TokNone
}

// memTok maps a memory access width in bytes to its signature token.
func memTok(width uint8) SigTok {
	switch width {
	case 1:
		return TokM8
	case 2:
		return TokM16
	case 4:
		return TokM32
	case 8:
		return TokM64
	case 16:
		return TokM128
	}
	return TokNone
}

// TokWidth returns the operand width in bytes a token denotes (0 for
// immediates and labels, whose width comes from context).
func TokWidth(t SigTok) uint8 {
	switch t {
	case TokR8, TokM8:
		return 1
	case TokR16, TokM16:
		return 2
	case TokR32, TokM32:
		return 4
	case TokR64, TokM64:
		return 8
	case TokX, TokM128:
		return 16
	}
	return 0
}

// Sig is one accepted operand signature for an opcode, in AT&T order
// (sources before destination).
type Sig struct {
	N    uint8
	Slot [3]SigTok
}

func sig(toks ...SigTok) Sig {
	var s Sig
	s.N = uint8(len(toks))
	copy(s.Slot[:], toks)
	return s
}

// String renders the signature, e.g. "r64,r64".
func (s Sig) String() string {
	out := ""
	for i := uint8(0); i < s.N; i++ {
		if i > 0 {
			out += ","
		}
		out += s.Slot[i].String()
	}
	return out
}

// OpInfo is the static metadata for an opcode.
type OpInfo struct {
	Name string // base mnemonic, without width suffix or condition code
	Sigs []Sig  // accepted operand signatures

	// HasCC marks opcodes parameterised by a condition code (Jcc, SETcc,
	// CMOVcc); the code is stored in Inst.CC.
	HasCC bool

	// DstSlot is the operand slot written by the instruction (-1 if none).
	// DstRead marks read-modify-write destinations (e.g. add).
	DstSlot int8
	DstRead bool

	// BothRW marks xchg, whose two operands are both read and written.
	BothRW bool

	// Implicit register operands (e.g. mul reads and writes RAX/RDX, push
	// and pop use RSP and memory).
	ImplReads  RegSet
	ImplWrites RegSet
	ImplMem    bool // push/pop touch stack memory

	// Status flag behaviour. CondFlags marks shift-family opcodes that
	// leave flags unchanged when the (dynamic) count is zero.
	FlagsRead  FlagSet
	FlagsWrite FlagSet
	CondFlags  bool

	// Control flow.
	Jump bool

	// Proposable opcodes participate in MCMC instruction/opcode moves
	// (§4.3 restricts moves to arithmetic and fixed-point SSE opcodes;
	// control flow, pseudo-ops and the divide family are excluded).
	Proposable bool
}

// sigsRR builds same-width reg,reg signatures for each width in widths.
func sigsRR(widths ...uint8) []Sig {
	var out []Sig
	for _, w := range widths {
		out = append(out, sig(regTok(w), regTok(w)))
	}
	return out
}

// sigsALU builds the full two-operand ALU family: reg,reg + imm,reg +
// mem,reg + reg,mem + imm,mem for each width.
func sigsALU(widths ...uint8) []Sig {
	var out []Sig
	for _, w := range widths {
		r, m := regTok(w), memTok(w)
		out = append(out,
			sig(r, r), sig(TokI, r), sig(m, r), sig(r, m), sig(TokI, m))
	}
	return out
}

// sigsUnary builds one-operand reg + mem signatures for each width.
func sigsUnary(widths ...uint8) []Sig {
	var out []Sig
	for _, w := range widths {
		out = append(out, sig(regTok(w)), sig(memTok(w)))
	}
	return out
}

// sigsShift builds imm,reg + imm,mem + cl,reg signatures for each width.
func sigsShift(widths ...uint8) []Sig {
	var out []Sig
	for _, w := range widths {
		r, m := regTok(w), memTok(w)
		out = append(out, sig(TokI, r), sig(TokI, m), sig(TokR8, r))
	}
	return out
}

func sigsXX() []Sig { return []Sig{sig(TokX, TokX)} }

func sigsSSEALU() []Sig {
	return []Sig{sig(TokX, TokX), sig(TokM128, TokX)}
}

var allWidths = []uint8{1, 2, 4, 8}
var w16up = []uint8{2, 4, 8}

// opTable holds metadata for every opcode.
var opTable = [NumOpcodes]OpInfo{
	UNUSED: {Name: "unused", DstSlot: -1, Sigs: []Sig{sig()}},
	LABEL:  {Name: "label", DstSlot: -1, Sigs: []Sig{sig(TokLbl)}},
	RET:    {Name: "retq", DstSlot: -1, Sigs: []Sig{sig()}},

	MOV: {Name: "mov", Sigs: sigsALU(1, 2, 4, 8), DstSlot: 1,
		Proposable: true},
	MOVABS: {Name: "movabs", Sigs: []Sig{sig(TokI, TokR64)}, DstSlot: 1,
		Proposable: true},
	MOVZX: {Name: "movz", DstSlot: 1, Proposable: true,
		Sigs: []Sig{
			sig(TokR8, TokR16), sig(TokR8, TokR32), sig(TokR8, TokR64),
			sig(TokR16, TokR32), sig(TokR16, TokR64),
			sig(TokM8, TokR16), sig(TokM8, TokR32), sig(TokM8, TokR64),
			sig(TokM16, TokR32), sig(TokM16, TokR64),
		}},
	MOVSX: {Name: "movs", DstSlot: 1, Proposable: true,
		Sigs: []Sig{
			sig(TokR8, TokR16), sig(TokR8, TokR32), sig(TokR8, TokR64),
			sig(TokR16, TokR32), sig(TokR16, TokR64), sig(TokR32, TokR64),
			sig(TokM8, TokR16), sig(TokM8, TokR32), sig(TokM8, TokR64),
			sig(TokM16, TokR32), sig(TokM16, TokR64), sig(TokM32, TokR64),
		}},
	LEA: {Name: "lea", DstSlot: 1, Proposable: true,
		Sigs: []Sig{
			sig(TokM8, TokR32), sig(TokM8, TokR64),
			sig(TokM16, TokR32), sig(TokM16, TokR64),
			sig(TokM32, TokR32), sig(TokM32, TokR64),
			sig(TokM64, TokR32), sig(TokM64, TokR64),
		}},
	XCHG: {Name: "xchg", Sigs: sigsRR(1, 2, 4, 8), DstSlot: 1, BothRW: true},
	PUSH: {Name: "push", Sigs: []Sig{sig(TokR64), sig(TokI)}, DstSlot: -1,
		ImplReads: 0, ImplWrites: 0, ImplMem: true},
	POP:    {Name: "pop", Sigs: []Sig{sig(TokR64)}, DstSlot: 0, ImplMem: true},
	CMOVcc: {Name: "cmov", Sigs: sigsRR(2, 4, 8), DstSlot: 1, DstRead: true, HasCC: true, Proposable: true},

	ADD: {Name: "add", Sigs: sigsALU(1, 2, 4, 8), DstSlot: 1, DstRead: true,
		FlagsWrite: AllFlags, Proposable: true},
	ADC: {Name: "adc", Sigs: sigsALU(1, 2, 4, 8), DstSlot: 1, DstRead: true,
		FlagsRead: CF, FlagsWrite: AllFlags, Proposable: true},
	SUB: {Name: "sub", Sigs: sigsALU(1, 2, 4, 8), DstSlot: 1, DstRead: true,
		FlagsWrite: AllFlags, Proposable: true},
	SBB: {Name: "sbb", Sigs: sigsALU(1, 2, 4, 8), DstSlot: 1, DstRead: true,
		FlagsRead: CF, FlagsWrite: AllFlags, Proposable: true},
	CMP: {Name: "cmp", Sigs: sigsALU(1, 2, 4, 8), DstSlot: -1,
		FlagsWrite: AllFlags, Proposable: true},
	TEST: {Name: "test", DstSlot: -1, FlagsWrite: AllFlags, Proposable: true,
		Sigs: func() []Sig {
			var out []Sig
			for _, w := range allWidths {
				r, m := regTok(w), memTok(w)
				out = append(out, sig(r, r), sig(TokI, r), sig(r, m), sig(TokI, m))
			}
			return out
		}()},
	NEG: {Name: "neg", Sigs: sigsUnary(1, 2, 4, 8), DstSlot: 0, DstRead: true,
		FlagsWrite: AllFlags, Proposable: true},
	INC: {Name: "inc", Sigs: sigsUnary(1, 2, 4, 8), DstSlot: 0, DstRead: true,
		FlagsWrite: PF | ZF | SF | OF, Proposable: true},
	DEC: {Name: "dec", Sigs: sigsUnary(1, 2, 4, 8), DstSlot: 0, DstRead: true,
		FlagsWrite: PF | ZF | SF | OF, Proposable: true},
	IMUL: {Name: "imul", DstSlot: 1, DstRead: true, FlagsWrite: AllFlags,
		Proposable: true,
		Sigs: func() []Sig {
			var out []Sig
			for _, w := range w16up {
				out = append(out, sig(regTok(w), regTok(w)), sig(memTok(w), regTok(w)))
			}
			return out
		}()},
	IMUL3: {Name: "imul", DstSlot: 2, FlagsWrite: AllFlags, Proposable: true,
		Sigs: func() []Sig {
			var out []Sig
			for _, w := range w16up {
				out = append(out, sig(TokI, regTok(w), regTok(w)),
					sig(TokI, memTok(w), regTok(w)))
			}
			return out
		}()},
	IMUL1: {Name: "imul", DstSlot: -1, FlagsWrite: AllFlags,
		ImplReads: RegSet(0).With(RAX), ImplWrites: RegSet(0).With(RAX).With(RDX),
		Sigs: sigsUnary(4, 8), Proposable: true},
	MUL: {Name: "mul", DstSlot: -1, FlagsWrite: AllFlags,
		ImplReads: RegSet(0).With(RAX), ImplWrites: RegSet(0).With(RAX).With(RDX),
		Sigs: sigsUnary(4, 8), Proposable: true},
	DIV: {Name: "div", DstSlot: -1, FlagsWrite: AllFlags,
		ImplReads: RegSet(0).With(RAX).With(RDX), ImplWrites: RegSet(0).With(RAX).With(RDX),
		Sigs: sigsUnary(4, 8)},
	IDIV: {Name: "idiv", DstSlot: -1, FlagsWrite: AllFlags,
		ImplReads: RegSet(0).With(RAX).With(RDX), ImplWrites: RegSet(0).With(RAX).With(RDX),
		Sigs: sigsUnary(4, 8)},

	AND: {Name: "and", Sigs: sigsALU(1, 2, 4, 8), DstSlot: 1, DstRead: true,
		FlagsWrite: AllFlags, Proposable: true},
	OR: {Name: "or", Sigs: sigsALU(1, 2, 4, 8), DstSlot: 1, DstRead: true,
		FlagsWrite: AllFlags, Proposable: true},
	XOR: {Name: "xor", Sigs: sigsALU(1, 2, 4, 8), DstSlot: 1, DstRead: true,
		FlagsWrite: AllFlags, Proposable: true},
	NOT: {Name: "not", Sigs: sigsUnary(1, 2, 4, 8), DstSlot: 0, DstRead: true,
		Proposable: true},

	SHL: {Name: "shl", Sigs: sigsShift(1, 2, 4, 8), DstSlot: 1, DstRead: true,
		FlagsWrite: AllFlags, CondFlags: true, Proposable: true},
	SHR: {Name: "shr", Sigs: sigsShift(1, 2, 4, 8), DstSlot: 1, DstRead: true,
		FlagsWrite: AllFlags, CondFlags: true, Proposable: true},
	SAR: {Name: "sar", Sigs: sigsShift(1, 2, 4, 8), DstSlot: 1, DstRead: true,
		FlagsWrite: AllFlags, CondFlags: true, Proposable: true},
	ROL: {Name: "rol", Sigs: sigsShift(1, 2, 4, 8), DstSlot: 1, DstRead: true,
		FlagsWrite: CF | OF, CondFlags: true, Proposable: true},
	ROR: {Name: "ror", Sigs: sigsShift(1, 2, 4, 8), DstSlot: 1, DstRead: true,
		FlagsWrite: CF | OF, CondFlags: true, Proposable: true},
	SHLD: {Name: "shld", DstSlot: 2, DstRead: true,
		FlagsWrite: AllFlags, CondFlags: true, Proposable: true,
		Sigs: func() []Sig {
			var out []Sig
			for _, w := range w16up {
				out = append(out, sig(TokI, regTok(w), regTok(w)))
			}
			return out
		}()},
	SHRD: {Name: "shrd", DstSlot: 2, DstRead: true,
		FlagsWrite: AllFlags, CondFlags: true, Proposable: true,
		Sigs: func() []Sig {
			var out []Sig
			for _, w := range w16up {
				out = append(out, sig(TokI, regTok(w), regTok(w)))
			}
			return out
		}()},

	POPCNT: {Name: "popcnt", DstSlot: 1, FlagsWrite: AllFlags, Proposable: true,
		Sigs: func() []Sig {
			var out []Sig
			for _, w := range w16up {
				out = append(out, sig(regTok(w), regTok(w)), sig(memTok(w), regTok(w)))
			}
			return out
		}()},
	BSF: {Name: "bsf", Sigs: sigsRR(2, 4, 8), DstSlot: 1,
		FlagsWrite: AllFlags, Proposable: true},
	BSR: {Name: "bsr", Sigs: sigsRR(2, 4, 8), DstSlot: 1,
		FlagsWrite: AllFlags, Proposable: true},
	BSWAP: {Name: "bswap", Sigs: []Sig{sig(TokR32), sig(TokR64)},
		DstSlot: 0, DstRead: true, Proposable: true},
	BT: {Name: "bt", DstSlot: -1, FlagsWrite: CF, Proposable: true,
		Sigs: func() []Sig {
			var out []Sig
			for _, w := range w16up {
				out = append(out, sig(regTok(w), regTok(w)), sig(TokI, regTok(w)))
			}
			return out
		}()},

	SETcc: {Name: "set", Sigs: []Sig{sig(TokR8), sig(TokM8)}, DstSlot: 0,
		HasCC: true, Proposable: true},
	JMP: {Name: "jmp", Sigs: []Sig{sig(TokLbl)}, DstSlot: -1, Jump: true},
	Jcc: {Name: "j", Sigs: []Sig{sig(TokLbl)}, DstSlot: -1, HasCC: true, Jump: true},

	MOVD: {Name: "movd", DstSlot: 1, Proposable: true,
		Sigs: []Sig{sig(TokR32, TokX), sig(TokX, TokR32),
			sig(TokM32, TokX), sig(TokX, TokM32)}},
	MOVQX: {Name: "movq", DstSlot: 1, Proposable: true,
		Sigs: []Sig{sig(TokR64, TokX), sig(TokX, TokR64),
			sig(TokM64, TokX), sig(TokX, TokM64)}},
	MOVUPS: {Name: "movups", DstSlot: 1, Proposable: true,
		Sigs: []Sig{sig(TokM128, TokX), sig(TokX, TokM128), sig(TokX, TokX)}},
	MOVAPS: {Name: "movaps", Sigs: sigsXX(), DstSlot: 1, Proposable: true},
	SHUFPS: {Name: "shufps", Sigs: []Sig{sig(TokI, TokX, TokX)},
		DstSlot: 2, DstRead: true, Proposable: true},
	PSHUFD: {Name: "pshufd", Sigs: []Sig{sig(TokI, TokX, TokX)},
		DstSlot: 2, Proposable: true},
	PADDW:  {Name: "paddw", Sigs: sigsSSEALU(), DstSlot: 1, DstRead: true, Proposable: true},
	PADDD:  {Name: "paddd", Sigs: sigsSSEALU(), DstSlot: 1, DstRead: true, Proposable: true},
	PADDQ:  {Name: "paddq", Sigs: sigsSSEALU(), DstSlot: 1, DstRead: true, Proposable: true},
	PSUBW:  {Name: "psubw", Sigs: sigsSSEALU(), DstSlot: 1, DstRead: true, Proposable: true},
	PSUBD:  {Name: "psubd", Sigs: sigsSSEALU(), DstSlot: 1, DstRead: true, Proposable: true},
	PMULLW: {Name: "pmullw", Sigs: sigsSSEALU(), DstSlot: 1, DstRead: true, Proposable: true},
	PMULLD: {Name: "pmulld", Sigs: sigsSSEALU(), DstSlot: 1, DstRead: true, Proposable: true},
	PAND:   {Name: "pand", Sigs: sigsSSEALU(), DstSlot: 1, DstRead: true, Proposable: true},
	POR:    {Name: "por", Sigs: sigsSSEALU(), DstSlot: 1, DstRead: true, Proposable: true},
	PXOR:   {Name: "pxor", Sigs: sigsSSEALU(), DstSlot: 1, DstRead: true, Proposable: true},
	PSLLD:  {Name: "pslld", Sigs: []Sig{sig(TokI, TokX)}, DstSlot: 1, DstRead: true, Proposable: true},
	PSRLD:  {Name: "psrld", Sigs: []Sig{sig(TokI, TokX)}, DstSlot: 1, DstRead: true, Proposable: true},
	PSLLQ:  {Name: "psllq", Sigs: []Sig{sig(TokI, TokX)}, DstSlot: 1, DstRead: true, Proposable: true},
	PSRLQ:  {Name: "psrlq", Sigs: []Sig{sig(TokI, TokX)}, DstSlot: 1, DstRead: true, Proposable: true},
}

// Info returns the metadata for op.
func Info(op Opcode) *OpInfo {
	if op >= NumOpcodes {
		return &opTable[BAD]
	}
	return &opTable[op]
}

// PUSH and POP implicitly read and write RSP; set that up at init since the
// composite literal above keeps the table readable.
func init() {
	sp := RegSet(0).With(RSP)
	opTable[PUSH].ImplReads = sp
	opTable[PUSH].ImplWrites = sp
	opTable[POP].ImplReads = sp
	opTable[POP].ImplWrites = sp
}

// NumSignatures returns the total number of opcode/signature pairs in the
// ISA, i.e. the size of the instruction vocabulary the search draws from.
func NumSignatures() int {
	n := 0
	for op := Opcode(0); op < NumOpcodes; op++ {
		n += len(opTable[op].Sigs)
	}
	return n
}

// operandTok classifies an operand as a signature token.
func operandTok(o Operand) SigTok {
	switch o.Kind {
	case KindReg:
		return regTok(o.Width)
	case KindXmm:
		return TokX
	case KindImm:
		return TokI
	case KindMem:
		return memTok(o.Width)
	case KindLabel:
		return TokLbl
	}
	return TokNone
}

// MatchSig finds the signature of op matched by the given operands, or
// reports false.
func MatchSig(op Opcode, operands []Operand) (Sig, bool) {
	info := Info(op)
	for _, s := range info.Sigs {
		if int(s.N) != len(operands) {
			continue
		}
		ok := true
		for i := 0; i < len(operands); i++ {
			if operandTok(operands[i]) != s.Slot[i] {
				ok = false
				break
			}
		}
		if ok {
			return s, true
		}
	}
	return Sig{}, false
}
