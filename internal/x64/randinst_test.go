package x64

import "math/rand"

// newTestRand returns a seeded source for the round-trip property test.
func newTestRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// randomInstForTest builds a random valid instruction straight from the
// opcode table (a test-local analogue of the sampler's instruction move).
func randomInstForTest(rng *rand.Rand) (Inst, bool) {
	op := Opcode(rng.Intn(int(NumOpcodes)))
	info := Info(op)
	if !info.Proposable || len(info.Sigs) == 0 {
		return Inst{}, false
	}
	s := info.Sigs[rng.Intn(len(info.Sigs))]
	ctxWidth := uint8(8)
	for k := uint8(0); k < s.N; k++ {
		if w := TokWidth(s.Slot[k]); w != 0 && w != 16 {
			ctxWidth = w
		}
	}
	var opds []Operand
	for k := uint8(0); k < s.N; k++ {
		switch tok := s.Slot[k]; tok {
		case TokR8, TokR16, TokR32, TokR64:
			opds = append(opds, R(Reg(rng.Intn(NumGPR)), TokWidth(tok)))
		case TokX:
			opds = append(opds, X(Reg(rng.Intn(NumXMM))))
		case TokI:
			opds = append(opds, Imm(int64(int32(rng.Uint32()))>>uint(rng.Intn(24)), ctxWidth))
		case TokM8, TokM16, TokM32, TokM64, TokM128:
			base := Reg(rng.Intn(NumGPR))
			m := Mem(base, int32(rng.Intn(256)-128), TokWidth(tok))
			if rng.Intn(2) == 0 {
				idx := Reg(rng.Intn(NumGPR))
				if idx != RSP {
					m.Index = idx
					m.Scale = []uint8{1, 2, 4, 8}[rng.Intn(4)]
				}
			}
			opds = append(opds, m)
		default:
			return Inst{}, false
		}
	}
	in := MakeInst(op, opds...)
	if info.HasCC {
		in.CC = Cond(1 + rng.Intn(int(NumConds)-1))
	}
	// Shift counts in a register must be CL.
	if in.N == 2 && in.Opd[0].Kind == KindReg && in.Opd[0].Width == 1 {
		switch op {
		case SHL, SHR, SAR, ROL, ROR:
			in.Opd[0].Reg = RCX
		}
	}
	if in.Validate() != nil {
		return Inst{}, false
	}
	return in, true
}
