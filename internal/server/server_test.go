package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/store"
	"repro/stoke"
)

// addSpec is the integration smoke kernel: rax := rdi + rsi through stack
// scratch, small enough that a quick search proves it in about a second.
func addSpec(name string) KernelSpec {
	return KernelSpec{
		Name: name,
		Target: `
  movq rdi, -8(rsp)
  movq rsi, -16(rsp)
  movq -8(rsp), rax
  addq -16(rsp), rax
`,
		Inputs:  []string{"rdi", "rsi"},
		Outputs: []string{"rax"},
	}
}

// renamedAddSpec is addSpec under rdi→r8, rsi→r9, rax→rbx — α-equivalent,
// textually different.
func renamedAddSpec(name string) KernelSpec {
	return KernelSpec{
		Name: name,
		Target: `
  movq r8, -8(rsp)
  movq r9, -16(rsp)
  movq -8(rsp), rbx
  addq -16(rsp), rbx
`,
		Inputs:  []string{"r8", "r9"},
		Outputs: []string{"rbx"},
	}
}

func quickBudgets() Budgets {
	return Budgets{
		SynthProposals: 60000, OptProposals: 60000,
		SynthChains: 2, OptChains: 2,
		Ell: 12, Seed: 11,
	}
}

type env struct {
	t      *testing.T
	srv    *Server
	ts     *httptest.Server
	engine *stoke.Engine
	store  *store.Store
}

func newEnv(t *testing.T, cfg Config) *env {
	t.Helper()
	if cfg.Engine == nil {
		cfg.Engine = stoke.NewEngine(stoke.EngineConfig{Workers: 4})
	}
	if cfg.Store == nil {
		s, err := store.Open(filepath.Join(t.TempDir(), "rewrites.jsonl"), 64)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Store = s
	}
	srv := New(cfg)
	ts := httptest.NewServer(srv.Handler())
	e := &env{t: t, srv: srv, ts: ts, engine: cfg.Engine, store: cfg.Store}
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
		e.engine.Close()
		_ = e.store.Close()
	})
	return e
}

func (e *env) submit(req SubmitRequest, tenant string) (JobView, int) {
	e.t.Helper()
	body, _ := json.Marshal(req)
	hreq, _ := http.NewRequest("POST", e.ts.URL+"/v1/jobs", bytes.NewReader(body))
	if tenant != "" {
		hreq.Header.Set("X-Tenant", tenant)
	}
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		e.t.Fatal(err)
	}
	defer resp.Body.Close()
	var v JobView
	if resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
			e.t.Fatalf("submit: bad response body: %v", err)
		}
	}
	return v, resp.StatusCode
}

func (e *env) poll(id string) JobView {
	e.t.Helper()
	resp, err := http.Get(e.ts.URL + "/v1/jobs/" + id)
	if err != nil {
		e.t.Fatal(err)
	}
	defer resp.Body.Close()
	var v JobView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		e.t.Fatal(err)
	}
	return v
}

func (e *env) await(id string, timeout time.Duration) JobView {
	e.t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		v := e.poll(id)
		if v.Status == "done" || v.Status == "failed" {
			return v
		}
		if time.Now().After(deadline) {
			e.t.Fatalf("job %s still %q after %v", id, v.Status, timeout)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func (e *env) statsz() Statsz {
	e.t.Helper()
	resp, err := http.Get(e.ts.URL + "/statsz")
	if err != nil {
		e.t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Statsz
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		e.t.Fatal(err)
	}
	return st
}

// TestServerMissThenHit is the service-level acceptance test: the first
// submission queues a search; resubmitting the identical kernel — and an
// α-renamed variant — answers synchronously from the store without another
// search launch.
func TestServerMissThenHit(t *testing.T) {
	e := newEnv(t, Config{Workers: 2})

	v, code := e.submit(SubmitRequest{Kernel: addSpec("add"), Budgets: quickBudgets()}, "")
	if code != http.StatusAccepted {
		t.Fatalf("cold submit: status %d, want 202", code)
	}
	if v.Status != "queued" && v.Status != "running" {
		t.Fatalf("cold submit: job status %q", v.Status)
	}
	final := e.await(v.ID, 120*time.Second)
	if final.Status != "done" || final.Result == nil {
		t.Fatalf("job did not complete: %+v", final)
	}
	if final.Result.CacheHit {
		t.Fatal("first submission cannot be a cache hit")
	}
	if got := e.engine.SearchesLaunched(); got != 1 {
		t.Fatalf("searches launched %d, want 1", got)
	}

	// Identical resubmission: synchronous 200 with the proven rewrite.
	v2, code := e.submit(SubmitRequest{Kernel: addSpec("add")}, "")
	if code != http.StatusOK {
		t.Fatalf("warm submit: status %d, want 200", code)
	}
	if v2.Status != "done" || v2.Result == nil || !v2.Result.CacheHit {
		t.Fatalf("warm submit not served from cache: %+v", v2)
	}
	if v2.Result.Rewrite != final.Result.Rewrite {
		t.Fatalf("cached rewrite differs:\n%s\nvs\n%s", v2.Result.Rewrite, final.Result.Rewrite)
	}
	if got := e.engine.SearchesLaunched(); got != 1 {
		t.Fatalf("cache hit launched a search: %d, want 1", got)
	}

	// α-renamed variant: same fingerprint class, still a synchronous hit.
	v3, code := e.submit(SubmitRequest{Kernel: renamedAddSpec("add-renamed")}, "")
	if code != http.StatusOK || !v3.Result.CacheHit {
		t.Fatalf("renamed variant missed: status %d, %+v", code, v3)
	}
	if v3.Result.Fingerprint != final.Result.Fingerprint {
		t.Fatal("α-equivalent kernels must share a fingerprint")
	}
	if got := e.engine.SearchesLaunched(); got != 1 {
		t.Fatalf("renamed hit launched a search: %d, want 1", got)
	}

	st := e.statsz()
	if st.CacheHits != 2 || st.CacheMisses != 1 {
		t.Fatalf("statsz counters: hits %d misses %d, want 2/1", st.CacheHits, st.CacheMisses)
	}
	if st.CacheHitMeanUS <= 0 {
		t.Fatal("statsz must report a cache-hit latency once hits exist")
	}
	if st.Store == nil || st.Store.Entries == 0 {
		t.Fatal("statsz must surface store stats")
	}
}

// TestServerInflightDedup: an identical submission while the first is
// queued or running attaches to it instead of enqueueing a second search.
func TestServerInflightDedup(t *testing.T) {
	e := newEnv(t, Config{Workers: 1, PerTenant: 1})

	big := quickBudgets()
	big.SynthProposals = 200 << 20 // keep the first job busy
	big.OptProposals = 200 << 20
	v1, code := e.submit(SubmitRequest{Kernel: addSpec("slow"), Budgets: big}, "")
	if code != http.StatusAccepted {
		t.Fatalf("first submit: status %d", code)
	}
	v2, code := e.submit(SubmitRequest{Kernel: addSpec("slow")}, "")
	if code != http.StatusAccepted {
		t.Fatalf("duplicate submit: status %d", code)
	}
	if v2.ID != v1.ID {
		t.Fatalf("duplicate submission got its own job %s (want attach to %s)", v2.ID, v1.ID)
	}
	if v2.Attached != 1 {
		t.Fatalf("attached count %d, want 1", v2.Attached)
	}
	if st := e.statsz(); st.JobsAttached != 1 {
		t.Fatalf("statsz attached %d, want 1", st.JobsAttached)
	}
	// Cleanup's Shutdown cancels the fat job; it must still finish Partial.
}

// TestServerBadRequests: malformed bodies and kernels are rejected with
// 400s, unknown jobs with 404.
func TestServerBadRequests(t *testing.T) {
	e := newEnv(t, Config{Workers: 1})

	for _, tc := range []struct {
		name string
		spec KernelSpec
	}{
		{"empty name", KernelSpec{Target: "addq rsi, rax", Outputs: []string{"rax"}}},
		{"bad asm", KernelSpec{Name: "x", Target: "frobnicate rax", Outputs: []string{"rax"}}},
		{"bad reg", KernelSpec{Name: "x", Target: "addq rsi, rax", Outputs: []string{"xyzzy"}}},
		{"no outputs", KernelSpec{Name: "x", Target: "addq rsi, rax"}},
		{"wrong width", KernelSpec{Name: "x", Target: "addq rsi, rax", Outputs: []string{"eax"}}},
	} {
		_, code := e.submit(SubmitRequest{Kernel: tc.spec}, "")
		if code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", tc.name, code)
		}
	}

	resp, err := http.Get(e.ts.URL + "/v1/jobs/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job: status %d, want 404", resp.StatusCode)
	}
}

// TestServerEvents: the SSE stream replays the job's engine events and
// terminates with a done event carrying the final report.
func TestServerEvents(t *testing.T) {
	e := newEnv(t, Config{Workers: 2})

	v, code := e.submit(SubmitRequest{Kernel: addSpec("add"), Budgets: quickBudgets()}, "")
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d", code)
	}
	e.await(v.ID, 120*time.Second)

	resp, err := http.Get(e.ts.URL + "/v1/jobs/" + v.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}

	var engineEvents, doneEvents int
	var kinds []string
	sc := bufio.NewScanner(resp.Body)
	var event string
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data := strings.TrimPrefix(line, "data: ")
			switch event {
			case "engine":
				engineEvents++
				var w wireEvent
				if err := json.Unmarshal([]byte(data), &w); err != nil {
					t.Fatalf("bad engine event %q: %v", data, err)
				}
				kinds = append(kinds, w.Kind)
			case "done":
				doneEvents++
				var jv JobView
				if err := json.Unmarshal([]byte(data), &jv); err != nil {
					t.Fatalf("bad done event %q: %v", data, err)
				}
				if jv.Status != "done" || jv.Result == nil {
					t.Fatalf("done event without terminal result: %+v", jv)
				}
			}
		}
	}
	if engineEvents == 0 {
		t.Fatal("no engine events streamed")
	}
	if doneEvents != 1 {
		t.Fatalf("done events %d, want 1", doneEvents)
	}
	joined := strings.Join(kinds, ",")
	for _, want := range []string{"phase-start", "verdict"} {
		if !strings.Contains(joined, want) {
			t.Errorf("event stream missing %q (got %s)", want, joined)
		}
	}
}

// TestServerDrainReturnsPartial: shutting down mid-search completes the
// running job with a best-so-far partial report, not an error.
func TestServerDrainReturnsPartial(t *testing.T) {
	engine := stoke.NewEngine(stoke.EngineConfig{Workers: 4})
	s, err := store.Open("", 16)
	if err != nil {
		t.Fatal(err)
	}
	srv := New(Config{Engine: engine, Store: s, Workers: 1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer engine.Close()

	big := quickBudgets()
	big.SynthProposals = 200 << 20
	big.OptProposals = 200 << 20
	body, _ := json.Marshal(SubmitRequest{Kernel: addSpec("slow"), Budgets: big})
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var v JobView
	_ = json.NewDecoder(resp.Body).Decode(&v)
	resp.Body.Close()

	// Let the search actually start before draining.
	deadline := time.Now().Add(10 * time.Second)
	for engine.SearchesLaunched() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("search never started")
		}
		time.Sleep(10 * time.Millisecond)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}

	// The drained server still answers polls; the job must be terminal
	// with a partial report.
	hresp, err := http.Get(ts.URL + "/v1/jobs/" + v.ID)
	if err != nil {
		t.Fatal(err)
	}
	var final JobView
	_ = json.NewDecoder(hresp.Body).Decode(&final)
	hresp.Body.Close()
	if final.Status != "done" || final.Result == nil || !final.Result.Partial {
		t.Fatalf("drained job is not a partial success: %+v", final)
	}

	// And refuses new work.
	resp2, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining submit: status %d, want 503", resp2.StatusCode)
	}
	hz, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hz.Body.Close()
	if hz.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining healthz: status %d, want 503", hz.StatusCode)
	}
}

// TestServerShutdownLeaksNoGoroutines: a full submit/run/drain lifecycle —
// including an open SSE subscriber at drain time — leaves no goroutines
// behind.
func TestServerShutdownLeaksNoGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()

	engine := stoke.NewEngine(stoke.EngineConfig{Workers: 2})
	s, err := store.Open(filepath.Join(t.TempDir(), "rw.jsonl"), 16)
	if err != nil {
		t.Fatal(err)
	}
	srv := New(Config{Engine: engine, Store: s, Workers: 2})
	ts := httptest.NewServer(srv.Handler())

	big := quickBudgets()
	big.SynthProposals = 200 << 20
	big.OptProposals = 200 << 20
	body, _ := json.Marshal(SubmitRequest{Kernel: addSpec("slow"), Budgets: big})
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var v JobView
	_ = json.NewDecoder(resp.Body).Decode(&v)
	resp.Body.Close()

	// An SSE subscriber held open across the drain.
	sseCtx, sseCancel := context.WithCancel(context.Background())
	defer sseCancel()
	sseReq, _ := http.NewRequestWithContext(sseCtx, "GET", ts.URL+"/v1/jobs/"+v.ID+"/events", nil)
	sseResp, err := http.DefaultClient.Do(sseReq)
	if err != nil {
		t.Fatal(err)
	}
	sseDone := make(chan struct{})
	go func() {
		defer close(sseDone)
		sc := bufio.NewScanner(sseResp.Body)
		for sc.Scan() {
		}
		sseResp.Body.Close()
	}()

	deadline := time.Now().Add(10 * time.Second)
	for engine.SearchesLaunched() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("search never started")
		}
		time.Sleep(10 * time.Millisecond)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	select {
	case <-sseDone:
	case <-time.After(30 * time.Second):
		t.Fatal("SSE stream did not terminate after drain")
	}
	ts.Close()
	engine.Close()
	_ = s.Close()

	// Goroutine counts settle asynchronously (HTTP keepalives, test
	// plumbing); poll with slack instead of asserting an exact number.
	deadline = time.Now().Add(20 * time.Second)
	for {
		runtime.GC()
		after := runtime.NumGoroutine()
		if after <= before+3 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines before=%d after=%d; stacks:\n%s", before, after, buf[:n])
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// TestServerQueueFull: a saturated queue answers 429 and the rejected job
// does not linger in the jobs table or the dedup index.
func TestServerQueueFull(t *testing.T) {
	engine := stoke.NewEngine(stoke.EngineConfig{Workers: 2})
	s, err := store.Open("", 16)
	if err != nil {
		t.Fatal(err)
	}
	srv := New(Config{Engine: engine, Store: s, Workers: 1, QueueDepth: 1, PerTenant: 1})
	ts := httptest.NewServer(srv.Handler())
	defer func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
		engine.Close()
		_ = s.Close()
	}()

	big := quickBudgets()
	big.SynthProposals = 200 << 20
	big.OptProposals = 200 << 20
	post := func(name string) int {
		body, _ := json.Marshal(SubmitRequest{
			Kernel: KernelSpec{
				Name:    name,
				Target:  fmt.Sprintf("movq rdi, rax\naddq $%d, rax\naddq rsi, rax", len(name)),
				Inputs:  []string{"rdi", "rsi"},
				Outputs: []string{"rax"},
			},
			Budgets: big,
		})
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	// Distinct kernels (distinct constants) so dedup cannot absorb them:
	// one runs, one queues, the third must bounce.
	codes := []int{post("a"), post("bb"), post("ccc")}
	var full int
	for _, c := range codes {
		if c == http.StatusTooManyRequests {
			full++
		}
	}
	if full == 0 {
		t.Fatalf("no submission bounced off the full queue: %v", codes)
	}
}
