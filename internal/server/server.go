// Package server turns the stoke engine into a long-running
// superoptimization service: an HTTP/JSON job API over an async queue,
// fronted by the content-addressed rewrite store.
//
// Endpoints:
//
//	POST /v1/jobs            submit a kernel (+ live-outs + budgets); an
//	                         exact store hit answers synchronously with
//	                         the proven rewrite, anything else enqueues
//	GET  /v1/jobs/{id}       poll a job
//	GET  /v1/jobs/{id}/events  typed engine events over SSE (replayed
//	                         from the start of the job, then live)
//	GET  /healthz            liveness ("ok", or "draining" with 503)
//	GET  /statsz             store + job + cache counters as JSON
//
// Scheduling: a fixed worker pool consumes the queue; per-tenant
// concurrency budgets (the X-Tenant header names the tenant) bound how
// many of one tenant's jobs run at once, so a single heavy user queues
// behind itself, not in front of everyone else. Identical in-flight
// submissions — same canonical fingerprint and constants — deduplicate:
// the second submitter attaches to the running job instead of launching a
// second search.
//
// Shutdown drains gracefully: new submissions are refused, running
// searches are cancelled, and every cancelled job completes with the
// engine's best-so-far Partial report rather than an error.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/canon"
	"repro/internal/store"
	"repro/internal/verify"
	"repro/internal/x64"
	"repro/stoke"
)

// Config sizes a Server.
type Config struct {
	Engine *stoke.Engine
	Store  *store.Store // optional; nil disables caching and dedup-by-content

	// Workers is the number of concurrent jobs (default 2).
	Workers int
	// QueueDepth bounds waiting jobs (default 64); a full queue answers 429.
	QueueDepth int
	// PerTenant bounds one tenant's concurrently *running* jobs
	// (default 1); excess jobs wait in the queue without blocking a worker.
	PerTenant int
	// Options are engine options applied to every job underneath the
	// per-job budget knobs (WithRewriteStore is wired automatically).
	Options []stoke.Option
}

// KernelSpec is the wire form of a register-to-register kernel, mirroring
// stoke.NewKernel's annotations. Register names use assembly spellings
// ("rdi", "eax").
type KernelSpec struct {
	Name      string   `json:"name"`
	Target    string   `json:"target"`
	Inputs    []string `json:"inputs,omitempty"`
	Inputs32  []string `json:"inputs32,omitempty"`
	Outputs   []string `json:"outputs,omitempty"`
	Outputs32 []string `json:"outputs32,omitempty"`
	Stack     int      `json:"stack,omitempty"`
	SSE       bool     `json:"sse,omitempty"`
}

// Budgets is the per-job search budget envelope; zero fields keep the
// server's defaults.
type Budgets struct {
	SynthProposals int64 `json:"synth_proposals,omitempty"`
	OptProposals   int64 `json:"opt_proposals,omitempty"`
	SynthChains    int   `json:"synth_chains,omitempty"`
	OptChains      int   `json:"opt_chains,omitempty"`
	Ell            int   `json:"ell,omitempty"`
	Tests          int   `json:"tests,omitempty"`
	Seed           int64 `json:"seed,omitempty"`
}

// SubmitRequest is the POST /v1/jobs body.
type SubmitRequest struct {
	Kernel  KernelSpec `json:"kernel"`
	Budgets Budgets    `json:"budgets,omitempty"`
}

// Result is the wire form of a finished job's report.
type Result struct {
	Kernel             string  `json:"kernel"`
	Target             string  `json:"target"`
	Rewrite            string  `json:"rewrite"`
	Verdict            string  `json:"verdict"`
	Partial            bool    `json:"partial,omitempty"`
	CacheHit           bool    `json:"cache_hit,omitempty"`
	Fingerprint        string  `json:"fingerprint,omitempty"`
	SynthesisSucceeded bool    `json:"synthesis_succeeded,omitempty"`
	Speedup            float64 `json:"speedup"`
	TargetCycles       float64 `json:"target_cycles"`
	RewriteCycles      float64 `json:"rewrite_cycles"`
	Proposals          int64   `json:"proposals,omitempty"`
	Refinements        int     `json:"refinements,omitempty"`
	Tests              int     `json:"tests,omitempty"`
}

// JobView is the poll answer.
type JobView struct {
	ID       string  `json:"id"`
	Status   string  `json:"status"` // queued | running | done | failed
	Tenant   string  `json:"tenant,omitempty"`
	Attached int64   `json:"attached,omitempty"` // extra submitters deduplicated onto this job
	Error    string  `json:"error,omitempty"`
	Result   *Result `json:"result,omitempty"`
}

// wireEvent is the SSE payload of one engine event.
type wireEvent struct {
	Kind      string  `json:"kind"`
	Kernel    string  `json:"kernel,omitempty"`
	Phase     string  `json:"phase,omitempty"`
	Round     int     `json:"round,omitempty"`
	Chain     int     `json:"chain,omitempty"`
	Partner   int     `json:"partner,omitempty"`
	Proposal  int64   `json:"proposal,omitempty"`
	Cost      float64 `json:"cost,omitempty"`
	Tests     int     `json:"tests,omitempty"`
	Verdict   string  `json:"verdict,omitempty"`
	ElapsedMS int64   `json:"elapsed_ms,omitempty"`
}

func toWire(ev stoke.Event) wireEvent {
	w := wireEvent{
		Kind: ev.Kind.String(), Kernel: ev.Kernel, Phase: ev.Phase,
		Round: ev.Round, Chain: ev.Chain, Partner: ev.Partner,
		Proposal: ev.Proposal, Cost: ev.Cost, Tests: ev.Tests,
		ElapsedMS: ev.Elapsed.Milliseconds(),
	}
	if ev.Kind == stoke.EventVerdict {
		w.Verdict = ev.Verdict.String()
	}
	return w
}

// maxBufferedEvents caps a job's replayable event history; beyond it the
// oldest events are dropped (SSE subscribers arriving later see a gap, not
// unbounded memory).
const maxBufferedEvents = 4096

type job struct {
	id     string
	tenant string
	kernel stoke.Kernel
	opts   []stoke.Option
	dedup  string // store.Key(fp, consts); "" when no store is configured

	cancel context.CancelFunc

	mu       sync.Mutex
	status   string
	report   *stoke.Report
	err      error
	events   []stoke.Event
	dropped  int // events evicted from the front of the buffer
	subs     map[chan stoke.Event]struct{}
	done     chan struct{}
	attached atomic.Int64
}

func (j *job) appendEvent(ev stoke.Event) {
	j.mu.Lock()
	if len(j.events) >= maxBufferedEvents {
		j.events = j.events[1:]
		j.dropped++
	}
	j.events = append(j.events, ev)
	for ch := range j.subs {
		select {
		case ch <- ev:
		default: // slow subscriber: it drops this event, the buffer keeps it
		}
	}
	j.mu.Unlock()
}

// subscribe returns the replay snapshot plus a live channel; the caller
// must unsubscribe.
func (j *job) subscribe() ([]stoke.Event, chan stoke.Event) {
	j.mu.Lock()
	defer j.mu.Unlock()
	replay := append([]stoke.Event(nil), j.events...)
	ch := make(chan stoke.Event, 256)
	if j.subs == nil {
		j.subs = make(map[chan stoke.Event]struct{})
	}
	j.subs[ch] = struct{}{}
	return replay, ch
}

func (j *job) unsubscribe(ch chan stoke.Event) {
	j.mu.Lock()
	delete(j.subs, ch)
	j.mu.Unlock()
}

func (j *job) view() JobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := JobView{ID: j.id, Status: j.status, Tenant: j.tenant, Attached: j.attached.Load()}
	if j.err != nil {
		v.Error = j.err.Error()
	}
	if j.report != nil {
		v.Result = resultOf(j.report)
	}
	return v
}

func resultOf(rep *stoke.Report) *Result {
	r := &Result{
		Kernel:             rep.Kernel,
		Verdict:            rep.Verdict.String(),
		Partial:            rep.Partial,
		CacheHit:           rep.CacheHit,
		Fingerprint:        rep.Fingerprint,
		SynthesisSucceeded: rep.SynthesisSucceeded,
		Speedup:            rep.Speedup(),
		TargetCycles:       rep.TargetCycles,
		RewriteCycles:      rep.RewriteCycles,
		Proposals:          rep.Stats.Proposals,
		Refinements:        rep.Refinements,
		Tests:              rep.Tests,
	}
	if rep.Target != nil {
		r.Target = rep.Target.String()
	}
	if rep.Rewrite != nil {
		r.Rewrite = rep.Rewrite.String()
	}
	return r
}

// Server is the job service. Construct with New, serve via Handler, stop
// with Shutdown.
type Server struct {
	cfg    Config
	mux    *http.ServeMux
	queue  chan *job
	quit   chan struct{}
	wg     sync.WaitGroup
	drain  atomic.Bool
	nextID atomic.Int64

	mu       sync.Mutex
	jobs     map[string]*job
	inflight map[string]*job          // dedup key → queued/running job
	tenants  map[string]chan struct{} // per-tenant run slots

	stats struct {
		submitted, completed, failed  atomic.Int64
		attached, cancelled           atomic.Int64
		cacheHits, cacheMisses        atomic.Int64
		cacheHitMicros, cacheHitCount atomic.Int64
	}
}

// New builds a Server and starts its worker pool.
func New(cfg Config) *Server {
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	if cfg.PerTenant <= 0 {
		cfg.PerTenant = 1
	}
	s := &Server{
		cfg:      cfg,
		queue:    make(chan *job, cfg.QueueDepth),
		quit:     make(chan struct{}),
		jobs:     make(map[string]*job),
		inflight: make(map[string]*job),
		tenants:  make(map[string]chan struct{}),
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleGet)
	s.mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /statsz", s.handleStatsz)
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// Handler returns the HTTP handler (mountable under any server).
func (s *Server) Handler() http.Handler { return s.mux }

// Shutdown drains the server: submissions are refused, queued jobs are
// cancelled immediately, running jobs are cancelled and hand back Partial
// best-so-far reports, and the worker pool exits. Safe to call once.
func (s *Server) Shutdown(ctx context.Context) error {
	s.drain.Store(true)
	close(s.quit)
	// Cancel every running job; queued ones are failed by the workers as
	// they drain the channel.
	s.mu.Lock()
	for _, j := range s.jobs {
		if j.cancel != nil {
			j.cancel()
		}
	}
	s.mu.Unlock()
	done := make(chan struct{})
	go func() { s.wg.Wait(); close(done) }()
	select {
	case <-done:
		// A submission that raced the drain flag may have queued after the
		// workers exited; fail it so its poller sees a terminal state.
		for {
			select {
			case j := <-s.queue:
				s.finishCancelledInQueue(j)
			default:
				return nil
			}
		}
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (s *Server) tenantSlots(tenant string) chan struct{} {
	s.mu.Lock()
	defer s.mu.Unlock()
	slots, ok := s.tenants[tenant]
	if !ok {
		slots = make(chan struct{}, s.cfg.PerTenant)
		s.tenants[tenant] = slots
	}
	return slots
}

func (s *Server) worker() {
	defer s.wg.Done()
	for {
		select {
		case <-s.quit:
			// Drain: fail whatever is still queued so pollers see a
			// terminal state, then exit.
			for {
				select {
				case j := <-s.queue:
					s.finishCancelledInQueue(j)
				default:
					return
				}
			}
		case j := <-s.queue:
			s.runJob(j)
		}
	}
}

func (s *Server) finishCancelledInQueue(j *job) {
	s.stats.cancelled.Add(1)
	j.mu.Lock()
	j.status = "failed"
	j.err = errors.New("server draining before the job started")
	close(j.done)
	j.mu.Unlock()
	s.clearInflight(j)
}

func (s *Server) clearInflight(j *job) {
	if j.dedup == "" {
		return
	}
	s.mu.Lock()
	if s.inflight[j.dedup] == j {
		delete(s.inflight, j.dedup)
	}
	s.mu.Unlock()
}

func (s *Server) runJob(j *job) {
	slots := s.tenantSlots(j.tenant)
	select {
	case slots <- struct{}{}:
	case <-s.quit:
		s.finishCancelledInQueue(j)
		return
	}
	defer func() { <-slots }()

	ctx, cancel := context.WithCancel(context.Background())
	j.mu.Lock()
	j.status = "running"
	j.cancel = cancel
	j.mu.Unlock()
	defer cancel()
	select {
	case <-s.quit:
		cancel() // drain raced our start; run anyway, it returns Partial fast
	default:
	}

	opts := append([]stoke.Option(nil), j.opts...)
	opts = append(opts, stoke.WithObserver(j.appendEvent))
	rep, err := s.cfg.Engine.Optimize(ctx, j.kernel, opts...)

	j.mu.Lock()
	j.report = rep
	j.err = err
	if err != nil {
		j.status = "failed"
		s.stats.failed.Add(1)
	} else {
		j.status = "done"
		s.stats.completed.Add(1)
		if rep.Partial {
			s.stats.cancelled.Add(1)
		}
	}
	close(j.done)
	j.mu.Unlock()
	s.clearInflight(j)
}

// buildKernel converts the wire spec into a stoke.Kernel.
func buildKernel(spec KernelSpec) (stoke.Kernel, error) {
	if spec.Name == "" {
		return stoke.Kernel{}, errors.New("kernel.name is required")
	}
	target, err := stoke.Parse(spec.Target)
	if err != nil {
		return stoke.Kernel{}, fmt.Errorf("kernel.target: %w", err)
	}
	if err := target.Validate(); err != nil {
		return stoke.Kernel{}, fmt.Errorf("kernel.target: %w", err)
	}
	var kopts []stoke.KernelOption
	toRegs := func(field string, names []string, want8 bool) ([]x64.Reg, error) {
		var out []x64.Reg
		for _, n := range names {
			r, w, xmm, ok := x64.LookupReg(n)
			if !ok || xmm {
				return nil, fmt.Errorf("%s: unknown register %q", field, n)
			}
			if want8 && w != 8 || !want8 && w != 4 {
				return nil, fmt.Errorf("%s: register %q has width %d", field, n, w)
			}
			out = append(out, r)
		}
		return out, nil
	}
	if regs, err := toRegs("inputs", spec.Inputs, true); err != nil {
		return stoke.Kernel{}, err
	} else if len(regs) > 0 {
		kopts = append(kopts, stoke.WithInputs(regs...))
	}
	if regs, err := toRegs("inputs32", spec.Inputs32, false); err != nil {
		return stoke.Kernel{}, err
	} else if len(regs) > 0 {
		kopts = append(kopts, stoke.WithInputs32(regs...))
	}
	outs, err := toRegs("outputs", spec.Outputs, true)
	if err != nil {
		return stoke.Kernel{}, err
	}
	outs32, err := toRegs("outputs32", spec.Outputs32, false)
	if err != nil {
		return stoke.Kernel{}, err
	}
	if len(outs)+len(outs32) == 0 {
		return stoke.Kernel{}, errors.New("at least one live output register is required")
	}
	if len(outs) > 0 {
		kopts = append(kopts, stoke.WithOutput64(outs...))
	}
	if len(outs32) > 0 {
		kopts = append(kopts, stoke.WithOutput32(outs32...))
	}
	if spec.Stack > 0 {
		kopts = append(kopts, stoke.WithStack(spec.Stack))
	}
	if spec.SSE {
		kopts = append(kopts, stoke.WithVectorOps())
	}
	return stoke.NewKernel(spec.Name, target, kopts...), nil
}

func budgetOptions(b Budgets) []stoke.Option {
	var opts []stoke.Option
	if b.SynthProposals > 0 || b.OptProposals > 0 {
		sp, op := b.SynthProposals, b.OptProposals
		if sp <= 0 {
			sp = stoke.DefaultSynthProposals
		}
		if op <= 0 {
			op = stoke.DefaultOptProposals
		}
		opts = append(opts, stoke.WithBudgets(sp, op))
	}
	if b.SynthChains > 0 || b.OptChains > 0 {
		sc, oc := b.SynthChains, b.OptChains
		if sc <= 0 {
			sc = stoke.DefaultSynthChains
		}
		if oc <= 0 {
			oc = stoke.DefaultOptChains
		}
		opts = append(opts, stoke.WithChains(sc, oc))
	}
	if b.Ell > 0 {
		opts = append(opts, stoke.WithEll(b.Ell))
	}
	if b.Tests > 0 {
		opts = append(opts, stoke.WithTests(b.Tests))
	}
	if b.Seed != 0 {
		opts = append(opts, stoke.WithSeed(b.Seed))
	}
	return opts
}

// dedupKey computes the content address a submission would occupy in the
// store — the in-flight dedup identity.
func dedupKey(k stoke.Kernel) string {
	form := canon.Canonicalize(k.Target, verify.LiveOut{
		GPRs:  k.Spec.LiveOut.GPRs,
		Xmms:  k.Spec.LiveOut.Xmms,
		Flags: k.Spec.LiveOut.Flags,
		Mem:   k.LiveMem,
	})
	return store.Key(form.FP.Hex(), form.Consts)
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if s.drain.Load() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	var req SubmitRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	k, err := buildKernel(req.Kernel)
	if err != nil {
		http.Error(w, "bad kernel: "+err.Error(), http.StatusBadRequest)
		return
	}
	tenant := r.Header.Get("X-Tenant")
	if tenant == "" {
		tenant = "default"
	}
	s.stats.submitted.Add(1)

	opts := append([]stoke.Option(nil), s.cfg.Options...)
	opts = append(opts, budgetOptions(req.Budgets)...)
	var dedup string
	if s.cfg.Store != nil {
		opts = append(opts, stoke.WithRewriteStore(s.cfg.Store))
		dedup = dedupKey(k)

		// Synchronous fast path: an exact, revalidated store hit answers
		// the POST immediately — no job, no queue, no search.
		probeStart := time.Now()
		rep, err := s.cfg.Engine.Optimize(r.Context(), k,
			append(append([]stoke.Option(nil), opts...), stoke.WithCacheOnly())...)
		if err == nil {
			s.stats.cacheHits.Add(1)
			s.stats.cacheHitMicros.Add(time.Since(probeStart).Microseconds())
			s.stats.cacheHitCount.Add(1)
			writeJSON(w, http.StatusOK, JobView{
				ID:     fmt.Sprintf("cached-%d", s.nextID.Add(1)),
				Status: "done",
				Tenant: tenant,
				Result: resultOf(rep),
			})
			return
		}
		if !errors.Is(err, stoke.ErrCacheMiss) {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		s.stats.cacheMisses.Add(1)
	}

	// In-flight dedup: an identical submission attaches to the running or
	// queued job instead of enqueueing a duplicate search.
	if dedup != "" {
		s.mu.Lock()
		if existing, ok := s.inflight[dedup]; ok {
			s.mu.Unlock()
			existing.attached.Add(1)
			s.stats.attached.Add(1)
			writeJSON(w, http.StatusAccepted, existing.view())
			return
		}
		s.mu.Unlock()
	}

	j := &job{
		id:     fmt.Sprintf("job-%d", s.nextID.Add(1)),
		tenant: tenant,
		kernel: k,
		opts:   opts,
		dedup:  dedup,
		status: "queued",
		done:   make(chan struct{}),
	}
	s.mu.Lock()
	s.jobs[j.id] = j
	if dedup != "" {
		if existing, ok := s.inflight[dedup]; ok {
			// Raced with an identical submission: attach after all.
			s.mu.Unlock()
			delete(s.jobs, j.id)
			existing.attached.Add(1)
			s.stats.attached.Add(1)
			writeJSON(w, http.StatusAccepted, existing.view())
			return
		}
		s.inflight[dedup] = j
	}
	s.mu.Unlock()

	select {
	case s.queue <- j:
		writeJSON(w, http.StatusAccepted, j.view())
	default:
		s.mu.Lock()
		delete(s.jobs, j.id)
		s.mu.Unlock()
		s.clearInflight(j)
		http.Error(w, "queue full", http.StatusTooManyRequests)
	}
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	j, ok := s.jobs[r.PathValue("id")]
	s.mu.Unlock()
	if !ok {
		http.Error(w, "no such job", http.StatusNotFound)
		return
	}
	writeJSON(w, http.StatusOK, j.view())
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	j, ok := s.jobs[r.PathValue("id")]
	s.mu.Unlock()
	if !ok {
		http.Error(w, "no such job", http.StatusNotFound)
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	send := func(event string, payload any) bool {
		data, err := json.Marshal(payload)
		if err != nil {
			return false
		}
		if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data); err != nil {
			return false
		}
		fl.Flush()
		return true
	}

	replay, live := j.subscribe()
	defer j.unsubscribe(live)
	for _, ev := range replay {
		if !send("engine", toWire(ev)) {
			return
		}
	}
	for {
		select {
		case ev := <-live:
			if !send("engine", toWire(ev)) {
				return
			}
		case <-j.done:
			// Flush any events that raced the close, then finish with the
			// terminal job view.
			for {
				select {
				case ev := <-live:
					if !send("engine", toWire(ev)) {
						return
					}
					continue
				default:
				}
				break
			}
			send("done", j.view())
			return
		case <-r.Context().Done():
			return
		case <-s.quit:
			// Drain: the job will still complete (Partial); wait for done
			// via the next loop turn rather than spinning here.
			select {
			case <-j.done:
			case <-r.Context().Done():
				return
			}
		}
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.drain.Load() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ok")
}

// Statsz is the GET /statsz payload.
type Statsz struct {
	Draining         bool         `json:"draining"`
	JobsSubmitted    int64        `json:"jobs_submitted"`
	JobsCompleted    int64        `json:"jobs_completed"`
	JobsFailed       int64        `json:"jobs_failed"`
	JobsAttached     int64        `json:"jobs_attached"`
	JobsCancelled    int64        `json:"jobs_cancelled"`
	CacheHits        int64        `json:"cache_hits"`
	CacheMisses      int64        `json:"cache_misses"`
	CacheHitMeanUS   int64        `json:"cache_hit_mean_us"`
	SearchesLaunched int64        `json:"searches_launched"`
	Store            *store.Stats `json:"store,omitempty"`
}

func (s *Server) statsz() Statsz {
	st := Statsz{
		Draining:         s.drain.Load(),
		JobsSubmitted:    s.stats.submitted.Load(),
		JobsCompleted:    s.stats.completed.Load(),
		JobsFailed:       s.stats.failed.Load(),
		JobsAttached:     s.stats.attached.Load(),
		JobsCancelled:    s.stats.cancelled.Load(),
		CacheHits:        s.stats.cacheHits.Load(),
		CacheMisses:      s.stats.cacheMisses.Load(),
		SearchesLaunched: s.cfg.Engine.SearchesLaunched(),
	}
	if n := s.stats.cacheHitCount.Load(); n > 0 {
		st.CacheHitMeanUS = s.stats.cacheHitMicros.Load() / n
	}
	if s.cfg.Store != nil {
		ss := s.cfg.Store.Stats()
		st.Store = &ss
	}
	return st
}

func (s *Server) handleStatsz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.statsz())
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}
