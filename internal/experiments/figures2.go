package experiments

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"time"

	"repro/internal/cost"
	"repro/internal/emu"
	"repro/internal/kernels"
	"repro/internal/mcmc"
	"repro/internal/testgen"
	"repro/internal/x64"
	"repro/stoke"
)

// testcaseRate measures emulator testcase evaluations per second for one
// benchmark (Figure 2, right).
func testcaseRate(b kernels.Bench) (float64, error) {
	rng := rand.New(rand.NewSource(7))
	tests, err := testgen.Generate(b.Target, b.Spec, 8, rng)
	if err != nil {
		return 0, err
	}
	m := emu.New()
	start := time.Now()
	n := 0
	for time.Since(start) < 300*time.Millisecond {
		for i := range tests {
			m.LoadSnapshot(tests[i].In)
			m.Run(b.Target)
			n++
		}
	}
	return float64(n) / time.Since(start).Seconds(), nil
}

// synthSampler builds a synthesis-phase sampler over fresh testcases.
func synthSampler(b kernels.Bench, p Profile, mode cost.Mode) (*mcmc.Sampler, []testgen.Testcase, error) {
	rng := rand.New(rand.NewSource(p.Seed))
	tests, err := testgen.Generate(b.Target, b.Spec, 32, rng)
	if err != nil {
		return nil, nil, err
	}
	params := mcmc.PaperParams
	params.Ell = p.Ell
	s := &mcmc.Sampler{
		Params: params,
		Pools:  mcmc.PoolsFor(b.Target, b.SSE),
		Cost:   cost.New(tests, b.Spec.LiveOut, mode, 0),
		Rng:    rand.New(rand.NewSource(p.Seed + 99)),
	}
	return s, tests, nil
}

// Fig07CostFunctions reproduces Figure 7: synthesis under the improved cost
// function, the strict cost function, and pure random search.
func Fig07CostFunctions(ctx context.Context, w io.Writer, p Profile, kernel string) error {
	b, err := kernels.ByName(kernel)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Figure 7: strict vs improved synthesis cost functions (%s)\n", kernel)
	fmt.Fprintf(w, "============================================================\n\n")

	type series struct {
		name  string
		pts   []float64 // best cost sampled over the run
		final float64
	}
	record := func(name string, mode cost.Mode, random bool) (series, error) {
		s, _, err := synthSampler(b, p, mode)
		if err != nil {
			return series{}, err
		}
		se := series{name: name}
		if random {
			// Pure random search: independent samples, best-so-far.
			best := 1e30
			interval := p.SynthProposals / 2000
			if interval == 0 {
				interval = 1
			}
			for i := int64(0); i < p.SynthProposals/8; i++ {
				prog := s.RandomProgram()
				res := s.Cost.Eval(prog, cost.MaxBudget)
				if res.Cost < best {
					best = res.Cost
				}
				if i%interval == 0 {
					se.pts = append(se.pts, best)
				}
			}
			se.final = best
			return se, nil
		}
		s.StepInterval = p.SynthProposals / 16
		best := 1e30
		s.OnStep = func(st mcmc.Stats, cur float64) {
			if cur < best {
				best = cur
			}
			se.pts = append(se.pts, best)
		}
		res := s.Run(ctx, s.RandomProgram(), p.SynthProposals)
		se.final = res.BestCost
		return se, nil
	}

	improved, err := record("improved", cost.Improved, false)
	if err != nil {
		return err
	}
	strict, err := record("strict", cost.Strict, false)
	if err != nil {
		return err
	}
	random, err := record("random", cost.Improved, true)
	if err != nil {
		return err
	}

	for _, se := range []series{improved, strict, random} {
		fmt.Fprintf(w, "%-9s final best cost %10.1f  trajectory:", se.name, se.final)
		for _, v := range se.pts {
			fmt.Fprintf(w, " %.0f", v)
		}
		fmt.Fprintf(w, "\n")
	}
	fmt.Fprintf(w, "\npaper shape: improved converges; strict ends only slightly above random\n")
	fmt.Fprintf(w, "observed: improved %.1f vs strict %.1f vs random %.1f\n",
		improved.final, strict.final, random.final)
	return nil
}

// Fig08PercentOfFinal reproduces Figure 8: best cost versus the percentage
// of instructions shared with the final best rewrite during synthesis.
func Fig08PercentOfFinal(ctx context.Context, w io.Writer, p Profile, kernel string) error {
	b, err := kernels.ByName(kernel)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Figure 8: cost vs percentage of final code (%s synthesis)\n", kernel)
	fmt.Fprintf(w, "==========================================================\n\n")

	s, _, err := synthSampler(b, p, cost.Improved)
	if err != nil {
		return err
	}
	type snap struct {
		iter int64
		cost float64
		prog *x64.Program
	}
	var snaps []snap
	s.OnImprove = func(iter int64, c float64, prog *x64.Program) {
		snaps = append(snaps, snap{iter, c, prog})
	}
	res := s.Run(ctx, s.RandomProgram(), p.SynthProposals)
	if len(snaps) == 0 {
		fmt.Fprintf(w, "no improvements recorded\n")
		return nil
	}
	final := res.Best
	fmt.Fprintf(w, "%10s %12s %10s\n", "iteration", "cost", "% of final")
	for _, sn := range snaps {
		fmt.Fprintf(w, "%10d %12.1f %9.0f%%\n", sn.iter, sn.cost, 100*overlap(sn.prog, final))
	}
	fmt.Fprintf(w, "\nsynthesis %s (best cost %.1f); paper shape: %% of final code rises as cost falls\n",
		map[bool]string{true: "succeeded", false: "did not converge"}[res.ZeroCost], res.BestCost)
	return nil
}

// overlap computes the fraction of final's instructions present in p
// (multiset intersection over the final instruction count).
func overlap(p, final *x64.Program) float64 {
	count := map[x64.Inst]int{}
	total := 0
	for _, in := range final.Insts {
		if in.Op != x64.UNUSED {
			count[in]++
			total++
		}
	}
	if total == 0 {
		return 0
	}
	match := 0
	for _, in := range p.Insts {
		if in.Op == x64.UNUSED {
			continue
		}
		if count[in] > 0 {
			count[in]--
			match++
		}
	}
	return float64(match) / float64(total)
}

// Fig10Speedups reproduces Figure 10 from suite runs: speedup over
// llvm -O0 for gcc -O3, icc -O3 and STOKE on every kernel.
func Fig10Speedups(w io.Writer, runs []KernelRun) {
	fmt.Fprintf(w, "Figure 10: speedup over llvm -O0 (pipeline model)\n")
	fmt.Fprintf(w, "=================================================\n\n")
	fmt.Fprintf(w, "%-8s %8s %8s %8s %12s %s\n", "kernel", "gcc-O3", "icc-O3", "STOKE", "STOKE(paper)", "")
	for _, kr := range runs {
		star := " "
		if kr.Bench.Star {
			star = "*"
		}
		paper := "-"
		if kr.PaperSpeedup > 0 {
			paper = fmt.Sprintf("%.2f", kr.PaperSpeedup)
		}
		fmt.Fprintf(w, "%-8s %8.2f %8.2f %8.2f %12s %s\n",
			star+kr.Bench.Name, kr.GccSpeedup, kr.IccSpeedup, kr.StokeSpeedup, paper, "")
	}
	fmt.Fprintf(w, "\n(* = kernels where the paper's STOKE found an algorithmically distinct rewrite)\n")
	fmt.Fprintf(w, "paper shape: STOKE matches gcc/icc everywhere and beats them on starred kernels\n")
}

// Fig11Params prints the MCMC parameter table of Figure 11.
func Fig11Params(w io.Writer) {
	p := mcmc.PaperParams
	we := cost.PaperWeights
	fmt.Fprintf(w, "Figure 11: MCMC parameters\n")
	fmt.Fprintf(w, "==========================\n\n")
	fmt.Fprintf(w, "wsf %3.0f    pc %.2f    pu %.2f\n", we.SegFault, p.PC, p.PU)
	fmt.Fprintf(w, "wfp %3.0f    po %.2f    beta %.1f\n", we.FloatFault, p.PO, p.Beta)
	fmt.Fprintf(w, "wur %3.0f    ps %.2f    l %d\n", we.UndefRead, p.PS, p.Ell)
	fmt.Fprintf(w, "wm  %3.0f    pi %.2f\n", we.Misplace, p.PI)
}

// Fig12Runtimes reproduces Figure 12 from suite runs: synthesis and
// optimization times per kernel, with stars where synthesis failed.
func Fig12Runtimes(w io.Writer, runs []KernelRun) {
	fmt.Fprintf(w, "Figure 12: synthesis and optimization chain time (s, summed across chains)\n")
	fmt.Fprintf(w, "===========================================================================\n\n")
	fmt.Fprintf(w, "%-8s %10s %10s %s\n", "kernel", "synthesis", "optimize", "")
	for _, kr := range runs {
		star := " "
		if !kr.Report.SynthesisSucceeded {
			star = "*"
		}
		fmt.Fprintf(w, "%s%-7s %10.2f %10.2f\n",
			star, kr.Bench.Name,
			kr.Report.SynthTime.Seconds(), kr.Report.OptTime.Seconds())
	}
	fmt.Fprintf(w, "\n(* = synthesis did not reach a zero-cost rewrite within budget;\n")
	fmt.Fprintf(w, " the paper's stars: p19, p20, p24 — kernels whose outputs are nearly\n")
	fmt.Fprintf(w, " indistinguishable from trivial functions, §6.3)\n")
}

// figListing is shared by Figures 13, 14 and 15: target, comparator, paper
// rewrite and our discovered rewrite side by side.
func figListing(ctx context.Context, w io.Writer, p Profile, name, caption, paperNote string) error {
	b, err := kernels.ByName(name)
	if err != nil {
		return err
	}
	rep, err := stoke.Optimize(ctx, b.Kernel, p.options()...)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%s\n", caption)
	for range caption {
		fmt.Fprint(w, "=")
	}
	fmt.Fprintf(w, "\n\n%s\n", paperNote)
	fmt.Fprintf(w, "\n--- llvm -O0 target (%d insts) ---\n%s", b.Target.InstCount(), b.Target)
	if b.GccO3 != nil {
		fmt.Fprintf(w, "\n--- gcc -O3 (%d insts) ---\n%s", b.GccO3.InstCount(), b.GccO3)
	}
	if b.PaperRewrite != nil {
		fmt.Fprintf(w, "\n--- paper's STOKE rewrite (%d insts) ---\n%s", b.PaperRewrite.InstCount(), b.PaperRewrite)
	}
	fmt.Fprintf(w, "\n--- our discovered rewrite (%d insts, verdict %v) ---\n%s",
		rep.Rewrite.InstCount(), rep.Verdict, rep.Rewrite)
	return nil
}

// Fig13CycleThroughValues reproduces Figure 13 (p21).
func Fig13CycleThroughValues(ctx context.Context, w io.Writer, p Profile) error {
	return figListing(ctx, w, p, "p21",
		"Figure 13: Cycling Through 3 Values (p21)",
		"paper: gcc -O3 transcribes the esoteric bit-twiddling literally; STOKE\nrediscovers the conditional-move implementation")
}

// Fig14Saxpy reproduces Figure 14.
func Fig14Saxpy(ctx context.Context, w io.Writer, p Profile) error {
	return figListing(ctx, w, p, "saxpy",
		"Figure 14: SAXPY",
		"paper: gcc -O3 stays scalar; STOKE discovers the SSE vector implementation")
}

// Fig15LinkedList reproduces Figure 15.
func Fig15LinkedList(ctx context.Context, w io.Writer, p Profile) error {
	return figListing(ctx, w, p, "list",
		"Figure 15: Linked List Traversal",
		"paper: STOKE eliminates in-fragment stack traffic and strength-reduces the\nmultiply, but cannot cache the head pointer across iterations (the stated\nlimitation: the framework stops at loop-free fragments)")
}
