// Package experiments regenerates every table and figure in the paper's
// evaluation (§6). Each generator writes a plain-text rendering of the
// figure to an io.Writer; cmd/stoke-bench and the root bench_test.go are
// thin wrappers around these functions. Budgets are laptop-scale by
// default (the paper used 40 dual-core machines for 30 minutes per phase);
// EXPERIMENTS.md records how the shapes compare.
package experiments

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"time"

	"repro/internal/kernels"
	"repro/internal/mcmc"
	"repro/internal/perf"
	"repro/internal/pipeline"
	"repro/internal/verify"
	"repro/internal/x64"
	"repro/stoke"
)

// Profile scales search budgets.
type Profile struct {
	Seed           int64
	SynthChains    int
	OptChains      int
	SynthProposals int64
	OptProposals   int64
	Ell            int

	// VerifyBudget caps SAT conflicts per validation query (0 = the
	// validator default). Large kernels can spend minutes per proof at
	// the default; bench harnesses cap it and accept Unknown verdicts.
	VerifyBudget int64
}

// Quick is the profile used by the benchmark harness: seconds per kernel.
// It is deliberately lighter than stoke.Quick (the CLI default) — the
// harness runs 28 kernels per suite and caps verification.
var Quick = Profile{
	Seed: 1, SynthChains: 2, OptChains: 2,
	SynthProposals: 80000, OptProposals: 120000, Ell: 20,
	VerifyBudget: 100000,
}

// Full spends roughly a minute per kernel; its budgets come from
// stoke.Full so `stoke -profile full` and `stoke-bench -profile full`
// cannot drift apart.
var Full = Profile{
	Seed:           1,
	SynthChains:    stoke.Full.SynthChains,
	OptChains:      stoke.Full.OptChains,
	SynthProposals: stoke.Full.SynthProposals,
	OptProposals:   stoke.Full.OptProposals,
	Ell:            stoke.Full.Ell,
}

func (p Profile) options() []stoke.Option {
	opts := []stoke.Option{
		stoke.WithSeed(p.Seed),
		stoke.WithChains(p.SynthChains, p.OptChains),
		stoke.WithBudgets(p.SynthProposals, p.OptProposals),
		stoke.WithEll(p.Ell),
	}
	if p.VerifyBudget > 0 {
		cfg := verify.DefaultConfig
		cfg.Budget = p.VerifyBudget
		// Cheap verification profile: also cap formula size.
		cfg.MaxTerms = 100000
		opts = append(opts, stoke.WithVerify(cfg))
	}
	return opts
}

// KernelRun is one kernel's outcome, shared by Figures 10 and 12.
type KernelRun struct {
	Bench  kernels.Bench
	Report *stoke.Report

	// Speedups over the llvm -O0 target under the pipeline model.
	GccSpeedup   float64
	IccSpeedup   float64
	StokeSpeedup float64
	PaperSpeedup float64 // paper-printed rewrite, when available
}

// RunSuite optimizes every benchmark once; the result feeds Figures 10 and
// 12 (mirroring the paper, which derives both from the same runs). A few
// kernels at a time (pool width + 1) run concurrently on one shared engine
// pool — enough chains in flight to saturate the workers, few enough that
// kernels finish progressively; each kernel's progress line streams to w
// as it completes (so completion order, not suite order), while the
// returned slice stays in suite order.
func RunSuite(ctx context.Context, p Profile, w io.Writer) ([]KernelRun, error) {
	all := kernels.All()
	e := stoke.NewEngine(stoke.EngineConfig{})
	defer e.Close()

	out := make([]KernelRun, len(all))
	errs := make([]error, len(all))
	var mu sync.Mutex // serializes progress lines on w
	var wg sync.WaitGroup
	// Bound in-flight kernels to slightly more than the pool width: enough
	// concurrent chains to saturate the workers, few enough that kernels
	// complete (and stream their lines) progressively instead of all
	// finishing together in one burst at the end.
	sem := make(chan struct{}, e.Workers()+1)
	for i := range all {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			b := all[i]
			// Per-kernel seed offsets, as Engine.OptimizeAll applies.
			opts := append(p.options(), stoke.WithSeed(p.Seed+int64(i)*stoke.KernelSeedStride))
			rep, err := e.Optimize(ctx, b.Kernel, opts...)
			if err != nil {
				errs[i] = fmt.Errorf("%s: %w", b.Name, err)
				return
			}
			kr := KernelRun{Bench: b, Report: rep}
			base := pipeline.Cycles(b.Target)
			speedup := func(prog *x64.Program) float64 {
				if prog == nil {
					return 0
				}
				c := pipeline.Cycles(prog)
				if c == 0 {
					return 1
				}
				return base / c
			}
			kr.GccSpeedup = speedup(b.GccO3)
			kr.IccSpeedup = speedup(b.IccO3)
			kr.StokeSpeedup = speedup(rep.Rewrite)
			kr.PaperSpeedup = speedup(b.PaperRewrite)
			out[i] = kr
			if w != nil {
				mu.Lock()
				fmt.Fprintf(w, "# %-6s target=%2d insts rewrite=%2d insts stoke=%.2fx gcc=%.2fx verdict=%v synth=%v (%.1fs+%.1fs)\n",
					b.Name, b.Target.InstCount(), rep.Rewrite.InstCount(),
					kr.StokeSpeedup, kr.GccSpeedup, rep.Verdict, rep.SynthesisSucceeded,
					rep.SynthTime.Seconds(), rep.OptTime.Seconds())
				mu.Unlock()
			}
		}(i)
	}
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		return nil, err
	}
	return out, nil
}

// Fig01Montgomery reproduces Figure 1: the Montgomery multiplication kernel
// compiled by gcc -O3 versus the STOKE rewrite.
func Fig01Montgomery(ctx context.Context, w io.Writer, p Profile) error {
	b, err := kernels.ByName("mont")
	if err != nil {
		return err
	}
	rep, err := stoke.Optimize(ctx, b.Kernel, p.options()...)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Figure 1: Montgomery multiplication kernel\n")
	fmt.Fprintf(w, "==========================================\n\n")
	fmt.Fprintf(w, "llvm -O0 target: %d instructions, %.1f cycles (pipeline model)\n",
		b.Target.InstCount(), pipeline.Cycles(b.Target))
	fmt.Fprintf(w, "gcc -O3:         %d instructions, %.1f cycles\n",
		b.GccO3.InstCount(), pipeline.Cycles(b.GccO3))
	fmt.Fprintf(w, "paper's STOKE:   %d instructions, %.1f cycles\n",
		b.PaperRewrite.InstCount(), pipeline.Cycles(b.PaperRewrite))
	fmt.Fprintf(w, "our STOKE run:   %d instructions, %.1f cycles (verdict %v)\n\n",
		rep.Rewrite.InstCount(), pipeline.Cycles(rep.Rewrite), rep.Verdict)
	fmt.Fprintf(w, "paper claim: STOKE 16 lines shorter and 1.6x faster than gcc -O3\n")
	fmt.Fprintf(w, "model check: paper rewrite is %d lines shorter and %.2fx faster than gcc -O3\n\n",
		b.GccO3.InstCount()-b.PaperRewrite.InstCount(),
		pipeline.Cycles(b.GccO3)/pipeline.Cycles(b.PaperRewrite))
	fmt.Fprintf(w, "--- gcc -O3 ---\n%s\n--- paper STOKE rewrite ---\n%s\n--- our discovered rewrite ---\n%s\n",
		b.GccO3, b.PaperRewrite, rep.Rewrite)
	return nil
}

// Fig02Throughput reproduces Figure 2: validations per second (left) and
// testcase evaluations per second (right) across the benchmark suite.
func Fig02Throughput(w io.Writer) error {
	fmt.Fprintf(w, "Figure 2: validator vs testcase throughput\n")
	fmt.Fprintf(w, "==========================================\n\n")

	var valRates, tcRates []float64
	for _, b := range kernels.All() {
		// Validation throughput: time equivalence queries of the target
		// against itself-with-a-twist (its gcc comparator when convention
		// compatible, else a clone). Budgeted so hard queries terminate.
		other := b.GccO3
		if b.Name == "list" || other == nil {
			other = b.Target.Clone()
		}
		live := verify.LiveOut{GPRs: b.Spec.LiveOut.GPRs,
			Xmms: b.Spec.LiveOut.Xmms, Flags: b.Spec.LiveOut.Flags, Mem: b.LiveMem}
		cfg := verify.DefaultConfig
		cfg.Budget = 50000
		start := time.Now()
		n := 0
		for time.Since(start) < 300*time.Millisecond {
			verify.Equivalent(context.Background(), b.Target, other, live, cfg)
			n++
		}
		valRate := float64(n) / time.Since(start).Seconds()
		valRates = append(valRates, valRate)

		// Testcase throughput: emulator runs per second.
		tcRate, err := testcaseRate(b)
		if err != nil {
			return err
		}
		tcRates = append(tcRates, tcRate)
		fmt.Fprintf(w, "%-6s validations/s %8.1f   testcase evals/s %10.0f\n",
			b.Name, valRate, tcRate)
	}

	fmt.Fprintf(w, "\nValidations per second (paper: well below 100):\n")
	histogram(w, valRates, []float64{10, 30, 50, 70, 90})
	fmt.Fprintf(w, "\nTestcase evaluations per second (paper: just under 500,000):\n")
	histogram(w, tcRates, []float64{200000, 250000, 300000, 350000, 400000})
	return nil
}

// Fig03PredictedVsActual reproduces Figure 3: the static latency sum
// (Equation 13) against the ILP-aware pipeline model, across every program
// variant in the suite.
func Fig03PredictedVsActual(w io.Writer) error {
	fmt.Fprintf(w, "Figure 3: predicted (static latency sum) vs actual (pipeline cycles)\n")
	fmt.Fprintf(w, "=====================================================================\n\n")
	var xs, ys []float64
	for _, b := range kernels.All() {
		for _, v := range []struct {
			kind string
			p    *x64.Program
		}{
			{"O0", b.Target}, {"gcc", b.GccO3}, {"icc", b.IccO3}, {"stoke", b.PaperRewrite},
		} {
			if v.p == nil {
				continue
			}
			pred := perf.H(v.p)
			act := pipeline.Cycles(v.p)
			xs = append(xs, pred)
			ys = append(ys, act)
			fmt.Fprintf(w, "%-6s %-5s predicted %7.1f actual %7.1f\n", b.Name, v.kind, pred, act)
		}
	}
	r := pearson(xs, ys)
	fmt.Fprintf(w, "\nPearson correlation: %.3f (paper: \"well correlated but distinguished by outliers\")\n", r)
	// Outliers: the largest |residual| points are the high-ILP codes.
	fmt.Fprintf(w, "largest ILP ratios (predicted/actual, high = more ILP):\n")
	type pt struct {
		ratio float64
		i     int
	}
	var pts []pt
	for i := range xs {
		if ys[i] > 0 {
			pts = append(pts, pt{xs[i] / ys[i], i})
		}
	}
	sort.Slice(pts, func(a, b int) bool { return pts[a].ratio > pts[b].ratio })
	for i := 0; i < 5 && i < len(pts); i++ {
		fmt.Fprintf(w, "  ratio %.2f at point %d\n", pts[i].ratio, pts[i].i)
	}
	return nil
}

// Fig05EarlyTermination reproduces Figure 5: proposals per second versus
// testcases evaluated per proposal during synthesis, under the
// early-termination optimisation of §4.5.
func Fig05EarlyTermination(ctx context.Context, w io.Writer, p Profile) error {
	b, err := kernels.ByName("mont")
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Figure 5: early termination during mont synthesis\n")
	fmt.Fprintf(w, "=================================================\n\n")
	fmt.Fprintf(w, "%10s %12s %16s %12s\n", "proposals", "cost", "tests/proposal", "proposals/s")

	s, tests, err := synthSampler(b, p, 0)
	if err != nil {
		return err
	}
	_ = tests
	start := time.Now()
	var lastProposals, lastTests int64
	lastTime := start
	s.StepInterval = int64(p.SynthProposals) / 12
	if s.StepInterval == 0 {
		s.StepInterval = 1000
	}
	s.OnStep = func(st mcmc.Stats, cur float64) {
		now := time.Now()
		dp := st.Proposals - lastProposals
		dt := st.TestsEvaluated - lastTests
		el := now.Sub(lastTime).Seconds()
		if dp > 0 && el > 0 {
			fmt.Fprintf(w, "%10d %12.1f %16.2f %12.0f\n",
				st.Proposals, cur, float64(dt)/float64(dp), float64(dp)/el)
		}
		lastProposals, lastTests, lastTime = st.Proposals, st.TestsEvaluated, now
	}
	res := s.Run(ctx, s.RandomProgram(), p.SynthProposals)
	perProp := float64(res.Stats.TestsEvaluated) / float64(res.Stats.Proposals)
	fmt.Fprintf(w, "\noverall: %.2f testcases/proposal (32 without early termination, a %.1fx saving)\n",
		perProp, 32/perProp)
	return nil
}

// Fig06ImprovedMetric prints the worked example of Figure 6.
func Fig06ImprovedMetric(w io.Writer) {
	fmt.Fprintf(w, "Figure 6: strict vs improved register equality\n")
	fmt.Fprintf(w, "==============================================\n\n")
	fmt.Fprintf(w, "target: al = 1111 (0x0f); rewrite: al=0000 bl=1000 cl=1100 dl=1111\n\n")
	fmt.Fprintf(w, "strict   reg(T,R)  = POP(1111 xor 0000) = 4\n")
	fmt.Fprintf(w, "improved reg'(T,R) = min(4, 3+wm, 2+wm, 0+wm)\n")
	fmt.Fprintf(w, "  with wm=1 (figure's arithmetic): 1\n")
	fmt.Fprintf(w, "  with wm=3 (Figure 11 weights):   3\n")
	fmt.Fprintf(w, "(asserted by TestFigure6StrictVsImproved in internal/cost)\n")
}

// pearson computes the correlation coefficient.
func pearson(xs, ys []float64) float64 {
	n := float64(len(xs))
	if n == 0 {
		return 0
	}
	var sx, sy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
	}
	mx, my := sx/n, sy/n
	var num, dx, dy float64
	for i := range xs {
		num += (xs[i] - mx) * (ys[i] - my)
		dx += (xs[i] - mx) * (xs[i] - mx)
		dy += (ys[i] - my) * (ys[i] - my)
	}
	if dx == 0 || dy == 0 {
		return 0
	}
	return num / math.Sqrt(dx*dy)
}

// histogram prints bucket counts with the given upper bounds.
func histogram(w io.Writer, vals []float64, bounds []float64) {
	counts := make([]int, len(bounds)+1)
	for _, v := range vals {
		placed := false
		for i, b := range bounds {
			if v < b {
				counts[i]++
				placed = true
				break
			}
		}
		if !placed {
			counts[len(bounds)]++
		}
	}
	for i, c := range counts {
		var label string
		switch {
		case i == 0:
			label = fmt.Sprintf("< %.0f", bounds[0])
		case i == len(bounds):
			label = fmt.Sprintf("> %.0f", bounds[len(bounds)-1])
		default:
			label = fmt.Sprintf("%.0f-%.0f", bounds[i-1], bounds[i])
		}
		fmt.Fprintf(w, "  %-16s %s (%d)\n", label, bar(c), c)
	}
}

func bar(n int) string {
	s := ""
	for i := 0; i < n; i++ {
		s += "#"
	}
	return s
}
