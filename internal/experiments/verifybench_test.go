package experiments

import (
	"context"
	"testing"
)

// TestVerifyBaselineDifferential runs the verification-cost baseline at a
// test-sized budget and pins its two contracts on tracked kernels: the
// bank and gate never change a final verdict (every mode pair agrees, and
// every optimization-only run still ends SAT-proven Equal), and no tracked
// kernel ever produces a symbolic-model/emulator mismatch.
func TestVerifyBaselineDifferential(t *testing.T) {
	runs, match, err := MeasureVerifyBaseline(context.Background(),
		[]string{"p01", "p09"}, 2, 20000, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !match {
		t.Fatalf("final verdicts differ between baseline and banked modes: %+v", runs)
	}
	for _, r := range runs {
		for _, v := range r.Verdicts {
			if v != "equal" {
				t.Errorf("%s/%s: final verdict %q, want every run SAT-proven equal", r.Kernel, r.Mode, v)
			}
		}
		if r.ModelMismatches != 0 {
			t.Errorf("%s/%s: %d symbolic-model/emulator mismatches on a tracked kernel",
				r.Kernel, r.Mode, r.ModelMismatches)
		}
		if r.SATCalls == 0 {
			t.Errorf("%s/%s: no SAT calls recorded — the proof profile is not being threaded", r.Kernel, r.Mode)
		}
		if r.Mode == "baseline" && (r.ReplayKills != 0 || r.GateDeferrals != 0) {
			t.Errorf("baseline mode recorded replay kills %d / deferrals %d with the pipeline disabled",
				r.ReplayKills, r.GateDeferrals)
		}
	}
}
