package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/kernels"
	"repro/stoke"
)

// SearchRun is one measured configuration of the search-coordination
// baseline: a kernel and a coordination mode ("tempering" runs the
// coordinator's replica-exchange ladder with the shared rejection
// profile; "independent" runs the paper's §5.3 discipline of isolated
// chains at the phase β), aggregated over several seeds.
type SearchRun struct {
	Kernel    string  `json:"kernel"`
	Mode      string  `json:"mode"`
	Seeds     int     `json:"seeds"`
	Chains    int     `json:"chains"`
	Proposals int64   `json:"proposals_per_chain"`
	Ell       int     `json:"ell"`
	Hits      int     `json:"hits"`
	HitRate   float64 `json:"hit_rate"`

	// MeanProposalsToZero averages, over hitting seeds, the earliest
	// chain-local proposal index at which any chain reached a zero-cost
	// rewrite (the time-to-zero-cost metric; 0 when no seed hit).
	MeanProposalsToZero float64 `json:"mean_proposals_to_zero"`

	BusySeconds float64 `json:"busy_seconds"`
	Swaps       int     `json:"swaps"`
}

// SearchBaseline is the machine-readable record emitted as
// BENCH_search.json: replica-exchange tempering against independent
// chains on synthesis hit-rate and time-to-zero-cost, tracked across PRs.
type SearchBaseline struct {
	GoVersion string      `json:"go_version"`
	GOARCH    string      `json:"goarch"`
	Date      string      `json:"date"`
	Runs      []SearchRun `json:"runs"`

	// TemperingWins records, per kernel, whether tempering matched or
	// beat independent chains on hit-rate (strictly) or, at equal
	// hit-rate, on mean proposals to zero cost.
	TemperingWins map[string]bool `json:"tempering_wins"`
	WinCount      int             `json:"win_count"`

	// Cache holds the rewrite-store baseline: cold search cost versus
	// served cache-hit latency per kernel (see cachebench.go).
	Cache []CacheRun `json:"cache_runs,omitempty"`

	// Verify holds the verification-cost baseline: SAT calls, bank replay
	// kills, gate deferrals and proof-time percentiles per kernel, with
	// the bank and gate off versus on (see verifybench.go).
	// VerifyVerdictsMatch records the acceptance invariant that both modes
	// reached identical final verdicts on every kernel and seed.
	Verify              []VerifyRun `json:"verify_runs,omitempty"`
	VerifyVerdictsMatch bool        `json:"verify_verdicts_match,omitempty"`
}

// DefaultSearchKernels are the measured profiles: three synthesis
// problems from the paper's p01–p25 suite, hard enough at the baseline
// budget that chains benefit from communicating.
var DefaultSearchKernels = []string{"p09", "p13", "p14"}

// MeasureSearchBaseline runs synthesis-only searches over both
// coordination modes for every named kernel.
func MeasureSearchBaseline(ctx context.Context, names []string, seeds, chains int, proposals int64, ell int) (SearchBaseline, error) {
	base := SearchBaseline{
		GoVersion:     runtime.Version(),
		GOARCH:        runtime.GOARCH,
		Date:          time.Now().UTC().Format("2006-01-02"),
		TemperingWins: map[string]bool{},
	}
	e := stoke.NewEngine(stoke.EngineConfig{})
	defer e.Close()

	for _, name := range names {
		b, err := kernels.ByName(name)
		if err != nil {
			return base, err
		}
		var modes [2]SearchRun
		for mi, mode := range []string{"independent", "tempering"} {
			run := SearchRun{
				Kernel: name, Mode: mode, Seeds: seeds,
				Chains: chains, Proposals: proposals, Ell: ell,
			}
			var sumToZero float64
			for seed := 0; seed < seeds; seed++ {
				var mu sync.Mutex
				firstZero := int64(-1)
				opts := []stoke.Option{
					stoke.WithSeed(1 + int64(seed)*stoke.KernelSeedStride),
					stoke.WithChains(chains, 0),
					stoke.WithBudgets(proposals, 1),
					stoke.WithEll(ell),
					stoke.WithTempering(mode == "tempering"),
					stoke.WithSharedProfile(mode == "tempering"),
					stoke.WithObserver(func(ev stoke.Event) {
						if ev.Kind == stoke.EventChainImproved && ev.Cost == 0 {
							mu.Lock()
							if firstZero < 0 || ev.Proposal < firstZero {
								firstZero = ev.Proposal
							}
							mu.Unlock()
						}
					}),
				}
				rep, err := e.Optimize(ctx, b.Kernel, opts...)
				if err != nil {
					return base, err
				}
				if ctx.Err() != nil {
					return base, ctx.Err()
				}
				run.BusySeconds += rep.SynthTime.Seconds()
				run.Swaps += rep.Swaps
				if rep.SynthesisSucceeded {
					run.Hits++
					if firstZero >= 0 {
						sumToZero += float64(firstZero)
					} else {
						// A swap delivered the zero-cost program without an
						// improvement event; charge the full budget.
						sumToZero += float64(proposals)
					}
				}
			}
			run.HitRate = float64(run.Hits) / float64(seeds)
			if run.Hits > 0 {
				run.MeanProposalsToZero = sumToZero / float64(run.Hits)
			}
			base.Runs = append(base.Runs, run)
			modes[mi] = run
		}
		ind, tem := modes[0], modes[1]
		win := tem.HitRate > ind.HitRate ||
			(tem.HitRate == ind.HitRate && tem.Hits > 0 &&
				tem.MeanProposalsToZero <= ind.MeanProposalsToZero)
		base.TemperingWins[name] = win
		if win {
			base.WinCount++
		}
	}
	return base, nil
}

// WriteSearchBaseline measures the baseline and writes it to path.
func WriteSearchBaseline(ctx context.Context, path string, names []string, seeds, chains int, proposals int64, ell int) (SearchBaseline, error) {
	base, err := MeasureSearchBaseline(ctx, names, seeds, chains, proposals, ell)
	if err != nil {
		return base, err
	}
	data, err := json.MarshalIndent(base, "", "  ")
	if err != nil {
		return base, err
	}
	data = append(data, '\n')
	return base, os.WriteFile(path, data, 0o644)
}

// FormatSearchBaseline renders the baseline as the table stoke-bench
// prints alongside the JSON.
func FormatSearchBaseline(base SearchBaseline) string {
	var sb strings.Builder
	for _, r := range base.Runs {
		fmt.Fprintf(&sb, "%-5s %-12s hit %d/%d  mean-to-zero %9.0f  swaps %4d  %6.1fs\n",
			r.Kernel, r.Mode, r.Hits, r.Seeds, r.MeanProposalsToZero, r.Swaps, r.BusySeconds)
	}
	names := make([]string, 0, len(base.TemperingWins))
	for k := range base.TemperingWins {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		verdict := "independent ahead"
		if base.TemperingWins[k] {
			verdict = "tempering >= independent"
		}
		fmt.Fprintf(&sb, "verdict %-5s %s\n", k, verdict)
	}
	fmt.Fprintf(&sb, "tempering wins on %d/%d kernels\n", base.WinCount, len(base.TemperingWins))
	return sb.String()
}
