package experiments

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"repro/internal/x64"
)

// tiny is a budget profile for tests: fractions of a second per kernel.
var tiny = Profile{
	Seed: 3, SynthChains: 1, OptChains: 1,
	SynthProposals: 4000, OptProposals: 6000, Ell: 12,
}

func TestFig01(t *testing.T) {
	var buf bytes.Buffer
	if err := Fig01Montgomery(context.Background(), &buf, tiny); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"gcc -O3", "paper's STOKE", "1.6x"} {
		if !strings.Contains(out, want) {
			t.Errorf("Fig01 output missing %q", want)
		}
	}
	// The paper's headline: 16 lines shorter than gcc -O3 (27 vs 11).
	if !strings.Contains(out, "16 lines shorter") {
		t.Errorf("Fig01 must reproduce the 16-line delta:\n%s", out)
	}
}

func TestFig03CorrelationPositive(t *testing.T) {
	var buf bytes.Buffer
	if err := Fig03PredictedVsActual(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Pearson correlation: 0.9") &&
		!strings.Contains(buf.String(), "Pearson correlation: 1.0") &&
		!strings.Contains(buf.String(), "Pearson correlation: 0.8") {
		t.Errorf("expected strong positive correlation:\n%s",
			buf.String()[len(buf.String())-400:])
	}
}

func TestFig06(t *testing.T) {
	var buf bytes.Buffer
	Fig06ImprovedMetric(&buf)
	if !strings.Contains(buf.String(), "min(4, 3+wm, 2+wm, 0+wm)") {
		t.Error("Fig06 must show the worked minimum")
	}
}

func TestFig11MatchesPaper(t *testing.T) {
	var buf bytes.Buffer
	Fig11Params(&buf)
	out := buf.String()
	for _, want := range []string{
		"wsf   1", "wfp   1", "wur   2", "wm    3",
		"pc 0.16", "po 0.50", "ps 0.16", "pi 0.16", "pu 0.16",
		"beta 0.1", "l 50",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Figure 11 table missing %q:\n%s", want, out)
		}
	}
}

func TestFig07RunsAndOrdersModes(t *testing.T) {
	var buf bytes.Buffer
	// p01 converges fast enough for a test-budget comparison.
	if err := Fig07CostFunctions(context.Background(), &buf, tiny, "p01"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "improved") || !strings.Contains(buf.String(), "random") {
		t.Errorf("Fig07 output incomplete:\n%s", buf.String())
	}
}

func TestFig08Runs(t *testing.T) {
	var buf bytes.Buffer
	if err := Fig08PercentOfFinal(context.Background(), &buf, tiny, "p01"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "% of final") {
		t.Errorf("Fig08 output incomplete:\n%s", buf.String())
	}
}

func TestOverlap(t *testing.T) {
	a := mustProg(t, "movq rdi, rax\naddq rsi, rax")
	b := mustProg(t, "movq rdi, rax\nsubq rsi, rax")
	if got := overlap(a, a); got != 1 {
		t.Errorf("overlap(a,a) = %v, want 1", got)
	}
	if got := overlap(b, a); got != 0.5 {
		t.Errorf("overlap(b,a) = %v, want 0.5", got)
	}
}

func mustProg(t *testing.T, src string) *x64.Program {
	t.Helper()
	p, err := x64.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}
