package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/kernels"
	"repro/internal/store"
	"repro/stoke"
)

// CacheRun is one measured kernel of the rewrite-store baseline: the cold
// cost of proving the kernel by search against the served cost of a
// content-addressed cache hit, plus the store's hit/miss counters.
type CacheRun struct {
	Kernel string `json:"kernel"`

	// ColdMS is the wall-clock of the populating run: search, validation
	// and store write-back.
	ColdMS float64 `json:"cold_ms"`

	// Hits is the number of resubmissions served from the store; HitMeanUS
	// is their mean wall-clock (revalidation included) in microseconds.
	Hits      int     `json:"hits"`
	HitMeanUS float64 `json:"hit_mean_us"`

	// SpeedupX is ColdMS over the mean hit latency — what serving a proven
	// rewrite saves over re-searching for it.
	SpeedupX float64 `json:"speedup_x"`

	StoreHits   int64 `json:"store_hits"`
	StoreMisses int64 `json:"store_misses"`
}

// DefaultCacheKernels are the cache-baseline profiles: small suite kernels
// whose optimization-only runs complete in seconds.
var DefaultCacheKernels = []string{"p01", "p09"}

// MeasureCacheBaseline populates a fresh in-memory store with an
// optimization-only run per kernel, then resubmits each kernel `hits`
// times and measures the served latency.
func MeasureCacheBaseline(ctx context.Context, names []string, hits int) ([]CacheRun, error) {
	e := stoke.NewEngine(stoke.EngineConfig{})
	defer e.Close()

	var out []CacheRun
	for _, name := range names {
		b, err := kernels.ByName(name)
		if err != nil {
			return nil, err
		}
		s, err := store.Open("", store.DefaultCap)
		if err != nil {
			return nil, err
		}
		opts := []stoke.Option{
			stoke.WithRewriteStore(s),
			stoke.WithSeed(1),
			stoke.WithChains(0, 2), // optimization-only: always completes verified
			stoke.WithBudgets(1, 40000),
			stoke.WithEll(16),
		}
		run := CacheRun{Kernel: name, Hits: hits}

		start := time.Now()
		rep, err := e.Optimize(ctx, b.Kernel, opts...)
		if err != nil {
			return nil, fmt.Errorf("cache baseline %s: cold run: %w", name, err)
		}
		run.ColdMS = float64(time.Since(start).Microseconds()) / 1e3
		if rep.CacheHit {
			return nil, fmt.Errorf("cache baseline %s: cold run hit a fresh store", name)
		}

		var totalUS float64
		for i := 0; i < hits; i++ {
			start = time.Now()
			rep, err = e.Optimize(ctx, b.Kernel, opts...)
			if err != nil {
				return nil, fmt.Errorf("cache baseline %s: hit %d: %w", name, i, err)
			}
			if !rep.CacheHit {
				return nil, fmt.Errorf("cache baseline %s: resubmission %d missed", name, i)
			}
			totalUS += float64(time.Since(start).Microseconds())
		}
		if hits > 0 {
			run.HitMeanUS = totalUS / float64(hits)
			run.SpeedupX = run.ColdMS * 1e3 / run.HitMeanUS
		}
		st := s.Stats()
		run.StoreHits, run.StoreMisses = st.Hits, st.Misses
		out = append(out, run)
	}
	return out, nil
}

// WriteCacheBaseline measures the cache baseline and folds the rows into
// the search-baseline JSON at path (created if absent, other sections
// preserved otherwise).
func WriteCacheBaseline(ctx context.Context, path string, names []string, hits int) ([]CacheRun, error) {
	runs, err := MeasureCacheBaseline(ctx, names, hits)
	if err != nil {
		return nil, err
	}
	var base SearchBaseline
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &base); err != nil {
			return nil, fmt.Errorf("cache baseline: existing %s is not a search baseline: %w", path, err)
		}
	}
	base.Cache = runs
	data, err := json.MarshalIndent(base, "", "  ")
	if err != nil {
		return nil, err
	}
	data = append(data, '\n')
	return runs, os.WriteFile(path, data, 0o644)
}

// FormatCacheBaseline renders the cache rows as the table stoke-bench
// prints alongside the JSON.
func FormatCacheBaseline(runs []CacheRun) string {
	var sb strings.Builder
	for _, r := range runs {
		fmt.Fprintf(&sb, "%-5s cold %8.1fms  hit mean %8.0fus over %d  speedup %8.0fx  store %d/%d hit/miss\n",
			r.Kernel, r.ColdMS, r.HitMeanUS, r.Hits, r.SpeedupX, r.StoreHits, r.StoreMisses)
	}
	return sb.String()
}
