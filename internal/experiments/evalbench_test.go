package experiments

// Tests for the eval-baseline regression guard's comparison rules: the
// CI -check step fails on tracked-row regressions beyond the tolerance,
// tolerates box noise inside it, and ignores rows the committed baseline
// does not track yet.

import (
	"strings"
	"testing"
)

func evalBase(speedups, regFree map[string]float64) EvalBaseline {
	return EvalBaseline{
		Speedups:        speedups,
		BatchedSpeedups: map[string]float64{},
		FlagFree:        map[string]float64{},
		RegFree:         regFree,
	}
}

func TestCompareEvalBaselines(t *testing.T) {
	committed := evalBase(
		map[string]float64{"p01/ell=50": 4.0, "mont/ell=50": 3.0},
		map[string]float64{"p01/ell=50": 0.30},
	)

	// Within tolerance: a noisy box may lose up to 35% of a ratio.
	fresh := evalBase(
		map[string]float64{"p01/ell=50": 4.0 * 0.70, "mont/ell=50": 3.3},
		map[string]float64{"p01/ell=50": 0.28},
	)
	if f := compareEvalBaselines(committed, fresh); len(f) != 0 {
		t.Fatalf("within-tolerance comparison failed: %v", f)
	}

	// Beyond tolerance on one row: exactly that row is reported.
	fresh = evalBase(
		map[string]float64{"p01/ell=50": 4.0 * 0.5, "mont/ell=50": 3.0},
		map[string]float64{"p01/ell=50": 0.30},
	)
	f := compareEvalBaselines(committed, fresh)
	if len(f) != 1 || !strings.Contains(f[0], "speedup p01/ell=50") {
		t.Fatalf("want the p01 speedup regression reported, got %v", f)
	}

	// A tracked row missing from the fresh measurement fails; an extra
	// fresh row (a new kernel without a committed baseline) does not.
	fresh = evalBase(
		map[string]float64{"p01/ell=50": 4.0, "new/ell=50": 1.0},
		map[string]float64{"p01/ell=50": 0.30},
	)
	f = compareEvalBaselines(committed, fresh)
	if len(f) != 1 || !strings.Contains(f[0], "mont/ell=50: missing") {
		t.Fatalf("want the missing mont row reported, got %v", f)
	}

	// A collapsed coverage fraction is a regression like any other ratio.
	fresh = evalBase(
		map[string]float64{"p01/ell=50": 4.0, "mont/ell=50": 3.0},
		map[string]float64{"p01/ell=50": 0.0},
	)
	f = compareEvalBaselines(committed, fresh)
	if len(f) != 1 || !strings.Contains(f[0], "reg_free p01/ell=50") {
		t.Fatalf("want the reg_free collapse reported, got %v", f)
	}
}
