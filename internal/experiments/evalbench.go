package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"strings"
	"time"

	"repro/internal/cost"
	"repro/internal/emu"
	"repro/internal/kernels"
	"repro/internal/mcmc"
	"repro/internal/testgen"
)

// EvalRate is one measured configuration of the evaluation-throughput
// baseline: a kernel, a sequence length, and one of the two evaluation
// pipelines.
type EvalRate struct {
	Kernel          string  `json:"kernel"`
	Ell             int     `json:"ell"`
	Mode            string  `json:"mode"` // "interpreted", "compiled" or "batched"
	Proposals       int64   `json:"proposals"`
	Seconds         float64 `json:"seconds"`
	ProposalsPerSec float64 `json:"proposals_per_sec"`
}

// EvalBaseline is the machine-readable record emitted as BENCH_eval.json:
// the decode-once pipeline's throughput against the interpreter, tracked
// across PRs so regressions in the evaluation substrate are visible.
type EvalBaseline struct {
	GoVersion string     `json:"go_version"`
	GOARCH    string     `json:"goarch"`
	Date      string     `json:"date"`
	Runs      []EvalRate `json:"runs"`

	// Speedups maps "kernel/ell=N" to compiled-over-interpreted
	// proposals/sec.
	Speedups map[string]float64 `json:"speedups"`

	// BatchedSpeedups maps "kernel/ell=N" to batched-over-compiled
	// proposals/sec — the amortisation won by running each instruction
	// slot across all live testcases in lockstep.
	BatchedSpeedups map[string]float64 `json:"batched_speedups"`

	// FlagFree maps "kernel/ell=N" to the fraction of the padded start
	// program's flag-writing slots the compile-time liveness pass proved
	// dead and suppressed (emu.Compiled.FlagFreeSlots over
	// FlagWritingSlots) — the static coverage of the dead-flag
	// elimination on each tracked row. Rows whose start program writes no
	// flags at all (the SSE rewrite rows) record 1.0: nothing to
	// suppress, full coverage.
	FlagFree map[string]float64 `json:"flag_free"`

	// RegFree maps "kernel/ell=N" to the fraction of register-writing
	// slots the register-liveness pass suppressed across the compiled
	// chain's proposals (mcmc.Stats.RegFreeSlots over RegWritingSlots,
	// sampled per proposal after patching). The fraction is dynamic —
	// measured over the candidates the chain actually visits under the
	// kernel's live-out exit gens — because the -O0 start programs
	// themselves carry almost no dead register writes. A chain that never
	// saw a register-writing slot records 1.0: nothing to suppress.
	RegFree map[string]float64 `json:"reg_free"`
}

// evalConfigs are the measured profiles: the headline p01 ℓ=14/ℓ=50 pair
// matching BenchmarkEvalThroughput, plus a longer register kernel, the
// memory-heavy Montgomery kernel, and the SSE saxpy kernel as secondary
// tracking points. The saxpy kernel is measured twice: a chain from the
// scalar -O0 target (the synthesis-entry regime) and a chain from the
// paper's Figure 14 SSE rewrite (fromRewrite), whose candidates execute the
// packed micro-ops on every testcase — the row that tracks the DIV/IDIV +
// SSE lowering of the compiled pipeline.
var evalConfigs = []struct {
	label       string // row name; defaults to the kernel name
	kernel      string
	ell         int
	fromRewrite bool // start the chain from PaperRewrite instead of Target
}{
	{"", "p01", 14, false},
	{"", "p01", 50, false},
	{"", "p23", 50, false},
	{"", "mont", 50, false},
	{"", "saxpy", 50, false},
	{"saxpy-sse", "saxpy", 50, true},
}

// MeasureEvalThroughput runs each baseline configuration for the given
// proposal budget through both evaluation pipelines (an optimization-phase
// chain: β=1, perf term on, started from the target).
func MeasureEvalThroughput(proposals int64) (EvalBaseline, error) {
	base := EvalBaseline{
		GoVersion:       runtime.Version(),
		GOARCH:          runtime.GOARCH,
		Date:            time.Now().UTC().Format("2006-01-02"),
		Speedups:        map[string]float64{},
		BatchedSpeedups: map[string]float64{},
		FlagFree:        map[string]float64{},
		RegFree:         map[string]float64{},
	}
	for _, cfg := range evalConfigs {
		bench, err := kernels.ByName(cfg.kernel)
		if err != nil {
			return base, err
		}
		label := cfg.label
		if label == "" {
			label = cfg.kernel
		}
		startProg := bench.Target
		if cfg.fromRewrite {
			startProg = bench.PaperRewrite
		}
		tests, err := testgen.Generate(bench.Target, bench.Spec, 32, rand.New(rand.NewSource(8)))
		if err != nil {
			return base, err
		}
		var rates [3]float64
		regFree := 1.0
		for mi, mode := range []string{"interpreted", "compiled", "batched"} {
			params := mcmc.PaperParams
			params.Ell = cfg.ell
			params.Beta = 1.0
			s := &mcmc.Sampler{
				Params: params,
				Pools:  mcmc.PoolsFor(bench.Target, bench.SSE),
				// The engine's configuration: candidates compile under the
				// kernel's live-out exit gens, so the register-liveness
				// pass suppresses writes of non-live registers.
				Cost:        cost.NewLive(tests, bench.Spec.LiveOut, cost.Improved, 1),
				Rng:         rand.New(rand.NewSource(9)),
				Interpreted: mi == 0,
				Batched:     mi == 2,
			}
			start := time.Now()
			res := s.Run(context.Background(), startProg, proposals)
			dur := time.Since(start)
			if mi == 1 {
				if w := res.Stats.RegWritingSlots; w > 0 {
					regFree = float64(res.Stats.RegFreeSlots) / float64(w)
				}
			}
			rate := float64(proposals) / dur.Seconds()
			rates[mi] = rate
			base.Runs = append(base.Runs, EvalRate{
				Kernel:          label,
				Ell:             cfg.ell,
				Mode:            mode,
				Proposals:       proposals,
				Seconds:         dur.Seconds(),
				ProposalsPerSec: rate,
			})
		}
		key := fmt.Sprintf("%s/ell=%d", label, cfg.ell)
		base.Speedups[key] = rates[1] / rates[0]
		base.BatchedSpeedups[key] = rates[2] / rates[1]
		comp := emu.Compile(startProg.PadTo(cfg.ell))
		// Every benched kernel gets a flag_free row: a start program with no
		// flag-writing slots (saxpy-sse) means the pass has nothing left to
		// prove — report full coverage, not a missing entry.
		base.FlagFree[key] = 1.0
		if w := comp.FlagWritingSlots(); w > 0 {
			base.FlagFree[key] = float64(comp.FlagFreeSlots()) / float64(w)
		}
		base.RegFree[key] = regFree
	}
	return base, nil
}

// EvalCheckTolerance is the fractional regression -check tolerates on each
// tracked ratio before failing: generous enough for noisy CI boxes, tight
// enough to catch a pipeline that lost its compiled or batched edge.
const EvalCheckTolerance = 0.35

// CheckEvalBaseline measures a fresh evaluation baseline and compares its
// box-independent ratios — compiled/interpreted and batched/compiled
// speedups, plus the flag-free and reg-free coverage fractions — against
// the committed BENCH_eval.json at path, failing on any tracked row that
// regressed by more than EvalCheckTolerance. Absolute proposals/sec are
// deliberately not compared: they measure the box, not the code.
func CheckEvalBaseline(path string, proposals int64) (EvalBaseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return EvalBaseline{}, err
	}
	var committed EvalBaseline
	if err := json.Unmarshal(data, &committed); err != nil {
		return EvalBaseline{}, fmt.Errorf("%s: %w", path, err)
	}
	fresh, err := MeasureEvalThroughput(proposals)
	if err != nil {
		return fresh, err
	}
	if failures := compareEvalBaselines(committed, fresh); len(failures) > 0 {
		return fresh, fmt.Errorf("eval baseline regressed against %s:\n  %s",
			path, strings.Join(failures, "\n  "))
	}
	return fresh, nil
}

// compareEvalBaselines reports every tracked ratio of the committed
// baseline that the fresh measurement misses or regresses beyond
// EvalCheckTolerance. Rows only the fresh measurement has are ignored:
// new kernels must not fail the guard before their baseline lands.
func compareEvalBaselines(committed, fresh EvalBaseline) []string {
	var failures []string
	check := func(metric string, want, got map[string]float64) {
		for key, w := range want {
			g, ok := got[key]
			if !ok {
				failures = append(failures, fmt.Sprintf("%s %s: missing from fresh measurement", metric, key))
				continue
			}
			if g < w*(1-EvalCheckTolerance) {
				failures = append(failures, fmt.Sprintf("%s %s: %.2f fresh vs %.2f committed (>%.0f%% regression)",
					metric, key, g, w, 100*EvalCheckTolerance))
			}
		}
	}
	check("speedup", committed.Speedups, fresh.Speedups)
	check("batched_speedup", committed.BatchedSpeedups, fresh.BatchedSpeedups)
	check("flag_free", committed.FlagFree, fresh.FlagFree)
	check("reg_free", committed.RegFree, fresh.RegFree)
	sort.Strings(failures)
	return failures
}

// WriteEvalBaseline measures evaluation throughput and writes the baseline
// JSON to path.
func WriteEvalBaseline(path string, proposals int64) (EvalBaseline, error) {
	base, err := MeasureEvalThroughput(proposals)
	if err != nil {
		return base, err
	}
	data, err := json.MarshalIndent(base, "", "  ")
	if err != nil {
		return base, err
	}
	data = append(data, '\n')
	return base, os.WriteFile(path, data, 0o644)
}
