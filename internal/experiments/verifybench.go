package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"strings"

	"repro/internal/kernels"
	"repro/stoke"
)

// VerifyRun is one measured kernel × mode of the verification-cost
// baseline: how many equivalence queries the run actually sent to the SAT
// solver, how many candidates the counterexample bank refuted by replay
// and the pre-verification gate postponed, and the proof-time and
// clause-count distribution of the queries that did run. "baseline"
// disables the bank and the gate (every validation is a SAT call);
// "banked" is the default pipeline, sharing one engine — and so one bank —
// across every kernel and seed of the mode.
type VerifyRun struct {
	Kernel string `json:"kernel"`
	Mode   string `json:"mode"`
	Seeds  int    `json:"seeds"`

	SATCalls        int `json:"sat_calls"`
	ReplayKills     int `json:"replay_kills"`
	GateDeferrals   int `json:"gate_deferrals"`
	ModelMismatches int `json:"model_mismatches"`
	Refinements     int `json:"refinements"`

	ProofP50MS   float64 `json:"proof_p50_ms"`
	ProofP99MS   float64 `json:"proof_p99_ms"`
	ProofTotalMS float64 `json:"proof_total_ms"`
	ClausesP50   int     `json:"clauses_p50"`
	ClausesP99   int     `json:"clauses_p99"`

	// Verdicts are the per-seed final verdicts, in seed order — the
	// equivalence check across modes: the bank and the gate may only
	// change how a verdict is reached, never which verdict.
	Verdicts []string `json:"verdicts"`
}

// DefaultVerifyKernels are the verification-baseline profiles: small suite
// kernels whose optimization-only runs verify in seconds and whose τ gaps
// produce refinement counterexamples for the bank to replay.
var DefaultVerifyKernels = []string{"p01", "p09", "p13"}

// MeasureVerifyBaseline runs optimization-only searches over every named
// kernel × seed, once with the verification pipeline disabled down to
// plain SAT calls and once with the counterexample bank and gate on, and
// reports the per-kernel proof-cost profiles. The runs are sequential
// within a mode so the banked mode's engine accumulates counterexamples
// across kernels and seeds, which is where replay kills come from.
func MeasureVerifyBaseline(ctx context.Context, names []string, seeds int, proposals int64, tests int) ([]VerifyRun, bool, error) {
	var out []VerifyRun
	for _, mode := range []string{"baseline", "banked"} {
		e := stoke.NewEngine(stoke.EngineConfig{})
		for _, name := range names {
			b, err := kernels.ByName(name)
			if err != nil {
				e.Close()
				return nil, false, err
			}
			run := VerifyRun{Kernel: name, Mode: mode, Seeds: seeds}
			var prof stoke.ProofProfile
			for seed := 0; seed < seeds; seed++ {
				opts := []stoke.Option{
					stoke.WithSeed(1 + int64(seed)*stoke.KernelSeedStride),
					stoke.WithChains(0, 2), // optimization-only: always reaches a verdict
					stoke.WithBudgets(1, proposals),
					stoke.WithEll(16),
					stoke.WithTests(tests),
				}
				if mode == "baseline" {
					opts = append(opts, stoke.WithCexBank(false), stoke.WithVerifyGate(false))
				}
				rep, err := e.Optimize(ctx, b.Kernel, opts...)
				if err != nil {
					e.Close()
					return nil, false, fmt.Errorf("verify baseline %s/%s seed %d: %w", name, mode, seed, err)
				}
				if ctx.Err() != nil {
					e.Close()
					return nil, false, ctx.Err()
				}
				run.SATCalls += rep.Proofs.SATCalls
				run.ReplayKills += rep.Proofs.ReplayKills
				run.GateDeferrals += rep.Proofs.GateDeferrals
				run.ModelMismatches += rep.Proofs.ModelMismatches
				run.Refinements += rep.Refinements
				run.Verdicts = append(run.Verdicts, rep.Verdict.String())
				prof.Times = append(prof.Times, rep.Proofs.Times...)
				prof.Clauses = append(prof.Clauses, rep.Proofs.Clauses...)
			}
			run.ProofP50MS = float64(prof.TimeP(0.50).Microseconds()) / 1e3
			run.ProofP99MS = float64(prof.TimeP(0.99).Microseconds()) / 1e3
			for _, d := range prof.Times {
				run.ProofTotalMS += float64(d.Microseconds()) / 1e3
			}
			run.ClausesP50 = prof.ClausesP(0.50)
			run.ClausesP99 = prof.ClausesP(0.99)
			out = append(out, run)
		}
		e.Close()
	}

	// The acceptance invariant: identical final verdicts, mode against mode.
	match := true
	half := len(out) / 2
	for i := 0; i < half; i++ {
		a, b := out[i], out[half+i]
		if len(a.Verdicts) != len(b.Verdicts) {
			match = false
			break
		}
		for j := range a.Verdicts {
			if a.Verdicts[j] != b.Verdicts[j] {
				match = false
			}
		}
	}
	return out, match, nil
}

// WriteVerifyBaseline measures the verification baseline and folds the
// rows into the search-baseline JSON at path (created if absent, other
// sections preserved otherwise).
func WriteVerifyBaseline(ctx context.Context, path string, names []string, seeds int, proposals int64, tests int) ([]VerifyRun, error) {
	runs, match, err := MeasureVerifyBaseline(ctx, names, seeds, proposals, tests)
	if err != nil {
		return nil, err
	}
	var base SearchBaseline
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &base); err != nil {
			return nil, fmt.Errorf("verify baseline: existing %s is not a search baseline: %w", path, err)
		}
	}
	base.Verify = runs
	base.VerifyVerdictsMatch = match
	data, err := json.MarshalIndent(base, "", "  ")
	if err != nil {
		return nil, err
	}
	data = append(data, '\n')
	return runs, os.WriteFile(path, data, 0o644)
}

// FormatVerifyBaseline renders the verify rows as the table stoke-bench
// prints alongside the JSON.
func FormatVerifyBaseline(runs []VerifyRun) string {
	var sb strings.Builder
	for _, r := range runs {
		fmt.Fprintf(&sb, "%-5s %-9s sat %3d  replay-kills %3d  defers %3d  mismatches %d  p50 %7.1fms  p99 %7.1fms  clauses p50 %6d\n",
			r.Kernel, r.Mode, r.SATCalls, r.ReplayKills, r.GateDeferrals,
			r.ModelMismatches, r.ProofP50MS, r.ProofP99MS, r.ClausesP50)
	}
	return sb.String()
}
