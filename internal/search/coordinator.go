// Package search coordinates the MCMC chains of one kernel phase. The
// paper runs chains independently (§5.3), which wastes everything a chain
// learns: β is fixed per phase, a chain stuck in a local minimum never
// escapes it, and every chain rediscovers the same discriminating
// testcases. The Coordinator turns the chain set into a communicating
// ensemble while keeping fixed-seed runs bit-for-bit reproducible:
//
//   - Replica exchange (parallel tempering): chains occupy a β ladder and
//     adjacent replicas swap their current programs under the standard
//     Metropolis swap criterion, so hot chains explore the landscape and
//     cold chains exploit the best basins found anywhere in the ensemble.
//   - Shared best-so-far broadcast: every chain's best testcase-correct
//     program feeds a global bounded pool; the final re-ranking draws from
//     the pool instead of per-chain bests, and chains whose own best is
//     hopeless (outside the re-rank window) and stagnant abandon their
//     line and reseed from the global best.
//   - Counterexample broadcast: a counterexample found validating one
//     chain's candidate refines every live chain's testcase set, not just
//     the finder's, and grows the shared rejection profile with it.
//
// Chains run in cadenced segments scheduled as independent tasks on the
// engine's worker pool, with a barrier between rounds. All coordination —
// swaps, pruning, validation — happens at barriers on the driving
// goroutine, so the outcome is a pure function of the configuration and
// seeds: the swap schedule is fixed (adjacent pairs, alternating parity,
// one seeded coin per pair per round), and every read of cross-chain state
// happens at a schedule point rather than a thread-timing-dependent one.
// The barrier design also makes cancellation trivially deadlock-free:
// segments poll the context themselves, and the driver never blocks on
// anything but the completion of tasks it has already scheduled.
package search

import (
	"context"
	"math"
	"math/rand"
	"sort"

	"repro/internal/cost"
	"repro/internal/mcmc"
	"repro/internal/testgen"
	"repro/internal/x64"
)

// DefaultCadence is the proposal count a chain runs between check-ins:
// large enough that barrier synchronisation is invisible next to
// evaluation work, small enough that swaps and broadcasts propagate many
// times per phase at the default budgets.
const DefaultCadence = 4096

// DefaultPoolSize bounds the global best-correct candidate pool.
const DefaultPoolSize = 16

// DefaultPruneWindow matches the paper's 20% re-ranking window (Figure 9,
// step 6): a chain whose best correct program costs more than 1.2x the
// global best can no longer influence the final answer through its own
// line, so restarting it there is hopeless.
const DefaultPruneWindow = 1.2

// Config describes one coordinated chain group. Chains, cadence and seeds
// fixed, a group's outcome is deterministic however its segments are
// scheduled.
type Config struct {
	// Cadence is the per-chain proposal count between barriers (0 takes
	// DefaultCadence).
	Cadence int64

	// Seed drives the swap coins. Runs with equal seeds draw identical
	// swap schedules.
	Seed int64

	// Exchange enables replica exchange between adjacent chains. The β
	// ladder itself lives on the samplers (mcmc.Run.Beta).
	Exchange bool

	// PruneAfter reseeds a chain from the global best correct program
	// once its own best has not improved for this many proposals while
	// sitting outside PruneWindow times the global best cost. Zero
	// disables pruning.
	PruneAfter  int64
	PruneWindow float64 // 0 takes DefaultPruneWindow

	// PoolSize bounds the global candidate pool (0 takes
	// DefaultPoolSize).
	PoolSize int

	// Tests is the number of testcases the chains started with; it tracks
	// broadcast growth so the shared profile can be resized.
	Tests int

	// Profile, when set, is grown alongside counterexample broadcasts.
	Profile *cost.SharedProfile

	// Validate, when set, is called at barriers every ValidateEvery
	// rounds with the current global best correct candidate. It returns
	// counterexample testcases to broadcast to every live chain (nil when
	// the candidate verified, was seen before, or produced no genuine
	// counterexample). It runs on the driving goroutine with every chain
	// paused, so broadcast points are deterministic.
	ValidateEvery int
	Validate      func(best *x64.Program) []testgen.Testcase

	// IncumbentCost, when set, makes scheduled validation cost-aware: the
	// SAT validator is only invoked when the pool head's modelled cost
	// beats the current incumbent's (the best already-proven rewrite —
	// initially the target, which is correct by construction). A pool
	// head that could not displace the incumbent in the final re-ranking
	// is not worth a proof; such rounds are counted as skipped
	// validations instead of spending SAT time.
	IncumbentCost func() float64

	// Defer, when set, is consulted after the cost-aware gate and before
	// Validate: returning true postpones this round's proof of the pool
	// head to a later validation round. It is the pre-verification gate's
	// hook — a deferred candidate is re-offered at every subsequent
	// scheduled round (the gate itself bounds how often it says true for
	// one candidate), so deferral delays a proof but never skips it: no
	// candidate is accepted on the gate's word alone.
	Defer func(best *x64.Program) bool

	// OnSwap and OnPrune observe coordination decisions (event streams).
	OnSwap  func(i, j int, ci, cj float64)
	OnPrune func(i int, adopted float64)
}

// Candidate is one pool entry: a testcase-correct program and its cost.
type Candidate struct {
	Prog *x64.Program
	Cost float64
}

// Coordinator drives one group of chains to completion. It is
// single-goroutine: only Drive touches the runs, and only between the
// segment batches it schedules itself.
type Coordinator struct {
	cfg  Config
	runs []*mcmc.Run
	rng  *rand.Rand

	pool     []Candidate
	poolKeys map[string]bool

	// Per-chain stagnation tracking for pruning, observed at barriers
	// (the chains' own restart bookkeeping resets on every restart, which
	// is exactly the hopeless loop pruning exists to break).
	lastBest []float64
	stale    []int64

	round       int64
	swaps       int
	prunes      int
	skippedVals int
	deferrals   int
	tests       int
}

// New builds a coordinator over already-begun runs. All runs must share
// one sequence length ℓ and score against identical testcase sets.
func New(cfg Config, runs []*mcmc.Run) *Coordinator {
	if cfg.Cadence <= 0 {
		cfg.Cadence = DefaultCadence
	}
	if cfg.PruneWindow <= 0 {
		cfg.PruneWindow = DefaultPruneWindow
	}
	if cfg.PoolSize <= 0 {
		cfg.PoolSize = DefaultPoolSize
	}
	c := &Coordinator{
		cfg:      cfg,
		runs:     runs,
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		poolKeys: make(map[string]bool),
		lastBest: make([]float64, len(runs)),
		stale:    make([]int64, len(runs)),
		tests:    cfg.Tests,
	}
	for i := range c.lastBest {
		c.lastBest[i] = math.Inf(1)
	}
	return c
}

// Drive runs every chain to completion in cadenced rounds. batch must
// execute all submitted bodies (concurrently or not) and return once they
// finish; the coordinator performs its barrier work between batches. A
// context cancellation stops after the in-flight batch without running
// further coordination, leaving best-so-far results harvestable.
func (c *Coordinator) Drive(ctx context.Context, batch func(bodies []func())) {
	for ctx.Err() == nil {
		var bodies []func()
		for _, r := range c.runs {
			if r.Finished() {
				continue
			}
			r := r
			bodies = append(bodies, func() { r.Step(ctx, c.cfg.Cadence) })
		}
		if len(bodies) == 0 {
			break
		}
		batch(bodies)
		if ctx.Err() != nil {
			break
		}
		c.barrier()
	}
	c.harvest()
}

// barrier performs one round of coordination: replica exchange, pool
// harvest, pruning, and scheduled validation with counterexample
// broadcast.
func (c *Coordinator) barrier() {
	c.round++
	c.exchange()
	c.harvest()
	c.prune()
	if c.cfg.Validate != nil && c.cfg.ValidateEvery > 0 &&
		c.round%int64(c.cfg.ValidateEvery) == 0 && len(c.pool) > 0 {
		if c.cfg.IncumbentCost != nil && c.pool[0].Cost >= c.cfg.IncumbentCost() {
			// Cost-aware gate: the pool head cannot beat the proven
			// incumbent, so a proof would be wasted SAT time.
			c.skippedVals++
			return
		}
		if c.cfg.Defer != nil && c.cfg.Defer(c.pool[0].Prog) {
			// Pre-verification gate: low-scoring pool head, proof deferred
			// to a later scheduled round (never skipped — the gate bounds
			// its own deferrals per candidate).
			c.deferrals++
			return
		}
		if tcs := c.cfg.Validate(c.pool[0].Prog); len(tcs) > 0 {
			c.broadcast(tcs)
		}
	}
}

// exchange attempts one swap per adjacent replica pair, alternating pair
// parity per round (the standard even-odd schedule). The coin is drawn for
// every pair on every round — even pairs with finished chains — so the
// swap schedule is a fixed function of the seed, independent of when
// individual chains exhaust their budgets.
func (c *Coordinator) exchange() {
	if !c.cfg.Exchange || len(c.runs) < 2 {
		return
	}
	for i := int((c.round - 1) % 2); i+1 < len(c.runs); i += 2 {
		coin := c.rng.Float64()
		ri, rj := c.runs[i], c.runs[i+1]
		if ri.Finished() || rj.Finished() {
			continue
		}
		bi, bj := ri.Beta(), rj.Beta()
		ci, cj := ri.CurrentCost(), rj.CurrentCost()
		// Metropolis swap criterion: accept with min(1, exp((βi−βj)(ci−cj))).
		// Equal-temperature pairs always accept; on the mostly-cold default
		// ladder those swaps are the transport layer, rotating cold
		// programs through the rung adjacent to the hot explorer so every
		// cold chain communicates with it over time. (Suppressing them was
		// measured to cost synthesis hit-rate: 1/3 kernels beating
		// independent chains instead of 3/3 on the BENCH_search suite.)
		if coin >= math.Exp((bi-bj)*(ci-cj)) {
			continue
		}
		pi, pj := ri.Current().Clone(), rj.Current().Clone()
		ri.Adopt(pj)
		rj.Adopt(pi)
		c.swaps++
		if c.cfg.OnSwap != nil {
			c.cfg.OnSwap(i, i+1, ci, cj)
		}
	}
}

// harvest folds every chain's best correct program into the global pool.
func (c *Coordinator) harvest() {
	for _, r := range c.runs {
		if bc, bcCost := r.BestCorrect(); bc != nil {
			c.offer(bc, bcCost)
		}
	}
}

// offer inserts a candidate into the bounded pool, deduplicated by
// listing. The pool stays sorted by cost with stable ties, so its order —
// and therefore everything decided from it — is deterministic.
func (c *Coordinator) offer(p *x64.Program, cst float64) {
	key := p.String()
	if c.poolKeys[key] {
		return
	}
	c.poolKeys[key] = true
	c.pool = append(c.pool, Candidate{Prog: p.Clone(), Cost: cst})
	sort.SliceStable(c.pool, func(a, b int) bool { return c.pool[a].Cost < c.pool[b].Cost })
	if len(c.pool) > c.cfg.PoolSize {
		c.pool = c.pool[:c.cfg.PoolSize]
	}
}

// prune reseeds chains whose own best correct program is both stagnant
// (no improvement for PruneAfter proposals of barrier-observed history)
// and hopeless (outside PruneWindow of the global best, or absent): their
// restarts could only ever rewind to a program the final re-ranking will
// discard, so they adopt the global best instead and explore from there.
func (c *Coordinator) prune() {
	if c.cfg.PruneAfter <= 0 || len(c.pool) == 0 {
		return
	}
	gbest := c.pool[0]
	for i, r := range c.runs {
		if r.Finished() {
			continue
		}
		_, bcCost := r.BestCorrect()
		if bcCost < c.lastBest[i] {
			c.stale[i] = 0
		} else {
			c.stale[i] += c.cfg.Cadence
		}
		c.lastBest[i] = bcCost
		if c.stale[i] < c.cfg.PruneAfter || bcCost <= gbest.Cost*c.cfg.PruneWindow {
			continue
		}
		r.Adopt(gbest.Prog)
		c.stale[i] = 0
		c.lastBest[i] = gbest.Cost
		c.prunes++
		if c.cfg.OnPrune != nil {
			c.cfg.OnPrune(i, gbest.Cost)
		}
	}
}

// broadcast folds counterexample testcases into every chain and the
// shared profile, then rebuilds the pool: entries predating the refined τ
// may no longer be correct, and the surviving ones re-enter from the
// chains' re-checked bests at the harvest that follows. Finished chains
// fold too — they take no more proposals, but AddTests re-scores their
// best against the refined τ, so a refuted program cannot re-enter the
// pool at a stale cost and become a poisoned prune/re-rank source.
func (c *Coordinator) broadcast(tcs []testgen.Testcase) {
	c.tests += len(tcs)
	if c.cfg.Profile != nil {
		c.cfg.Profile.Grow(c.tests)
	}
	for _, r := range c.runs {
		r.AddTests(tcs)
	}
	c.pool = nil
	c.poolKeys = make(map[string]bool)
	c.harvest()
}

// Results returns every chain's outcome, indexed by chain.
func (c *Coordinator) Results() []mcmc.Result {
	out := make([]mcmc.Result, len(c.runs))
	for i, r := range c.runs {
		out[i] = r.Result()
	}
	return out
}

// Pool returns the global best-correct candidates, best first. The
// programs are private clones, safe to hold after the chains move on.
func (c *Coordinator) Pool() []Candidate {
	return append([]Candidate(nil), c.pool...)
}

// Swaps reports accepted replica exchanges.
func (c *Coordinator) Swaps() int { return c.swaps }

// Prunes reports shared-best reseeds of stagnant chains.
func (c *Coordinator) Prunes() int { return c.prunes }

// SkippedValidations reports scheduled validation rounds skipped by the
// cost-aware gate (pool head no better than the proven incumbent).
func (c *Coordinator) SkippedValidations() int { return c.skippedVals }

// Deferrals reports scheduled validation rounds postponed by the
// pre-verification gate (Config.Defer returned true).
func (c *Coordinator) Deferrals() int { return c.deferrals }

// Ladder builds the default β ladder for n replicas: a mostly-cold shape
// with the leading replicas at the phase's base β (matching the paper's
// tuned temperature, which the previously independent chains all ran at)
// and a hot tail — one replica per four, at least one — descending
// geometrically to base/span. An A/B sweep over ladder shapes on the
// p09/p13/p14 synthesis problems showed uniformly hotter ladders strictly
// hurt hit-rate (hot chains random-walk instead of converging), while
// keeping the ensemble cold and dedicating a single explorer beat
// independent chains on both hit-rate and time-to-zero; see
// BENCH_search.json.
func Ladder(base float64, n int, span float64) []float64 {
	out := make([]float64, n)
	hot := n / 4
	if hot < 1 && n > 1 {
		hot = 1
	}
	cold := n - hot
	for i := 0; i < cold; i++ {
		out[i] = base
	}
	for i := cold; i < n; i++ {
		out[i] = base * math.Pow(span, -float64(i-cold+1)/float64(hot))
	}
	return out
}

// DefaultLadderSpan is the hottest-to-coldest β ratio of the default
// ladder: the hottest replica runs 2x hotter (β/2) than the base.
const DefaultLadderSpan = 2.0
