package search

import (
	"context"
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/cost"
	"repro/internal/emu"
	"repro/internal/mcmc"
	"repro/internal/testgen"
	"repro/internal/x64"
)

// fixture builds the shared substrate of the tests: a tiny add kernel,
// its testcases, and a factory for coordinated chain groups.
type fixture struct {
	target *x64.Program
	spec   testgen.Spec
	tests  []testgen.Testcase
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	f := &fixture{
		target: x64.MustParse("movq rdi, -8(rsp)\nmovq -8(rsp), rax\naddq rsi, rax"),
		spec: testgen.Spec{
			BuildInput: func(rng *rand.Rand) *emu.Snapshot {
				a := testgen.NewArena(0x10000)
				a.AllocStack(256)
				a.SetReg(x64.RDI, rng.Uint64())
				a.SetReg(x64.RSI, rng.Uint64())
				return a.Snapshot()
			},
			LiveOut: testgen.LiveSet{GPRs: []testgen.LiveReg{{Reg: x64.RAX, Width: 8}}},
		},
	}
	tests, err := testgen.Generate(f.target, f.spec, 16, rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	f.tests = tests
	return f
}

// runs builds n optimization-phase chains over a β ladder, all starting
// from the target.
func (f *fixture) runs(n int, seed int64, proposals int64, prof *cost.SharedProfile) []*mcmc.Run {
	ladder := Ladder(1.0, n, DefaultLadderSpan)
	out := make([]*mcmc.Run, n)
	for i := range out {
		params := mcmc.PaperParams
		params.Ell = 10
		params.Beta = ladder[i]
		fn := cost.New(f.tests[:len(f.tests):len(f.tests)], f.spec.LiveOut, cost.Improved, 1)
		fn.Shared = prof
		s := &mcmc.Sampler{
			Params: params,
			Pools:  mcmc.PoolsFor(f.target, false),
			Cost:   fn,
			Rng:    rand.New(rand.NewSource(seed + int64(i))),
		}
		out[i] = s.Begin(f.target, proposals)
	}
	return out
}

// serialBatch runs segment bodies one by one; parallelBatch runs them all
// concurrently. A deterministic coordinator must not care which one
// drives it.
func serialBatch(bodies []func()) {
	for _, b := range bodies {
		b()
	}
}

func parallelBatch(bodies []func()) {
	var wg sync.WaitGroup
	for _, b := range bodies {
		wg.Add(1)
		go func(b func()) {
			defer wg.Done()
			b()
		}(b)
	}
	wg.Wait()
}

// TestDeterministicAcrossSchedules drives two identical groups — one with
// serial segments, one with fully parallel segments — and demands
// bit-identical outcomes: same swap count, same per-chain costs, programs
// and stats.
func TestDeterministicAcrossSchedules(t *testing.T) {
	f := newFixture(t)
	drive := func(batch func([]func())) (*Coordinator, []mcmc.Result) {
		prof := cost.NewSharedProfile(len(f.tests))
		c := New(Config{
			Seed:       9,
			Exchange:   true,
			Cadence:    512,
			PruneAfter: 2048,
			Tests:      len(f.tests),
			Profile:    prof,
		}, f.runs(4, 100, 20000, prof))
		c.Drive(context.Background(), batch)
		return c, c.Results()
	}
	ca, ra := drive(serialBatch)
	cb, rb := drive(parallelBatch)

	if ca.Swaps() != cb.Swaps() || ca.Prunes() != cb.Prunes() {
		t.Fatalf("coordination diverged: swaps %d vs %d, prunes %d vs %d",
			ca.Swaps(), cb.Swaps(), ca.Prunes(), cb.Prunes())
	}
	for i := range ra {
		if ra[i].BestCost != rb[i].BestCost ||
			ra[i].BestCorrectCost != rb[i].BestCorrectCost ||
			ra[i].Stats.Proposals != rb[i].Stats.Proposals ||
			ra[i].Stats.Accepts != rb[i].Stats.Accepts ||
			ra[i].Best.String() != rb[i].Best.String() {
			t.Fatalf("chain %d diverged across schedules:\n%+v\nvs\n%+v",
				i, ra[i], rb[i])
		}
	}
	pa, pb := ca.Pool(), cb.Pool()
	if len(pa) != len(pb) {
		t.Fatalf("pool sizes diverged: %d vs %d", len(pa), len(pb))
	}
	for i := range pa {
		if pa[i].Cost != pb[i].Cost || pa[i].Prog.String() != pb[i].Prog.String() {
			t.Fatalf("pool entry %d diverged", i)
		}
	}
}

// TestExchangeHappens checks that a ladder group actually swaps, and that
// disabling exchange reproduces fully independent chains (same seeds, no
// ladder interference on the coin schedule).
func TestExchangeHappens(t *testing.T) {
	f := newFixture(t)
	c := New(Config{Seed: 3, Exchange: true, Cadence: 256, Tests: len(f.tests)},
		f.runs(4, 7, 30000, nil))
	c.Drive(context.Background(), serialBatch)
	if c.Swaps() == 0 {
		t.Fatal("replica exchange never accepted a swap over 4 replicas x 30k proposals")
	}

	off := New(Config{Seed: 3, Exchange: false, Cadence: 256, Tests: len(f.tests)},
		f.runs(4, 7, 30000, nil))
	off.Drive(context.Background(), serialBatch)
	if off.Swaps() != 0 {
		t.Fatalf("exchange disabled but %d swaps recorded", off.Swaps())
	}
}

// TestBroadcastRefinesEveryChain injects a counterexample through the
// Validate hook and checks every live chain's τ grew and the pool was
// rebuilt against the refined testcases.
func TestBroadcastRefinesEveryChain(t *testing.T) {
	f := newFixture(t)
	extra, err := testgen.Generate(f.target, f.spec, 1, rand.New(rand.NewSource(77)))
	if err != nil {
		t.Fatal(err)
	}
	runs := f.runs(3, 11, 8000, nil)
	fired := 0
	c := New(Config{
		Seed:          5,
		Exchange:      true,
		Cadence:       512,
		Tests:         len(f.tests),
		ValidateEvery: 1,
		Validate: func(best *x64.Program) []testgen.Testcase {
			if fired > 0 {
				return nil
			}
			fired++
			return extra
		},
	}, runs)
	c.Drive(context.Background(), serialBatch)
	if fired != 1 {
		t.Fatalf("validate hook fired %d times", fired)
	}
	for i, r := range runs {
		res := r.Result()
		if res.BestCorrect == nil {
			t.Fatalf("chain %d lost its correct program after broadcast", i)
		}
	}
	if len(c.Pool()) == 0 {
		t.Fatal("pool empty after broadcast rebuild")
	}
}

// TestCostAwareValidationGate: with IncumbentCost set, scheduled
// validation rounds only invoke the validator when the pool head's
// modelled cost beats the incumbent's; gated rounds count as skipped.
func TestCostAwareValidationGate(t *testing.T) {
	f := newFixture(t)

	// An unbeatable incumbent (cost 0): every scheduled round is gated,
	// the validator never runs.
	fired := 0
	c := New(Config{
		Seed:          5,
		Cadence:       512,
		Tests:         len(f.tests),
		ValidateEvery: 1,
		Validate: func(best *x64.Program) []testgen.Testcase {
			fired++
			return nil
		},
		IncumbentCost: func() float64 { return 0 },
	}, f.runs(2, 11, 6000, nil))
	c.Drive(context.Background(), serialBatch)
	if fired != 0 {
		t.Fatalf("validator fired %d times against an unbeatable incumbent", fired)
	}
	if c.SkippedValidations() == 0 {
		t.Fatal("no skipped validations counted")
	}

	// A hopeless incumbent: every scheduled round with a non-empty pool
	// validates, none are skipped — same behaviour as before the gate.
	fired = 0
	c = New(Config{
		Seed:          5,
		Cadence:       512,
		Tests:         len(f.tests),
		ValidateEvery: 1,
		Validate: func(best *x64.Program) []testgen.Testcase {
			fired++
			return nil
		},
		IncumbentCost: func() float64 { return math.Inf(1) },
	}, f.runs(2, 11, 6000, nil))
	c.Drive(context.Background(), serialBatch)
	if fired == 0 {
		t.Fatal("validator never fired against a hopeless incumbent")
	}
	if c.SkippedValidations() != 0 {
		t.Fatalf("%d validations skipped against a hopeless incumbent", c.SkippedValidations())
	}

	// The gate reopens when the incumbent worsens relative to the pool:
	// start unbeatable, then hand the win to the pool head mid-run.
	fired = 0
	incumbent := 0.0
	c = New(Config{
		Seed:          5,
		Cadence:       512,
		Tests:         len(f.tests),
		ValidateEvery: 1,
		Validate: func(best *x64.Program) []testgen.Testcase {
			fired++
			return nil
		},
		IncumbentCost: func() float64 { return incumbent },
	}, f.runs(2, 11, 6000, nil))
	gateOpened := false
	c.cfg.OnSwap = nil // (documenting: no coordination side effects needed)
	c.Drive(context.Background(), func(bodies []func()) {
		serialBatch(bodies)
		if !gateOpened && c.SkippedValidations() > 0 {
			incumbent = math.Inf(1)
			gateOpened = true
		}
	})
	if !gateOpened || fired == 0 {
		t.Fatalf("gate never reopened: opened=%v fired=%d", gateOpened, fired)
	}
}

// TestCancellationDrainsWithoutDeadlock cancels mid-run under a
// pool-like batch executor and requires Drive to return promptly with
// harvestable results — the mid-swap cancellation contract.
func TestCancellationDrainsWithoutDeadlock(t *testing.T) {
	f := newFixture(t)
	ctx, cancel := context.WithCancel(context.Background())
	c := New(Config{Seed: 1, Exchange: true, Cadence: 1024, Tests: len(f.tests)},
		f.runs(4, 20, 1<<40, nil))
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	done := make(chan struct{})
	go func() {
		defer close(done)
		c.Drive(ctx, parallelBatch)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("Drive did not return after cancellation")
	}
	for i, r := range c.Results() {
		if r.Best == nil {
			t.Fatalf("chain %d: no best-so-far after cancellation", i)
		}
	}
}

// TestSingleChainGroup drives a one-chain group with exchange enabled: no
// swap partner exists, so the coordinator must draw no swap coins that
// matter, record zero swaps, and still harvest the chain's best into the
// pool.
func TestSingleChainGroup(t *testing.T) {
	f := newFixture(t)
	c := New(Config{Seed: 13, Exchange: true, Cadence: 512, Tests: len(f.tests)},
		f.runs(1, 21, 8000, nil))
	c.Drive(context.Background(), serialBatch)
	if c.Swaps() != 0 {
		t.Fatalf("single chain recorded %d swaps", c.Swaps())
	}
	res := c.Results()
	if len(res) != 1 || res[0].Best == nil {
		t.Fatalf("single-chain results malformed: %+v", res)
	}
	if len(c.Pool()) == 0 {
		t.Fatal("single-chain group harvested nothing into the pool")
	}
}

// TestLadder pins the mostly-cold ladder shape: leading rungs at base, a
// hot tail of one replica per four descending to base/span.
func TestLadder(t *testing.T) {
	l := Ladder(1.0, 4, 2.0)
	want := []float64{1, 1, 1, 0.5}
	for i := range want {
		if math.Abs(l[i]-want[i]) > 1e-12 {
			t.Fatalf("4-replica ladder = %v, want %v", l, want)
		}
	}
	l = Ladder(1.0, 8, 2.0)
	if l[5] != 1.0 {
		t.Fatalf("8-replica ladder must keep six cold rungs, got %v", l)
	}
	if math.Abs(l[7]-0.5) > 1e-12 || l[6] <= l[7] || l[6] >= 1.0 {
		t.Fatalf("8-replica hot tail must descend geometrically to base/span, got %v", l)
	}
	if two := Ladder(0.1, 2, 2.0); math.Abs(two[1]-0.05) > 1e-12 || two[0] != 0.1 {
		t.Fatalf("2-replica ladder = %v, want [0.1 0.05]", two)
	}
	if one := Ladder(0.5, 1, 2.0); len(one) != 1 || one[0] != 0.5 {
		t.Fatalf("single-replica ladder must be the base alone, got %v", one)
	}
}

// TestDeferHookPostponesValidation: the Defer hook postpones scheduled
// validation rounds (counted as deferrals, validator untouched), runs only
// after the cost-aware incumbent gate, and a false answer lets validation
// proceed as before.
func TestDeferHookPostponesValidation(t *testing.T) {
	f := newFixture(t)

	// Always-defer: the validator never runs, every consulted round counts.
	fired, consulted := 0, 0
	c := New(Config{
		Seed:          5,
		Cadence:       512,
		Tests:         len(f.tests),
		ValidateEvery: 1,
		Validate: func(best *x64.Program) []testgen.Testcase {
			fired++
			return nil
		},
		Defer: func(best *x64.Program) bool {
			consulted++
			return true
		},
	}, f.runs(2, 11, 6000, nil))
	c.Drive(context.Background(), serialBatch)
	if fired != 0 {
		t.Fatalf("validator fired %d times under an always-defer gate", fired)
	}
	if consulted == 0 || c.Deferrals() != consulted {
		t.Fatalf("Deferrals %d, consulted %d: every consult must count", c.Deferrals(), consulted)
	}

	// Never-defer: behaviour identical to no hook at all.
	fired = 0
	c = New(Config{
		Seed:          5,
		Cadence:       512,
		Tests:         len(f.tests),
		ValidateEvery: 1,
		Validate: func(best *x64.Program) []testgen.Testcase {
			fired++
			return nil
		},
		Defer: func(best *x64.Program) bool { return false },
	}, f.runs(2, 11, 6000, nil))
	c.Drive(context.Background(), serialBatch)
	if fired == 0 {
		t.Fatal("validator never fired under a never-defer gate")
	}
	if c.Deferrals() != 0 {
		t.Fatalf("%d deferrals counted when the gate never deferred", c.Deferrals())
	}

	// Ordering: an unbeatable incumbent gates the round before the Defer
	// hook is ever consulted — skips and deferrals stay distinct counters.
	consulted = 0
	c = New(Config{
		Seed:          5,
		Cadence:       512,
		Tests:         len(f.tests),
		ValidateEvery: 1,
		Validate:      func(best *x64.Program) []testgen.Testcase { return nil },
		IncumbentCost: func() float64 { return 0 },
		Defer: func(best *x64.Program) bool {
			consulted++
			return true
		},
	}, f.runs(2, 11, 6000, nil))
	c.Drive(context.Background(), serialBatch)
	if consulted != 0 {
		t.Fatalf("Defer consulted %d times behind a closed incumbent gate", consulted)
	}
	if c.Deferrals() != 0 || c.SkippedValidations() == 0 {
		t.Fatalf("skips/deferrals conflated: deferrals=%d skips=%d",
			c.Deferrals(), c.SkippedValidations())
	}
}
