package emu_test

// Tests pinning the DIV/IDIV and SSE lowering: a dispatch-counter test
// proving the tracked vector and Montgomery kernels never reach the generic
// interpreting fallback, plus directed differential sweeps over the divide
// family's #DE edges and every SSE opcode's operand shapes. The randomized
// and fuzz-grade differential suites (compile_test.go, fuzz_test.go) cover
// the same handlers from the proposal distribution's angle.

import (
	"math/rand"
	"testing"

	"repro/internal/emu"
	"repro/internal/kernels"
	"repro/internal/testgen"
	"repro/internal/x64"
)

// TestNoFallbackOnTrackedKernels asserts that no instruction of the saxpy
// and Montgomery kernels — targets, production-compiler comparators and the
// paper's rewrites — lowers to (or dynamically reaches) the generic
// fallback, so the decode-once pipeline serves those workloads entirely
// through specialised micro-ops.
func TestNoFallbackOnTrackedKernels(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for _, name := range []string{"saxpy", "mont"} {
		bench, err := kernels.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		tests, err := testgen.Generate(bench.Target, bench.Spec, 8, rng)
		if err != nil {
			t.Fatal(err)
		}
		progs := map[string]*x64.Program{
			"target": bench.Target,
			"gcc-O3": bench.GccO3,
			"icc-O3": bench.IccO3,
			"stoke":  bench.PaperRewrite,
		}
		m := emu.New()
		for label, p := range progs {
			if p == nil {
				continue
			}
			c := emu.Compile(p)
			if slots := c.FallbackSlots(); len(slots) != 0 {
				t.Errorf("%s/%s: slots %v lowered to the generic fallback:\n%s",
					name, label, slots, p)
			}
			for i := range tests {
				m.LoadSnapshotCached(tests[i].In)
				m.RunCompiled(c)
			}
		}
		if n := m.GenericDispatches(); n != 0 {
			t.Errorf("%s: %d generic dispatches while running the kernel programs", name, n)
		}
	}

	// Positive control: a shape with no specialised handler (memory-
	// destination ALU) must still route through the fallback and count.
	p := x64.MustParse("addl 7, (rdi)")
	c := emu.Compile(p)
	if slots := c.FallbackSlots(); len(slots) != 1 {
		t.Fatalf("control program fallback slots = %v, want exactly one", slots)
	}
	m := emu.New()
	m.LoadSnapshot(randomSnapshot(rand.New(rand.NewSource(3))))
	m.RunCompiled(c)
	if m.GenericDispatches() != 1 {
		t.Fatalf("control program generic dispatches = %d, want 1", m.GenericDispatches())
	}
}

// divSnapshot builds a snapshot with the divide family's operand registers
// pinned to the given values (all defined), on top of the usual messy state.
func divSnapshot(rng *rand.Rand, rax, rdx, rsi uint64) *emu.Snapshot {
	s := randomSnapshot(rng)
	s.Regs[x64.RAX], s.Regs[x64.RDX], s.Regs[x64.RSI] = rax, rdx, rsi
	s.RegDef |= 1<<x64.RAX | 1<<x64.RDX | 1<<x64.RSI
	return s
}

// TestCompiledDivideFamily sweeps div/idiv at both widths and both source
// shapes across the #DE edges — zero divisors, 64-bit quotient overflow
// (hi >= divisor), INT_MIN/-1, sign-extension mismatches — plus random
// states, and demands bit-identical outcomes from both execution paths.
func TestCompiledDivideFamily(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	progs := []string{
		"divq rsi", "idivq rsi", "divl esi", "idivl esi",
		"divq (rdi)", "idivq (rdi)", "divl 4(rdi)", "idivl 4(rdi)",
		// Dirty RAX/RDX first, so faults restore state both paths agree on.
		"movq rdi, rax\nmovq 0, rdx\ndivq rsi",
		"movl esi, eax\nmovl 1, edx\nidivl ecx",
	}
	edges := []struct{ rax, rdx, rsi uint64 }{
		{10, 0, 0},                           // divide by zero
		{10, 0, 3},                           // plain quotient
		{10, 7, 3},                           // 64-bit overflow: hi >= d
		{1 << 63, ^uint64(0), ^uint64(0)},    // idivq INT_MIN / -1
		{0x80000000, 0xffffffff, ^uint64(0)}, /* idivl INT32_MIN / -1 */
		{0, ^uint64(0), 1},                   // sign-extension mismatch (idivq)
		{123456789, 0, 0xffffffff00000001},   // 32-bit view sees divisor 1
	}
	mi, mc := emu.New(), emu.New()
	for _, src := range progs {
		p := x64.MustParse(src)
		c := emu.Compile(p)
		for _, e := range edges {
			snap := divSnapshot(rng, e.rax, e.rdx, e.rsi)
			runBoth(t, mi, mc, p, c, snap, src)
		}
		for i := 0; i < 200; i++ {
			snap := randomSnapshot(rng)
			runBoth(t, mi, mc, p, c, snap, src)
		}
		if t.Failed() {
			t.Fatalf("diverging program:\n%s", p)
		}
	}
}

// TestCompiledSSEDifferential sweeps every SSE opcode across its operand
// shapes — register pairs including src == dst (the pxor zero idiom),
// memory sources and destinations, shuffle immediates, and shift counts at
// and beyond the lane width — against the interpreter.
func TestCompiledSSEDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	regs := []x64.Reg{0, 1, 5, 15}
	var insts []x64.Inst

	// movd/movq: all four GPR/memory/XMM pairings.
	for _, w := range []uint8{4, 8} {
		op := x64.MOVD
		if w == 8 {
			op = x64.MOVQX
		}
		insts = append(insts,
			x64.MakeInst(op, x64.R(x64.RDI, w), x64.X(1)),
			x64.MakeInst(op, x64.X(1), x64.R(x64.RAX, w)),
			x64.MakeInst(op, x64.Mem(x64.RDI, 8, w), x64.X(2)),
			x64.MakeInst(op, x64.X(2), x64.Mem(x64.RDI, 16, w)),
		)
	}
	// 128-bit moves.
	insts = append(insts,
		x64.MakeInst(x64.MOVAPS, x64.X(0), x64.X(3)),
		x64.MakeInst(x64.MOVUPS, x64.X(4), x64.X(4)),
		x64.MakeInst(x64.MOVUPS, x64.Mem(x64.RSI, 0, 16), x64.X(0)),
		x64.MakeInst(x64.MOVUPS, x64.X(0), x64.Mem(x64.RSI, 4, 16)),
	)
	// Shuffles over a spread of immediates.
	for _, imm := range []int64{0x00, 0x1b, 0x4e, 0xb1, 0xff} {
		insts = append(insts,
			x64.MakeInst(x64.SHUFPS, x64.Imm(imm, 8), x64.X(1), x64.X(2)),
			x64.MakeInst(x64.SHUFPS, x64.Imm(imm, 8), x64.X(3), x64.X(3)),
			x64.MakeInst(x64.PSHUFD, x64.Imm(imm, 8), x64.X(1), x64.X(2)),
			x64.MakeInst(x64.PSHUFD, x64.Imm(imm, 8), x64.X(3), x64.X(3)),
		)
	}
	// Packed arithmetic and logic: register pairs (including the zero
	// idiom's src == dst) and the memory-source form.
	packed := []x64.Opcode{
		x64.PADDW, x64.PSUBW, x64.PMULLW,
		x64.PADDD, x64.PSUBD, x64.PMULLD, x64.PADDQ,
		x64.PAND, x64.POR, x64.PXOR,
	}
	for _, op := range packed {
		for _, a := range regs {
			for _, b := range regs {
				insts = append(insts, x64.MakeInst(op, x64.X(a), x64.X(b)))
			}
		}
		insts = append(insts, x64.MakeInst(op, x64.Mem(x64.RDI, 0, 16), x64.X(1)))
	}
	// Packed shifts: counts below, at and beyond the lane width.
	for _, op := range []x64.Opcode{x64.PSLLD, x64.PSRLD, x64.PSLLQ, x64.PSRLQ} {
		for _, cnt := range []int64{0, 1, 7, 31, 32, 63, 64, 255} {
			insts = append(insts, x64.MakeInst(op, x64.Imm(cnt, 8), x64.X(2)))
		}
	}

	mi, mc := emu.New(), emu.New()
	for _, in := range insts {
		if err := in.Validate(); err != nil {
			t.Fatalf("%v: %v", in, err)
		}
		p := x64.NewProgram(3)
		p.Insts[1] = in
		c := emu.Compile(p)
		if slots := c.FallbackSlots(); len(slots) != 0 {
			t.Errorf("%v lowered to the generic fallback", in)
		}
		for i := 0; i < 60; i++ {
			snap := randomSnapshot(rng)
			runBoth(t, mi, mc, p, c, snap, in.String())
			if t.Failed() {
				t.FailNow()
			}
		}
	}
}

// TestXmmRestoreTracksWrittenRegisters is the regression test for the XMM
// dirty-tracking of LoadSnapshotCached (the path cost.Fn.EvalCompiled
// reloads pinned testcase machines through): a run that writes one XMM
// register must restore exactly that register on reload — not all 16 — a
// run that writes none must restore none, and the cached reload must stay
// bit-exact against a full reload.
func TestXmmRestoreTracksWrittenRegisters(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	snap := randomSnapshot(rng)

	vector := x64.MustParse("movd edi, xmm0\npaddd xmm0, xmm0")
	c := emu.Compile(vector)
	m := emu.New()
	m.LoadSnapshot(snap)
	m.RunCompiled(c)
	for i := 1; i <= 4; i++ {
		m.LoadSnapshotCached(snap)
		if got := m.XmmRestores(); got != i {
			t.Fatalf("reload %d: %d XMM restores, want exactly %d (one per written register)", i, got, i)
		}
		m.RunCompiled(c)
	}

	// Bit-exactness of the partial restore against a full reload.
	full := emu.New()
	m.LoadSnapshotCached(snap)
	full.LoadSnapshot(snap)
	diffStates(t, full, m, snap, "cached xmm restore")

	// A scalar run dirties no XMM register and must restore none.
	scalar := emu.Compile(x64.MustParse("addq rsi, rdi"))
	sm := emu.New()
	sm.LoadSnapshot(snap)
	sm.RunCompiled(scalar)
	sm.LoadSnapshotCached(snap)
	if got := sm.XmmRestores(); got != 0 {
		t.Fatalf("scalar run restored %d XMM registers, want 0", got)
	}
}
