package emu_test

// Randomized differential tests pinning the compiled execution path against
// the interpreter. Programs are drawn from the MCMC proposal pools (the
// exact distribution the search evaluates), inputs cover defined and
// undefined registers, flags and memory, valid and invalid sandbox bytes —
// and the two paths must agree on the full observable state: Outcome
// counters, registers, flags, XMM state, definedness and memory contents.

import (
	"math/rand"
	"testing"

	"repro/internal/emu"
	"repro/internal/mcmc"
	"repro/internal/x64"
)

// segBase is where the differential snapshots place their one memory
// segment; pool memory operands are rdi/rsi-relative so programs can reach
// it through the registers randomSnapshot points at it.
const segBase = 0x10000

// randomSnapshot builds an input state with a deliberately messy mix of
// defined/undefined registers and flags and a partially valid, partially
// defined memory segment.
func randomSnapshot(rng *rand.Rand) *emu.Snapshot {
	s := &emu.Snapshot{}
	for r := x64.Reg(0); r < x64.NumGPR; r++ {
		s.Regs[r] = rng.Uint64()
		if rng.Intn(4) != 0 {
			s.RegDef |= 1 << r
		}
	}
	for r := 0; r < x64.NumXMM; r++ {
		s.Xmm[r] = [2]uint64{rng.Uint64(), rng.Uint64()}
		if rng.Intn(4) != 0 {
			s.XmmDef |= 1 << r
		}
	}
	s.Flags = x64.FlagSet(rng.Intn(32))
	s.FlagsDef = x64.FlagSet(rng.Intn(32))

	const size = 128
	im := emu.MemImage{
		Base:  segBase,
		Data:  make([]byte, size),
		Def:   make([]bool, size),
		Valid: make([]bool, size),
	}
	for i := 0; i < size; i++ {
		im.Data[i] = byte(rng.Intn(256))
		im.Def[i] = rng.Intn(8) != 0
		im.Valid[i] = rng.Intn(8) != 0
	}
	s.Mem = []emu.MemImage{im}

	// Point the pool's address registers at the segment most of the time
	// (mixing in junk addresses to exercise the sigsegv path).
	for _, r := range []x64.Reg{x64.RDI, x64.RSI} {
		if rng.Intn(4) != 0 {
			s.Regs[r] = segBase + uint64(rng.Intn(size))
			s.RegDef |= 1 << r
		}
	}
	s.Regs[x64.RSP] = segBase + size/2
	s.RegDef |= 1 << x64.RSP
	return s
}

// diffStates fails the test unless the two machines ended in identical
// observable states.
func diffStates(t *testing.T, a, b *emu.Machine, snap *emu.Snapshot, what string) {
	t.Helper()
	if a.Regs != b.Regs || a.RegDef != b.RegDef {
		t.Errorf("%s: GPR state diverged:\n  interp: %x def=%04x\n  compiled: %x def=%04x",
			what, a.Regs, a.RegDef, b.Regs, b.RegDef)
	}
	if a.Xmm != b.Xmm || a.XmmDef != b.XmmDef {
		t.Errorf("%s: XMM state diverged", what)
	}
	if a.Flags != b.Flags || a.FlagsDef != b.FlagsDef {
		t.Errorf("%s: flag state diverged: interp %v/%v compiled %v/%v",
			what, a.Flags, a.FlagsDef, b.Flags, b.FlagsDef)
	}
	for _, im := range snap.Mem {
		for i := range im.Data {
			addr := im.Base + uint64(i)
			ab, ad, aok := a.MemByte(addr)
			bb, bd, bok := b.MemByte(addr)
			if ab != bb || ad != bd || aok != bok {
				t.Errorf("%s: memory diverged at %#x: interp (%#x,%v,%v) compiled (%#x,%v,%v)",
					what, addr, ab, ad, aok, bb, bd, bok)
				return
			}
		}
	}
}

// runBoth executes p on snap through both paths and cross-checks them.
func runBoth(t *testing.T, mi, mc *emu.Machine, p *x64.Program, c *emu.Compiled, snap *emu.Snapshot, what string) {
	t.Helper()
	mi.LoadSnapshot(snap)
	oi := mi.Run(p)
	mc.LoadSnapshotCached(snap)
	oc := mc.RunCompiled(c)
	if oi != oc {
		t.Errorf("%s: outcomes diverged: interp %+v compiled %+v\n%s", what, oi, oc, p)
	}
	diffStates(t, mi, mc, snap, what)
}

// TestCompiledMatchesInterpreterRandom is the main differential test: ≥10k
// random program/testcase pairs drawn from the proposal pools.
func TestCompiledMatchesInterpreterRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	// A target with memory shapes and SSE so the pools propose every
	// operand class the search can generate.
	target := x64.MustParse(`
  movl (rdi), eax
  movq 8(rsi), rcx
  movb cl, 1(rdi)
  addl 7, eax
`)
	s := &mcmc.Sampler{
		Params: mcmc.PaperParams,
		Pools:  mcmc.PoolsFor(target, true),
		Rng:    rng,
	}
	s.Params.Ell = 12

	programs, perProgram := 1000, 12
	if testing.Short() {
		programs = 100
	}
	mi, mc := emu.New(), emu.New()
	for pi := 0; pi < programs; pi++ {
		p := s.RandomProgram()
		c := emu.Compile(p)
		for ti := 0; ti < perProgram; ti++ {
			snap := randomSnapshot(rng)
			runBoth(t, mi, mc, p, c, snap, "random program")
			if t.Failed() {
				t.Fatalf("diverging program:\n%s", p)
			}
		}
	}
}

// TestCompiledMatchesInterpreterControlFlow covers the pre-linked jump,
// label and ret paths the proposal pools never generate.
func TestCompiledMatchesInterpreterControlFlow(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	progs := []string{
		// Forward conditional jump over an instruction.
		"cmpq rsi, rdi\njae .L0\nmovq rsi, rax\n.L0:\nmovq rdi, rax",
		// Unconditional jump and dead code.
		"movq 1, rax\njmp .L1\nmovq 2, rax\n.L1:\naddq rdi, rax",
		// Early ret.
		"movq rdi, rax\nretq\nmovq 0, rax",
		// Nested labels and a not-taken branch falling through them.
		"testq rdi, rdi\nje .L0\naddq 1, rax\n.L0:\nsubq 1, rax\njmp .L2\n.L1:\nnegq rax\n.L2:\nnotq rax",
	}
	mi, mc := emu.New(), emu.New()
	for _, src := range progs {
		p := x64.MustParse(src)
		c := emu.Compile(p)
		for i := 0; i < 200; i++ {
			snap := randomSnapshot(rng)
			runBoth(t, mi, mc, p, c, snap, src)
		}
	}
	// A jump to a missing label must fall off the end on both paths.
	bad := x64.NewProgram(3)
	bad.Insts[0] = x64.MakeInst(x64.MOV, x64.Imm(1, 8), x64.R64(x64.RAX))
	bad.Insts[1] = x64.MakeInst(x64.JMP, x64.LabelRef(9))
	bad.Insts[2] = x64.MakeInst(x64.MOV, x64.Imm(2, 8), x64.R64(x64.RAX))
	c := emu.Compile(bad)
	for i := 0; i < 50; i++ {
		snap := randomSnapshot(rng)
		runBoth(t, mi, mc, bad, c, snap, "missing label")
	}
}

// TestCompiledIdioms pins the dependency-breaking zero idioms and narrow
// merge semantics, where undef accounting is easiest to get wrong.
func TestCompiledIdioms(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	progs := []string{
		"xorq rax, rax",
		"subq rcx, rcx",
		"xorl ebx, ebx\naddb 1, bl",
		"movb dil, al\nmovw si, cx",
		"incb al\ndecw cx\nnegb dl\nnotw si",
		"cmpq rdi, rsi\ncmovaq rdi, rax\nsetb cl",
	}
	mi, mc := emu.New(), emu.New()
	for _, src := range progs {
		p := x64.MustParse(src)
		c := emu.Compile(p)
		for i := 0; i < 500; i++ {
			snap := randomSnapshot(rng)
			runBoth(t, mi, mc, p, c, snap, src)
		}
	}
}

// TestCompiledDoubleShifts pins the specialised SHLD/SHRD micro-ops
// against the interpreter across every width, source/destination pairing
// (including src == dst) and count — zero counts, in-range counts, and
// counts at and beyond the operand width, where the hardware count mask
// and the flag semantics are easiest to get wrong.
func TestCompiledDoubleShifts(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	regs := []x64.Reg{x64.RAX, x64.RCX, x64.RSI}
	for _, op := range []x64.Opcode{x64.SHLD, x64.SHRD} {
		for _, w := range []uint8{2, 4, 8} {
			for count := int64(0); count <= 70; count += 3 {
				for _, src := range regs {
					for _, dst := range regs {
						in := x64.MakeInst(op,
							x64.Imm(count, w), x64.R(src, w), x64.R(dst, w))
						if err := in.Validate(); err != nil {
							t.Fatalf("%v: %v", in, err)
						}
						p := x64.NewProgram(3)
						p.Insts[1] = in
						c := emu.Compile(p)
						mi, mc := emu.New(), emu.New()
						for i := 0; i < 25; i++ {
							snap := randomSnapshot(rng)
							runBoth(t, mi, mc, p, c, snap, in.String())
							if t.Failed() {
								t.FailNow()
							}
						}
					}
				}
			}
		}
	}
}

// TestCompiledPatchMatchesFreshCompile mutates single slots and checks a
// patched compiled form against a from-scratch Compile of the same program.
func TestCompiledPatchMatchesFreshCompile(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	target := x64.MustParse("movl (rdi), eax\naddl 3, eax\nmovl eax, (rdi)")
	s := &mcmc.Sampler{
		Params: mcmc.PaperParams,
		Pools:  mcmc.PoolsFor(target, true),
		Rng:    rng,
	}
	s.Params.Ell = 10
	p := s.RandomProgram()
	c := emu.Compile(p)
	mi, mc := emu.New(), emu.New()
	for step := 0; step < 3000; step++ {
		i := rng.Intn(len(p.Insts))
		switch rng.Intn(3) {
		case 0:
			p.Insts[i] = x64.Unused()
		case 1:
			if in, ok := s.RandomInst(); ok {
				p.Insts[i] = in
			}
		case 2:
			j := rng.Intn(len(p.Insts))
			p.Insts[i], p.Insts[j] = p.Insts[j], p.Insts[i]
			c.Patch(j)
		}
		c.Patch(i)
		if step%20 != 0 {
			continue
		}
		fresh := emu.Compile(p)
		snap := randomSnapshot(rng)
		mi.LoadSnapshot(snap)
		oi := mi.RunCompiled(fresh)
		mc.LoadSnapshotCached(snap)
		oc := mc.RunCompiled(c)
		if oi != oc {
			t.Fatalf("step %d: patched form diverged from fresh compile: %+v vs %+v\n%s",
				step, oi, oc, p)
		}
		diffStates(t, mi, mc, snap, "patched vs fresh")
		// Also cross-check against the interpreter.
		runBoth(t, mi, mc, p, c, snap, "patched vs interpreter")
		if t.Failed() {
			t.FailNow()
		}
	}
}

// TestLoadSnapshotCachedIsExact: a cached reload after a memory-writing run
// must behave exactly like a full reload.
func TestLoadSnapshotCachedIsExact(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	p := x64.MustParse("movl (rdi), eax\naddl 1, eax\nmovl eax, (rdi)")
	c := emu.Compile(p)
	snap := randomSnapshot(rng)
	cached, full := emu.New(), emu.New()
	for i := 0; i < 10; i++ {
		cached.LoadSnapshotCached(snap)
		oc := cached.RunCompiled(c)
		full.LoadSnapshot(snap)
		of := full.RunCompiled(c)
		if oc != of {
			t.Fatalf("iteration %d: cached reload diverged: %+v vs %+v", i, oc, of)
		}
		diffStates(t, full, cached, snap, "cached reload")
	}
}
