package emu_test

// Directed tests for the flag-liveness pass: the dataflow edges that decide
// whether a flag write may be suppressed (carry chains, partial-kill
// opcodes, branch successors that disagree, liveness flowing across UNUSED
// padding), the incremental recomputation under patching, and a guard
// asserting the tracked kernels actually compile with flag-free slots so
// the optimisation cannot silently regress to all-live. The randomized and
// fuzz-grade differential suites cover the same machinery from the
// proposal distribution's angle.

import (
	"math/rand"
	"testing"

	"repro/internal/emu"
	"repro/internal/kernels"
	"repro/internal/mcmc"
	"repro/internal/x64"
)

// runDifferential cross-checks one source program against the interpreter
// over many random snapshots.
func runDifferential(t *testing.T, src string, iters int) *emu.Compiled {
	t.Helper()
	rng := rand.New(rand.NewSource(61))
	p := x64.MustParse(src)
	c := emu.Compile(p)
	mi, mc := emu.New(), emu.New()
	for i := 0; i < iters; i++ {
		snap := randomSnapshot(rng)
		runBoth(t, mi, mc, p, c, snap, src)
		if t.Failed() {
			t.Fatalf("diverging program:\n%s", p)
		}
	}
	return c
}

// TestLivenessCarryChain: an adc/sbb consumer keeps CF live through the
// chain, so none of the flag writes feeding it may be suppressed — while a
// trailing full redefinition leaves the head of the chain dead.
func TestLivenessCarryChain(t *testing.T) {
	// Every add/adc's CF feeds the next adc; the last adc's flags are
	// live at exit. Nothing may be flag-free.
	c := runDifferential(t, "addq rsi, rax\nadcq rdx, rcx\nadcq 0, rdx", 400)
	if n := c.FlagFreeSlots(); n != 0 {
		t.Errorf("carry chain has %d flag-free slots, want 0 (CF is live throughout)", n)
	}

	// An adc whose own writes are dead is itself suppressed (it keeps its
	// CF read), but its producer stays live: the trailing xor kills
	// everything the adc writes, yet the adc's CF read pins the add.
	c = runDifferential(t, "addq rsi, rax\nadcq rdx, rcx\nxorq rdx, rcx", 400)
	if n := c.FlagFreeSlots(); n != 1 {
		t.Errorf("adc chain with dead tail has %d flag-free slots, want 1 (the adc; its CF read pins the add)", n)
	}
	if outs := c.LiveOuts(); outs[0]&x64.CF == 0 {
		t.Errorf("add live-out %v lost CF, but the adc reads it", outs[0])
	}

	// Replace the adc with a plain add: the head add's flags now die at
	// the second add's unconditional redefinition.
	c = runDifferential(t, "addq rsi, rax\naddq rdx, rcx\nsetb cl", 400)
	if n := c.FlagFreeSlots(); n != 1 {
		t.Errorf("redefined chain has %d flag-free slots, want 1 (the head add)", n)
	}
}

// TestLivenessIncPreservesCF: inc/dec write PF|ZF|SF|OF but not CF, so an
// inc between a CF producer and a CF consumer must neither kill CF
// liveness nor lose its own suppression (its four written flags are dead).
func TestLivenessIncPreservesCF(t *testing.T) {
	c := runDifferential(t, "cmpq rsi, rdi\nincq rax\nadcq 0, rax", 400)
	outs := c.LiveOuts()
	if outs[0]&x64.CF == 0 {
		t.Errorf("cmp live-out %v lost CF across the inc", outs[0])
	}
	if n := c.FlagFreeSlots(); n != 1 {
		t.Errorf("%d flag-free slots, want 1 (the inc: PF|ZF|SF|OF all dead, CF untouched)", n)
	}
}

// TestLivenessBranchSuccessorsDisagree: a conditional jump whose taken
// path reads flags the fall-through path kills — live-out of the producer
// must be the union of both successors.
func TestLivenessBranchSuccessorsDisagree(t *testing.T) {
	c := runDifferential(t, `
  cmpq rsi, rdi
  jb .L0
  xorq rdx, rdx
.L0:
  setb cl
`, 400)
	outs := c.LiveOuts()
	if outs[0]&x64.CF == 0 {
		t.Errorf("cmp live-out %v lost CF, but the taken path reaches setb without a kill", outs[0])
	}
	// The xor on the fall-through path still defines the setb's CF read,
	// so its write is live; nothing on this program is suppressible
	// except nothing — both flag writers stay full.
	if n := c.FlagFreeSlots(); n != 0 {
		t.Errorf("%d flag-free slots, want 0", n)
	}
}

// TestLivenessSzpOnlySelection: a consumer that reads only ZF downgrades
// its producer to the reduced szp-only path (CF/OF arithmetic skipped),
// observably identical to the full path.
func TestLivenessSzpOnlySelection(t *testing.T) {
	runDifferential(t, "subq rsi, rax\nje .L0\naddq 1, rax\n.L0:\nxorq rdx, rdx", 400)
	runDifferential(t, "addq rsi, rax\nsete cl\nandq rdx, rax", 400)
}

// TestLivenessAcrossPaddingAndPatch: liveness flows across UNUSED padding,
// and patching a padding slot into a flag killer (and back) flips the
// producer's suppression — with the patched form always agreeing with a
// fresh compile and both execution paths.
func TestLivenessAcrossPaddingAndPatch(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	p := x64.MustParse("cmpq rsi, rdi\nsetb al").PadTo(8)
	// Layout after PadTo: cmp, setb, UNUSED×6.
	c := emu.Compile(p)
	if n := c.FlagFreeSlots(); n != 0 {
		t.Fatalf("cmp feeding setb across padding: %d flag-free slots, want 0", n)
	}

	// Move the setb behind the padding: liveness must flow through the
	// skip run.
	p.Insts[5] = p.Insts[1]
	p.Insts[1] = x64.Unused()
	c.Patch(1)
	c.Patch(5)
	if n := c.FlagFreeSlots(); n != 0 {
		t.Fatalf("cmp feeding setb across padding after patch: %d flag-free slots, want 0", n)
	}

	// Interpose a full flag redefinition inside the padding: the cmp dies.
	kill := x64.MustParse("xorq rdx, rdx").Insts[0]
	p.Insts[3] = kill
	c.Patch(3)
	if n := c.FlagFreeSlots(); n != 1 {
		t.Fatalf("after interposing a kill: %d flag-free slots, want 1 (the cmp)", n)
	}

	// And remove it again: the cmp comes back to life.
	p.Insts[3] = x64.Unused()
	c.Patch(3)
	if n := c.FlagFreeSlots(); n != 0 {
		t.Fatalf("after removing the kill: %d flag-free slots, want 0", n)
	}

	// Each intermediate shape stays pinned to fresh compiles and the
	// interpreter.
	mi, mc := emu.New(), emu.New()
	steps := []func(){
		func() { p.Insts[3] = kill; c.Patch(3) },
		func() { p.Insts[3] = x64.Unused(); c.Patch(3) },
		func() { p.Insts[0], p.Insts[3] = p.Insts[3], p.Insts[0]; c.Patch(0); c.Patch(3) },
		func() { p.Insts[0], p.Insts[3] = p.Insts[3], p.Insts[0]; c.Patch(0); c.Patch(3) },
	}
	for si, step := range steps {
		step()
		fresh := emu.Compile(p)
		pk, fk := c.SlotKinds(), fresh.SlotKinds()
		for s := range pk {
			if pk[s] != fk[s] {
				t.Fatalf("step %d: slot %d dispatch code %d patched vs %d fresh\n%s", si, s, pk[s], fk[s], p)
			}
		}
		for i := 0; i < 100; i++ {
			runBoth(t, mi, mc, p, c, randomSnapshot(rng), "padding patch step")
			if t.Failed() {
				t.FailNow()
			}
		}
	}
}

// TestSaveRestoreSlotMatchesFreshCompile drives the MCMC reject path's
// snapshot undo: SaveSlot → mutate+Patch → RestoreSlot must land on
// exactly the state a fresh compile of the restored program has — dispatch
// codes, liveness selection, latency sum and observable behaviour — even
// when the same slot is touched twice (swap-style moves restore in
// reverse, first snapshot winning).
func TestSaveRestoreSlotMatchesFreshCompile(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	p := x64.MustParse("cmpq rsi, rdi\nsetb al\naddq rsi, rax\nshrq 2, rax").PadTo(12)
	c := emu.Compile(p)
	mi, mc := emu.New(), emu.New()
	muts := []x64.Inst{
		x64.Unused(),
		x64.MustParse("adcq 1, rcx").Insts[0],
		x64.MustParse("xorq rdx, rdx").Insts[0],
		x64.MustParse("incl esi").Insts[0],
		x64.MustParse("shll 5, ecx").Insts[0],
	}
	for step := 0; step < 2000; step++ {
		i := rng.Intn(len(p.Insts))
		j := rng.Intn(len(p.Insts))
		oldI, oldJ := p.Insts[i], p.Insts[j]
		si := c.SaveSlot(i)
		p.Insts[i] = muts[rng.Intn(len(muts))]
		c.Patch(i)
		sj := c.SaveSlot(j)
		p.Insts[j] = muts[rng.Intn(len(muts))]
		c.Patch(j)
		if rng.Intn(2) == 0 {
			// Reject: restore both slots in reverse order.
			p.Insts[j] = oldJ
			p.Insts[i] = oldI
			c.RestoreSlot(j, sj)
			c.RestoreSlot(i, si)
		}
		fresh := emu.Compile(p)
		if c.StaticLatency() != fresh.StaticLatency() {
			t.Fatalf("step %d: latency %v after restore, fresh %v\n%s",
				step, c.StaticLatency(), fresh.StaticLatency(), p)
		}
		rk, fk := c.SlotKinds(), fresh.SlotKinds()
		for s := range rk {
			if rk[s] != fk[s] {
				t.Fatalf("step %d: slot %d code %d restored vs %d fresh\n%s", step, s, rk[s], fk[s], p)
			}
		}
		if step%10 == 0 {
			runBoth(t, mi, mc, p, c, randomSnapshot(rng), "save/restore")
			if t.Failed() {
				t.FailNow()
			}
		}
	}
}

// TestLivenessShiftFamily: immediate shifts take the new inline codes
// (suppressible), CL-count shifts kill nothing (a zero count would leave
// flags intact), and zero-immediate shifts never write flags at all.
func TestLivenessShiftFamily(t *testing.T) {
	// shr's flags die at the following xor; the xor is live at exit.
	c := runDifferential(t, "shrq 3, rax\nxorq rsi, rax", 400)
	if n := c.FlagFreeSlots(); n != 1 {
		t.Errorf("dead immediate shift: %d flag-free slots, want 1", n)
	}

	// A CL-count shift between a producer and a consumer must not kill:
	// shlq cl could be a no-op, leaving the cmp's CF observable.
	c = runDifferential(t, "cmpq rsi, rdi\nshlq cl, rax\nsetb dl", 400)
	outs := c.LiveOuts()
	if outs[0]&x64.CF == 0 {
		t.Errorf("cmp live-out %v lost CF across a cl-count shift", outs[0])
	}
	if n := c.FlagFreeSlots(); n != 0 {
		t.Errorf("cl-shift chain: %d flag-free slots, want 0", n)
	}

	// Differential sweep over the inline shift codes at both widths,
	// suppressed and live.
	runDifferential(t, "shlq 13, rax\nshrl 7, esi\nsarq 63, rdx\nsetb cl", 300)
	runDifferential(t, "shlq 13, rax\nshrl 7, esi\nsarq 63, rdx\nxorq rcx, rcx", 300)
}

// TestRunCompiledBoundedMatchesInterpreter pins the exhaustion-checking
// run loop — the path where the liveness pass's suppression is unsound
// (any slot can become the exit) and slots are re-lowered to their full
// handlers per step — against the interpreter at step budgets below,
// at and above the program length, over random proposal-pool programs
// and directed divide/SSE/control shapes.
func TestRunCompiledBoundedMatchesInterpreter(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	target := x64.MustParse(`
  movl (rdi), eax
  movq 8(rsi), rcx
  movb cl, 1(rdi)
  addl 7, eax
`)
	s := &mcmc.Sampler{
		Params: mcmc.PaperParams,
		Pools:  mcmc.PoolsFor(target, true),
		Rng:    rng,
	}
	s.Params.Ell = 12

	check := func(p *x64.Program, what string) {
		c := emu.Compile(p)
		for _, maxSteps := range []int{1, 3, len(p.Insts) - 1, len(p.Insts)} {
			if maxSteps < 1 {
				continue
			}
			mi, mc := emu.New(), emu.New()
			mi.MaxSteps, mc.MaxSteps = maxSteps, maxSteps
			for i := 0; i < 4; i++ {
				snap := randomSnapshot(rng)
				runBoth(t, mi, mc, p, c, snap, what)
				if t.Failed() {
					t.Fatalf("diverging program (MaxSteps=%d):\n%s", maxSteps, p)
				}
			}
		}
	}

	for pi := 0; pi < 150; pi++ {
		check(s.RandomProgram(), "bounded random program")
	}
	for _, src := range []string{
		// Control flow, the divide family, double shifts, CL shifts and
		// narrow merges under a tight budget.
		"cmpq rsi, rdi\njae .L0\nmovq rsi, rax\n.L0:\nmovq rdi, rax\nretq",
		"movq rdi, rax\nmovq 0, rdx\ndivq rsi\nidivl ecx\nmulq rsi",
		"shldq 5, rsi, rax\nshrdq 9, rdi, rcx\nshlq cl, rdx\nrorb 3, al",
		"xorl ebx, ebx\naddb 1, bl\nmovw si, cx\nincb al\ndecw cx\nnegb dl\nnotw si\nsbbq rax, rax",
		"pushq rdi\npopq rax\nxchgw ax, cx\nbtq 5, rdi\nbsfq rsi, rcx\nbswapl edx",
	} {
		check(x64.MustParse(src), src)
	}
}

// TestRecompileMatchesFresh: a wholesale rewrite followed by Recompile
// (the chain-restart path) must land on exactly a fresh compile's state —
// dispatch codes, liveness selection and behaviour.
func TestRecompileMatchesFresh(t *testing.T) {
	rng := rand.New(rand.NewSource(89))
	p := x64.MustParse("cmpq rsi, rdi\nsetb al").PadTo(10)
	c := emu.Compile(p)
	if c.Program() != p {
		t.Fatal("Program must return the compiled program")
	}
	repl := x64.MustParse("addq rsi, rax\nadcq rdx, rcx\nshrq 3, rax\nxorq rdx, rdx").PadTo(10)
	copy(p.Insts, repl.Insts)
	c.Recompile()
	fresh := emu.Compile(p)
	if c.StaticLatency() != fresh.StaticLatency() {
		t.Fatalf("latency %v after Recompile, fresh %v", c.StaticLatency(), fresh.StaticLatency())
	}
	rk, fk := c.SlotKinds(), fresh.SlotKinds()
	for i := range rk {
		if rk[i] != fk[i] {
			t.Fatalf("slot %d code %d recompiled vs %d fresh", i, rk[i], fk[i])
		}
	}
	mi, mc := emu.New(), emu.New()
	for i := 0; i < 200; i++ {
		runBoth(t, mi, mc, p, c, randomSnapshot(rng), "recompile")
		if t.Failed() {
			t.FailNow()
		}
	}
}

// TestFlagFreeFractionOnTrackedKernels guards the optimisation end to end:
// the tracked kernels' targets (padded to the paper's ℓ=50 slot count, the
// shape every search candidate has) must compile with a nonzero fraction
// of their flag-writing slots suppressed. A refactor that silently
// regresses liveness to all-live fails here, not in a benchmark diff.
func TestFlagFreeFractionOnTrackedKernels(t *testing.T) {
	for _, name := range []string{"p01", "p23", "mont", "saxpy"} {
		bench, err := kernels.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		c := emu.Compile(bench.Target.PadTo(50))
		free, writers := c.FlagFreeSlots(), c.FlagWritingSlots()
		if writers == 0 {
			t.Errorf("%s: no flag-writing slots at all?", name)
			continue
		}
		if free == 0 {
			t.Errorf("%s: 0 of %d flag-writing slots suppressed; liveness regressed to all-live", name, writers)
		}
		t.Logf("%s: %d/%d flag-writing slots flag-free", name, free, writers)
	}
}

// TestLivenessGenericFallback: memory-destination ALU forms have no inline
// lowering and dispatch through the generic interpreter fallback. The
// fallback must honour the nf bit like every specialised handler — dead
// flag writes are suppressed by restoring the flag words around the
// interpreter switch — while flag *reads* inside the switch (adc) still
// see the incoming values, and live flag writes still land.
func TestLivenessGenericFallback(t *testing.T) {
	// Dead flags: the trailing cmp redefines everything the add writes.
	c := runDifferential(t, "addq rsi, -8(rsp)\ncmpq rdx, rcx", 400)
	if got := c.FallbackSlots(); len(got) != 1 || got[0] != 0 {
		t.Fatalf("memory-destination add must dispatch generically, fallback slots %v", got)
	}
	if n := c.FlagFreeSlots(); n != 1 {
		t.Errorf("dead generic-fallback flags: %d flag-free slots, want 1", n)
	}

	// Live flags: a setb consumer pins the add; nothing may be suppressed.
	c = runDifferential(t, "addq rsi, -8(rsp)\nsetb al\ncmpq rdx, rcx", 400)
	if n := c.FlagFreeSlots(); n != 0 {
		t.Errorf("live generic-fallback flags: %d flag-free slots, want 0", n)
	}

	// A flag-reading generic shape under suppression: the adc's CF read
	// must see the head cmp's carry even though the adc's own writes are
	// suppressed and then redefined.
	c = runDifferential(t, "cmpq rsi, rdi\nadcq rdx, -16(rsp)\nxorq rcx, rcx", 400)
	if got := c.FallbackSlots(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("memory-destination adc must dispatch generically, fallback slots %v", got)
	}
	if n := c.FlagFreeSlots(); n != 1 {
		t.Errorf("dead adc writes: %d flag-free slots, want 1 (its CF read pins the cmp)", n)
	}
}
