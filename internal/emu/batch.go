package emu

import "repro/internal/x64"

// Batched lockstep evaluation: one dispatch, all testcases. Batch runs a
// compiled program across a set of per-testcase machines slot by slot —
// every live lane executes the current micro-op before the pc advances —
// so the dispatch switch, the operand decode, and the liveness/nf variant
// selection are paid once per slot instead of once per (slot, lane). Each
// inline dispatch code's body is the scalar RunCompiled body wrapped in a
// loop over lanes with the micro-op fields hoisted into locals; micro-ops
// without an inline code dispatch their specialised handler per lane, which
// is exactly the scalar path with the switch amortised away. Lanes are full
// Machines, so there is no separate batched state to build, invalidate on
// Patch, or sync back before scoring: the batch borrows the caller's
// machines and leaves each one in the identical state a scalar RunCompiled
// would have.
//
// Control flow runs in lockstep while the lanes agree. A conditional jump
// evaluates its condition per lane (with the same per-lane undef-read
// accounting as the scalar path); if the lanes split, the minority side
// peels off and finishes on the scalar tail (runCompiledFrom, resuming at
// its side of the branch with the step count accumulated so far) while the
// majority continues in lockstep. Divide faults do not diverge — the
// compiled pipeline's #DE handler zeroes RAX:RDX and continues in line —
// so a conditional jump is the only lockstep split point. Programs longer
// than a lane's step budget fall back to that lane's exhaustion-checking
// scalar path up front, where the liveness pass's flag-suppressed variants
// are unsound for the same reason they are in runCompiledBounded.

// Batch holds the scratch state of one lockstep run: per-lane outcomes,
// the compacted live-lane list (machine pointers, so the hot lane loops
// iterate a dense slice with no index indirection) with its parallel
// original-position list, and the taken/fall partition scratch of the Jcc
// case. The zero value is ready to use; one Batch may be reused across any
// number of runs and lane counts.
type Batch struct {
	outs  []Outcome
	lanes []*Machine
	idx   []int32
	tLane []*Machine
	tIdx  []int32
	fLane []*Machine
	fIdx  []int32
}

// Run executes c across every machine in ms in lockstep and returns the
// per-lane outcomes (valid until the next Run). Each machine must already
// hold its lane's input state; on return it holds exactly the state the
// scalar m.RunCompiled(c) would have produced, byte for byte, including
// the fault and undef counters the cost function scores.
func (b *Batch) Run(c *Compiled, ms []*Machine) []Outcome {
	if cap(b.outs) < len(ms) {
		b.outs = make([]Outcome, len(ms))
		b.lanes = make([]*Machine, 0, len(ms))
		b.idx = make([]int32, 0, len(ms))
		b.tLane = make([]*Machine, 0, len(ms))
		b.tIdx = make([]int32, 0, len(ms))
		b.fLane = make([]*Machine, 0, len(ms))
		b.fIdx = make([]int32, 0, len(ms))
	}
	outs := b.outs[:len(ms)]
	lanes, idx := b.lanes[:0], b.idx[:0]
	for i, m := range ms {
		if len(c.ops) > m.MaxSteps {
			outs[i] = m.runCompiledBounded(c)
		} else {
			lanes = append(lanes, m)
			idx = append(idx, int32(i))
		}
	}
	if len(lanes) > 0 {
		b.runLockstep(c, outs, lanes, idx)
	}
	return outs
}

// runLockstep is the batched twin of runCompiledFrom: same slot bodies,
// same observable effects per lane, with the per-slot work hoisted out of
// the lane loop. lanes is the compacted live-lane list; idx[k] is the
// original position of lanes[k] in the caller's machine slice (the outs
// index it reports into).
func (b *Batch) runLockstep(c *Compiled, outs []Outcome, lanes []*Machine, idx []int32) {
	ops := c.ops
	pc, n := uint(0), uint(len(ops))
	steps := 0
	for pc < n {
		u := &ops[pc]
		nx := uint(u.next)
		switch u.kind {
		case mkSkip:
			pc = nx
			continue
		case mkRet:
			pc = n
			continue
		case mkJmp:
			steps++
			pc = uint(u.target)
			continue
		case mkJcc:
			steps++
			cond := u.cc
			tl, fl := b.tLane[:0], b.fLane[:0]
			ti, fi := b.tIdx[:0], b.fIdx[:0]
			for k, m := range lanes {
				if x64.EvalCond(cond, m.readFlagsFor(cond)) {
					tl = append(tl, m)
					ti = append(ti, idx[k])
				} else {
					fl = append(fl, m)
					fi = append(fi, idx[k])
				}
			}
			target := uint(u.target)
			switch {
			case len(fl) == 0:
				pc = target
			case len(tl) == 0:
				pc = nx
			case len(tl) >= len(fl):
				// Divergence: the minority peels to the scalar tail from
				// its side of the branch, the majority stays in lockstep.
				for k, m := range fl {
					outs[fi[k]] = m.runCompiledFrom(c, nx, steps)
				}
				lanes = append(lanes[:0], tl...)
				idx = append(idx[:0], ti...)
				pc = target
			default:
				for k, m := range tl {
					outs[ti[k]] = m.runCompiledFrom(c, target, steps)
				}
				lanes = append(lanes[:0], fl...)
				idx = append(idx[:0], fi...)
				pc = nx
			}
			continue
		case mkMovRRW:
			dst, src, mask := u.dst, u.src, u.mask
			for _, m := range lanes {
				m.setReg(dst, m.readReg(src, mask))
			}
		case mkMovRIW:
			dst, imm := u.dst, u.imm
			for _, m := range lanes {
				m.setReg(dst, imm)
			}
		case mkMovLoadW:
			dst, w, opd := u.dst, int(u.w), u.in.Opd[0]
			for _, m := range lanes {
				m.setReg(dst, m.load(m.effectiveAddr(opd), w))
			}
		case mkMovStoreR:
			src, w, opd := u.src, u.w, u.in.Opd[1]
			wm := widthMask(w)
			for _, m := range lanes {
				v := m.readReg(src, wm)
				m.store(m.effectiveAddr(opd), int(w), v)
			}
		case mkAddRRW:
			dst, src, mask := u.dst, u.src, u.mask
			for _, m := range lanes {
				a := m.readReg(dst, mask)
				bb := m.readReg(src, mask)
				r := (a + bb) & mask
				m.putFlags(x64.AllFlags, addBits(a, bb, 0, r, u))
				m.setReg(dst, r)
			}
		case mkAddRIW:
			dst, imm, mask := u.dst, u.imm, u.mask
			for _, m := range lanes {
				a := m.readReg(dst, mask)
				r := (a + imm) & mask
				m.putFlags(x64.AllFlags, addBits(a, imm, 0, r, u))
				m.setReg(dst, r)
			}
		case mkSubRRW:
			dst, src, mask := u.dst, u.src, u.mask
			for _, m := range lanes {
				a := m.readReg(dst, mask)
				bb := m.readReg(src, mask)
				r := (a - bb) & mask
				m.putFlags(x64.AllFlags, subBits(a, bb, 0, r, u))
				m.setReg(dst, r)
			}
		case mkSubRIW:
			dst, imm, mask := u.dst, u.imm, u.mask
			for _, m := range lanes {
				a := m.readReg(dst, mask)
				r := (a - imm) & mask
				m.putFlags(x64.AllFlags, subBits(a, imm, 0, r, u))
				m.setReg(dst, r)
			}
		case mkAndRRW:
			dst, src, mask, sbit := u.dst, u.src, u.mask, u.sbit
			for _, m := range lanes {
				r := m.readReg(dst, mask) & m.readReg(src, mask)
				m.putFlags(x64.AllFlags, szpBits(r, sbit))
				m.setReg(dst, r)
			}
		case mkAndRIW:
			dst, imm, mask, sbit := u.dst, u.imm, u.mask, u.sbit
			for _, m := range lanes {
				r := m.readReg(dst, mask) & imm
				m.putFlags(x64.AllFlags, szpBits(r, sbit))
				m.setReg(dst, r)
			}
		case mkOrRRW:
			dst, src, mask, sbit := u.dst, u.src, u.mask, u.sbit
			for _, m := range lanes {
				r := m.readReg(dst, mask) | m.readReg(src, mask)
				m.putFlags(x64.AllFlags, szpBits(r, sbit))
				m.setReg(dst, r)
			}
		case mkOrRIW:
			dst, imm, mask, sbit := u.dst, u.imm, u.mask, u.sbit
			for _, m := range lanes {
				r := m.readReg(dst, mask) | imm
				m.putFlags(x64.AllFlags, szpBits(r, sbit))
				m.setReg(dst, r)
			}
		case mkXorRRW:
			dst, src, mask, sbit := u.dst, u.src, u.mask, u.sbit
			for _, m := range lanes {
				r := m.readReg(dst, mask) ^ m.readReg(src, mask)
				m.putFlags(x64.AllFlags, szpBits(r, sbit))
				m.setReg(dst, r)
			}
		case mkXorRIW:
			dst, imm, mask, sbit := u.dst, u.imm, u.mask, u.sbit
			for _, m := range lanes {
				r := m.readReg(dst, mask) ^ imm
				m.putFlags(x64.AllFlags, szpBits(r, sbit))
				m.setReg(dst, r)
			}
		case mkZeroW:
			dst := u.dst
			for _, m := range lanes {
				m.putFlags(x64.AllFlags, x64.ZF|x64.PF)
				m.setReg(dst, 0)
			}
		case mkCmpRR:
			dst, src, mask := u.dst, u.src, u.mask
			for _, m := range lanes {
				a := m.readReg(dst, mask)
				bb := m.readReg(src, mask)
				m.putFlags(x64.AllFlags, subBits(a, bb, 0, (a-bb)&mask, u))
			}
		case mkCmpRI:
			dst, imm, mask := u.dst, u.imm, u.mask
			for _, m := range lanes {
				a := m.readReg(dst, mask)
				m.putFlags(x64.AllFlags, subBits(a, imm, 0, (a-imm)&mask, u))
			}
		case mkTestRR:
			dst, src, mask, sbit := u.dst, u.src, u.mask, u.sbit
			for _, m := range lanes {
				m.putFlags(x64.AllFlags, szpBits(m.readReg(dst, mask)&m.readReg(src, mask), sbit))
			}
		case mkTestRI:
			dst, imm, mask, sbit := u.dst, u.imm, u.mask, u.sbit
			for _, m := range lanes {
				m.putFlags(x64.AllFlags, szpBits(m.readReg(dst, mask)&imm, sbit))
			}
		case mkLeaW:
			dst, mask, opd := u.dst, u.mask, u.in.Opd[0]
			for _, m := range lanes {
				m.setReg(dst, m.effectiveAddr(opd)&mask)
			}
		case mkCmovRRW:
			dst, src, mask, cond := u.dst, u.src, u.mask, u.cc
			for _, m := range lanes {
				taken := x64.EvalCond(cond, m.readFlagsFor(cond))
				sv := m.readReg(src, mask)
				dv := m.readReg(dst, mask)
				v := dv
				if taken {
					v = sv
				}
				m.setReg(dst, v)
			}
		case mkIncW:
			dst, mask, sbit := u.dst, u.mask, u.sbit
			for _, m := range lanes {
				r := (m.readReg(dst, mask) + 1) & mask
				fl := szpBits(r, sbit)
				if r == sbit {
					fl |= x64.OF
				}
				m.putFlags(incDecFlags, fl)
				m.setReg(dst, r)
			}
		case mkDecW:
			dst, mask, sbit := u.dst, u.mask, u.sbit
			for _, m := range lanes {
				a := m.readReg(dst, mask)
				r := (a - 1) & mask
				fl := szpBits(r, sbit)
				if a == sbit {
					fl |= x64.OF
				}
				m.putFlags(incDecFlags, fl)
				m.setReg(dst, r)
			}
		case mkNegW:
			dst, mask, sbit := u.dst, u.mask, u.sbit
			for _, m := range lanes {
				a := m.readReg(dst, mask)
				r := (-a) & mask
				fl := szpBits(r, sbit)
				if a != 0 {
					fl |= x64.CF
				}
				if a == sbit {
					fl |= x64.OF
				}
				m.putFlags(x64.AllFlags, fl)
				m.setReg(dst, r)
			}
		case mkNotW:
			dst, mask := u.dst, u.mask
			for _, m := range lanes {
				m.setReg(dst, ^m.readReg(dst, mask)&mask)
			}
		case mkMovRRN:
			dst, src, w, mask := u.dst, u.src, u.w, u.mask
			for _, m := range lanes {
				m.writeGPR(dst, w, m.readReg(src, mask))
			}
		case mkMovRIN:
			dst, w, imm := u.dst, u.w, u.imm
			for _, m := range lanes {
				m.writeGPR(dst, w, imm)
			}
		case mkSetcc:
			dst, cond := u.dst, u.cc
			for _, m := range lanes {
				v := uint64(0)
				if x64.EvalCond(cond, m.readFlagsFor(cond)) {
					v = 1
				}
				m.writeGPR(dst, 1, v)
			}
		case mkMovsxRR:
			src, mask := u.src, u.mask
			srcMask := widthMask(u.w2)
			inv := 64 - 8*uint(u.w2)
			for _, m := range lanes {
				v := m.readReg(src, srcMask)
				m.writeALU(u, uint64(int64(v<<inv)>>inv)&mask)
			}
		case mkAddRRN:
			dst, src, w, mask, nf := u.dst, u.src, u.w, u.mask, u.nf
			for _, m := range lanes {
				a := m.readReg(dst, mask)
				bb := m.readReg(src, mask)
				r := (a + bb) & mask
				if !nf {
					m.putFlags(x64.AllFlags, addBits(a, bb, 0, r, u))
				}
				m.writeGPR(dst, w, r)
			}
		case mkAddRIN:
			dst, imm, w, mask, nf := u.dst, u.imm, u.w, u.mask, u.nf
			for _, m := range lanes {
				a := m.readReg(dst, mask)
				r := (a + imm) & mask
				if !nf {
					m.putFlags(x64.AllFlags, addBits(a, imm, 0, r, u))
				}
				m.writeGPR(dst, w, r)
			}
		case mkSubRRN:
			dst, src, w, mask, nf := u.dst, u.src, u.w, u.mask, u.nf
			for _, m := range lanes {
				a := m.readReg(dst, mask)
				bb := m.readReg(src, mask)
				r := (a - bb) & mask
				if !nf {
					m.putFlags(x64.AllFlags, subBits(a, bb, 0, r, u))
				}
				m.writeGPR(dst, w, r)
			}
		case mkSubRIN:
			dst, imm, w, mask, nf := u.dst, u.imm, u.w, u.mask, u.nf
			for _, m := range lanes {
				a := m.readReg(dst, mask)
				r := (a - imm) & mask
				if !nf {
					m.putFlags(x64.AllFlags, subBits(a, imm, 0, r, u))
				}
				m.writeGPR(dst, w, r)
			}
		case mkAndRRN:
			dst, src, w, mask, sbit, nf := u.dst, u.src, u.w, u.mask, u.sbit, u.nf
			for _, m := range lanes {
				r := m.readReg(dst, mask) & m.readReg(src, mask)
				if !nf {
					m.putFlags(x64.AllFlags, szpBits(r, sbit))
				}
				m.writeGPR(dst, w, r)
			}
		case mkAndRIN:
			dst, imm, w, mask, sbit, nf := u.dst, u.imm, u.w, u.mask, u.sbit, u.nf
			for _, m := range lanes {
				r := m.readReg(dst, mask) & imm
				if !nf {
					m.putFlags(x64.AllFlags, szpBits(r, sbit))
				}
				m.writeGPR(dst, w, r)
			}
		case mkOrRRN:
			dst, src, w, mask, sbit, nf := u.dst, u.src, u.w, u.mask, u.sbit, u.nf
			for _, m := range lanes {
				r := m.readReg(dst, mask) | m.readReg(src, mask)
				if !nf {
					m.putFlags(x64.AllFlags, szpBits(r, sbit))
				}
				m.writeGPR(dst, w, r)
			}
		case mkOrRIN:
			dst, imm, w, mask, sbit, nf := u.dst, u.imm, u.w, u.mask, u.sbit, u.nf
			for _, m := range lanes {
				r := m.readReg(dst, mask) | imm
				if !nf {
					m.putFlags(x64.AllFlags, szpBits(r, sbit))
				}
				m.writeGPR(dst, w, r)
			}
		case mkXorRRN:
			dst, src, w, mask, sbit, nf := u.dst, u.src, u.w, u.mask, u.sbit, u.nf
			for _, m := range lanes {
				r := m.readReg(dst, mask) ^ m.readReg(src, mask)
				if !nf {
					m.putFlags(x64.AllFlags, szpBits(r, sbit))
				}
				m.writeGPR(dst, w, r)
			}
		case mkXorRIN:
			dst, imm, w, mask, sbit, nf := u.dst, u.imm, u.w, u.mask, u.sbit, u.nf
			for _, m := range lanes {
				r := m.readReg(dst, mask) ^ imm
				if !nf {
					m.putFlags(x64.AllFlags, szpBits(r, sbit))
				}
				m.writeGPR(dst, w, r)
			}
		case mkZeroN:
			dst, w, nf := u.dst, u.w, u.nf
			for _, m := range lanes {
				if !nf {
					m.putFlags(x64.AllFlags, x64.ZF|x64.PF)
				}
				m.writeGPR(dst, w, 0)
			}
		case mkIncN:
			dst, w, mask, sbit, nf := u.dst, u.w, u.mask, u.sbit, u.nf
			for _, m := range lanes {
				r := (m.readReg(dst, mask) + 1) & mask
				if !nf {
					fl := szpBits(r, sbit)
					if r == sbit {
						fl |= x64.OF
					}
					m.putFlags(incDecFlags, fl)
				}
				m.writeGPR(dst, w, r)
			}
		case mkDecN:
			dst, w, mask, sbit, nf := u.dst, u.w, u.mask, u.sbit, u.nf
			for _, m := range lanes {
				a := m.readReg(dst, mask)
				r := (a - 1) & mask
				if !nf {
					fl := szpBits(r, sbit)
					if a == sbit {
						fl |= x64.OF
					}
					m.putFlags(incDecFlags, fl)
				}
				m.writeGPR(dst, w, r)
			}
		case mkNegN:
			dst, w, mask, sbit, nf := u.dst, u.w, u.mask, u.sbit, u.nf
			for _, m := range lanes {
				a := m.readReg(dst, mask)
				r := (-a) & mask
				if !nf {
					fl := szpBits(r, sbit)
					if a != 0 {
						fl |= x64.CF
					}
					if a == sbit {
						fl |= x64.OF
					}
					m.putFlags(x64.AllFlags, fl)
				}
				m.writeGPR(dst, w, r)
			}
		case mkShlIW:
			dst, imm, mask := u.dst, u.imm, u.mask
			for _, m := range lanes {
				shlCore(m, u, m.readReg(dst, mask), imm)
			}
		case mkShrIW:
			dst, imm, mask := u.dst, u.imm, u.mask
			for _, m := range lanes {
				shrCore(m, u, m.readReg(dst, mask), imm)
			}
		case mkSarIW:
			dst, imm, mask := u.dst, u.imm, u.mask
			for _, m := range lanes {
				sarCore(m, u, m.readReg(dst, mask), imm)
			}
		case mkAddRRWNF:
			dst, src, mask := u.dst, u.src, u.mask
			for _, m := range lanes {
				m.setReg(dst, (m.readReg(dst, mask)+m.readReg(src, mask))&mask)
			}
		case mkAddRIWNF:
			dst, imm, mask := u.dst, u.imm, u.mask
			for _, m := range lanes {
				m.setReg(dst, (m.readReg(dst, mask)+imm)&mask)
			}
		case mkSubRRWNF:
			dst, src, mask := u.dst, u.src, u.mask
			for _, m := range lanes {
				m.setReg(dst, (m.readReg(dst, mask)-m.readReg(src, mask))&mask)
			}
		case mkSubRIWNF:
			dst, imm, mask := u.dst, u.imm, u.mask
			for _, m := range lanes {
				m.setReg(dst, (m.readReg(dst, mask)-imm)&mask)
			}
		case mkAndRRWNF:
			dst, src, mask := u.dst, u.src, u.mask
			for _, m := range lanes {
				m.setReg(dst, m.readReg(dst, mask)&m.readReg(src, mask))
			}
		case mkAndRIWNF:
			dst, imm, mask := u.dst, u.imm, u.mask
			for _, m := range lanes {
				m.setReg(dst, m.readReg(dst, mask)&imm)
			}
		case mkOrRRWNF:
			dst, src, mask := u.dst, u.src, u.mask
			for _, m := range lanes {
				m.setReg(dst, m.readReg(dst, mask)|m.readReg(src, mask))
			}
		case mkOrRIWNF:
			dst, imm, mask := u.dst, u.imm, u.mask
			for _, m := range lanes {
				m.setReg(dst, m.readReg(dst, mask)|imm)
			}
		case mkXorRRWNF:
			dst, src, mask := u.dst, u.src, u.mask
			for _, m := range lanes {
				m.setReg(dst, m.readReg(dst, mask)^m.readReg(src, mask))
			}
		case mkXorRIWNF:
			dst, imm, mask := u.dst, u.imm, u.mask
			for _, m := range lanes {
				m.setReg(dst, m.readReg(dst, mask)^imm)
			}
		case mkZeroWNF:
			dst := u.dst
			for _, m := range lanes {
				m.setReg(dst, 0)
			}
		case mkCmpRRNF:
			dst, src, mask := u.dst, u.src, u.mask
			for _, m := range lanes {
				m.readReg(dst, mask)
				m.readReg(src, mask)
			}
		case mkCmpRINF:
			dst, mask := u.dst, u.mask
			for _, m := range lanes {
				m.readReg(dst, mask)
			}
		case mkTestRRNF:
			dst, src, mask := u.dst, u.src, u.mask
			for _, m := range lanes {
				m.readReg(dst, mask)
				m.readReg(src, mask)
			}
		case mkTestRINF:
			dst, mask := u.dst, u.mask
			for _, m := range lanes {
				m.readReg(dst, mask)
			}
		case mkIncWNF:
			dst, mask := u.dst, u.mask
			for _, m := range lanes {
				m.setReg(dst, (m.readReg(dst, mask)+1)&mask)
			}
		case mkDecWNF:
			dst, mask := u.dst, u.mask
			for _, m := range lanes {
				m.setReg(dst, (m.readReg(dst, mask)-1)&mask)
			}
		case mkNegWNF:
			dst, mask := u.dst, u.mask
			for _, m := range lanes {
				m.setReg(dst, (-m.readReg(dst, mask))&mask)
			}
		case mkShlIWNF:
			dst, imm, mask := u.dst, u.imm, u.mask
			for _, m := range lanes {
				m.setReg(dst, m.readReg(dst, mask)<<imm&mask)
			}
		case mkShrIWNF:
			dst, imm, mask := u.dst, u.imm, u.mask
			for _, m := range lanes {
				m.setReg(dst, m.readReg(dst, mask)>>imm)
			}
		case mkSarIWNF:
			dst, imm, mask, w := u.dst, u.imm, u.mask, u.w
			for _, m := range lanes {
				m.setReg(dst, uint64(sext(m.readReg(dst, mask), w)>>imm)&mask)
			}
		case mkAddRRWZ:
			dst, src, mask, sbit := u.dst, u.src, u.mask, u.sbit
			for _, m := range lanes {
				r := (m.readReg(dst, mask) + m.readReg(src, mask)) & mask
				m.putFlags(x64.AllFlags, szpBits(r, sbit))
				m.setReg(dst, r)
			}
		case mkAddRIWZ:
			dst, imm, mask, sbit := u.dst, u.imm, u.mask, u.sbit
			for _, m := range lanes {
				r := (m.readReg(dst, mask) + imm) & mask
				m.putFlags(x64.AllFlags, szpBits(r, sbit))
				m.setReg(dst, r)
			}
		case mkSubRRWZ:
			dst, src, mask, sbit := u.dst, u.src, u.mask, u.sbit
			for _, m := range lanes {
				r := (m.readReg(dst, mask) - m.readReg(src, mask)) & mask
				m.putFlags(x64.AllFlags, szpBits(r, sbit))
				m.setReg(dst, r)
			}
		case mkSubRIWZ:
			dst, imm, mask, sbit := u.dst, u.imm, u.mask, u.sbit
			for _, m := range lanes {
				r := (m.readReg(dst, mask) - imm) & mask
				m.putFlags(x64.AllFlags, szpBits(r, sbit))
				m.setReg(dst, r)
			}
		case mkCmpRRZ:
			dst, src, mask, sbit := u.dst, u.src, u.mask, u.sbit
			for _, m := range lanes {
				a := m.readReg(dst, mask)
				bb := m.readReg(src, mask)
				m.putFlags(x64.AllFlags, szpBits((a-bb)&mask, sbit))
			}
		case mkCmpRIZ:
			dst, imm, mask, sbit := u.dst, u.imm, u.mask, u.sbit
			for _, m := range lanes {
				m.putFlags(x64.AllFlags, szpBits((m.readReg(dst, mask)-imm)&mask, sbit))
			}
		case mkMovdRX:
			dst, src, mask := u.dst, u.src, u.mask
			for _, m := range lanes {
				m.writeXmm(dst, [2]uint64{m.readReg(src, mask), 0})
			}
		case mkMovXX:
			dst, src := u.dst, u.src
			for _, m := range lanes {
				m.writeXmm(dst, m.readXmmOp(src))
			}
		case mkMovupsLoad:
			dst, opd := u.dst, u.in.Opd[0]
			for _, m := range lanes {
				m.writeXmm(dst, m.readXmmOrMem(opd))
			}
		case mkMovupsStore:
			src, opd := u.src, u.in.Opd[1]
			for _, m := range lanes {
				m.writeXmmMem(opd, m.readXmmOp(src))
			}
		case mkShufps:
			for _, m := range lanes {
				hShufps(m, u)
			}
		case mkPshufd:
			for _, m := range lanes {
				hPshufd(m, u)
			}
		case mkPAddW:
			for _, m := range lanes {
				m.packedRR(u, x64.PADDW)
			}
		case mkPSubW:
			for _, m := range lanes {
				m.packedRR(u, x64.PSUBW)
			}
		case mkPMullW:
			for _, m := range lanes {
				m.packedRR(u, x64.PMULLW)
			}
		case mkPAddD:
			for _, m := range lanes {
				m.packedRR(u, x64.PADDD)
			}
		case mkPSubD:
			for _, m := range lanes {
				m.packedRR(u, x64.PSUBD)
			}
		case mkPMullD:
			for _, m := range lanes {
				m.packedRR(u, x64.PMULLD)
			}
		case mkPAddQ:
			for _, m := range lanes {
				m.packedRR(u, x64.PADDQ)
			}
		case mkPAnd:
			for _, m := range lanes {
				m.packedRR(u, x64.PAND)
			}
		case mkPOr:
			for _, m := range lanes {
				m.packedRR(u, x64.POR)
			}
		case mkPXor:
			for _, m := range lanes {
				m.packedRR(u, x64.PXOR)
			}
		case mkPXorZero:
			dst := u.dst
			for _, m := range lanes {
				m.writeXmm(dst, [2]uint64{0, 0})
			}
		case mkDeadNone:
		case mkDeadR:
			src, mask := u.src, u.mask
			for _, m := range lanes {
				m.readReg(src, mask)
			}
		case mkDeadRD:
			dst, mask := u.dst, u.mask
			for _, m := range lanes {
				m.readReg(dst, mask)
			}
		case mkDeadRR:
			dst, src, mask := u.dst, u.src, u.mask
			for _, m := range lanes {
				m.readReg(dst, mask)
				m.readReg(src, mask)
			}
		case mkDeadEA:
			opd := u.in.Opd[0]
			for _, m := range lanes {
				m.effectiveAddr(opd)
			}
		case mkDeadLoad:
			w, opd := int(u.w), u.in.Opd[0]
			for _, m := range lanes {
				m.load(m.effectiveAddr(opd), w)
			}
		case mkDeadCmov:
			dst, src, mask, cond := u.dst, u.src, u.mask, u.cc
			for _, m := range lanes {
				m.readFlagsFor(cond)
				m.readReg(src, mask)
				m.readReg(dst, mask)
			}
		case mkDeadSetcc:
			dst, cond := u.dst, u.cc
			for _, m := range lanes {
				m.readFlagsFor(cond)
				m.undef += int(^m.RegDef >> dst & 1)
			}
		case mkDeadN:
			dst := u.dst
			for _, m := range lanes {
				m.undef += int(^m.RegDef >> dst & 1)
			}
		case mkDeadRN:
			dst, src, mask := u.dst, u.src, u.mask
			for _, m := range lanes {
				m.readReg(src, mask)
				m.undef += int(^m.RegDef >> dst & 1)
			}
		case mkDeadRDN:
			dst, mask := u.dst, u.mask
			for _, m := range lanes {
				m.readReg(dst, mask)
				m.undef += int(^m.RegDef >> dst & 1)
			}
		case mkDeadRRN:
			dst, src, mask := u.dst, u.src, u.mask
			for _, m := range lanes {
				m.readReg(dst, mask)
				m.readReg(src, mask)
				m.undef += int(^m.RegDef >> dst & 1)
			}
		case mkDeadX:
			src := u.src
			for _, m := range lanes {
				m.readXmmOp(src)
			}
		case mkDeadXX:
			dst, src := u.dst, u.src
			for _, m := range lanes {
				m.readXmmOp(src)
				m.readXmmOp(dst)
			}
		case mkDeadXLoad:
			opd := u.in.Opd[0]
			for _, m := range lanes {
				m.readXmmOrMem(opd)
			}
		default:
			run := u.run
			for _, m := range lanes {
				run(m, u)
			}
		}
		steps++
		pc = nx
	}
	for k, m := range lanes {
		outs[idx[k]] = Outcome{
			Steps:   steps,
			SigSegv: m.sigsegv,
			SigFpe:  m.sigfpe,
			Undef:   m.undef,
		}
	}
}
