package emu

import (
	"math/bits"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/x64"
)

// snapshotWithRegs builds a snapshot with the given registers defined.
func snapshotWithRegs(vals map[x64.Reg]uint64) *Snapshot {
	s := &Snapshot{}
	for r, v := range vals {
		s.Regs[r] = v
		s.RegDef |= 1 << r
	}
	s.FlagsDef = x64.AllFlags
	return s
}

func run(t *testing.T, src string, s *Snapshot) (*Machine, Outcome) {
	t.Helper()
	p, err := x64.Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	m := New()
	m.LoadSnapshot(s)
	out := m.Run(p)
	return m, out
}

func TestBasicALU(t *testing.T) {
	m, out := run(t, `
  movq 10, rax
  addq 5, rax
  movq rax, rbx
  subq 20, rbx
  negq rbx
`, snapshotWithRegs(nil))
	if out.SigSegv+out.SigFpe != 0 {
		t.Fatalf("unexpected faults: %+v", out)
	}
	if m.Regs[x64.RAX] != 15 {
		t.Errorf("rax = %d, want 15", m.Regs[x64.RAX])
	}
	if m.Regs[x64.RBX] != 5 {
		t.Errorf("rbx = %d, want 5", m.Regs[x64.RBX])
	}
}

func TestWidth32ZeroExtends(t *testing.T) {
	m, _ := run(t, `
  movq -1, rax
  movl 7, eax
  movq -1, rbx
  mov ebx, ebx
`, snapshotWithRegs(nil))
	if m.Regs[x64.RAX] != 7 {
		t.Errorf("rax = %#x, want 7 (32-bit write zero-extends)", m.Regs[x64.RAX])
	}
	if m.Regs[x64.RBX] != 0xffffffff {
		t.Errorf("rbx = %#x, want 0xffffffff (mov ebx,ebx zeroes upper half)", m.Regs[x64.RBX])
	}
}

func TestWidth8And16Merge(t *testing.T) {
	m, _ := run(t, `
  movq 0x1122334455667788, rax
  movb 0xff, al
  movw 0xaaaa, cx
`, snapshotWithRegs(map[x64.Reg]uint64{x64.RCX: 0x9999999999999999}))
	if m.Regs[x64.RAX] != 0x11223344556677ff {
		t.Errorf("rax = %#x (8-bit write must merge)", m.Regs[x64.RAX])
	}
	if m.Regs[x64.RCX] != 0x999999999999aaaa {
		t.Errorf("rcx = %#x (16-bit write must merge)", m.Regs[x64.RCX])
	}
}

func TestAddFlagsProperty(t *testing.T) {
	// CF and OF of 64-bit addition must match wide arithmetic.
	f := func(a, b uint64) bool {
		m, _ := run(t, "addq rbx, rax",
			snapshotWithRegs(map[x64.Reg]uint64{x64.RAX: a, x64.RBX: b}))
		sum, carry := bits.Add64(a, b, 0)
		wantCF := carry == 1
		wantOF := (a^sum)&(b^sum)>>63 != 0
		wantZF := sum == 0
		wantSF := sum>>63 != 0
		return m.Flags&x64.CF != 0 == wantCF &&
			m.Flags&x64.OF != 0 == wantOF &&
			m.Flags&x64.ZF != 0 == wantZF &&
			m.Flags&x64.SF != 0 == wantSF &&
			m.Regs[x64.RAX] == sum
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestSubCmpFlagsProperty(t *testing.T) {
	f := func(a, b uint64) bool {
		m, _ := run(t, "cmpq rbx, rax",
			snapshotWithRegs(map[x64.Reg]uint64{x64.RAX: a, x64.RBX: b}))
		diff := a - b
		wantCF := a < b
		wantOF := (a^b)&(a^diff)>>63 != 0
		// cmp must not modify its operands.
		return m.Flags&x64.CF != 0 == wantCF &&
			m.Flags&x64.OF != 0 == wantOF &&
			m.Flags&x64.ZF != 0 == (diff == 0) &&
			m.Regs[x64.RAX] == a && m.Regs[x64.RBX] == b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestAdcChainProperty(t *testing.T) {
	// 128-bit addition via add/adc must match bits.Add64 carry chains.
	f := func(a0, a1, b0, b1 uint64) bool {
		m, _ := run(t, `
  addq rcx, rax
  adcq rdx, rbx
`, snapshotWithRegs(map[x64.Reg]uint64{
			x64.RAX: a0, x64.RBX: a1, x64.RCX: b0, x64.RDX: b1,
		}))
		lo, c := bits.Add64(a0, b0, 0)
		hi, _ := bits.Add64(a1, b1, c)
		return m.Regs[x64.RAX] == lo && m.Regs[x64.RBX] == hi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestMulWideningProperty(t *testing.T) {
	f := func(a, b uint64) bool {
		m, _ := run(t, "mulq rbx",
			snapshotWithRegs(map[x64.Reg]uint64{x64.RAX: a, x64.RBX: b}))
		hi, lo := bits.Mul64(a, b)
		return m.Regs[x64.RAX] == lo && m.Regs[x64.RDX] == hi &&
			(m.Flags&x64.CF != 0) == (hi != 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestImulSignedProperty(t *testing.T) {
	f := func(a, b int64) bool {
		m, _ := run(t, "imulq rbx, rax",
			snapshotWithRegs(map[x64.Reg]uint64{x64.RAX: uint64(a), x64.RBX: uint64(b)}))
		return m.Regs[x64.RAX] == uint64(a*b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestShifts(t *testing.T) {
	cases := []struct {
		src  string
		init uint64
		want uint64
	}{
		{"shlq 4, rax", 0x1, 0x10},
		{"shrq 4, rax", 0x10, 0x1},
		{"sarq 63, rax", 1 << 63, ^uint64(0)},
		{"sarl 31, eax", 0x80000000, 0xffffffff},
		{"shrl 1, eax", 0x80000000, 0x40000000},
		{"rolq 8, rax", 0xff00000000000000, 0xff},
		{"rorq 8, rax", 0xff, 0xff00000000000000},
		{"shlq 0, rax", 42, 42},
	}
	for _, c := range cases {
		m, _ := run(t, c.src, snapshotWithRegs(map[x64.Reg]uint64{x64.RAX: c.init}))
		if m.Regs[x64.RAX] != c.want {
			t.Errorf("%s on %#x = %#x, want %#x", c.src, c.init, m.Regs[x64.RAX], c.want)
		}
	}
}

func TestShiftByCL(t *testing.T) {
	m, _ := run(t, "shlq cl, rax",
		snapshotWithRegs(map[x64.Reg]uint64{x64.RAX: 3, x64.RCX: 65}))
	// Count is masked to 6 bits: 65 & 63 == 1.
	if m.Regs[x64.RAX] != 6 {
		t.Errorf("rax = %d, want 6 (count masked to 63)", m.Regs[x64.RAX])
	}
}

func TestShiftZeroCountPreservesFlags(t *testing.T) {
	m, _ := run(t, `
  cmpq rax, rax
  shlq 0, rbx
`, snapshotWithRegs(map[x64.Reg]uint64{x64.RAX: 5, x64.RBX: 1}))
	if m.Flags&x64.ZF == 0 {
		t.Fatal("ZF from cmp must survive a zero-count shift")
	}
}

func TestDivideAndFault(t *testing.T) {
	m, out := run(t, "divq rbx",
		snapshotWithRegs(map[x64.Reg]uint64{x64.RAX: 100, x64.RDX: 0, x64.RBX: 7}))
	if out.SigFpe != 0 || m.Regs[x64.RAX] != 14 || m.Regs[x64.RDX] != 2 {
		t.Fatalf("div: rax=%d rdx=%d fpe=%d", m.Regs[x64.RAX], m.Regs[x64.RDX], out.SigFpe)
	}
	_, out = run(t, "divq rbx",
		snapshotWithRegs(map[x64.Reg]uint64{x64.RAX: 100, x64.RDX: 0, x64.RBX: 0}))
	if out.SigFpe != 1 {
		t.Fatalf("divide by zero must count sigfpe, got %+v", out)
	}
	// Quotient overflow: rdx >= divisor.
	_, out = run(t, "divq rbx",
		snapshotWithRegs(map[x64.Reg]uint64{x64.RAX: 0, x64.RDX: 8, x64.RBX: 4}))
	if out.SigFpe != 1 {
		t.Fatalf("divide overflow must count sigfpe, got %+v", out)
	}
}

func TestConditionals(t *testing.T) {
	m, _ := run(t, `
  cmpq rbx, rax
  seta cl
  setb dl
  cmoveq rbx, rsi
`, snapshotWithRegs(map[x64.Reg]uint64{
		x64.RAX: 10, x64.RBX: 20, x64.RCX: 0xffff, x64.RDX: 0xffff, x64.RSI: 7,
	}))
	if m.Regs[x64.RCX]&0xff != 0 {
		t.Errorf("seta: cl = %d, want 0 (10 not above 20)", m.Regs[x64.RCX]&0xff)
	}
	if m.Regs[x64.RDX]&0xff != 1 {
		t.Errorf("setb: dl = %d, want 1", m.Regs[x64.RDX]&0xff)
	}
	if m.Regs[x64.RSI] != 7 {
		t.Errorf("cmove not taken must leave rsi, got %d", m.Regs[x64.RSI])
	}
}

func TestCmov32AlwaysZeroExtends(t *testing.T) {
	// Even when the condition is false, a 32-bit cmov zeroes the upper half.
	m, _ := run(t, `
  cmpq rax, rax
  cmovnel ebx, ecx
`, snapshotWithRegs(map[x64.Reg]uint64{
		x64.RAX: 1, x64.RBX: 5, x64.RCX: 0xaaaaaaaabbbbbbbb,
	}))
	if m.Regs[x64.RCX] != 0xbbbbbbbb {
		t.Errorf("rcx = %#x, want 0xbbbbbbbb", m.Regs[x64.RCX])
	}
}

func TestBitOps(t *testing.T) {
	m, _ := run(t, `
  popcntq rax, rbx
  bsfq rax, rcx
  bsrq rax, rdx
  bswapq rsi
`, snapshotWithRegs(map[x64.Reg]uint64{
		x64.RAX: 0x00f0000000000100, x64.RSI: 0x0102030405060708,
	}))
	if m.Regs[x64.RBX] != 5 {
		t.Errorf("popcnt = %d, want 5", m.Regs[x64.RBX])
	}
	if m.Regs[x64.RCX] != 8 {
		t.Errorf("bsf = %d, want 8", m.Regs[x64.RCX])
	}
	if m.Regs[x64.RDX] != 55 {
		t.Errorf("bsr = %d, want 55", m.Regs[x64.RDX])
	}
	if m.Regs[x64.RSI] != 0x0807060504030201 {
		t.Errorf("bswap = %#x", m.Regs[x64.RSI])
	}
}

func TestMemorySandbox(t *testing.T) {
	s := snapshotWithRegs(map[x64.Reg]uint64{x64.RDI: 0x1000})
	s.Mem = []MemImage{{
		Base:  0x1000,
		Data:  []byte{1, 2, 3, 4, 5, 6, 7, 8, 0, 0, 0, 0, 0, 0, 0, 0},
		Def:   []bool{true, true, true, true, true, true, true, true, false, false, false, false, false, false, false, false},
		Valid: []bool{true, true, true, true, true, true, true, true, true, true, true, true, true, true, true, true},
	}}

	m, out := run(t, "movq (rdi), rax", s)
	if out.SigSegv != 0 || m.Regs[x64.RAX] != 0x0807060504030201 {
		t.Fatalf("load: rax=%#x out=%+v", m.Regs[x64.RAX], out)
	}

	// Reading undefined-but-valid bytes counts undef, not segv.
	_, out = run(t, "movq 8(rdi), rax", s)
	if out.Undef != 1 || out.SigSegv != 0 {
		t.Fatalf("undef read: %+v", out)
	}

	// Reading outside the segment faults and reads zero.
	m, out = run(t, "movq 0x100(rdi), rax", s)
	if out.SigSegv != 1 || m.Regs[x64.RAX] != 0 {
		t.Fatalf("oob read: rax=%d out=%+v", m.Regs[x64.RAX], out)
	}

	// A store outside the sandbox is dropped.
	m, out = run(t, "movq rax, 0x100(rdi)", s)
	if out.SigSegv != 1 {
		t.Fatalf("oob store: %+v", out)
	}

	// Stores inside the sandbox land.
	m, out = run(t, `
  movq 0xdeadbeef, rax
  movl eax, 8(rdi)
  movl 8(rdi), ebx
`, s)
	if out.SigSegv != 0 || m.Regs[x64.RBX] != 0xdeadbeef {
		t.Fatalf("store/load: rbx=%#x out=%+v", m.Regs[x64.RBX], out)
	}
}

func TestUndefRegisterRead(t *testing.T) {
	// RBX is never initialised: reading it must count an undef.
	_, out := run(t, "addq rbx, rax",
		snapshotWithRegs(map[x64.Reg]uint64{x64.RAX: 1}))
	if out.Undef != 1 {
		t.Fatalf("undef = %d, want 1", out.Undef)
	}
}

func TestUndefFlagsRead(t *testing.T) {
	s := snapshotWithRegs(map[x64.Reg]uint64{x64.RAX: 1, x64.RBX: 2})
	s.FlagsDef = 0
	_, out := run(t, "cmoveq rbx, rax", s)
	if out.Undef != 1 {
		t.Fatalf("reading undefined flags must count undef, got %+v", out)
	}
}

func TestForwardJump(t *testing.T) {
	m, _ := run(t, `
  movq 1, rax
  jmp .L1
  movq 2, rax
.L1
  movq 3, rbx
`, snapshotWithRegs(nil))
	if m.Regs[x64.RAX] != 1 || m.Regs[x64.RBX] != 3 {
		t.Fatalf("rax=%d rbx=%d", m.Regs[x64.RAX], m.Regs[x64.RBX])
	}
}

func TestPushPop(t *testing.T) {
	s := snapshotWithRegs(map[x64.Reg]uint64{x64.RSP: 0x2040, x64.RAX: 42})
	stack := MemImage{Base: 0x2000, Data: make([]byte, 64)}
	stack.Def = make([]bool, 64)
	stack.Valid = make([]bool, 64)
	for i := range stack.Valid {
		stack.Valid[i] = true
	}
	s.Mem = []MemImage{stack}
	m, out := run(t, `
  pushq rax
  popq rbx
`, s)
	if out.SigSegv != 0 || m.Regs[x64.RBX] != 42 || m.Regs[x64.RSP] != 0x2040 {
		t.Fatalf("push/pop: rbx=%d rsp=%#x out=%+v", m.Regs[x64.RBX], m.Regs[x64.RSP], out)
	}
}

// montSnapshot builds inputs for the Montgomery multiplication kernel:
// rsi=np, ecx=mh, edx=ml, rdi=c0, r8=c1.
func montSnapshot(rng *rand.Rand) *Snapshot {
	return snapshotWithRegs(map[x64.Reg]uint64{
		x64.RSI: rng.Uint64(),
		x64.RCX: uint64(rng.Uint32()),
		x64.RDX: uint64(rng.Uint32()),
		x64.RDI: rng.Uint64(),
		x64.R8:  rng.Uint64(),
	})
}

// montReference computes c1:c0 := np * mh:ml + c1 + c0 in Go.
func montReference(np, mh, ml, c0, c1 uint64) (hi, lo uint64) {
	hi, lo = bits.Mul64(np, mh<<32|ml)
	var c uint64
	lo, c = bits.Add64(lo, c0, 0)
	hi, _ = bits.Add64(hi, 0, c)
	lo, c = bits.Add64(lo, c1, 0)
	hi, _ = bits.Add64(hi, 0, c)
	return hi, lo
}

const montGccO3 = `
.set c0 0xffffffff
.set c1 0x100000000
.L0
  movq rsi, r9
  mov ecx, ecx
  shrq 32, rsi
  andl c0, r9d
  movq rcx, rax
  mov edx, edx
  imulq r9, rax
  imulq rdx, r9
  imulq rsi, rdx
  imulq rsi, rcx
  addq rdx, rax
  jae .L2
  movabsq c1, rdx
  addq rdx, rcx
.L2
  movq rax, rsi
  movq rax, rdx
  shrq 32, rsi
  salq 32, rdx
  addq rsi, rcx
  addq r9, rdx
  adcq 0, rcx
  addq r8, rdx
  adcq 0, rcx
  addq rdi, rdx
  adcq 0, rcx
  movq rcx, r8
  movq rdx, rdi
`

const montStoke = `
.L0
  shlq 32, rcx
  mov edx, edx
  xorq rdx, rcx
  movq rcx, rax
  mulq rsi
  addq r8, rdi
  adcq 0, rdx
  addq rdi, rax
  adcq 0, rdx
  movq rdx, r8
  movq rax, rdi
`

// TestMontgomeryEquivalence is the end-to-end fidelity check for the
// emulator: the paper's gcc -O3 sequence and the paper's STOKE rewrite
// (Figure 1) must compute the same function, which must match the reference
// Go semantics.
func TestMontgomeryEquivalence(t *testing.T) {
	gcc := x64.MustParse(montGccO3)
	stoke := x64.MustParse(montStoke)
	rng := rand.New(rand.NewSource(1))
	m := New()
	for i := 0; i < 2000; i++ {
		s := montSnapshot(rng)
		np, mh, ml := s.Regs[x64.RSI], s.Regs[x64.RCX], s.Regs[x64.RDX]
		c0, c1 := s.Regs[x64.RDI], s.Regs[x64.R8]
		wantHi, wantLo := montReference(np, mh, ml, c0, c1)

		m.LoadSnapshot(s)
		out := m.Run(gcc)
		if out.SigSegv+out.SigFpe+out.Undef != 0 {
			t.Fatalf("gcc kernel faulted: %+v", out)
		}
		if m.Regs[x64.R8] != wantHi || m.Regs[x64.RDI] != wantLo {
			t.Fatalf("gcc kernel: got %#x:%#x want %#x:%#x (np=%#x mh=%#x ml=%#x c0=%#x c1=%#x)",
				m.Regs[x64.R8], m.Regs[x64.RDI], wantHi, wantLo, np, mh, ml, c0, c1)
		}

		m.LoadSnapshot(s)
		m.Run(stoke)
		if m.Regs[x64.R8] != wantHi || m.Regs[x64.RDI] != wantLo {
			t.Fatalf("stoke kernel: got %#x:%#x want %#x:%#x",
				m.Regs[x64.R8], m.Regs[x64.RDI], wantHi, wantLo)
		}
	}
}

func TestSSESaxpyRewrite(t *testing.T) {
	// The STOKE SAXPY rewrite from Figure 14: x[i..i+3] = a*x[i..i+3] +
	// y[i..i+3] on 32-bit lanes (pmulld is used here; the paper prints
	// pmullw for its 16-bit testcase values).
	src := `
  movd edi, xmm0
  shufps 0, xmm0, xmm0
  movups (rsi,rcx,4), xmm1
  pmulld xmm1, xmm0
  movups (rdx,rcx,4), xmm1
  paddd xmm1, xmm0
  movups xmm0, (rsi,rcx,4)
`
	p := x64.MustParse(src)
	rng := rand.New(rand.NewSource(2))
	xs := make([]int32, 4)
	ys := make([]int32, 4)
	for i := range xs {
		xs[i] = int32(rng.Uint32())
		ys[i] = int32(rng.Uint32())
	}
	a := int32(rng.Uint32())

	mkImage := func(base uint64, vals []int32) MemImage {
		im := MemImage{Base: base, Data: make([]byte, 16),
			Def: make([]bool, 16), Valid: make([]bool, 16)}
		for i, v := range vals {
			u := uint32(v)
			for b := 0; b < 4; b++ {
				im.Data[i*4+b] = byte(u >> (8 * b))
				im.Def[i*4+b] = true
				im.Valid[i*4+b] = true
			}
		}
		return im
	}
	s := snapshotWithRegs(map[x64.Reg]uint64{
		x64.RDI: uint64(uint32(a)),
		x64.RSI: 0x1000,
		x64.RDX: 0x2000,
		x64.RCX: 0,
	})
	s.Mem = []MemImage{mkImage(0x1000, xs), mkImage(0x2000, ys)}

	m := New()
	m.LoadSnapshot(s)
	out := m.Run(p)
	if out.SigSegv+out.SigFpe+out.Undef != 0 {
		t.Fatalf("faults: %+v", out)
	}
	for i := 0; i < 4; i++ {
		want := uint32(a*xs[i] + ys[i])
		var got uint32
		for b := 3; b >= 0; b-- {
			bb, _, _ := m.MemByte(0x1000 + uint64(i*4+b))
			got = got<<8 | uint32(bb)
		}
		if got != want {
			t.Errorf("lane %d: got %#x, want %#x", i, got, want)
		}
	}
}

func TestStepBudget(t *testing.T) {
	p := x64.NewProgram(10)
	for i := range p.Insts {
		p.Insts[i] = x64.MakeInst(x64.ADD, x64.Imm(1, 8), x64.R64(x64.RAX))
	}
	m := New()
	m.MaxSteps = 3
	m.LoadSnapshot(snapshotWithRegs(map[x64.Reg]uint64{x64.RAX: 0}))
	out := m.Run(p)
	if !out.Exhaust || out.Steps != 3 {
		t.Fatalf("out = %+v, want exhausted after 3 steps", out)
	}
}

func TestZeroIdiomsDefineRegisters(t *testing.T) {
	// xor r,r / sub r,r / pxor x,x are dependency-breaking zero idioms:
	// no undef penalty even on completely undefined state.
	s := &Snapshot{} // nothing defined
	m := New()
	for _, src := range []string{
		"xorq rax, rax", "xorl ebx, ebx", "subq rcx, rcx", "pxor xmm3, xmm3",
	} {
		m.LoadSnapshot(s)
		out := m.Run(x64.MustParse(src))
		if out.Undef != 0 {
			t.Errorf("%s counted %d undef reads, want 0", src, out.Undef)
		}
	}
	// But xor with a *different* undefined register still counts.
	m.LoadSnapshot(s)
	if out := m.Run(x64.MustParse("xorq rbx, rax")); out.Undef != 2 {
		t.Errorf("xor rbx, rax counted %d undef reads, want 2", out.Undef)
	}
}

func TestPartialWriteToUndefinedCountsUndef(t *testing.T) {
	s := &Snapshot{FlagsDef: x64.AllFlags}
	m := New()
	// Writing al merges with the undefined upper bits of rax.
	m.LoadSnapshot(s)
	if out := m.Run(x64.MustParse("movb 1, al")); out.Undef != 1 {
		t.Errorf("8-bit write to undefined rax: %d undef, want 1", out.Undef)
	}
	// 32-bit writes zero-extend: fully defined, no penalty.
	m.LoadSnapshot(s)
	if out := m.Run(x64.MustParse("movl 1, eax")); out.Undef != 0 {
		t.Errorf("32-bit write: %d undef, want 0", out.Undef)
	}
}
