package emu

import (
	"math/bits"

	"repro/internal/perf"
	"repro/internal/x64"
)

// This file implements the decode phase of the two-phase evaluation
// pipeline. Compile lowers each instruction slot of a program once into a
// microOp — a pre-resolved handler plus the decoded fields it needs — and
// RunCompiled dispatches over the compiled form without ever re-inspecting
// opcodes, operand kinds or widths. The throughput win comes from five
// decode-time specialisations:
//
//   - Hot opcode/operand shapes (register, immediate and memory-source
//     MOV/ALU forms, shifts, multiplies, LEA, CMOV, SETcc, CMP/TEST,
//     bit-scan ops, push/pop) lower to flat handlers with widths, masks,
//     sign bits and immediates baked in; everything else falls back to a
//     handler that invokes the interpreter's exec on the source
//     instruction, so the two paths cannot disagree on rare opcodes.
//   - The hottest shapes additionally carry a dispatch code the run loop
//     inlines directly, skipping even the indirect handler call.
//   - Specialised handlers compute the full flag update as one word and
//     write Flags/FlagsDef once (branch-free where the outcome bits are
//     data-random), instead of five setFlag calls.
//   - Every slot pre-links its fall-through: the next live slot. Dead
//     UNUSED/LABEL slots are never visited at all — a mostly-empty ℓ=50
//     candidate costs as many dispatches as it has live instructions —
//     and the strictly-forward pc makes the step-budget check provably
//     dead for programs that fit it, so the common loop omits it.
//   - Jump targets are linked at compile time instead of scanning for
//     labels on every taken branch; Compile also caches the Equation 13
//     static-latency sum, maintained incrementally across patches.
//   - A backward flag-liveness pass (liveness.go) marks the slots whose
//     flag writes no later consumer or exit can observe, and swaps their
//     dispatch codes for flag-suppressed (or reduced szp-only) variants,
//     so the run loop skips dead addBits/subBits/szpBits work and the
//     Flags/FlagsDef stores entirely. Patch recomputes liveness only over
//     the affected backward slice.
//
// The struct-of-predecoded-fields + static handler design was chosen over
// per-slot closures under benchmark: closures allocate per compile (hostile
// to the patch-per-proposal discipline) and measured no faster.
//
// A Compiled form stays attached to the program it was lowered from: the
// MCMC sampler mutates at most two slots per proposal and calls Patch on
// exactly those, which re-lowers the slot and repairs the fall-through
// chain in place (with a full relink only if control structure — labels,
// jumps, rets — is involved, which proposal moves never touch).

// microKind classifies a compiled slot for the dispatch loop.
type microKind uint8

const (
	mkExec microKind = iota // run the handler
	mkSkip                  // UNUSED/LABEL: follow the skip chain
	mkRet                   // end execution
	mkJmp                   // unconditional forward jump, pre-linked
	mkJcc                   // conditional forward jump, pre-linked

	// Hot-shape codes: the dispatch loop inlines these to avoid the
	// indirect handler call. Every hot slot still carries its handler, so
	// the bounded fallback loop needs no second copy of the bodies. "W"
	// codes are wide-destination only (4/8 bytes: pre-masked results store
	// directly); CMP/TEST read-only codes apply at every width.
	mkMovRRW
	mkMovRIW
	mkMovLoadW
	mkMovStoreR
	mkAddRRW
	mkAddRIW
	mkSubRRW
	mkSubRIW
	mkAndRRW
	mkAndRIW
	mkOrRRW
	mkOrRIW
	mkXorRRW
	mkXorRIW
	mkZeroW // xor r,r / sub r,r dependency-breaking zero, wide
	mkCmpRR
	mkCmpRI
	mkTestRR
	mkTestRI
	mkLeaW
	mkCmovRRW
	mkIncW
	mkDecW
	mkNegW
	mkNotW

	// SSE hot-shape codes: the register-to-register packed-arithmetic,
	// logical, shuffle and move forms the saxpy-class vector kernels are
	// built from. The dispatch loop calls their handlers statically
	// (skipping the indirect call); memory-source forms stay on the
	// indirect handler path.
	mkMovdRX // GPR→XMM movd/movq (the broadcast idiom's first half)
	mkMovXX  // XMM→XMM movaps/movups copy
	mkMovupsLoad
	mkMovupsStore
	mkShufps
	mkPshufd
	mkPAddW
	mkPSubW
	mkPMullW
	mkPAddD
	mkPSubD
	mkPMullD
	mkPAddQ
	mkPAnd
	mkPOr
	mkPXor
	mkPXorZero

	// Narrow scalar moves (merge-write destinations) and SETcc, common in
	// the proposal mix, inlined to skip the indirect handler call.
	mkMovRRN
	mkMovRIN
	mkSetcc

	// Narrow (1/2-byte) ALU register forms: same bodies as their handlers
	// (merge-write destination, nf-guarded flag store), inlined because
	// the proposal distribution draws widths uniformly — half of all ALU
	// proposals are narrow.
	mkMovsxRR
	mkAddRRN
	mkAddRIN
	mkSubRRN
	mkSubRIN
	mkAndRRN
	mkAndRIN
	mkOrRRN
	mkOrRIN
	mkXorRRN
	mkXorRIN
	mkZeroN
	mkIncN
	mkDecN
	mkNegN

	// Immediate-count shift codes (wide destination, nonzero masked count;
	// zero counts and CL counts stay on the handler path).
	mkShlIW
	mkShrIW
	mkSarIW

	// Flag-suppressed ("NF") variants of the flag-writing codes above,
	// selected per slot by the liveness pass (liveness.go) when none of the
	// flags the instruction writes is live-out: the inline bodies perform
	// the same register reads (same undef accounting) and the same
	// destination write, but skip the flag computation and the
	// Flags/FlagsDef stores. Each such slot's u.run remains the full
	// handler, which the bounded loop — where exhaustion makes every slot
	// an exit — dispatches through (with the nf bit cleared) instead.
	mkAddRRWNF
	mkAddRIWNF
	mkSubRRWNF
	mkSubRIWNF
	mkAndRRWNF
	mkAndRIWNF
	mkOrRRWNF
	mkOrRIWNF
	mkXorRRWNF
	mkXorRIWNF
	mkZeroWNF
	mkCmpRRNF
	mkCmpRINF
	mkTestRRNF
	mkTestRINF
	mkIncWNF
	mkDecWNF
	mkNegWNF
	mkShlIWNF
	mkShrIWNF
	mkSarIWNF

	// Reduced szp-only variants for partially-live arithmetic slots (only
	// SF/ZF/PF read downstream): the carry/overflow arithmetic of
	// addBits/subBits is skipped, the szp word is stored under the full
	// write mask (the CF/OF bits it clears are dead by construction).
	mkAddRRWZ
	mkAddRIWZ
	mkSubRRWZ
	mkSubRIWZ
	mkCmpRRZ
	mkCmpRIZ

	// Write-suppressed ("dead-register") codes, selected by the register-
	// liveness pass (liveness.go) when every GPR/XMM a slot writes is
	// dead-out and its flag writes (if any) are dead too. Rather than one
	// variant per base code, the dead codes collapse to the handful of
	// read shapes that matter for error accounting: each performs exactly
	// the reads of its base shape — same order, same undef/sigsegv
	// counting, including the merge read of a narrow (1/2-byte)
	// destination — and skips the register write and the flag work
	// entirely. The mapping is many-to-one (deadKind), so these codes are
	// fixed points of baseKindOf/liveKind and variant re-selection always
	// starts from the recorded base kind, never from the current code.
	// u.run stays the full handler for the bounded loop.
	mkDeadNone  // no reads at all (mov r,imm / zero idioms / pxor x,x)
	mkDeadR     // reads src (mov r,r / movd r→x / wide movsx)
	mkDeadRD    // reads dst (wide imm ALU, inc/dec/neg/not, imm shifts)
	mkDeadRR    // reads dst then src (wide reg-reg ALU)
	mkDeadEA    // evaluates an address (lea)
	mkDeadLoad  // evaluates an address and loads (mov r,mem — can fault)
	mkDeadCmov  // reads condition flags, then src, then dst
	mkDeadSetcc // reads condition flags, merge-undef dst
	mkDeadN     // merge-undef dst only (narrow mov imm / narrow zero)
	mkDeadRN    // reads src, merge-undef dst (narrow mov r,r / narrow movsx)
	mkDeadRDN   // reads dst, merge-undef dst (narrow imm ALU, inc/dec/neg)
	mkDeadRRN   // reads dst then src, merge-undef dst (narrow reg-reg ALU)
	mkDeadX     // reads src xmm (movaps/movups x,x / pshufd)
	mkDeadXX    // reads src then dst xmm (shufps, packed ALU)
	mkDeadXLoad // reads an xmm-or-memory source (movups load — can fault)

	mkNumKinds // sentinel: the variant-map invariant test sweeps [0, mkNumKinds)
)

// kindW tags a lowered slot with a hot-dispatch code when the destination
// is wide enough for the inline body's direct register store.
func (u *microOp) kindW(k microKind) {
	if u.w >= 4 {
		u.kind = k
	}
}

// kindWN tags a lowered slot with the wide code or its narrow
// (merge-write) companion, by destination width.
func (u *microOp) kindWN(wide, narrow microKind) {
	if u.w >= 4 {
		u.kind = wide
	} else {
		u.kind = narrow
	}
}

// handlerFn executes one pre-decoded instruction.
type handlerFn func(m *Machine, u *microOp)

// microOp is one compiled instruction slot. Field meaning depends on the
// handler; in points at the source instruction slot inside the compiled
// program (the generic fallback interprets it and memory handlers take
// their address operand from it — program slots are mutated in place and
// never reallocated, so the pointer stays valid across patches).
type microOp struct {
	run    handlerFn
	in     *x64.Inst
	kind   microKind
	ctl    bool // LABEL/JMP/Jcc/RET: patching this slot forces a relink
	w      uint8
	w2     uint8 // second width (movsx/movzx source)
	cc     x64.Cond
	dst    x64.Reg
	src    x64.Reg
	nf     bool  // liveness: every flag this slot writes is dead (liveness.go)
	nr     bool  // liveness: every register this slot writes is dead (liveness.go)
	target int32 // jump destination (slot index)
	next   int32 // first live slot after this one: the fall-through pc
	mask   uint64
	sbit   uint64
	imm    uint64
	// Static latency of this slot (Equation 13 term). Latencies are small
	// integers, so float32 is exact; the narrower field is what keeps
	// microOp inside one cache line after the nr bit.
	lat float32
}

// slotFlags is the flag-liveness state of one slot (liveness.go): the
// instruction's flag reads (gen), unconditional redefinitions (kill) and
// possible writes, plus the analysis result (liveOut) its dispatch-code
// variant is selected from. Kept out of microOp deliberately: the run loop
// never reads liveness state, and microOp fills exactly one cache line —
// benchmarked, growing it past 64 bytes costs more than the pass saves.
type slotFlags struct {
	gen     x64.FlagSet
	kill    x64.FlagSet
	write   x64.FlagSet
	liveOut x64.FlagSet
}

// setWidth bakes the destination width, its mask and its sign bit into u.
func (u *microOp) setWidth(w uint8) {
	u.w = w
	u.mask = widthMask(w)
	u.sbit = signBit(w)
}

// Compiled is the decode-once form of a program. It references the program
// it was compiled from; Patch re-lowers single slots after in-place
// mutation. A Compiled is not safe for concurrent use, matching the
// single-owner discipline of Machine.
type Compiled struct {
	prog *x64.Program
	ops  []microOp

	// hsum caches the program's static latency sum H (Equation 13),
	// maintained incrementally by Patch. Latencies are integral, so the
	// incremental float updates stay exact.
	hsum float64

	// flags holds each slot's liveness summary and live-out set, liveIn
	// each slot's live-in set, and minJSrc[t] the lowest-indexed jump
	// targeting slot t (-1 when none) — the early-stop barrier of the
	// incremental liveness recomputation. All maintained by link/Patch
	// (liveness.go).
	flags   []slotFlags
	liveIn  []x64.FlagSet
	minJSrc []int32

	// regs holds each slot's register-liveness summary and analysis
	// result (liveness.go); exitRegs is the packed GPR+XMM set observable
	// at every exit (all-ones for Compile, the kernel's live-out masks
	// for CompileLive). nrCount/wrCount maintain the suppressed and
	// register-writing slot counts incrementally, so the per-proposal
	// coverage counters are O(1) reads.
	regs     []slotRegs
	exitRegs uint32
	nrCount  int
	wrCount  int
}

// StaticLatency returns the cached Equation 13 sum of the compiled
// program, equal to perf.H(c.Program()).
func (c *Compiled) StaticLatency() float64 { return c.hsum }

// Compile lowers p into its decode-once form. The returned Compiled
// references p: callers that mutate p must Patch (or Recompile) before the
// next RunCompiled. Every register is treated as observable at exit, so
// the compiled form agrees with the interpreter on the full final machine
// state (what the differential tests compare).
func Compile(p *x64.Program) *Compiled {
	return CompileLive(p, allRegsLive, allRegsLive)
}

// allRegsLive marks all 16 GPRs (or XMMs) live at exit.
const allRegsLive = 0xffff

// CompileLive is Compile with the exit observation narrowed to the given
// GPR and XMM live-out masks (bit r = register r live, whole-register
// granularity). The register-liveness pass then also suppresses writes
// that only an exit would have observed — exactly the dead candidate
// writes the §4.2 cost function cannot see. Final values of non-live
// registers may differ from a full run (their definedness too); every
// other observable — live-out state, memory, flags at reads, the
// undef/sigsegv/sigfpe counters, step counts — is preserved. The search
// engine compiles candidates through this entry point with the kernel's
// live-out set; anything that compares full final state uses Compile.
func CompileLive(p *x64.Program, liveGPR, liveXMM uint16) *Compiled {
	c := &Compiled{
		prog:     p,
		ops:      make([]microOp, len(p.Insts)),
		flags:    make([]slotFlags, len(p.Insts)),
		liveIn:   make([]x64.FlagSet, len(p.Insts)),
		minJSrc:  make([]int32, len(p.Insts)),
		regs:     make([]slotRegs, len(p.Insts)),
		exitRegs: packRegs(liveGPR, liveXMM),
	}
	for i := range p.Insts {
		c.lowerSlot(i)
	}
	c.link()
	return c
}

// Program returns the program this compiled form mirrors.
func (c *Compiled) Program() *x64.Program { return c.prog }

// Recompile re-lowers every slot, for callers that rewrote the program
// wholesale (chain restarts).
func (c *Compiled) Recompile() {
	if len(c.ops) != len(c.prog.Insts) {
		c.ops = make([]microOp, len(c.prog.Insts))
		c.flags = make([]slotFlags, len(c.prog.Insts))
		c.liveIn = make([]x64.FlagSet, len(c.prog.Insts))
		c.minJSrc = make([]int32, len(c.prog.Insts))
		c.regs = make([]slotRegs, len(c.prog.Insts))
		c.hsum = 0
		c.nrCount = 0
		c.wrCount = 0
	}
	for i := range c.prog.Insts {
		c.lowerSlot(i)
	}
	c.link()
}

// Patch re-lowers slot i from the (already mutated) program and repairs the
// skip chain around it. Edits that add or remove control structure trigger
// a full relink; proposal moves never do, so the common patch is O(length
// of the adjacent dead-slot run).
func (c *Compiled) Patch(i int) {
	wasCtl := c.ops[i].ctl
	c.lowerSlot(i)
	c.repairSlot(i, wasCtl)
}

// SavedSlot captures one slot's compiled state (micro-op and liveness
// summary), so an undone mutation can restore the slot without re-lowering
// it. The MCMC reject path — the majority of all proposals — pairs
// SaveSlot before Patch with RestoreSlot after, skipping the decode,
// flag-summary and latency work of a second lowerSlot.
type SavedSlot struct {
	op microOp
	fl slotFlags
	rg slotRegs
}

// SaveSlot snapshots slot i. Capture it before Patch re-lowers the slot.
func (c *Compiled) SaveSlot(i int) SavedSlot {
	return SavedSlot{op: c.ops[i], fl: c.flags[i], rg: c.regs[i]}
}

// RestoreSlot reinstates a snapshot of slot i after the program slot
// itself has been restored, repairing the skip chain and liveness exactly
// as Patch would. The snapshot must come from this Compiled and the
// program instruction must equal the one the snapshot was taken over.
func (c *Compiled) RestoreSlot(i int, s SavedSlot) {
	wasCtl := c.ops[i].ctl
	c.hsum += float64(s.op.lat) - float64(c.ops[i].lat)
	if s.op.nr != c.ops[i].nr {
		if s.op.nr {
			c.nrCount++
		} else {
			c.nrCount--
		}
	}
	if s.rg.writes() != c.regs[i].writes() {
		if s.rg.writes() {
			c.wrCount++
		} else {
			c.wrCount--
		}
	}
	c.ops[i] = s.op
	c.flags[i] = s.fl
	// Keep the current register live-in/live-out as patchLiveness's
	// baseline (see lowerSlot): the undone patch may have re-selected
	// upstream slots, and the restore walk only reaches them if the
	// baseline still reflects that propagation.
	cur := c.regs[i]
	c.regs[i] = s.rg
	c.regs[i].in, c.regs[i].liveOut = cur.in, cur.liveOut
	c.repairSlot(i, wasCtl)
}

// repairSlot is the shared tail of Patch and RestoreSlot: relink fully
// when control structure was (or becomes) involved, otherwise repair the
// skip chain around slot i and recompute liveness over the affected
// backward slice.
func (c *Compiled) repairSlot(i int, wasCtl bool) {
	u := &c.ops[i]
	if wasCtl || u.ctl {
		c.link()
		return
	}
	n := len(c.ops)
	// Recompute this slot's fall-through from its right neighbour, then
	// retarget every predecessor whose fall-through ran through it: the
	// dead-slot run immediately to the left, plus the first live slot
	// before that run.
	switch {
	case i+1 >= n:
		u.next = int32(n)
	case c.ops[i+1].kind != mkSkip:
		u.next = int32(i + 1)
	default:
		u.next = c.ops[i+1].next
	}
	t := int32(i)
	if u.kind == mkSkip {
		t = u.next
	}
	for j := i - 1; j >= 0; j-- {
		c.ops[j].next = t
		if c.ops[j].kind != mkSkip {
			break
		}
	}
	// The slot's new flag summary can flip liveness for the backward
	// slice ending at i; recompute it and re-select dispatch codes where
	// live-out changed (the slot itself always re-selects).
	c.patchLiveness(i)
}

// link computes skip-chain targets (right to left) and resolves jump
// targets with the same forward-scan semantics as the interpreter: the slot
// after the first matching label, or the program end when the label is
// missing (safe fall-off for unvalidated candidates).
func (c *Compiled) link() {
	n := len(c.ops)
	next := int32(n)
	for i := n - 1; i >= 0; i-- {
		u := &c.ops[i]
		u.next = next
		if u.kind != mkSkip {
			next = int32(i)
		}
	}
	for i := range c.ops {
		u := &c.ops[i]
		if u.kind != mkJmp && u.kind != mkJcc {
			continue
		}
		label := u.in.Opd[0].Label
		u.target = int32(n)
		for j := i + 1; j < n; j++ {
			if c.prog.Insts[j].Op == x64.LABEL && c.prog.Insts[j].Opd[0].Label == label {
				u.target = int32(j + 1)
				break
			}
		}
	}
	// Record, per slot, the lowest jump source targeting it (jumps are
	// forward-only, so sources always sit below their targets), then run
	// the full liveness pass and variant selection over the relinked
	// program.
	for i := range c.minJSrc {
		c.minJSrc[i] = -1
	}
	for i := range c.ops {
		u := &c.ops[i]
		if u.kind != mkJmp && u.kind != mkJcc {
			continue
		}
		if t := int(u.target); t < n && c.minJSrc[t] < 0 {
			c.minJSrc[t] = int32(i)
		}
	}
	c.computeLiveness()
}

// lowerSlot decodes prog.Insts[i] into ops[i]. Skip-chain and jump targets
// are left to link/Patch.
func (c *Compiled) lowerSlot(i int) {
	in := &c.prog.Insts[i]
	u := &c.ops[i]
	c.hsum -= float64(u.lat) // a stale slot's latency leaves the sum (zero when fresh)
	// Retire the stale slot's counter contributions before overwriting.
	if u.nr {
		c.nrCount--
	}
	if c.regs[i].writes() {
		c.wrCount--
	}
	*u = microOp{in: in}
	c.flags[i] = slotFlags{}
	// The register live-in/live-out results survive the re-lowering: like
	// the flag pass's separate liveIn array, they are patchLiveness's
	// baseline for deciding how far a change propagates, and must keep
	// describing the state the upstream slots were last selected against.
	prevRg := c.regs[i]
	c.regs[i] = slotRegs{in: prevRg.in, liveOut: prevRg.liveOut}
	u.lat = float32(perf.LatencyOf(in))
	c.hsum += float64(u.lat)
	switch in.Op {
	case x64.UNUSED:
		u.kind = mkSkip
		c.regs[i].base = mkSkip
		return
	case x64.LABEL:
		u.kind = mkSkip
		u.ctl = true
		c.regs[i].base = mkSkip
		return
	case x64.RET:
		u.kind = mkRet
		u.ctl = true
		c.flags[i].gen = x64.AllFlags // an exit observes every flag
		// An exit observes the live-out registers (all of them under
		// plain Compile).
		c.regs[i].base = mkRet
		c.regs[i].gen = c.exitRegs
		return
	case x64.JMP:
		u.kind = mkJmp
		u.ctl = true
		c.regs[i].base = mkJmp
		return
	case x64.Jcc:
		u.kind = mkJcc
		u.ctl = true
		u.cc = in.CC
		c.flags[i].gen = x64.FlagsReadByCond(in.CC)
		c.regs[i].base = mkJcc
		return
	}
	u.kind = mkExec
	u.run = nil // sentinel: lowerExec sets it iff a specialised handler applies
	f := &c.flags[i]
	f.gen, f.kill, f.write = flagSummary(in)
	lowerExec(u, in)
	rg := &c.regs[i]
	*rg = regSummary(in)
	rg.in, rg.liveOut = prevRg.in, prevRg.liveOut
	rg.base = u.kind
	// Write suppression applies only to slots lowered onto a specialised
	// handler (the dead codes and nr guards replicate exactly those
	// bodies' reads; hGeneric runs the interpreter and cannot skip its
	// stores) that write at least one register and no memory, and never
	// to the stack ops (push writes memory anyway; pop's RSP/load chain
	// isn't worth a suppressed shape).
	if u.run == nil {
		u.run = hGeneric
	} else {
		rg.eligible = rg.writes() && !rg.memWrite && in.Op != x64.POP
	}
	if rg.writes() {
		c.wrCount++
	}
}

// lowerExec picks a specialised handler for the hot opcode/operand shapes,
// leaving u.run as the generic fallback when no specialisation applies.
func lowerExec(u *microOp, in *x64.Inst) {
	switch in.Op {
	case x64.MOV, x64.MOVABS, x64.MOVZX:
		lowerMov(u, in)

	case x64.MOVSX:
		s, d := in.Opd[0], in.Opd[1]
		if s.Kind == x64.KindReg && d.Kind == x64.KindReg {
			u.dst, u.src = d.Reg, s.Reg
			u.setWidth(d.Width)
			u.w2 = s.Width
			u.run = hMovsxRR
			u.kind = mkMovsxRR
		}

	case x64.ADD, x64.SUB, x64.AND, x64.OR, x64.XOR, x64.ADC, x64.SBB:
		lowerALU(u, in)

	case x64.CMP:
		d, s := in.Opd[1], in.Opd[0]
		if d.Kind != x64.KindReg {
			return
		}
		u.dst = d.Reg
		u.setWidth(d.Width)
		switch s.Kind {
		case x64.KindReg:
			if s.Width == d.Width {
				u.src = s.Reg
				u.run = hCmpRR
				u.kind = mkCmpRR
			}
		case x64.KindImm:
			u.imm = uint64(s.Imm) & widthMask(s.Width)
			u.run = hCmpRI
			u.kind = mkCmpRI
		case x64.KindMem:
			if s.Width == d.Width {
				u.run = hCmpMR
			}
		}

	case x64.TEST:
		d, s := in.Opd[1], in.Opd[0]
		if d.Kind != x64.KindReg {
			return
		}
		u.dst = d.Reg
		u.setWidth(d.Width)
		switch s.Kind {
		case x64.KindReg:
			if s.Width == d.Width {
				u.src = s.Reg
				u.run = hTestRR
				u.kind = mkTestRR
			}
		case x64.KindImm:
			u.imm = uint64(s.Imm) & widthMask(s.Width)
			u.run = hTestRI
			u.kind = mkTestRI
		}

	case x64.LEA:
		d := in.Opd[1]
		if d.Kind == x64.KindReg {
			u.dst = d.Reg
			u.setWidth(d.Width)
			u.run = hLea
			u.kindW(mkLeaW)
		}

	case x64.INC, x64.DEC:
		d := in.Opd[0]
		if d.Kind == x64.KindReg {
			u.dst = d.Reg
			u.setWidth(d.Width)
			if in.Op == x64.INC {
				u.run = hIncR
				u.kindWN(mkIncW, mkIncN)
			} else {
				u.run = hDecR
				u.kindWN(mkDecW, mkDecN)
			}
		}

	case x64.NEG, x64.NOT:
		d := in.Opd[0]
		if d.Kind == x64.KindReg {
			u.dst = d.Reg
			u.setWidth(d.Width)
			if in.Op == x64.NEG {
				u.run = hNegR
				u.kindWN(mkNegW, mkNegN)
			} else {
				u.run = hNotR
				u.kindW(mkNotW)
			}
		}

	case x64.IMUL:
		d, s := in.Opd[1], in.Opd[0]
		if d.Kind != x64.KindReg {
			return
		}
		u.dst = d.Reg
		u.setWidth(d.Width)
		switch s.Kind {
		case x64.KindReg:
			if s.Width == d.Width {
				u.src = s.Reg
				u.run = hImulRR
			}
		case x64.KindMem:
			if s.Width == d.Width {
				u.run = hImulMR
			}
		}

	case x64.IMUL3:
		d, s, im := in.Opd[2], in.Opd[1], in.Opd[0]
		if d.Kind == x64.KindReg && s.Kind == x64.KindReg && s.Width == d.Width {
			u.dst, u.src = d.Reg, s.Reg
			u.setWidth(d.Width)
			u.imm = uint64(im.Imm) & widthMask(d.Width)
			u.run = hImul3RR
		}

	case x64.MUL, x64.IMUL1:
		s := in.Opd[0]
		if s.Kind == x64.KindReg {
			u.src = s.Reg
			u.setWidth(s.Width)
			if in.Op == x64.MUL {
				u.run = hMul1R
			} else {
				u.run = hImul1R
			}
		}

	case x64.DIV, x64.IDIV:
		lowerDiv(u, in)

	case x64.SHL, x64.SHR, x64.SAR, x64.ROL, x64.ROR:
		lowerShift(u, in)

	case x64.SHLD, x64.SHRD:
		cnt, s, d := in.Opd[0], in.Opd[1], in.Opd[2]
		if d.Kind == x64.KindReg && s.Kind == x64.KindReg &&
			s.Width == d.Width && cnt.Kind == x64.KindImm {
			u.dst, u.src = d.Reg, s.Reg
			u.setWidth(d.Width)
			countMask := uint64(31)
			if d.Width == 8 {
				countMask = 63
			}
			u.imm = uint64(cnt.Imm) & countMask
			if in.Op == x64.SHLD {
				u.run = hShldI
			} else {
				u.run = hShrdI
			}
		}

	case x64.XCHG:
		a, b := in.Opd[0], in.Opd[1]
		if a.Kind == x64.KindReg && b.Kind == x64.KindReg && a.Width == b.Width {
			u.src, u.dst = a.Reg, b.Reg
			u.setWidth(a.Width)
			u.run = hXchgRR
		}

	case x64.PUSH:
		s := in.Opd[0]
		switch s.Kind {
		case x64.KindReg:
			u.src = s.Reg
			u.run = hPushR
		case x64.KindImm:
			u.imm = uint64(s.Imm) & widthMask(s.Width)
			u.run = hPushI
		}

	case x64.POP:
		d := in.Opd[0]
		if d.Kind == x64.KindReg {
			u.dst = d.Reg
			u.run = hPopR
		}

	case x64.POPCNT:
		d, s := in.Opd[1], in.Opd[0]
		if d.Kind == x64.KindReg && s.Kind == x64.KindReg && s.Width == d.Width {
			u.dst, u.src = d.Reg, s.Reg
			u.setWidth(d.Width)
			u.run = hPopcntRR
		}

	case x64.BSF, x64.BSR:
		d, s := in.Opd[1], in.Opd[0]
		if d.Kind == x64.KindReg && s.Kind == x64.KindReg && s.Width == d.Width {
			u.dst, u.src = d.Reg, s.Reg
			u.setWidth(d.Width)
			if in.Op == x64.BSF {
				u.run = hBsfRR
			} else {
				u.run = hBsrRR
			}
		}

	case x64.BSWAP:
		d := in.Opd[0]
		if d.Kind == x64.KindReg {
			u.dst = d.Reg
			u.setWidth(d.Width)
			u.run = hBswapR
		}

	case x64.BT:
		d, s := in.Opd[1], in.Opd[0]
		if d.Kind != x64.KindReg {
			return
		}
		u.dst = d.Reg
		u.setWidth(d.Width)
		switch s.Kind {
		case x64.KindReg:
			if s.Width == d.Width {
				u.src = s.Reg
				u.run = hBtRR
			}
		case x64.KindImm:
			u.imm = uint64(s.Imm) & widthMask(s.Width)
			u.run = hBtRI
		}

	case x64.CMOVcc:
		d, s := in.Opd[1], in.Opd[0]
		if d.Kind == x64.KindReg && s.Kind == x64.KindReg && s.Width == d.Width {
			u.dst, u.src = d.Reg, s.Reg
			u.setWidth(d.Width)
			u.cc = in.CC
			u.run = hCmovRR
			u.kindW(mkCmovRRW)
		}

	case x64.SETcc:
		d := in.Opd[0]
		if d.Kind == x64.KindReg {
			u.dst = d.Reg
			u.cc = in.CC
			u.run = hSetccR
			u.kind = mkSetcc
		}

	case x64.MOVD, x64.MOVQX, x64.MOVUPS, x64.MOVAPS,
		x64.SHUFPS, x64.PSHUFD,
		x64.PADDW, x64.PSUBW, x64.PMULLW,
		x64.PADDD, x64.PSUBD, x64.PMULLD, x64.PADDQ,
		x64.PAND, x64.POR, x64.PXOR,
		x64.PSLLD, x64.PSRLD, x64.PSLLQ, x64.PSRLQ:
		lowerSSE(u, in)
	}
}

func lowerMov(u *microOp, in *x64.Inst) {
	s, d := in.Opd[0], in.Opd[1]
	switch {
	case d.Kind == x64.KindReg && s.Kind == x64.KindReg:
		u.dst, u.src = d.Reg, s.Reg
		u.mask = widthMask(s.Width)
		if d.Width >= 4 {
			u.run = hMovRRW
			u.kind = mkMovRRW
		} else {
			u.w = d.Width
			u.run = hMovRRN
			u.kind = mkMovRRN
		}
	case d.Kind == x64.KindReg && s.Kind == x64.KindImm:
		u.dst = d.Reg
		u.imm = uint64(s.Imm) & widthMask(s.Width)
		if d.Width >= 4 {
			u.run = hMovRIW
			u.kind = mkMovRIW
		} else {
			u.w = d.Width
			u.run = hMovRIN
			u.kind = mkMovRIN
		}
	case d.Kind == x64.KindReg && s.Kind == x64.KindMem:
		u.dst = d.Reg
		if d.Width >= 4 {
			u.w = s.Width
			u.run = hMovLoadW
			u.kind = mkMovLoadW
		} else {
			u.w = d.Width
			u.w2 = s.Width
			u.run = hMovLoadN
		}
	case d.Kind == x64.KindMem && s.Kind == x64.KindReg && s.Width == d.Width:
		u.src, u.w = s.Reg, s.Width
		u.run = hMovStoreR
		u.kind = mkMovStoreR
	case d.Kind == x64.KindMem && s.Kind == x64.KindImm:
		u.w = d.Width
		u.imm = uint64(s.Imm) & widthMask(s.Width)
		u.run = hMovStoreI
	}
}

func lowerALU(u *microOp, in *x64.Inst) {
	d, s := in.Opd[1], in.Opd[0]
	if d.Kind != x64.KindReg {
		return
	}
	u.dst = d.Reg
	u.setWidth(d.Width)
	same := s.Kind == x64.KindReg && s.Reg == d.Reg && s.Width == d.Width
	if same && in.Op == x64.XOR {
		u.run = hXorZero
		u.kindWN(mkZeroW, mkZeroN)
		return
	}
	if same && in.Op == x64.SUB {
		u.run = hSubZero
		u.kindWN(mkZeroW, mkZeroN)
		return
	}
	switch s.Kind {
	case x64.KindReg:
		if s.Width != d.Width {
			return
		}
		u.src = s.Reg
		switch in.Op {
		case x64.ADD:
			u.run = hAddRR
			u.kindWN(mkAddRRW, mkAddRRN)
		case x64.SUB:
			u.run = hSubRR
			u.kindWN(mkSubRRW, mkSubRRN)
		case x64.AND:
			u.run = hAndRR
			u.kindWN(mkAndRRW, mkAndRRN)
		case x64.OR:
			u.run = hOrRR
			u.kindWN(mkOrRRW, mkOrRRN)
		case x64.XOR:
			u.run = hXorRR
			u.kindWN(mkXorRRW, mkXorRRN)
		case x64.ADC:
			u.run = hAdcRR
		case x64.SBB:
			u.run = hSbbRR
		}
	case x64.KindImm:
		u.imm = uint64(s.Imm) & widthMask(s.Width)
		switch in.Op {
		case x64.ADD:
			u.run = hAddRI
			u.kindWN(mkAddRIW, mkAddRIN)
		case x64.SUB:
			u.run = hSubRI
			u.kindWN(mkSubRIW, mkSubRIN)
		case x64.AND:
			u.run = hAndRI
			u.kindWN(mkAndRIW, mkAndRIN)
		case x64.OR:
			u.run = hOrRI
			u.kindWN(mkOrRIW, mkOrRIN)
		case x64.XOR:
			u.run = hXorRI
			u.kindWN(mkXorRIW, mkXorRIN)
		case x64.ADC:
			u.run = hAdcRI
		case x64.SBB:
			u.run = hSbbRI
		}
	case x64.KindMem:
		if s.Width != d.Width {
			return
		}
		switch in.Op {
		case x64.ADD:
			u.run = hAddMR
		case x64.SUB:
			u.run = hSubMR
		case x64.AND:
			u.run = hAndMR
		case x64.OR:
			u.run = hOrMR
		case x64.XOR:
			u.run = hXorMR
		}
	}
}

func lowerShift(u *microOp, in *x64.Inst) {
	d, s := in.Opd[1], in.Opd[0]
	if d.Kind != x64.KindReg {
		return
	}
	u.dst = d.Reg
	u.setWidth(d.Width)
	countMask := uint64(31)
	if d.Width == 8 {
		countMask = 63
	}
	byCL := false
	switch s.Kind {
	case x64.KindImm:
		u.imm = uint64(s.Imm) & countMask
	case x64.KindReg:
		byCL = true
	default:
		return
	}
	type pair struct{ imm, cl handlerFn }
	var h pair
	switch in.Op {
	case x64.SHL:
		h = pair{hShlI, hShlCL}
	case x64.SHR:
		h = pair{hShrI, hShrCL}
	case x64.SAR:
		h = pair{hSarI, hSarCL}
	case x64.ROL:
		h = pair{hRolI, hRolCL}
	case x64.ROR:
		h = pair{hRorI, hRorCL}
	}
	if byCL {
		u.run = h.cl
		return
	}
	u.run = h.imm
	// Nonzero immediate counts get inline dispatch codes (and through
	// them the liveness pass's flag-suppressed variants); a masked count
	// of zero only rewrites the destination, which the handler handles.
	if u.imm != 0 {
		switch in.Op {
		case x64.SHL:
			u.kindW(mkShlIW)
		case x64.SHR:
			u.kindW(mkShrIW)
		case x64.SAR:
			u.kindW(mkSarIW)
		}
	}
}

// RunCompiled executes a compiled program from the current machine state.
// It is the execute phase of the two-phase pipeline and agrees with Run on
// every observable: Outcome counters, registers, flags, memory and
// definedness (the randomized differential tests pin this).
//
// The compiled pc advances strictly forward (skip chains, jump targets and
// fall-throughs all point past the current slot), so Steps never exceeds
// the slot count and the per-slot exhaustion check is provably dead
// whenever the program fits the step budget; the common path runs without
// it.
func (m *Machine) RunCompiled(c *Compiled) Outcome {
	if len(c.ops) > m.MaxSteps {
		return m.runCompiledBounded(c)
	}
	return m.runCompiledFrom(c, 0, 0)
}

// runCompiledFrom is the resumable core of RunCompiled: it executes from an
// arbitrary slot index with an inherited step count. RunCompiled enters at
// slot zero; Batch's lockstep loop enters here when a diverging lane peels
// off at a conditional jump and must finish on the scalar tail with the
// step count the lockstep prefix already accumulated.
func (m *Machine) runCompiledFrom(c *Compiled, pc uint, steps int) Outcome {
	var out Outcome
	ops := c.ops
	n := uint(len(ops))
	// pc is unsigned and the loop condition bounds it, so the slot access
	// compiles without a bounds check; next/target are non-negative by
	// construction (link clamps them to [0, n]).
	for pc < n {
		u := &ops[pc]
		// Read the fall-through early: handlers never mutate the compiled
		// form, and lifting the load off the loop-carried dependency lets
		// it overlap the slot body.
		nx := uint(u.next)
		switch u.kind {
		case mkSkip:
			pc = uint(u.next)
			continue
		case mkRet:
			pc = n
			continue
		case mkJmp:
			steps++
			pc = uint(u.target)
			continue
		case mkJcc:
			steps++
			if x64.EvalCond(u.cc, m.readFlagsFor(u.cc)) {
				pc = uint(u.target)
			} else {
				pc = uint(u.next)
			}
			continue
		case mkMovRRW:
			m.setReg(u.dst, m.readReg(u.src, u.mask))
		case mkMovRIW:
			m.setReg(u.dst, u.imm)
		case mkMovLoadW:
			m.setReg(u.dst, m.load(m.effectiveAddr(u.in.Opd[0]), int(u.w)))
		case mkMovStoreR:
			v := m.readReg(u.src, widthMask(u.w))
			m.store(m.effectiveAddr(u.in.Opd[1]), int(u.w), v)
		case mkAddRRW:
			a := m.readReg(u.dst, u.mask)
			b := m.readReg(u.src, u.mask)
			r := (a + b) & u.mask
			m.putFlags(x64.AllFlags, addBits(a, b, 0, r, u))
			m.setReg(u.dst, r)
		case mkAddRIW:
			a := m.readReg(u.dst, u.mask)
			r := (a + u.imm) & u.mask
			m.putFlags(x64.AllFlags, addBits(a, u.imm, 0, r, u))
			m.setReg(u.dst, r)
		case mkSubRRW:
			a := m.readReg(u.dst, u.mask)
			b := m.readReg(u.src, u.mask)
			r := (a - b) & u.mask
			m.putFlags(x64.AllFlags, subBits(a, b, 0, r, u))
			m.setReg(u.dst, r)
		case mkSubRIW:
			a := m.readReg(u.dst, u.mask)
			r := (a - u.imm) & u.mask
			m.putFlags(x64.AllFlags, subBits(a, u.imm, 0, r, u))
			m.setReg(u.dst, r)
		case mkAndRRW:
			a := m.readReg(u.dst, u.mask)
			b := m.readReg(u.src, u.mask)
			r := a & b
			m.putFlags(x64.AllFlags, szpBits(r, u.sbit))
			m.setReg(u.dst, r)
		case mkAndRIW:
			a := m.readReg(u.dst, u.mask)
			r := a & u.imm
			m.putFlags(x64.AllFlags, szpBits(r, u.sbit))
			m.setReg(u.dst, r)
		case mkOrRRW:
			a := m.readReg(u.dst, u.mask)
			b := m.readReg(u.src, u.mask)
			r := a | b
			m.putFlags(x64.AllFlags, szpBits(r, u.sbit))
			m.setReg(u.dst, r)
		case mkOrRIW:
			a := m.readReg(u.dst, u.mask)
			r := a | u.imm
			m.putFlags(x64.AllFlags, szpBits(r, u.sbit))
			m.setReg(u.dst, r)
		case mkXorRRW:
			a := m.readReg(u.dst, u.mask)
			b := m.readReg(u.src, u.mask)
			r := a ^ b
			m.putFlags(x64.AllFlags, szpBits(r, u.sbit))
			m.setReg(u.dst, r)
		case mkXorRIW:
			a := m.readReg(u.dst, u.mask)
			r := a ^ u.imm
			m.putFlags(x64.AllFlags, szpBits(r, u.sbit))
			m.setReg(u.dst, r)
		case mkZeroW:
			m.putFlags(x64.AllFlags, x64.ZF|x64.PF)
			m.setReg(u.dst, 0)
		case mkCmpRR:
			a := m.readReg(u.dst, u.mask)
			b := m.readReg(u.src, u.mask)
			m.putFlags(x64.AllFlags, subBits(a, b, 0, (a-b)&u.mask, u))
		case mkCmpRI:
			a := m.readReg(u.dst, u.mask)
			m.putFlags(x64.AllFlags, subBits(a, u.imm, 0, (a-u.imm)&u.mask, u))
		case mkTestRR:
			a := m.readReg(u.dst, u.mask)
			b := m.readReg(u.src, u.mask)
			m.putFlags(x64.AllFlags, szpBits(a&b, u.sbit))
		case mkTestRI:
			a := m.readReg(u.dst, u.mask)
			m.putFlags(x64.AllFlags, szpBits(a&u.imm, u.sbit))
		case mkLeaW:
			m.setReg(u.dst, m.effectiveAddr(u.in.Opd[0])&u.mask)
		case mkCmovRRW:
			taken := x64.EvalCond(u.cc, m.readFlagsFor(u.cc))
			src := m.readReg(u.src, u.mask)
			dst := m.readReg(u.dst, u.mask)
			v := dst
			if taken {
				v = src
			}
			m.setReg(u.dst, v)
		case mkIncW:
			a := m.readReg(u.dst, u.mask)
			r := (a + 1) & u.mask
			fl := szpBits(r, u.sbit)
			if r == u.sbit {
				fl |= x64.OF
			}
			m.putFlags(incDecFlags, fl)
			m.setReg(u.dst, r)
		case mkDecW:
			a := m.readReg(u.dst, u.mask)
			r := (a - 1) & u.mask
			fl := szpBits(r, u.sbit)
			if a == u.sbit {
				fl |= x64.OF
			}
			m.putFlags(incDecFlags, fl)
			m.setReg(u.dst, r)
		case mkNegW:
			a := m.readReg(u.dst, u.mask)
			r := (-a) & u.mask
			fl := szpBits(r, u.sbit)
			if a != 0 {
				fl |= x64.CF
			}
			if a == u.sbit {
				fl |= x64.OF
			}
			m.putFlags(x64.AllFlags, fl)
			m.setReg(u.dst, r)
		case mkNotW:
			a := m.readReg(u.dst, u.mask)
			m.setReg(u.dst, ^a&u.mask)
		case mkMovRRN:
			m.writeGPR(u.dst, u.w, m.readReg(u.src, u.mask))
		case mkMovRIN:
			m.writeGPR(u.dst, u.w, u.imm)
		case mkSetcc:
			v := uint64(0)
			if x64.EvalCond(u.cc, m.readFlagsFor(u.cc)) {
				v = 1
			}
			m.writeGPR(u.dst, 1, v)
		case mkMovsxRR:
			v := m.readReg(u.src, widthMask(u.w2))
			inv := 64 - 8*uint(u.w2)
			m.writeALU(u, uint64(int64(v<<inv)>>inv)&u.mask)
		case mkAddRRN:
			a := m.readReg(u.dst, u.mask)
			b := m.readReg(u.src, u.mask)
			r := (a + b) & u.mask
			if !u.nf {
				m.putFlags(x64.AllFlags, addBits(a, b, 0, r, u))
			}
			m.writeGPR(u.dst, u.w, r)
		case mkAddRIN:
			a := m.readReg(u.dst, u.mask)
			r := (a + u.imm) & u.mask
			if !u.nf {
				m.putFlags(x64.AllFlags, addBits(a, u.imm, 0, r, u))
			}
			m.writeGPR(u.dst, u.w, r)
		case mkSubRRN:
			a := m.readReg(u.dst, u.mask)
			b := m.readReg(u.src, u.mask)
			r := (a - b) & u.mask
			if !u.nf {
				m.putFlags(x64.AllFlags, subBits(a, b, 0, r, u))
			}
			m.writeGPR(u.dst, u.w, r)
		case mkSubRIN:
			a := m.readReg(u.dst, u.mask)
			r := (a - u.imm) & u.mask
			if !u.nf {
				m.putFlags(x64.AllFlags, subBits(a, u.imm, 0, r, u))
			}
			m.writeGPR(u.dst, u.w, r)
		case mkAndRRN:
			a := m.readReg(u.dst, u.mask)
			b := m.readReg(u.src, u.mask)
			r := a & b
			if !u.nf {
				m.putFlags(x64.AllFlags, szpBits(r, u.sbit))
			}
			m.writeGPR(u.dst, u.w, r)
		case mkAndRIN:
			a := m.readReg(u.dst, u.mask)
			r := a & u.imm
			if !u.nf {
				m.putFlags(x64.AllFlags, szpBits(r, u.sbit))
			}
			m.writeGPR(u.dst, u.w, r)
		case mkOrRRN:
			a := m.readReg(u.dst, u.mask)
			b := m.readReg(u.src, u.mask)
			r := a | b
			if !u.nf {
				m.putFlags(x64.AllFlags, szpBits(r, u.sbit))
			}
			m.writeGPR(u.dst, u.w, r)
		case mkOrRIN:
			a := m.readReg(u.dst, u.mask)
			r := a | u.imm
			if !u.nf {
				m.putFlags(x64.AllFlags, szpBits(r, u.sbit))
			}
			m.writeGPR(u.dst, u.w, r)
		case mkXorRRN:
			a := m.readReg(u.dst, u.mask)
			b := m.readReg(u.src, u.mask)
			r := a ^ b
			if !u.nf {
				m.putFlags(x64.AllFlags, szpBits(r, u.sbit))
			}
			m.writeGPR(u.dst, u.w, r)
		case mkXorRIN:
			a := m.readReg(u.dst, u.mask)
			r := a ^ u.imm
			if !u.nf {
				m.putFlags(x64.AllFlags, szpBits(r, u.sbit))
			}
			m.writeGPR(u.dst, u.w, r)
		case mkZeroN:
			if !u.nf {
				m.putFlags(x64.AllFlags, x64.ZF|x64.PF)
			}
			m.writeGPR(u.dst, u.w, 0)
		case mkIncN:
			a := m.readReg(u.dst, u.mask)
			r := (a + 1) & u.mask
			if !u.nf {
				fl := szpBits(r, u.sbit)
				if r == u.sbit {
					fl |= x64.OF
				}
				m.putFlags(incDecFlags, fl)
			}
			m.writeGPR(u.dst, u.w, r)
		case mkDecN:
			a := m.readReg(u.dst, u.mask)
			r := (a - 1) & u.mask
			if !u.nf {
				fl := szpBits(r, u.sbit)
				if a == u.sbit {
					fl |= x64.OF
				}
				m.putFlags(incDecFlags, fl)
			}
			m.writeGPR(u.dst, u.w, r)
		case mkNegN:
			a := m.readReg(u.dst, u.mask)
			r := (-a) & u.mask
			if !u.nf {
				fl := szpBits(r, u.sbit)
				if a != 0 {
					fl |= x64.CF
				}
				if a == u.sbit {
					fl |= x64.OF
				}
				m.putFlags(x64.AllFlags, fl)
			}
			m.writeGPR(u.dst, u.w, r)
		case mkShlIW:
			a := m.readReg(u.dst, u.mask)
			shlCore(m, u, a, u.imm)
		case mkShrIW:
			a := m.readReg(u.dst, u.mask)
			shrCore(m, u, a, u.imm)
		case mkSarIW:
			a := m.readReg(u.dst, u.mask)
			sarCore(m, u, a, u.imm)

		// Flag-suppressed variants: same reads (same undef accounting) and
		// the same destination write as their full twins, with the flag
		// computation and Flags/FlagsDef stores skipped — every flag these
		// slots would write is provably rewritten before any read or exit.
		case mkAddRRWNF:
			a := m.readReg(u.dst, u.mask)
			b := m.readReg(u.src, u.mask)
			m.setReg(u.dst, (a+b)&u.mask)
		case mkAddRIWNF:
			a := m.readReg(u.dst, u.mask)
			m.setReg(u.dst, (a+u.imm)&u.mask)
		case mkSubRRWNF:
			a := m.readReg(u.dst, u.mask)
			b := m.readReg(u.src, u.mask)
			m.setReg(u.dst, (a-b)&u.mask)
		case mkSubRIWNF:
			a := m.readReg(u.dst, u.mask)
			m.setReg(u.dst, (a-u.imm)&u.mask)
		case mkAndRRWNF:
			a := m.readReg(u.dst, u.mask)
			b := m.readReg(u.src, u.mask)
			m.setReg(u.dst, a&b)
		case mkAndRIWNF:
			a := m.readReg(u.dst, u.mask)
			m.setReg(u.dst, a&u.imm)
		case mkOrRRWNF:
			a := m.readReg(u.dst, u.mask)
			b := m.readReg(u.src, u.mask)
			m.setReg(u.dst, a|b)
		case mkOrRIWNF:
			a := m.readReg(u.dst, u.mask)
			m.setReg(u.dst, a|u.imm)
		case mkXorRRWNF:
			a := m.readReg(u.dst, u.mask)
			b := m.readReg(u.src, u.mask)
			m.setReg(u.dst, a^b)
		case mkXorRIWNF:
			a := m.readReg(u.dst, u.mask)
			m.setReg(u.dst, a^u.imm)
		case mkZeroWNF:
			m.setReg(u.dst, 0)
		case mkCmpRRNF:
			m.readReg(u.dst, u.mask)
			m.readReg(u.src, u.mask)
		case mkCmpRINF:
			m.readReg(u.dst, u.mask)
		case mkTestRRNF:
			m.readReg(u.dst, u.mask)
			m.readReg(u.src, u.mask)
		case mkTestRINF:
			m.readReg(u.dst, u.mask)
		case mkIncWNF:
			a := m.readReg(u.dst, u.mask)
			m.setReg(u.dst, (a+1)&u.mask)
		case mkDecWNF:
			a := m.readReg(u.dst, u.mask)
			m.setReg(u.dst, (a-1)&u.mask)
		case mkNegWNF:
			a := m.readReg(u.dst, u.mask)
			m.setReg(u.dst, (-a)&u.mask)
		case mkShlIWNF:
			a := m.readReg(u.dst, u.mask)
			m.setReg(u.dst, a<<u.imm&u.mask)
		case mkShrIWNF:
			a := m.readReg(u.dst, u.mask)
			m.setReg(u.dst, a>>u.imm)
		case mkSarIWNF:
			a := m.readReg(u.dst, u.mask)
			m.setReg(u.dst, uint64(sext(a, u.w)>>u.imm)&u.mask)

		// Reduced szp-only variants: the live flags are a subset of
		// SF/ZF/PF, so the carry/overflow arithmetic is skipped and the
		// szp word stored under the full mask (its zero CF/OF are dead).
		case mkAddRRWZ:
			a := m.readReg(u.dst, u.mask)
			b := m.readReg(u.src, u.mask)
			r := (a + b) & u.mask
			m.putFlags(x64.AllFlags, szpBits(r, u.sbit))
			m.setReg(u.dst, r)
		case mkAddRIWZ:
			a := m.readReg(u.dst, u.mask)
			r := (a + u.imm) & u.mask
			m.putFlags(x64.AllFlags, szpBits(r, u.sbit))
			m.setReg(u.dst, r)
		case mkSubRRWZ:
			a := m.readReg(u.dst, u.mask)
			b := m.readReg(u.src, u.mask)
			r := (a - b) & u.mask
			m.putFlags(x64.AllFlags, szpBits(r, u.sbit))
			m.setReg(u.dst, r)
		case mkSubRIWZ:
			a := m.readReg(u.dst, u.mask)
			r := (a - u.imm) & u.mask
			m.putFlags(x64.AllFlags, szpBits(r, u.sbit))
			m.setReg(u.dst, r)
		case mkCmpRRZ:
			a := m.readReg(u.dst, u.mask)
			b := m.readReg(u.src, u.mask)
			m.putFlags(x64.AllFlags, szpBits((a-b)&u.mask, u.sbit))
		case mkCmpRIZ:
			a := m.readReg(u.dst, u.mask)
			m.putFlags(x64.AllFlags, szpBits((a-u.imm)&u.mask, u.sbit))
		case mkMovdRX:
			m.writeXmm(u.dst, [2]uint64{m.readReg(u.src, u.mask), 0})
		case mkMovXX:
			m.writeXmm(u.dst, m.readXmmOp(u.src))
		case mkMovupsLoad:
			m.writeXmm(u.dst, m.readXmmOrMem(u.in.Opd[0]))
		case mkMovupsStore:
			m.writeXmmMem(u.in.Opd[1], m.readXmmOp(u.src))
		case mkShufps:
			hShufps(m, u)
		case mkPshufd:
			hPshufd(m, u)
		case mkPAddW:
			m.packedRR(u, x64.PADDW)
		case mkPSubW:
			m.packedRR(u, x64.PSUBW)
		case mkPMullW:
			m.packedRR(u, x64.PMULLW)
		case mkPAddD:
			m.packedRR(u, x64.PADDD)
		case mkPSubD:
			m.packedRR(u, x64.PSUBD)
		case mkPMullD:
			m.packedRR(u, x64.PMULLD)
		case mkPAddQ:
			m.packedRR(u, x64.PADDQ)
		case mkPAnd:
			m.packedRR(u, x64.PAND)
		case mkPOr:
			m.packedRR(u, x64.POR)
		case mkPXor:
			m.packedRR(u, x64.PXOR)
		case mkPXorZero:
			m.writeXmm(u.dst, [2]uint64{0, 0})

		// Write-suppressed variants: exactly the reads of the base shape
		// (same undef/sigsegv accounting, merge reads of narrow
		// destinations included), no register write, no flag work — every
		// register and flag these slots write is provably rewritten
		// before any read or exit.
		case mkDeadNone:
		case mkDeadR:
			m.readReg(u.src, u.mask)
		case mkDeadRD:
			m.readReg(u.dst, u.mask)
		case mkDeadRR:
			m.readReg(u.dst, u.mask)
			m.readReg(u.src, u.mask)
		case mkDeadEA:
			m.effectiveAddr(u.in.Opd[0])
		case mkDeadLoad:
			m.load(m.effectiveAddr(u.in.Opd[0]), int(u.w))
		case mkDeadCmov:
			m.readFlagsFor(u.cc)
			m.readReg(u.src, u.mask)
			m.readReg(u.dst, u.mask)
		case mkDeadSetcc:
			m.readFlagsFor(u.cc)
			m.undef += int(^m.RegDef >> u.dst & 1)
		case mkDeadN:
			m.undef += int(^m.RegDef >> u.dst & 1)
		case mkDeadRN:
			m.readReg(u.src, u.mask)
			m.undef += int(^m.RegDef >> u.dst & 1)
		case mkDeadRDN:
			m.readReg(u.dst, u.mask)
			m.undef += int(^m.RegDef >> u.dst & 1)
		case mkDeadRRN:
			m.readReg(u.dst, u.mask)
			m.readReg(u.src, u.mask)
			m.undef += int(^m.RegDef >> u.dst & 1)
		case mkDeadX:
			m.readXmmOp(u.src)
		case mkDeadXX:
			m.readXmmOp(u.src)
			m.readXmmOp(u.dst)
		case mkDeadXLoad:
			m.readXmmOrMem(u.in.Opd[0])
		default:
			u.run(m, u)
		}
		steps++
		pc = nx
	}
	out.Steps = steps
	out.SigSegv = m.sigsegv
	out.SigFpe = m.sigfpe
	out.Undef = m.undef
	return out
}

// runCompiledBounded is the exhaustion-checking variant for programs longer
// than the step budget, mirroring the interpreter's check placement. A run
// that can exhaust its budget can stop at any slot — every slot is a
// potential exit where the full flag and register state becomes
// observable — so the liveness passes' suppressed forms are unsound here.
// This cold path therefore dispatches every executable slot through a
// scratch copy of its micro-op with the nf and nr bits cleared: u.run is
// always the full handler (variant selection only ever swaps dispatch
// codes and sets nf/nr), so the copy restores exact all-live semantics
// for the price of a 64-byte struct copy per step.
func (m *Machine) runCompiledBounded(c *Compiled) Outcome {
	var out Outcome
	pc, n := 0, len(c.ops)
	for pc < n {
		if out.Steps >= m.MaxSteps {
			out.Exhaust = true
			break
		}
		u := &c.ops[pc]
		switch u.kind {
		case mkSkip:
			pc++
			continue
		case mkRet:
			pc = n
			continue
		case mkJmp:
			out.Steps++
			pc = int(u.target)
			continue
		case mkJcc:
			out.Steps++
			if x64.EvalCond(u.cc, m.readFlagsFor(u.cc)) {
				pc = int(u.target)
			} else {
				pc++
			}
			continue
		}
		tmp := *u
		tmp.nf = false
		tmp.nr = false
		tmp.run(m, &tmp)
		out.Steps++
		pc++
	}
	out.SigSegv = m.sigsegv
	out.SigFpe = m.sigfpe
	out.Undef = m.undef
	return out
}

// --- handlers ------------------------------------------------------------
//
// Every handler replicates the interpreter's semantics exactly, including
// the order and multiplicity of undef-read counting and the hardware merge
// rules for narrow register writes. "W" suffixes mean the destination is 4
// or 8 bytes wide (32-bit writes zero-extend, so a pre-masked value can be
// stored directly); "N" means 1 or 2 bytes (merge with the old value,
// counting an undef read of the destination as writeGPR does). Flag-writing
// handlers accumulate the update into one x64.FlagSet and store it with a
// single masked write (putFlags), which the interpreter's per-flag setFlag
// calls are the reference for.

func hGeneric(m *Machine, u *microOp) {
	m.generic++
	if !u.nf {
		m.exec(u.in)
		return
	}
	// The liveness pass proved every flag this slot writes dead, but the
	// interpreter switch underneath always writes. Restoring the flag
	// words afterwards suppresses exactly those dead writes: in-exec flag
	// *reads* (ADC, RCL, ...) see the pre-exec values untouched, and their
	// undef accounting happens inside exec before the restore.
	flags, def := m.Flags, m.FlagsDef
	m.exec(u.in)
	m.Flags, m.FlagsDef = flags, def
}

func (m *Machine) readReg(r x64.Reg, mask uint64) uint64 {
	// Branch-free undef accounting: whether a slot reads a defined
	// register is data- and candidate-dependent, so the branch form
	// mispredicts on the search workload (measured; same trick as flagIf).
	m.undef += int(^m.RegDef >> r & 1)
	return m.Regs[r] & mask
}

func (m *Machine) setReg(r x64.Reg, v uint64) {
	m.Regs[r] = v
	m.RegDef |= 1 << r
	m.regsWritten |= 1 << r
}

// putFlags overwrites the flags in fmask with fl and marks them defined.
func (m *Machine) putFlags(fmask, fl x64.FlagSet) {
	m.Flags = m.Flags&^fmask | fl
	m.FlagsDef |= fmask
}

// flagIf returns f when v is non-zero — branch-free, because SF/ZF/PF/CF
// outcomes are data-random on the search workload and would mispredict.
func flagIf(v uint64, f x64.FlagSet) x64.FlagSet {
	return f & -x64.FlagSet((v|-v)>>63)
}

// flagIfZero returns f when v is zero, branch-free.
func flagIfZero(v uint64, f x64.FlagSet) x64.FlagSet {
	return f & (x64.FlagSet((v|-v)>>63) - 1)
}

// szpBits computes SF, ZF and PF for a width-masked result whose sign bit
// is sbit (the fused equivalent of szpFlags).
func szpBits(r, sbit uint64) x64.FlagSet {
	fl := flagIf(r&sbit, x64.SF) | flagIfZero(r, x64.ZF)
	fl |= x64.PF & -x64.FlagSet(uint8(bits.OnesCount8(uint8(r))&1)^1)
	return fl
}

// addBits computes the full flag word for r = (a + b + carryIn) & mask at
// the width described by u (the fused equivalent of addFlags).
func addBits(a, b, carryIn, r uint64, u *microOp) x64.FlagSet {
	fl := szpBits(r, u.sbit)
	if u.w == 8 {
		t := a + b
		if t < a || t+carryIn < t {
			fl |= x64.CF
		}
	} else {
		fl |= flagIf((a+b+carryIn)>>(8*uint(u.w)), x64.CF)
	}
	return fl | flagIf((a^r)&(b^r)&u.sbit, x64.OF)
}

// subBits computes the full flag word for r = (a - b - borrowIn) & mask
// (the fused equivalent of subFlags).
func subBits(a, b, borrowIn, r uint64, u *microOp) x64.FlagSet {
	fl := szpBits(r, u.sbit)
	if a < b || a-b < borrowIn {
		fl |= x64.CF
	}
	return fl | flagIf((a^b)&(a^r)&u.sbit, x64.OF)
}

func hMovRRW(m *Machine, u *microOp) { m.setReg(u.dst, m.readReg(u.src, u.mask)) }

func hMovRRN(m *Machine, u *microOp) { m.writeGPR(u.dst, u.w, m.readReg(u.src, u.mask)) }

func hMovRIW(m *Machine, u *microOp) { m.setReg(u.dst, u.imm) }

func hMovRIN(m *Machine, u *microOp) { m.writeGPR(u.dst, u.w, u.imm) }

func hMovLoadW(m *Machine, u *microOp) {
	m.setReg(u.dst, m.load(m.effectiveAddr(u.in.Opd[0]), int(u.w)))
}

func hMovLoadN(m *Machine, u *microOp) {
	v := m.load(m.effectiveAddr(u.in.Opd[0]), int(u.w2))
	if u.nr {
		m.undef += int(^m.RegDef >> u.dst & 1)
		return
	}
	m.writeGPR(u.dst, u.w, v)
}

func hMovStoreR(m *Machine, u *microOp) {
	v := m.readReg(u.src, widthMask(u.w))
	m.store(m.effectiveAddr(u.in.Opd[1]), int(u.w), v)
}

func hMovStoreI(m *Machine, u *microOp) {
	m.store(m.effectiveAddr(u.in.Opd[1]), int(u.w), u.imm)
}

func hMovsxRR(m *Machine, u *microOp) {
	v := m.readReg(u.src, widthMask(u.w2))
	inv := 64 - 8*uint(u.w2)
	m.writeALU(u, uint64(int64(v<<inv)>>inv)&u.mask)
}

// writeALU stores a pre-masked result into the destination register with
// the hardware width rules. It is the single write chokepoint of every
// handler-dispatched ALU-shaped body, so the register-liveness nr bit is
// honoured here: a suppressed narrow write still counts the merge read of
// an undefined destination (writeGPR counts it before merging), then
// skips the store and the definedness update.
func (m *Machine) writeALU(u *microOp, r uint64) {
	if u.nr {
		if u.w < 4 {
			m.undef += int(^m.RegDef >> u.dst & 1)
		}
		return
	}
	if u.w >= 4 {
		m.setReg(u.dst, r)
	} else {
		m.writeGPR(u.dst, u.w, r)
	}
}

func hAddRR(m *Machine, u *microOp) {
	a := m.readReg(u.dst, u.mask)
	b := m.readReg(u.src, u.mask)
	r := (a + b) & u.mask
	if !u.nf {
		m.putFlags(x64.AllFlags, addBits(a, b, 0, r, u))
	}
	m.writeALU(u, r)
}

func hAddRI(m *Machine, u *microOp) {
	a := m.readReg(u.dst, u.mask)
	r := (a + u.imm) & u.mask
	if !u.nf {
		m.putFlags(x64.AllFlags, addBits(a, u.imm, 0, r, u))
	}
	m.writeALU(u, r)
}

func hAddMR(m *Machine, u *microOp) {
	a := m.readReg(u.dst, u.mask)
	b := m.load(m.effectiveAddr(u.in.Opd[0]), int(u.w))
	r := (a + b) & u.mask
	if !u.nf {
		m.putFlags(x64.AllFlags, addBits(a, b, 0, r, u))
	}
	m.writeALU(u, r)
}

func hSubRR(m *Machine, u *microOp) {
	a := m.readReg(u.dst, u.mask)
	b := m.readReg(u.src, u.mask)
	r := (a - b) & u.mask
	if !u.nf {
		m.putFlags(x64.AllFlags, subBits(a, b, 0, r, u))
	}
	m.writeALU(u, r)
}

func hSubRI(m *Machine, u *microOp) {
	a := m.readReg(u.dst, u.mask)
	r := (a - u.imm) & u.mask
	if !u.nf {
		m.putFlags(x64.AllFlags, subBits(a, u.imm, 0, r, u))
	}
	m.writeALU(u, r)
}

func hSubMR(m *Machine, u *microOp) {
	a := m.readReg(u.dst, u.mask)
	b := m.load(m.effectiveAddr(u.in.Opd[0]), int(u.w))
	r := (a - b) & u.mask
	if !u.nf {
		m.putFlags(x64.AllFlags, subBits(a, b, 0, r, u))
	}
	m.writeALU(u, r)
}

// carryIn reads CF for adc/sbb, counting an undef read when CF is
// undefined, as the interpreter does.
func (m *Machine) carryIn() uint64 {
	// CF is FlagSet bit zero, so both the undef count and the carry value
	// are single-bit extractions (branch-free, like readReg).
	m.undef += int(^m.FlagsDef & x64.CF)
	return uint64(m.Flags & x64.CF)
}

func hAdcRR(m *Machine, u *microOp) {
	a := m.readReg(u.dst, u.mask)
	b := m.readReg(u.src, u.mask)
	c := m.carryIn()
	r := (a + b + c) & u.mask
	if !u.nf {
		m.putFlags(x64.AllFlags, addBits(a, b, c, r, u))
	}
	m.writeALU(u, r)
}

func hAdcRI(m *Machine, u *microOp) {
	a := m.readReg(u.dst, u.mask)
	c := m.carryIn()
	r := (a + u.imm + c) & u.mask
	if !u.nf {
		m.putFlags(x64.AllFlags, addBits(a, u.imm, c, r, u))
	}
	m.writeALU(u, r)
}

func hSbbRR(m *Machine, u *microOp) {
	a := m.readReg(u.dst, u.mask)
	b := m.readReg(u.src, u.mask)
	c := m.carryIn()
	r := (a - b - c) & u.mask
	if !u.nf {
		m.putFlags(x64.AllFlags, subBits(a, b, c, r, u))
	}
	m.writeALU(u, r)
}

func hSbbRI(m *Machine, u *microOp) {
	a := m.readReg(u.dst, u.mask)
	c := m.carryIn()
	r := (a - u.imm - c) & u.mask
	if !u.nf {
		m.putFlags(x64.AllFlags, subBits(a, u.imm, c, r, u))
	}
	m.writeALU(u, r)
}

func logicBits(r uint64, u *microOp) x64.FlagSet { return szpBits(r, u.sbit) }

func hAndRR(m *Machine, u *microOp) {
	a := m.readReg(u.dst, u.mask)
	b := m.readReg(u.src, u.mask)
	r := a & b
	if !u.nf {
		m.putFlags(x64.AllFlags, logicBits(r, u))
	}
	m.writeALU(u, r)
}

func hAndRI(m *Machine, u *microOp) {
	a := m.readReg(u.dst, u.mask)
	r := a & u.imm
	if !u.nf {
		m.putFlags(x64.AllFlags, logicBits(r, u))
	}
	m.writeALU(u, r)
}

func hAndMR(m *Machine, u *microOp) {
	a := m.readReg(u.dst, u.mask)
	b := m.load(m.effectiveAddr(u.in.Opd[0]), int(u.w))
	r := a & b
	if !u.nf {
		m.putFlags(x64.AllFlags, logicBits(r, u))
	}
	m.writeALU(u, r)
}

func hOrRR(m *Machine, u *microOp) {
	a := m.readReg(u.dst, u.mask)
	b := m.readReg(u.src, u.mask)
	r := a | b
	if !u.nf {
		m.putFlags(x64.AllFlags, logicBits(r, u))
	}
	m.writeALU(u, r)
}

func hOrRI(m *Machine, u *microOp) {
	a := m.readReg(u.dst, u.mask)
	r := a | u.imm
	if !u.nf {
		m.putFlags(x64.AllFlags, logicBits(r, u))
	}
	m.writeALU(u, r)
}

func hOrMR(m *Machine, u *microOp) {
	a := m.readReg(u.dst, u.mask)
	b := m.load(m.effectiveAddr(u.in.Opd[0]), int(u.w))
	r := a | b
	if !u.nf {
		m.putFlags(x64.AllFlags, logicBits(r, u))
	}
	m.writeALU(u, r)
}

func hXorRR(m *Machine, u *microOp) {
	a := m.readReg(u.dst, u.mask)
	b := m.readReg(u.src, u.mask)
	r := a ^ b
	if !u.nf {
		m.putFlags(x64.AllFlags, logicBits(r, u))
	}
	m.writeALU(u, r)
}

func hXorRI(m *Machine, u *microOp) {
	a := m.readReg(u.dst, u.mask)
	r := a ^ u.imm
	if !u.nf {
		m.putFlags(x64.AllFlags, logicBits(r, u))
	}
	m.writeALU(u, r)
}

func hXorMR(m *Machine, u *microOp) {
	a := m.readReg(u.dst, u.mask)
	b := m.load(m.effectiveAddr(u.in.Opd[0]), int(u.w))
	r := a ^ b
	if !u.nf {
		m.putFlags(x64.AllFlags, logicBits(r, u))
	}
	m.writeALU(u, r)
}

// hXorZero and hSubZero are the dependency-breaking zero idioms: defined
// regardless of the register's contents, so no source read is counted.
func hXorZero(m *Machine, u *microOp) {
	if !u.nf {
		m.putFlags(x64.AllFlags, x64.ZF|x64.PF)
	}
	m.writeALU(u, 0)
}

func hSubZero(m *Machine, u *microOp) {
	if !u.nf {
		m.putFlags(x64.AllFlags, x64.ZF|x64.PF)
	}
	m.writeALU(u, 0)
}

func hCmpRR(m *Machine, u *microOp) {
	a := m.readReg(u.dst, u.mask)
	b := m.readReg(u.src, u.mask)
	if !u.nf {
		m.putFlags(x64.AllFlags, subBits(a, b, 0, (a-b)&u.mask, u))
	}
}

func hCmpRI(m *Machine, u *microOp) {
	a := m.readReg(u.dst, u.mask)
	if !u.nf {
		m.putFlags(x64.AllFlags, subBits(a, u.imm, 0, (a-u.imm)&u.mask, u))
	}
}

func hCmpMR(m *Machine, u *microOp) {
	a := m.readReg(u.dst, u.mask)
	b := m.load(m.effectiveAddr(u.in.Opd[0]), int(u.w))
	if !u.nf {
		m.putFlags(x64.AllFlags, subBits(a, b, 0, (a-b)&u.mask, u))
	}
}

func hTestRR(m *Machine, u *microOp) {
	a := m.readReg(u.dst, u.mask)
	b := m.readReg(u.src, u.mask)
	if !u.nf {
		m.putFlags(x64.AllFlags, logicBits(a&b, u))
	}
}

func hTestRI(m *Machine, u *microOp) {
	a := m.readReg(u.dst, u.mask)
	if !u.nf {
		m.putFlags(x64.AllFlags, logicBits(a&u.imm, u))
	}
}

func hLea(m *Machine, u *microOp) {
	a := m.effectiveAddr(u.in.Opd[0])
	m.writeALU(u, a&u.mask)
}

// incDecFlags is the PF|ZF|SF|OF-only update of inc/dec (CF untouched).
const incDecFlags = x64.PF | x64.ZF | x64.SF | x64.OF

func hIncR(m *Machine, u *microOp) {
	a := m.readReg(u.dst, u.mask)
	r := (a + 1) & u.mask
	if !u.nf {
		fl := szpBits(r, u.sbit)
		if r == u.sbit {
			fl |= x64.OF
		}
		m.putFlags(incDecFlags, fl)
	}
	m.writeALU(u, r)
}

func hDecR(m *Machine, u *microOp) {
	a := m.readReg(u.dst, u.mask)
	r := (a - 1) & u.mask
	if !u.nf {
		fl := szpBits(r, u.sbit)
		if a == u.sbit {
			fl |= x64.OF
		}
		m.putFlags(incDecFlags, fl)
	}
	m.writeALU(u, r)
}

func hNegR(m *Machine, u *microOp) {
	a := m.readReg(u.dst, u.mask)
	r := (-a) & u.mask
	if !u.nf {
		fl := szpBits(r, u.sbit)
		if a != 0 {
			fl |= x64.CF
		}
		if a == u.sbit {
			fl |= x64.OF
		}
		m.putFlags(x64.AllFlags, fl)
	}
	m.writeALU(u, r)
}

func hNotR(m *Machine, u *microOp) {
	a := m.readReg(u.dst, u.mask)
	m.writeALU(u, ^a&u.mask)
}

func hCmovRR(m *Machine, u *microOp) {
	taken := x64.EvalCond(u.cc, m.readFlagsFor(u.cc))
	src := m.readReg(u.src, u.mask)
	dst := m.readReg(u.dst, u.mask)
	v := dst
	if taken {
		v = src
	}
	// Hardware always writes the destination (32-bit cmov zero-extends
	// even when the move does not occur).
	m.writeALU(u, v)
}

func hSetccR(m *Machine, u *microOp) {
	v := uint64(0)
	if x64.EvalCond(u.cc, m.readFlagsFor(u.cc)) {
		v = 1
	}
	m.writeGPR(u.dst, 1, v)
}

// imulBits is the fused imulFlags: CF = OF = (full product does not fit),
// plus deterministic SF/ZF/PF from the truncated result.
func imulBits(hi, lo int64, r uint64, u *microOp) x64.FlagSet {
	var overflow bool
	if u.w == 8 {
		overflow = hi != lo>>63
	} else {
		inv := 64 - 8*uint(u.w)
		overflow = lo != int64(r<<inv)>>inv
	}
	fl := szpBits(r, u.sbit)
	if overflow {
		fl |= x64.CF | x64.OF
	}
	return fl
}

// sext sign-extends a width-w2 value (branch-free signExtend).
func sext(v uint64, w uint8) int64 {
	inv := 64 - 8*uint(w)
	return int64(v<<inv) >> inv
}

func hImulRR(m *Machine, u *microOp) {
	a := sext(m.readReg(u.dst, u.mask), u.w)
	b := sext(m.readReg(u.src, u.mask), u.w)
	hi, lo := mulSigned(a, b)
	r := uint64(lo) & u.mask
	if !u.nf {
		m.putFlags(x64.AllFlags, imulBits(hi, lo, r, u))
	}
	m.writeALU(u, r)
}

func hImulMR(m *Machine, u *microOp) {
	a := sext(m.readReg(u.dst, u.mask), u.w)
	b := sext(m.load(m.effectiveAddr(u.in.Opd[0]), int(u.w)), u.w)
	hi, lo := mulSigned(a, b)
	r := uint64(lo) & u.mask
	if !u.nf {
		m.putFlags(x64.AllFlags, imulBits(hi, lo, r, u))
	}
	m.writeALU(u, r)
}

func hImul3RR(m *Machine, u *microOp) {
	a := sext(m.readReg(u.src, u.mask), u.w)
	b := sext(u.imm, u.w)
	hi, lo := mulSigned(a, b)
	r := uint64(lo) & u.mask
	if !u.nf {
		m.putFlags(x64.AllFlags, imulBits(hi, lo, r, u))
	}
	m.writeALU(u, r)
}

// hMul1R and hImul1R are the widening one-operand multiplies with a
// register source: RDX:RAX = RAX * src (or EDX:EAX at width 4, where the
// destination writes zero-extend so the pre-masked halves store directly).
func hMul1R(m *Machine, u *microOp) {
	src := m.readReg(u.src, u.mask)
	a := m.readReg(x64.RAX, u.mask)
	var hiOut, loOut uint64
	var overflow bool
	if u.w == 8 {
		hi, lo := bits.Mul64(a, src)
		hiOut, loOut = hi, lo
		overflow = hi != 0
	} else {
		full := a * src
		loOut = full & u.mask
		hiOut = full >> (8 * uint(u.w)) & u.mask
		overflow = hiOut != 0
	}
	if !u.nr {
		m.setReg(x64.RAX, loOut)
		m.setReg(x64.RDX, hiOut)
	}
	if !u.nf {
		fl := szpBits(loOut, u.sbit)
		if overflow {
			fl |= x64.CF | x64.OF
		}
		m.putFlags(x64.AllFlags, fl)
	}
}

func hImul1R(m *Machine, u *microOp) {
	src := m.readReg(u.src, u.mask)
	a := m.readReg(x64.RAX, u.mask)
	sa, sb := sext(a, u.w), sext(src, u.w)
	var hiOut, loOut uint64
	var overflow bool
	if u.w == 8 {
		hi, lo := mulSigned(sa, sb)
		hiOut, loOut = uint64(hi), uint64(lo)
		overflow = hi != lo>>63
	} else {
		full := sa * sb
		loOut = uint64(full) & u.mask
		hiOut = uint64(full>>(8*uint(u.w))) & u.mask
		overflow = full != sext(uint64(full)&u.mask, u.w)
	}
	if !u.nr {
		m.setReg(x64.RAX, loOut)
		m.setReg(x64.RDX, hiOut)
	}
	if !u.nf {
		fl := szpBits(loOut, u.sbit)
		if overflow {
			fl |= x64.CF | x64.OF
		}
		m.putFlags(x64.AllFlags, fl)
	}
}

// --- shifts --------------------------------------------------------------
//
// The count is pre-masked for immediate forms and read from CL for the
// register forms; a zero count reads and rewrites the destination without
// touching flags, exactly as execShift does.

func (m *Machine) shiftCL(u *microOp) uint64 {
	count := m.readReg(x64.RCX, 0xff)
	if u.w == 8 {
		return count & 63
	}
	return count & 31
}

func shlCore(m *Machine, u *microOp, a, count uint64) {
	bitsW := uint64(8 * uint(u.w))
	r := a << count & u.mask
	if !u.nf {
		cf := count <= bitsW && a>>(bitsW-count)&1 != 0
		fl := szpBits(r, u.sbit)
		if cf {
			fl |= x64.CF
		}
		if (r&u.sbit != 0) != cf {
			fl |= x64.OF
		}
		m.putFlags(x64.AllFlags, fl)
	}
	m.writeALU(u, r)
}

func shrCore(m *Machine, u *microOp, a, count uint64) {
	r := a >> count
	if !u.nf {
		fl := szpBits(r, u.sbit)
		if a>>(count-1)&1 != 0 {
			fl |= x64.CF
		}
		if a&u.sbit != 0 {
			fl |= x64.OF
		}
		m.putFlags(x64.AllFlags, fl)
	}
	m.writeALU(u, r)
}

func sarCore(m *Machine, u *microOp, a, count uint64) {
	se := sext(a, u.w)
	r := uint64(se>>count) & u.mask
	if !u.nf {
		fl := szpBits(r, u.sbit)
		// The last bit shifted out, reading the sign-extended value so
		// that counts past the width see the sign bit.
		if se>>min(count-1, 63)&1 != 0 {
			fl |= x64.CF
		}
		m.putFlags(x64.AllFlags, fl)
	}
	m.writeALU(u, r)
}

func rolCore(m *Machine, u *microOp, a, count uint64) {
	bitsW := uint64(8 * uint(u.w))
	c := count % bitsW
	r := (a<<c | a>>(bitsW-c)) & u.mask
	if c == 0 {
		r = a
	}
	if !u.nf {
		cf := r&1 != 0
		var fl x64.FlagSet
		if cf {
			fl |= x64.CF
		}
		if (r&u.sbit != 0) != cf {
			fl |= x64.OF
		}
		m.putFlags(x64.CF|x64.OF, fl)
	}
	m.writeALU(u, r)
}

func rorCore(m *Machine, u *microOp, a, count uint64) {
	bitsW := uint64(8 * uint(u.w))
	c := count % bitsW
	r := (a>>c | a<<(bitsW-c)) & u.mask
	if c == 0 {
		r = a
	}
	if !u.nf {
		var fl x64.FlagSet
		if r&u.sbit != 0 {
			fl |= x64.CF
		}
		if (r&u.sbit != 0) != (r&(u.sbit>>1) != 0) {
			fl |= x64.OF
		}
		m.putFlags(x64.CF|x64.OF, fl)
	}
	m.writeALU(u, r)
}

func hShlI(m *Machine, u *microOp) {
	a := m.readReg(u.dst, u.mask)
	if u.imm == 0 {
		m.writeALU(u, a)
		return
	}
	shlCore(m, u, a, u.imm)
}

func hShrI(m *Machine, u *microOp) {
	a := m.readReg(u.dst, u.mask)
	if u.imm == 0 {
		m.writeALU(u, a)
		return
	}
	shrCore(m, u, a, u.imm)
}

func hSarI(m *Machine, u *microOp) {
	a := m.readReg(u.dst, u.mask)
	if u.imm == 0 {
		m.writeALU(u, a)
		return
	}
	sarCore(m, u, a, u.imm)
}

func hRolI(m *Machine, u *microOp) {
	a := m.readReg(u.dst, u.mask)
	if u.imm == 0 {
		m.writeALU(u, a)
		return
	}
	rolCore(m, u, a, u.imm)
}

func hRorI(m *Machine, u *microOp) {
	a := m.readReg(u.dst, u.mask)
	if u.imm == 0 {
		m.writeALU(u, a)
		return
	}
	rorCore(m, u, a, u.imm)
}

func hShlCL(m *Machine, u *microOp) {
	count := m.shiftCL(u)
	a := m.readReg(u.dst, u.mask)
	if count == 0 {
		m.writeALU(u, a)
		return
	}
	shlCore(m, u, a, count)
}

func hShrCL(m *Machine, u *microOp) {
	count := m.shiftCL(u)
	a := m.readReg(u.dst, u.mask)
	if count == 0 {
		m.writeALU(u, a)
		return
	}
	shrCore(m, u, a, count)
}

func hSarCL(m *Machine, u *microOp) {
	count := m.shiftCL(u)
	a := m.readReg(u.dst, u.mask)
	if count == 0 {
		m.writeALU(u, a)
		return
	}
	sarCore(m, u, a, count)
}

func hRolCL(m *Machine, u *microOp) {
	count := m.shiftCL(u)
	a := m.readReg(u.dst, u.mask)
	if count == 0 {
		m.writeALU(u, a)
		return
	}
	rolCore(m, u, a, count)
}

func hRorCL(m *Machine, u *microOp) {
	count := m.shiftCL(u)
	a := m.readReg(u.dst, u.mask)
	if count == 0 {
		m.writeALU(u, a)
		return
	}
	rorCore(m, u, a, count)
}

// hShldI and hShrdI are the double shifts with a pre-masked immediate
// count, mirroring execDoubleShift: both registers are read (in the
// interpreter's source-then-destination order, for identical undef
// accounting), a zero count rewrites the destination without touching
// flags, and OF reports the destination's sign change.

func hShldI(m *Machine, u *microOp) {
	src := m.readReg(u.src, u.mask)
	dst := m.readReg(u.dst, u.mask)
	if u.imm == 0 {
		m.writeALU(u, dst)
		return
	}
	bitsW := uint64(8 * uint(u.w))
	r := (dst<<u.imm | src>>(bitsW-u.imm)) & u.mask
	if !u.nf {
		fl := szpBits(r, u.sbit)
		if dst>>(bitsW-u.imm)&1 != 0 {
			fl |= x64.CF
		}
		if (r&u.sbit != 0) != (dst&u.sbit != 0) {
			fl |= x64.OF
		}
		m.putFlags(x64.AllFlags, fl)
	}
	m.writeALU(u, r)
}

func hShrdI(m *Machine, u *microOp) {
	src := m.readReg(u.src, u.mask)
	dst := m.readReg(u.dst, u.mask)
	if u.imm == 0 {
		m.writeALU(u, dst)
		return
	}
	bitsW := uint64(8 * uint(u.w))
	r := (dst>>u.imm | src<<(bitsW-u.imm)) & u.mask
	if !u.nf {
		fl := szpBits(r, u.sbit)
		if dst>>(u.imm-1)&1 != 0 {
			fl |= x64.CF
		}
		if (r&u.sbit != 0) != (dst&u.sbit != 0) {
			fl |= x64.OF
		}
		m.putFlags(x64.AllFlags, fl)
	}
	m.writeALU(u, r)
}

// --- bit ops, exchanges, stack -------------------------------------------

func hPopcntRR(m *Machine, u *microOp) {
	a := m.readReg(u.src, u.mask)
	r := uint64(bits.OnesCount64(a))
	if !u.nf {
		var fl x64.FlagSet
		if a == 0 {
			fl |= x64.ZF
		}
		m.putFlags(x64.AllFlags, fl)
	}
	m.writeALU(u, r)
}

func hBsfRR(m *Machine, u *microOp) {
	a := m.readReg(u.src, u.mask)
	var r uint64
	var fl x64.FlagSet
	if a == 0 {
		// Deterministic model: result 0 when the source is zero.
		fl |= x64.ZF
	} else {
		r = uint64(bits.TrailingZeros64(a))
	}
	if !u.nf {
		m.putFlags(x64.AllFlags, fl)
	}
	m.writeALU(u, r)
}

func hBsrRR(m *Machine, u *microOp) {
	a := m.readReg(u.src, u.mask)
	var r uint64
	var fl x64.FlagSet
	if a == 0 {
		fl |= x64.ZF
	} else {
		r = uint64(63 - bits.LeadingZeros64(a))
	}
	if !u.nf {
		m.putFlags(x64.AllFlags, fl)
	}
	m.writeALU(u, r)
}

func hBswapR(m *Machine, u *microOp) {
	a := m.readReg(u.dst, u.mask)
	if u.w == 4 {
		m.writeALU(u, uint64(bits.ReverseBytes32(uint32(a))))
	} else {
		m.writeALU(u, bits.ReverseBytes64(a))
	}
}

func hBtRR(m *Machine, u *microOp) {
	a := m.readReg(u.dst, u.mask)
	idx := m.readReg(u.src, u.mask) % (8 * uint64(u.w))
	var fl x64.FlagSet
	if a>>idx&1 != 0 {
		fl |= x64.CF
	}
	if !u.nf {
		m.putFlags(x64.CF, fl)
	}
}

func hBtRI(m *Machine, u *microOp) {
	a := m.readReg(u.dst, u.mask)
	idx := u.imm % (8 * uint64(u.w))
	var fl x64.FlagSet
	if a>>idx&1 != 0 {
		fl |= x64.CF
	}
	if !u.nf {
		m.putFlags(x64.CF, fl)
	}
}

func hXchgRR(m *Machine, u *microOp) {
	a := m.readReg(u.src, u.mask)
	b := m.readReg(u.dst, u.mask)
	if u.nr {
		// Narrow exchanges merge both destinations: count the merge read
		// of each undefined register exactly once, as the two writeGPR
		// calls would (the first of which defines src, so a same-register
		// exchange counts one merge, not two).
		if u.w < 4 {
			m.undef += int(^m.RegDef >> u.src & 1)
			if u.dst != u.src {
				m.undef += int(^m.RegDef >> u.dst & 1)
			}
		}
		return
	}
	if u.w >= 4 {
		m.setReg(u.src, b)
		m.setReg(u.dst, a)
	} else {
		m.writeGPR(u.src, u.w, b)
		m.writeGPR(u.dst, u.w, a)
	}
}

func hPushR(m *Machine, u *microOp) {
	v := m.readReg(u.src, ^uint64(0))
	if m.RegDef&(1<<x64.RSP) == 0 {
		m.undef++
	}
	m.Regs[x64.RSP] -= 8
	m.regsWritten |= 1 << x64.RSP
	m.store(m.Regs[x64.RSP], 8, v)
}

func hPushI(m *Machine, u *microOp) {
	if m.RegDef&(1<<x64.RSP) == 0 {
		m.undef++
	}
	m.Regs[x64.RSP] -= 8
	m.regsWritten |= 1 << x64.RSP
	m.store(m.Regs[x64.RSP], 8, u.imm)
}

func hPopR(m *Machine, u *microOp) {
	if m.RegDef&(1<<x64.RSP) == 0 {
		m.undef++
	}
	v := m.load(m.Regs[x64.RSP], 8)
	m.Regs[x64.RSP] += 8
	m.regsWritten |= 1 << x64.RSP
	m.setReg(u.dst, v)
}
