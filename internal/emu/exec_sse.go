package emu

import (
	"encoding/binary"
	"fmt"

	"repro/internal/x64"
)

// lanes32 splits a 128-bit register into four 32-bit lanes.
func lanes32(v [2]uint64) [4]uint32 {
	return [4]uint32{
		uint32(v[0]), uint32(v[0] >> 32),
		uint32(v[1]), uint32(v[1] >> 32),
	}
}

func fromLanes32(l [4]uint32) [2]uint64 {
	return [2]uint64{
		uint64(l[0]) | uint64(l[1])<<32,
		uint64(l[2]) | uint64(l[3])<<32,
	}
}

// lanes16 splits a 128-bit register into eight 16-bit lanes.
func lanes16(v [2]uint64) [8]uint16 {
	var l [8]uint16
	for i := 0; i < 4; i++ {
		l[i] = uint16(v[0] >> (16 * i))
		l[i+4] = uint16(v[1] >> (16 * i))
	}
	return l
}

func fromLanes16(l [8]uint16) [2]uint64 {
	var v [2]uint64
	for i := 0; i < 4; i++ {
		v[0] |= uint64(l[i]) << (16 * i)
		v[1] |= uint64(l[i+4]) << (16 * i)
	}
	return v
}

// readXmmOrMem reads a 128-bit source operand. The untraced memory path
// reads straight out of the segment, like Machine.load.
func (m *Machine) readXmmOrMem(o x64.Operand) [2]uint64 {
	if o.Kind == x64.KindXmm {
		return m.readXmm(o.Reg)
	}
	addr := m.effectiveAddr(o)
	if m.trace == nil {
		sg := m.findSeg(addr, 16)
		if sg != nil {
			off := addr - sg.base
			if allSet(sg.valid, off, 16) {
				if !allSet(sg.def, off, 16) {
					m.undef++
				}
				return [2]uint64{
					binary.LittleEndian.Uint64(sg.data[off:]),
					binary.LittleEndian.Uint64(sg.data[off+8:]),
				}
			}
		}
		m.sigsegv++
		return [2]uint64{}
	}
	var buf [16]byte
	m.loadBytes(addr, 16, buf[:])
	var v [2]uint64
	for i := 0; i < 8; i++ {
		v[0] |= uint64(buf[i]) << (8 * i)
		v[1] |= uint64(buf[8+i]) << (8 * i)
	}
	return v
}

func (m *Machine) writeXmmMem(o x64.Operand, v [2]uint64) {
	addr := m.effectiveAddr(o)
	if m.trace == nil {
		sg := m.findSeg(addr, 16)
		if sg == nil {
			m.sigsegv++
			return
		}
		off := addr - sg.base
		if !allSet(sg.valid, off, 16) {
			m.sigsegv++
			return
		}
		binary.LittleEndian.PutUint64(sg.data[off:], v[0])
		binary.LittleEndian.PutUint64(sg.data[off+8:], v[1])
		setBits(sg.def, off, 16)
		if int(off) < sg.dirtyLo {
			sg.dirtyLo = int(off)
		}
		if int(off)+16 > sg.dirtyHi {
			sg.dirtyHi = int(off) + 16
		}
		m.memDirty = true
		return
	}
	var buf [16]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(v[0] >> (8 * i))
		buf[8+i] = byte(v[1] >> (8 * i))
	}
	m.storeBytes(addr, 16, buf[:])
}

// execSSE interprets the fixed-point SSE subset.
func (m *Machine) execSSE(in *x64.Inst) {
	switch in.Op {
	case x64.MOVD:
		m.execMovGX(in, 4)
	case x64.MOVQX:
		m.execMovGX(in, 8)

	case x64.MOVUPS, x64.MOVAPS:
		src := in.Opd[0]
		dst := in.Opd[1]
		var v [2]uint64
		if src.Kind == x64.KindXmm {
			v = m.readXmm(src.Reg)
		} else {
			v = m.readXmmOrMem(src)
		}
		if dst.Kind == x64.KindXmm {
			m.writeXmm(dst.Reg, v)
		} else {
			m.writeXmmMem(dst, v)
		}

	case x64.SHUFPS:
		imm := uint8(in.Opd[0].Imm)
		src := lanes32(m.readXmm(in.Opd[1].Reg))
		dst := lanes32(m.readXmm(in.Opd[2].Reg))
		var out [4]uint32
		out[0] = dst[imm>>0&3]
		out[1] = dst[imm>>2&3]
		out[2] = src[imm>>4&3]
		out[3] = src[imm>>6&3]
		m.writeXmm(in.Opd[2].Reg, fromLanes32(out))

	case x64.PSHUFD:
		imm := uint8(in.Opd[0].Imm)
		src := lanes32(m.readXmm(in.Opd[1].Reg))
		var out [4]uint32
		for i := 0; i < 4; i++ {
			out[i] = src[imm>>(2*i)&3]
		}
		m.writeXmm(in.Opd[2].Reg, fromLanes32(out))

	case x64.PADDW, x64.PSUBW, x64.PMULLW:
		a := lanes16(m.readXmmOrMem(in.Opd[0]))
		b := lanes16(m.readXmm(in.Opd[1].Reg))
		var out [8]uint16
		for i := range out {
			switch in.Op {
			case x64.PADDW:
				out[i] = b[i] + a[i]
			case x64.PSUBW:
				out[i] = b[i] - a[i]
			case x64.PMULLW:
				out[i] = b[i] * a[i]
			}
		}
		m.writeXmm(in.Opd[1].Reg, fromLanes16(out))

	case x64.PADDD, x64.PSUBD, x64.PMULLD:
		a := lanes32(m.readXmmOrMem(in.Opd[0]))
		b := lanes32(m.readXmm(in.Opd[1].Reg))
		var out [4]uint32
		for i := range out {
			switch in.Op {
			case x64.PADDD:
				out[i] = b[i] + a[i]
			case x64.PSUBD:
				out[i] = b[i] - a[i]
			case x64.PMULLD:
				out[i] = b[i] * a[i]
			}
		}
		m.writeXmm(in.Opd[1].Reg, fromLanes32(out))

	case x64.PADDQ:
		a := m.readXmmOrMem(in.Opd[0])
		b := m.readXmm(in.Opd[1].Reg)
		m.writeXmm(in.Opd[1].Reg, [2]uint64{b[0] + a[0], b[1] + a[1]})

	case x64.PAND, x64.POR, x64.PXOR:
		// pxor x, x is the vector zero idiom: defined regardless of x.
		if in.Op == x64.PXOR && in.Opd[0].Kind == x64.KindXmm &&
			in.Opd[0].Reg == in.Opd[1].Reg {
			m.writeXmm(in.Opd[1].Reg, [2]uint64{0, 0})
			return
		}
		a := m.readXmmOrMem(in.Opd[0])
		b := m.readXmm(in.Opd[1].Reg)
		var v [2]uint64
		switch in.Op {
		case x64.PAND:
			v = [2]uint64{a[0] & b[0], a[1] & b[1]}
		case x64.POR:
			v = [2]uint64{a[0] | b[0], a[1] | b[1]}
		case x64.PXOR:
			v = [2]uint64{a[0] ^ b[0], a[1] ^ b[1]}
		}
		m.writeXmm(in.Opd[1].Reg, v)

	case x64.PSLLD, x64.PSRLD:
		c := uint64(in.Opd[0].Imm)
		a := lanes32(m.readXmm(in.Opd[1].Reg))
		var out [4]uint32
		if c < 32 {
			for i := range out {
				if in.Op == x64.PSLLD {
					out[i] = a[i] << c
				} else {
					out[i] = a[i] >> c
				}
			}
		}
		m.writeXmm(in.Opd[1].Reg, fromLanes32(out))

	case x64.PSLLQ, x64.PSRLQ:
		c := uint64(in.Opd[0].Imm)
		a := m.readXmm(in.Opd[1].Reg)
		var out [2]uint64
		if c < 64 {
			for i := range out {
				if in.Op == x64.PSLLQ {
					out[i] = a[i] << c
				} else {
					out[i] = a[i] >> c
				}
			}
		}
		m.writeXmm(in.Opd[1].Reg, out)

	default:
		panic(fmt.Sprintf("emu: unimplemented opcode %v", in.Op))
	}
}

// execMovGX implements movd/movq between GPRs, memory and XMM registers.
func (m *Machine) execMovGX(in *x64.Inst, w uint8) {
	src, dst := in.Opd[0], in.Opd[1]
	switch {
	case dst.Kind == x64.KindXmm && src.Kind != x64.KindXmm:
		v := m.readOperand(src)
		m.writeXmm(dst.Reg, [2]uint64{v & widthMask(w), 0})
	case dst.Kind != x64.KindXmm && src.Kind == x64.KindXmm:
		v := m.readXmm(src.Reg)
		if dst.Kind == x64.KindReg {
			// movd/movq to a GPR zero-extends to 64 bits.
			m.writeGPR(dst.Reg, 8, v[0]&widthMask(w))
		} else {
			m.writeOperand(dst, v[0]&widthMask(w))
		}
	default:
		// xmm to xmm via movq clears the upper lane.
		v := m.readXmm(src.Reg)
		m.writeXmm(dst.Reg, [2]uint64{v[0] & widthMask(w), 0})
	}
}
