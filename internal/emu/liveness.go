package emu

import "repro/internal/x64"

// This file implements the backward flag-liveness pass of the compiled
// pipeline. Every specialised ALU handler historically computed and stored
// the full five-flag word (putFlags(x64.AllFlags, ...)) even when the next
// flag-reading consumer was preceded by another flag write — on the search
// workload the large majority of flag writes are dead, because ℓ-slot
// candidates are dense with ALU instructions and sparse with Jcc/SETcc/
// CMOVcc/ADC-style readers. Compile therefore computes, per slot, which of
// the five flags are live-out (read by a later consumer along some path
// before being redefined, conservatively all-live at every exit), and the
// hot flag-writing dispatch codes are swapped for flag-suppressed variants
// on slots where no written flag is live: the run loop skips the
// addBits/subBits/szpBits computation and the Flags/FlagsDef stores
// entirely. Slots where only SF/ZF/PF survive take a reduced szp-only path
// that skips the carry/overflow arithmetic.
//
// Soundness rests on three observations:
//
//   - Every observation point is covered. Flag values and definedness are
//     observable at in-program reads (EvalCond/readFlagsFor and the
//     adc/sbb carryIn, all of which consult only the flags their condition
//     or opcode names) and at exit, where the cost function compares live
//     flags and the differential tests compare the full Flags/FlagsDef
//     words. Reads make a flag live; exits are modelled as reading
//     AllFlags. A suppressed write is therefore only ever observed after
//     an intervening full write of the same flag.
//   - Kill sets are exact-or-conservative. A slot's kill set contains only
//     flags whose value and definedness the handler rewrites
//     unconditionally (shift-family opcodes with a dynamic or zero count
//     kill nothing; DIV/IDIV kill everything — both the fault and success
//     paths define all five flags as zero). A flag is only marked dead
//     when every path to an exit kills it first.
//   - Error accounting is preserved. Flag-suppressed variants perform
//     exactly the register and flag reads of their full counterparts, in
//     the same order, so the undef/sigsegv counters — observables of the
//     cost function — cannot diverge.
//
// The bounded run loop (runCompiledBounded) is excluded by construction:
// it can exhaust the step budget at any slot, which makes every slot a
// potential exit, so it dispatches each slot through a scratch copy with
// the nf bit cleared — u.run always remains the full-flag handler —
// never through the selected variant codes.
//
// Patching. An MCMC move rewrites one slot, which can flip liveness for an
// unbounded prefix of the program (the affected backward slice). Because
// jumps are forward-only, slot order is a topological order of the CFG and
// liveness needs no fixpoint iteration: Patch re-walks slots from the
// mutated index toward slot 0, recomputing live-in/live-out from each
// slot's stored gen/kill summary, re-selecting dispatch codes only where
// live-out actually changed, and stopping as soon as a slot's live-in is
// unchanged and no jump source below still targets a changed slot (the
// minJSrc barrier). Worst case — a mutation at slot ℓ-1 whose liveness
// change survives a kill-free prefix — the walk is O(ℓ);
// BenchmarkPatchLiveness measures exactly that shape.

// flagSummary derives the liveness summary of one executable instruction:
// gen is the set of flags it reads (condition codes included), write the
// set it may write, and kill the subset of write it unconditionally
// redefines (value and definedness both).
func flagSummary(in *x64.Inst) (gen, kill, write x64.FlagSet) {
	info := x64.Info(in.Op)
	gen = info.FlagsRead
	if info.HasCC {
		gen |= x64.FlagsReadByCond(in.CC)
	}
	write = info.FlagsWrite
	kill = write
	if info.CondFlags {
		// Shift-family opcodes leave every flag untouched when the
		// (masked) count is zero: a CL count is dynamic, so these slots
		// kill nothing; an immediate count is decidable at decode time.
		kill = 0
		if in.Opd[0].Kind == x64.KindImm && info.DstSlot > 0 {
			mask := int64(31)
			if in.Opd[info.DstSlot].Width == 8 {
				mask = 63
			}
			if in.Opd[0].Imm&mask == 0 {
				write = 0 // never writes flags at all
			} else {
				kill = write
			}
		}
	}
	return gen, kill, write
}

// liveInAt reads the stored live-in of slot j, with every index at or past
// the program end standing for an exit (all flags observable).
func (c *Compiled) liveInAt(j int) x64.FlagSet {
	if j >= len(c.ops) {
		return x64.AllFlags
	}
	return c.liveIn[j]
}

// recomputeSlot refreshes slot j's live-out and live-in from its
// successors' stored live-ins, reporting what changed. Successors follow
// slot order (j+1), not the skip chain, so UNUSED/LABEL slots propagate
// liveness transparently; RET has no successor and its AllFlags gen models
// the exit.
func (c *Compiled) recomputeSlot(j int) (inChanged, outChanged bool) {
	u := &c.ops[j]
	f := &c.flags[j]
	var lo x64.FlagSet
	switch u.kind {
	case mkRet:
		lo = 0
	case mkJmp:
		lo = c.liveInAt(int(u.target))
	case mkJcc:
		lo = c.liveInAt(int(u.target)) | c.liveInAt(j+1)
	default:
		lo = c.liveInAt(j + 1)
	}
	li := f.gen | lo&^f.kill
	outChanged = lo != f.liveOut
	f.liveOut = lo
	inChanged = li != c.liveIn[j]
	c.liveIn[j] = li
	return inChanged, outChanged
}

// computeLiveness runs the full backward pass and (re-)selects every
// slot's dispatch variant. Called from link, so fresh compiles, full
// recompiles and control-structure patches all pass through it.
func (c *Compiled) computeLiveness() {
	for j := len(c.ops) - 1; j >= 0; j-- {
		c.recomputeSlot(j)
		c.applyLiveness(j)
	}
}

// patchLiveness recomputes liveness over the backward slice affected by a
// re-lowered slot i (whose dispatch code lowerSlot has just reset to the
// full variant). The walk ends at the first slot whose live-in did not
// change, unless a jump below it targets a slot whose live-in did — those
// sources (tracked via minJSrc, always below their forward targets) must
// be re-walked before their own predecessors can be trusted.
func (c *Compiled) patchLiveness(i int) {
	pending := -1
	for j := i; j >= 0; j-- {
		inChanged, outChanged := c.recomputeSlot(j)
		if outChanged || j == i {
			c.applyLiveness(j)
		}
		if inChanged {
			if s := c.minJSrc[j]; s >= 0 && (pending < 0 || int(s) < pending) {
				pending = int(s)
			}
		}
		if !inChanged && (pending < 0 || j <= pending) {
			break
		}
	}
}

// applyLiveness selects slot i's dispatch code from its live-out set:
// the flag-suppressed variant when no written flag is live, the szp-only
// variant when only SF/ZF/PF are, the full code otherwise. Only kind and
// nf are ever touched — u.run stays the full-flag handler, which is what
// lets the bounded loop recover all-live semantics from a copy with nf
// cleared.
func (c *Compiled) applyLiveness(i int) {
	f := &c.flags[i]
	if f.write == 0 {
		return
	}
	u := &c.ops[i]
	live := f.liveOut & f.write
	u.kind = liveKind(baseKindOf(u.kind), live)
	// The nf bit suppresses the flag store of handler-dispatched slots —
	// the shapes without an inline variant code (narrow widths, memory
	// sources, CL shifts, the mul/div families): every specialised
	// flag-writing handler guards its putFlags on it, and the generic
	// fallback honours it by restoring the flag words around the
	// interpreter switch (hGeneric).
	u.nf = live == 0
}

// baseKindOf maps a liveness-selected variant code back to its full-flag
// base code (identity for every other kind).
func baseKindOf(k microKind) microKind {
	switch k {
	case mkAddRRWNF, mkAddRRWZ:
		return mkAddRRW
	case mkAddRIWNF, mkAddRIWZ:
		return mkAddRIW
	case mkSubRRWNF, mkSubRRWZ:
		return mkSubRRW
	case mkSubRIWNF, mkSubRIWZ:
		return mkSubRIW
	case mkAndRRWNF:
		return mkAndRRW
	case mkAndRIWNF:
		return mkAndRIW
	case mkOrRRWNF:
		return mkOrRRW
	case mkOrRIWNF:
		return mkOrRIW
	case mkXorRRWNF:
		return mkXorRRW
	case mkXorRIWNF:
		return mkXorRIW
	case mkZeroWNF:
		return mkZeroW
	case mkCmpRRNF, mkCmpRRZ:
		return mkCmpRR
	case mkCmpRINF, mkCmpRIZ:
		return mkCmpRI
	case mkTestRRNF:
		return mkTestRR
	case mkTestRINF:
		return mkTestRI
	case mkIncWNF:
		return mkIncW
	case mkDecWNF:
		return mkDecW
	case mkNegWNF:
		return mkNegW
	case mkShlIWNF:
		return mkShlIW
	case mkShrIWNF:
		return mkShrIW
	case mkSarIWNF:
		return mkSarIW
	}
	return k
}

// liveKind picks the variant of a full-flag base code for the given set of
// live written flags: suppressed when empty, szp-only when the carry and
// overflow outputs are dead (only the arithmetic codes, whose CF/OF cost
// is separable, have one), the base code otherwise.
func liveKind(base microKind, live x64.FlagSet) microKind {
	if live == 0 {
		switch base {
		case mkAddRRW:
			return mkAddRRWNF
		case mkAddRIW:
			return mkAddRIWNF
		case mkSubRRW:
			return mkSubRRWNF
		case mkSubRIW:
			return mkSubRIWNF
		case mkAndRRW:
			return mkAndRRWNF
		case mkAndRIW:
			return mkAndRIWNF
		case mkOrRRW:
			return mkOrRRWNF
		case mkOrRIW:
			return mkOrRIWNF
		case mkXorRRW:
			return mkXorRRWNF
		case mkXorRIW:
			return mkXorRIWNF
		case mkZeroW:
			return mkZeroWNF
		case mkCmpRR:
			return mkCmpRRNF
		case mkCmpRI:
			return mkCmpRINF
		case mkTestRR:
			return mkTestRRNF
		case mkTestRI:
			return mkTestRINF
		case mkIncW:
			return mkIncWNF
		case mkDecW:
			return mkDecWNF
		case mkNegW:
			return mkNegWNF
		case mkShlIW:
			return mkShlIWNF
		case mkShrIW:
			return mkShrIWNF
		case mkSarIW:
			return mkSarIWNF
		}
		return base
	}
	if live&(x64.CF|x64.OF) == 0 {
		switch base {
		case mkAddRRW:
			return mkAddRRWZ
		case mkAddRIW:
			return mkAddRIWZ
		case mkSubRRW:
			return mkSubRRWZ
		case mkSubRIW:
			return mkSubRIWZ
		case mkCmpRR:
			return mkCmpRRZ
		case mkCmpRI:
			return mkCmpRIZ
		}
	}
	return base
}

// FlagFreeSlots reports how many flag-writing slots the liveness pass
// proved dead and suppressed — via a flag-suppressed dispatch code on the
// inline shapes, via the nf bit on handler-dispatched ones (including the
// generic fallback, which restores the flag words around the interpreter
// switch) — so RunCompiled skips their flag computation and
// Flags/FlagsDef stores.
func (c *Compiled) FlagFreeSlots() int {
	n := 0
	for i := range c.ops {
		if c.ops[i].nf {
			n++
		}
	}
	return n
}

// FlagWritingSlots reports how many slots write any flag at all, the
// denominator of the flag-free fraction tracked by BENCH_eval.json.
func (c *Compiled) FlagWritingSlots() int {
	n := 0
	for i := range c.flags {
		if c.flags[i].write != 0 {
			n++
		}
	}
	return n
}
