package emu

import "repro/internal/x64"

// This file implements the backward flag-liveness pass of the compiled
// pipeline. Every specialised ALU handler historically computed and stored
// the full five-flag word (putFlags(x64.AllFlags, ...)) even when the next
// flag-reading consumer was preceded by another flag write — on the search
// workload the large majority of flag writes are dead, because ℓ-slot
// candidates are dense with ALU instructions and sparse with Jcc/SETcc/
// CMOVcc/ADC-style readers. Compile therefore computes, per slot, which of
// the five flags are live-out (read by a later consumer along some path
// before being redefined, conservatively all-live at every exit), and the
// hot flag-writing dispatch codes are swapped for flag-suppressed variants
// on slots where no written flag is live: the run loop skips the
// addBits/subBits/szpBits computation and the Flags/FlagsDef stores
// entirely. Slots where only SF/ZF/PF survive take a reduced szp-only path
// that skips the carry/overflow arithmetic.
//
// Soundness rests on three observations:
//
//   - Every observation point is covered. Flag values and definedness are
//     observable at in-program reads (EvalCond/readFlagsFor and the
//     adc/sbb carryIn, all of which consult only the flags their condition
//     or opcode names) and at exit, where the cost function compares live
//     flags and the differential tests compare the full Flags/FlagsDef
//     words. Reads make a flag live; exits are modelled as reading
//     AllFlags. A suppressed write is therefore only ever observed after
//     an intervening full write of the same flag.
//   - Kill sets are exact-or-conservative. A slot's kill set contains only
//     flags whose value and definedness the handler rewrites
//     unconditionally (shift-family opcodes with a dynamic or zero count
//     kill nothing; DIV/IDIV kill everything — both the fault and success
//     paths define all five flags as zero). A flag is only marked dead
//     when every path to an exit kills it first.
//   - Error accounting is preserved. Flag-suppressed variants perform
//     exactly the register and flag reads of their full counterparts, in
//     the same order, so the undef/sigsegv counters — observables of the
//     cost function — cannot diverge.
//
// Register liveness. The same machinery runs a second backward pass over
// 16-bit GPR and XMM sets: per slot, regSummary derives the registers the
// handler reads (gen) and writes from the instruction's operand and
// implicit effects (x64.EffectsOf), live-in is gen | liveOut &^ write,
// and a slot every one of whose written registers is dead-out lowers to a
// write-suppressed form — a shared mkDead* dispatch code when its flag
// writes (if any) are dead too, or the nr bit honoured inside the
// specialised handler. The dataflow rules:
//
//   - Exits gen the Compiled's exitRegs masks: all registers under
//     plain Compile (full final state stays comparable against the
//     interpreter), the kernel's live-out set under CompileLive (the
//     §4.2 cost function observes nothing else; the engine compiles
//     candidates this way).
//   - Every modelled register write is unconditional (CMOV always writes,
//     zero-count shifts rewrite their destination, DIV defines RAX/RDX on
//     both the fault and success paths), so kill == write.
//   - Partial-width merge semantics: a 4/8-byte write is a full kill
//     (32-bit writes zero-extend); a 1/2-byte write merges into the
//     untouched bytes, which EffectsOf models by putting the narrow
//     destination in the read set — the register stays live-in through
//     narrow writes, so a dead narrow write can only ever be killed by a
//     later wide write, and suppressing its RegDef update is invisible.
//     XMM writes are always full 128-bit kills.
//   - The dependency-breaking zero idioms (xor r,r / sub r,r / pxor x,x)
//     read nothing at wide widths; regSummary drops their false
//     self-read so the upstream write can die.
//   - Memory operands read their base/index registers; MUL/IMUL/DIV/IDIV
//     use their implicit RAX/RDX sets precisely (reads keep upstream
//     writes alive even when the implicit outputs are dead).
//
// Suppressed forms keep every read — in handler order, including the
// merge read of an undefined narrow destination that writeGPR counts
// before merging — so the undef/sigsegv counters cannot diverge; only
// the Regs/Xmm stores and the RegDef/XmmDef updates are skipped. Under
// CompileLive the final values and definedness of non-live registers may
// therefore differ from a full run; every cost observable is preserved.
//
// The bounded run loop (runCompiledBounded) is excluded by construction:
// it can exhaust the step budget at any slot, which makes every slot a
// potential exit, so it dispatches each slot through a scratch copy with
// the nf and nr bits cleared — u.run always remains the full handler —
// never through the selected variant codes.
//
// Patching. An MCMC move rewrites one slot, which can flip liveness for an
// unbounded prefix of the program (the affected backward slice). Because
// jumps are forward-only, slot order is a topological order of the CFG and
// liveness needs no fixpoint iteration: Patch re-walks slots from the
// mutated index toward slot 0, recomputing live-in/live-out from each
// slot's stored gen/kill summary, re-selecting dispatch codes only where
// live-out actually changed, and stopping as soon as a slot's live-in is
// unchanged and no jump source below still targets a changed slot (the
// minJSrc barrier). Worst case — a mutation at slot ℓ-1 whose liveness
// change survives a kill-free prefix — the walk is O(ℓ);
// BenchmarkPatchLiveness measures exactly that shape.

// flagSummary derives the liveness summary of one executable instruction:
// gen is the set of flags it reads (condition codes included), write the
// set it may write, and kill the subset of write it unconditionally
// redefines (value and definedness both).
func flagSummary(in *x64.Inst) (gen, kill, write x64.FlagSet) {
	info := x64.Info(in.Op)
	gen = info.FlagsRead
	if info.HasCC {
		gen |= x64.FlagsReadByCond(in.CC)
	}
	write = info.FlagsWrite
	kill = write
	if info.CondFlags {
		// Shift-family opcodes leave every flag untouched when the
		// (masked) count is zero: a CL count is dynamic, so these slots
		// kill nothing; an immediate count is decidable at decode time.
		kill = 0
		if in.Opd[0].Kind == x64.KindImm && info.DstSlot > 0 {
			mask := int64(31)
			if in.Opd[info.DstSlot].Width == 8 {
				mask = 63
			}
			if in.Opd[0].Imm&mask == 0 {
				write = 0 // never writes flags at all
			} else {
				kill = write
			}
		}
	}
	return gen, kill, write
}

// slotRegs is the register-liveness state of one slot: the packed
// GPR+XMM sets the handler reads (gen) and writes (write), the analysis
// results (in/liveOut), the recorded base dispatch code variant
// re-selection starts from (the dead codes are many-to-one, so the
// current u.kind cannot be inverted), and the suppression eligibility
// decided at lowering time. Kept beside slotFlags, outside microOp, for
// the same cache-line reason.
type slotRegs struct {
	gen      uint32
	write    uint32
	in       uint32
	liveOut  uint32
	base     microKind
	eligible bool
	memWrite bool
}

// packRegs packs a GPR set (high half) and an XMM set (low half) into
// the single word the analysis operates on: both register files flow
// through one OR/AND-NOT pair per slot, and the dead test is one mask.
func packRegs(gpr, xmm uint16) uint32 { return uint32(gpr)<<16 | uint32(xmm) }

// writes reports whether the slot writes any register at all, the
// denominator of the suppressed-register fraction.
func (rg *slotRegs) writes() bool { return rg.write != 0 }

// regSummary derives the register-liveness summary of one executable
// instruction from its operand and implicit effects. The emulator's
// specialised handlers implement exactly these reads and writes (the
// differential fuzz targets pin that); the zero idioms are the one spot
// the effects table is conservative, so their false self-read is dropped
// at the widths whose handlers read nothing.
func regSummary(in *x64.Inst) slotRegs {
	e := x64.EffectsOf(*in)
	rg := slotRegs{
		gen:      packRegs(uint16(e.GPRRead), e.XMMRead),
		write:    packRegs(uint16(e.GPRWrite), e.XMMWrite),
		memWrite: e.MemWrite,
	}
	switch in.Op {
	case x64.XOR, x64.SUB:
		d, s := in.Opd[1], in.Opd[0]
		if d.Kind == x64.KindReg && s.Kind == x64.KindReg &&
			s.Reg == d.Reg && s.Width == d.Width && d.Width >= 4 {
			rg.gen &^= packRegs(1<<d.Reg, 0)
		}
	case x64.PXOR:
		d, s := in.Opd[1], in.Opd[0]
		if d.Kind == x64.KindXmm && s.Kind == x64.KindXmm && s.Reg == d.Reg {
			rg.gen &^= packRegs(0, 1<<d.Reg)
		}
	}
	return rg
}

// liveInAt reads the stored live-in of slot j, with every index at or past
// the program end standing for an exit (all flags observable).
func (c *Compiled) liveInAt(j int) x64.FlagSet {
	if j >= len(c.ops) {
		return x64.AllFlags
	}
	return c.liveIn[j]
}

// regLiveInAt reads the stored packed register live-in set of slot j,
// with every index at or past the program end standing for an exit (the
// exitRegs masks observable).
func (c *Compiled) regLiveInAt(j int) uint32 {
	if j >= len(c.ops) {
		return c.exitRegs
	}
	return c.regs[j].in
}

// recomputeSlot refreshes slot j's live-out and live-in — flag and
// register sets in one walk — from its successors' stored live-ins.
// Successors follow slot order (j+1), not the skip chain, so
// UNUSED/LABEL slots propagate liveness transparently; RET has no
// successor and its AllFlags/exitRegs gens model the exit.
// outChanged reports only selection-relevant change: live-out bits
// masked by the slot's own write sets, the sole live-out inputs of
// applyLiveness — a changed bit the slot does not write cannot flip its
// dispatch selection, so patchLiveness skips re-selection for it (the
// common case on a long walk: a liveness flip streaming through slots
// that merely propagate it).
func (c *Compiled) recomputeSlot(j int) (inChanged, outChanged bool) {
	u := &c.ops[j]
	f := &c.flags[j]
	rg := &c.regs[j]
	var lo x64.FlagSet
	var loR uint32
	switch u.kind {
	case mkRet:
		lo = 0
	case mkJmp:
		lo = c.liveInAt(int(u.target))
		loR = c.regLiveInAt(int(u.target))
	case mkJcc:
		lo = c.liveInAt(int(u.target)) | c.liveInAt(j+1)
		loR = c.regLiveInAt(int(u.target)) | c.regLiveInAt(j+1)
	default:
		lo = c.liveInAt(j + 1)
		loR = c.regLiveInAt(j + 1)
	}
	li := f.gen | lo&^f.kill
	liR := rg.gen | loR&^rg.write
	outChanged = (lo^f.liveOut)&f.write != 0 || (loR^rg.liveOut)&rg.write != 0
	f.liveOut = lo
	rg.liveOut = loR
	inChanged = li != c.liveIn[j] || liR != rg.in
	c.liveIn[j] = li
	rg.in = liR
	return inChanged, outChanged
}

// computeLiveness runs the full backward pass and (re-)selects every
// slot's dispatch variant. Called from link, so fresh compiles, full
// recompiles and control-structure patches all pass through it.
func (c *Compiled) computeLiveness() {
	for j := len(c.ops) - 1; j >= 0; j-- {
		c.recomputeSlot(j)
		c.applyLiveness(j)
	}
}

// patchLiveness recomputes liveness over the backward slice affected by a
// re-lowered slot i (whose dispatch code lowerSlot has just reset to the
// full variant). The walk ends at the first slot whose live-in did not
// change, unless a jump below it targets a slot whose live-in did — those
// sources (tracked via minJSrc, always below their forward targets) must
// be re-walked before their own predecessors can be trusted.
func (c *Compiled) patchLiveness(i int) {
	pending := -1
	for j := i; j >= 0; j-- {
		inChanged, outChanged := c.recomputeSlot(j)
		if outChanged || j == i {
			c.applyLiveness(j)
		}
		if inChanged {
			if s := c.minJSrc[j]; s >= 0 && (pending < 0 || int(s) < pending) {
				pending = int(s)
			}
		}
		if !inChanged && (pending < 0 || j <= pending) {
			break
		}
	}
}

// applyLiveness selects slot i's dispatch code and suppression bits from
// its live-out sets. Registers first: a slot is register-dead when it is
// eligible and none of the GPRs/XMMs it writes is live-out; it is
// suppressed (nr set, dead dispatch code) only when its flag writes — if
// it has any — are dead too, so a single code can drop the register
// write and the flag work together (partially-live slots stay on their
// flag-selected variant and write the register: never suppressing is
// always sound, and the choice is a pure function of the slot's summary
// and live-out sets, which keeps patched, fresh, scalar and batched
// selection identical). Flags as before: the flag-suppressed variant
// when no written flag is live, the szp-only variant when only SF/ZF/PF
// are, the full code otherwise. Only kind, nf and nr are ever touched —
// u.run stays the full handler, which is what lets the bounded loop
// recover all-live semantics from a copy with both bits cleared.
func (c *Compiled) applyLiveness(i int) {
	u := &c.ops[i]
	f := &c.flags[i]
	rg := &c.regs[i]
	liveF := f.liveOut & f.write
	deadF := f.write == 0 || liveF == 0
	nr := rg.eligible && deadF && rg.write&rg.liveOut == 0
	if nr != u.nr {
		if nr {
			c.nrCount++
		} else {
			c.nrCount--
		}
		u.nr = nr
	}
	if f.write != 0 {
		// The nf bit suppresses the flag store of handler-dispatched
		// slots — the shapes without an inline variant code (narrow
		// widths, memory sources, CL shifts, the mul/div families): every
		// specialised flag-writing handler guards its putFlags on it, and
		// the generic fallback honours it by restoring the flag words
		// around the interpreter switch (hGeneric).
		u.nf = liveF == 0
	}
	switch {
	case nr:
		u.kind = deadKind(rg.base, u.w >= 4)
	case f.write != 0:
		u.kind = liveKind(rg.base, liveF)
	default:
		// A previously-suppressed non-flag-writing slot (mov, lea, SSE)
		// whose destination came back live returns to its base code.
		u.kind = rg.base
	}
}

// baseKindOf maps a liveness-selected variant code back to its full-flag
// base code (identity for every other kind).
func baseKindOf(k microKind) microKind {
	switch k {
	case mkAddRRWNF, mkAddRRWZ:
		return mkAddRRW
	case mkAddRIWNF, mkAddRIWZ:
		return mkAddRIW
	case mkSubRRWNF, mkSubRRWZ:
		return mkSubRRW
	case mkSubRIWNF, mkSubRIWZ:
		return mkSubRIW
	case mkAndRRWNF:
		return mkAndRRW
	case mkAndRIWNF:
		return mkAndRIW
	case mkOrRRWNF:
		return mkOrRRW
	case mkOrRIWNF:
		return mkOrRIW
	case mkXorRRWNF:
		return mkXorRRW
	case mkXorRIWNF:
		return mkXorRIW
	case mkZeroWNF:
		return mkZeroW
	case mkCmpRRNF, mkCmpRRZ:
		return mkCmpRR
	case mkCmpRINF, mkCmpRIZ:
		return mkCmpRI
	case mkTestRRNF:
		return mkTestRR
	case mkTestRINF:
		return mkTestRI
	case mkIncWNF:
		return mkIncW
	case mkDecWNF:
		return mkDecW
	case mkNegWNF:
		return mkNegW
	case mkShlIWNF:
		return mkShlIW
	case mkShrIWNF:
		return mkShrIW
	case mkSarIWNF:
		return mkSarIW
	}
	return k
}

// liveKind picks the variant of a full-flag base code for the given set of
// live written flags: suppressed when empty, szp-only when the carry and
// overflow outputs are dead (only the arithmetic codes, whose CF/OF cost
// is separable, have one), the base code otherwise.
func liveKind(base microKind, live x64.FlagSet) microKind {
	if live == 0 {
		switch base {
		case mkAddRRW:
			return mkAddRRWNF
		case mkAddRIW:
			return mkAddRIWNF
		case mkSubRRW:
			return mkSubRRWNF
		case mkSubRIW:
			return mkSubRIWNF
		case mkAndRRW:
			return mkAndRRWNF
		case mkAndRIW:
			return mkAndRIWNF
		case mkOrRRW:
			return mkOrRRWNF
		case mkOrRIW:
			return mkOrRIWNF
		case mkXorRRW:
			return mkXorRRWNF
		case mkXorRIW:
			return mkXorRIWNF
		case mkZeroW:
			return mkZeroWNF
		case mkCmpRR:
			return mkCmpRRNF
		case mkCmpRI:
			return mkCmpRINF
		case mkTestRR:
			return mkTestRRNF
		case mkTestRI:
			return mkTestRINF
		case mkIncW:
			return mkIncWNF
		case mkDecW:
			return mkDecWNF
		case mkNegW:
			return mkNegWNF
		case mkShlIW:
			return mkShlIWNF
		case mkShrIW:
			return mkShrIWNF
		case mkSarIW:
			return mkSarIWNF
		}
		return base
	}
	if live&(x64.CF|x64.OF) == 0 {
		switch base {
		case mkAddRRW:
			return mkAddRRWZ
		case mkAddRIW:
			return mkAddRIWZ
		case mkSubRRW:
			return mkSubRRWZ
		case mkSubRIW:
			return mkSubRIWZ
		case mkCmpRR:
			return mkCmpRRZ
		case mkCmpRI:
			return mkCmpRIZ
		}
	}
	return base
}

// deadKind maps a full base dispatch code to its write-suppressed code —
// the shared mkDead* shape performing exactly the base body's reads (the
// mapping is many-to-one; these codes are fixed points of baseKindOf and
// liveKind, and re-selection always starts from the recorded base).
// Handler-dispatched shapes map to themselves: their handlers honour the
// nr bit directly (writeALU is the chokepoint for the ALU-shaped bodies;
// the mul/div/xchg/load/SSE-store-free handlers guard explicitly). wide
// distinguishes the movsx destinations, the one base code spanning both
// a full-kill and a merge write.
func deadKind(base microKind, wide bool) microKind {
	switch base {
	case mkMovRIW, mkZeroW, mkPXorZero:
		return mkDeadNone
	case mkMovRRW, mkMovdRX:
		return mkDeadR
	case mkMovsxRR:
		if wide {
			return mkDeadR
		}
		return mkDeadRN
	case mkAddRIW, mkSubRIW, mkAndRIW, mkOrRIW, mkXorRIW,
		mkIncW, mkDecW, mkNegW, mkNotW,
		mkShlIW, mkShrIW, mkSarIW:
		return mkDeadRD
	case mkAddRRW, mkSubRRW, mkAndRRW, mkOrRRW, mkXorRRW:
		return mkDeadRR
	case mkLeaW:
		return mkDeadEA
	case mkMovLoadW:
		return mkDeadLoad
	case mkCmovRRW:
		return mkDeadCmov
	case mkSetcc:
		return mkDeadSetcc
	case mkMovRIN, mkZeroN:
		return mkDeadN
	case mkMovRRN:
		return mkDeadRN
	case mkAddRIN, mkSubRIN, mkAndRIN, mkOrRIN, mkXorRIN,
		mkIncN, mkDecN, mkNegN:
		return mkDeadRDN
	case mkAddRRN, mkSubRRN, mkAndRRN, mkOrRRN, mkXorRRN:
		return mkDeadRRN
	case mkMovXX, mkPshufd:
		return mkDeadX
	case mkShufps, mkPAddW, mkPSubW, mkPMullW,
		mkPAddD, mkPSubD, mkPMullD, mkPAddQ,
		mkPAnd, mkPOr, mkPXor:
		return mkDeadXX
	case mkMovupsLoad:
		return mkDeadXLoad
	}
	return base
}

// RegFreeSlots reports how many register-writing slots the register-
// liveness pass proved dead and suppressed — via a shared mkDead*
// dispatch code on the inline shapes, via the nr bit inside the
// specialised handler otherwise. Maintained incrementally (O(1) read):
// the per-proposal coverage counters in mcmc read it on every patch.
func (c *Compiled) RegFreeSlots() int { return c.nrCount }

// RegWritingSlots reports how many slots write any GPR or XMM register at
// all, the denominator of the suppressed-register fraction tracked by
// BENCH_eval.json. Maintained incrementally (O(1) read).
func (c *Compiled) RegWritingSlots() int { return c.wrCount }

// FlagFreeSlots reports how many flag-writing slots the liveness pass
// proved dead and suppressed — via a flag-suppressed dispatch code on the
// inline shapes, via the nf bit on handler-dispatched ones (including the
// generic fallback, which restores the flag words around the interpreter
// switch) — so RunCompiled skips their flag computation and
// Flags/FlagsDef stores.
func (c *Compiled) FlagFreeSlots() int {
	n := 0
	for i := range c.ops {
		if c.ops[i].nf {
			n++
		}
	}
	return n
}

// FlagWritingSlots reports how many slots write any flag at all, the
// denominator of the flag-free fraction tracked by BENCH_eval.json.
func (c *Compiled) FlagWritingSlots() int {
	n := 0
	for i := range c.flags {
		if c.flags[i].write != 0 {
			n++
		}
	}
	return n
}
