package emu

import (
	"math/bits"

	"repro/internal/x64"
)

// Run executes a loop-free program from the current machine state and
// returns the outcome. The machine model is fully deterministic: where the
// Intel SDM leaves a result or flag undefined (bsf on zero, shift overflow
// flags past count 1, divide-fault register state) this model fixes a
// deterministic value, and the emulator and the symbolic validator agree on
// it. The undef counter tracks *data* undefinedness (uninitialised
// registers, flags and memory), which is what the paper's err(·) term
// penalises.
func (m *Machine) Run(p *x64.Program) Outcome {
	var out Outcome
	pc := 0
	for pc < len(p.Insts) {
		if out.Steps >= m.MaxSteps {
			out.Exhaust = true
			break
		}
		in := &p.Insts[pc]
		switch in.Op {
		case x64.UNUSED, x64.LABEL:
			pc++
			continue
		case x64.RET:
			pc = len(p.Insts)
			continue
		case x64.JMP:
			pc = m.jumpTarget(p, pc, in.Opd[0].Label)
			out.Steps++
			continue
		case x64.Jcc:
			taken := x64.EvalCond(in.CC, m.readFlagsFor(in.CC))
			out.Steps++
			if taken {
				pc = m.jumpTarget(p, pc, in.Opd[0].Label)
			} else {
				pc++
			}
			continue
		}
		m.exec(in)
		out.Steps++
		pc++
	}
	out.SigSegv = m.sigsegv
	out.SigFpe = m.sigfpe
	out.Undef = m.undef
	return out
}

// jumpTarget resolves a forward jump by scanning for the label. Programs
// are validated to contain only forward jumps, so scanning from pc+1 always
// terminates; a missing label (unvalidated candidate) falls off the end,
// which is safe.
func (m *Machine) jumpTarget(p *x64.Program, pc int, label int32) int {
	for i := pc + 1; i < len(p.Insts); i++ {
		if p.Insts[i].Op == x64.LABEL && p.Insts[i].Opd[0].Label == label {
			return i + 1
		}
	}
	return len(p.Insts)
}

// szpFlags sets SF, ZF and PF from a result at width w.
func (m *Machine) szpFlags(r uint64, w uint8) {
	m.setFlag(x64.SF, r&signBit(w) != 0)
	m.setFlag(x64.ZF, r&widthMask(w) == 0)
	m.setFlag(x64.PF, bits.OnesCount8(uint8(r))%2 == 0)
}

// addFlags sets all flags for r = a + b + carryIn at width w.
func (m *Machine) addFlags(a, b, carryIn, r uint64, w uint8) {
	mask := widthMask(w)
	a, b, r = a&mask, b&mask, r&mask
	var cf bool
	if w == 8 {
		t := a + b
		cf = t < a || t+carryIn < t
	} else {
		cf = (a+b+carryIn)>>widthBits(w) != 0
	}
	m.setFlag(x64.CF, cf)
	m.setFlag(x64.OF, (a^r)&(b^r)&signBit(w) != 0)
	m.szpFlags(r, w)
}

// subFlags sets all flags for r = a - b - borrowIn at width w.
func (m *Machine) subFlags(a, b, borrowIn, r uint64, w uint8) {
	mask := widthMask(w)
	a, b, r = a&mask, b&mask, r&mask
	cf := a < b || a-b < borrowIn
	m.setFlag(x64.CF, cf)
	m.setFlag(x64.OF, (a^b)&(a^r)&signBit(w) != 0)
	m.szpFlags(r, w)
}

// logicFlags sets flags for logical results (CF = OF = 0).
func (m *Machine) logicFlags(r uint64, w uint8) {
	m.setFlag(x64.CF, false)
	m.setFlag(x64.OF, false)
	m.szpFlags(r, w)
}

// exec interprets one non-control-flow instruction.
func (m *Machine) exec(in *x64.Inst) {
	switch in.Op {
	case x64.MOV, x64.MOVABS:
		m.writeOperand(in.Opd[1], m.readOperand(in.Opd[0]))

	case x64.MOVZX:
		m.writeOperand(in.Opd[1], m.readOperand(in.Opd[0]))

	case x64.MOVSX:
		v := m.readOperand(in.Opd[0])
		sw := in.Opd[0].Width
		v = uint64(signExtend(v, sw))
		m.writeOperand(in.Opd[1], v&widthMask(in.Opd[1].Width))

	case x64.LEA:
		// LEA computes the address without touching memory or the sandbox.
		a := m.effectiveAddr(in.Opd[0])
		m.writeOperand(in.Opd[1], a&widthMask(in.Opd[1].Width))

	case x64.XCHG:
		a := m.readOperand(in.Opd[0])
		b := m.readOperand(in.Opd[1])
		m.writeOperand(in.Opd[0], b)
		m.writeOperand(in.Opd[1], a)

	case x64.PUSH:
		v := m.readOperand(in.Opd[0])
		if m.RegDef&(1<<x64.RSP) == 0 {
			m.undef++
		}
		m.Regs[x64.RSP] -= 8
		m.regsWritten |= 1 << x64.RSP
		m.store(m.Regs[x64.RSP], 8, v)

	case x64.POP:
		if m.RegDef&(1<<x64.RSP) == 0 {
			m.undef++
		}
		v := m.load(m.Regs[x64.RSP], 8)
		m.Regs[x64.RSP] += 8
		m.regsWritten |= 1 << x64.RSP
		m.writeOperand(in.Opd[0], v)

	case x64.CMOVcc:
		taken := x64.EvalCond(in.CC, m.readFlagsFor(in.CC))
		src := m.readOperand(in.Opd[0])
		dst := m.readOperand(in.Opd[1])
		v := dst
		if taken {
			v = src
		}
		// Hardware always writes the destination (32-bit cmov zero-extends
		// even when the move does not occur).
		m.writeOperand(in.Opd[1], v)

	case x64.ADD, x64.ADC:
		w := in.Opd[1].Width
		a := m.readOperand(in.Opd[1])
		b := m.readOperand(in.Opd[0])
		var c uint64
		if in.Op == x64.ADC {
			if m.FlagsDef&x64.CF == 0 {
				m.undef++
			}
			if m.Flags&x64.CF != 0 {
				c = 1
			}
		}
		r := (a + b + c) & widthMask(w)
		m.addFlags(a, b, c, r, w)
		m.writeOperand(in.Opd[1], r)

	case x64.SUB, x64.SBB:
		w := in.Opd[1].Width
		// sub r, r is the other dependency-breaking zero idiom.
		if in.Op == x64.SUB && sameReg(in.Opd[0], in.Opd[1]) {
			m.subFlags(0, 0, 0, 0, w)
			m.writeOperand(in.Opd[1], 0)
			return
		}
		a := m.readOperand(in.Opd[1])
		b := m.readOperand(in.Opd[0])
		var c uint64
		if in.Op == x64.SBB {
			if m.FlagsDef&x64.CF == 0 {
				m.undef++
			}
			if m.Flags&x64.CF != 0 {
				c = 1
			}
		}
		r := (a - b - c) & widthMask(w)
		m.subFlags(a, b, c, r, w)
		m.writeOperand(in.Opd[1], r)

	case x64.CMP:
		w := in.Opd[1].Width
		if in.Opd[1].Kind == x64.KindImm {
			w = in.Opd[0].Width
		}
		a := m.readOperand(in.Opd[1])
		b := m.readOperand(in.Opd[0])
		r := (a - b) & widthMask(w)
		m.subFlags(a, b, 0, r, w)

	case x64.TEST:
		w := in.Opd[1].Width
		a := m.readOperand(in.Opd[1])
		b := m.readOperand(in.Opd[0])
		m.logicFlags(a&b, w)

	case x64.NEG:
		w := in.Opd[0].Width
		a := m.readOperand(in.Opd[0])
		r := (-a) & widthMask(w)
		m.setFlag(x64.CF, a&widthMask(w) != 0)
		m.setFlag(x64.OF, a&widthMask(w) == signBit(w))
		m.szpFlags(r, w)
		m.writeOperand(in.Opd[0], r)

	case x64.INC, x64.DEC:
		w := in.Opd[0].Width
		a := m.readOperand(in.Opd[0])
		var r uint64
		if in.Op == x64.INC {
			r = (a + 1) & widthMask(w)
			m.setFlag(x64.OF, r&widthMask(w) == signBit(w))
		} else {
			r = (a - 1) & widthMask(w)
			m.setFlag(x64.OF, a&widthMask(w) == signBit(w))
		}
		m.szpFlags(r, w)
		m.writeOperand(in.Opd[0], r)

	case x64.AND, x64.OR, x64.XOR:
		w := in.Opd[1].Width
		// The xor-zero idiom: xor r, r is defined regardless of r's
		// contents (hardware treats it as a dependency-breaking zero).
		if in.Op == x64.XOR && sameReg(in.Opd[0], in.Opd[1]) {
			m.logicFlags(0, w)
			m.writeOperand(in.Opd[1], 0)
			return
		}
		a := m.readOperand(in.Opd[1])
		b := m.readOperand(in.Opd[0])
		var r uint64
		switch in.Op {
		case x64.AND:
			r = a & b
		case x64.OR:
			r = a | b
		case x64.XOR:
			r = a ^ b
		}
		r &= widthMask(w)
		m.logicFlags(r, w)
		m.writeOperand(in.Opd[1], r)

	case x64.NOT:
		w := in.Opd[0].Width
		a := m.readOperand(in.Opd[0])
		m.writeOperand(in.Opd[0], ^a&widthMask(w))

	case x64.IMUL:
		w := in.Opd[1].Width
		a := signExtend(m.readOperand(in.Opd[1]), w)
		b := signExtend(m.readOperand(in.Opd[0]), w)
		hi, lo := mulSigned(a, b)
		r := uint64(lo) & widthMask(w)
		m.imulFlags(hi, lo, r, w)
		m.writeOperand(in.Opd[1], r)

	case x64.IMUL3:
		w := in.Opd[2].Width
		a := signExtend(m.readOperand(in.Opd[1]), w)
		b := signExtend(uint64(in.Opd[0].Imm)&widthMask(w), w)
		hi, lo := mulSigned(a, b)
		r := uint64(lo) & widthMask(w)
		m.imulFlags(hi, lo, r, w)
		m.writeOperand(in.Opd[2], r)

	case x64.IMUL1, x64.MUL:
		m.execWideningMul(in)

	case x64.DIV, x64.IDIV:
		m.execDivide(in)

	case x64.SHL, x64.SHR, x64.SAR, x64.ROL, x64.ROR:
		m.execShift(in)

	case x64.SHLD, x64.SHRD:
		m.execDoubleShift(in)

	case x64.POPCNT:
		w := in.Opd[1].Width
		a := m.readOperand(in.Opd[0])
		r := uint64(bits.OnesCount64(a))
		m.setFlag(x64.CF, false)
		m.setFlag(x64.OF, false)
		m.setFlag(x64.SF, false)
		m.setFlag(x64.PF, false)
		m.setFlag(x64.ZF, a&widthMask(w) == 0)
		m.writeOperand(in.Opd[1], r)

	case x64.BSF, x64.BSR:
		w := in.Opd[1].Width
		a := m.readOperand(in.Opd[0]) & widthMask(w)
		var r uint64
		if a == 0 {
			// Deterministic model: result 0 when the source is zero.
			m.setFlag(x64.ZF, true)
		} else {
			m.setFlag(x64.ZF, false)
			if in.Op == x64.BSF {
				r = uint64(bits.TrailingZeros64(a))
			} else {
				r = uint64(63 - bits.LeadingZeros64(a))
			}
		}
		m.setFlag(x64.CF, false)
		m.setFlag(x64.OF, false)
		m.setFlag(x64.SF, false)
		m.setFlag(x64.PF, false)
		m.writeOperand(in.Opd[1], r)

	case x64.BSWAP:
		w := in.Opd[0].Width
		a := m.readOperand(in.Opd[0])
		if w == 4 {
			m.writeOperand(in.Opd[0], uint64(bits.ReverseBytes32(uint32(a))))
		} else {
			m.writeOperand(in.Opd[0], bits.ReverseBytes64(a))
		}

	case x64.BT:
		w := in.Opd[1].Width
		a := m.readOperand(in.Opd[1])
		idx := m.readOperand(in.Opd[0]) % uint64(widthBits(w))
		m.setFlag(x64.CF, a>>idx&1 != 0)

	case x64.SETcc:
		taken := x64.EvalCond(in.CC, m.readFlagsFor(in.CC))
		v := uint64(0)
		if taken {
			v = 1
		}
		m.writeOperand(in.Opd[0], v)

	default:
		m.execSSE(in)
	}
}

// imulFlags sets CF = OF = (the full product does not fit the destination
// width), plus deterministic SF/ZF/PF from the truncated result (hardware
// leaves them undefined; our machine model defines them).
func (m *Machine) imulFlags(hi int64, lo int64, r uint64, w uint8) {
	var overflow bool
	if w == 8 {
		overflow = hi != lo>>63
	} else {
		full := lo // product already fits in 64 bits for w < 8
		overflow = full != signExtend(r, w)
	}
	m.setFlag(x64.CF, overflow)
	m.setFlag(x64.OF, overflow)
	m.szpFlags(r, w)
}

// execWideningMul implements the one-operand widening multiplies:
// RDX:RAX = RAX * src (64-bit) or EDX:EAX = EAX * src (32-bit).
func (m *Machine) execWideningMul(in *x64.Inst) {
	w := in.Opd[0].Width
	src := m.readOperand(in.Opd[0])
	a := m.readGPR(x64.RAX, w)
	var hiOut, loOut uint64
	var overflow bool
	if in.Op == x64.MUL {
		if w == 8 {
			hi, lo := bits.Mul64(a, src)
			hiOut, loOut = hi, lo
			overflow = hi != 0
		} else {
			full := a * src
			loOut = full & widthMask(w)
			hiOut = full >> widthBits(w) & widthMask(w)
			overflow = hiOut != 0
		}
	} else { // IMUL1
		sa, sb := signExtend(a, w), signExtend(src, w)
		if w == 8 {
			hi, lo := mulSigned(sa, sb)
			hiOut, loOut = uint64(hi), uint64(lo)
			overflow = hi != lo>>63
		} else {
			full := sa * sb
			loOut = uint64(full) & widthMask(w)
			hiOut = uint64(full>>widthBits(w)) & widthMask(w)
			overflow = full != signExtend(uint64(full)&widthMask(w), w)
		}
	}
	m.writeGPR(x64.RAX, w, loOut)
	m.writeGPR(x64.RDX, w, hiOut)
	m.setFlag(x64.CF, overflow)
	m.setFlag(x64.OF, overflow)
	m.szpFlags(loOut, w)
}

// execDivide implements div/idiv of RDX:RAX by the operand. Divide faults
// (zero divisor or quotient overflow) count a sigfpe and zero the outputs,
// the deterministic stand-in for the trapped instruction of §5.1.
func (m *Machine) execDivide(in *x64.Inst) {
	w := in.Opd[0].Width
	d := m.readOperand(in.Opd[0])
	lo := m.readGPR(x64.RAX, w)
	hi := m.readGPR(x64.RDX, w)

	fault := func() {
		m.sigfpe++
		m.writeGPR(x64.RAX, w, 0)
		m.writeGPR(x64.RDX, w, 0)
		m.setAllFlagsZero()
	}

	if in.Op == x64.DIV {
		if d == 0 || hi >= d && w == 8 {
			fault()
			return
		}
		var q, r uint64
		if w == 8 {
			q, r = bits.Div64(hi, lo, d)
		} else {
			full := hi<<widthBits(w) | lo
			if full/d > widthMask(w) {
				fault()
				return
			}
			q, r = full/d, full%d
		}
		m.writeGPR(x64.RAX, w, q)
		m.writeGPR(x64.RDX, w, r)
	} else { // IDIV
		if d == 0 {
			fault()
			return
		}
		if w == 8 {
			// Signed 128/64 divide. Only support dividends that fit 64
			// bits after sign extension check; otherwise fault (this is
			// the quotient-overflow case for all practical kernels).
			if hi != uint64(int64(lo)>>63) {
				fault()
				return
			}
			n, dv := int64(lo), int64(d)
			if n == -1<<63 && dv == -1 {
				fault()
				return
			}
			m.writeGPR(x64.RAX, w, uint64(n/dv))
			m.writeGPR(x64.RDX, w, uint64(n%dv))
		} else {
			full := int64(hi<<widthBits(w) | lo) // within 64 bits for w == 4
			full = signExtend(uint64(full), 8)   // already 64-bit
			dv := signExtend(d, w)
			q := full / dv
			if q != signExtend(uint64(q)&widthMask(w), w) {
				fault()
				return
			}
			m.writeGPR(x64.RAX, w, uint64(q)&widthMask(w))
			m.writeGPR(x64.RDX, w, uint64(full%dv)&widthMask(w))
		}
	}
	m.setAllFlagsZero()
}

// setAllFlagsZero fixes all five flags to zero (our deterministic model for
// flag states hardware leaves undefined after mul/div).
func (m *Machine) setAllFlagsZero() {
	for _, f := range []x64.FlagSet{x64.CF, x64.PF, x64.ZF, x64.SF, x64.OF} {
		m.setFlag(f, false)
	}
}

// execShift implements shl/shr/sar/rol/ror. A dynamic count of zero leaves
// all flags untouched, as on hardware.
func (m *Machine) execShift(in *x64.Inst) {
	w := in.Opd[1].Width
	bitsW := widthBits(w)
	var count uint64
	if in.Opd[0].Kind == x64.KindImm {
		count = uint64(in.Opd[0].Imm)
	} else {
		count = m.readGPR(x64.RCX, 1)
	}
	if w == 8 {
		count &= 63
	} else {
		count &= 31
	}
	a := m.readOperand(in.Opd[1])
	if count == 0 {
		m.writeOperand(in.Opd[1], a)
		return
	}
	var r uint64
	var cf bool
	switch in.Op {
	case x64.SHL:
		r = a << count & widthMask(w)
		cf = count <= uint64(bitsW) && a>>(uint64(bitsW)-count)&1 != 0
		m.setFlag(x64.CF, cf)
		m.setFlag(x64.OF, (r&signBit(w) != 0) != cf)
		m.szpFlags(r, w)
	case x64.SHR:
		r = a >> count
		cf = a>>(count-1)&1 != 0
		m.setFlag(x64.CF, cf)
		m.setFlag(x64.OF, a&signBit(w) != 0)
		m.szpFlags(r, w)
	case x64.SAR:
		r = uint64(signExtend(a, w)>>count) & widthMask(w)
		// The last bit shifted out, reading the sign-extended value so
		// that counts past the width see the sign bit (the deterministic
		// model the validator mirrors).
		cf = signExtend(a, w)>>min(count-1, 63)&1 != 0
		m.setFlag(x64.CF, cf)
		m.setFlag(x64.OF, false)
		m.szpFlags(r, w)
	case x64.ROL:
		c := count % uint64(bitsW)
		r = (a<<c | a>>(uint64(bitsW)-c)) & widthMask(w)
		if c == 0 {
			r = a
		}
		cf = r&1 != 0
		m.setFlag(x64.CF, cf)
		m.setFlag(x64.OF, (r&signBit(w) != 0) != cf)
	case x64.ROR:
		c := count % uint64(bitsW)
		r = (a>>c | a<<(uint64(bitsW)-c)) & widthMask(w)
		if c == 0 {
			r = a
		}
		m.setFlag(x64.CF, r&signBit(w) != 0)
		m.setFlag(x64.OF, (r&signBit(w) != 0) != (r&(signBit(w)>>1) != 0))
	}
	m.writeOperand(in.Opd[1], r)
}

// execDoubleShift implements shld/shrd with an immediate count.
func (m *Machine) execDoubleShift(in *x64.Inst) {
	w := in.Opd[2].Width
	bitsW := uint64(widthBits(w))
	count := uint64(in.Opd[0].Imm)
	if w == 8 {
		count &= 63
	} else {
		count &= 31
	}
	src := m.readOperand(in.Opd[1])
	dst := m.readOperand(in.Opd[2])
	if count == 0 {
		m.writeOperand(in.Opd[2], dst)
		return
	}
	var r uint64
	var cf bool
	if in.Op == x64.SHLD {
		r = (dst<<count | src>>(bitsW-count)) & widthMask(w)
		cf = dst>>(bitsW-count)&1 != 0
	} else {
		r = (dst>>count | src<<(bitsW-count)) & widthMask(w)
		cf = dst>>(count-1)&1 != 0
	}
	m.setFlag(x64.CF, cf)
	m.setFlag(x64.OF, (r&signBit(w) != 0) != (dst&signBit(w) != 0))
	m.szpFlags(r, w)
	m.writeOperand(in.Opd[2], r)
}

// sameReg reports whether two operands name the same register view.
func sameReg(a, b x64.Operand) bool {
	return a.Kind == x64.KindReg && b.Kind == x64.KindReg &&
		a.Reg == b.Reg && a.Width == b.Width
}

// signExtend sign-extends a width-w value to 64 bits.
func signExtend(v uint64, w uint8) int64 {
	switch w {
	case 1:
		return int64(int8(v))
	case 2:
		return int64(int16(v))
	case 4:
		return int64(int32(v))
	}
	return int64(v)
}

// mulSigned returns the full 128-bit signed product of a and b.
func mulSigned(a, b int64) (hi, lo int64) {
	h, l := bits.Mul64(uint64(a), uint64(b))
	h64 := int64(h)
	if a < 0 {
		h64 -= b
	}
	if b < 0 {
		h64 -= a
	}
	return h64, int64(l)
}
