// Package emu implements a sandboxed emulator for the x64 subset ISA with a
// two-phase, decode-once evaluation pipeline.
//
// It plays the role of the hardware emulator in §4.1 of the paper: candidate
// rewrites are run against testcases at high throughput, and the three
// classes of undefined behaviour the cost function penalises are trapped and
// counted rather than allowed to crash the process — dereferences outside
// the sandbox (sigsegv), divide faults (sigfpe), and reads from undefined
// registers, flags or memory (undef). Invalid dereferences read as constant
// zero and invalid stores are dropped, exactly as described in §5.1.
//
// Execution comes in two forms:
//
//   - Machine.Run interprets an *x64.Program directly, re-decoding each
//     instruction through the opcode switch on every execution. It is the
//     semantic reference: simple, obviously faithful, and kept alive so the
//     differential tests can pin the fast path against it.
//   - Compile lowers a program once into a *Compiled — per-slot handlers
//     with operands, widths, masks and jump targets pre-resolved — and
//     Machine.RunCompiled dispatches over that form. The MCMC search
//     evaluates millions of candidates that differ in at most two slots
//     from their predecessor, so Compiled supports O(1) slot patching
//     instead of recompilation (see compile.go).
//
// Both forms agree on every observable (Outcome counters, registers, flags,
// memory, definedness); randomized differential tests enforce this.
package emu

import (
	"fmt"
	"math/bits"

	"repro/internal/x64"
)

// MemImage describes one contiguous memory segment of a testcase: its
// contents, which bytes hold defined data, and which bytes are inside the
// sandbox (dereferenceable because the target dereferenced them).
type MemImage struct {
	Base  uint64
	Data  []byte
	Def   []bool
	Valid []bool
}

// Clone returns a deep copy of the image.
func (im MemImage) Clone() MemImage {
	out := MemImage{Base: im.Base}
	out.Data = append([]byte(nil), im.Data...)
	out.Def = append([]bool(nil), im.Def...)
	out.Valid = append([]bool(nil), im.Valid...)
	return out
}

// Snapshot is a complete initial machine state: a testcase input in the
// sense of §5.1 (registers, flags, and the first-dereferenced memory values
// recorded by instrumentation).
type Snapshot struct {
	Regs     [x64.NumGPR]uint64
	RegDef   uint16 // bitset: which registers hold defined data
	Xmm      [x64.NumXMM][2]uint64
	XmmDef   uint16
	Flags    x64.FlagSet
	FlagsDef x64.FlagSet
	Mem      []MemImage
}

// Clone returns a deep copy of the snapshot.
func (s *Snapshot) Clone() *Snapshot {
	out := *s
	out.Mem = make([]MemImage, len(s.Mem))
	for i, im := range s.Mem {
		out.Mem[i] = im.Clone()
	}
	return &out
}

// segment is the machine's mutable view of one MemImage. dirtyLo/dirtyHi
// bound the bytes stores have touched since the last snapshot load (empty
// when dirtyHi <= dirtyLo), so a cached reload restores only that range;
// valid is never mutated by execution and needs no restore at all.
type segment struct {
	base    uint64
	data    []byte
	def     []bool
	valid   []bool
	dirtyLo int
	dirtyHi int
}

// Outcome summarises one execution.
type Outcome struct {
	Steps   int
	SigSegv int // dereferences outside the sandbox
	SigFpe  int // divide faults
	Undef   int // reads of undefined registers, flags or memory bytes
	Exhaust bool
}

// Machine is a reusable interpreter. A Machine is not safe for concurrent
// use; each search thread owns one.
type Machine struct {
	Regs     [x64.NumGPR]uint64
	RegDef   uint16
	Xmm      [x64.NumXMM][2]uint64
	XmmDef   uint16
	Flags    x64.FlagSet
	FlagsDef x64.FlagSet

	segs []segment

	// Error counters for the current run.
	sigsegv int
	sigfpe  int
	undef   int

	// MaxSteps bounds one execution; the default covers any loop-free
	// sequence of the paper's length plus slack.
	MaxSteps int

	// trace, when non-nil, records every byte address the program
	// dereferences. It stands in for the PinTool instrumentation of §5.1:
	// the addresses the target touches define the sandbox for rewrites.
	trace *Trace

	// lastSnap, memDirty and xmmDirty drive LoadSnapshotCached: when the
	// machine is pinned to one testcase (the compiled evaluation pipeline
	// runs one machine per testcase) and the last execution never stored to
	// memory, reloading the same snapshot skips the segment copies
	// entirely; if it never wrote an XMM register, the 256-byte XMM restore
	// is skipped too.
	lastSnap *Snapshot
	memDirty bool
	xmmDirty bool

	// regsWritten is the bitset of GPRs written since the last snapshot
	// load; the cached reload restores exactly those instead of copying
	// the whole register file. Every GPR mutation path (writeGPR, the
	// compiled setReg, and the direct rsp updates of push/pop) records
	// into it.
	regsWritten uint16
}

// Trace records the byte addresses dereferenced during instrumented runs.
type Trace struct {
	Reads  map[uint64]struct{}
	Writes map[uint64]struct{}
}

// NewTrace returns an empty trace.
func NewTrace() *Trace {
	return &Trace{Reads: map[uint64]struct{}{}, Writes: map[uint64]struct{}{}}
}

// SetTrace installs (or, with nil, removes) instrumentation on the machine.
func (m *Machine) SetTrace(t *Trace) { m.trace = t }

// New returns a machine with an empty address space.
func New() *Machine {
	return &Machine{MaxSteps: 4096}
}

// LoadSnapshot resets the machine to the given initial state, reusing
// existing segment storage when shapes match (the hot path re-runs the same
// testcases millions of times).
func (m *Machine) LoadSnapshot(s *Snapshot) {
	m.Regs = s.Regs
	m.RegDef = s.RegDef
	m.Xmm = s.Xmm
	m.XmmDef = s.XmmDef
	m.Flags = s.Flags
	m.FlagsDef = s.FlagsDef
	m.sigsegv, m.sigfpe, m.undef = 0, 0, 0

	if len(m.segs) != len(s.Mem) {
		m.segs = make([]segment, len(s.Mem))
	}
	for i := range s.Mem {
		im := &s.Mem[i]
		sg := &m.segs[i]
		if sg.base != im.Base || len(sg.data) != len(im.Data) {
			sg.base = im.Base
			sg.data = make([]byte, len(im.Data))
			sg.def = make([]bool, len(im.Def))
			sg.valid = make([]bool, len(im.Valid))
		}
		copy(sg.data, im.Data)
		copy(sg.def, im.Def)
		copy(sg.valid, im.Valid)
		sg.dirtyLo, sg.dirtyHi = len(sg.data), 0
	}
	m.lastSnap = s
	m.memDirty = false
	m.xmmDirty = false
	m.regsWritten = 0
}

// LoadSnapshotCached is LoadSnapshot for a machine pinned to one testcase:
// when s is the snapshot loaded last time and no store has dirtied the
// segments since, only registers, flags and fault counters are restored
// (and the XMM file only if an XMM write dirtied it). The caller must
// treat a snapshot's contents as immutable while reusing it this way
// (testcase snapshots are).
func (m *Machine) LoadSnapshotCached(s *Snapshot) {
	if m.lastSnap != s {
		m.LoadSnapshot(s)
		return
	}
	if m.memDirty {
		for i := range m.segs {
			sg := &m.segs[i]
			if sg.dirtyHi <= sg.dirtyLo {
				continue
			}
			im := &s.Mem[i]
			copy(sg.data[sg.dirtyLo:sg.dirtyHi], im.Data[sg.dirtyLo:sg.dirtyHi])
			copy(sg.def[sg.dirtyLo:sg.dirtyHi], im.Def[sg.dirtyLo:sg.dirtyHi])
			sg.dirtyLo, sg.dirtyHi = len(sg.data), 0
		}
		m.memDirty = false
	}
	for w := m.regsWritten; w != 0; w &= w - 1 {
		r := bits.TrailingZeros16(w)
		m.Regs[r] = s.Regs[r]
	}
	m.regsWritten = 0
	m.RegDef = s.RegDef
	if m.xmmDirty {
		m.Xmm = s.Xmm
		m.XmmDef = s.XmmDef
		m.xmmDirty = false
	}
	m.Flags = s.Flags
	m.FlagsDef = s.FlagsDef
	m.sigsegv, m.sigfpe, m.undef = 0, 0, 0
}

// findSeg returns the segment containing [addr, addr+n), or nil.
func (m *Machine) findSeg(addr uint64, n int) *segment {
	for i := range m.segs {
		sg := &m.segs[i]
		if addr >= sg.base && addr-sg.base+uint64(n) <= uint64(len(sg.data)) {
			return sg
		}
	}
	return nil
}

// loadBytes reads n bytes at addr under the sandbox discipline: any byte
// outside the sandbox makes the whole access fault (counted once) and the
// access reads as zero; undefined bytes count one undef read.
func (m *Machine) loadBytes(addr uint64, n int, out []byte) {
	if m.trace != nil {
		for i := 0; i < n; i++ {
			m.trace.Reads[addr+uint64(i)] = struct{}{}
		}
	}
	sg := m.findSeg(addr, n)
	if sg == nil {
		m.sigsegv++
		for i := 0; i < n; i++ {
			out[i] = 0
		}
		return
	}
	off := addr - sg.base
	for _, ok := range sg.valid[off : off+uint64(n)] {
		if !ok {
			m.sigsegv++
			for i := 0; i < n; i++ {
				out[i] = 0
			}
			return
		}
	}
	sawUndef := false
	for _, d := range sg.def[off : off+uint64(n)] {
		if !d {
			sawUndef = true
		}
	}
	copy(out, sg.data[off:off+uint64(n)])
	if sawUndef {
		m.undef++
	}
}

// storeBytes writes n bytes at addr; stores outside the sandbox are dropped
// after counting a fault.
func (m *Machine) storeBytes(addr uint64, n int, in []byte) {
	if m.trace != nil {
		for i := 0; i < n; i++ {
			m.trace.Writes[addr+uint64(i)] = struct{}{}
		}
	}
	sg := m.findSeg(addr, n)
	if sg == nil {
		m.sigsegv++
		return
	}
	off := addr - sg.base
	for _, ok := range sg.valid[off : off+uint64(n)] {
		if !ok {
			m.sigsegv++
			return
		}
	}
	copy(sg.data[off:off+uint64(n)], in[:n])
	def := sg.def[off : off+uint64(n)]
	for i := range def {
		def[i] = true
	}
	if int(off) < sg.dirtyLo {
		sg.dirtyLo = int(off)
	}
	if int(off)+n > sg.dirtyHi {
		sg.dirtyHi = int(off) + n
	}
	m.memDirty = true
}

// load reads an n-byte little-endian value (n <= 8).
func (m *Machine) load(addr uint64, n int) uint64 {
	var buf [8]byte
	m.loadBytes(addr, n, buf[:n])
	v := uint64(0)
	for i := n - 1; i >= 0; i-- {
		v = v<<8 | uint64(buf[i])
	}
	return v
}

// store writes an n-byte little-endian value (n <= 8).
func (m *Machine) store(addr uint64, n int, v uint64) {
	var buf [8]byte
	for i := 0; i < n; i++ {
		buf[i] = byte(v >> (8 * i))
	}
	m.storeBytes(addr, n, buf[:n])
}

// MemByte returns the current contents and definedness of one byte, for
// cost-function comparison of live memory outputs.
func (m *Machine) MemByte(addr uint64) (b byte, defined, ok bool) {
	sg := m.findSeg(addr, 1)
	if sg == nil {
		return 0, false, false
	}
	off := addr - sg.base
	return sg.data[off], sg.def[off], true
}

// RegValue returns the current value of a register viewed at width bytes.
func (m *Machine) RegValue(r x64.Reg, width uint8) uint64 {
	return m.Regs[r] & widthMask(width)
}

// effectiveAddr computes base + index*scale + disp, counting undefined
// address registers.
func (m *Machine) effectiveAddr(o x64.Operand) uint64 {
	var a uint64
	if o.Base != x64.NoReg {
		if m.RegDef&(1<<o.Base) == 0 {
			m.undef++
		}
		a += m.Regs[o.Base]
	}
	if o.Index != x64.NoReg {
		if m.RegDef&(1<<o.Index) == 0 {
			m.undef++
		}
		a += m.Regs[o.Index] * uint64(o.Scale)
	}
	return a + uint64(int64(o.Disp))
}

func widthMask(w uint8) uint64 {
	switch w {
	case 1:
		return 0xff
	case 2:
		return 0xffff
	case 4:
		return 0xffffffff
	case 8:
		return ^uint64(0)
	}
	return 0
}

func widthBits(w uint8) uint { return uint(w) * 8 }

func signBit(w uint8) uint64 { return 1 << (widthBits(w) - 1) }

// readGPR reads a register view, counting undefined reads.
func (m *Machine) readGPR(r x64.Reg, w uint8) uint64 {
	if m.RegDef&(1<<r) == 0 {
		m.undef++
	}
	return m.Regs[r] & widthMask(w)
}

// writeGPR writes a register view with hardware merge semantics: 32-bit
// writes zero the upper half; 8- and 16-bit writes merge — and merging
// with an undefined register reads its undefined upper bits, which counts
// against the undef term just like any other undefined read.
func (m *Machine) writeGPR(r x64.Reg, w uint8, v uint64) {
	m.regsWritten |= 1 << r
	switch w {
	case 8:
		m.Regs[r] = v
	case 4:
		m.Regs[r] = v & 0xffffffff
	case 2:
		if m.RegDef&(1<<r) == 0 {
			m.undef++
		}
		m.Regs[r] = m.Regs[r]&^uint64(0xffff) | v&0xffff
	case 1:
		if m.RegDef&(1<<r) == 0 {
			m.undef++
		}
		m.Regs[r] = m.Regs[r]&^uint64(0xff) | v&0xff
	}
	m.RegDef |= 1 << r
}

// readOperand reads a GPR, immediate or memory operand as a value masked to
// its width.
func (m *Machine) readOperand(o x64.Operand) uint64 {
	switch o.Kind {
	case x64.KindReg:
		return m.readGPR(o.Reg, o.Width)
	case x64.KindImm:
		return uint64(o.Imm) & widthMask(o.Width)
	case x64.KindMem:
		return m.load(m.effectiveAddr(o), int(o.Width))
	}
	panic(fmt.Sprintf("emu: readOperand on %v", o.Kind))
}

// writeOperand writes a GPR or memory operand.
func (m *Machine) writeOperand(o x64.Operand, v uint64) {
	switch o.Kind {
	case x64.KindReg:
		m.writeGPR(o.Reg, o.Width, v)
	case x64.KindMem:
		m.store(m.effectiveAddr(o), int(o.Width), v)
	default:
		panic(fmt.Sprintf("emu: writeOperand on %v", o.Kind))
	}
}

// readXmm reads an XMM register, counting undefined reads.
func (m *Machine) readXmm(r x64.Reg) [2]uint64 {
	if m.XmmDef&(1<<r) == 0 {
		m.undef++
	}
	return m.Xmm[r]
}

func (m *Machine) writeXmm(r x64.Reg, v [2]uint64) {
	m.Xmm[r] = v
	m.XmmDef |= 1 << r
	m.xmmDirty = true
}

// readFlags checks definedness of the flags a condition inspects and
// returns the current flag valuation.
func (m *Machine) readFlagsFor(cc x64.Cond) x64.FlagSet {
	need := x64.FlagsReadByCond(cc)
	if need&^m.FlagsDef != 0 {
		m.undef++
	}
	return m.Flags
}

// setFlag sets or clears one flag and marks it defined.
func (m *Machine) setFlag(f x64.FlagSet, on bool) {
	if on {
		m.Flags |= f
	} else {
		m.Flags &^= f
	}
	m.FlagsDef |= f
}
