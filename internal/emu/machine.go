// Package emu implements a sandboxed emulator for the x64 subset ISA with a
// two-phase, decode-once evaluation pipeline.
//
// It plays the role of the hardware emulator in §4.1 of the paper: candidate
// rewrites are run against testcases at high throughput, and the three
// classes of undefined behaviour the cost function penalises are trapped and
// counted rather than allowed to crash the process — dereferences outside
// the sandbox (sigsegv), divide faults (sigfpe), and reads from undefined
// registers, flags or memory (undef). Invalid dereferences read as constant
// zero and invalid stores are dropped, exactly as described in §5.1.
//
// Execution comes in two forms:
//
//   - Machine.Run interprets an *x64.Program directly, re-decoding each
//     instruction through the opcode switch on every execution. It is the
//     semantic reference: simple, obviously faithful, and kept alive so the
//     differential tests can pin the fast path against it.
//   - Compile lowers a program once into a *Compiled — per-slot handlers
//     with operands, widths, masks and jump targets pre-resolved — and
//     Machine.RunCompiled dispatches over that form. The MCMC search
//     evaluates millions of candidates that differ in at most two slots
//     from their predecessor, so Compiled supports O(1) slot patching
//     instead of recompilation (see compile.go). A backward liveness pass
//     additionally suppresses the flag computation of slots whose writes
//     no condition consumer or exit can observe, and — in the same walk,
//     over packed 16-bit GPR/XMM sets — the register stores of slots none
//     of whose written registers is live-out, re-selecting variants
//     incrementally as patches shift liveness (see liveness.go).
//
// Both forms agree on every observable (Outcome counters, registers, flags,
// memory, definedness); randomized differential tests enforce this. Under
// CompileLive the exit observation narrows to a kernel's live-out masks:
// final values and definedness of non-live registers may then differ from
// a full run, while every cost observable — live-out state, memory, flags
// at reads, the error counters — is preserved.
package emu

import (
	"encoding/binary"
	"fmt"
	"math/bits"

	"repro/internal/x64"
)

// MemImage describes one contiguous memory segment of a testcase: its
// contents, which bytes hold defined data, and which bytes are inside the
// sandbox (dereferenceable because the target dereferenced them).
type MemImage struct {
	Base  uint64
	Data  []byte
	Def   []bool
	Valid []bool
}

// Clone returns a deep copy of the image.
func (im MemImage) Clone() MemImage {
	out := MemImage{Base: im.Base}
	out.Data = append([]byte(nil), im.Data...)
	out.Def = append([]bool(nil), im.Def...)
	out.Valid = append([]bool(nil), im.Valid...)
	return out
}

// Snapshot is a complete initial machine state: a testcase input in the
// sense of §5.1 (registers, flags, and the first-dereferenced memory values
// recorded by instrumentation).
type Snapshot struct {
	Regs     [x64.NumGPR]uint64
	RegDef   uint16 // bitset: which registers hold defined data
	Xmm      [x64.NumXMM][2]uint64
	XmmDef   uint16
	Flags    x64.FlagSet
	FlagsDef x64.FlagSet
	Mem      []MemImage
}

// Clone returns a deep copy of the snapshot.
func (s *Snapshot) Clone() *Snapshot {
	out := *s
	out.Mem = make([]MemImage, len(s.Mem))
	for i, im := range s.Mem {
		out.Mem[i] = im.Clone()
	}
	return &out
}

// segment is the machine's mutable view of one MemImage. Definedness and
// sandbox validity are kept as bitsets (one bit per byte), so the per-access
// checks of loadBytes/storeBytes are one or two word operations instead of
// byte loops — the sandbox accounting was the hottest path of the
// memory-bound kernels. dirtyLo/dirtyHi bound the bytes stores have touched
// since the last snapshot load (empty when dirtyHi <= dirtyLo), so a cached
// reload restores only that range; valid is never mutated by execution and
// needs no restore at all. snapDef caches the snapshot's definedness bits so
// the dirty-range restore is a word copy.
type segment struct {
	base    uint64
	data    []byte
	def     []uint64
	valid   []uint64
	snapDef []uint64
	dirtyLo int
	dirtyHi int
}

// packedMem is the bitset form of one MemImage's definedness and validity
// planes. Cached per snapshot: valid never mutates during execution, and
// def serves as the pristine image dirty-range restores copy from.
type packedMem struct {
	def   []uint64
	valid []uint64
}

// bitWords returns the bitset length for n bytes, padded by one word so
// two-word extractions near the end never bounds-check out.
func bitWords(n int) int { return n/64 + 2 }

// packBools fills a bitset from a []bool (snapshot images keep the
// friendly representation; the machine runs on bits).
func packBools(dst []uint64, src []bool) {
	for i := range dst {
		dst[i] = 0
	}
	for i, ok := range src {
		if ok {
			dst[i/64] |= 1 << (i % 64)
		}
	}
}

// allSet reports whether bits [off, off+n) are all one (n <= 48).
func allSet(bits []uint64, off uint64, n int) bool {
	i, b := off/64, off%64
	v := bits[i] >> b
	if b+uint64(n) > 64 {
		v |= bits[i+1] << (64 - b)
	}
	mask := uint64(1)<<n - 1
	return v&mask == mask
}

// setBits sets bits [off, off+n) (n <= 48).
func setBits(bits []uint64, off uint64, n int) {
	i, b := off/64, off%64
	mask := uint64(1)<<n - 1
	bits[i] |= mask << b
	if b+uint64(n) > 64 {
		bits[i+1] |= mask >> (64 - b)
	}
}

// Outcome summarises one execution.
type Outcome struct {
	Steps   int
	SigSegv int // dereferences outside the sandbox
	SigFpe  int // divide faults
	Undef   int // reads of undefined registers, flags or memory bytes
	Exhaust bool
}

// Machine is a reusable interpreter. A Machine is not safe for concurrent
// use; each search thread owns one.
type Machine struct {
	Regs     [x64.NumGPR]uint64
	RegDef   uint16
	Xmm      [x64.NumXMM][2]uint64
	XmmDef   uint16
	Flags    x64.FlagSet
	FlagsDef x64.FlagSet

	segs []segment

	// Error counters for the current run.
	sigsegv int
	sigfpe  int
	undef   int

	// MaxSteps bounds one execution; the default covers any loop-free
	// sequence of the paper's length plus slack.
	MaxSteps int

	// trace, when non-nil, records every byte address the program
	// dereferences. It stands in for the PinTool instrumentation of §5.1:
	// the addresses the target touches define the sandbox for rewrites.
	trace *Trace

	// lastSnap and memDirty drive LoadSnapshotCached: when the machine is
	// pinned to one testcase (the compiled evaluation pipeline runs one
	// machine per testcase) and the last execution never stored to memory,
	// reloading the same snapshot skips the segment copies entirely.
	lastSnap *Snapshot
	memDirty bool

	// regsWritten is the bitset of GPRs written since the last snapshot
	// load; the cached reload restores exactly those instead of copying
	// the whole register file. Every GPR mutation path (writeGPR, the
	// compiled setReg, and the direct rsp updates of push/pop) records
	// into it. xmmWritten is the same bitset for the XMM file, so an SSE
	// candidate that touches one vector register restores 16 bytes on
	// reload, not 256.
	regsWritten uint16
	xmmWritten  uint16

	// segCache is the index of the segment the last dereference hit.
	segCache int

	// packed caches the bitset form of each snapshot's Def/Valid planes,
	// keyed by snapshot identity, so a full reload packs each image once
	// per machine instead of once per load. Snapshot memory planes must
	// be stable across loads on one machine (testcase snapshots are; the
	// caller contract of LoadSnapshotCached already demands it).
	packed map[*Snapshot][]packedMem

	// xmmRestores counts individual XMM register restores performed by
	// LoadSnapshotCached over the machine's lifetime — a white-box
	// diagnostic for the dirty-tracking regression tests.
	xmmRestores int

	// generic counts compiled-slot executions that fell back to the
	// interpreting handler (the opcode-switch path the decode-once
	// pipeline exists to avoid). The dispatch-counter tests pin it to
	// zero on the tracked kernels.
	generic int
}

// Trace records the byte addresses dereferenced during instrumented runs.
type Trace struct {
	Reads  map[uint64]struct{}
	Writes map[uint64]struct{}
}

// NewTrace returns an empty trace.
func NewTrace() *Trace {
	return &Trace{Reads: map[uint64]struct{}{}, Writes: map[uint64]struct{}{}}
}

// SetTrace installs (or, with nil, removes) instrumentation on the machine.
func (m *Machine) SetTrace(t *Trace) { m.trace = t }

// New returns a machine with an empty address space.
func New() *Machine {
	return &Machine{MaxSteps: 4096}
}

// LoadSnapshot resets the machine to the given initial state, reusing
// existing segment storage when shapes match (the hot path re-runs the same
// testcases millions of times).
func (m *Machine) LoadSnapshot(s *Snapshot) {
	m.Regs = s.Regs
	m.RegDef = s.RegDef
	m.Xmm = s.Xmm
	m.XmmDef = s.XmmDef
	m.Flags = s.Flags
	m.FlagsDef = s.FlagsDef
	m.sigsegv, m.sigfpe, m.undef = 0, 0, 0

	if len(m.segs) != len(s.Mem) {
		m.segs = make([]segment, len(s.Mem))
	}
	if m.packed == nil {
		m.packed = make(map[*Snapshot][]packedMem)
	}
	pm, ok := m.packed[s]
	if !ok {
		pm = make([]packedMem, len(s.Mem))
		for i := range s.Mem {
			im := &s.Mem[i]
			w := bitWords(len(im.Data))
			pm[i] = packedMem{def: make([]uint64, w), valid: make([]uint64, w)}
			packBools(pm[i].def, im.Def)
			packBools(pm[i].valid, im.Valid)
		}
		m.packed[s] = pm
	}
	for i := range s.Mem {
		im := &s.Mem[i]
		sg := &m.segs[i]
		if sg.base != im.Base || len(sg.data) != len(im.Data) {
			sg.base = im.Base
			sg.data = make([]byte, len(im.Data))
			sg.def = make([]uint64, bitWords(len(im.Data)))
		}
		copy(sg.data, im.Data)
		sg.valid = pm[i].valid // shared: execution never mutates validity
		sg.snapDef = pm[i].def
		copy(sg.def, pm[i].def)
		sg.dirtyLo, sg.dirtyHi = len(sg.data), 0
	}
	m.lastSnap = s
	m.memDirty = false
	m.regsWritten = 0
	m.xmmWritten = 0
}

// LoadSnapshotCached is LoadSnapshot for a machine pinned to one testcase:
// when s is the snapshot loaded last time and no store has dirtied the
// segments since, only registers, flags and fault counters are restored
// (and the XMM file only if an XMM write dirtied it). The caller must
// treat a snapshot's contents as immutable while reusing it this way
// (testcase snapshots are).
func (m *Machine) LoadSnapshotCached(s *Snapshot) {
	if m.lastSnap != s {
		m.LoadSnapshot(s)
		return
	}
	if m.memDirty {
		for i := range m.segs {
			sg := &m.segs[i]
			if sg.dirtyHi <= sg.dirtyLo {
				continue
			}
			im := &s.Mem[i]
			copy(sg.data[sg.dirtyLo:sg.dirtyHi], im.Data[sg.dirtyLo:sg.dirtyHi])
			lo, hi := sg.dirtyLo/64, sg.dirtyHi/64+1
			copy(sg.def[lo:hi], sg.snapDef[lo:hi])
			sg.dirtyLo, sg.dirtyHi = len(sg.data), 0
		}
		m.memDirty = false
	}
	for w := m.regsWritten; w != 0; w &= w - 1 {
		r := bits.TrailingZeros16(w)
		m.Regs[r] = s.Regs[r]
	}
	m.regsWritten = 0
	m.RegDef = s.RegDef
	for w := m.xmmWritten; w != 0; w &= w - 1 {
		r := bits.TrailingZeros16(w)
		m.Xmm[r] = s.Xmm[r]
		m.xmmRestores++
	}
	m.xmmWritten = 0
	m.XmmDef = s.XmmDef
	m.Flags = s.Flags
	m.FlagsDef = s.FlagsDef
	m.sigsegv, m.sigfpe, m.undef = 0, 0, 0
}

// findSeg returns the segment containing [addr, addr+n), or nil. The last
// hit is cached: -O0 code streams stack accesses, so consecutive
// dereferences overwhelmingly land in one segment (the cache changes
// nothing observable, only the scan).
func (m *Machine) findSeg(addr uint64, n int) *segment {
	if m.segCache < len(m.segs) {
		sg := &m.segs[m.segCache]
		if addr >= sg.base && addr-sg.base+uint64(n) <= uint64(len(sg.data)) {
			return sg
		}
	}
	for i := range m.segs {
		sg := &m.segs[i]
		if addr >= sg.base && addr-sg.base+uint64(n) <= uint64(len(sg.data)) {
			m.segCache = i
			return sg
		}
	}
	return nil
}

// loadBytes reads n bytes at addr under the sandbox discipline: any byte
// outside the sandbox makes the whole access fault (counted once) and the
// access reads as zero; undefined bytes count one undef read.
func (m *Machine) loadBytes(addr uint64, n int, out []byte) {
	if m.trace != nil {
		for i := 0; i < n; i++ {
			m.trace.Reads[addr+uint64(i)] = struct{}{}
		}
	}
	sg := m.findSeg(addr, n)
	if sg == nil {
		m.sigsegv++
		for i := 0; i < n; i++ {
			out[i] = 0
		}
		return
	}
	off := addr - sg.base
	if !allSet(sg.valid, off, n) {
		m.sigsegv++
		for i := 0; i < n; i++ {
			out[i] = 0
		}
		return
	}
	copy(out, sg.data[off:off+uint64(n)])
	if !allSet(sg.def, off, n) {
		m.undef++
	}
}

// storeBytes writes n bytes at addr; stores outside the sandbox are dropped
// after counting a fault.
func (m *Machine) storeBytes(addr uint64, n int, in []byte) {
	if m.trace != nil {
		for i := 0; i < n; i++ {
			m.trace.Writes[addr+uint64(i)] = struct{}{}
		}
	}
	sg := m.findSeg(addr, n)
	if sg == nil {
		m.sigsegv++
		return
	}
	off := addr - sg.base
	if !allSet(sg.valid, off, n) {
		m.sigsegv++
		return
	}
	copy(sg.data[off:off+uint64(n)], in[:n])
	setBits(sg.def, off, n)
	if int(off) < sg.dirtyLo {
		sg.dirtyLo = int(off)
	}
	if int(off)+n > sg.dirtyHi {
		sg.dirtyHi = int(off) + n
	}
	m.memDirty = true
}

// load reads an n-byte little-endian value (n <= 8). The untraced path
// reads straight out of the segment (no intermediate buffer, word-wide
// sandbox checks); instrumented runs take the recording loadBytes path.
func (m *Machine) load(addr uint64, n int) uint64 {
	if m.trace == nil {
		sg := m.findSeg(addr, n)
		if sg == nil {
			m.sigsegv++
			return 0
		}
		off := addr - sg.base
		if !allSet(sg.valid, off, n) {
			m.sigsegv++
			return 0
		}
		if !allSet(sg.def, off, n) {
			m.undef++
		}
		switch n {
		case 8:
			return binary.LittleEndian.Uint64(sg.data[off:])
		case 4:
			return uint64(binary.LittleEndian.Uint32(sg.data[off:]))
		case 2:
			return uint64(binary.LittleEndian.Uint16(sg.data[off:]))
		default:
			return uint64(sg.data[off])
		}
	}
	var buf [8]byte
	m.loadBytes(addr, n, buf[:n])
	v := uint64(0)
	for i := n - 1; i >= 0; i-- {
		v = v<<8 | uint64(buf[i])
	}
	return v
}

// store writes an n-byte little-endian value (n <= 8), with the same
// direct untraced path as load.
func (m *Machine) store(addr uint64, n int, v uint64) {
	if m.trace == nil {
		sg := m.findSeg(addr, n)
		if sg == nil {
			m.sigsegv++
			return
		}
		off := addr - sg.base
		if !allSet(sg.valid, off, n) {
			m.sigsegv++
			return
		}
		switch n {
		case 8:
			binary.LittleEndian.PutUint64(sg.data[off:], v)
		case 4:
			binary.LittleEndian.PutUint32(sg.data[off:], uint32(v))
		case 2:
			binary.LittleEndian.PutUint16(sg.data[off:], uint16(v))
		default:
			sg.data[off] = byte(v)
		}
		setBits(sg.def, off, n)
		if int(off) < sg.dirtyLo {
			sg.dirtyLo = int(off)
		}
		if int(off)+n > sg.dirtyHi {
			sg.dirtyHi = int(off) + n
		}
		m.memDirty = true
		return
	}
	var buf [8]byte
	for i := 0; i < n; i++ {
		buf[i] = byte(v >> (8 * i))
	}
	m.storeBytes(addr, n, buf[:n])
}

// MemByte returns the current contents and definedness of one byte, for
// cost-function comparison of live memory outputs.
func (m *Machine) MemByte(addr uint64) (b byte, defined, ok bool) {
	sg := m.findSeg(addr, 1)
	if sg == nil {
		return 0, false, false
	}
	off := addr - sg.base
	return sg.data[off], sg.def[off/64]>>(off%64)&1 == 1, true
}

// RegValue returns the current value of a register viewed at width bytes.
func (m *Machine) RegValue(r x64.Reg, width uint8) uint64 {
	return m.Regs[r] & widthMask(width)
}

// effectiveAddr computes base + index*scale + disp, counting undefined
// address registers.
func (m *Machine) effectiveAddr(o x64.Operand) uint64 {
	var a uint64
	if o.Base != x64.NoReg {
		m.undef += int(^m.RegDef >> o.Base & 1)
		a += m.Regs[o.Base]
	}
	if o.Index != x64.NoReg {
		m.undef += int(^m.RegDef >> o.Index & 1)
		a += m.Regs[o.Index] * uint64(o.Scale)
	}
	return a + uint64(int64(o.Disp))
}

func widthMask(w uint8) uint64 {
	switch w {
	case 1:
		return 0xff
	case 2:
		return 0xffff
	case 4:
		return 0xffffffff
	case 8:
		return ^uint64(0)
	}
	return 0
}

func widthBits(w uint8) uint { return uint(w) * 8 }

func signBit(w uint8) uint64 { return 1 << (widthBits(w) - 1) }

// readGPR reads a register view, counting undefined reads (branch-free:
// definedness is data-dependent on the search workload and mispredicts).
func (m *Machine) readGPR(r x64.Reg, w uint8) uint64 {
	m.undef += int(^m.RegDef >> r & 1)
	return m.Regs[r] & widthMask(w)
}

// writeGPR writes a register view with hardware merge semantics: 32-bit
// writes zero the upper half; 8- and 16-bit writes merge — and merging
// with an undefined register reads its undefined upper bits, which counts
// against the undef term just like any other undefined read.
func (m *Machine) writeGPR(r x64.Reg, w uint8, v uint64) {
	m.regsWritten |= 1 << r
	switch w {
	case 8:
		m.Regs[r] = v
	case 4:
		m.Regs[r] = v & 0xffffffff
	case 2:
		m.undef += int(^m.RegDef >> r & 1)
		m.Regs[r] = m.Regs[r]&^uint64(0xffff) | v&0xffff
	case 1:
		m.undef += int(^m.RegDef >> r & 1)
		m.Regs[r] = m.Regs[r]&^uint64(0xff) | v&0xff
	}
	m.RegDef |= 1 << r
}

// readOperand reads a GPR, immediate or memory operand as a value masked to
// its width.
func (m *Machine) readOperand(o x64.Operand) uint64 {
	switch o.Kind {
	case x64.KindReg:
		return m.readGPR(o.Reg, o.Width)
	case x64.KindImm:
		return uint64(o.Imm) & widthMask(o.Width)
	case x64.KindMem:
		return m.load(m.effectiveAddr(o), int(o.Width))
	}
	panic(fmt.Sprintf("emu: readOperand on %v", o.Kind))
}

// writeOperand writes a GPR or memory operand.
func (m *Machine) writeOperand(o x64.Operand, v uint64) {
	switch o.Kind {
	case x64.KindReg:
		m.writeGPR(o.Reg, o.Width, v)
	case x64.KindMem:
		m.store(m.effectiveAddr(o), int(o.Width), v)
	default:
		panic(fmt.Sprintf("emu: writeOperand on %v", o.Kind))
	}
}

// readXmm reads an XMM register, counting undefined reads.
func (m *Machine) readXmm(r x64.Reg) [2]uint64 {
	m.undef += int(^m.XmmDef >> r & 1)
	return m.Xmm[r]
}

func (m *Machine) writeXmm(r x64.Reg, v [2]uint64) {
	m.Xmm[r] = v
	m.XmmDef |= 1 << r
	m.xmmWritten |= 1 << r
}

// GenericDispatches reports how many compiled-slot executions have fallen
// back to the generic interpreting handler over the machine's lifetime.
// Zero means every instruction the machine ran through RunCompiled was
// served by a specialised micro-op.
func (m *Machine) GenericDispatches() int { return m.generic }

// readFlags checks definedness of the flags a condition inspects and
// returns the current flag valuation.
func (m *Machine) readFlagsFor(cc x64.Cond) x64.FlagSet {
	need := x64.FlagsReadByCond(cc)
	if need&^m.FlagsDef != 0 {
		m.undef++
	}
	return m.Flags
}

// setFlag sets or clears one flag and marks it defined.
func (m *Machine) setFlag(f x64.FlagSet, on bool) {
	if on {
		m.Flags |= f
	} else {
		m.Flags &^= f
	}
	m.FlagsDef |= f
}
