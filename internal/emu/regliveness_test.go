package emu_test

// Directed tests for the register-liveness pass: the dataflow edges that
// decide whether a register write may be suppressed (partial-width merge
// chains, 32-bit zero-extension kills, the zero idioms, the divide
// family's implicit defs, dead XMM destinations), the kernel-live-out exit
// gens of CompileLive, the incrementally maintained coverage counters
// under patch/restore storms, and a guard asserting the tracked kernels
// actually compile with suppressed register writes under their live-out
// sets. The fuzz-grade differential suites cover the same machinery from
// the proposal distribution's angle (the FzRegLiveness menu family).

import (
	"math/rand"
	"testing"

	"repro/internal/emu"
	"repro/internal/kernels"
	"repro/internal/mcmc"
	"repro/internal/testgen"
	"repro/internal/x64"
)

// regCounts compiles src, cross-checks it against the interpreter, and
// returns the suppressed/writing slot counts (pinned to a direct scan).
func regCounts(t *testing.T, src string) (free, writing int) {
	t.Helper()
	c := runDifferential(t, src, 400)
	free, writing = c.RegFreeSlots(), c.RegWritingSlots()
	if sf, sw := c.RegCountsByScan(); sf != free || sw != writing {
		t.Fatalf("counter drift: counters %d/%d, scan %d/%d\n%s", free, writing, sf, sw, src)
	}
	return free, writing
}

// TestRegLivenessMergeChain: 1/2-byte writes merge into untouched bytes,
// which makes each narrow write a *reader* of its destination — the movb
// stays live because the movw's merge reads %rax, and only the last
// narrow write before the wide kill dies.
func TestRegLivenessMergeChain(t *testing.T) {
	free, writing := regCounts(t, "movb 0x11, al\nmovw 2, ax\nmovb 0x22, cl\nmovq rcx, rax")
	if free != 1 || writing != 4 {
		t.Errorf("merge chain: %d/%d suppressed, want 1/4 (the movw; the movb feeds its merge)", free, writing)
	}

	// Without the wide kill nothing dies: every register is live at exit
	// under plain Compile, and narrow writes never kill.
	free, writing = regCounts(t, "movb 0x11, al\nmovw 2, ax\nmovb 0x22, cl")
	if free != 0 || writing != 3 {
		t.Errorf("kill-free chain: %d/%d suppressed, want 0/3", free, writing)
	}
}

// TestRegLivenessZeroExtendKill: 32-bit writes zero-extend, so both the
// plain movl and the xorl zero idiom are full kills of their 64-bit
// register — and the idiom's dropped self-read is what lets the upstream
// write die.
func TestRegLivenessZeroExtendKill(t *testing.T) {
	free, writing := regCounts(t, "movq rsi, rax\nmovl ecx, eax\nmovq rsi, rdx\nxorl edx, edx")
	if free != 2 || writing != 4 {
		t.Errorf("zero-extend kills: %d/%d suppressed, want 2/4 (both wide movs)", free, writing)
	}

	// A narrow xor is not a zero idiom: it merges, reads its destination,
	// and must keep the upstream write alive.
	free, writing = regCounts(t, "movq rsi, rax\nxorb al, al")
	if free != 0 || writing != 2 {
		t.Errorf("narrow xor: %d/%d suppressed, want 0/2 (a merge, not a kill)", free, writing)
	}
}

// TestRegLivenessDivImplicitDefs: DIV defines RAX:RDX on both the fault
// and success paths, so two trailing kills leave its register writes dead
// — the suppressed div still reads RAX, RDX and the divisor, and still
// faults (the differential sweep's random snapshots include zero
// divisors).
func TestRegLivenessDivImplicitDefs(t *testing.T) {
	free, writing := regCounts(t, "divq rsi\nxorl eax, eax\nxorl edx, edx")
	if free != 1 || writing != 3 {
		t.Errorf("dead div defs: %d/%d suppressed, want 1/3 (the div)", free, writing)
	}

	// A reader of either implicit def pins the div.
	free, _ = regCounts(t, "divq rsi\naddq rax, rcx\nxorl eax, eax\nxorl edx, edx")
	if free != 0 {
		t.Errorf("read div defs: %d suppressed, want 0 (rax is read)", free)
	}
}

// TestRegLivenessDeadXmm: XMM writes are full 128-bit kills — packed
// arithmetic dies at the pxor zero idiom, a shuffle dies at a vector
// load, and the cross-file movd keeps its XMM read while the dead GPR
// writes upstream of a kill die like any other.
func TestRegLivenessDeadXmm(t *testing.T) {
	free, writing := regCounts(t,
		"paddw xmm0, xmm1\npxor xmm1, xmm1\npshufd 0x1b, xmm0, xmm2\nmovups (rdi), xmm2\nmovd xmm3, eax")
	if free != 2 || writing != 5 {
		t.Errorf("dead xmm writes: %d/%d suppressed, want 2/5 (paddw and pshufd)", free, writing)
	}

	// A consumer between the write and the kill pins it.
	free, _ = regCounts(t, "paddw xmm0, xmm1\npaddd xmm1, xmm2\npxor xmm1, xmm1")
	if free != 0 {
		t.Errorf("read xmm write: %d suppressed, want 0", free)
	}
}

// TestRegLivenessFlagsPinSuppression: a slot is only write-suppressed when
// its flag writes (if any) are dead too — an addq whose destination dies
// but whose flags feed a setb must stay fully live.
func TestRegLivenessFlagsPinSuppression(t *testing.T) {
	free, _ := regCounts(t, "addq rsi, rax\nsetb cl\nmovq rdi, rax")
	if free != 0 {
		t.Errorf("flag-live add: %d suppressed, want 0 (its CF feeds the setb)", free)
	}

	// With the flag consumer gone both the add's outputs are dead.
	free, _ = regCounts(t, "addq rsi, rax\nxorq rcx, rcx\nmovq rdi, rax")
	if free != 1 {
		t.Errorf("flag-dead add: %d suppressed, want 1", free)
	}
}

// liveMasks folds a testgen.LiveSet into the CompileLive exit masks the
// engine uses: a named GPR is conservatively live at full width, each
// named XMM fully.
func liveMasks(live testgen.LiveSet) (uint16, uint16) {
	var g, x uint16
	for _, lr := range live.GPRs {
		g |= 1 << lr.Reg
	}
	for _, xr := range live.Xmms {
		x |= 1 << xr
	}
	return g, x
}

// TestCompileLiveExitGens: under CompileLive only the kernel's live-out
// registers are observable at exit, so trailing writes of any other
// register die — while plain Compile keeps them. The suppressed form must
// agree with the interpreter on the outcome (error counters included) and
// on every live register.
func TestCompileLiveExitGens(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	for _, tc := range []struct {
		src        string
		liveG      uint16
		liveX      uint16
		free, full int // suppressed slots under CompileLive / plain Compile
	}{
		// The rcx write is dead when only rax survives the exit.
		{"movq rsi, rax\nmovq rdi, rcx", 1 << x64.RAX, 0, 1, 0},
		// Narrow writes of a non-live register die without any kill.
		{"movb 5, cl\nmovw si, dx\nmovq rdi, rax", 1 << x64.RAX, 0, 2, 0},
		// An XMM copy into a dead register; the live xmm1 load survives.
		{"movups (rdi), xmm1\nmovaps xmm1, xmm2", 0, 1 << 1, 1, 0},
		// The div's defs are live-out here: nothing dies even under the
		// restricted exit.
		{"divq rsi", 1<<x64.RAX | 1<<x64.RDX, 0, 0, 0},
	} {
		p := x64.MustParse(tc.src)
		cl := emu.CompileLive(p, tc.liveG, tc.liveX)
		if got := cl.RegFreeSlots(); got != tc.free {
			t.Errorf("CompileLive(%q): %d suppressed, want %d", tc.src, got, tc.free)
		}
		if got := emu.Compile(p).RegFreeSlots(); got != tc.full {
			t.Errorf("Compile(%q): %d suppressed, want %d", tc.src, got, tc.full)
		}

		// Differential on the live-out state only: outcome and every live
		// register must match the interpreter; dead registers may hold
		// stale values by design.
		mi, mc := emu.New(), emu.New()
		for i := 0; i < 200; i++ {
			snap := randomSnapshot(rng)
			mi.LoadSnapshot(snap)
			oi := mi.Run(p)
			mc.LoadSnapshotCached(snap)
			oc := mc.RunCompiled(cl)
			if oi != oc {
				t.Fatalf("CompileLive(%q): outcomes diverged: interp %+v compiled %+v", tc.src, oi, oc)
			}
			for r := x64.Reg(0); r < x64.NumGPR; r++ {
				if tc.liveG>>r&1 == 0 {
					continue
				}
				if mi.Regs[r] != mc.Regs[r] || mi.RegDef>>r&1 != mc.RegDef>>r&1 {
					t.Fatalf("CompileLive(%q): live %v diverged: interp %#x compiled %#x",
						tc.src, r, mi.Regs[r], mc.Regs[r])
				}
			}
			for r := 0; r < x64.NumXMM; r++ {
				if tc.liveX>>r&1 == 0 {
					continue
				}
				if mi.Xmm[r] != mc.Xmm[r] || mi.XmmDef>>r&1 != mc.XmmDef>>r&1 {
					t.Fatalf("CompileLive(%q): live xmm%d diverged", tc.src, r)
				}
			}
		}
	}
}

// TestRegCountersMatchScanUnderPatchStorm drives a patch/restore storm
// over register-deadness-heavy mutations and pins, after every step, the
// incrementally maintained coverage counters to a direct scan and the
// whole dispatch selection to a fresh compile with the same exit masks.
func TestRegCountersMatchScanUnderPatchStorm(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	const liveG, liveX = uint16(1<<x64.RAX | 1<<x64.RDX), uint16(1 << 1)
	p := x64.MustParse("movq rsi, rax\nmovl ecx, eax\npaddw xmm0, xmm1\ndivq rsi").PadTo(12)
	c := emu.CompileLive(p, liveG, liveX)
	muts := []x64.Inst{
		x64.Unused(),
		x64.MustParse("movb 7, al").Insts[0],
		x64.MustParse("movw si, cx").Insts[0],
		x64.MustParse("movl edi, ecx").Insts[0],
		x64.MustParse("movq rcx, rax").Insts[0],
		x64.MustParse("xorl edx, edx").Insts[0],
		x64.MustParse("divq rsi").Insts[0],
		x64.MustParse("pxor xmm1, xmm1").Insts[0],
		x64.MustParse("paddd xmm1, xmm2").Insts[0],
		x64.MustParse("movd xmm3, eax").Insts[0],
		x64.MustParse("addq rax, rcx").Insts[0],
	}
	for step := 0; step < 2000; step++ {
		i := rng.Intn(len(p.Insts))
		j := rng.Intn(len(p.Insts))
		oldI, oldJ := p.Insts[i], p.Insts[j]
		si := c.SaveSlot(i)
		p.Insts[i] = muts[rng.Intn(len(muts))]
		c.Patch(i)
		sj := c.SaveSlot(j)
		p.Insts[j] = muts[rng.Intn(len(muts))]
		c.Patch(j)
		if rng.Intn(2) == 0 {
			p.Insts[j] = oldJ
			p.Insts[i] = oldI
			c.RestoreSlot(j, sj)
			c.RestoreSlot(i, si)
		}
		free, writing := c.RegFreeSlots(), c.RegWritingSlots()
		if sf, sw := c.RegCountsByScan(); sf != free || sw != writing {
			t.Fatalf("step %d: counters %d/%d drifted from scan %d/%d\n%s",
				step, free, writing, sf, sw, p)
		}
		fresh := emu.CompileLive(p, liveG, liveX)
		if ff, fw := fresh.RegFreeSlots(), fresh.RegWritingSlots(); ff != free || fw != writing {
			t.Fatalf("step %d: counters %d/%d patched vs %d/%d fresh\n%s",
				step, free, writing, ff, fw, p)
		}
		pk, fk := c.SlotKinds(), fresh.SlotKinds()
		for s := range pk {
			if pk[s] != fk[s] {
				t.Fatalf("step %d: slot %d dispatch code %d patched vs %d fresh\n%s",
					step, s, pk[s], fk[s], p)
			}
		}
	}
}

// TestRegFreeFractionOnTrackedKernels guards the optimisation end to end.
// The -O0 targets themselves are too tight to carry dead register writes
// (values spill to memory, and what stays in registers is read), so the
// guard measures where the pass actually earns its keep: search
// candidates. For each tracked kernel, ℓ=50 programs drawn from its
// proposal pools and compiled under its declared live-out set — exactly
// how the engine compiles every candidate — must show a nonzero
// suppressed fraction in aggregate. A refactor that silently regresses
// the register pass to all-live fails here, not in a benchmark diff.
func TestRegFreeFractionOnTrackedKernels(t *testing.T) {
	for _, name := range []string{"p01", "p23", "mont", "saxpy"} {
		bench, err := kernels.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		g, x := liveMasks(bench.Spec.LiveOut)
		params := mcmc.PaperParams
		params.Ell = 50
		s := &mcmc.Sampler{
			Params: params,
			Pools:  mcmc.PoolsFor(bench.Target, bench.SSE),
			Rng:    rand.New(rand.NewSource(53)),
		}
		free, writing := 0, 0
		for i := 0; i < 50; i++ {
			c := emu.CompileLive(s.RandomProgram(), g, x)
			f, w := c.RegFreeSlots(), c.RegWritingSlots()
			if sf, sw := c.RegCountsByScan(); sf != f || sw != w {
				t.Fatalf("%s: counters %d/%d drifted from scan %d/%d", name, f, w, sf, sw)
			}
			free += f
			writing += w
		}
		if writing == 0 {
			t.Errorf("%s: no register-writing slots across 50 candidates?", name)
			continue
		}
		if free == 0 {
			t.Errorf("%s: 0 of %d register-writing slots suppressed; liveness regressed to all-live",
				name, writing)
		}
		t.Logf("%s: %d/%d candidate register-writing slots suppressed (%.0f%%)",
			name, free, writing, 100*float64(free)/float64(writing))
	}
}
