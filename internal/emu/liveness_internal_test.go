package emu

import (
	"testing"

	"repro/internal/x64"
)

// TestVariantKindMapsInvert pins the invariant applyLiveness rests on:
// baseKindOf must invert liveKind for every dispatch code and every live
// set, so a slot flipping between dead and live always round-trips through
// its full-flag base code. Adding an arm to liveKind without the matching
// baseKindOf arm (or vice versa) fails here, not as a silent stale-variant
// selection after a Patch.
func TestVariantKindMapsInvert(t *testing.T) {
	liveSets := []x64.FlagSet{0, x64.ZF, x64.SF | x64.ZF | x64.PF, x64.CF, x64.AllFlags}
	for k := microKind(0); k < mkNumKinds; k++ {
		base := baseKindOf(k)
		if baseKindOf(base) != base {
			t.Errorf("kind %d: baseKindOf is not idempotent (%d -> %d)", k, base, baseKindOf(base))
		}
		for _, live := range liveSets {
			v := liveKind(base, live)
			if got := baseKindOf(v); got != base {
				t.Errorf("kind %d live %v: liveKind(%d) = %d, but baseKindOf maps it to %d",
					k, live, base, v, got)
			}
			// Variants must never chain: selecting from a selected kind
			// (as applyLiveness does on re-patched slots) is stable.
			if liveKind(baseKindOf(v), live) != v {
				t.Errorf("kind %d live %v: selection does not round-trip (%d)", k, live, v)
			}
		}
	}
}
