package emu_test

// Fuzz-grade differential tests: the native Go fuzzer drives byte strings
// through testgen.DecodeFuzzCase (a total decoder weighted toward the
// DIV/IDIV and SSE micro-ops) and demands that the compiled pipeline, the
// interpreter, and fresh-versus-patched compiled forms agree on the full
// observable machine state. The checked-in seed corpora under testdata/fuzz
// cover divide faults, fixed-point SSE lane edges, UNUSED padding and
// control-relink patch scripts; `go test` runs every seed as a unit test,
// and CI adds a short -fuzztime exploration on top.

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/emu"
	"repro/internal/testgen"
	"repro/internal/x64"
)

func FuzzCompiledVsInterpreted(f *testing.F) {
	for _, s := range testgen.SeedCorpus() {
		f.Add(s.Data)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		fc := testgen.DecodeFuzzCase(data)
		mi, mc := emu.New(), emu.New()
		runBoth(t, mi, mc, fc.Prog, emu.Compile(fc.Prog), fc.Snap, "fuzz case")
		if t.Failed() {
			t.Fatalf("diverging program:\n%s", fc.Prog)
		}
	})
}

func FuzzPatchVsFreshCompile(f *testing.F) {
	for _, s := range testgen.SeedCorpus() {
		f.Add(s.Data)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		fc := testgen.DecodeFuzzCase(data)
		prog := fc.Prog
		c := emu.Compile(prog)
		patched, fresh, mi := emu.New(), emu.New(), emu.New()
		for step, e := range fc.Edits {
			if e.Swap {
				prog.Insts[e.Slot], prog.Insts[e.Other] = prog.Insts[e.Other], prog.Insts[e.Slot]
				c.Patch(e.Slot)
				if e.Other != e.Slot {
					c.Patch(e.Other)
				}
			} else {
				prog.Insts[e.Slot] = e.With
				c.Patch(e.Slot)
			}
			recompiled := emu.Compile(prog)
			// Latencies are integral, so the incrementally patched Equation
			// 13 sum must match a fresh compile exactly, not approximately.
			if c.StaticLatency() != recompiled.StaticLatency() {
				t.Fatalf("edit %d: patched static latency %v, fresh %v\n%s",
					step, c.StaticLatency(), recompiled.StaticLatency(), prog)
			}
			// The incremental liveness recomputation must converge to the
			// same per-slot dispatch selection as a fresh compile: variant
			// codes are a pure function of the program, never of the patch
			// history.
			pk, fk := c.SlotKinds(), recompiled.SlotKinds()
			for s := range pk {
				if pk[s] != fk[s] {
					t.Fatalf("edit %d: slot %d dispatch code %d after patching, fresh compile has %d\n%s",
						step, s, pk[s], fk[s], prog)
				}
			}
			fresh.LoadSnapshot(fc.Snap)
			of := fresh.RunCompiled(recompiled)
			patched.LoadSnapshotCached(fc.Snap)
			op := patched.RunCompiled(c)
			if of != op {
				t.Errorf("edit %d: outcomes diverged: fresh %+v patched %+v", step, of, op)
			}
			diffStates(t, fresh, patched, fc.Snap, fmt.Sprintf("edit %d patched vs fresh", step))
			runBoth(t, mi, patched, prog, c, fc.Snap, fmt.Sprintf("edit %d vs interpreter", step))
			if t.Failed() {
				t.Fatalf("diverging program after edit %d:\n%s", step, prog)
			}
		}
	})
}

// batchLanes derives a spread of per-lane snapshots from one fuzz
// snapshot: lane 0 runs it verbatim, later lanes perturb register values,
// input flags, and definedness, so conditional jumps split the batch,
// divisors fault on some lanes only, and the per-lane undef accounting is
// exercised at every split point. The memory image is shared — lanes never
// mutate their input snapshot.
func batchLanes(snap *emu.Snapshot) []*emu.Snapshot {
	lanes := make([]*emu.Snapshot, 7)
	for i := range lanes {
		s := *snap
		if i > 0 {
			s.Regs[(i*5)%16] ^= uint64(i) * 0x9e3779b97f4a7c15
			s.Flags ^= x64.FlagSet(i) & x64.AllFlags
			switch i % 3 {
			case 1:
				s.RegDef &^= 1 << ((i * 3) % 16)
			case 2:
				s.FlagsDef &^= x64.FlagSet(i>>1) & x64.AllFlags
			}
		}
		lanes[i] = &s
	}
	return lanes
}

// FuzzBatchedVsScalar pins the batched lockstep evaluator to the scalar
// compiled pipeline: on every decoded program — rerun after every patch
// edit — each lane of a Batch must finish with exactly the Outcome and
// machine state the per-testcase RunCompiled produces from the same
// snapshot, across divergent conditional jumps, divide faults, and the
// peel to the scalar tail.
func FuzzBatchedVsScalar(f *testing.F) {
	for _, s := range testgen.SeedCorpus() {
		f.Add(s.Data)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		fc := testgen.DecodeFuzzCase(data)
		prog := fc.Prog
		c := emu.Compile(prog)
		snaps := batchLanes(fc.Snap)
		var batch emu.Batch
		lanes := make([]*emu.Machine, len(snaps))
		refs := make([]*emu.Machine, len(snaps))
		for i := range snaps {
			lanes[i], refs[i] = emu.New(), emu.New()
		}
		check := func(what string) {
			t.Helper()
			for i, s := range snaps {
				lanes[i].LoadSnapshotCached(s)
			}
			outs := batch.Run(c, lanes)
			for i, s := range snaps {
				refs[i].LoadSnapshotCached(s)
				want := refs[i].RunCompiled(c)
				if outs[i] != want {
					t.Errorf("%s: lane %d outcomes diverged: scalar %+v batched %+v",
						what, i, want, outs[i])
				}
				diffStates(t, refs[i], lanes[i], s, fmt.Sprintf("%s: lane %d", what, i))
			}
			if t.Failed() {
				t.Fatalf("diverging program (%s):\n%s", what, prog)
			}
		}
		check("initial")
		for step, e := range fc.Edits {
			if e.Swap {
				prog.Insts[e.Slot], prog.Insts[e.Other] = prog.Insts[e.Other], prog.Insts[e.Slot]
				c.Patch(e.Slot)
				if e.Other != e.Slot {
					c.Patch(e.Other)
				}
			} else {
				prog.Insts[e.Slot] = e.With
				c.Patch(e.Slot)
			}
			check(fmt.Sprintf("after edit %d", step))
		}
	})
}

var updateFuzzCorpus = flag.Bool("update-fuzz-corpus", false,
	"rewrite the checked-in fuzz seed corpora under testdata/fuzz")

// TestFuzzSeedCorpusFiles pins the checked-in seed corpora to
// testgen.SeedCorpus, so the named edge cases (divide faults, SSE lane
// boundaries, padding and relink patch scripts) are versioned files the
// fuzzer always starts from. Regenerate with -update-fuzz-corpus after
// extending the corpus for a new opcode.
func TestFuzzSeedCorpusFiles(t *testing.T) {
	for _, target := range []string{"FuzzCompiledVsInterpreted", "FuzzPatchVsFreshCompile", "FuzzBatchedVsScalar"} {
		dir := filepath.Join("testdata", "fuzz", target)
		if *updateFuzzCorpus {
			if err := os.MkdirAll(dir, 0o755); err != nil {
				t.Fatal(err)
			}
		}
		for _, s := range testgen.SeedCorpus() {
			path := filepath.Join(dir, "seed-"+s.Name)
			want := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", s.Data)
			if *updateFuzzCorpus {
				if err := os.WriteFile(path, []byte(want), 0o644); err != nil {
					t.Fatal(err)
				}
				continue
			}
			got, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (regenerate with -update-fuzz-corpus)", err)
			}
			if string(got) != want {
				t.Errorf("%s is stale (regenerate with -update-fuzz-corpus)", path)
			}
		}
	}
}
