package emu

import (
	"math/bits"

	"repro/internal/x64"
)

// This file lowers the divide family and the fixed-point SSE subset into
// specialised micro-ops, completing the decode-once pipeline: no instruction
// of the saxpy or Montgomery workloads reaches the generic interpreting
// fallback any more (the dispatch-counter tests pin this). The handlers
// replicate execDivide/execSSE exactly — same read order, same undef
// accounting, same deterministic #DE model — and the differential fuzz
// targets (FuzzCompiledVsInterpreted, FuzzPatchVsFreshCompile) hold the two
// paths together over random programs, machine states and patch sequences.
//
// Decode-time specialisation mirrors the integer handlers: XMM register
// numbers, widths and immediates are baked into the microOp, memory-source
// forms take their address operand from u.in, and the hot register-form
// packed shapes carry dispatch codes the run loop calls statically.

// --- DIV / IDIV ----------------------------------------------------------
//
// The divide family is excluded from proposal moves (§4.3) but appears in
// targets and comparators; interpreting it through the opcode switch made
// any kernel containing one pay the generic-dispatch tax on every testcase.
// The #DE model matches §5.1's trapped instruction: zero divisor or quotient
// overflow counts a sigfpe, zeroes RAX/RDX and all flags, and execution
// continues — the early-exit path is a handler-internal branch, not a
// control-flow slot, so Patch stays O(1) for these forms.

// lowerSSE routes one SSE instruction to its family's lowering.
func lowerSSE(u *microOp, in *x64.Inst) {
	switch in.Op {
	case x64.MOVD:
		lowerMovGX(u, in, 4)
	case x64.MOVQX:
		lowerMovGX(u, in, 8)
	case x64.MOVUPS, x64.MOVAPS:
		lowerMovups(u, in)
	case x64.SHUFPS, x64.PSHUFD:
		lowerShuffle(u, in)
	case x64.PSLLD, x64.PSRLD, x64.PSLLQ, x64.PSRLQ:
		lowerPackedShift(u, in)
	default:
		lowerPackedALU(u, in)
	}
}

// lowerDiv specialises div/idiv with a register or memory source at the
// legal widths (4 and 8 bytes).
func lowerDiv(u *microOp, in *x64.Inst) {
	s := in.Opd[0]
	if s.Width < 4 {
		return
	}
	u.setWidth(s.Width)
	signed := in.Op == x64.IDIV
	switch s.Kind {
	case x64.KindReg:
		u.src = s.Reg
		if signed {
			u.run = hIdivR
		} else {
			u.run = hDivR
		}
	case x64.KindMem:
		if signed {
			u.run = hIdivM
		} else {
			u.run = hDivM
		}
	}
}

// divideFault is the deterministic #DE outcome: count a sigfpe, zero the
// implicit outputs, define all flags as zero (matching execDivide's fault
// closure; widths here are 4 or 8, so the direct stores match writeGPR).
// Execution continues after a #DE, so the liveness passes' nf/nr
// suppression applies to the fault path like any other write — the
// sigfpe count itself is never suppressed.
func (m *Machine) divideFault(u *microOp) {
	m.sigfpe++
	if !u.nr {
		m.setReg(x64.RAX, 0)
		m.setReg(x64.RDX, 0)
	}
	if !u.nf {
		m.putFlags(x64.AllFlags, 0)
	}
}

// divCore is the unsigned divide of RDX:RAX by d at the width baked into u.
// The dividend reads happen after the divisor read, matching execDivide's
// undef-accounting order.
func (m *Machine) divCore(u *microOp, d uint64) {
	lo := m.readReg(x64.RAX, u.mask)
	hi := m.readReg(x64.RDX, u.mask)
	if d == 0 || hi >= d && u.w == 8 {
		m.divideFault(u)
		return
	}
	var q, r uint64
	if u.w == 8 {
		q, r = bits.Div64(hi, lo, d)
	} else {
		full := hi<<(8*uint(u.w)) | lo
		if full/d > u.mask {
			m.divideFault(u)
			return
		}
		q, r = full/d, full%d
	}
	if !u.nr {
		m.setReg(x64.RAX, q)
		m.setReg(x64.RDX, r)
	}
	if !u.nf {
		m.putFlags(x64.AllFlags, 0)
	}
}

// idivCore is the signed divide of RDX:RAX by d. The 64-bit form supports
// dividends that fit 64 bits after the sign-extension check and faults on
// the rest (the quotient-overflow case for all practical kernels), exactly
// as execDivide does; INT_MIN/-1 faults on both paths.
func (m *Machine) idivCore(u *microOp, d uint64) {
	lo := m.readReg(x64.RAX, u.mask)
	hi := m.readReg(x64.RDX, u.mask)
	if d == 0 {
		m.divideFault(u)
		return
	}
	if u.w == 8 {
		if hi != uint64(int64(lo)>>63) {
			m.divideFault(u)
			return
		}
		n, dv := int64(lo), int64(d)
		if n == -1<<63 && dv == -1 {
			m.divideFault(u)
			return
		}
		if !u.nr {
			m.setReg(x64.RAX, uint64(n/dv))
			m.setReg(x64.RDX, uint64(n%dv))
		}
	} else {
		full := int64(hi<<(8*uint(u.w)) | lo)
		dv := sext(d, u.w)
		q := full / dv
		if q != sext(uint64(q)&u.mask, u.w) {
			m.divideFault(u)
			return
		}
		if !u.nr {
			m.setReg(x64.RAX, uint64(q)&u.mask)
			m.setReg(x64.RDX, uint64(full%dv)&u.mask)
		}
	}
	if !u.nf {
		m.putFlags(x64.AllFlags, 0)
	}
}

func hDivR(m *Machine, u *microOp) { m.divCore(u, m.readReg(u.src, u.mask)) }

func hDivM(m *Machine, u *microOp) {
	m.divCore(u, m.load(m.effectiveAddr(u.in.Opd[0]), int(u.w)))
}

func hIdivR(m *Machine, u *microOp) { m.idivCore(u, m.readReg(u.src, u.mask)) }

func hIdivM(m *Machine, u *microOp) {
	m.idivCore(u, m.load(m.effectiveAddr(u.in.Opd[0]), int(u.w)))
}

// --- SSE moves -----------------------------------------------------------

// lowerMovGX specialises movd/movq between GPRs, memory and XMM registers
// (w is the scalar width: 4 for movd, 8 for movq).
func lowerMovGX(u *microOp, in *x64.Inst, w uint8) {
	s, d := in.Opd[0], in.Opd[1]
	u.setWidth(w)
	switch {
	case d.Kind == x64.KindXmm && s.Kind == x64.KindReg:
		u.dst, u.src = d.Reg, s.Reg
		u.run = hMovGXFromR
		u.kind = mkMovdRX
	case d.Kind == x64.KindXmm && s.Kind == x64.KindMem:
		u.dst = d.Reg
		u.run = hMovGXFromM
	case d.Kind == x64.KindReg && s.Kind == x64.KindXmm:
		u.dst, u.src = d.Reg, s.Reg
		u.run = hMovGXToR
	case d.Kind == x64.KindMem && s.Kind == x64.KindXmm:
		u.src = s.Reg
		u.run = hMovGXToM
	}
}

func hMovGXFromR(m *Machine, u *microOp) {
	v := m.readReg(u.src, u.mask)
	m.writeXmm(u.dst, [2]uint64{v, 0})
}

func hMovGXFromM(m *Machine, u *microOp) {
	v := m.load(m.effectiveAddr(u.in.Opd[0]), int(u.w))
	if u.nr {
		return
	}
	m.writeXmm(u.dst, [2]uint64{v, 0})
}

func hMovGXToR(m *Machine, u *microOp) {
	v := m.readXmmOp(u.src)
	if u.nr {
		return
	}
	// movd/movq to a GPR zero-extends to 64 bits.
	m.setReg(u.dst, v[0]&u.mask)
}

func hMovGXToM(m *Machine, u *microOp) {
	v := m.readXmmOp(u.src)
	m.store(m.effectiveAddr(u.in.Opd[1]), int(u.w), v[0]&u.mask)
}

// lowerMovups specialises the 128-bit moves: register copies (movaps and
// the xmm,xmm movups form), unaligned loads and stores.
func lowerMovups(u *microOp, in *x64.Inst) {
	s, d := in.Opd[0], in.Opd[1]
	switch {
	case d.Kind == x64.KindXmm && s.Kind == x64.KindXmm:
		u.dst, u.src = d.Reg, s.Reg
		u.run = hMovXX
		u.kind = mkMovXX
	case d.Kind == x64.KindXmm && s.Kind == x64.KindMem:
		u.dst = d.Reg
		u.run = hMovupsLoad
		u.kind = mkMovupsLoad
	case d.Kind == x64.KindMem && s.Kind == x64.KindXmm:
		u.src = s.Reg
		u.run = hMovupsStore
		u.kind = mkMovupsStore
	}
}

// readXmmOp reads a pre-decoded XMM source, counting undefined reads like
// readXmm (named separately so the compiled handlers read as a unit).
func (m *Machine) readXmmOp(r x64.Reg) [2]uint64 { return m.readXmm(r) }

func hMovXX(m *Machine, u *microOp) { m.writeXmm(u.dst, m.readXmmOp(u.src)) }

func hMovupsLoad(m *Machine, u *microOp) {
	m.writeXmm(u.dst, m.readXmmOrMem(u.in.Opd[0]))
}

func hMovupsStore(m *Machine, u *microOp) {
	m.writeXmmMem(u.in.Opd[1], m.readXmmOp(u.src))
}

// --- shuffles ------------------------------------------------------------

// lowerShuffle specialises shufps/pshufd: immediate baked in, source and
// destination XMM registers pre-decoded.
func lowerShuffle(u *microOp, in *x64.Inst) {
	im, s, d := in.Opd[0], in.Opd[1], in.Opd[2]
	if im.Kind != x64.KindImm || s.Kind != x64.KindXmm || d.Kind != x64.KindXmm {
		return
	}
	u.src, u.dst = s.Reg, d.Reg
	u.imm = uint64(im.Imm)
	if in.Op == x64.SHUFPS {
		u.run = hShufps
		u.kind = mkShufps
	} else {
		u.run = hPshufd
		u.kind = mkPshufd
	}
}

func hShufps(m *Machine, u *microOp) {
	imm := uint8(u.imm)
	src := lanes32(m.readXmmOp(u.src))
	dst := lanes32(m.readXmmOp(u.dst))
	var out [4]uint32
	out[0] = dst[imm>>0&3]
	out[1] = dst[imm>>2&3]
	out[2] = src[imm>>4&3]
	out[3] = src[imm>>6&3]
	m.writeXmm(u.dst, fromLanes32(out))
}

func hPshufd(m *Machine, u *microOp) {
	imm := uint8(u.imm)
	src := lanes32(m.readXmmOp(u.src))
	var out [4]uint32
	for i := 0; i < 4; i++ {
		out[i] = src[imm>>(2*i)&3]
	}
	m.writeXmm(u.dst, fromLanes32(out))
}

// --- packed arithmetic and logic -----------------------------------------

// packedOp applies one packed binary operation: a is the source operand,
// b the destination register's value (the interpreter's operand order).
func packedOp(op x64.Opcode, a, b [2]uint64) [2]uint64 {
	switch op {
	case x64.PADDW, x64.PSUBW, x64.PMULLW:
		la, lb := lanes16(a), lanes16(b)
		var out [8]uint16
		for i := range out {
			switch op {
			case x64.PADDW:
				out[i] = lb[i] + la[i]
			case x64.PSUBW:
				out[i] = lb[i] - la[i]
			case x64.PMULLW:
				out[i] = lb[i] * la[i]
			}
		}
		return fromLanes16(out)
	case x64.PADDD, x64.PSUBD, x64.PMULLD:
		la, lb := lanes32(a), lanes32(b)
		var out [4]uint32
		for i := range out {
			switch op {
			case x64.PADDD:
				out[i] = lb[i] + la[i]
			case x64.PSUBD:
				out[i] = lb[i] - la[i]
			case x64.PMULLD:
				out[i] = lb[i] * la[i]
			}
		}
		return fromLanes32(out)
	case x64.PADDQ:
		return [2]uint64{b[0] + a[0], b[1] + a[1]}
	case x64.PAND:
		return [2]uint64{a[0] & b[0], a[1] & b[1]}
	case x64.POR:
		return [2]uint64{a[0] | b[0], a[1] | b[1]}
	default: // PXOR
		return [2]uint64{a[0] ^ b[0], a[1] ^ b[1]}
	}
}

// packedCode maps a packed opcode to its register-form dispatch code.
func packedCode(op x64.Opcode) microKind {
	switch op {
	case x64.PADDW:
		return mkPAddW
	case x64.PSUBW:
		return mkPSubW
	case x64.PMULLW:
		return mkPMullW
	case x64.PADDD:
		return mkPAddD
	case x64.PSUBD:
		return mkPSubD
	case x64.PMULLD:
		return mkPMullD
	case x64.PADDQ:
		return mkPAddQ
	case x64.PAND:
		return mkPAnd
	case x64.POR:
		return mkPOr
	default: // PXOR
		return mkPXor
	}
}

// lowerPackedALU specialises the two-operand packed forms. The pxor zero
// idiom lowers to its own code (defined regardless of the register's
// contents, no source read — matching execSSE).
func lowerPackedALU(u *microOp, in *x64.Inst) {
	s, d := in.Opd[0], in.Opd[1]
	if d.Kind != x64.KindXmm {
		return
	}
	u.dst = d.Reg
	switch s.Kind {
	case x64.KindXmm:
		if in.Op == x64.PXOR && s.Reg == d.Reg {
			u.run = hPxorZero
			u.kind = mkPXorZero
			return
		}
		u.src = s.Reg
		u.run = hPackedRR
		u.kind = packedCode(in.Op)
	case x64.KindMem:
		u.run = hPackedMR
	}
}

func hPxorZero(m *Machine, u *microOp) { m.writeXmm(u.dst, [2]uint64{0, 0}) }

// packedRR is the register-form packed body. The inline dispatch cases
// call it with the opcode as a compile-time constant, letting packedOp's
// switch fold away; the handler passes the slot's opcode through.
func (m *Machine) packedRR(u *microOp, op x64.Opcode) {
	a := m.readXmmOp(u.src)
	b := m.readXmmOp(u.dst)
	m.writeXmm(u.dst, packedOp(op, a, b))
}

func hPackedRR(m *Machine, u *microOp) { m.packedRR(u, u.in.Op) }

func hPackedMR(m *Machine, u *microOp) {
	a := m.readXmmOrMem(u.in.Opd[0])
	b := m.readXmmOp(u.dst)
	if u.nr {
		return
	}
	m.writeXmm(u.dst, packedOp(u.in.Op, a, b))
}

// --- packed shifts -------------------------------------------------------

// lowerPackedShift specialises pslld/psrld/psllq/psrlq with the immediate
// count baked in unmasked: counts at or beyond the lane width zero the
// register, exactly as execSSE's guard does.
func lowerPackedShift(u *microOp, in *x64.Inst) {
	im, d := in.Opd[0], in.Opd[1]
	if im.Kind != x64.KindImm || d.Kind != x64.KindXmm {
		return
	}
	u.dst = d.Reg
	u.imm = uint64(im.Imm)
	switch in.Op {
	case x64.PSLLD:
		u.run = hPslldI
	case x64.PSRLD:
		u.run = hPsrldI
	case x64.PSLLQ:
		u.run = hPsllqI
	default:
		u.run = hPsrlqI
	}
}

func hPslldI(m *Machine, u *microOp) {
	a := lanes32(m.readXmmOp(u.dst))
	if u.nr {
		return
	}
	var out [4]uint32
	if u.imm < 32 {
		for i := range out {
			out[i] = a[i] << u.imm
		}
	}
	m.writeXmm(u.dst, fromLanes32(out))
}

func hPsrldI(m *Machine, u *microOp) {
	a := lanes32(m.readXmmOp(u.dst))
	if u.nr {
		return
	}
	var out [4]uint32
	if u.imm < 32 {
		for i := range out {
			out[i] = a[i] >> u.imm
		}
	}
	m.writeXmm(u.dst, fromLanes32(out))
}

func hPsllqI(m *Machine, u *microOp) {
	a := m.readXmmOp(u.dst)
	if u.nr {
		return
	}
	var out [2]uint64
	if u.imm < 64 {
		out = [2]uint64{a[0] << u.imm, a[1] << u.imm}
	}
	m.writeXmm(u.dst, out)
}

func hPsrlqI(m *Machine, u *microOp) {
	a := m.readXmmOp(u.dst)
	if u.nr {
		return
	}
	var out [2]uint64
	if u.imm < 64 {
		out = [2]uint64{a[0] >> u.imm, a[1] >> u.imm}
	}
	m.writeXmm(u.dst, out)
}
