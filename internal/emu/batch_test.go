package emu_test

// Differential tests for the batched lockstep evaluator: on every program,
// a Batch over N machines must leave each lane in exactly the state (and
// with exactly the Outcome) the scalar RunCompiled produces from the same
// snapshot — including lanes that diverge at conditional jumps and peel to
// the scalar tail, lanes that fault, and lanes on the bounded exhaustion
// path.

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/emu"
	"repro/internal/mcmc"
	"repro/internal/x64"
)

// batchWidth is the lane count the batched differential tests run: enough
// lanes that conditional jumps routinely split both ways and re-split on
// the peeled side.
const batchWidth = 7

// runBatchDiff loads each snapshot into a batch lane and a scalar
// reference machine, runs both paths, and cross-checks outcome and full
// machine state per lane.
func runBatchDiff(t *testing.T, b *emu.Batch, lanes, refs []*emu.Machine,
	c *emu.Compiled, snaps []*emu.Snapshot, what string) {
	t.Helper()
	for i, s := range snaps {
		lanes[i].LoadSnapshotCached(s)
	}
	outs := b.Run(c, lanes[:len(snaps)])
	for i, s := range snaps {
		refs[i].LoadSnapshotCached(s)
		want := refs[i].RunCompiled(c)
		if outs[i] != want {
			t.Errorf("%s: lane %d outcomes diverged: scalar %+v batched %+v",
				what, i, want, outs[i])
		}
		diffStates(t, refs[i], lanes[i], s, fmt.Sprintf("%s: lane %d", what, i))
	}
}

func newBatchMachines(n int) (lanes, refs []*emu.Machine) {
	lanes, refs = make([]*emu.Machine, n), make([]*emu.Machine, n)
	for i := range lanes {
		lanes[i], refs[i] = emu.New(), emu.New()
	}
	return lanes, refs
}

// TestBatchedMatchesScalarRandom is the main batched differential test:
// random programs drawn from the proposal pools (memory shapes and SSE
// included), each run over a batch of independently random snapshots.
func TestBatchedMatchesScalarRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(1031))
	target := x64.MustParse(`
  movl (rdi), eax
  movq 8(rsi), rcx
  movb cl, 1(rdi)
  addl 7, eax
`)
	s := &mcmc.Sampler{
		Params: mcmc.PaperParams,
		Pools:  mcmc.PoolsFor(target, true),
		Rng:    rng,
	}
	s.Params.Ell = 12

	programs := 1000
	if testing.Short() {
		programs = 100
	}
	lanes, refs := newBatchMachines(batchWidth)
	var b emu.Batch
	snaps := make([]*emu.Snapshot, batchWidth)
	for pi := 0; pi < programs; pi++ {
		p := s.RandomProgram()
		c := emu.Compile(p)
		for i := range snaps {
			snaps[i] = randomSnapshot(rng)
		}
		runBatchDiff(t, &b, lanes, refs, c, snaps, "random program")
		if t.Failed() {
			t.Fatalf("diverging program:\n%s", p)
		}
	}
}

// TestBatchedControlFlow forces lockstep divergence: conditional jumps
// whose outcome depends on lane-varying registers and flags, jumps over
// faulting slots, early rets, and a divide whose #DE fault hits only some
// lanes (the fault continues in line, so it must not split the batch).
func TestBatchedControlFlow(t *testing.T) {
	rng := rand.New(rand.NewSource(4099))
	progs := []string{
		// Two-way split on a lane-varying comparison.
		"cmpq rsi, rdi\njae .L0\nmovq rsi, rax\n.L0:\nmovq rdi, rax",
		// Split, then a second split on the peel survivors.
		"cmpq rsi, rdi\njb .L0\naddq 1, rax\n.L0:\ntestq rax, rax\nje .L1\nnegq rax\n.L1:\nnotq rax",
		// Early ret on the taken side.
		"testq rdi, rdi\nje .L0\nmovq rdi, rax\nretq\n.L0:\nmovq 7, rax",
		// Divide faults on the lanes where rsi is zero; execution continues.
		"movq rdi, rax\nxorq rdx, rdx\ndivq rsi\naddq 1, rax",
		// Branch on possibly-undefined flags: per-lane undef accounting at
		// the jcc itself.
		"jle .L0\naddq rsi, rax\n.L0:\nsubq rdi, rax",
	}
	lanes, refs := newBatchMachines(batchWidth)
	var b emu.Batch
	snaps := make([]*emu.Snapshot, batchWidth)
	for _, src := range progs {
		p := x64.MustParse(src)
		c := emu.Compile(p)
		for round := 0; round < 60; round++ {
			for i := range snaps {
				snaps[i] = randomSnapshot(rng)
			}
			runBatchDiff(t, &b, lanes, refs, c, snaps, src)
		}
		if t.Failed() {
			t.Fatalf("diverging program:\n%s", p)
		}
	}
}

// TestBatchedBoundedExhaustion pins the step-budget fallback: lanes whose
// budget the program exceeds run the scalar exhaustion-checking path and
// report Exhaust exactly as RunCompiled does.
func TestBatchedBoundedExhaustion(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	p := x64.MustParse(`
  addq 1, rax
  addq rdi, rax
  cmpq rsi, rax
  cmovbq rsi, rax
  subq 3, rax
  notq rax
  negq rax
  retq
`)
	c := emu.Compile(p)
	lanes, refs := newBatchMachines(batchWidth)
	var b emu.Batch
	snaps := make([]*emu.Snapshot, batchWidth)
	for _, budget := range []int{1, 3, 7, 4096} {
		for i := range snaps {
			snaps[i] = randomSnapshot(rng)
			lanes[i].MaxSteps = budget
			refs[i].MaxSteps = budget
		}
		runBatchDiff(t, &b, lanes, refs, c, snaps, fmt.Sprintf("budget %d", budget))
		if budget < len(p.Insts)-1 {
			for i := range lanes {
				out := refs[i].RunCompiled(c)
				if !out.Exhaust {
					t.Fatalf("budget %d lane %d: expected exhaustion, got %+v", budget, i, out)
				}
				break
			}
		}
	}
}

// TestBatchedPatchThenRerun mutates slots through the Patch path between
// batched runs, mirroring how the MCMC loop drives the evaluator.
func TestBatchedPatchThenRerun(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	p := x64.MustParse(`
  cmpq rsi, rdi
  jae .L0
  addq rsi, rax
.L0:
  xorq rdx, rdx
  addq rdi, rax
`)
	c := emu.Compile(p)
	lanes, refs := newBatchMachines(batchWidth)
	var b emu.Batch
	snaps := make([]*emu.Snapshot, batchWidth)
	for i := range snaps {
		snaps[i] = randomSnapshot(rng)
	}
	jae := p.Insts[1] // jae .L0, saved before it is edited away
	edits := []struct {
		slot int
		with x64.Inst
	}{
		{4, x64.MustParse("subq rdi, rax").Insts[0]},
		{2, x64.MustParse("adcq rsi, rax").Insts[0]},
		{1, x64.MustParse("movq rdi, rcx").Insts[0]}, // delete the branch: pure lockstep
		{1, jae}, // and re-create it
		{4, x64.MustParse("divq rsi").Insts[0]},
	}
	runBatchDiff(t, &b, lanes, refs, c, snaps, "before edits")
	for step, e := range edits {
		p.Insts[e.slot] = e.with
		c.Patch(e.slot)
		runBatchDiff(t, &b, lanes, refs, c, snaps, fmt.Sprintf("edit %d", step))
		if t.Failed() {
			t.Fatalf("diverging program after edit %d:\n%s", step, p)
		}
	}
}

// TestBatchedSingleAndEmpty pins the degenerate widths: a one-lane batch
// must be exactly scalar, and an empty batch is a no-op.
func TestBatchedSingleAndEmpty(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	p := x64.MustParse("addq rsi, rax\ncmpq rdi, rax\nsetb cl")
	c := emu.Compile(p)
	lanes, refs := newBatchMachines(1)
	var b emu.Batch
	runBatchDiff(t, &b, lanes, refs, c, []*emu.Snapshot{randomSnapshot(rng)}, "single lane")
	if got := b.Run(c, nil); len(got) != 0 {
		t.Fatalf("empty batch returned %d outcomes", len(got))
	}
}
