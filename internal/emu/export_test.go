package emu

import (
	"reflect"

	"repro/internal/x64"
)

// FallbackSlots returns the indices of executable slots that lowered to the
// generic interpreting handler — the slots RunCompiled would serve through
// the opcode switch. The dispatch-counter tests pin this to empty on the
// tracked kernels.
func (c *Compiled) FallbackSlots() []int {
	generic := reflect.ValueOf(handlerFn(hGeneric)).Pointer()
	var out []int
	for i := range c.ops {
		u := &c.ops[i]
		if u.run != nil && reflect.ValueOf(u.run).Pointer() == generic {
			out = append(out, i)
		}
	}
	return out
}

// XmmRestores reports how many individual XMM register restores
// LoadSnapshotCached has performed over the machine's lifetime.
func (m *Machine) XmmRestores() int { return m.xmmRestores }

// SlotKinds exposes the per-slot dispatch codes, so the differential fuzz
// targets can pin a patched form's liveness-driven variant selection to a
// fresh compile's, not just its observable behaviour.
func (c *Compiled) SlotKinds() []uint8 {
	out := make([]uint8, len(c.ops))
	for i := range c.ops {
		out[i] = uint8(c.ops[i].kind)
	}
	return out
}

// RegCountsByScan recomputes the register-liveness coverage counters by
// direct scan — the pin for the incrementally maintained
// RegFreeSlots/RegWritingSlots under patch and restore storms.
func (c *Compiled) RegCountsByScan() (free, writing int) {
	for i := range c.ops {
		if c.ops[i].nr {
			free++
		}
		if c.regs[i].writes() {
			writing++
		}
	}
	return free, writing
}

// LiveOuts exposes the per-slot live-out flag sets computed by the
// liveness pass, for the directed liveness tests.
func (c *Compiled) LiveOuts() []x64.FlagSet {
	out := make([]x64.FlagSet, len(c.flags))
	for i := range c.flags {
		out[i] = c.flags[i].liveOut
	}
	return out
}
