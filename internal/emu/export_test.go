package emu

import "reflect"

// FallbackSlots returns the indices of executable slots that lowered to the
// generic interpreting handler — the slots RunCompiled would serve through
// the opcode switch. The dispatch-counter tests pin this to empty on the
// tracked kernels.
func (c *Compiled) FallbackSlots() []int {
	generic := reflect.ValueOf(handlerFn(hGeneric)).Pointer()
	var out []int
	for i := range c.ops {
		u := &c.ops[i]
		if u.run != nil && reflect.ValueOf(u.run).Pointer() == generic {
			out = append(out, i)
		}
	}
	return out
}

// XmmRestores reports how many individual XMM register restores
// LoadSnapshotCached has performed over the machine's lifetime.
func (m *Machine) XmmRestores() int { return m.xmmRestores }
