// Package store is the persistent content-addressed rewrite cache behind
// the serving mode: a map from canonical fingerprint (internal/canon) to
// proven rewrites with their Eq.13 cost, the counterexample set that
// hardened them, the learned testcase-rejection profile, and search
// metadata.
//
// The layout is an in-memory LRU front over an append-only JSONL file.
// Reads hit memory first and fall back to a file scan (an entry evicted
// from the LRU is never lost, only slower); writes append a record and the
// file is compacted — latest record per key wins, rewritten via a
// temporary file and an atomic rename — once the append log outgrows the
// live set. Records are versioned and loading is corruption-tolerant: a
// truncated or garbled line is counted and skipped, never fatal, so a
// crash mid-append costs at most the interrupted record.
package store

import (
	"bufio"
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// Version is the record format version; records with any other version are
// skipped on load (forward- and backward-compatibly: they count as bad
// records, not errors).
const Version = 1

// BankVersion is the schema version of the counterexample-bank field
// (Entry.BankV / Entry.Bank). Bank payloads with any other version are
// ignored on load — old logs without the field (BankV zero) still load,
// they just contribute nothing to the bank.
const BankVersion = 1

// bankFP is the reserved pseudo-fingerprint under which the global
// counterexample bank is persisted as an ordinary JSONL record. It is not
// valid hex, so it can never collide with a real canon fingerprint.
const bankFP = "!cexbank"

// bankCap bounds the in-memory (and persisted) bank; the oldest
// counterexamples are dropped first once it fills.
const bankCap = 1024

// Cex is a stored counterexample input: the register state that once
// distinguished a candidate from the target. Memory is not stored — replay
// rebuilds a shape-correct snapshot from the kernel's own input spec and
// overrides the non-pointer registers, exactly like live refinement does.
type Cex struct {
	Regs  [16]uint64    `json:"regs"`
	Xmm   [16][2]uint64 `json:"xmm,omitempty"`
	Flags uint8         `json:"flags,omitempty"`
}

// Meta records how the cached rewrite was found.
type Meta struct {
	Kernel      string `json:"kernel,omitempty"`
	Seed        int64  `json:"seed,omitempty"`
	Proposals   int64  `json:"proposals,omitempty"`
	Refinements int    `json:"refinements,omitempty"`
	SearchMS    int64  `json:"search_ms,omitempty"`
	Verdict     string `json:"verdict,omitempty"`
}

// Entry is one proven rewrite for one exact fingerprint+constants key.
// Programs are stored as canonical-space assembly text (the x64 printer's
// format, re-parsed on load), so records stay inspectable and survive
// instruction-encoding refactors.
type Entry struct {
	Version int     `json:"v"`
	FP      string  `json:"fp"`
	Consts  []int64 `json:"consts,omitempty"`
	Target  string  `json:"target"`
	Rewrite string  `json:"rewrite"`

	// CostH is the Eq.13 static latency sum of the canonical rewrite.
	CostH float64 `json:"cost_h"`

	// Cexs is the counterexample set that refined this kernel's τ; served
	// hits replay it as cheap revalidation, near-misses seed their τ with
	// it.
	Cexs []Cex `json:"cexs,omitempty"`

	// Profile is the SharedProfile counter snapshot (testcase-rejection
	// profile) learned during the search that produced the rewrite.
	Profile []int64 `json:"profile,omitempty"`

	// BankV versions the Bank field independently of the record format;
	// payloads whose BankV differs from BankVersion are ignored on load.
	BankV int `json:"bank_v,omitempty"`

	// Bank holds counterexamples in *canonical* register space (mapped
	// through the submitting kernel's canon.Form bijection), so a cex found
	// on one kernel replays on every α-renamed sibling. Entries under the
	// reserved bank key carry the whole global bank here; regular entries
	// carry the canonicalised cexs of their own kernel.
	Bank []Cex `json:"bank,omitempty"`

	Meta Meta `json:"meta"`
}

// Key returns the exact content address of an entry: fingerprint plus a
// hash of the constant vector. Entries sharing a fingerprint but differing
// in constants are distinct exact keys in the same near-miss class.
func Key(fp string, consts []int64) string {
	if len(consts) == 0 {
		return fp
	}
	h := sha256.New()
	var buf [8]byte
	for _, c := range consts {
		binary.LittleEndian.PutUint64(buf[:], uint64(c))
		h.Write(buf[:])
	}
	return fp + "+" + hex.EncodeToString(h.Sum(nil)[:8])
}

// Stats counts store traffic since Open.
type Stats struct {
	Entries    int   `json:"entries"`
	Hits       int64 `json:"hits"`
	Misses     int64 `json:"misses"`
	NearHits   int64 `json:"near_hits"`
	Puts       int64 `json:"puts"`
	Evictions  int64 `json:"evictions"`
	BadRecords int64 `json:"bad_records"`
	DiskReads  int64 `json:"disk_reads"`
	Compacts   int64 `json:"compacts"`
	BankSize   int   `json:"bank_size,omitempty"`
}

// Store is the cache. All methods are safe for concurrent use.
type Store struct {
	mu   sync.Mutex
	path string // "" = memory-only
	cap  int

	mem  map[string]*list.Element // key → element whose Value is *Entry
	lru  *list.List               // front = most recently used
	byFP map[string][]string      // fingerprint → exact keys (all, incl. evicted)

	appended int // records appended since the last compaction
	stats    Stats

	bank     []Cex            // global cross-kernel counterexample bank, oldest first
	bankSeen map[Cex]struct{} // dedup index over bank
}

// DefaultCap is the in-memory entry cap used when Open is given a
// non-positive one.
const DefaultCap = 4096

// Open loads (or creates) a store at path; an empty path makes a
// memory-only store. Loading tolerates a missing file and corrupt records.
func Open(path string, memCap int) (*Store, error) {
	if memCap <= 0 {
		memCap = DefaultCap
	}
	s := &Store{
		path:     path,
		cap:      memCap,
		mem:      make(map[string]*list.Element),
		lru:      list.New(),
		byFP:     make(map[string][]string),
		bankSeen: make(map[Cex]struct{}),
	}
	if path == "" {
		return s, nil
	}
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
	}
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return s, nil
	}
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	lines := s.scan(f, func(e *Entry) {
		s.foldBank(e)
		if e.FP == bankFP {
			return // reserved bank record, not a rewrite entry
		}
		s.insert(e, false)
	})
	f.Close()
	// Open replays the whole log; a long-lived process restarted against a
	// log dominated by superseded lines would otherwise pay that cost on
	// every start, forever (compaction only ran on Put paths). Compact here
	// when dead lines dominate live keys. Failure is non-fatal: the store
	// loaded fine, compaction is an optimisation.
	live := s.keyCount()
	if len(s.bank) > 0 {
		live++
	}
	if lines > 64 && lines > 2*live {
		_ = s.compactLocked()
	}
	return s, nil
}

// foldBank merges any versioned bank payload carried by e into the global
// counterexample bank (deduplicated, bounded). Caller holds mu or is still
// single-threaded in Open.
func (s *Store) foldBank(e *Entry) {
	if e.BankV != BankVersion {
		return
	}
	for _, cx := range e.Bank {
		s.addCexLocked(cx)
	}
}

// addCexLocked adds one cex to the bank unless already present, evicting
// the oldest once the bank is full. Reports whether cx was new.
func (s *Store) addCexLocked(cx Cex) bool {
	if _, ok := s.bankSeen[cx]; ok {
		return false
	}
	if len(s.bank) >= bankCap {
		delete(s.bankSeen, s.bank[0])
		s.bank = s.bank[1:]
	}
	s.bank = append(s.bank, cx)
	s.bankSeen[cx] = struct{}{}
	return true
}

// scan walks a JSONL stream, calling emit for every well-formed
// current-version record and counting the rest as bad. Returns the number
// of non-empty lines seen (well-formed or not), so Open can judge the
// dead-line ratio.
func (s *Store) scan(f *os.File, emit func(*Entry)) int {
	lines := 0
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		lines++
		var e Entry
		if err := json.Unmarshal(line, &e); err != nil || e.Version != Version || e.FP == "" {
			s.stats.BadRecords++
			continue
		}
		emit(&e)
	}
	// A read error mid-file (or an over-long line) truncates the scan; what
	// loaded so far stays usable.
	if sc.Err() != nil {
		s.stats.BadRecords++
	}
	return lines
}

// insert places e in the memory front (latest version of a key wins) and
// indexes its fingerprint. Caller holds mu (or is still single-threaded in
// Open).
func (s *Store) insert(e *Entry, isPut bool) {
	key := Key(e.FP, e.Consts)
	if el, ok := s.mem[key]; ok {
		el.Value = e
		s.lru.MoveToFront(el)
		return
	}
	s.mem[key] = s.lru.PushFront(e)
	if !contains(s.byFP[e.FP], key) {
		s.byFP[e.FP] = append(s.byFP[e.FP], key)
	}
	for s.lru.Len() > s.cap {
		oldest := s.lru.Back()
		old := oldest.Value.(*Entry)
		delete(s.mem, Key(old.FP, old.Consts))
		s.lru.Remove(oldest)
		if isPut || s.path != "" {
			s.stats.Evictions++
		}
	}
}

func contains(xs []string, x string) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// Get returns the entry at the exact key (fp, consts), consulting the
// memory front first and falling back to a file scan for evicted entries.
func (s *Store) Get(fp string, consts []int64) (*Entry, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.lookup(fp, consts)
	if ok {
		s.stats.Hits++
	} else {
		s.stats.Misses++
	}
	return e, ok
}

// lookup is Get without stats accounting; caller holds mu.
func (s *Store) lookup(fp string, consts []int64) (*Entry, bool) {
	key := Key(fp, consts)
	if el, ok := s.mem[key]; ok {
		s.lru.MoveToFront(el)
		return el.Value.(*Entry), true
	}
	if s.path == "" || !contains(s.byFP[fp], key) {
		return nil, false
	}
	// Evicted but on disk: rescan for the latest record under this key.
	f, err := os.Open(s.path)
	if err != nil {
		return nil, false
	}
	defer f.Close()
	s.stats.DiskReads++
	var found *Entry
	s.scan(f, func(e *Entry) {
		if Key(e.FP, e.Consts) == key {
			found = e
		}
	})
	if found == nil {
		return nil, false
	}
	s.insert(found, false)
	return found, true
}

// Near returns every stored entry in fp's fingerprint class — the same
// canonical skeleton under any constant vector. The exact entry (if any)
// is included; callers that already missed on Get use the rest as
// warm-start material.
func (s *Store) Near(fp string) []*Entry {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []*Entry
	for _, key := range s.byFP[fp] {
		if el, ok := s.mem[key]; ok {
			out = append(out, el.Value.(*Entry))
			continue
		}
		if e, ok := s.scanKey(key); ok {
			out = append(out, e)
		}
	}
	if len(out) > 0 {
		s.stats.NearHits++
	}
	return out
}

// scanKey fetches one evicted key from disk; caller holds mu.
func (s *Store) scanKey(key string) (*Entry, bool) {
	if s.path == "" {
		return nil, false
	}
	f, err := os.Open(s.path)
	if err != nil {
		return nil, false
	}
	defer f.Close()
	s.stats.DiskReads++
	var found *Entry
	s.scan(f, func(e *Entry) {
		if Key(e.FP, e.Consts) == key {
			found = e
		}
	})
	return found, found != nil
}

// Put stores e (latest write per key wins), appends it to the log, and
// compacts the log when it has outgrown the live set.
func (s *Store) Put(e *Entry) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	e.Version = Version
	s.insert(e, true)
	s.foldBank(e)
	s.stats.Puts++
	if s.path == "" {
		return nil
	}
	line, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	f, err := os.OpenFile(s.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	_, werr := f.Write(append(line, '\n'))
	cerr := f.Close()
	if werr != nil || cerr != nil {
		return fmt.Errorf("store: append: %w", firstErr(werr, cerr))
	}
	s.appended++
	if s.appended > 64 && s.appended > 2*s.keyCount() {
		return s.compactLocked()
	}
	return nil
}

// AddCexs merges cexs (in canonical register space) into the global
// counterexample bank and, when any were new, persists the whole bank
// under its reserved key — one JSONL record, superseded in place by the
// next persist and collapsed to the latest copy on compaction.
func (s *Store) AddCexs(cexs []Cex) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	added := false
	for _, cx := range cexs {
		if s.addCexLocked(cx) {
			added = true
		}
	}
	if !added || s.path == "" {
		return nil
	}
	e := &Entry{
		Version: Version,
		FP:      bankFP,
		BankV:   BankVersion,
		Bank:    append([]Cex(nil), s.bank...),
	}
	line, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	f, err := os.OpenFile(s.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	_, werr := f.Write(append(line, '\n'))
	cerr := f.Close()
	if werr != nil || cerr != nil {
		return fmt.Errorf("store: append: %w", firstErr(werr, cerr))
	}
	s.appended++
	if s.appended > 64 && s.appended > 2*s.keyCount() {
		return s.compactLocked()
	}
	return nil
}

// BankCexs snapshots the global counterexample bank, oldest first.
func (s *Store) BankCexs() []Cex {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Cex(nil), s.bank...)
}

// BankLen reports the number of distinct counterexamples in the bank.
func (s *Store) BankLen() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.bank)
}

func firstErr(errs ...error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

func (s *Store) keyCount() int {
	n := 0
	for _, keys := range s.byFP {
		n += len(keys)
	}
	return n
}

// Compact rewrites the log to one record per live key, atomically
// (temporary file + rename). A crash at any point leaves either the old or
// the new file intact.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.compactLocked()
}

func (s *Store) compactLocked() error {
	if s.path == "" {
		return nil
	}
	// Latest record per key: disk first (covers evicted keys), memory
	// overlaid (newer than anything on disk for keys it holds).
	latest := make(map[string]*Entry)
	if f, err := os.Open(s.path); err == nil {
		s.scan(f, func(e *Entry) { latest[Key(e.FP, e.Consts)] = e })
		f.Close()
	}
	for key, el := range s.mem {
		latest[key] = el.Value.(*Entry)
	}

	tmp, err := os.CreateTemp(filepath.Dir(s.path), ".store-compact-*")
	if err != nil {
		return fmt.Errorf("store: compact: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	w := bufio.NewWriter(tmp)
	enc := json.NewEncoder(w)
	for _, keys := range s.byFP {
		for _, key := range keys {
			if e, ok := latest[key]; ok {
				if err := enc.Encode(e); err != nil {
					tmp.Close()
					return fmt.Errorf("store: compact: %w", err)
				}
			}
		}
	}
	if len(s.bank) > 0 {
		be := &Entry{Version: Version, FP: bankFP, BankV: BankVersion, Bank: s.bank}
		if err := enc.Encode(be); err != nil {
			tmp.Close()
			return fmt.Errorf("store: compact: %w", err)
		}
	}
	if err := w.Flush(); err != nil {
		tmp.Close()
		return fmt.Errorf("store: compact: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("store: compact: %w", err)
	}
	if err := os.Rename(tmp.Name(), s.path); err != nil {
		return fmt.Errorf("store: compact: %w", err)
	}
	s.appended = 0
	s.stats.Compacts++
	return nil
}

// Len reports the number of distinct exact keys known to the store
// (in-memory and evicted-to-disk alike).
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.keyCount()
}

// Stats snapshots the traffic counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Entries = s.keyCount()
	st.BankSize = len(s.bank)
	return st
}

// Close compacts a file-backed store. The store stays usable (Close is
// about durability, not lifecycle).
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.appended == 0 {
		return nil
	}
	return s.compactLocked()
}
