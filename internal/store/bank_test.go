package store

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func cex(seed uint64) Cex {
	var cx Cex
	for i := range cx.Regs {
		cx.Regs[i] = seed + uint64(i)
	}
	cx.Flags = uint8(seed)
	return cx
}

func TestBankPersistRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.jsonl")
	s, err := Open(path, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AddCexs([]Cex{cex(1), cex(2), cex(1)}); err != nil {
		t.Fatal(err)
	}
	if s.BankLen() != 2 {
		t.Fatalf("BankLen %d, want 2 (duplicate must fold)", s.BankLen())
	}

	// Reopen: the bank survives the process boundary, ordered and intact.
	s2, err := Open(path, 8)
	if err != nil {
		t.Fatal(err)
	}
	got := s2.BankCexs()
	if len(got) != 2 || got[0] != cex(1) || got[1] != cex(2) {
		t.Fatalf("reloaded bank %+v, want [cex(1) cex(2)]", got)
	}
	if st := s2.Stats(); st.BankSize != 2 {
		t.Fatalf("BankSize %d, want 2", st.BankSize)
	}
	// The reserved bank record must not masquerade as a rewrite entry.
	if s2.Len() != 0 {
		t.Fatalf("bank record leaked into the key space: Len %d", s2.Len())
	}
	if _, ok := s2.Get(bankFP, nil); ok {
		t.Fatal("reserved bank key served as a rewrite entry")
	}
}

// TestBankSchemaVersioning: logs written before the bank existed (no bank
// fields) still load, and bank payloads under a foreign schema version are
// ignored rather than misinterpreted.
func TestBankSchemaVersioning(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.jsonl")
	legacy, _ := json.Marshal(entry("aa11", nil, "legacy rewrite"))
	future := &Entry{Version: Version, FP: bankFP, BankV: BankVersion + 1,
		Bank: []Cex{cex(9)}}
	futureLine, _ := json.Marshal(future)
	content := string(legacy) + "\n" + string(futureLine) + "\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := Open(path, 8)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("aa11", nil); !ok {
		t.Fatal("pre-bank record failed to load")
	}
	if s.BankLen() != 0 {
		t.Fatalf("foreign-version bank payload folded anyway: BankLen %d", s.BankLen())
	}
	// A versioned per-entry Bank folds into the global bank on load.
	e := entry("bb22", nil, "banked rewrite")
	e.BankV = BankVersion
	e.Bank = []Cex{cex(3)}
	if err := s.Put(e); err != nil {
		t.Fatal(err)
	}
	if s.BankLen() != 1 {
		t.Fatalf("current-version entry bank not folded: BankLen %d", s.BankLen())
	}
	s2, _ := Open(path, 8)
	if s2.BankLen() != 1 {
		t.Fatalf("reloaded entry-carried bank: BankLen %d, want 1", s2.BankLen())
	}
}

func TestBankSurvivesCompaction(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.jsonl")
	s, _ := Open(path, 8)
	if err := s.AddCexs([]Cex{cex(1), cex(2)}); err != nil {
		t.Fatal(err)
	}
	s.Put(entry("aa", nil, "rw"))
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(path)
	if lines := strings.Count(string(data), "\n"); lines != 2 {
		t.Fatalf("compacted log has %d records, want 2 (entry + bank)", lines)
	}
	s2, _ := Open(path, 8)
	if s2.BankLen() != 2 {
		t.Fatalf("compaction dropped the bank: BankLen %d", s2.BankLen())
	}
	if _, ok := s2.Get("aa", nil); !ok {
		t.Fatal("compaction dropped the entry")
	}
}

// TestOpenCompactsDenseLog: short-lived sessions that append without ever
// compacting (no Close, under the per-session auto-compact threshold) used
// to grow the log forever — Open itself must compact once dead lines
// dominate live keys.
func TestOpenCompactsDenseLog(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.jsonl")
	for session := 0; session < 2; session++ {
		s, err := Open(path, 8)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 60; i++ {
			if err := s.Put(entry("hot", nil, "rw")); err != nil {
				t.Fatal(err)
			}
		}
		// No Close: the session ends without the compaction it would run.
	}
	data, _ := os.ReadFile(path)
	if lines := strings.Count(string(data), "\n"); lines != 120 {
		t.Fatalf("precondition: log has %d lines, want 120 superseded appends", lines)
	}

	s, err := Open(path, 8)
	if err != nil {
		t.Fatal(err)
	}
	if s.Stats().Compacts != 1 {
		t.Fatalf("Open did not compact a log of 120 lines over 1 live key")
	}
	data, _ = os.ReadFile(path)
	if lines := strings.Count(string(data), "\n"); lines != 1 {
		t.Fatalf("post-Open log has %d lines, want 1", lines)
	}
	if _, ok := s.Get("hot", nil); !ok {
		t.Fatal("Open-side compaction lost the live entry")
	}

	// A healthy log (live keys dominate) must NOT be rewritten on Open.
	s2, _ := Open(path, 8)
	if s2.Stats().Compacts != 0 {
		t.Fatal("Open compacted an already-compact log")
	}
}

func TestAddCexsConcurrentDedup(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.jsonl")
	s, _ := Open(path, 8)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				s.AddCexs([]Cex{cex(7)}) // same cex from every goroutine
			}
		}()
	}
	wg.Wait()
	if s.BankLen() != 1 {
		t.Fatalf("BankLen %d, want 1 (concurrent duplicates must fold)", s.BankLen())
	}
	s2, _ := Open(path, 8)
	if s2.BankLen() != 1 {
		t.Fatalf("reloaded BankLen %d, want 1", s2.BankLen())
	}
}
