package store

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func entry(fp string, consts []int64, rewrite string) *Entry {
	return &Entry{
		Version: Version,
		FP:      fp,
		Consts:  consts,
		Target:  "movq rcx, rax\naddq rdx, rax",
		Rewrite: rewrite,
		CostH:   2,
		Cexs:    []Cex{{Regs: [16]uint64{1, 2, 3}, Flags: 0x1f}},
		Profile: []int64{5, 0, 3},
		Meta:    Meta{Kernel: "add", Verdict: "equal", Proposals: 1234},
	}
}

func TestPutGetRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.jsonl")
	s, err := Open(path, 8)
	if err != nil {
		t.Fatal(err)
	}
	e := entry("aa11", []int64{42, 7}, "leaq (rcx,rdx,1), rax")
	if err := s.Put(e); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get("aa11", []int64{42, 7})
	if !ok {
		t.Fatal("exact key missed")
	}
	if got.Rewrite != e.Rewrite || got.Profile[0] != 5 || got.Cexs[0].Regs[2] != 3 {
		t.Fatalf("round trip mangled entry: %+v", got)
	}
	if _, ok := s.Get("aa11", []int64{42, 8}); ok {
		t.Fatal("different constants must be a different exact key")
	}
	if _, ok := s.Get("bb22", []int64{42, 7}); ok {
		t.Fatal("different fingerprint must miss")
	}

	// Reopen: persistence survives the process boundary.
	s2, err := Open(path, 8)
	if err != nil {
		t.Fatal(err)
	}
	got, ok = s2.Get("aa11", []int64{42, 7})
	if !ok || got.Rewrite != e.Rewrite {
		t.Fatalf("reopened store lost the entry")
	}
	st := s2.Stats()
	if st.Entries != 1 || st.Hits != 1 || st.BadRecords != 0 {
		t.Fatalf("stats %+v", st)
	}
}

func TestLatestWriteWins(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.jsonl")
	s, _ := Open(path, 8)
	s.Put(entry("aa", nil, "old rewrite"))
	s.Put(entry("aa", nil, "new rewrite"))
	if got, _ := s.Get("aa", nil); got.Rewrite != "new rewrite" {
		t.Fatalf("in-memory: got %q", got.Rewrite)
	}
	s2, _ := Open(path, 8)
	if got, ok := s2.Get("aa", nil); !ok || got.Rewrite != "new rewrite" {
		t.Fatalf("reloaded: latest record must win")
	}
	if s2.Len() != 1 {
		t.Fatalf("Len %d, want 1", s2.Len())
	}
}

func TestCorruptRecordsSkipped(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.jsonl")
	good, _ := json.Marshal(entry("aa", nil, "keep me"))
	futured, _ := json.Marshal(&Entry{Version: Version + 1, FP: "ff", Rewrite: "future"})
	content := strings.Join([]string{
		string(good),
		`{"v":1,"fp":"trunc`, // crash mid-append
		"not json at all",
		string(futured),
		`{"v":1,"rewrite":"no fingerprint"}`,
	}, "\n") + "\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := Open(path, 8)
	if err != nil {
		t.Fatalf("corrupt file must not be fatal: %v", err)
	}
	if _, ok := s.Get("aa", nil); !ok {
		t.Fatal("good record lost among bad ones")
	}
	if st := s.Stats(); st.BadRecords != 4 || st.Entries != 1 {
		t.Fatalf("stats %+v, want 4 bad records and 1 entry", st)
	}
}

func TestLRUEvictionFallsBackToDisk(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.jsonl")
	s, _ := Open(path, 2)
	for i := 0; i < 5; i++ {
		s.Put(entry(fmt.Sprintf("fp%d", i), nil, fmt.Sprintf("rw%d", i)))
	}
	st := s.Stats()
	if st.Evictions != 3 {
		t.Fatalf("evictions %d, want 3", st.Evictions)
	}
	// fp0 was evicted from memory but must still be served (from disk).
	got, ok := s.Get("fp0", nil)
	if !ok || got.Rewrite != "rw0" {
		t.Fatalf("evicted entry not recovered from disk: %v %v", got, ok)
	}
	if s.Stats().DiskReads == 0 {
		t.Fatal("expected a disk read for the evicted key")
	}
	// And it is back in the memory front now: no further disk read.
	before := s.Stats().DiskReads
	if _, ok := s.Get("fp0", nil); !ok {
		t.Fatal("re-promoted entry missed")
	}
	if s.Stats().DiskReads != before {
		t.Fatal("re-promoted entry hit disk again")
	}
}

func TestMemoryOnlyStoreDropsEvicted(t *testing.T) {
	s, _ := Open("", 2)
	for i := 0; i < 4; i++ {
		s.Put(entry(fmt.Sprintf("fp%d", i), nil, "rw"))
	}
	if _, ok := s.Get("fp0", nil); ok {
		t.Fatal("memory-only store has no disk to fall back to")
	}
	if _, ok := s.Get("fp3", nil); !ok {
		t.Fatal("recent entry must survive")
	}
}

func TestNearMissClass(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.jsonl")
	s, _ := Open(path, 8)
	s.Put(entry("classA", []int64{1}, "rwA1"))
	s.Put(entry("classA", []int64{2}, "rwA2"))
	s.Put(entry("classB", []int64{1}, "rwB1"))
	near := s.Near("classA")
	if len(near) != 2 {
		t.Fatalf("near-miss class size %d, want 2", len(near))
	}
	for _, e := range near {
		if e.FP != "classA" {
			t.Fatalf("foreign entry in class: %+v", e)
		}
	}
	if got := s.Near("classC"); len(got) != 0 {
		t.Fatalf("unknown class returned %d entries", len(got))
	}
	// The class survives eviction and reload.
	s2, _ := Open(path, 1)
	if near := s2.Near("classA"); len(near) != 2 {
		t.Fatalf("reloaded near-miss class size %d, want 2", len(near))
	}
}

func TestCompaction(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.jsonl")
	s, _ := Open(path, 8)
	// Rewrite one key many times: the log accumulates records.
	for i := 0; i < 200; i++ {
		s.Put(entry("hot", nil, fmt.Sprintf("rw%d", i)))
		s.Put(entry("cold", nil, "stable"))
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Count(string(data), "\n")
	if lines != 2 {
		t.Fatalf("compacted log has %d records, want 2", lines)
	}
	s2, _ := Open(path, 8)
	if got, ok := s2.Get("hot", nil); !ok || got.Rewrite != "rw199" {
		t.Fatalf("compaction lost the latest version: %+v", got)
	}
	// Auto-compaction must have fired during the churn above too.
	if s.Stats().Compacts == 0 {
		t.Fatal("auto-compaction never fired over 400 appends of 2 keys")
	}
}

func TestConcurrentAccess(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.jsonl")
	s, _ := Open(path, 16)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				fp := fmt.Sprintf("fp%d", i%20)
				if i%3 == 0 {
					s.Put(entry(fp, nil, fmt.Sprintf("rw%d-%d", g, i)))
				} else {
					s.Get(fp, nil)
					s.Near(fp)
				}
			}
		}(g)
	}
	wg.Wait()
	if s.Len() == 0 {
		t.Fatal("no entries after concurrent churn")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path, 16); err != nil {
		t.Fatalf("store unreadable after concurrent churn: %v", err)
	}
}
