package mcmc

// Tests for the incremental patching discipline of the compiled evaluation
// pipeline: after any sequence of accepted and rejected moves, the
// patched-in-place compiled form must score exactly like a from-scratch
// Compile of the current program (and like the interpreted reference).

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"repro/internal/cost"
	"repro/internal/emu"
	"repro/internal/testgen"
	"repro/internal/x64"
)

// TestPatchedCompiledScoresLikeFreshCompile replays the compiled chain
// discipline — propose in place, patch the touched slots, undo and re-patch
// on rejection — and periodically cross-checks the accumulated patches
// against a fresh Compile and the interpreter.
func TestPatchedCompiledScoresLikeFreshCompile(t *testing.T) {
	target := x64.MustParse(`
  movq rdi, rcx
  subq 1, rcx
  andq rdi, rcx
  movq rcx, rax
`)
	spec := identitySpec()
	tests, err := testgen.Generate(target, spec, 32, rand.New(rand.NewSource(51)))
	if err != nil {
		t.Fatal(err)
	}
	params := PaperParams
	params.Ell = 16
	s := &Sampler{
		Params: params,
		Pools:  PoolsFor(target, false),
		Cost:   cost.New(tests, spec.LiveOut, cost.Improved, 1),
		Rng:    rand.New(rand.NewSource(52)),
	}

	cur := target.PadTo(params.Ell)
	comp := emu.Compile(cur)
	curCost := s.Cost.EvalCompiled(comp, cost.MaxBudget).Cost

	steps, accepts, rejects := 5000, 0, 0
	for i := 0; i < steps; i++ {
		rec, ok := s.proposeTracked(cur)
		if !ok {
			continue
		}
		for k := 0; k < rec.n; k++ {
			comp.Patch(rec.idx[k])
		}
		bound := curCost - math.Log(s.Rng.Float64())/s.Params.Beta
		res := s.Cost.EvalCompiled(comp, bound)
		if !res.Early && res.Cost <= bound {
			curCost = res.Cost
			accepts++
		} else {
			for k := 0; k < rec.n; k++ {
				cur.Insts[rec.idx[k]] = rec.old[k]
			}
			for k := 0; k < rec.n; k++ {
				comp.Patch(rec.idx[k])
			}
			rejects++
		}

		if i%37 != 0 {
			continue
		}
		// Fresh cost functions on both sides so the adaptive order state of
		// the chain's Fn cannot mask (or fake) a divergence; identical
		// construction means identical (identity) evaluation order, so the
		// scores must match bit for bit.
		fa := cost.New(tests, spec.LiveOut, cost.Improved, 1)
		fb := cost.New(tests, spec.LiveOut, cost.Improved, 1)
		got := fa.EvalCompiled(comp, cost.MaxBudget)
		want := fb.EvalCompiled(emu.Compile(cur), cost.MaxBudget)
		if got != want {
			t.Fatalf("step %d (%d accepts, %d rejects): patched form scores %+v, fresh compile %+v\n%s",
				i, accepts, rejects, got, want, cur)
		}
		if interp := fb.Eval(cur, cost.MaxBudget); got != interp {
			t.Fatalf("step %d: compiled score %+v != interpreted %+v\n%s", i, got, interp, cur)
		}
	}
	if accepts == 0 || rejects == 0 {
		t.Fatalf("move sequence did not exercise both branches: %d accepts, %d rejects", accepts, rejects)
	}
}

// TestCompiledAndInterpretedChainsAgree runs the same seeded chain through
// both evaluation paths and checks they accept the same proposals and land
// on the same best program. (Floating-point summation order can differ once
// the adaptive order diverges from identity, but on this kernel every
// per-testcase cost is integral, so the trajectories must match exactly.)
func TestCompiledAndInterpretedChainsAgree(t *testing.T) {
	target := x64.MustParse("movq rdi, rax\naddq rsi, rax")
	spec := identitySpec()
	run := func(interpreted bool) Result {
		s := newSampler(t, target, spec, cost.Improved, 1.0, 12, 61)
		s.Interpreted = interpreted
		return s.Run(context.Background(), target, 20000)
	}
	ri := run(true)
	rc := run(false)
	if ri.BestCost != rc.BestCost || ri.Best.String() != rc.Best.String() {
		t.Fatalf("paths diverged:\ninterpreted best (%v):\n%s\ncompiled best (%v):\n%s",
			ri.BestCost, ri.Best, rc.BestCost, rc.Best)
	}
	if ri.Stats.Proposals != rc.Stats.Proposals || ri.Stats.Accepts != rc.Stats.Accepts {
		t.Fatalf("stats diverged: interpreted %+v compiled %+v", ri.Stats, rc.Stats)
	}
}

// TestBatchedAndCompiledChainsAgree runs the same seeded chain with and
// without batched evaluation. The batched path is decision-identical to the
// scalar compiled one — same Results bit for bit, same rejection-profile
// stream — so the trajectories, the best program, and even TestsEvaluated
// must match exactly.
func TestBatchedAndCompiledChainsAgree(t *testing.T) {
	target := x64.MustParse("movq rdi, rax\naddq rsi, rax")
	spec := identitySpec()
	run := func(batched bool) Result {
		s := newSampler(t, target, spec, cost.Improved, 1.0, 12, 67)
		s.Batched = batched
		return s.Run(context.Background(), target, 20000)
	}
	rs := run(false)
	rb := run(true)
	if rs.BestCost != rb.BestCost || rs.Best.String() != rb.Best.String() {
		t.Fatalf("paths diverged:\nscalar best (%v):\n%s\nbatched best (%v):\n%s",
			rs.BestCost, rs.Best, rb.BestCost, rb.Best)
	}
	if rs.Stats != rb.Stats {
		t.Fatalf("stats diverged: scalar %+v batched %+v", rs.Stats, rb.Stats)
	}
}
