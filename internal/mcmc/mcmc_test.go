package mcmc

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/cost"
	"repro/internal/emu"
	"repro/internal/testgen"
	"repro/internal/x64"
)

// identitySpec builds a spec for a kernel computing rax := f(rdi, rsi).
func identitySpec() testgen.Spec {
	return testgen.Spec{
		BuildInput: func(rng *rand.Rand) *emu.Snapshot {
			a := testgen.NewArena(0x10000)
			a.SetReg(x64.RDI, rng.Uint64())
			a.SetReg(x64.RSI, rng.Uint64())
			return a.Snapshot()
		},
		LiveOut: testgen.LiveSet{GPRs: []testgen.LiveReg{{Reg: x64.RAX, Width: 8}}},
	}
}

func newSampler(t *testing.T, target *x64.Program, spec testgen.Spec,
	mode cost.Mode, perfWeight float64, ell int, seed int64) *Sampler {
	t.Helper()
	tests, err := testgen.Generate(target, spec, 32, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	params := PaperParams
	params.Ell = ell
	return &Sampler{
		Params: params,
		Pools:  PoolsFor(target, false),
		Cost:   cost.New(tests, spec.LiveOut, mode, perfWeight),
		Rng:    rand.New(rand.NewSource(seed + 1)),
	}
}

func TestProposalsPreserveValidity(t *testing.T) {
	target := x64.MustParse(`
  movq rdi, rax
  andq rsi, rax
  movl (rdi), ecx
  movl ecx, (rdi)
`)
	// Give the program a memory pool via a fake target with memory ops.
	s := &Sampler{
		Params: PaperParams,
		Pools:  PoolsFor(target, true),
		Rng:    rand.New(rand.NewSource(11)),
	}
	p := target.PadTo(20)
	// The pools include rdi-based memory operands, so memory moves have
	// material to work with. Snapshot validity after every move.
	for i := 0; i < 20000; i++ {
		s.propose(p)
		if err := p.Validate(); err != nil {
			t.Fatalf("move %d produced invalid program: %v\n%s", i, err, p)
		}
	}
}

func TestRandomProgramsAreValid(t *testing.T) {
	s := &Sampler{
		Params: PaperParams,
		Pools:  PoolsFor(x64.MustParse("movq (rdi), rax"), true),
		Rng:    rand.New(rand.NewSource(13)),
	}
	for i := 0; i < 200; i++ {
		p := s.RandomProgram()
		if err := p.Validate(); err != nil {
			t.Fatalf("random program %d invalid: %v", i, err)
		}
		if p.Len() != PaperParams.Ell {
			t.Fatalf("random program has %d slots, want %d", p.Len(), PaperParams.Ell)
		}
	}
}

func TestPoolsForHarvestsTarget(t *testing.T) {
	target := x64.MustParse(`
  movl (rsi,rcx,4), eax
  imull 12345, eax, eax
  movl eax, (rsi,rcx,4)
`)
	p := PoolsFor(target, false)
	foundImm := false
	for _, v := range p.Imms {
		if v == 12345 {
			foundImm = true
		}
	}
	if !foundImm {
		t.Error("target immediate 12345 not harvested")
	}
	found32 := false
	for _, m := range p.Mems {
		if m.Width == 4 && m.Base == x64.RSI && m.Index == x64.RCX {
			found32 = true
		}
	}
	if !found32 {
		t.Error("target memory shape not harvested")
	}
	for _, r := range p.Regs {
		if r == x64.RSP {
			t.Error("RSP must not be in the register pool")
		}
	}
}

func TestOptimizationShrinksVerboseCode(t *testing.T) {
	// An -O0-flavoured computation of rax := rdi & (rdi - 1) with
	// pointless register shuffling; optimization should find a shorter
	// equivalent and never lose correctness.
	target := x64.MustParse(`
  movq rdi, rcx
  movq rcx, rdx
  subq 1, rdx
  movq rdx, r8
  movq rcx, r9
  andq r8, r9
  movq r9, rax
`)
	spec := identitySpec()
	s := newSampler(t, target, spec, cost.Improved, 1.0, 16, 17)
	s.Params.Beta = 1.0 // optimization runs colder than synthesis (see DESIGN.md)
	s.RestartAfter = 10000
	res := s.Run(context.Background(), target, 150000)
	if !res.ZeroCost || res.BestCorrect == nil {
		t.Fatalf("optimization lost correctness: best cost %v\n%s", res.BestCost, res.Best)
	}
	// The rewrite must be strictly shorter than the target and correct.
	full := cost.New(s.Cost.Tests, spec.LiveOut, cost.Improved, 0)
	if c := full.Eval(res.BestCorrect, cost.MaxBudget); c.Cost != 0 {
		t.Fatalf("best rewrite is incorrect: eq cost %v\n%s", c.Cost, res.BestCorrect)
	}
	if got, want := res.BestCorrect.InstCount(), target.InstCount(); got >= want {
		t.Fatalf("optimizer found nothing: %d >= %d instructions", got, want)
	}
	t.Logf("optimized %d -> %d instructions:\n%s",
		target.InstCount(), res.BestCorrect.InstCount(), res.BestCorrect.Packed())
}

func TestSynthesisFindsTrivialKernel(t *testing.T) {
	// Synthesis from a random start must discover rax := rdi (§4.4's
	// synthesis phase on the simplest possible kernel).
	target := x64.MustParse("movq rdi, rax")
	spec := identitySpec()
	s := newSampler(t, target, spec, cost.Improved, 0, 8, 23)
	start := s.RandomProgram()
	res := s.Run(context.Background(), start, 150000)
	if !res.ZeroCost {
		t.Fatalf("synthesis failed: best cost %v\n%s", res.BestCost, res.Best)
	}
	full := cost.New(s.Cost.Tests, spec.LiveOut, cost.Improved, 0)
	if c := full.Eval(res.Best, cost.MaxBudget); c.Cost != 0 {
		t.Fatalf("synthesised rewrite incorrect: %v", c.Cost)
	}
	t.Logf("synthesised in <=150k proposals:\n%s", res.Best.Packed())
}

func TestDeterministicWithSeed(t *testing.T) {
	target := x64.MustParse("movq rdi, rax\naddq rsi, rax")
	spec := identitySpec()
	run := func() string {
		s := newSampler(t, target, spec, cost.Improved, 1.0, 12, 31)
		return s.Run(context.Background(), target, 5000).Best.String()
	}
	if run() != run() {
		t.Fatal("same seed must give same search trajectory")
	}
}

func TestEarlyTerminationReducesWork(t *testing.T) {
	target := x64.MustParse("movq rdi, rax\naddq rsi, rax")
	spec := identitySpec()

	s := newSampler(t, target, spec, cost.Improved, 0, 12, 37)
	start := s.RandomProgram()
	res := s.Run(context.Background(), start.Clone(), 20000)
	perProposal := float64(res.Stats.TestsEvaluated) / float64(res.Stats.Proposals)

	// Without the bound every proposal would evaluate all 32 testcases;
	// with it, the average must be strictly (and substantially) lower.
	if perProposal >= 31 {
		t.Fatalf("early termination ineffective: %.1f testcases/proposal", perProposal)
	}
	t.Logf("%.2f testcases evaluated per proposal (32 without early termination)", perProposal)
}

func TestStatsCallbacks(t *testing.T) {
	target := x64.MustParse("movq rdi, rax")
	spec := identitySpec()
	s := newSampler(t, target, spec, cost.Improved, 0, 8, 41)
	steps := 0
	s.StepInterval = 100
	s.OnStep = func(st Stats, cur float64) { steps++ }
	improves := 0
	s.OnImprove = func(iter int64, c float64, p *x64.Program) {
		improves++
		if p.Validate() != nil {
			t.Error("OnImprove delivered invalid program")
		}
	}
	s.Run(context.Background(), s.RandomProgram(), 5000)
	if steps == 0 {
		t.Error("OnStep never fired")
	}
	if improves == 0 {
		t.Error("OnImprove never fired")
	}
}

// TestRunSetBetaAndProposals pins the coordination hooks of a resumable
// Run: Proposals tracks the consumed budget across segments, and SetBeta
// migrates the chain to a new temperature rung that governs acceptance
// from the next proposal on (β=0 accepts everything; a very cold rung
// accepts only improvements).
func TestRunSetBetaAndProposals(t *testing.T) {
	target := x64.MustParse("movq rdi, rax\naddq rsi, rax")
	run := func(rebeta float64) (*Run, Result) {
		s := newSampler(t, target, identitySpec(), cost.Improved, 1, 10, 91)
		s.Params.Beta = 1000 // frozen: nothing but improvements accepted
		r := s.Begin(target, 4000)
		if !r.Step(context.Background(), 2000) {
			t.Fatal("run finished before its budget")
		}
		if got := r.Proposals(); got != 2000 {
			t.Fatalf("Proposals() = %d after a 2000-proposal segment", got)
		}
		if r.Beta() != 1000 {
			t.Fatalf("Beta() = %v before migration", r.Beta())
		}
		r.SetBeta(rebeta)
		if r.Beta() != rebeta {
			t.Fatalf("Beta() = %v after SetBeta(%v)", r.Beta(), rebeta)
		}
		r.Step(context.Background(), 2000)
		if got := r.Proposals(); got != 4000 {
			t.Fatalf("Proposals() = %d after the full budget", got)
		}
		if !r.Finished() {
			t.Fatal("run must report Finished at its budget")
		}
		return r, r.Result()
	}

	_, cold := run(1000) // stays frozen
	_, hot := run(0)     // β=0 from the midpoint: every proposal accepted
	if hot.Stats.Proposals != cold.Stats.Proposals {
		t.Fatalf("budgets diverged: %d vs %d", hot.Stats.Proposals, cold.Stats.Proposals)
	}
	if hot.Stats.Accepts <= cold.Stats.Accepts {
		t.Fatalf("SetBeta(0) did not take effect: %d accepts at β=0 vs %d frozen",
			hot.Stats.Accepts, cold.Stats.Accepts)
	}
}
