// Package mcmc implements the Metropolis-Hastings search of §3.2 and §4.3:
// candidate rewrites are fixed-length sequences of ℓ instruction slots (with
// the UNUSED token standing for empty slots), proposals are drawn from the
// paper's four move types (opcode, operand, swap, instruction), and
// acceptance follows the Metropolis ratio with the early-termination
// optimisation of §4.5 (Equation 14): the acceptance coin is flipped first,
// converted into a maximum acceptable cost, and testcase evaluation stops
// as soon as the running cost exceeds it.
//
// A chain evaluates candidates through the decode-once compiled pipeline by
// default: the current program is compiled once, every move mutates at most
// two instruction slots in place, exactly those slots are re-lowered in the
// compiled form (with the saved instructions restored — and re-patched — on
// rejection), and cost.Fn.EvalCompiled scores the patched form. Setting
// Sampler.Batched keeps that discipline but scores through
// cost.Fn.EvalCompiledBatched, which runs the tail of each evaluation as
// one emu.Batch lockstep sweep over all remaining testcases — same
// decisions, less dispatch. Setting Sampler.Interpreted reverts to the seed
// discipline (copy the ℓ-slot program and re-interpret it from scratch per
// proposal), kept alive as the semantic reference for differential tests
// and A/B benchmarks.
package mcmc

import (
	"context"
	"math"
	"math/rand"

	"repro/internal/cost"
	"repro/internal/emu"
	"repro/internal/testgen"
	"repro/internal/x64"
)

// Params are the MCMC parameters of Figure 11.
type Params struct {
	PC float64 // opcode move probability
	PO float64 // operand move probability
	PS float64 // swap move probability
	PI float64 // instruction move probability
	PU float64 // probability an instruction move proposes UNUSED

	Beta float64 // inverse temperature β
	Ell  int     // fixed sequence length ℓ
}

// PaperParams are the constants of Figure 11.
var PaperParams = Params{
	PC: 0.16, PO: 0.5, PS: 0.16, PI: 0.16, PU: 0.16,
	Beta: 0.1, Ell: 50,
}

// Pools are the operand equivalence classes proposals draw from: immediates
// come from a bag of predefined constants (§4.3), memory operands from the
// shapes the target uses, and registers from the general purpose file
// (minus RSP, protecting the stack discipline of §5.2).
type Pools struct {
	Regs []x64.Reg
	Imms []int64
	Mems []x64.Operand // memory operands harvested from the target
	Xmm  bool          // whether SSE operands/opcodes participate
}

// DefaultConstants is the predefined constant bag.
var DefaultConstants = []int64{
	0, 1, 2, 3, 4, 5, 6, 7, 8, 15, 16, 24, 31, 32, 48, 63, 64,
	-1, -2, -8, 255, 256, 0xffff, 0x7fffffff, 0x80000000, 0xffffffff,
	1 << 32, -1 << 31, 1 << 62,
}

// PoolsFor builds proposal pools from a target program: its memory operand
// shapes and immediate constants join the default bags, and SSE moves are
// enabled either when the target touches XMM registers or when sse is
// forced.
func PoolsFor(target *x64.Program, sse bool) Pools {
	p := Pools{Xmm: sse}
	for r := x64.Reg(0); r < x64.NumGPR; r++ {
		if r != x64.RSP {
			p.Regs = append(p.Regs, r)
		}
	}
	p.Imms = append(p.Imms, DefaultConstants...)
	seenMem := map[x64.Operand]bool{}
	for _, in := range target.Insts {
		for i := uint8(0); i < in.N; i++ {
			o := in.Opd[i]
			switch o.Kind {
			case x64.KindImm:
				p.Imms = append(p.Imms, o.Imm)
			case x64.KindMem:
				if !seenMem[o] {
					seenMem[o] = true
					p.Mems = append(p.Mems, o)
					// Also offer the same shape at other access widths.
					for _, w := range []uint8{1, 2, 4, 8, 16} {
						if w == o.Width {
							continue
						}
						alt := o
						alt.Width = w
						if !seenMem[alt] {
							seenMem[alt] = true
							p.Mems = append(p.Mems, alt)
						}
					}
				}
			case x64.KindXmm:
				p.Xmm = true
			}
		}
	}
	return p
}

// opcodeClasses maps a signature to the proposable opcodes accepting it,
// computed once: these are the paper's "equivalence classes of opcodes
// expecting the same number and type of operands".
var opcodeClasses = func() map[x64.Sig][]x64.Opcode {
	m := map[x64.Sig][]x64.Opcode{}
	for op := x64.Opcode(0); op < x64.NumOpcodes; op++ {
		info := x64.Info(op)
		if !info.Proposable {
			continue
		}
		for _, s := range info.Sigs {
			m[s] = append(m[s], op)
		}
	}
	return m
}()

// proposableOpcodes lists every proposable opcode, split by whether it
// involves SSE state (so non-SSE targets are not flooded with xmm noise).
var proposableOpcodes, proposableSSE = func() (gp, sse []x64.Opcode) {
	for op := x64.Opcode(0); op < x64.NumOpcodes; op++ {
		info := x64.Info(op)
		if !info.Proposable {
			continue
		}
		isSSE := false
		for _, s := range info.Sigs {
			for i := uint8(0); i < s.N; i++ {
				if s.Slot[i] == x64.TokX || s.Slot[i] == x64.TokM128 {
					isSSE = true
				}
			}
		}
		if isSSE {
			sse = append(sse, op)
		} else {
			gp = append(gp, op)
		}
	}
	return gp, sse
}()

// Stats accumulates sampler counters; TestsEvaluated feeds Figure 5.
type Stats struct {
	Proposals      int64
	Accepts        int64
	TestsEvaluated int64

	// RegFreeSlots / RegWritingSlots accumulate, per compiled proposal
	// (after patching, before evaluation — rejected proposals count), the
	// register-liveness pass's suppressed and register-writing slot totals
	// (emu.Compiled.RegFreeSlots/RegWritingSlots). Their ratio is the
	// dynamic fraction of dead register writes the pass removed from the
	// chain's actual workload. Zero on the interpreted path.
	RegFreeSlots    int64
	RegWritingSlots int64
}

// Sampler runs one MCMC chain. It is not safe for concurrent use; parallel
// search runs one Sampler per goroutine (§5.3).
type Sampler struct {
	Params Params
	Pools  Pools
	Cost   *cost.Fn
	Rng    *rand.Rand

	// Interpreted selects the seed evaluation discipline (full program
	// copy plus from-scratch interpretation per proposal) instead of the
	// compiled patch-and-evaluate pipeline. The two paths draw identical
	// proposal streams and agree on every accept/reject decision up to
	// floating-point summation order.
	Interpreted bool

	// Batched routes the compiled pipeline's scoring through
	// cost.Fn.EvalCompiledBatched: the tail of each evaluation runs all
	// remaining testcases through one emu.Batch lockstep sweep instead of
	// one machine at a time. Decision-identical to the scalar compiled
	// path (same Results bit for bit); ignored when Interpreted is set.
	Batched bool

	// OnImprove, when set, is invoked with a clone of the best-so-far
	// program each time the best cost drops (used to trace Figures 7/8).
	OnImprove func(iter int64, c float64, p *x64.Program)

	// liveIdx is liveSlot's scratch for the mutable-slot indices of the
	// current candidate, reused across proposals.
	liveIdx []int32

	// OnStep, when set, is invoked every StepInterval proposals with the
	// running statistics (used to trace Figure 5).
	OnStep       func(s Stats, current float64)
	StepInterval int64

	// RestartAfter, when positive, resets the chain to the best correct
	// program seen after that many proposals without improvement.
	RestartAfter int64

	Stats Stats
}

// Result is the outcome of one chain.
type Result struct {
	Best     *x64.Program
	BestCost float64

	// BestCorrect is the lowest-cost program whose eq term was zero
	// (testcase-equivalent to the target), or nil if the chain never
	// visited one. Optimization phases return this: it is the candidate
	// submitted to the validator (Figure 9, step 5→6).
	BestCorrect     *x64.Program
	BestCorrectCost float64

	// ZeroCost reports that a zero-eq-cost rewrite was found; for
	// synthesis chains this is the success criterion.
	ZeroCost bool
	Stats    Stats
}

// ctxCheckInterval is how many proposals pass between context polls: cheap
// enough to be invisible at ~100k proposals/s, fine-grained enough that a
// cancelled chain stops within milliseconds.
const ctxCheckInterval = 1024

// Run performs `proposals` Metropolis-Hastings steps starting from start.
// The context is polled every ctxCheckInterval proposals; on cancellation
// the chain stops early and returns the best-so-far result (the caller
// distinguishes a cut-short chain via its own ctx).
func (s *Sampler) Run(ctx context.Context, start *x64.Program, proposals int64) Result {
	r := s.Begin(start, proposals)
	r.Step(ctx, proposals)
	return r.Result()
}

// A Run is one chain's resumable execution state: Begin initialises it,
// Step advances it by a bounded number of proposals, and Result harvests
// the outcome at any point. The search coordinator drives chains in
// cadenced segments through this interface, applying replica exchange and
// testcase broadcasts between segments; Sampler.Run is the
// run-to-completion wrapper.
//
// A Run is single-owner like the Sampler itself: Step, Adopt and AddTests
// must never run concurrently with each other. The coordinator guarantees
// this by only touching runs at barriers, when no segment is in flight.
type Run struct {
	s       *Sampler
	cur     *x64.Program
	comp    *emu.Compiled // compiled path (nil when Interpreted)
	scratch *x64.Program  // interpreted path (nil when compiled)
	cs      *chainState
	done    int64 // proposals consumed so far
	budget  int64
	stopped bool
}

// Begin pads the starting program to ℓ, scores it, and returns the chain
// ready to Step. It performs one full-budget evaluation, so calling Begin
// for a batch of chains from a single goroutine (as the coordinator does)
// keeps any shared-profile reads at a deterministic point.
func (s *Sampler) Begin(start *x64.Program, proposals int64) *Run {
	if s.Params.Ell == 0 {
		s.Params = PaperParams
	}
	cur := start.PadTo(s.Params.Ell)
	r := &Run{s: s, cur: cur, budget: proposals}
	if s.Interpreted {
		r.cs = s.newChain(cur, s.Cost.Eval(cur, cost.MaxBudget))
		r.scratch = cur.Clone()
	} else {
		r.comp = s.Cost.Compile(cur)
		r.cs = s.newChain(cur, s.evalCompiled(r.comp, cost.MaxBudget))
	}
	if r.budget <= 0 || r.cs.bestCost == 0 {
		r.stopped = true
	}
	return r
}

// Step advances the chain by up to n proposals, returning false once the
// run is finished (budget exhausted or best cost zero). A context
// cancellation returns early without finishing the run, so the caller can
// still harvest Result; the proposal stream is a pure function of the
// chain's RNG, unaffected by how the budget is sliced into Steps.
func (r *Run) Step(ctx context.Context, n int64) bool {
	if r.stopped {
		return false
	}
	if ctx == nil {
		ctx = context.Background()
	}
	end := r.done + n
	if end > r.budget {
		end = r.budget
	}
	if r.s.Interpreted {
		r.stepInterpreted(ctx, end)
	} else {
		r.stepCompiled(ctx, end)
	}
	if r.done >= r.budget || r.cs.bestCost == 0 {
		r.stopped = true
	}
	return !r.stopped
}

// Finished reports whether the run has consumed its budget or reached a
// zero-cost best (it will make no further progress).
func (r *Run) Finished() bool { return r.stopped }

// Proposals reports how many proposals the run has consumed.
func (r *Run) Proposals() int64 { return r.done }

// Result assembles the chain's outcome so far; the run may keep stepping
// afterwards.
func (r *Run) Result() Result { return r.cs.result() }

// Current exposes the chain's current program. Callers must treat it as
// read-only (clone before mutating or publishing).
func (r *Run) Current() *x64.Program { return r.cur }

// CurrentCost is the cost of the current program.
func (r *Run) CurrentCost() float64 { return r.cs.curCost }

// Beta reports the chain's inverse temperature.
func (r *Run) Beta() float64 { return r.s.Params.Beta }

// SetBeta moves the chain to a new rung of the temperature ladder; it
// takes effect from the next proposal's acceptance bound.
func (r *Run) SetBeta(b float64) { r.s.Params.Beta = b }

// BestCorrect returns the chain's best testcase-correct program (nil when
// none) and its cost. The program is shared state: clone before mutating.
func (r *Run) BestCorrect() (*x64.Program, float64) {
	return r.cs.bestCorrect, r.cs.bestCorrectCost
}

// eval scores the current program at full budget through the run's
// evaluation path.
func (r *Run) eval() cost.Result {
	if r.comp != nil {
		return r.s.evalCompiled(r.comp, cost.MaxBudget)
	}
	return r.s.Cost.Eval(r.cur, cost.MaxBudget)
}

// evalCompiled scores a compiled candidate through the scalar or batched
// variant of the compiled pipeline, per the Batched flag.
func (s *Sampler) evalCompiled(c *emu.Compiled, budget float64) cost.Result {
	if s.Batched {
		return s.Cost.EvalCompiledBatched(c, budget)
	}
	return s.Cost.EvalCompiled(c, budget)
}

// Adopt replaces the current program with p (a replica-exchange swap or a
// shared-best reseed), re-evaluating it and folding the result into the
// best-so-far bookkeeping without counting a proposal or an accept. p must
// fit the chain's ℓ slots; shorter programs are padded with UNUSED.
func (r *Run) Adopt(p *x64.Program) {
	n := copy(r.cur.Insts, p.Insts)
	for i := n; i < len(r.cur.Insts); i++ {
		r.cur.Insts[i] = x64.Unused()
	}
	if r.comp != nil {
		r.comp.Recompile()
	}
	res := r.eval()
	r.s.Stats.TestsEvaluated += int64(res.TestsRun)
	r.cs.observe(r.cur, res)
	if r.cs.bestCost == 0 {
		r.stopped = true
	}
}

// AddTests folds broadcast counterexample testcases into the chain's cost
// function mid-run: the current program is re-scored against the refined τ
// and a best-correct program the new testcases refute is dropped (its
// clone lives on in the coordinator's pool, where the final re-ranking
// filters it against the refined testcases anyway).
func (r *Run) AddTests(tcs []testgen.Testcase) {
	if len(tcs) == 0 {
		return
	}
	for i := range tcs {
		r.s.Cost.AddTest(tcs[i])
	}
	res := r.eval()
	r.s.Stats.TestsEvaluated += int64(res.TestsRun)
	r.cs.curCost = res.Cost
	if r.cs.bestCorrect != nil {
		bres := r.s.Cost.Eval(r.cs.bestCorrect, cost.MaxBudget)
		r.s.Stats.TestsEvaluated += int64(bres.TestsRun)
		if bres.EqCost != 0 {
			r.cs.bestCorrect = nil
			r.cs.bestCorrectCost = math.Inf(1)
		} else {
			r.cs.bestCorrectCost = bres.Cost
		}
	}
	// The best-seen tracker ranks arbitrary (possibly incorrect) programs;
	// re-score it so the improvement threshold reflects the refined τ.
	bres := r.s.Cost.Eval(r.cs.best, cost.MaxBudget)
	r.s.Stats.TestsEvaluated += int64(bres.TestsRun)
	r.cs.bestCost = bres.Cost
}

// chainState is the per-chain bookkeeping shared by both evaluation paths:
// best-seen and best-correct tracking, restart pacing, the Equation 14
// acceptance-bound draw, and the final Result. The loops themselves differ
// only in their evaluate/commit/undo mechanics.
type chainState struct {
	s               *Sampler
	curCost         float64
	best            *x64.Program
	bestCost        float64
	zero            bool
	bestCorrect     *x64.Program
	bestCorrectCost float64
	sinceImprove    int64
}

// newChain seeds the bookkeeping from the starting program's evaluation.
func (s *Sampler) newChain(cur *x64.Program, curRes cost.Result) *chainState {
	s.Stats.TestsEvaluated += int64(curRes.TestsRun)
	cs := &chainState{
		s:               s,
		curCost:         curRes.Cost,
		best:            cur.Clone(),
		bestCost:        curRes.Cost,
		bestCorrectCost: math.Inf(1),
	}
	if curRes.EqCost == 0 {
		cs.zero = true
		cs.bestCorrect = cur.Clone()
		cs.bestCorrectCost = curRes.Cost
	}
	return cs
}

// restartDue reports whether the optional restart should rewind the chain
// to the best correct program seen (an extension over the paper; disabled
// when RestartAfter is zero), adjusting the cost bookkeeping; the caller
// copies cs.bestCorrect into the current program and resyncs its compiled
// form.
func (cs *chainState) restartDue() bool {
	if cs.s.RestartAfter <= 0 || cs.sinceImprove < cs.s.RestartAfter || cs.bestCorrect == nil {
		return false
	}
	cs.curCost = cs.bestCorrectCost
	cs.sinceImprove = 0
	return true
}

// bound draws the early-termination acceptance bound (Equation 14): sample
// the coin first and convert it into the maximum cost the proposal could be
// accepted at, so the evaluator can stop as soon as it is exceeded.
func (cs *chainState) bound() float64 {
	// -log(U)/β drawn directly from the exponential distribution: the
	// ziggurat sampler takes one table lookup on the fast path where the
	// uniform-then-log form paid a math.Log per proposal. (Same
	// distribution, different consumption of the RNG stream, so
	// fixed-seed trajectories differ from earlier releases but remain
	// deterministic.)
	return cs.curCost + cs.s.Rng.ExpFloat64()/cs.s.Params.Beta
}

// accept records an accepted proposal, with cur already holding the
// accepted program.
func (cs *chainState) accept(i int64, cur *x64.Program, res cost.Result) {
	s := cs.s
	cs.curCost = res.Cost
	s.Stats.Accepts++
	if res.EqCost == 0 {
		cs.zero = true
		if cs.curCost < cs.bestCorrectCost {
			cs.bestCorrectCost = cs.curCost
			if cs.bestCorrect == nil {
				cs.bestCorrect = cur.Clone()
			} else {
				copy(cs.bestCorrect.Insts, cur.Insts)
			}
			cs.sinceImprove = 0
		}
	}
	if cs.curCost < cs.bestCost {
		cs.bestCost = cs.curCost
		copy(cs.best.Insts, cur.Insts)
		cs.sinceImprove = 0
		if s.OnImprove != nil {
			s.OnImprove(i, cs.curCost, cs.best.Clone())
		}
	}
}

// observe folds an out-of-band evaluation of the current program (a
// replica swap or a shared-best reseed) into the bookkeeping: curCost and
// the best trackers update, but no proposal or accept is counted and
// OnImprove does not fire — the program was not discovered by this chain.
func (cs *chainState) observe(cur *x64.Program, res cost.Result) {
	cs.curCost = res.Cost
	if res.EqCost == 0 {
		cs.zero = true
		if res.Cost < cs.bestCorrectCost {
			cs.bestCorrectCost = res.Cost
			if cs.bestCorrect == nil {
				cs.bestCorrect = cur.Clone()
			} else {
				copy(cs.bestCorrect.Insts, cur.Insts)
			}
			cs.sinceImprove = 0
		}
	}
	if res.Cost < cs.bestCost {
		cs.bestCost = res.Cost
		copy(cs.best.Insts, cur.Insts)
		cs.sinceImprove = 0
	}
}

// tick fires the periodic stats callback.
func (cs *chainState) tick() {
	s := cs.s
	if s.OnStep != nil && s.StepInterval > 0 && s.Stats.Proposals%s.StepInterval == 0 {
		s.OnStep(s.Stats, cs.curCost)
	}
}

// result assembles the chain's outcome.
func (cs *chainState) result() Result {
	return Result{
		Best: cs.best, BestCost: cs.bestCost,
		BestCorrect: cs.bestCorrect, BestCorrectCost: cs.bestCorrectCost,
		ZeroCost: cs.zero, Stats: cs.s.Stats,
	}
}

// stepCompiled is the chain loop over the decode-once pipeline: the
// current program is mutated in place, the compiled form is patched at
// exactly the slots a move touched, and rejection restores (and
// re-patches) the saved instructions. Chain restarts rewrite the whole
// program and recompile.
func (r *Run) stepCompiled(ctx context.Context, end int64) {
	s, cur, comp, cs := r.s, r.cur, r.comp, r.cs

	for ; r.done < end; r.done++ {
		i := r.done
		if i%ctxCheckInterval == 0 && ctx.Err() != nil {
			break
		}
		s.Stats.Proposals++
		cs.sinceImprove++

		if cs.restartDue() {
			copy(cur.Insts, cs.bestCorrect.Insts)
			comp.Recompile()
		}

		rec, ok := s.proposeTracked(cur)
		if !ok {
			// Degenerate move (e.g. no live instruction to mutate): the
			// proposal equals the current state and is trivially accepted.
			s.Stats.Accepts++
			continue
		}
		var saved [2]emu.SavedSlot
		for k := 0; k < rec.n; k++ {
			saved[k] = comp.SaveSlot(rec.idx[k])
			comp.Patch(rec.idx[k])
		}
		s.Stats.RegFreeSlots += int64(comp.RegFreeSlots())
		s.Stats.RegWritingSlots += int64(comp.RegWritingSlots())

		bound := cs.bound()
		res := s.evalCompiled(comp, bound)
		s.Stats.TestsEvaluated += int64(res.TestsRun)

		if !res.Early && res.Cost <= bound {
			// Accept: cur and comp already hold the proposal.
			cs.accept(i, cur, res)
		} else {
			// Reject: restore the touched slots, then reinstate their
			// saved compiled state — no re-lowering on the (majority)
			// reject path. Reverse order, so a move that touched one slot
			// twice lands on the first, pristine snapshot.
			for k := 0; k < rec.n; k++ {
				cur.Insts[rec.idx[k]] = rec.old[k]
			}
			for k := rec.n - 1; k >= 0; k-- {
				comp.RestoreSlot(rec.idx[k], saved[k])
			}
		}

		cs.tick()
		if cs.bestCost == 0 {
			r.done++
			break // nothing left to minimise
		}
	}
}

// stepInterpreted is the seed chain loop: copy the whole ℓ-slot program
// per proposal and re-interpret it from scratch. It is the baseline the
// compiled pipeline is benchmarked and differentially tested against.
func (r *Run) stepInterpreted(ctx context.Context, end int64) {
	s, cur, scratch, cs := r.s, r.cur, r.scratch, r.cs

	for ; r.done < end; r.done++ {
		i := r.done
		if i%ctxCheckInterval == 0 && ctx.Err() != nil {
			break
		}
		s.Stats.Proposals++
		cs.sinceImprove++

		if cs.restartDue() {
			copy(cur.Insts, cs.bestCorrect.Insts)
		}

		copy(scratch.Insts, cur.Insts)
		if !s.propose(scratch) {
			// Degenerate move (e.g. no live instruction to mutate): the
			// proposal equals the current state and is trivially accepted.
			s.Stats.Accepts++
			continue
		}

		bound := cs.bound()
		res := s.Cost.Eval(scratch, bound)
		s.Stats.TestsEvaluated += int64(res.TestsRun)

		if !res.Early && res.Cost <= bound {
			// Accept: swap current and scratch.
			cur, scratch = scratch, cur
			r.cur, r.scratch = cur, scratch
			cs.accept(i, cur, res)
		}

		cs.tick()
		if cs.bestCost == 0 {
			r.done++
			break // nothing left to minimise
		}
	}
}

// moveRec records which instruction slots one move touched and their prior
// contents, so the compiled pipeline can patch exactly those slots and
// restore them on rejection. Every move type touches at most two slots.
type moveRec struct {
	n   int
	idx [2]int
	old [2]x64.Inst
}

// record notes that slot i held inst before the move.
func (r *moveRec) record(i int, inst x64.Inst) {
	r.idx[r.n] = i
	r.old[r.n] = inst
	r.n++
}

// propose applies one random move to p in place, returning false if the
// move degenerated to a no-op.
func (s *Sampler) propose(p *x64.Program) bool {
	_, ok := s.proposeTracked(p)
	return ok
}

// proposeTracked applies one random move to p in place, reporting the
// touched slots. ok is false if the move degenerated to a no-op (in which
// case p is unchanged and rec is empty).
func (s *Sampler) proposeTracked(p *x64.Program) (rec moveRec, ok bool) {
	r := s.Rng.Float64()
	total := s.Params.PC + s.Params.PO + s.Params.PS + s.Params.PI
	r *= total
	switch {
	case r < s.Params.PC:
		return s.moveOpcode(p)
	case r < s.Params.PC+s.Params.PO:
		return s.moveOperand(p)
	case r < s.Params.PC+s.Params.PO+s.Params.PS:
		return s.moveSwap(p)
	default:
		return s.moveInstruction(p)
	}
}

// mutableSlot reports whether an opcode participates in opcode/operand
// moves (control structure is pinned).
func mutableSlot(op x64.Opcode) bool {
	switch op {
	case x64.UNUSED, x64.LABEL, x64.JMP, x64.Jcc, x64.RET:
		return false
	}
	return true
}

// liveSlot picks a uniformly random non-UNUSED, non-LABEL, mutable
// instruction slot: collect the candidates in one pass over the ℓ slots,
// then draw once (one RNG call per move instead of one per live slot, and
// one sweep over the ~100-byte instruction records instead of two).
func (s *Sampler) liveSlot(p *x64.Program) int {
	if cap(s.liveIdx) < len(p.Insts) {
		s.liveIdx = make([]int32, len(p.Insts))
	}
	idx := s.liveIdx[:0]
	for i := range p.Insts {
		if mutableSlot(p.Insts[i].Op) {
			idx = append(idx, int32(i))
		}
	}
	if len(idx) == 0 {
		return -1
	}
	return int(idx[s.Rng.Intn(len(idx))])
}

// moveOpcode replaces one instruction's opcode with a random opcode from
// the equivalence class sharing its operand signature (§4.3).
func (s *Sampler) moveOpcode(p *x64.Program) (rec moveRec, ok bool) {
	i := s.liveSlot(p)
	if i < 0 {
		return rec, false
	}
	in := &p.Insts[i]
	old := *in
	sig, sok := x64.MatchSig(in.Op, in.Opd[:in.N])
	if !sok {
		return rec, false
	}
	class := opcodeClasses[sig]
	if len(class) == 0 {
		return rec, false
	}
	op := class[s.Rng.Intn(len(class))]
	in.Op = op
	if x64.Info(op).HasCC {
		in.CC = s.randomCond()
	} else {
		in.CC = x64.CondNone
	}
	if in.Validate() != nil {
		// Fixed-register constraints (cl shift counts) can invalidate the
		// swap; restore and treat as a degenerate proposal.
		*in = old
		return rec, false
	}
	rec.record(i, old)
	return rec, true
}

// moveOperand replaces one randomly chosen operand with a random operand of
// the same type (§4.3). Immediates are drawn from the constant bag.
func (s *Sampler) moveOperand(p *x64.Program) (rec moveRec, ok bool) {
	i := s.liveSlot(p)
	if i < 0 {
		return rec, false
	}
	in := &p.Insts[i]
	if in.N == 0 {
		return rec, false
	}
	slot := s.Rng.Intn(int(in.N))
	o := in.Opd[slot]
	switch o.Kind {
	case x64.KindReg:
		// Shift counts must stay in CL.
		if isShift(in.Op) && slot == 0 && o.Width == 1 {
			return rec, false
		}
		// x86 r/m operands form one equivalence class: a register slot
		// may become a same-width memory operand when the opcode has such
		// a signature (validated below), and vice versa.
		if s.Rng.Intn(4) == 0 {
			if m := s.randomMem(o.Width); m != nil {
				o = *m
				break
			}
		}
		o.Reg = s.randomReg()
	case x64.KindXmm:
		o.Reg = x64.Reg(s.Rng.Intn(x64.NumXMM))
	case x64.KindImm:
		o.Imm = s.Pools.Imms[s.Rng.Intn(len(s.Pools.Imms))]
	case x64.KindMem:
		if s.Rng.Intn(4) == 0 {
			o = x64.R(s.randomReg(), o.Width)
			break
		}
		m := s.randomMem(o.Width)
		if m == nil {
			o = x64.R(s.randomReg(), o.Width)
			break
		}
		o = *m
	default:
		return rec, false
	}
	// Condition codes count as operands for mutation purposes.
	old := *in
	if x64.Info(in.Op).HasCC && s.Rng.Intn(4) == 0 {
		in.CC = s.randomCond()
	}
	in.Opd[slot] = o
	if in.Validate() != nil {
		*in = old
		return rec, false
	}
	rec.record(i, old)
	return rec, true
}

// moveSwap interchanges two random instruction slots (§4.3).
func (s *Sampler) moveSwap(p *x64.Program) (rec moveRec, ok bool) {
	n := len(p.Insts)
	if n < 2 {
		return rec, false
	}
	i := s.Rng.Intn(n)
	j := s.Rng.Intn(n)
	if i == j {
		return rec, false
	}
	// Labels and jumps are pinned (control structure is not searched).
	for _, k := range []int{i, j} {
		switch p.Insts[k].Op {
		case x64.LABEL, x64.JMP, x64.Jcc, x64.RET:
			return rec, false
		}
	}
	rec.record(i, p.Insts[i])
	rec.record(j, p.Insts[j])
	p.Insts[i], p.Insts[j] = p.Insts[j], p.Insts[i]
	return rec, true
}

// moveInstruction replaces a random slot with either UNUSED (probability
// pu) or an unconstrained random instruction (§4.3).
func (s *Sampler) moveInstruction(p *x64.Program) (rec moveRec, ok bool) {
	n := len(p.Insts)
	if n == 0 {
		return rec, false
	}
	i := s.Rng.Intn(n)
	switch p.Insts[i].Op {
	case x64.LABEL, x64.JMP, x64.Jcc, x64.RET:
		return rec, false
	}
	if s.Rng.Float64() < s.Params.PU {
		rec.record(i, p.Insts[i])
		p.Insts[i] = x64.Unused()
		return rec, true
	}
	in, iok := s.RandomInst()
	if !iok {
		return rec, false
	}
	rec.record(i, p.Insts[i])
	p.Insts[i] = in
	return rec, true
}

// RandomInst generates an unconstrained random instruction: a random
// proposable opcode, a random signature, and random operands of the
// appropriate types.
func (s *Sampler) RandomInst() (x64.Inst, bool) {
	for attempt := 0; attempt < 8; attempt++ {
		pool := proposableOpcodes
		if s.Pools.Xmm && s.Rng.Intn(3) == 0 {
			pool = proposableSSE
		}
		op := pool[s.Rng.Intn(len(pool))]
		info := x64.Info(op)
		sig := info.Sigs[s.Rng.Intn(len(info.Sigs))]
		// Immediates take the signature's context width (the width of the
		// register or memory slots around them).
		ctxWidth := uint8(8)
		for k := uint8(0); k < sig.N; k++ {
			if w := x64.TokWidth(sig.Slot[k]); w != 0 && w != 16 {
				ctxWidth = w
			}
		}
		var opds []x64.Operand
		ok := true
		for k := uint8(0); k < sig.N && ok; k++ {
			o, good := s.randomOperand(sig.Slot[k])
			if o.Kind == x64.KindImm {
				o.Width = ctxWidth
			}
			opds = append(opds, o)
			ok = good
		}
		if !ok {
			continue
		}
		// Shift counts in registers must be CL.
		if isShift(op) && len(opds) == 2 && opds[0].Kind == x64.KindReg && opds[0].Width == 1 {
			opds[0].Reg = x64.RCX
		}
		in := x64.MakeInst(op, opds...)
		if info.HasCC {
			in.CC = s.randomCond()
		}
		if in.Validate() == nil {
			return in, true
		}
	}
	return x64.Inst{}, false
}

func (s *Sampler) randomReg() x64.Reg {
	return s.Pools.Regs[s.Rng.Intn(len(s.Pools.Regs))]
}

func (s *Sampler) randomCond() x64.Cond {
	return x64.Cond(1 + s.Rng.Intn(int(x64.NumConds)-1))
}

func (s *Sampler) randomMem(width uint8) *x64.Operand {
	// Prefer target-shaped memory operands of the right width.
	var match []x64.Operand
	for _, m := range s.Pools.Mems {
		if m.Width == width {
			match = append(match, m)
		}
	}
	if len(match) == 0 {
		return nil
	}
	o := match[s.Rng.Intn(len(match))]
	return &o
}

func (s *Sampler) randomOperand(tok x64.SigTok) (x64.Operand, bool) {
	switch tok {
	case x64.TokR8, x64.TokR16, x64.TokR32, x64.TokR64:
		return x64.R(s.randomReg(), x64.TokWidth(tok)), true
	case x64.TokX:
		return x64.X(x64.Reg(s.Rng.Intn(x64.NumXMM))), true
	case x64.TokI:
		return x64.Imm(s.Pools.Imms[s.Rng.Intn(len(s.Pools.Imms))], 8), true
	case x64.TokM8, x64.TokM16, x64.TokM32, x64.TokM64, x64.TokM128:
		m := s.randomMem(x64.TokWidth(tok))
		if m == nil {
			return x64.Operand{}, false
		}
		return *m, true
	}
	return x64.Operand{}, false
}

func isShift(op x64.Opcode) bool {
	switch op {
	case x64.SHL, x64.SHR, x64.SAR, x64.ROL, x64.ROR:
		return true
	}
	return false
}

// RandomProgram builds the random synthesis starting point of §4.4: ℓ slots
// filled with unconstrained random instructions (or UNUSED with the token
// probability).
func (s *Sampler) RandomProgram() *x64.Program {
	if s.Params.Ell == 0 {
		s.Params = PaperParams
	}
	p := x64.NewProgram(s.Params.Ell)
	for i := range p.Insts {
		if s.Rng.Float64() < s.Params.PU {
			continue
		}
		if in, ok := s.RandomInst(); ok {
			p.Insts[i] = in
		}
	}
	return p
}
