// Package core is the deprecated, pre-redesign face of the STOKE
// reproduction, kept as a thin compatibility shim.
//
// Deprecated: import the public package repro/stoke instead. It adds a
// reusable Engine with a shared worker pool, context cancellation with
// partial results, functional options (so zero values are expressible),
// and streaming progress observers. This shim adapts the old blocking
// Optimize(kernel, Options) call onto stoke.Optimize and will be removed
// once nothing imports it.
package core

import (
	"context"

	"repro/internal/kernels"
	"repro/internal/verify"
	"repro/internal/x64"
	"repro/stoke"
)

// Re-exported primary types.
type (
	// Program is a loop-free x86-64 instruction sequence.
	Program = x64.Program
	// Kernel is an optimization target with its input/output annotations.
	Kernel = stoke.Kernel
	// Report is the outcome of one optimization.
	Report = stoke.Report
	// Bench is one of the paper's §6 benchmarks.
	Bench = kernels.Bench
)

// Register aliases for kernel annotations.
const (
	RAX = x64.RAX
	RCX = x64.RCX
	RDX = x64.RDX
	RBX = x64.RBX
	RSP = x64.RSP
	RBP = x64.RBP
	RSI = x64.RSI
	RDI = x64.RDI
	R8  = x64.R8
	R9  = x64.R9
	R10 = x64.R10
	R11 = x64.R11
	R12 = x64.R12
	R13 = x64.R13
	R14 = x64.R14
	R15 = x64.R15
)

// Options control the search. Zero values take defaults — which is exactly
// why this struct is deprecated: OptBeta or RestartAfter cannot be
// explicitly set to 0 through it.
//
// Deprecated: use the functional options of repro/stoke.
type Options struct {
	Seed int64

	SynthChains    int
	OptChains      int
	SynthProposals int64
	OptProposals   int64

	Tests int
	Ell   int

	SynthBeta float64
	OptBeta   float64

	RestartAfter   int64
	MaxRefinements int

	Verify verify.Config
}

// options translates the legacy struct: zero-valued fields keep the new
// package's defaults, mirroring the old withDefaults behaviour.
func (o Options) options() []stoke.Option {
	// Seed passes through unconditionally: the old driver never defaulted
	// it, so a legacy zero Seed really meant rand.NewSource(0).
	out := []stoke.Option{stoke.WithSeed(o.Seed)}
	if o.SynthChains != 0 || o.OptChains != 0 {
		sc, oc := o.SynthChains, o.OptChains
		if sc == 0 {
			sc = stoke.DefaultSynthChains
		}
		if oc == 0 {
			oc = stoke.DefaultOptChains
		}
		out = append(out, stoke.WithChains(sc, oc))
	}
	if o.SynthProposals != 0 || o.OptProposals != 0 {
		sp, op := o.SynthProposals, o.OptProposals
		if sp == 0 {
			sp = stoke.DefaultSynthProposals
		}
		if op == 0 {
			op = stoke.DefaultOptProposals
		}
		out = append(out, stoke.WithBudgets(sp, op))
	}
	if o.Tests != 0 {
		out = append(out, stoke.WithTests(o.Tests))
	}
	if o.Ell != 0 {
		out = append(out, stoke.WithEll(o.Ell))
	}
	if o.SynthBeta != 0 || o.OptBeta != 0 {
		sb, ob := o.SynthBeta, o.OptBeta
		if sb == 0 {
			sb = stoke.DefaultSynthBeta
		}
		if ob == 0 {
			ob = stoke.DefaultOptBeta
		}
		out = append(out, stoke.WithBetas(sb, ob))
	}
	if o.RestartAfter != 0 {
		out = append(out, stoke.WithRestartAfter(o.RestartAfter))
	}
	if o.MaxRefinements != 0 {
		out = append(out, stoke.WithMaxRefinements(o.MaxRefinements))
	}
	if o.Verify.Budget != 0 {
		out = append(out, stoke.WithVerify(o.Verify))
	}
	return out
}

// Parse reads assembly in the paper's AT&T-flavoured listing syntax.
//
// Deprecated: use stoke.Parse.
func Parse(src string) (*Program, error) { return stoke.Parse(src) }

// MustParse is Parse, panicking on malformed input.
//
// Deprecated: use stoke.MustParse.
func MustParse(src string) *Program { return stoke.MustParse(src) }

// KernelOption customises NewKernel.
//
// Deprecated: use stoke.KernelOption.
type KernelOption = stoke.KernelOption

// WithInputs declares 64-bit input registers, sampled uniformly at random.
//
// Deprecated: use stoke.WithInputs.
func WithInputs(regs ...x64.Reg) KernelOption { return stoke.WithInputs(regs...) }

// WithInputs32 declares 32-bit input registers (the upper halves are zero).
//
// Deprecated: use stoke.WithInputs32.
func WithInputs32(regs ...x64.Reg) KernelOption { return stoke.WithInputs32(regs...) }

// WithOutput64 declares 64-bit live output registers.
//
// Deprecated: use stoke.WithOutput64.
func WithOutput64(regs ...x64.Reg) KernelOption { return stoke.WithOutput64(regs...) }

// WithOutput32 declares 32-bit live output registers.
//
// Deprecated: use stoke.WithOutput32.
func WithOutput32(regs ...x64.Reg) KernelOption { return stoke.WithOutput32(regs...) }

// WithStack provides a stack segment of the given size.
//
// Deprecated: use stoke.WithStack.
func WithStack(bytes int) KernelOption { return stoke.WithStack(bytes) }

// WithSSE enables vector opcodes in the proposal distribution.
//
// Deprecated: use stoke.WithVectorOps (kernel annotation) or the per-run
// stoke.WithSSE option.
func WithSSE() KernelOption { return stoke.WithVectorOps() }

// NewKernel builds a register-to-register kernel description from a target
// program and annotations.
//
// Deprecated: use stoke.NewKernel.
func NewKernel(name string, target *Program, opts ...KernelOption) Kernel {
	return stoke.NewKernel(name, target, opts...)
}

// Optimize runs the full STOKE pipeline and blocks until it finishes.
//
// Deprecated: use stoke.Optimize (or a shared stoke.Engine), which takes a
// context.Context for cancellation and streams progress events.
func Optimize(k Kernel, opts Options) (*Report, error) {
	return stoke.Optimize(context.Background(), k, opts.options()...)
}

// Equivalent asks the sound validator whether two programs agree on the
// given live output registers for every machine state (§5.2).
//
// Deprecated: use stoke.Equivalent, which takes a context.Context.
func Equivalent(target, rewrite *Program, liveOut64 ...x64.Reg) verify.Result {
	return stoke.Equivalent(context.Background(), target, rewrite, liveOut64...)
}

// Benchmarks returns the paper's §6 suite: p01..p25 from Hacker's Delight,
// Montgomery multiplication, linked-list traversal and SAXPY.
func Benchmarks() []Bench { return kernels.All() }

// Benchmark returns one named §6 benchmark.
func Benchmark(name string) (Bench, error) { return kernels.ByName(name) }
