package core

import (
	"strings"
	"testing"

	"repro/internal/verify"
)

func TestPublicAPIQuickstart(t *testing.T) {
	target := MustParse(`
  movq rdi, -8(rsp)
  movq rsi, -16(rsp)
  movq -8(rsp), rax
  addq -16(rsp), rax
`)
	kernel := NewKernel("add", target,
		WithInputs(RDI, RSI),
		WithOutput64(RAX))

	report, err := Optimize(kernel, Options{
		Seed:           11,
		SynthChains:    2,
		OptChains:      3,
		SynthProposals: 30000,
		OptProposals:   150000,
		Ell:            12,
	})
	if err != nil {
		t.Fatal(err)
	}
	if report.Verdict == verify.NotEqual {
		t.Fatalf("unvalidated rewrite:\n%s", report.Rewrite)
	}
	if report.Rewrite.InstCount() >= target.InstCount() {
		t.Errorf("no optimization: %d -> %d insts",
			target.InstCount(), report.Rewrite.InstCount())
	}
	if res := Equivalent(target, report.Rewrite, RAX); res.Verdict != verify.Equal {
		t.Errorf("standalone equivalence check: %v", res.Verdict)
	}
}

func TestEquivalentHelper(t *testing.T) {
	a := MustParse("movq rdi, rax\naddq rsi, rax")
	b := MustParse("leaq (rdi,rsi), rax")
	if res := Equivalent(a, b, RAX); res.Verdict != verify.Equal {
		t.Errorf("lea rewrite: %v", res.Verdict)
	}
	c := MustParse("movq rdi, rax\nsubq rsi, rax")
	if res := Equivalent(a, c, RAX); res.Verdict != verify.NotEqual {
		t.Errorf("sub vs add: %v", res.Verdict)
	}
}

func TestBenchmarksExposed(t *testing.T) {
	all := Benchmarks()
	if len(all) != 28 {
		t.Fatalf("suite has %d kernels, want 28", len(all))
	}
	mont, err := Benchmark("mont")
	if err != nil {
		t.Fatal(err)
	}
	if mont.PaperRewrite.InstCount() != 11 {
		t.Errorf("paper's mont rewrite has %d insts, want 11", mont.PaperRewrite.InstCount())
	}
	if _, err := Benchmark("p99"); err == nil ||
		!strings.Contains(err.Error(), "unknown") {
		t.Errorf("unknown benchmark must error, got %v", err)
	}
}

func TestWithInputs32(t *testing.T) {
	target := MustParse("movl edi, eax\nnotl eax")
	k := NewKernel("not32", target, WithInputs32(RDI), WithOutput32(RAX))
	rep, err := Optimize(k, Options{
		Seed: 5, SynthChains: 1, OptChains: 1,
		SynthProposals: 2000, OptProposals: 10000, Ell: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verdict == verify.NotEqual {
		t.Fatalf("unvalidated rewrite:\n%s", rep.Rewrite)
	}
}
