// Package sat is a from-scratch CDCL SAT solver: two-watched-literal
// propagation, first-UIP conflict analysis, VSIDS branching with phase
// saving, Luby restarts, and activity-based learned-clause reduction. It is
// the decision procedure underneath the bit-vector validator (the role STP
// plays in §5.2 of the paper).
package sat

import "fmt"

// Lit is a literal: variable index shifted left once, low bit = negated.
type Lit int32

// MkLit builds a literal from a variable index and sign.
func MkLit(v int, neg bool) Lit {
	l := Lit(v << 1)
	if neg {
		l |= 1
	}
	return l
}

// Var returns the literal's variable index.
func (l Lit) Var() int { return int(l >> 1) }

// Neg reports whether the literal is negated.
func (l Lit) Neg() bool { return l&1 != 0 }

// Not returns the complement literal.
func (l Lit) Not() Lit { return l ^ 1 }

func (l Lit) String() string {
	if l.Neg() {
		return fmt.Sprintf("-%d", l.Var())
	}
	return fmt.Sprintf("%d", l.Var())
}

// Status is a solver verdict.
type Status int

// Solver verdicts.
const (
	Unknown Status = iota
	Sat
	Unsat
)

func (s Status) String() string {
	switch s {
	case Sat:
		return "sat"
	case Unsat:
		return "unsat"
	}
	return "unknown"
}

type lbool int8

const (
	lUndef lbool = iota
	lTrue
	lFalse
)

type clause struct {
	lits     []Lit
	learned  bool
	activity float64
}

type watcher struct {
	cref    int32 // clause index
	blocker Lit
}

// Solver is a CDCL SAT solver. The zero value is not usable; call New.
// Verifier queries each build a fresh Solver, so there is no incremental or
// assumption interface.
type Solver struct {
	clauses []*clause
	watches [][]watcher // indexed by literal

	assign   []lbool // indexed by variable
	level    []int32
	reason   []int32 // clause index or -1
	phase    []bool  // saved phase
	trail    []Lit
	trailLim []int32
	qhead    int

	activity []float64
	varInc   float64
	order    *varHeap

	claInc     float64
	learnedCap int

	seen      []bool
	conflicts int64

	// Budget bounds the number of conflicts explored by one Solve call;
	// exceeding it yields Unknown. Zero means unlimited.
	Budget int64

	// Stop, when set, is polled periodically during search (every 256
	// conflicts); returning true aborts the solve with Unknown. It is how
	// callers thread context cancellation into a running proof.
	Stop func() bool

	unsat bool
}

// New returns an empty solver.
func New() *Solver {
	s := &Solver{varInc: 1, claInc: 1, learnedCap: 8192}
	s.order = &varHeap{solver: s}
	return s
}

// NumVars returns the number of allocated variables.
func (s *Solver) NumVars() int { return len(s.assign) }

// Conflicts returns the total conflicts encountered so far.
func (s *Solver) Conflicts() int64 { return s.conflicts }

// NumClauses returns the number of clauses currently in the database.
// Read before Solve it is the encoded problem size (the observability
// metric threaded into proof-cost histograms); after Solve it also counts
// surviving learned clauses.
func (s *Solver) NumClauses() int { return len(s.clauses) }

// NewVar allocates a fresh variable and returns its index.
func (s *Solver) NewVar() int {
	v := len(s.assign)
	s.assign = append(s.assign, lUndef)
	s.level = append(s.level, 0)
	s.reason = append(s.reason, -1)
	s.phase = append(s.phase, false)
	s.activity = append(s.activity, 0)
	s.seen = append(s.seen, false)
	s.watches = append(s.watches, nil, nil)
	s.order.push(v)
	return v
}

func (s *Solver) litValue(l Lit) lbool {
	a := s.assign[l.Var()]
	if a == lUndef {
		return lUndef
	}
	if l.Neg() {
		if a == lTrue {
			return lFalse
		}
		return lTrue
	}
	return a
}

// AddClause adds a clause; it must be called before Solve (root level).
// Returns false if the formula became trivially unsatisfiable.
func (s *Solver) AddClause(lits ...Lit) bool {
	if s.unsat {
		return false
	}
	var out []Lit
	for _, l := range lits {
		switch s.rootValue(l) {
		case lTrue:
			return true
		case lFalse:
			continue
		}
		dup, taut := false, false
		for _, o := range out {
			if o == l {
				dup = true
				break
			}
			if o == l.Not() {
				taut = true
				break
			}
		}
		if taut {
			return true
		}
		if !dup {
			out = append(out, l)
		}
	}
	switch len(out) {
	case 0:
		s.unsat = true
		return false
	case 1:
		if !s.enqueueRoot(out[0]) {
			s.unsat = true
			return false
		}
		return true
	}
	s.attachClause(&clause{lits: out})
	return true
}

// rootValue is the literal's value considering only root-level assignments.
func (s *Solver) rootValue(l Lit) lbool {
	if s.assign[l.Var()] == lUndef || s.level[l.Var()] != 0 {
		return lUndef
	}
	return s.litValue(l)
}

// enqueueRoot asserts a literal at the root level and propagates.
func (s *Solver) enqueueRoot(l Lit) bool {
	switch s.litValue(l) {
	case lTrue:
		return true
	case lFalse:
		return false
	}
	s.uncheckedEnqueue(l, -1)
	return s.propagate() == -1
}

func (s *Solver) attachClause(c *clause) int32 {
	cref := int32(len(s.clauses))
	s.clauses = append(s.clauses, c)
	s.watches[c.lits[0].Not()] = append(s.watches[c.lits[0].Not()], watcher{cref, c.lits[1]})
	s.watches[c.lits[1].Not()] = append(s.watches[c.lits[1].Not()], watcher{cref, c.lits[0]})
	return cref
}

func (s *Solver) uncheckedEnqueue(l Lit, reason int32) {
	v := l.Var()
	if l.Neg() {
		s.assign[v] = lFalse
	} else {
		s.assign[v] = lTrue
	}
	s.level[v] = int32(s.decisionLevel())
	s.reason[v] = reason
	s.trail = append(s.trail, l)
}

func (s *Solver) decisionLevel() int { return len(s.trailLim) }

// propagate performs unit propagation; it returns the index of a
// conflicting clause or -1.
func (s *Solver) propagate() int32 {
	for s.qhead < len(s.trail) {
		p := s.trail[s.qhead]
		s.qhead++
		ws := s.watches[p]
		kept := ws[:0]
		conflict := int32(-1)
		for wi := 0; wi < len(ws); wi++ {
			w := ws[wi]
			if s.litValue(w.blocker) == lTrue {
				kept = append(kept, w)
				continue
			}
			c := s.clauses[w.cref]
			if c.lits[0] == p.Not() {
				c.lits[0], c.lits[1] = c.lits[1], c.lits[0]
			}
			first := c.lits[0]
			if first != w.blocker && s.litValue(first) == lTrue {
				kept = append(kept, watcher{w.cref, first})
				continue
			}
			found := false
			for k := 2; k < len(c.lits); k++ {
				if s.litValue(c.lits[k]) != lFalse {
					c.lits[1], c.lits[k] = c.lits[k], c.lits[1]
					s.watches[c.lits[1].Not()] = append(s.watches[c.lits[1].Not()],
						watcher{w.cref, first})
					found = true
					break
				}
			}
			if found {
				continue
			}
			kept = append(kept, watcher{w.cref, first})
			if s.litValue(first) == lFalse {
				conflict = w.cref
				// Copy the remaining watchers and stop.
				kept = append(kept, ws[wi+1:]...)
				s.qhead = len(s.trail)
				break
			}
			s.uncheckedEnqueue(first, w.cref)
		}
		s.watches[p] = kept
		if conflict >= 0 {
			return conflict
		}
	}
	return -1
}

// analyze performs first-UIP conflict analysis, returning the learned
// clause (asserting literal first) and the backtrack level.
func (s *Solver) analyze(confl int32) ([]Lit, int) {
	learnt := []Lit{0} // slot 0 reserved for the asserting literal
	var toClear []int
	counter := 0
	p := Lit(-1)
	idx := len(s.trail) - 1

	for {
		c := s.clauses[confl]
		if c.learned {
			s.bumpClause(c)
		}
		start := 0
		if p != -1 {
			start = 1
		}
		for _, q := range c.lits[start:] {
			v := q.Var()
			if s.seen[v] || s.level[v] == 0 {
				continue
			}
			s.seen[v] = true
			toClear = append(toClear, v)
			s.bumpVar(v)
			if int(s.level[v]) == s.decisionLevel() {
				counter++
			} else {
				learnt = append(learnt, q)
			}
		}
		for !s.seen[s.trail[idx].Var()] {
			idx--
		}
		p = s.trail[idx]
		confl = s.reason[p.Var()]
		s.seen[p.Var()] = false
		counter--
		idx--
		if counter == 0 {
			break
		}

	}
	learnt[0] = p.Not()

	// Cheap clause minimisation: drop literals whose antecedents are all
	// already in the clause.
	j := 1
	for i := 1; i < len(learnt); i++ {
		if s.reason[learnt[i].Var()] == -1 || !s.litRedundant(learnt[i]) {
			learnt[j] = learnt[i]
			j++
		}
	}
	learnt = learnt[:j]

	btLevel := 0
	if len(learnt) > 1 {
		maxI := 1
		for i := 2; i < len(learnt); i++ {
			if s.level[learnt[i].Var()] > s.level[learnt[maxI].Var()] {
				maxI = i
			}
		}
		learnt[1], learnt[maxI] = learnt[maxI], learnt[1]
		btLevel = int(s.level[learnt[1].Var()])
	}

	for _, v := range toClear {
		s.seen[v] = false
	}
	return learnt, btLevel
}

// litRedundant reports whether every antecedent of l is already seen (a
// one-step self-subsumption test).
func (s *Solver) litRedundant(l Lit) bool {
	cref := s.reason[l.Var()]
	if cref < 0 {
		return false
	}
	for _, q := range s.clauses[cref].lits {
		if q.Var() == l.Var() {
			continue
		}
		if !s.seen[q.Var()] && s.level[q.Var()] != 0 {
			return false
		}
	}
	return true
}

func (s *Solver) backtrack(level int) {
	if s.decisionLevel() <= level {
		return
	}
	bound := int(s.trailLim[level])
	for i := len(s.trail) - 1; i >= bound; i-- {
		v := s.trail[i].Var()
		s.phase[v] = s.assign[v] == lTrue
		s.assign[v] = lUndef
		s.reason[v] = -1
		s.order.push(v)
	}
	s.trail = s.trail[:bound]
	s.trailLim = s.trailLim[:level]
	s.qhead = len(s.trail)
}

func (s *Solver) bumpVar(v int) {
	s.activity[v] += s.varInc
	if s.activity[v] > 1e100 {
		for i := range s.activity {
			s.activity[i] *= 1e-100
		}
		s.varInc *= 1e-100
	}
	s.order.update(v)
}

func (s *Solver) bumpClause(c *clause) {
	c.activity += s.claInc
	if c.activity > 1e20 {
		for _, cl := range s.clauses {
			if cl.learned {
				cl.activity *= 1e-20
			}
		}
		s.claInc *= 1e-20
	}
}

// pickBranch returns the highest-activity unassigned variable, or -1.
func (s *Solver) pickBranch() int {
	for s.order.size() > 0 {
		v := s.order.pop()
		if s.assign[v] == lUndef {
			return v
		}
	}
	return -1
}

// reduceDB removes low-activity learned clauses once the database grows
// past its cap. Reason clauses and binary clauses are kept.
func (s *Solver) reduceDB() {
	nLearned := 0
	var actSum float64
	for _, c := range s.clauses {
		if c.learned {
			nLearned++
			actSum += c.activity
		}
	}
	if nLearned < s.learnedCap {
		return
	}
	threshold := actSum / float64(nLearned)
	inUse := make(map[int32]bool)
	for _, l := range s.trail {
		if r := s.reason[l.Var()]; r >= 0 {
			inUse[r] = true
		}
	}

	old := s.clauses
	s.clauses = nil
	for i := range s.watches {
		s.watches[i] = s.watches[i][:0]
	}
	remap := make([]int32, len(old))
	for i := range remap {
		remap[i] = -1
	}
	for i, c := range old {
		if c.learned && len(c.lits) > 2 && c.activity < threshold && !inUse[int32(i)] {
			continue
		}
		remap[i] = s.attachClause(c)
	}
	for v := range s.reason {
		if s.reason[v] >= 0 {
			s.reason[v] = remap[s.reason[v]]
		}
	}
	s.learnedCap += s.learnedCap / 2
}

// luby returns the x-th element (1-based) of the Luby restart sequence
// 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ...
func luby(x int64) int64 {
	x--
	size, seq := int64(1), 0
	for size < x+1 {
		seq++
		size = 2*size + 1
	}
	for size-1 != x {
		size = (size - 1) / 2
		seq--
		x %= size
	}
	return 1 << seq
}

// Solve decides the formula.
func (s *Solver) Solve() Status {
	st, _ := s.SolveModel()
	return st
}

// SolveModel decides the formula and, when satisfiable, returns a copy of
// the satisfying assignment indexed by variable.
func (s *Solver) SolveModel() (Status, []bool) {
	if s.unsat {
		return Unsat, nil
	}
	st := s.search()
	var model []bool
	if st == Sat {
		model = make([]bool, len(s.assign))
		for v := range s.assign {
			model[v] = s.assign[v] == lTrue
		}
	}
	s.backtrack(0)
	if st == Unsat {
		s.unsat = true
	}
	return st, model
}

// search is the CDCL main loop.
func (s *Solver) search() Status {
	if s.propagate() != -1 {
		return Unsat
	}
	restarts := int64(1)
	conflictsAtStart := s.conflicts
	limit := luby(restarts) * 128

	for {
		confl := s.propagate()
		if confl >= 0 {
			s.conflicts++
			if s.decisionLevel() == 0 {
				return Unsat
			}
			learnt, bt := s.analyze(confl)
			s.backtrack(bt)
			if len(learnt) == 1 {
				s.backtrack(0)
				if !s.enqueueRoot(learnt[0]) {
					return Unsat
				}
			} else {
				c := &clause{lits: learnt, learned: true}
				s.bumpClause(c)
				cref := s.attachClause(c)
				s.uncheckedEnqueue(learnt[0], cref)
			}
			s.varInc /= 0.95
			s.claInc /= 0.999
			if s.Budget > 0 && s.conflicts-conflictsAtStart > s.Budget {
				return Unknown
			}
			if s.Stop != nil && s.conflicts&255 == 0 && s.Stop() {
				return Unknown
			}
			if s.conflicts-conflictsAtStart > limit {
				restarts++
				limit += luby(restarts) * 128
				s.backtrack(0)
				s.reduceDB()
			}
			continue
		}

		v := s.pickBranch()
		if v < 0 {
			return Sat
		}
		s.trailLim = append(s.trailLim, int32(len(s.trail)))
		s.uncheckedEnqueue(MkLit(v, !s.phase[v]), -1)
	}
}

// Value returns the model value of variable v after a Sat verdict from the
// most recent search. Prefer SolveModel, which snapshots the assignment.
func (s *Solver) Value(v int) bool { return s.assign[v] == lTrue }

// varHeap is a max-heap over variable activities.
type varHeap struct {
	solver *Solver
	heap   []int
	pos    []int
}

func (h *varHeap) size() int { return len(h.heap) }

func (h *varHeap) less(a, b int) bool {
	return h.solver.activity[h.heap[a]] > h.solver.activity[h.heap[b]]
}

func (h *varHeap) swap(a, b int) {
	h.heap[a], h.heap[b] = h.heap[b], h.heap[a]
	h.pos[h.heap[a]] = a
	h.pos[h.heap[b]] = b
}

func (h *varHeap) up(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !h.less(i, p) {
			break
		}
		h.swap(i, p)
		i = p
	}
}

func (h *varHeap) down(i int) {
	for {
		l, r := 2*i+1, 2*i+2
		best := i
		if l < len(h.heap) && h.less(l, best) {
			best = l
		}
		if r < len(h.heap) && h.less(r, best) {
			best = r
		}
		if best == i {
			return
		}
		h.swap(i, best)
		i = best
	}
}

func (h *varHeap) push(v int) {
	for len(h.pos) <= v {
		h.pos = append(h.pos, -1)
	}
	if h.pos[v] != -1 {
		return
	}
	h.heap = append(h.heap, v)
	h.pos[v] = len(h.heap) - 1
	h.up(len(h.heap) - 1)
}

func (h *varHeap) pop() int {
	v := h.heap[0]
	last := len(h.heap) - 1
	h.swap(0, last)
	h.heap = h.heap[:last]
	h.pos[v] = -1
	if len(h.heap) > 0 {
		h.down(0)
	}
	return v
}

func (h *varHeap) update(v int) {
	if h.pos[v] != -1 {
		h.up(h.pos[v])
	}
}
