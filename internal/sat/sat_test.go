package sat

import (
	"math/rand"
	"testing"
)

func TestLubySequence(t *testing.T) {
	want := []int64{1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8}
	for i, w := range want {
		if got := luby(int64(i + 1)); got != w {
			t.Errorf("luby(%d) = %d, want %d", i+1, got, w)
		}
	}
}

func TestTrivial(t *testing.T) {
	s := New()
	a := s.NewVar()
	s.AddClause(MkLit(a, false))
	if st := s.Solve(); st != Sat {
		t.Fatalf("unit clause: %v", st)
	}
	if !s.Value(a) {
		// Model is only guaranteed via SolveModel; re-check through it.
		s2 := New()
		a2 := s2.NewVar()
		s2.AddClause(MkLit(a2, false))
		st, m := s2.SolveModel()
		if st != Sat || !m[a2] {
			t.Fatal("unit clause model wrong")
		}
	}
}

func TestContradiction(t *testing.T) {
	s := New()
	a := s.NewVar()
	s.AddClause(MkLit(a, false))
	if ok := s.AddClause(MkLit(a, true)); ok {
		t.Fatal("contradictory units should report unsat at add time")
	}
	if st := s.Solve(); st != Unsat {
		t.Fatalf("got %v, want unsat", st)
	}
}

func TestSmallUnsat(t *testing.T) {
	// (a|b) (a|!b) (!a|b) (!a|!b) is unsatisfiable.
	s := New()
	a, b := s.NewVar(), s.NewVar()
	s.AddClause(MkLit(a, false), MkLit(b, false))
	s.AddClause(MkLit(a, false), MkLit(b, true))
	s.AddClause(MkLit(a, true), MkLit(b, false))
	s.AddClause(MkLit(a, true), MkLit(b, true))
	if st := s.Solve(); st != Unsat {
		t.Fatalf("got %v, want unsat", st)
	}
}

// pigeonhole encodes PHP(n+1, n): n+1 pigeons in n holes, unsatisfiable.
func pigeonhole(n int) *Solver {
	s := New()
	vars := make([][]int, n+1)
	for p := 0; p <= n; p++ {
		vars[p] = make([]int, n)
		for h := 0; h < n; h++ {
			vars[p][h] = s.NewVar()
		}
	}
	for p := 0; p <= n; p++ {
		lits := make([]Lit, n)
		for h := 0; h < n; h++ {
			lits[h] = MkLit(vars[p][h], false)
		}
		s.AddClause(lits...)
	}
	for h := 0; h < n; h++ {
		for p1 := 0; p1 <= n; p1++ {
			for p2 := p1 + 1; p2 <= n; p2++ {
				s.AddClause(MkLit(vars[p1][h], true), MkLit(vars[p2][h], true))
			}
		}
	}
	return s
}

func TestPigeonhole(t *testing.T) {
	for n := 2; n <= 6; n++ {
		if st := pigeonhole(n).Solve(); st != Unsat {
			t.Fatalf("PHP(%d+1,%d) = %v, want unsat", n, n, st)
		}
	}
}

func TestBudget(t *testing.T) {
	s := pigeonhole(9)
	s.Budget = 50
	if st := s.Solve(); st != Unknown {
		t.Fatalf("PHP(10,9) with 50-conflict budget = %v, want unknown", st)
	}
}

// bruteForce decides a CNF over nv variables by enumeration.
func bruteForce(nv int, cnf [][]Lit) bool {
	for mask := 0; mask < 1<<nv; mask++ {
		ok := true
		for _, cl := range cnf {
			sat := false
			for _, l := range cl {
				val := mask>>l.Var()&1 == 1
				if l.Neg() {
					val = !val
				}
				if val {
					sat = true
					break
				}
			}
			if !sat {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

func TestRandom3SATAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for iter := 0; iter < 300; iter++ {
		nv := 4 + rng.Intn(9) // 4..12 variables
		nc := 2 + rng.Intn(5*nv)
		var cnf [][]Lit
		s := New()
		for v := 0; v < nv; v++ {
			s.NewVar()
		}
		for c := 0; c < nc; c++ {
			var cl []Lit
			k := 1 + rng.Intn(3)
			for j := 0; j < k; j++ {
				cl = append(cl, MkLit(rng.Intn(nv), rng.Intn(2) == 0))
			}
			cnf = append(cnf, cl)
			s.AddClause(cl...)
		}
		want := bruteForce(nv, cnf)
		st, model := s.SolveModel()
		if (st == Sat) != want {
			t.Fatalf("iter %d: solver=%v brute=%v cnf=%v", iter, st, want, cnf)
		}
		if st == Sat {
			// The model must satisfy every clause.
			for _, cl := range cnf {
				ok := false
				for _, l := range cl {
					v := model[l.Var()]
					if l.Neg() {
						v = !v
					}
					if v {
						ok = true
						break
					}
				}
				if !ok {
					t.Fatalf("iter %d: model does not satisfy %v", iter, cl)
				}
			}
		}
	}
}
