// Package bv implements a hash-consed bit-vector term language with light
// algebraic simplification, a concrete evaluator, and a Tseitin bit-blaster
// onto the CDCL solver in internal/sat. Together with internal/sat it fills
// the role STP plays for STOKE (§5.2): deciding quantifier-free bit-vector
// queries and producing counterexample models.
//
// Terms are at most 64 bits wide; the verifier models 128-bit products as
// pairs of 64-bit terms. Uninterpreted functions (§5.2 treats 64-bit
// multiplication and division as uninterpreted) are App terms; Builder
// records every application so the verifier can assert Ackermann
// consistency constraints.
package bv

import (
	"fmt"
	"math/bits"
)

// Op is a term constructor.
type Op uint8

// Term constructors.
const (
	OpConst Op = iota
	OpVar
	OpApp // uninterpreted function application

	OpNot
	OpAnd
	OpOr
	OpXor

	OpNeg
	OpAdd
	OpSub
	OpMul

	OpShl  // a << b (b same width; counts >= width give 0)
	OpLshr // a >> b logical
	OpAshr // a >> b arithmetic

	OpExtract // bits [Lo, Lo+Width) of arg
	OpConcat  // hi ++ lo (width = sum)
	OpZext    // zero extend
	OpSext    // sign extend

	OpEq  // 1-bit
	OpUlt // 1-bit, unsigned <
	OpIte // cond(1), then, else
)

// Term is an immutable, hash-consed bit-vector expression node.
type Term struct {
	Op    Op
	Width uint8 // 1..64
	Val   uint64
	Name  string // Var and App
	Lo    uint8  // Extract
	Args  []*Term
	ID    int32
}

func (t *Term) String() string {
	switch t.Op {
	case OpConst:
		return fmt.Sprintf("%d'#x%x", t.Width, t.Val)
	case OpVar:
		return t.Name
	case OpApp:
		s := t.Name + "("
		for i, a := range t.Args {
			if i > 0 {
				s += ","
			}
			s += a.String()
		}
		return s + ")"
	case OpExtract:
		return fmt.Sprintf("%s[%d:%d]", t.Args[0], t.Lo+t.Width-1, t.Lo)
	}
	names := map[Op]string{
		OpNot: "not", OpAnd: "and", OpOr: "or", OpXor: "xor", OpNeg: "neg",
		OpAdd: "add", OpSub: "sub", OpMul: "mul", OpShl: "shl",
		OpLshr: "lshr", OpAshr: "ashr", OpConcat: "concat", OpZext: "zext",
		OpSext: "sext", OpEq: "=", OpUlt: "ult", OpIte: "ite",
	}
	s := names[t.Op] + "("
	for i, a := range t.Args {
		if i > 0 {
			s += ","
		}
		s += a.String()
	}
	return s + ")"
}

// IsConst reports whether t is a constant, returning its value.
func (t *Term) IsConst() (uint64, bool) {
	if t.Op == OpConst {
		return t.Val, true
	}
	return 0, false
}

type key struct {
	op         Op
	width, lo  uint8
	val        uint64
	name       string
	a0, a1, a2 int32
}

// Builder creates and hash-conses terms. It is not safe for concurrent use.
type Builder struct {
	terms map[key]*Term
	next  int32

	// Apps records every uninterpreted application, per function name, for
	// Ackermann expansion.
	Apps map[string][]*Term
}

// NewBuilder returns an empty builder.
func NewBuilder() *Builder {
	return &Builder{terms: map[key]*Term{}, Apps: map[string][]*Term{}}
}

func mask(w uint8) uint64 {
	if w >= 64 {
		return ^uint64(0)
	}
	return 1<<w - 1
}

func (b *Builder) intern(t *Term) *Term {
	k := key{op: t.Op, width: t.Width, lo: t.Lo, val: t.Val, name: t.Name}
	ids := [3]int32{-1, -1, -1}
	for i, a := range t.Args {
		ids[i] = a.ID
	}
	k.a0, k.a1, k.a2 = ids[0], ids[1], ids[2]
	if got, ok := b.terms[k]; ok {
		return got
	}
	t.ID = b.next
	b.next++
	b.terms[k] = t
	if t.Op == OpApp {
		b.Apps[t.Name] = append(b.Apps[t.Name], t)
	}
	return t
}

// Const builds a w-bit constant.
func (b *Builder) Const(w uint8, v uint64) *Term {
	return b.intern(&Term{Op: OpConst, Width: w, Val: v & mask(w)})
}

// Var builds (or returns) the named w-bit input variable.
func (b *Builder) Var(w uint8, name string) *Term {
	return b.intern(&Term{Op: OpVar, Width: w, Name: name})
}

// App builds an application of the named uninterpreted function.
func (b *Builder) App(name string, w uint8, args ...*Term) *Term {
	return b.intern(&Term{Op: OpApp, Width: w, Name: name, Args: args})
}

// True and False are the 1-bit constants.
func (b *Builder) True() *Term  { return b.Const(1, 1) }
func (b *Builder) False() *Term { return b.Const(1, 0) }

func (b *Builder) unary(op Op, a *Term, f func(uint64) uint64) *Term {
	if v, ok := a.IsConst(); ok {
		return b.Const(a.Width, f(v))
	}
	return b.intern(&Term{Op: op, Width: a.Width, Args: []*Term{a}})
}

// Not is bitwise complement.
func (b *Builder) Not(a *Term) *Term {
	if a.Op == OpNot {
		return a.Args[0]
	}
	return b.unary(OpNot, a, func(v uint64) uint64 { return ^v })
}

// Neg is two's complement negation.
func (b *Builder) Neg(a *Term) *Term {
	return b.unary(OpNeg, a, func(v uint64) uint64 { return -v })
}

func (b *Builder) binary(op Op, x, y *Term, f func(a, c uint64) uint64) *Term {
	if x.Width != y.Width {
		panic(fmt.Sprintf("bv: width mismatch %d vs %d in %v", x.Width, y.Width, op))
	}
	xv, xc := x.IsConst()
	yv, yc := y.IsConst()
	if xc && yc {
		return b.Const(x.Width, f(xv, yv))
	}
	return b.intern(&Term{Op: op, Width: x.Width, Args: []*Term{x, y}})
}

// And is bitwise conjunction.
func (b *Builder) And(x, y *Term) *Term {
	if v, ok := x.IsConst(); ok {
		if v == 0 {
			return b.Const(x.Width, 0)
		}
		if v == mask(x.Width) {
			return y
		}
	}
	if v, ok := y.IsConst(); ok {
		if v == 0 {
			return b.Const(x.Width, 0)
		}
		if v == mask(x.Width) {
			return x
		}
	}
	if x == y {
		return x
	}
	return b.binary(OpAnd, x, y, func(a, c uint64) uint64 { return a & c })
}

// Or is bitwise disjunction.
func (b *Builder) Or(x, y *Term) *Term {
	if v, ok := x.IsConst(); ok {
		if v == 0 {
			return y
		}
		if v == mask(x.Width) {
			return x
		}
	}
	if v, ok := y.IsConst(); ok {
		if v == 0 {
			return x
		}
		if v == mask(y.Width) {
			return y
		}
	}
	if x == y {
		return x
	}
	return b.binary(OpOr, x, y, func(a, c uint64) uint64 { return a | c })
}

// Xor is bitwise exclusive or.
func (b *Builder) Xor(x, y *Term) *Term {
	if x == y {
		return b.Const(x.Width, 0)
	}
	if v, ok := x.IsConst(); ok && v == 0 {
		return y
	}
	if v, ok := y.IsConst(); ok && v == 0 {
		return x
	}
	return b.binary(OpXor, x, y, func(a, c uint64) uint64 { return a ^ c })
}

// Add is modular addition.
func (b *Builder) Add(x, y *Term) *Term {
	if v, ok := x.IsConst(); ok && v == 0 {
		return y
	}
	if v, ok := y.IsConst(); ok && v == 0 {
		return x
	}
	return b.binary(OpAdd, x, y, func(a, c uint64) uint64 { return a + c })
}

// Sub is modular subtraction.
func (b *Builder) Sub(x, y *Term) *Term {
	if v, ok := y.IsConst(); ok && v == 0 {
		return x
	}
	if x == y {
		return b.Const(x.Width, 0)
	}
	return b.binary(OpSub, x, y, func(a, c uint64) uint64 { return a - c })
}

// Mul is modular multiplication (bit-blasted shift-add; the verifier uses
// uninterpreted functions for wide multiplies instead, per §5.2).
func (b *Builder) Mul(x, y *Term) *Term {
	if v, ok := x.IsConst(); ok {
		switch v {
		case 0:
			return b.Const(x.Width, 0)
		case 1:
			return y
		}
	}
	if v, ok := y.IsConst(); ok {
		switch v {
		case 0:
			return b.Const(x.Width, 0)
		case 1:
			return x
		}
	}
	return b.binary(OpMul, x, y, func(a, c uint64) uint64 { return a * c })
}

// Shl is a left shift by a same-width amount; counts >= width yield zero.
func (b *Builder) Shl(x, y *Term) *Term {
	if v, ok := y.IsConst(); ok && v == 0 {
		return x
	}
	return b.binary(OpShl, x, y, func(a, c uint64) uint64 {
		if c >= uint64(x.Width) {
			return 0
		}
		return a << c
	})
}

// Lshr is a logical right shift; counts >= width yield zero.
func (b *Builder) Lshr(x, y *Term) *Term {
	if v, ok := y.IsConst(); ok && v == 0 {
		return x
	}
	return b.binary(OpLshr, x, y, func(a, c uint64) uint64 {
		if c >= uint64(x.Width) {
			return 0
		}
		return (a & mask(x.Width)) >> c
	})
}

// Ashr is an arithmetic right shift; counts >= width replicate the sign.
func (b *Builder) Ashr(x, y *Term) *Term {
	if v, ok := y.IsConst(); ok && v == 0 {
		return x
	}
	w := x.Width
	return b.binary(OpAshr, x, y, func(a, c uint64) uint64 {
		sign := a >> (w - 1) & 1
		if c >= uint64(w) {
			if sign == 1 {
				return mask(w)
			}
			return 0
		}
		v := (a & mask(w)) >> c
		if sign == 1 {
			v |= mask(w) &^ (mask(w) >> c)
		}
		return v
	})
}

// Extract selects bits [lo, lo+w) of a.
func (b *Builder) Extract(a *Term, lo, w uint8) *Term {
	if lo == 0 && w == a.Width {
		return a
	}
	if lo+w > a.Width {
		panic(fmt.Sprintf("bv: extract [%d,%d) out of %d-bit term", lo, lo+w, a.Width))
	}
	if v, ok := a.IsConst(); ok {
		return b.Const(w, v>>lo)
	}
	// extract of extract
	if a.Op == OpExtract {
		return b.Extract(a.Args[0], a.Lo+lo, w)
	}
	return b.intern(&Term{Op: OpExtract, Width: w, Lo: lo, Args: []*Term{a}})
}

// Concat joins hi ++ lo; the result width is the sum (must be <= 64).
func (b *Builder) Concat(hi, lo *Term) *Term {
	w := hi.Width + lo.Width
	if w > 64 || hi.Width+lo.Width < hi.Width {
		panic("bv: concat wider than 64 bits")
	}
	hv, hc := hi.IsConst()
	lv, lc := lo.IsConst()
	if hc && lc {
		return b.Const(w, hv<<lo.Width|lv)
	}
	return b.intern(&Term{Op: OpConcat, Width: w, Args: []*Term{hi, lo}})
}

// Zext zero-extends a to w bits.
func (b *Builder) Zext(a *Term, w uint8) *Term {
	if w == a.Width {
		return a
	}
	if w < a.Width {
		panic("bv: zext narrows")
	}
	if v, ok := a.IsConst(); ok {
		return b.Const(w, v)
	}
	return b.intern(&Term{Op: OpZext, Width: w, Args: []*Term{a}})
}

// Sext sign-extends a to w bits.
func (b *Builder) Sext(a *Term, w uint8) *Term {
	if w == a.Width {
		return a
	}
	if w < a.Width {
		panic("bv: sext narrows")
	}
	if v, ok := a.IsConst(); ok {
		sign := v >> (a.Width - 1) & 1
		if sign == 1 {
			v |= mask(w) &^ mask(a.Width)
		}
		return b.Const(w, v)
	}
	return b.intern(&Term{Op: OpSext, Width: w, Args: []*Term{a}})
}

// Eq is the 1-bit equality predicate.
func (b *Builder) Eq(x, y *Term) *Term {
	if x.Width != y.Width {
		panic("bv: eq width mismatch")
	}
	if x == y {
		return b.True()
	}
	xv, xc := x.IsConst()
	yv, yc := y.IsConst()
	if xc && yc {
		if xv == yv {
			return b.True()
		}
		return b.False()
	}
	return b.intern(&Term{Op: OpEq, Width: 1, Args: []*Term{x, y}})
}

// Ult is the 1-bit unsigned less-than predicate.
func (b *Builder) Ult(x, y *Term) *Term {
	if x.Width != y.Width {
		panic("bv: ult width mismatch")
	}
	if x == y {
		return b.False()
	}
	xv, xc := x.IsConst()
	yv, yc := y.IsConst()
	if yc && yv == 0 {
		return b.False()
	}
	if xc && yc {
		if xv < yv {
			return b.True()
		}
		return b.False()
	}
	return b.intern(&Term{Op: OpUlt, Width: 1, Args: []*Term{x, y}})
}

// Slt is the signed less-than predicate, lowered to Ult with flipped signs.
func (b *Builder) Slt(x, y *Term) *Term {
	sign := b.Const(x.Width, 1<<(x.Width-1))
	return b.Ult(b.Xor(x, sign), b.Xor(y, sign))
}

// Ite is the if-then-else selector; cond must be 1-bit.
func (b *Builder) Ite(cond, then, els *Term) *Term {
	if cond.Width != 1 {
		panic("bv: ite condition must be 1-bit")
	}
	if then == els {
		return then
	}
	if v, ok := cond.IsConst(); ok {
		if v == 1 {
			return then
		}
		return els
	}
	if then.Width != els.Width {
		panic("bv: ite arm width mismatch")
	}
	return b.intern(&Term{Op: OpIte, Width: then.Width, Args: []*Term{cond, then, els}})
}

// BoolAnd / BoolOr / BoolNot are 1-bit logical helpers.
func (b *Builder) BoolAnd(x, y *Term) *Term { return b.And(x, y) }
func (b *Builder) BoolOr(x, y *Term) *Term  { return b.Or(x, y) }
func (b *Builder) BoolNot(x *Term) *Term    { return b.Not(x) }

// Implies builds x -> y over 1-bit terms.
func (b *Builder) Implies(x, y *Term) *Term { return b.Or(b.Not(x), y) }

// Ne is the negated equality predicate.
func (b *Builder) Ne(x, y *Term) *Term { return b.Not(b.Eq(x, y)) }

// PopCountConst is a helper used in tests.
func PopCountConst(v uint64) int { return bits.OnesCount64(v) }

// NumTerms returns the number of distinct terms interned so far.
func (b *Builder) NumTerms() int { return len(b.terms) }
