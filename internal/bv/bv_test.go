package bv

import (
	"math/rand"
	"testing"

	"repro/internal/sat"
)

// randomTerm builds a random term over two variables of the given width.
func randomTerm(b *Builder, rng *rand.Rand, x, y *Term, depth int) *Term {
	w := x.Width
	if depth == 0 {
		switch rng.Intn(3) {
		case 0:
			return x
		case 1:
			return y
		default:
			return b.Const(w, rng.Uint64())
		}
	}
	sub := func() *Term { return randomTerm(b, rng, x, y, depth-1) }
	switch rng.Intn(14) {
	case 0:
		return b.Not(sub())
	case 1:
		return b.And(sub(), sub())
	case 2:
		return b.Or(sub(), sub())
	case 3:
		return b.Xor(sub(), sub())
	case 4:
		return b.Add(sub(), sub())
	case 5:
		return b.Sub(sub(), sub())
	case 6:
		return b.Neg(sub())
	case 7:
		return b.Shl(sub(), b.Const(w, uint64(rng.Intn(int(w)+4))))
	case 8:
		return b.Lshr(sub(), b.Const(w, uint64(rng.Intn(int(w)+4))))
	case 9:
		return b.Ashr(sub(), b.Const(w, uint64(rng.Intn(int(w)+4))))
	case 10:
		return b.Ite(b.Eq(sub(), sub()), sub(), sub())
	case 11:
		return b.Ite(b.Ult(sub(), sub()), sub(), sub())
	case 12:
		if w <= 16 {
			return b.Mul(sub(), sub())
		}
		return b.Add(sub(), sub())
	default:
		// variable shift
		return b.Lshr(sub(), b.And(sub(), b.Const(w, 7)))
	}
}

// TestBlasterAgreesWithEvaluator is the core soundness property: for random
// terms and random inputs, the SAT encoding must pin the term to exactly the
// value the concrete evaluator computes.
func TestBlasterAgreesWithEvaluator(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for iter := 0; iter < 120; iter++ {
		width := []uint8{1, 8, 16, 32, 64}[rng.Intn(5)]
		b := NewBuilder()
		x := b.Var(width, "x")
		y := b.Var(width, "y")
		term := randomTerm(b, rng, x, y, 3)

		vx, vy := rng.Uint64()&mask(width), rng.Uint64()&mask(width)
		want := Eval(term, &Env{Vars: map[string]uint64{"x": vx, "y": vy}})

		s := sat.New()
		bl := NewBlaster(s)
		bl.AssertTrue(b.Eq(x, b.Const(width, vx)))
		bl.AssertTrue(b.Eq(y, b.Const(width, vy)))
		bl.AssertTrue(b.Ne(term, b.Const(width, want)))
		if st := s.Solve(); st != sat.Unsat {
			t.Fatalf("iter %d: term %v with x=%#x y=%#x: blaster disagrees with evaluator (want %#x): %v",
				iter, term, vx, vy, want, st)
		}
	}
}

func TestBlasterFindsModels(t *testing.T) {
	// x + y == 10 && x < y has solutions; extract one and check it.
	b := NewBuilder()
	x := b.Var(8, "x")
	y := b.Var(8, "y")
	s := sat.New()
	bl := NewBlaster(s)
	bl.AssertTrue(b.Eq(b.Add(x, y), b.Const(8, 10)))
	bl.AssertTrue(b.Ult(x, y))
	st, model := s.SolveModel()
	if st != sat.Sat {
		t.Fatalf("expected sat, got %v", st)
	}
	vx := bl.ValueOf(x, model)
	vy := bl.ValueOf(y, model)
	if byte(vx+vy) != 10 || vx >= vy {
		t.Fatalf("bad model: x=%d y=%d", vx, vy)
	}
}

func TestMultiplierEncoding(t *testing.T) {
	// 8-bit multiplication: check a few concrete products through SAT.
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 10; i++ {
		a, c := uint64(rng.Intn(256)), uint64(rng.Intn(256))
		b := NewBuilder()
		x := b.Var(8, "x")
		y := b.Var(8, "y")
		s := sat.New()
		bl := NewBlaster(s)
		bl.AssertTrue(b.Eq(x, b.Const(8, a)))
		bl.AssertTrue(b.Eq(y, b.Const(8, c)))
		bl.AssertTrue(b.Ne(b.Mul(x, y), b.Const(8, a*c)))
		if st := s.Solve(); st != sat.Unsat {
			t.Fatalf("%d*%d: %v", a, c, st)
		}
	}
}

func TestCommutativityProvable(t *testing.T) {
	// x*y == y*x over 8 bits must be valid (negation unsat).
	b := NewBuilder()
	x := b.Var(8, "x")
	y := b.Var(8, "y")
	s := sat.New()
	bl := NewBlaster(s)
	bl.AssertTrue(b.Ne(b.Mul(x, y), b.Mul(y, x)))
	if st := s.Solve(); st != sat.Unsat {
		t.Fatalf("multiplication commutativity refuted: %v", st)
	}
}

func TestAckermannConsistency(t *testing.T) {
	// With f uninterpreted: x == y must force f(x) == f(y).
	b := NewBuilder()
	x := b.Var(16, "x")
	y := b.Var(16, "y")
	fx := b.App("f", 16, x)
	fy := b.App("f", 16, y)
	s := sat.New()
	bl := NewBlaster(s)
	bl.AssertTrue(b.Eq(x, y))
	bl.AssertTrue(b.Ne(fx, fy))
	bl.AssertFunConsistency(b)
	if st := s.Solve(); st != sat.Unsat {
		t.Fatalf("Ackermann consistency violated: %v", st)
	}

	// But distinct arguments leave the results free.
	b2 := NewBuilder()
	x2 := b2.Var(16, "x")
	y2 := b2.Var(16, "y")
	s2 := sat.New()
	bl2 := NewBlaster(s2)
	bl2.AssertTrue(b2.Ne(x2, y2))
	bl2.AssertTrue(b2.Ne(b2.App("f", 16, x2), b2.App("f", 16, y2)))
	bl2.AssertFunConsistency(b2)
	if st := s2.Solve(); st != sat.Sat {
		t.Fatalf("uninterpreted function over-constrained: %v", st)
	}
}

func TestHashConsing(t *testing.T) {
	b := NewBuilder()
	x := b.Var(32, "x")
	y := b.Var(32, "y")
	if b.Add(x, y) != b.Add(x, y) {
		t.Fatal("identical terms not shared")
	}
	if b.Add(x, y) == b.Add(y, x) {
		t.Fatal("distinct terms merged")
	}
	if b.Const(8, 300) != b.Const(8, 44) {
		t.Fatal("constants not masked to width")
	}
}

func TestFolding(t *testing.T) {
	b := NewBuilder()
	x := b.Var(32, "x")
	cases := []struct {
		got, want *Term
	}{
		{b.And(x, b.Const(32, 0)), b.Const(32, 0)},
		{b.And(x, b.Const(32, 0xffffffff)), x},
		{b.Or(x, b.Const(32, 0)), x},
		{b.Xor(x, x), b.Const(32, 0)},
		{b.Add(x, b.Const(32, 0)), x},
		{b.Ite(b.True(), x, b.Const(32, 5)), x},
		{b.Extract(b.Concat(b.Const(16, 0xdead), b.Const(16, 0xbeef)), 0, 16), b.Const(16, 0xbeef)},
		{b.Eq(x, x), b.True()},
		{b.Shl(b.Const(32, 1), b.Const(32, 35)), b.Const(32, 0)},
	}
	for i, c := range cases {
		if c.got != c.want {
			t.Errorf("case %d: got %v, want %v", i, c.got, c.want)
		}
	}
}

func TestSextZextEval(t *testing.T) {
	b := NewBuilder()
	x := b.Var(8, "x")
	env := &Env{Vars: map[string]uint64{"x": 0x80}}
	if got := Eval(b.Sext(x, 16), env); got != 0xff80 {
		t.Errorf("sext(0x80) = %#x, want 0xff80", got)
	}
	if got := Eval(b.Zext(x, 16), env); got != 0x80 {
		t.Errorf("zext(0x80) = %#x, want 0x80", got)
	}
}
