package bv

import (
	"fmt"

	"repro/internal/sat"
)

// Blaster lowers terms to CNF over a sat.Solver via Tseitin encoding:
// ripple-carry adders, shift-add multipliers, barrel shifters, and
// fresh-variable vectors for inputs and uninterpreted applications.
type Blaster struct {
	S *sat.Solver

	bits map[*Term][]sat.Lit

	// constant literals
	lTrue, lFalse sat.Lit
}

// NewBlaster wraps a solver.
func NewBlaster(s *sat.Solver) *Blaster {
	b := &Blaster{S: s, bits: map[*Term][]sat.Lit{}}
	v := s.NewVar()
	b.lTrue = sat.MkLit(v, false)
	b.lFalse = b.lTrue.Not()
	s.AddClause(b.lTrue)
	return b
}

func (b *Blaster) constLit(v bool) sat.Lit {
	if v {
		return b.lTrue
	}
	return b.lFalse
}

func (b *Blaster) fresh() sat.Lit { return sat.MkLit(b.S.NewVar(), false) }

// gate helpers ---------------------------------------------------------

func (b *Blaster) mkAnd(x, y sat.Lit) sat.Lit {
	switch {
	case x == b.lFalse || y == b.lFalse:
		return b.lFalse
	case x == b.lTrue:
		return y
	case y == b.lTrue:
		return x
	case x == y:
		return x
	case x == y.Not():
		return b.lFalse
	}
	g := b.fresh()
	b.S.AddClause(g.Not(), x)
	b.S.AddClause(g.Not(), y)
	b.S.AddClause(g, x.Not(), y.Not())
	return g
}

func (b *Blaster) mkOr(x, y sat.Lit) sat.Lit {
	return b.mkAnd(x.Not(), y.Not()).Not()
}

func (b *Blaster) mkXor(x, y sat.Lit) sat.Lit {
	switch {
	case x == b.lFalse:
		return y
	case y == b.lFalse:
		return x
	case x == b.lTrue:
		return y.Not()
	case y == b.lTrue:
		return x.Not()
	case x == y:
		return b.lFalse
	case x == y.Not():
		return b.lTrue
	}
	g := b.fresh()
	b.S.AddClause(g.Not(), x, y)
	b.S.AddClause(g.Not(), x.Not(), y.Not())
	b.S.AddClause(g, x.Not(), y)
	b.S.AddClause(g, x, y.Not())
	return g
}

// mkMux returns c ? t : e.
func (b *Blaster) mkMux(c, t, e sat.Lit) sat.Lit {
	switch {
	case c == b.lTrue:
		return t
	case c == b.lFalse:
		return e
	case t == e:
		return t
	}
	g := b.fresh()
	b.S.AddClause(c.Not(), t.Not(), g)
	b.S.AddClause(c.Not(), t, g.Not())
	b.S.AddClause(c, e.Not(), g)
	b.S.AddClause(c, e, g.Not())
	return g
}

// mkMaj returns the majority of three literals (the carry function).
func (b *Blaster) mkMaj(x, y, c sat.Lit) sat.Lit {
	return b.mkOr(b.mkAnd(x, y), b.mkOr(b.mkAnd(x, c), b.mkAnd(y, c)))
}

// adder computes sum and carry-out of x + y + cin.
func (b *Blaster) adder(x, y []sat.Lit, cin sat.Lit) (sum []sat.Lit, cout sat.Lit) {
	n := len(x)
	sum = make([]sat.Lit, n)
	c := cin
	for i := 0; i < n; i++ {
		sum[i] = b.mkXor(b.mkXor(x[i], y[i]), c)
		c = b.mkMaj(x[i], y[i], c)
	}
	return sum, c
}

func (b *Blaster) notBits(x []sat.Lit) []sat.Lit {
	out := make([]sat.Lit, len(x))
	for i, l := range x {
		out[i] = l.Not()
	}
	return out
}

// Bits lowers t and returns its literal vector, least significant first.
func (b *Blaster) Bits(t *Term) []sat.Lit {
	if got, ok := b.bits[t]; ok {
		return got
	}
	var out []sat.Lit
	w := int(t.Width)
	switch t.Op {
	case OpConst:
		out = make([]sat.Lit, w)
		for i := 0; i < w; i++ {
			out[i] = b.constLit(t.Val>>i&1 == 1)
		}
	case OpVar, OpApp:
		// Fresh variable vectors. Applications get Ackermann constraints
		// from AssertFunConsistency.
		for _, a := range t.Args {
			b.Bits(a) // ensure argument bits exist for Ackermann
		}
		out = make([]sat.Lit, w)
		for i := 0; i < w; i++ {
			out[i] = b.fresh()
		}
	case OpNot:
		out = b.notBits(b.Bits(t.Args[0]))
	case OpAnd, OpOr, OpXor:
		x, y := b.Bits(t.Args[0]), b.Bits(t.Args[1])
		out = make([]sat.Lit, w)
		for i := 0; i < w; i++ {
			switch t.Op {
			case OpAnd:
				out[i] = b.mkAnd(x[i], y[i])
			case OpOr:
				out[i] = b.mkOr(x[i], y[i])
			case OpXor:
				out[i] = b.mkXor(x[i], y[i])
			}
		}
	case OpAdd:
		out, _ = b.adder(b.Bits(t.Args[0]), b.Bits(t.Args[1]), b.lFalse)
	case OpSub:
		out, _ = b.adder(b.Bits(t.Args[0]), b.notBits(b.Bits(t.Args[1])), b.lTrue)
	case OpNeg:
		zero := make([]sat.Lit, w)
		for i := range zero {
			zero[i] = b.lFalse
		}
		out, _ = b.adder(zero, b.notBits(b.Bits(t.Args[0])), b.lTrue)
	case OpMul:
		x, y := b.Bits(t.Args[0]), b.Bits(t.Args[1])
		acc := make([]sat.Lit, w)
		for i := range acc {
			acc[i] = b.lFalse
		}
		for i := 0; i < w; i++ {
			// acc += (y & x_i) << i
			addend := make([]sat.Lit, w)
			for j := 0; j < w; j++ {
				if j < i {
					addend[j] = b.lFalse
				} else {
					addend[j] = b.mkAnd(x[i], y[j-i])
				}
			}
			acc, _ = b.adder(acc, addend, b.lFalse)
		}
		out = acc
	case OpShl, OpLshr, OpAshr:
		out = b.blastShift(t)
	case OpExtract:
		src := b.Bits(t.Args[0])
		out = src[t.Lo : int(t.Lo)+w]
	case OpConcat:
		hi, lo := b.Bits(t.Args[0]), b.Bits(t.Args[1])
		out = append(append([]sat.Lit{}, lo...), hi...)
	case OpZext:
		src := b.Bits(t.Args[0])
		out = append([]sat.Lit{}, src...)
		for len(out) < w {
			out = append(out, b.lFalse)
		}
	case OpSext:
		src := b.Bits(t.Args[0])
		out = append([]sat.Lit{}, src...)
		sign := src[len(src)-1]
		for len(out) < w {
			out = append(out, sign)
		}
	case OpEq:
		x, y := b.Bits(t.Args[0]), b.Bits(t.Args[1])
		acc := b.lTrue
		for i := range x {
			acc = b.mkAnd(acc, b.mkXor(x[i], y[i]).Not())
		}
		out = []sat.Lit{acc}
	case OpUlt:
		x, y := b.Bits(t.Args[0]), b.Bits(t.Args[1])
		// x < y  <=>  borrow out of x - y.
		_, cout := b.adder(x, b.notBits(y), b.lTrue)
		out = []sat.Lit{cout.Not()}
	case OpIte:
		c := b.Bits(t.Args[0])[0]
		x, y := b.Bits(t.Args[1]), b.Bits(t.Args[2])
		out = make([]sat.Lit, w)
		for i := 0; i < w; i++ {
			out[i] = b.mkMux(c, x[i], y[i])
		}
	default:
		panic(fmt.Sprintf("bv: blast of op %d", t.Op))
	}
	if len(out) != w {
		panic(fmt.Sprintf("bv: blasted %d bits for %d-bit term %v", len(out), w, t))
	}
	b.bits[t] = out
	return out
}

// blastShift encodes shl/lshr/ashr with a barrel shifter over the shift
// amount's non-constant bits.
func (b *Blaster) blastShift(t *Term) []sat.Lit {
	w := int(t.Width)
	val := b.Bits(t.Args[0])
	sh := b.Bits(t.Args[1])
	cur := append([]sat.Lit{}, val...)

	var fill sat.Lit
	switch t.Op {
	case OpAshr:
		fill = val[w-1]
	default:
		fill = b.lFalse
	}

	for k := 0; k < len(sh); k++ {
		bit := sh[k]
		if bit == b.lFalse {
			continue
		}
		shift := w // any stage at or beyond the width saturates
		if k < 30 && 1<<k < w {
			shift = 1 << k
		}
		next := make([]sat.Lit, w)
		for i := 0; i < w; i++ {
			var shifted sat.Lit
			switch t.Op {
			case OpShl:
				if i >= shift {
					shifted = cur[i-shift]
				} else {
					shifted = b.lFalse
				}
			default: // right shifts
				if i+shift < w {
					shifted = cur[i+shift]
				} else {
					shifted = fill
				}
			}
			next[i] = b.mkMux(bit, shifted, cur[i])
		}
		cur = next
	}
	return cur
}

// AssertTrue requires the 1-bit term t to hold.
func (b *Blaster) AssertTrue(t *Term) {
	if t.Width != 1 {
		panic("bv: AssertTrue on wide term")
	}
	b.S.AddClause(b.Bits(t)[0])
}

// AssertFalse requires the 1-bit term t not to hold.
func (b *Blaster) AssertFalse(t *Term) {
	if t.Width != 1 {
		panic("bv: AssertFalse on wide term")
	}
	b.S.AddClause(b.Bits(t)[0].Not())
}

// AssertFunConsistency adds Ackermann constraints for every pair of
// applications of the same uninterpreted function recorded by the builder:
// equal arguments force equal results. This is how 64-bit multiplication
// and division stay uninterpreted yet functionally consistent (§5.2).
func (b *Blaster) AssertFunConsistency(builder *Builder) {
	for _, apps := range builder.Apps {
		for i := 0; i < len(apps); i++ {
			for j := i + 1; j < len(apps); j++ {
				f, g := apps[i], apps[j]
				if len(f.Args) != len(g.Args) {
					continue
				}
				argsEq := builder.True()
				for k := range f.Args {
					if f.Args[k].Width != g.Args[k].Width {
						argsEq = builder.False()
						break
					}
					argsEq = builder.And(argsEq, builder.Eq(f.Args[k], g.Args[k]))
				}
				b.AssertTrue(builder.Implies(argsEq, builder.Eq(f, g)))
			}
		}
	}
}

// TryValueOf reads the concrete value of t out of a model if t was blasted.
func (b *Blaster) TryValueOf(t *Term, model []bool) (uint64, bool) {
	if _, ok := b.bits[t]; !ok {
		return 0, false
	}
	return b.ValueOf(t, model), true
}

// ValueOf reads the concrete value of t out of a model returned by
// sat.Solver.SolveModel. The term must have been blasted.
func (b *Blaster) ValueOf(t *Term, model []bool) uint64 {
	lits, ok := b.bits[t]
	if !ok {
		panic("bv: ValueOf on unblasted term")
	}
	var v uint64
	for i, l := range lits {
		bit := model[l.Var()]
		if l.Neg() {
			bit = !bit
		}
		if bit {
			v |= 1 << i
		}
	}
	return v
}
