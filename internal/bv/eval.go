package bv

import "fmt"

// Env supplies concrete values for the free variables (and uninterpreted
// applications) of a term during evaluation.
type Env struct {
	// Vars maps variable names to values.
	Vars map[string]uint64
	// Apps, when non-nil, maps an application (by function name and
	// concrete argument values) to its value; when nil, applications are
	// evaluated by a deterministic mixing hash, which respects functional
	// consistency (identical inputs give identical outputs) exactly as the
	// paper's treatment of uninterpreted multiplication requires.
	Apps map[string]uint64
}

// appKey builds the lookup key for an application with concrete args.
func appKey(name string, args []uint64) string {
	k := name
	for _, a := range args {
		k += fmt.Sprintf(":%x", a)
	}
	return k
}

// Eval computes the concrete value of t under env, memoising on term
// identity.
func Eval(t *Term, env *Env) uint64 {
	memo := map[*Term]uint64{}
	return eval(t, env, memo)
}

// EvalAll evaluates several terms sharing one memo table.
func EvalAll(ts []*Term, env *Env) []uint64 {
	memo := map[*Term]uint64{}
	out := make([]uint64, len(ts))
	for i, t := range ts {
		out[i] = eval(t, env, memo)
	}
	return out
}

func eval(t *Term, env *Env, memo map[*Term]uint64) uint64 {
	if v, ok := memo[t]; ok {
		return v
	}
	var v uint64
	switch t.Op {
	case OpConst:
		v = t.Val
	case OpVar:
		v = env.Vars[t.Name] & mask(t.Width)
	case OpApp:
		args := make([]uint64, len(t.Args))
		for i, a := range t.Args {
			args[i] = eval(a, env, memo)
		}
		k := appKey(t.Name, args)
		if env.Apps != nil {
			v = env.Apps[k] & mask(t.Width)
		} else {
			v = mixHash(k) & mask(t.Width)
		}
	case OpNot:
		v = ^eval(t.Args[0], env, memo)
	case OpAnd:
		v = eval(t.Args[0], env, memo) & eval(t.Args[1], env, memo)
	case OpOr:
		v = eval(t.Args[0], env, memo) | eval(t.Args[1], env, memo)
	case OpXor:
		v = eval(t.Args[0], env, memo) ^ eval(t.Args[1], env, memo)
	case OpNeg:
		v = -eval(t.Args[0], env, memo)
	case OpAdd:
		v = eval(t.Args[0], env, memo) + eval(t.Args[1], env, memo)
	case OpSub:
		v = eval(t.Args[0], env, memo) - eval(t.Args[1], env, memo)
	case OpMul:
		v = eval(t.Args[0], env, memo) * eval(t.Args[1], env, memo)
	case OpShl:
		a := eval(t.Args[0], env, memo)
		c := eval(t.Args[1], env, memo) & mask(t.Args[1].Width)
		if c >= uint64(t.Width) {
			v = 0
		} else {
			v = a << c
		}
	case OpLshr:
		a := eval(t.Args[0], env, memo) & mask(t.Width)
		c := eval(t.Args[1], env, memo) & mask(t.Args[1].Width)
		if c >= uint64(t.Width) {
			v = 0
		} else {
			v = a >> c
		}
	case OpAshr:
		a := eval(t.Args[0], env, memo) & mask(t.Width)
		c := eval(t.Args[1], env, memo) & mask(t.Args[1].Width)
		sign := a >> (t.Width - 1) & 1
		if c >= uint64(t.Width) {
			if sign == 1 {
				v = mask(t.Width)
			}
		} else {
			v = a >> c
			if sign == 1 {
				v |= mask(t.Width) &^ (mask(t.Width) >> c)
			}
		}
	case OpExtract:
		v = eval(t.Args[0], env, memo) >> t.Lo
	case OpConcat:
		hi := eval(t.Args[0], env, memo) & mask(t.Args[0].Width)
		lo := eval(t.Args[1], env, memo) & mask(t.Args[1].Width)
		v = hi<<t.Args[1].Width | lo
	case OpZext:
		v = eval(t.Args[0], env, memo) & mask(t.Args[0].Width)
	case OpSext:
		a := eval(t.Args[0], env, memo) & mask(t.Args[0].Width)
		if a>>(t.Args[0].Width-1)&1 == 1 {
			a |= mask(t.Width) &^ mask(t.Args[0].Width)
		}
		v = a
	case OpEq:
		a := eval(t.Args[0], env, memo) & mask(t.Args[0].Width)
		c := eval(t.Args[1], env, memo) & mask(t.Args[1].Width)
		if a == c {
			v = 1
		}
	case OpUlt:
		a := eval(t.Args[0], env, memo) & mask(t.Args[0].Width)
		c := eval(t.Args[1], env, memo) & mask(t.Args[1].Width)
		if a < c {
			v = 1
		}
	case OpIte:
		if eval(t.Args[0], env, memo)&1 == 1 {
			v = eval(t.Args[1], env, memo)
		} else {
			v = eval(t.Args[2], env, memo)
		}
	default:
		panic(fmt.Sprintf("bv: eval of op %d", t.Op))
	}
	v &= mask(t.Width)
	memo[t] = v
	return v
}

// mixHash is a deterministic 64-bit string hash (FNV-1a with avalanche).
func mixHash(s string) uint64 {
	h := uint64(0xcbf29ce484222325)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 0x100000001b3
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return h
}
