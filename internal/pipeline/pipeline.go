// Package pipeline implements the "actual runtime" stand-in used where the
// paper measures wall-clock time on hardware (Figure 3's y-axis and the
// final re-ranking step of Figure 9).
//
// The model is a dependency-DAG critical-path estimator for an idealised
// out-of-order core: each instruction becomes ready when the instructions
// producing its register, flag and memory inputs have completed, an issue
// width bounds how many instructions can start per cycle, and completion
// time is ready time plus the instruction's latency. Unlike the static sum
// of Equation 13, this model rewards instruction-level parallelism — which
// is exactly the divergence the paper observes between its predicted and
// actual runtimes ("outliers correspond to codes with high instruction level
// parallelism at the micro-op level").
package pipeline

import (
	"repro/internal/perf"
	"repro/internal/x64"
)

// Config parameterises the core model.
type Config struct {
	// IssueWidth is the number of instructions that may begin execution in
	// one cycle. The default models a 4-wide core.
	IssueWidth int

	// BranchOverhead is added per conditional branch, charging expected
	// misprediction cost.
	BranchOverhead float64
}

// DefaultConfig is a 4-wide out-of-order core. The branch overhead models
// expected misprediction cost on data-dependent branches (~15 cycles at a
// mid-teens miss rate), which is what makes cmov if-conversion profitable —
// the Figure 13 story.
var DefaultConfig = Config{IssueWidth: 4, BranchOverhead: 2.5}

// Cycles estimates the execution time of a straight-line pass over p using
// the default configuration.
func Cycles(p *x64.Program) float64 {
	return DefaultConfig.Cycles(p)
}

// Cycles estimates the execution time of a straight-line pass over p.
// Branches are treated as executing both arms' dependence edges (a
// conservative if-conversion), which is exact for the loop-free sequences
// the system optimises.
func (c Config) Cycles(p *x64.Program) float64 {
	if c.IssueWidth <= 0 {
		c.IssueWidth = 1
	}
	var (
		regReady   [x64.NumGPR]float64
		xmmReady   [x64.NumXMM]float64
		flagReady  [x64.NumFlags]float64
		memReady   float64 // serialise memory writes; reads depend on it
		issueSlots []float64
		finish     float64
		branchCost float64
	)
	issueSlots = make([]float64, 0, 8)

	issueAt := func(ready float64) float64 {
		// The instruction may start no earlier than `ready`, and no more
		// than IssueWidth instructions may share a start cycle. Model the
		// constraint by tracking the last IssueWidth start times.
		start := ready
		if len(issueSlots) >= c.IssueWidth {
			gate := issueSlots[len(issueSlots)-c.IssueWidth] + 1
			if gate > start {
				start = gate
			}
		}
		issueSlots = append(issueSlots, start)
		// Keep the window bounded.
		if len(issueSlots) > 4*c.IssueWidth {
			issueSlots = issueSlots[len(issueSlots)-2*c.IssueWidth:]
		}
		return start
	}

	for _, in := range p.Insts {
		switch in.Op {
		case x64.UNUSED, x64.LABEL, x64.RET:
			continue
		case x64.Jcc, x64.JMP:
			branchCost += c.BranchOverhead
			continue
		}
		e := x64.EffectsOf(in)
		ready := 0.0
		for r := x64.Reg(0); r < x64.NumGPR; r++ {
			if e.GPRRead.Has(r) && regReady[r] > ready {
				ready = regReady[r]
			}
		}
		for r := x64.Reg(0); r < x64.NumXMM; r++ {
			if e.XMMRead&(1<<r) != 0 && xmmReady[r] > ready {
				ready = xmmReady[r]
			}
		}
		for f := x64.Flag(0); f < x64.NumFlags; f++ {
			if e.FlagsRead.Has(f) && flagReady[f] > ready {
				ready = flagReady[f]
			}
		}
		if (e.MemRead || e.MemWrite) && memReady > ready {
			ready = memReady
		}

		start := issueAt(ready)
		done := start + perf.Latency(in)

		for r := x64.Reg(0); r < x64.NumGPR; r++ {
			if e.GPRWrite.Has(r) {
				regReady[r] = done
			}
		}
		for r := x64.Reg(0); r < x64.NumXMM; r++ {
			if e.XMMWrite&(1<<r) != 0 {
				xmmReady[r] = done
			}
		}
		for f := x64.Flag(0); f < x64.NumFlags; f++ {
			if e.FlagsWrit.Has(f) {
				flagReady[f] = done
			}
		}
		if e.MemWrite {
			memReady = done
		}
		if done > finish {
			finish = done
		}
	}
	return finish + branchCost
}

// Speedup returns how many times faster rewrite is than target under the
// model; values above 1 mean the rewrite wins.
func Speedup(target, rewrite *x64.Program) float64 {
	rt := Cycles(rewrite)
	if rt == 0 {
		return 1
	}
	return Cycles(target) / rt
}
