package pipeline

import (
	"testing"

	"repro/internal/perf"
	"repro/internal/x64"
)

func TestILPBeatsDependencyChain(t *testing.T) {
	// Four independent adds vs a four-deep dependency chain: the same
	// static latency sum, very different pipeline cycles — exactly the
	// divergence Figure 3's outliers show.
	parallel := x64.MustParse(`
  addq rdi, rax
  addq rsi, rbx
  addq rdx, rcx
  addq rdi, r8
`)
	chain := x64.MustParse(`
  addq rdi, rax
  addq rax, rbx
  addq rbx, rcx
  addq rcx, r8
`)
	if perf.H(parallel) != perf.H(chain) {
		t.Fatalf("static sums should match: %v vs %v", perf.H(parallel), perf.H(chain))
	}
	cp, cc := Cycles(parallel), Cycles(chain)
	if cp >= cc {
		t.Errorf("parallel code (%v cycles) must beat the chain (%v cycles)", cp, cc)
	}
}

func TestIssueWidthLimits(t *testing.T) {
	// Eight independent instructions on a 1-wide core take at least 8
	// cycles; a wide core overlaps them.
	var src string
	regs := []string{"rax", "rbx", "rcx", "rdx", "rsi", "rdi", "r8", "r9"}
	for _, r := range regs {
		src += "incq " + r + "\n"
	}
	p := x64.MustParse(src)
	narrow := Config{IssueWidth: 1}.Cycles(p)
	wide := Config{IssueWidth: 8}.Cycles(p)
	if narrow < 8 {
		t.Errorf("1-wide core: %v cycles for 8 instructions", narrow)
	}
	if wide >= narrow {
		t.Errorf("8-wide core (%v) must beat 1-wide (%v)", wide, narrow)
	}
}

func TestFlagDependenciesSerialise(t *testing.T) {
	// adc depends on the carry from add: must not overlap fully.
	dep := x64.MustParse(`
  addq rsi, rax
  adcq rdx, rbx
`)
	indep := x64.MustParse(`
  addq rsi, rax
  movq rdx, rbx
`)
	if Cycles(dep) <= Cycles(indep) {
		t.Errorf("flag-dependent pair (%v) must cost at least the independent pair (%v)",
			Cycles(dep), Cycles(indep))
	}
}

func TestMemorySerialises(t *testing.T) {
	aliased := x64.MustParse(`
  movq rax, (rdi)
  movq (rsi), rbx
`)
	regOnly := x64.MustParse(`
  movq rax, rcx
  movq rsi, rbx
`)
	if Cycles(aliased) <= Cycles(regOnly) {
		t.Errorf("memory ordering must add cost: %v vs %v", Cycles(aliased), Cycles(regOnly))
	}
}

func TestBranchOverheadCharged(t *testing.T) {
	branchy := x64.MustParse(`
  cmpq rsi, rdi
  jae .L1
  movq rsi, rax
.L1
`)
	straight := x64.MustParse(`
  cmpq rsi, rdi
  cmovbq rsi, rax
`)
	if Cycles(branchy) <= Cycles(straight) {
		t.Errorf("branch (%v cycles) should cost more than cmov (%v cycles)",
			Cycles(branchy), Cycles(straight))
	}
}

func TestUnusedSlotsFree(t *testing.T) {
	p := x64.MustParse("addq rsi, rax")
	if Cycles(p) != Cycles(p.PadTo(50)) {
		t.Error("UNUSED padding must not change the cycle estimate")
	}
}

func TestSpeedupOrientation(t *testing.T) {
	slow := x64.MustParse(`
  movq rdi, rax
  imulq rsi, rax
  imulq rsi, rax
  imulq rsi, rax
`)
	fast := x64.MustParse("movq rdi, rax")
	if s := Speedup(slow, fast); s <= 1 {
		t.Errorf("Speedup(slow, fast) = %v, want > 1", s)
	}
	if s := Speedup(fast, slow); s >= 1 {
		t.Errorf("Speedup(fast, slow) = %v, want < 1", s)
	}
}

// TestPaperMontShape reproduces the Figure 1 performance claim under the
// model: the STOKE rewrite beats gcc -O3 by well over 1.3x.
func TestPaperMontShape(t *testing.T) {
	gcc := x64.MustParse(`
.set c0 0xffffffff
.set c1 0x100000000
  movq rsi, r9
  mov ecx, ecx
  shrq 32, rsi
  andl c0, r9d
  movq rcx, rax
  mov edx, edx
  imulq r9, rax
  imulq rdx, r9
  imulq rsi, rdx
  imulq rsi, rcx
  addq rdx, rax
  jae .L2
  movabsq c1, rdx
  addq rdx, rcx
.L2
  movq rax, rsi
  movq rax, rdx
  shrq 32, rsi
  salq 32, rdx
  addq rsi, rcx
  addq r9, rdx
  adcq 0, rcx
  addq r8, rdx
  adcq 0, rcx
  addq rdi, rdx
  adcq 0, rcx
  movq rcx, r8
  movq rdx, rdi
`)
	stoke := x64.MustParse(`
  shlq 32, rcx
  mov edx, edx
  xorq rdx, rcx
  movq rcx, rax
  mulq rsi
  addq r8, rdi
  adcq 0, rdx
  addq rdi, rax
  adcq 0, rdx
  movq rdx, r8
  movq rax, rdi
`)
	s := Speedup(gcc, stoke)
	if s < 1.3 {
		t.Errorf("model gives STOKE %vx over gcc -O3; paper reports 1.6x — shape lost", s)
	}
	t.Logf("modelled Figure 1 speedup: %.2fx (paper: 1.6x)", s)
}
