package cc

import (
	"fmt"
	"math/bits"

	"repro/internal/x64"
)

// Flavor selects the production-compiler persona of the -O3 style backend.
type Flavor uint8

// Compiler flavors for the Figure 10 comparators.
const (
	// FlavorGCC folds constants, strength-reduces multiplies and uses
	// conditional moves for selects.
	FlavorGCC Flavor = iota
	// FlavorICC matches the paper's observations about icc on these
	// kernels: no multiply strength reduction (the list benchmark note in
	// §6.3) and branchy select lowering.
	FlavorICC
)

// CompileO2 lowers f with -O3-style choices: constant folding, greedy
// register allocation with no stack traffic, strength reduction and cmov
// if-conversion (flavor-dependent).
func CompileO2(f *Func, flavor Flavor) *x64.Program {
	g := &o2gen{
		flavor: flavor,
		locals: map[string]regVal{},
		inUse:  map[x64.Reg]bool{},
	}
	// Parameters stay in their ABI registers; reserve them.
	for i := range f.Params {
		r, _, _, _ := x64.LookupReg(argRegName(i))
		g.inUse[r] = true
		g.params = append(g.params, r)
	}
	for _, st := range f.Body {
		switch s := st.(type) {
		case *Let:
			rv := g.expr(fold(s.X))
			g.locals[s.Name] = rv
		case *Store:
			v := g.expr(fold(s.X))
			b := g.expr(fold(s.Base))
			w := s.X.typ().Width()
			g.emit(x64.MakeInst(x64.MOV, x64.R(v.reg, w), x64.Mem(b.reg, s.Off, w)))
			g.release(v)
			g.release(b)
		case *Return:
			rv := g.expr(fold(s.X))
			w := s.X.typ().Width()
			if rv.reg != x64.RAX {
				g.emit(x64.MakeInst(x64.MOV, x64.R(rv.reg, w), x64.R(x64.RAX, w)))
			}
			g.release(rv)
		}
	}
	p := &x64.Program{Insts: g.prog}
	if err := p.Validate(); err != nil {
		panic("cc: O2 emitted invalid code: " + err.Error())
	}
	return p
}

// regVal is an expression result: a register plus whether the register is a
// temporary this expression owns (parameters and locals are borrowed).
type regVal struct {
	reg   x64.Reg
	owned bool
}

type o2gen struct {
	flavor Flavor
	prog   []x64.Inst
	locals map[string]regVal
	params []x64.Reg
	inUse  map[x64.Reg]bool
	labels int32
}

// allocOrder is the temp allocation preference (no ABI concerns inside a
// simulated kernel, so callee-saved registers join the pool). RAX stays out
// of the pool: divides and the return path claim it.
var allocOrder = []x64.Reg{
	x64.R10, x64.R11, x64.R8, x64.R9,
	x64.RBX, x64.RBP, x64.R12, x64.R13, x64.R14, x64.R15,
	x64.RDX, x64.RCX, x64.RSI, x64.RDI,
}

func (g *o2gen) emit(in x64.Inst) { g.prog = append(g.prog, in) }

func (g *o2gen) alloc() x64.Reg {
	for _, r := range allocOrder {
		if !g.inUse[r] {
			g.inUse[r] = true
			return r
		}
	}
	panic("cc: register pressure exceeded the O2 allocator")
}

func (g *o2gen) release(rv regVal) {
	if rv.owned {
		g.inUse[rv.reg] = false
	}
}

// own returns rv if owned, else copies it into a fresh temp so it can be
// used as a mutable destination.
func (g *o2gen) own(rv regVal, w uint8) regVal {
	if rv.owned {
		return rv
	}
	dst := g.alloc()
	g.emit(x64.MakeInst(x64.MOV, x64.R(rv.reg, w), x64.R(dst, w)))
	return regVal{reg: dst, owned: true}
}

func (g *o2gen) newLabel() int32 {
	g.labels++
	return g.labels - 1
}

// expr compiles e into a register.
func (g *o2gen) expr(e Expr) regVal {
	w := e.typ().Width()
	switch n := e.(type) {
	case *Param:
		return regVal{reg: g.params[n.Index]}
	case *VarRef:
		rv, ok := g.locals[n.Name]
		if !ok {
			panic("cc: unbound local " + n.Name)
		}
		return regVal{reg: rv.reg}
	case *Const:
		dst := g.alloc()
		if n.T == I64 && (n.Val > 1<<31-1 || n.Val < -(1<<31)) {
			g.emit(x64.MakeInst(x64.MOVABS, x64.Imm(n.Val, 8), x64.R64(dst)))
		} else {
			g.emit(x64.MakeInst(x64.MOV, x64.Imm(n.Val, w), x64.R(dst, w)))
		}
		return regVal{reg: dst, owned: true}
	case *Un:
		rv := g.own(g.expr(n.X), w)
		op := x64.NOT
		if n.Op == OpNeg {
			op = x64.NEG
		}
		g.emit(x64.MakeInst(op, x64.R(rv.reg, w)))
		return rv
	case *Load:
		b := g.expr(n.Base)
		dst := g.alloc()
		g.emit(x64.MakeInst(x64.MOV, x64.Mem(b.reg, n.Off, w), x64.R(dst, w)))
		g.release(b)
		return regVal{reg: dst, owned: true}
	case *Sel:
		return g.sel(n, w)
	case *Bin:
		return g.binExpr(n, w)
	}
	panic("cc: unknown expression")
}

func (g *o2gen) binExpr(n *Bin, w uint8) regVal {
	// Strength reduction: multiply by a power-of-two constant becomes a
	// shift under the gcc flavor (§6.3 notes icc skips it).
	if n.Op == OpMul && g.flavor == FlavorGCC {
		if c, ok := n.Y.(*Const); ok && c.Val > 0 && bits.OnesCount64(uint64(c.Val)) == 1 {
			sh := int64(bits.TrailingZeros64(uint64(c.Val)))
			return g.binExpr(&Bin{Op: OpShl, X: n.X, Y: &Const{Val: sh, T: n.X.typ()}}, w)
		}
	}

	if n.Op.isCmp() {
		x := g.expr(n.X)
		y := g.expr(n.Y)
		// The xor-zero + setcc idiom production compilers use: zeroing
		// first avoids a partial write into an undefined register (and
		// the partial-register stall on hardware). The xor must precede
		// the compare — it clobbers flags.
		dst := g.alloc()
		g.emit(x64.MakeInst(x64.XOR, x64.R(dst, 4), x64.R(dst, 4)))
		g.emit(x64.MakeInst(x64.CMP, x64.R(y.reg, w), x64.R(x.reg, w)))
		g.release(x)
		g.release(y)
		g.emit(x64.MakeCCInst(x64.SETcc, ccOf(n.Op), x64.R8L(dst)))
		return regVal{reg: dst, owned: true}
	}

	switch n.Op {
	case OpShl, OpLshr, OpAshr:
		op := map[BinOp]x64.Opcode{OpShl: x64.SHL, OpLshr: x64.SHR, OpAshr: x64.SAR}[n.Op]
		dst := g.own(g.expr(n.X), w)
		if c, ok := n.Y.(*Const); ok {
			g.emit(x64.MakeInst(op, x64.Imm(c.Val, w), x64.R(dst.reg, w)))
			return dst
		}
		cnt := g.expr(n.Y)
		if g.inUse[x64.RCX] && cnt.reg != x64.RCX {
			panic("cc: variable shift needs rcx")
		}
		if cnt.reg != x64.RCX {
			g.emit(x64.MakeInst(x64.MOV, x64.R(cnt.reg, w), x64.R(x64.RCX, w)))
		}
		g.release(cnt)
		g.emit(x64.MakeInst(op, x64.R8L(x64.RCX), x64.R(dst.reg, w)))
		return dst
	case OpDivU:
		x := g.expr(n.X)
		y := g.expr(n.Y)
		// The divide pins RAX (kept out of the allocation pool) and RDX.
		if g.inUse[x64.RDX] && y.reg != x64.RDX {
			panic("cc: divide needs rdx free")
		}
		if x.reg != x64.RAX {
			g.emit(x64.MakeInst(x64.MOV, x64.R(x.reg, w), x64.R(x64.RAX, w)))
		}
		g.emit(x64.MakeInst(x64.MOV, x64.Imm(0, w), x64.R(x64.RDX, w)))
		g.emit(x64.MakeInst(x64.DIV, x64.R(y.reg, w)))
		g.release(x)
		g.release(y)
		g.inUse[x64.RAX] = true
		return regVal{reg: x64.RAX, owned: true}
	}

	op := map[BinOp]x64.Opcode{
		OpAdd: x64.ADD, OpSub: x64.SUB, OpMul: x64.IMUL,
		OpAnd: x64.AND, OpOr: x64.OR, OpXor: x64.XOR,
	}[n.Op]
	dst := g.own(g.expr(n.X), w)
	if c, ok := n.Y.(*Const); ok && op != x64.IMUL {
		g.emit(x64.MakeInst(op, x64.Imm(c.Val, w), x64.R(dst.reg, w)))
		return dst
	}
	y := g.expr(n.Y)
	g.emit(x64.MakeInst(op, x64.R(y.reg, w), x64.R(dst.reg, w)))
	g.release(y)
	return dst
}

// sel lowers select(cond, a, b): cmov under gcc, a forward branch under icc.
func (g *o2gen) sel(n *Sel, w uint8) regVal {
	// Both arms are evaluated before the condition so their code cannot
	// clobber the flags the conditional move consumes (expressions are
	// pure, so hoisting them is sound).
	a := g.expr(n.A)
	b := g.expr(n.B)

	// Evaluate the condition into flags: a comparison condition is used
	// directly; anything else is tested against zero.
	var cc x64.Cond
	if cmp, ok := n.Cond.(*Bin); ok && cmp.Op.isCmp() {
		x := g.expr(cmp.X)
		y := g.expr(cmp.Y)
		cw := cmp.X.typ().Width()
		g.emit(x64.MakeInst(x64.CMP, x64.R(y.reg, cw), x64.R(x.reg, cw)))
		g.release(x)
		g.release(y)
		cc = ccOf(cmp.Op)
	} else {
		c := g.expr(n.Cond)
		cw := n.Cond.typ().Width()
		g.emit(x64.MakeInst(x64.TEST, x64.R(c.reg, cw), x64.R(c.reg, cw)))
		g.release(c)
		cc = x64.CondNE
	}

	dst := g.own(b, w)
	if g.flavor == FlavorICC {
		skip := g.newLabel()
		g.emit(x64.MakeCCInst(x64.Jcc, negateCond(cc), x64.LabelRef(skip)))
		g.emit(x64.MakeInst(x64.MOV, x64.R(a.reg, w), x64.R(dst.reg, w)))
		g.emit(x64.MakeInst(x64.LABEL, x64.LabelRef(skip)))
	} else {
		g.emit(x64.MakeCCInst(x64.CMOVcc, cc, x64.R(a.reg, w), x64.R(dst.reg, w)))
	}
	g.release(a)
	return dst
}

func negateCond(c x64.Cond) x64.Cond {
	switch c {
	case x64.CondE:
		return x64.CondNE
	case x64.CondNE:
		return x64.CondE
	case x64.CondA:
		return x64.CondBE
	case x64.CondAE:
		return x64.CondB
	case x64.CondB:
		return x64.CondAE
	case x64.CondBE:
		return x64.CondA
	case x64.CondG:
		return x64.CondLE
	case x64.CondGE:
		return x64.CondL
	case x64.CondL:
		return x64.CondGE
	case x64.CondLE:
		return x64.CondG
	case x64.CondS:
		return x64.CondNS
	case x64.CondNS:
		return x64.CondS
	case x64.CondO:
		return x64.CondNO
	case x64.CondNO:
		return x64.CondO
	case x64.CondP:
		return x64.CondNP
	case x64.CondNP:
		return x64.CondP
	}
	panic(fmt.Sprintf("cc: negate of %v", c))
}
