package cc

import (
	"fmt"

	"repro/internal/x64"
)

// CompileO0 lowers f in the shape of llvm -O0: every parameter is spilled
// to a stack slot on entry, every temporary lives in a stack slot, and every
// operation reloads its operands from the stack and stores its result back.
// This reproduces the stack-traffic-heavy targets the paper starts from
// ("binaries compiled by llvm -O0 ... which exhibits heavy stack traffic",
// §5.2).
func CompileO0(f *Func) *x64.Program {
	g := &o0gen{slots: map[string]int32{}}
	// Spill parameters.
	for i, t := range f.Params {
		r, _, _, _ := x64.LookupReg(argRegName(i))
		slot := g.newSlot()
		g.emit(x64.MakeInst(x64.MOV,
			x64.R(r, t.Width()), x64.Mem(x64.RSP, slot, t.Width())))
		g.slots[paramName(i)] = slot
	}
	for _, st := range f.Body {
		switch s := st.(type) {
		case *Let:
			g.slots[s.Name] = g.expr(s.X)
		case *Store:
			vSlot := g.expr(s.X)
			bSlot := g.expr(s.Base)
			w := s.X.typ().Width()
			g.loadSlot(bSlot, x64.RCX, 8)
			g.loadSlot(vSlot, x64.RAX, w)
			g.emit(x64.MakeInst(x64.MOV, x64.R(x64.RAX, w), x64.Mem(x64.RCX, s.Off, w)))
		case *Return:
			slot := g.expr(s.X)
			g.loadSlot(slot, x64.RAX, s.X.typ().Width())
		}
	}
	p := &x64.Program{Insts: g.prog}
	if err := p.Validate(); err != nil {
		panic("cc: O0 emitted invalid code: " + err.Error())
	}
	return p
}

func paramName(i int) string { return fmt.Sprintf("$param%d", i) }

type o0gen struct {
	prog  []x64.Inst
	slots map[string]int32
	next  int32
}

func (g *o0gen) emit(in x64.Inst) { g.prog = append(g.prog, in) }

func (g *o0gen) newSlot() int32 {
	g.next -= 8
	return g.next
}

func (g *o0gen) loadSlot(slot int32, r x64.Reg, w uint8) {
	g.emit(x64.MakeInst(x64.MOV, x64.Mem(x64.RSP, slot, w), x64.R(r, w)))
}

func (g *o0gen) storeNew(r x64.Reg, w uint8) int32 {
	slot := g.newSlot()
	g.emit(x64.MakeInst(x64.MOV, x64.R(r, w), x64.Mem(x64.RSP, slot, w)))
	return slot
}

// expr compiles e and returns the stack slot holding its value.
func (g *o0gen) expr(e Expr) int32 {
	w := e.typ().Width()
	switch n := e.(type) {
	case *Param:
		return g.slots[paramName(n.Index)]
	case *VarRef:
		slot, ok := g.slots[n.Name]
		if !ok {
			panic("cc: unbound local " + n.Name)
		}
		return slot
	case *Const:
		if n.T == I64 && (n.Val > 1<<31-1 || n.Val < -(1<<31)) {
			g.emit(x64.MakeInst(x64.MOVABS, x64.Imm(n.Val, 8), x64.R64(x64.RAX)))
		} else {
			g.emit(x64.MakeInst(x64.MOV, x64.Imm(n.Val, w), x64.R(x64.RAX, w)))
		}
		return g.storeNew(x64.RAX, w)
	case *Un:
		slot := g.expr(n.X)
		g.loadSlot(slot, x64.RAX, w)
		switch n.Op {
		case OpNot:
			g.emit(x64.MakeInst(x64.NOT, x64.R(x64.RAX, w)))
		case OpNeg:
			g.emit(x64.MakeInst(x64.NEG, x64.R(x64.RAX, w)))
		}
		return g.storeNew(x64.RAX, w)
	case *Load:
		bSlot := g.expr(n.Base)
		g.loadSlot(bSlot, x64.RCX, 8)
		g.emit(x64.MakeInst(x64.MOV, x64.Mem(x64.RCX, n.Off, w), x64.R(x64.RAX, w)))
		return g.storeNew(x64.RAX, w)
	case *Sel:
		cSlot := g.expr(n.Cond)
		aSlot := g.expr(n.A)
		bSlot := g.expr(n.B)
		cw := n.Cond.typ().Width()
		g.loadSlot(cSlot, x64.RAX, cw)
		g.emit(x64.MakeInst(x64.TEST, x64.R(x64.RAX, cw), x64.R(x64.RAX, cw)))
		g.loadSlot(bSlot, x64.RAX, w)
		g.loadSlot(aSlot, x64.RCX, w)
		g.emit(x64.MakeCCInst(x64.CMOVcc, x64.CondNE, x64.R(x64.RCX, w), x64.R(x64.RAX, w)))
		return g.storeNew(x64.RAX, w)
	case *Bin:
		return g.bin(n, w)
	}
	panic("cc: unknown expression")
}

func (g *o0gen) bin(n *Bin, w uint8) int32 {
	xSlot := g.expr(n.X)
	ySlot := g.expr(n.Y)
	g.loadSlot(xSlot, x64.RAX, w)
	g.loadSlot(ySlot, x64.RCX, w)

	two := func(op x64.Opcode) {
		g.emit(x64.MakeInst(op, x64.R(x64.RCX, w), x64.R(x64.RAX, w)))
	}
	switch n.Op {
	case OpAdd:
		two(x64.ADD)
	case OpSub:
		two(x64.SUB)
	case OpMul:
		two(x64.IMUL)
	case OpAnd:
		two(x64.AND)
	case OpOr:
		two(x64.OR)
	case OpXor:
		two(x64.XOR)
	case OpDivU:
		// Unsigned divide of RDX:RAX by RCX; RDX must be zeroed first.
		g.emit(x64.MakeInst(x64.MOV, x64.Imm(0, w), x64.R(x64.RDX, w)))
		g.emit(x64.MakeInst(x64.DIV, x64.R(x64.RCX, w)))
	case OpShl, OpLshr, OpAshr:
		op := map[BinOp]x64.Opcode{OpShl: x64.SHL, OpLshr: x64.SHR, OpAshr: x64.SAR}[n.Op]
		if c, ok := n.Y.(*Const); ok {
			g.emit(x64.MakeInst(op, x64.Imm(c.Val, w), x64.R(x64.RAX, w)))
		} else {
			g.emit(x64.MakeInst(op, x64.R8L(x64.RCX), x64.R(x64.RAX, w)))
		}
	default: // comparisons
		g.emit(x64.MakeInst(x64.CMP, x64.R(x64.RCX, w), x64.R(x64.RAX, w)))
		g.emit(x64.MakeCCInst(x64.SETcc, ccOf(n.Op), x64.R8L(x64.RAX)))
		g.emit(x64.MakeInst(x64.MOVZX, x64.R8L(x64.RAX), x64.R(x64.RAX, w)))
	}
	return g.storeNew(x64.RAX, w)
}

// ccOf maps a comparison operator (x OP y, flags from cmp y, x) to the
// condition code.
func ccOf(op BinOp) x64.Cond {
	switch op {
	case OpEq:
		return x64.CondE
	case OpNe:
		return x64.CondNE
	case OpUlt:
		return x64.CondB
	case OpUle:
		return x64.CondBE
	case OpUgt:
		return x64.CondA
	case OpUge:
		return x64.CondAE
	case OpSlt:
		return x64.CondL
	case OpSle:
		return x64.CondLE
	case OpSgt:
		return x64.CondG
	case OpSge:
		return x64.CondGE
	}
	panic("cc: not a comparison")
}
