package cc

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/emu"
	"repro/internal/testgen"
	"repro/internal/verify"
	"repro/internal/x64"
)

// sample functions used across the tests.
func fnAnd1() *Func { // x & (x-1)
	return &Func{Name: "f", Params: []Type{I32}, Body: []Stmt{
		&Return{X: B(OpAnd, P(0, I32), B(OpSub, P(0, I32), C(1, I32)))},
	}}
}

func fnSelect() *Func { // x < y ? x : y (unsigned min)
	return &Func{Name: "min", Params: []Type{I32, I32}, Body: []Stmt{
		&Return{X: Select(B(OpUlt, P(0, I32), P(1, I32)), P(0, I32), P(1, I32))},
	}}
}

func fnMul8() *Func { // x * 8: strength-reduction candidate
	return &Func{Name: "m8", Params: []Type{I32}, Body: []Stmt{
		&Return{X: B(OpMul, P(0, I32), C(8, I32))},
	}}
}

// run executes a compiled function on 32-bit arguments and returns eax.
func run(t *testing.T, p *x64.Program, args ...uint32) uint32 {
	t.Helper()
	a := testgen.NewArena(0x10000)
	a.AllocStack(1 << 10)
	regs := []x64.Reg{x64.RDI, x64.RSI, x64.RDX, x64.RCX}
	for i, v := range args {
		a.SetReg(regs[i], uint64(v))
	}
	m := emu.New()
	m.LoadSnapshot(a.Snapshot())
	out := m.Run(p)
	if out.SigSegv+out.SigFpe+out.Undef > 0 {
		t.Fatalf("compiled code faulted: %+v\n%s", out, p)
	}
	return uint32(m.RegValue(x64.RAX, 4))
}

func TestO0AndO2AgreeOnRandomInputs(t *testing.T) {
	funcs := []*Func{fnAnd1(), fnSelect(), fnMul8()}
	rng := rand.New(rand.NewSource(1))
	for _, f := range funcs {
		o0 := CompileO0(f)
		gcc := CompileO2(f, FlavorGCC)
		icc := CompileO2(f, FlavorICC)
		for i := 0; i < 300; i++ {
			args := make([]uint32, len(f.Params))
			for j := range args {
				args[j] = rng.Uint32()
			}
			a := run(t, o0, args...)
			b := run(t, gcc, args...)
			c := run(t, icc, args...)
			if a != b || a != c {
				t.Fatalf("%s(%v): O0=%#x gcc=%#x icc=%#x", f.Name, args, a, b, c)
			}
		}
	}
}

func TestO0VsO2ProvablyEquivalent(t *testing.T) {
	// The SAT validator proves the two backends equal for the multiply-free
	// samples.
	for _, f := range []*Func{fnAnd1(), fnSelect()} {
		o0 := CompileO0(f)
		o2 := CompileO2(f, FlavorGCC)
		live := verify.LiveOut{GPRs: []testgen.LiveReg{{Reg: x64.RAX, Width: 4}}}
		res := verify.Equivalent(context.Background(), o0, o2, live, verify.DefaultConfig)
		if res.Verdict != verify.Equal {
			t.Fatalf("%s: O0 vs O2 verdict %v\nO0:\n%s\nO2:\n%s",
				f.Name, res.Verdict, o0, o2)
		}
	}
}

func TestO0ShapeIsStackHeavy(t *testing.T) {
	p := CompileO0(fnAnd1())
	memOps := 0
	for _, in := range p.Insts {
		for i := uint8(0); i < in.N; i++ {
			if in.Opd[i].IsMem() {
				if in.Opd[i].Base != x64.RSP {
					t.Fatalf("O0 memory operand not rsp-relative: %v", in)
				}
				memOps++
			}
		}
	}
	// llvm -O0's signature: far more stack traffic than computation.
	if memOps < p.InstCount()/2 {
		t.Fatalf("O0 shape too clean: %d mem operands in %d insts\n%s",
			memOps, p.InstCount(), p)
	}
}

func TestO2ShapeHasNoStackTraffic(t *testing.T) {
	for _, f := range []*Func{fnAnd1(), fnSelect(), fnMul8()} {
		p := CompileO2(f, FlavorGCC)
		for _, in := range p.Insts {
			for i := uint8(0); i < in.N; i++ {
				if in.Opd[i].IsMem() {
					t.Fatalf("%s: O2 emitted memory traffic: %v", f.Name, in)
				}
			}
		}
	}
}

func TestStrengthReductionFlavors(t *testing.T) {
	gcc := CompileO2(fnMul8(), FlavorGCC)
	icc := CompileO2(fnMul8(), FlavorICC)
	hasOp := func(p *x64.Program, op x64.Opcode) bool {
		for _, in := range p.Insts {
			if in.Op == op {
				return true
			}
		}
		return false
	}
	if !hasOp(gcc, x64.SHL) || hasOp(gcc, x64.IMUL) {
		t.Errorf("gcc flavor must strength-reduce *8 to a shift:\n%s", gcc)
	}
	if hasOp(icc, x64.SHL) || !hasOp(icc, x64.IMUL) {
		t.Errorf("icc flavor must keep the multiply (§6.3):\n%s", icc)
	}
}

func TestSelectLoweringFlavors(t *testing.T) {
	gcc := CompileO2(fnSelect(), FlavorGCC)
	icc := CompileO2(fnSelect(), FlavorICC)
	hasOp := func(p *x64.Program, op x64.Opcode) bool {
		for _, in := range p.Insts {
			if in.Op == op {
				return true
			}
		}
		return false
	}
	if !hasOp(gcc, x64.CMOVcc) {
		t.Errorf("gcc flavor must use cmov:\n%s", gcc)
	}
	if !hasOp(icc, x64.Jcc) {
		t.Errorf("icc flavor must use a branch:\n%s", icc)
	}
}

func TestConstantFolding(t *testing.T) {
	e := B(OpAdd, C(2, I32), B(OpMul, C(3, I32), C(4, I32)))
	folded := fold(e)
	c, ok := folded.(*Const)
	if !ok || c.Val != 14 {
		t.Fatalf("fold(2+3*4) = %#v, want Const 14", folded)
	}
	// Folding respects 32-bit wraparound.
	e = B(OpAdd, C(0x7fffffff, I32), C(1, I32))
	c = fold(e).(*Const)
	if c.Val != -0x80000000 {
		t.Fatalf("fold(int32 overflow) = %#x", c.Val)
	}
	// Division by zero does not fold (left to runtime semantics).
	e = B(OpDivU, C(5, I32), C(0, I32))
	if _, ok := fold(e).(*Const); ok {
		t.Fatal("div by zero must not fold")
	}
}

func TestEvalBinComparisons(t *testing.T) {
	cases := []struct {
		op   BinOp
		x, y int64
		want int64
	}{
		{OpUlt, -1, 1, 0}, // unsigned: 0xffffffff > 1
		{OpSlt, -1, 1, 1}, // signed: -1 < 1
		{OpUge, -1, 1, 1},
		{OpSge, -1, 1, 0},
		{OpEq, 7, 7, 1},
		{OpNe, 7, 7, 0},
		{OpAshr, -8, 1, -4},
		{OpLshr, -8, 1, 0x7ffffffc},
	}
	for _, c := range cases {
		got, ok := evalBin(c.op, c.x, c.y, I32)
		if !ok || got != c.want {
			t.Errorf("evalBin(%v, %d, %d) = %d, want %d", c.op, c.x, c.y, got, c.want)
		}
	}
}

func TestI64Compilation(t *testing.T) {
	f := &Func{Name: "wide", Params: []Type{I64, I64}, Body: []Stmt{
		&Return{X: B(OpXor, P(0, I64), B(OpShl, P(1, I64), C(17, I64)))},
	}}
	o0 := CompileO0(f)
	o2 := CompileO2(f, FlavorGCC)
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 100; i++ {
		x, y := rng.Uint64(), rng.Uint64()
		want := x ^ y<<17
		for _, p := range []*x64.Program{o0, o2} {
			a := testgen.NewArena(0x10000)
			a.AllocStack(1 << 10)
			a.SetReg(x64.RDI, x)
			a.SetReg(x64.RSI, y)
			m := emu.New()
			m.LoadSnapshot(a.Snapshot())
			if out := m.Run(p); out.SigSegv+out.Undef > 0 {
				t.Fatalf("faulted: %+v", out)
			}
			if got := m.RegValue(x64.RAX, 8); got != want {
				t.Fatalf("wide(%#x,%#x) = %#x, want %#x", x, y, got, want)
			}
		}
	}
}

func TestLoadStoreCompilation(t *testing.T) {
	// *p = *p + 1 at offset 4.
	f := &Func{Name: "bump", Params: []Type{I64}, Body: []Stmt{
		&Store{Base: P(0, I64), Off: 4,
			X: B(OpAdd, Ld(I32, P(0, I64), 4), C(1, I32))},
	}}
	for _, variant := range []*x64.Program{
		CompileO0(f), CompileO2(f, FlavorGCC), CompileO2(f, FlavorICC),
	} {
		a := testgen.NewArena(0x20000)
		a.AllocStack(1 << 10)
		base := a.Alloc(8, func(i int) byte { return byte(i + 1) })
		a.SetReg(x64.RDI, base)
		m := emu.New()
		m.LoadSnapshot(a.Snapshot())
		if out := m.Run(variant); out.SigSegv+out.Undef > 0 {
			t.Fatalf("faulted: %+v\n%s", out, variant)
		}
		var got uint32
		for bt := 3; bt >= 0; bt-- {
			bb, _, _ := m.MemByte(base + 4 + uint64(bt))
			got = got<<8 | uint32(bb)
		}
		want := uint32(0x08070605) + 1
		if got != want {
			t.Fatalf("bump wrote %#x, want %#x\n%s", got, want, variant)
		}
	}
}

func TestTooManyParamsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for 7 register parameters")
		}
	}()
	f := &Func{Name: "seven", Params: []Type{I32, I32, I32, I32, I32, I32, I32},
		Body: []Stmt{&Return{X: P(6, I32)}}}
	CompileO0(f)
}
