// Package cc is a miniature C-like expression compiler with two backends:
// an -O0 backend that mimics llvm -O0's shape (every temporary spilled to a
// stack slot, operands reloaded around every operation) and an -O3-style
// backend (constant folding, register allocation, strength reduction,
// conditional-move if-conversion). It manufactures the compiler baselines
// the paper depends on: llvm -O0 binaries as STOKE targets, and gcc/icc -O3
// sequences as comparators for Figure 10.
package cc

import "fmt"

// Type is an integer value type.
type Type uint8

// Value types.
const (
	I32 Type = iota
	I64
)

// Width returns the type's width in bytes.
func (t Type) Width() uint8 {
	if t == I64 {
		return 8
	}
	return 4
}

// BinOp is a binary operator.
type BinOp uint8

// Binary operators.
const (
	OpAdd BinOp = iota
	OpSub
	OpMul
	OpDivU
	OpAnd
	OpOr
	OpXor
	OpShl
	OpLshr
	OpAshr

	// Comparisons produce 0 or 1 in the operand type.
	OpEq
	OpNe
	OpUlt
	OpUle
	OpUgt
	OpUge
	OpSlt
	OpSle
	OpSgt
	OpSge
)

func (op BinOp) isCmp() bool { return op >= OpEq }

// UnOp is a unary operator.
type UnOp uint8

// Unary operators.
const (
	OpNot UnOp = iota
	OpNeg
)

// Expr is an expression tree node.
type Expr interface{ typ() Type }

// Param references the i-th function parameter.
type Param struct {
	Index int
	T     Type
}

// Const is an integer literal.
type Const struct {
	Val int64
	T   Type
}

// VarRef references a Let-bound local.
type VarRef struct {
	Name string
	T    Type
}

// Bin applies a binary operator.
type Bin struct {
	Op   BinOp
	X, Y Expr
}

// Un applies a unary operator.
type Un struct {
	Op UnOp
	X  Expr
}

// Sel is select(cond, a, b): a when cond is non-zero.
type Sel struct {
	Cond, A, B Expr
}

// Load reads memory at base+offset, where base is a pointer-typed (I64)
// expression.
type Load struct {
	T    Type
	Base Expr
	Off  int32
}

func (e *Param) typ() Type  { return e.T }
func (e *Const) typ() Type  { return e.T }
func (e *VarRef) typ() Type { return e.T }
func (e *Bin) typ() Type    { return e.X.typ() }
func (e *Un) typ() Type     { return e.X.typ() }
func (e *Sel) typ() Type    { return e.A.typ() }
func (e *Load) typ() Type   { return e.T }

// Stmt is a function-body statement.
type Stmt interface{ isStmt() }

// Let binds a local name to an expression value.
type Let struct {
	Name string
	X    Expr
}

// Store writes an expression value to base+offset.
type Store struct {
	Base Expr
	Off  int32
	X    Expr
}

// Return sets the function result (delivered in rax/eax).
type Return struct {
	X Expr
}

func (*Let) isStmt()    {}
func (*Store) isStmt()  {}
func (*Return) isStmt() {}

// Func is a compilable function.
type Func struct {
	Name   string
	Params []Type
	Body   []Stmt
}

// Convenience constructors keep the kernel definitions readable.

// P returns the i-th parameter at the given type.
func P(i int, t Type) Expr { return &Param{Index: i, T: t} }

// C returns a constant of the given type.
func C(v int64, t Type) Expr { return &Const{Val: v, T: t} }

// V references a local.
func V(name string, t Type) Expr { return &VarRef{Name: name, T: t} }

// B applies a binary operator.
func B(op BinOp, x, y Expr) Expr { return &Bin{Op: op, X: x, Y: y} }

// U applies a unary operator.
func U(op UnOp, x Expr) Expr { return &Un{Op: op, X: x} }

// Select picks A when Cond is non-zero.
func Select(cond, a, b Expr) Expr { return &Sel{Cond: cond, A: a, B: b} }

// Ld loads from base+off.
func Ld(t Type, base Expr, off int32) Expr { return &Load{T: t, Base: base, Off: off} }

// argRegOrder is the System V integer argument register sequence.
var argRegOrder = []string{"rdi", "rsi", "rdx", "rcx", "r8", "r9"}

func argRegName(i int) string {
	if i >= len(argRegOrder) {
		panic(fmt.Sprintf("cc: parameter %d exceeds register arguments", i))
	}
	return argRegOrder[i]
}

// fold performs constant folding over an expression tree (the only IR-level
// optimization; everything else lives in the backends).
func fold(e Expr) Expr {
	switch n := e.(type) {
	case *Bin:
		x, y := fold(n.X), fold(n.Y)
		cx, okx := x.(*Const)
		cy, oky := y.(*Const)
		if okx && oky {
			if v, ok := evalBin(n.Op, cx.Val, cy.Val, n.X.typ()); ok {
				return &Const{Val: v, T: n.X.typ()}
			}
		}
		return &Bin{Op: n.Op, X: x, Y: y}
	case *Un:
		x := fold(n.X)
		if cx, ok := x.(*Const); ok {
			switch n.Op {
			case OpNot:
				return &Const{Val: truncate(^cx.Val, n.X.typ()), T: n.X.typ()}
			case OpNeg:
				return &Const{Val: truncate(-cx.Val, n.X.typ()), T: n.X.typ()}
			}
		}
		return &Un{Op: n.Op, X: x}
	case *Sel:
		return &Sel{Cond: fold(n.Cond), A: fold(n.A), B: fold(n.B)}
	case *Load:
		return &Load{T: n.T, Base: fold(n.Base), Off: n.Off}
	}
	return e
}

func truncate(v int64, t Type) int64 {
	if t == I32 {
		return int64(int32(v))
	}
	return v
}

func evalBin(op BinOp, x, y int64, t Type) (int64, bool) {
	ux, uy := uint64(x), uint64(y)
	if t == I32 {
		ux, uy = uint64(uint32(x)), uint64(uint32(y))
	}
	bits := uint64(t.Width()) * 8
	b2i := func(b bool) int64 {
		if b {
			return 1
		}
		return 0
	}
	switch op {
	case OpAdd:
		return truncate(x+y, t), true
	case OpSub:
		return truncate(x-y, t), true
	case OpMul:
		return truncate(x*y, t), true
	case OpDivU:
		if uy == 0 {
			return 0, false
		}
		return truncate(int64(ux/uy), t), true
	case OpAnd:
		return truncate(x&y, t), true
	case OpOr:
		return truncate(x|y, t), true
	case OpXor:
		return truncate(x^y, t), true
	case OpShl:
		return truncate(x<<(uy%bits), t), true
	case OpLshr:
		return truncate(int64(ux>>(uy%bits)), t), true
	case OpAshr:
		if t == I32 {
			return int64(int32(x) >> (uy % bits)), true
		}
		return x >> (uy % bits), true
	case OpEq:
		return b2i(ux == uy), true
	case OpNe:
		return b2i(ux != uy), true
	case OpUlt:
		return b2i(ux < uy), true
	case OpUle:
		return b2i(ux <= uy), true
	case OpUgt:
		return b2i(ux > uy), true
	case OpUge:
		return b2i(ux >= uy), true
	case OpSlt:
		return b2i(truncate(x, t) < truncate(y, t)), true
	case OpSle:
		return b2i(truncate(x, t) <= truncate(y, t)), true
	case OpSgt:
		return b2i(truncate(x, t) > truncate(y, t)), true
	case OpSge:
		return b2i(truncate(x, t) >= truncate(y, t)), true
	}
	return 0, false
}
