package kernels

import (
	"math/rand"

	"repro/internal/cc"
	"repro/internal/emu"
	"repro/internal/testgen"
	"repro/internal/verify"
	"repro/internal/x64"
)

// --- Montgomery multiplication (Figure 1) -------------------------------
//
// Inputs: rsi=np, ecx=mh, edx=ml, rdi=c0, r8=c1.
// Outputs: r8:rdi = np * (mh:ml) + c0 + c1 (128-bit).

// montO0 is the llvm -O0 style target: the 128-bit product computed from
// 32-bit pieces with every temporary on the stack and carries materialised
// through setb (the paper's unshown 116-line target has this shape).
const montO0 = `
  movq rdi, -8(rsp)
  movq rsi, -16(rsp)
  mov edx, edx
  movq rdx, -24(rsp)
  mov ecx, ecx
  movq rcx, -32(rsp)
  movq r8, -40(rsp)
  movq -16(rsp), rax
  mov eax, eax
  movq rax, -48(rsp)
  movq -16(rsp), rax
  shrq 32, rax
  movq rax, -56(rsp)
  movq -32(rsp), rax
  imulq -48(rsp), rax
  movq rax, -64(rsp)
  movq -24(rsp), rax
  imulq -56(rsp), rax
  movq rax, -72(rsp)
  movq -24(rsp), rax
  imulq -48(rsp), rax
  movq rax, -80(rsp)
  movq -32(rsp), rax
  imulq -56(rsp), rax
  movq rax, -88(rsp)
  movq -64(rsp), rax
  addq -72(rsp), rax
  movq rax, -96(rsp)
  setb al
  movzbq al, rax
  shlq 32, rax
  movq rax, -104(rsp)
  movq -96(rsp), rax
  shrq 32, rax
  addq -88(rsp), rax
  addq -104(rsp), rax
  movq rax, -112(rsp)
  movq -96(rsp), rax
  shlq 32, rax
  addq -80(rsp), rax
  movq rax, -120(rsp)
  setb al
  movzbq al, rax
  addq -112(rsp), rax
  movq rax, -112(rsp)
  movq -120(rsp), rax
  addq -8(rsp), rax
  movq rax, -120(rsp)
  setb al
  movzbq al, rax
  addq -112(rsp), rax
  movq rax, -112(rsp)
  movq -120(rsp), rax
  addq -40(rsp), rax
  movq rax, -120(rsp)
  setb al
  movzbq al, rax
  addq -112(rsp), rax
  movq rax, -112(rsp)
  movq -120(rsp), rdi
  movq -112(rsp), r8
`

// montGccO3 is the gcc -O3 sequence printed in Figure 1 (left), with the
// paper's c0/c1 constant-name swap on the andl corrected.
const montGccO3 = `
.set c0 0xffffffff
.set c1 0x100000000
.L0
  movq rsi, r9
  mov ecx, ecx
  shrq 32, rsi
  andl c0, r9d
  movq rcx, rax
  mov edx, edx
  imulq r9, rax
  imulq rdx, r9
  imulq rsi, rdx
  imulq rsi, rcx
  addq rdx, rax
  jae .L2
  movabsq c1, rdx
  addq rdx, rcx
.L2
  movq rax, rsi
  movq rax, rdx
  shrq 32, rsi
  salq 32, rdx
  addq rsi, rcx
  addq r9, rdx
  adcq 0, rcx
  addq r8, rdx
  adcq 0, rcx
  addq rdi, rdx
  adcq 0, rcx
  movq rcx, r8
  movq rdx, rdi
`

// montStoke is the 11-instruction rewrite STOKE discovered (Figure 1,
// right): the 128-bit multiply done with the hardware widening mulq.
const montStoke = `
.L0
  shlq 32, rcx
  mov edx, edx
  xorq rdx, rcx
  movq rcx, rax
  mulq rsi
  addq r8, rdi
  adcq 0, rdx
  addq rdi, rax
  adcq 0, rdx
  movq rdx, r8
  movq rax, rdi
`

func montSpec() testgen.Spec {
	return testgen.Spec{
		BuildInput: func(rng *rand.Rand) *emu.Snapshot {
			a := testgen.NewArena(0x100000)
			a.AllocStack(1 << 10)
			a.SetReg(x64.RSI, rng.Uint64())
			a.SetReg(x64.RCX, uint64(rng.Uint32()))
			a.SetReg(x64.RDX, uint64(rng.Uint32()))
			a.SetReg(x64.RDI, rng.Uint64())
			a.SetReg(x64.R8, rng.Uint64())
			return a.Snapshot()
		},
		LiveOut: testgen.LiveSet{GPRs: []testgen.LiveReg{
			{Reg: x64.RDI, Width: 8}, {Reg: x64.R8, Width: 8},
		}},
	}
}

// --- SAXPY (Figure 14) ---------------------------------------------------
//
// x[i..i+3] = a*x[i..i+3] + y[i..i+3]; inputs edi=a, rsi=x, rdx=y, rcx=i.

// saxpyFunc is the four-times hand-unrolled source of Figure 14.
func saxpyFunc() *cc.Func {
	// Params: a (i32), x (i64 pointer), y (i64 pointer), i (i64 index).
	a := cc.P(0, i32)
	xp := cc.P(1, i64)
	yp := cc.P(2, i64)
	ip := cc.P(3, i64)
	body := []cc.Stmt{
		&cc.Let{Name: "bx", X: cc.B(cc.OpAdd, xp, cc.B(cc.OpMul, ip, cc.C(4, i64)))},
		&cc.Let{Name: "by", X: cc.B(cc.OpAdd, yp, cc.B(cc.OpMul, ip, cc.C(4, i64)))},
	}
	bx := cc.V("bx", i64)
	by := cc.V("by", i64)
	for k := 0; k < 4; k++ {
		off := int32(4 * k)
		body = append(body, &cc.Store{
			Base: bx, Off: off,
			X: cc.B(cc.OpAdd, cc.B(cc.OpMul, a, cc.Ld(i32, bx, off)), cc.Ld(i32, by, off)),
		})
	}
	return &cc.Func{Name: "saxpy", Params: []cc.Type{i32, i64, i64, i64}, Body: body}
}

// saxpyStoke is the SSE rewrite of Figure 14 (with pmulld for the 32-bit
// lanes of our int32 arrays; the paper prints pmullw against its 16-bit
// test values).
const saxpyStoke = `
.L0
  movd edi, xmm0
  shufps 0, xmm0, xmm0
  movups (rsi,rcx,4), xmm1
  pmulld xmm1, xmm0
  movups (rdx,rcx,4), xmm1
  paddd xmm1, xmm0
  movups xmm0, (rsi,rcx,4)
`

func saxpySpec() testgen.Spec {
	return testgen.Spec{
		BuildInput: func(rng *rand.Rand) *emu.Snapshot {
			a := testgen.NewArena(0x200000)
			a.AllocStack(1 << 10)
			xBase := a.Alloc(16, func(int) byte { return byte(rng.Uint32()) })
			yBase := a.Alloc(16, func(int) byte { return byte(rng.Uint32()) })
			a.SetReg(x64.RDI, uint64(rng.Uint32()))
			a.SetReg(x64.RSI, xBase)
			a.SetReg(x64.RDX, yBase)
			a.SetReg(x64.RCX, 0) // i = 0; the arrays are exactly one vector
			return a.Snapshot()
		},
		LiveOut: testgen.LiveSet{LiveSegs: []int{1}}, // x[] is segment 1 (0 = stack)
	}
}

// --- Linked list traversal (Figure 15) -----------------------------------
//
// The loop-free inner fragment of: while (head) { head->val *= 2; head =
// head->next; }. The head pointer lives in the stack slot -8(rsp); a node
// is {int32 val; pad; node* next} (16 bytes).

// listO0 is the llvm -O0 style fragment: head reloaded from the stack
// around every access.
const listO0 = `
  movq -8(rsp), rax
  movl (rax), ecx
  movl ecx, -12(rsp)
  movl -12(rsp), ecx
  addl ecx, ecx
  movq -8(rsp), rax
  movl ecx, (rax)
  movq -8(rsp), rax
  movq 8(rax), rax
  movq rax, -8(rsp)
`

// listStoke is the rewrite the paper reports STOKE finding (Figure 15
// right): stack traffic reduced and the multiply strength-reduced, but the
// head pointer still round-trips through memory every iteration.
const listStoke = `
.L4
  movq -8(rsp), rdi
  sall (rdi)
  movq 8(rdi), rdi
  movq rdi, -8(rsp)
.L6
`

// listGccO3 is the loop body gcc -O3 produces (Figure 15 left): the head
// pointer cached in rdi across iterations, so the fragment touches the
// stack only on loop entry (modelled here as the bare body).
const listGccO3 = `
.L4
  sall (rdi)
  movq 8(rdi), rdi
`

// listIccO3 models the paper's observation that icc fails to
// strength-reduce the multiplication.
const listIccO3 = `
.L4
  imull 2, (rdi), ecx
  movl ecx, (rdi)
  movq 8(rdi), rdi
`

func listSpec() testgen.Spec {
	return testgen.Spec{
		BuildInput: func(rng *rand.Rand) *emu.Snapshot {
			// Hand-built layout: the head variable is its own 8-byte
			// segment at rsp-8 (a live output: the loop continues from
			// it), while the scratch stack below it is dead on exit.
			const sp = 0x300200
			mkSeg := func(base uint64, size int, defined bool) emu.MemImage {
				im := emu.MemImage{Base: base,
					Data:  make([]byte, size),
					Def:   make([]bool, size),
					Valid: make([]bool, size)}
				for i := 0; i < size; i++ {
					im.Def[i] = defined
					im.Valid[i] = true
				}
				return im
			}
			scratch := mkSeg(sp-256, 248, false) // [sp-256, sp-8)
			head := mkSeg(sp-8, 8, true)
			node0 := mkSeg(0x300400, 16, true)
			node1 := mkSeg(0x300500, 16, true)

			val := rng.Uint32()
			for i := 0; i < 4; i++ {
				node0.Data[i] = byte(val >> (8 * i))
			}
			for i := 0; i < 8; i++ {
				node0.Data[8+i] = byte(node1.Base >> (8 * i))
				head.Data[i] = byte(node0.Base >> (8 * i))
			}

			s := &emu.Snapshot{} // flags undefined at fragment entry
			s.Mem = []emu.MemImage{scratch, head, node0, node1}
			s.Regs[x64.RSP] = sp
			s.RegDef |= 1 << x64.RSP
			return s
		},
		// Live outputs: the updated head slot and the doubled node value.
		LiveOut: testgen.LiveSet{LiveSegs: []int{1, 2}},
	}
}

// listLiveMem: only the rsp-relative head slot is expressible for the
// validator; the node contents are covered by testcases (see DESIGN.md).
func listLiveMem() []verify.MemRange {
	return []verify.MemRange{{Base: x64.RSP, Disp: -8, Len: 8}}
}
